// Recall analysis: inspect why cluster-granularity recall beats pages —
// the paper's Fig. 3b fragmentation observation and Fig. 11 recall curves —
// on a NarrativeQA-like 8k-token sample.
//
//	go run ./examples/recall_analysis
package main

import (
	"fmt"

	"clusterkv"
)

func main() {
	spec := clusterkv.TaskSpec{
		Name: "NarrativeQA-demo", BaseScore: 100,
		CtxLen: 8192, NumNeedles: 3, NeedleTokens: 20, SpreadRegion: 768,
		AnswerSteps: 48, HopPattern: "revisit", DiffuseNoise: 0.55, QueryGain: 0.85,
	}
	task := clusterkv.BuildTask(spec, 3)

	// --- Fragmentation of the needles at page granularity ------------------
	const pageSize = 16
	for i, pos := range task.NeedlePositions {
		pages := map[int]bool{}
		for _, p := range pos {
			pages[p/pageSize] = true
		}
		fmt.Printf("needle %d: %d important tokens spread over %d pages of %d tokens\n",
			i, len(pos), len(pages), pageSize)
		fmt.Printf("          -> page-granular recall needs %d budget tokens (%.1fx waste)\n",
			len(pages)*pageSize, float64(len(pages)*pageSize)/float64(len(pos)))
	}

	// --- Recall-rate curves (paper Fig. 11a) --------------------------------
	budgets := []int{256, 512, 1024, 2048}
	fmt.Printf("\n%-12s", "recall")
	for _, b := range budgets {
		fmt.Printf("  B=%-5d", b)
	}
	fmt.Println()
	methods := []struct {
		name string
		mk   func() clusterkv.Selector
	}{
		{"ClusterKV", func() clusterkv.Selector {
			cfg := clusterkv.DefaultConfig()
			cfg.BypassLayers = 0
			return clusterkv.New(cfg)
		}},
		{"Quest", func() clusterkv.Selector {
			cfg := clusterkv.DefaultQuestConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewQuest(cfg)
		}},
		{"InfiniGen", func() clusterkv.Selector {
			cfg := clusterkv.DefaultInfiniGenConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewInfiniGen(cfg)
		}},
	}
	for _, ms := range methods {
		fmt.Printf("%-12s", ms.name)
		for _, b := range budgets {
			run := clusterkv.RunTrace(task.Trace, ms.mk(), b)
			fmt.Printf("  %-7.3f", run.MeanRecall())
		}
		fmt.Println()
	}

	// --- Clustering-distance ablation (paper Fig. 11b) ---------------------
	fmt.Printf("\n%-12s", "metric@1024")
	fmt.Println()
	for _, m := range []struct {
		name   string
		metric clusterkv.Metric
	}{{"cosine", clusterkv.Cosine}, {"l2", clusterkv.L2}, {"inner-prod", clusterkv.InnerProduct}} {
		cfg := clusterkv.DefaultConfig()
		cfg.BypassLayers = 0
		cfg.Metric = m.metric
		run := clusterkv.RunTrace(task.Trace, clusterkv.New(cfg), 1024)
		fmt.Printf("  %-10s  recall %.3f\n", m.name, run.MeanRecall())
	}
}

// Long-document QA: build a LongBench-style multi-hop QA task whose answer
// requires recalling needle tokens planted across a long context, and
// compare how well each KV compression method retrieves them under shrinking
// budgets — the paper's Fig. 9 scenario on one task.
//
//	go run ./examples/longdoc_qa
package main

import (
	"fmt"

	"clusterkv"
)

func main() {
	// A 2WikiMQA-like task: two needle groups, the answer revisits the first
	// needle after focusing on the second — non-recallable methods lose it.
	spec := clusterkv.TaskSpec{
		Name: "2WikiMQA-demo", BaseScore: 100,
		CtxLen: 8192, NumNeedles: 2, NeedleTokens: 24, SpreadRegion: 512,
		AnswerSteps: 24, HopPattern: "revisit", DiffuseNoise: 0.35, QueryGain: 1.0,
	}
	task := clusterkv.BuildTask(spec, 7)

	fmt.Printf("task: %s, context %d tokens, %d answer steps\n",
		spec.Name, spec.CtxLen, spec.AnswerSteps)
	for i, pos := range task.NeedlePositions {
		fmt.Printf("needle %d: %d tokens scattered over [%d, %d]\n",
			i, len(pos), pos[0], pos[len(pos)-1])
	}
	fmt.Println()

	methods := []struct {
		name string
		mk   func() clusterkv.Selector
	}{
		{"ClusterKV", func() clusterkv.Selector {
			cfg := clusterkv.DefaultConfig()
			cfg.BypassLayers = 0
			return clusterkv.New(cfg)
		}},
		{"Quest", func() clusterkv.Selector {
			cfg := clusterkv.DefaultQuestConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewQuest(cfg)
		}},
		{"InfiniGen", func() clusterkv.Selector {
			cfg := clusterkv.DefaultInfiniGenConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewInfiniGen(cfg)
		}},
		{"H2O", func() clusterkv.Selector {
			cfg := clusterkv.DefaultH2OConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewH2O(cfg)
		}},
		{"StreamingLLM", func() clusterkv.Selector {
			cfg := clusterkv.DefaultStreamingConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewStreamingLLM(cfg)
		}},
	}

	budgets := []int{256, 512, 1024, 2048}
	fmt.Printf("%-14s", "needle recall")
	for _, b := range budgets {
		fmt.Printf("  B=%-5d", b)
	}
	fmt.Println()
	for _, ms := range methods {
		fmt.Printf("%-14s", ms.name)
		for _, b := range budgets {
			run := clusterkv.RunTrace(task.Trace, ms.mk(), b)
			fmt.Printf("  %-7.3f", run.MeanNeedleFidelity())
		}
		fmt.Println()
	}
	fmt.Println("\nneedle recall = fraction of the full-attention needle mass the")
	fmt.Println("method's selected tokens retain, averaged over answer steps.")
	fmt.Println("The recallable methods (ClusterKV, Quest, InfiniGen) recover the")
	fmt.Println("revisited needle; H2O evicted it permanently and StreamingLLM's")
	fmt.Println("recency window never looks back.")
}

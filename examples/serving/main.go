// Serving walkthrough: run the continuous-batching engine over a synthetic
// multi-tenant QA load — many questions about two shared documents — with
// every request bound to its own ClusterKV selector, and read the report.
//
//	go run ./examples/serving
package main

import (
	"fmt"

	"clusterkv"
)

func main() {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())

	// A deterministic load: 8 requests asking 32-token questions about two
	// shared 768-token documents, 16-token answers.
	lc := clusterkv.DefaultLoadConfig()
	lc.DocLen = 768
	lc.NRequests = 8
	lc.MaxNewTokens = 16
	load := clusterkv.NewLoad(lc)

	// An engine with 4 concurrent streams and a global KV budget of 4096
	// per-head token slots, metered by exact page accounting: the paged KV
	// arena charges actual copy-on-write pages (shared document pages once,
	// however many requests fork them), and admission needs only a
	// request's prefill pages plus one page of decode headroom. Requests
	// beyond the budget wait in the queue.
	cfg := clusterkv.DefaultEngineConfig()
	cfg.MaxBatch = 4
	cfg.KVBudget = 4096
	eng := clusterkv.NewEngine(m, cfg)

	// Every request brings its own selector: here all ClusterKV at a
	// 256-token per-head budget. Declaring SharedPrefixLen lets requests
	// about the same document share one prefill via the prefix cache.
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          256,
			NewSelector: func() clusterkv.Selector {
				return clusterkv.New(clusterkv.DefaultConfig())
			},
		}
	}

	// Run is the deterministic closed-loop entry point: same requests, same
	// seed => same tokens and same scheduling rounds. (Use Submit for
	// open-loop arrivals.)
	resps := eng.Run(reqs)

	for i, r := range resps {
		if r.Err != nil {
			fmt.Printf("request %d: error %v\n", i, r.Err)
			continue
		}
		hit := " "
		if r.PrefixHit {
			hit = "*"
		}
		fmt.Printf("request %d doc %d%s ttft %6.1fms rounds %d..%d tokens %v\n",
			i, load[i].Doc, hit, r.TTFT.Seconds()*1e3, r.AdmitRound, r.DoneRound, r.Tokens[:4])
	}
	fmt.Println("\n(* = shared document served from the prefix cache)")

	mx := eng.Metrics()
	// The arena gauge shows block-granular sharing at work: the two cached
	// documents' pages are live once each, not once per request.
	fmt.Printf("\nkv arena: %d live pages of %d tokens (cached prefixes, shared by refcount)\n",
		eng.Arena().LivePages(), clusterkv.DefaultKVPageTokens)
	eng.Close() // graceful drain
	fmt.Printf("\n%s", mx.String())
}

// Quickstart: run the Transformer engine with ClusterKV compression and
// compare its decode path against the uncompressed full-KV reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"clusterkv"
)

func main() {
	// A small deterministic model (4 layers × 4 heads × 16 channels) with
	// LLM-like key structure: semantic clusters, attention sinks, outlier
	// channels.
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())

	// A topic-segmented synthetic document of 2048 tokens.
	prompt := clusterkv.Doc(clusterkv.DefaultDocConfig(), 2048)

	const budget = 256 // KV cache budget per head (tokens)

	// Decode 32 tokens greedily under full KV and under ClusterKV.
	decode := func(sel clusterkv.Selector) []int {
		seq := m.NewSequence(sel, budget)
		seq.Prefill(prompt, nil)
		tok := prompt[len(prompt)-1]
		logits := make([]float32, m.Config().VocabSize)
		out := make([]int, 0, 32)
		for i := 0; i < 32; i++ {
			seq.DecodeInto(tok, logits)
			tok = argmax(logits)
			out = append(out, tok)
		}
		return out
	}

	full := decode(clusterkv.NewFullKV())
	ckv := clusterkv.New(clusterkv.DefaultConfig())
	compressed := decode(ckv)

	match := 0
	for i := range full {
		if full[i] == compressed[i] {
			match++
		}
	}
	fmt.Printf("prompt length:        %d tokens\n", len(prompt))
	fmt.Printf("KV budget:            %d tokens per head\n", budget)
	fmt.Printf("full-KV output:       %v\n", full)
	fmt.Printf("ClusterKV output:     %v\n", compressed)
	fmt.Printf("greedy tokens agree:  %d/%d\n", match, len(full))

	st := ckv.Stats()
	fmt.Printf("\nClusterKV counters over %d steps:\n", st.Steps)
	fmt.Printf("  tokens selected:   %d (avg %.0f per head-step)\n",
		st.TokensSelected, float64(st.TokensSelected)/float64(st.SelectCalls))
	fmt.Printf("  clusters selected: %d\n", st.ClustersSelected)
	fmt.Printf("  cache hit rate:    %.0f%%\n", st.HitRate()*100)
}

func argmax(x []float32) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Language modeling: evaluate perplexity of a PG19-like stream under each KV
// compression method with a fixed budget — the paper's Fig. 10 scenario.
//
// The stream is self-generated under full attention, so full KV is optimal
// by construction and each method's perplexity deviation measures its
// attention-approximation error.
//
//	go run ./examples/language_model
package main

import (
	"fmt"

	"clusterkv"
)

func main() {
	const (
		length = 4096
		budget = 512
		warmup = 512
		lambda = 10
	)
	doc := clusterkv.DefaultDocConfig()
	tc := clusterkv.DefaultTraceConfig()
	tc.Heads = 2
	tc.Seed = 11

	fmt.Printf("generating a %d-token self-consistent stream...\n", length)
	lm := clusterkv.NewRetrievalLM(doc, tc, length, warmup, lambda)

	checkpoints := []int{1024, 2048, 4096}
	methods := []struct {
		name string
		mk   func() clusterkv.Selector
	}{
		{"FullKV", clusterkv.NewFullKV},
		{"ClusterKV", func() clusterkv.Selector {
			cfg := clusterkv.DefaultConfig()
			cfg.BypassLayers = 0
			return clusterkv.New(cfg)
		}},
		{"Quest", func() clusterkv.Selector {
			cfg := clusterkv.DefaultQuestConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewQuest(cfg)
		}},
		{"InfiniGen", func() clusterkv.Selector {
			cfg := clusterkv.DefaultInfiniGenConfig()
			cfg.BypassLayers = 0
			return clusterkv.NewInfiniGen(cfg)
		}},
	}

	fmt.Printf("\n%-11s", "ppl @")
	for _, c := range checkpoints {
		fmt.Printf("  %-8d", c)
	}
	fmt.Println()
	var full []float64
	results := map[string][]float64{}
	for _, ms := range methods {
		ppl := clusterkv.RetrievalPerplexity(lm, ms.mk(), budget, checkpoints)
		results[ms.name] = ppl
		if ms.name == "FullKV" {
			full = ppl
		}
		fmt.Printf("%-11s", ms.name)
		for _, p := range ppl {
			fmt.Printf("  %-8.2f", p)
		}
		fmt.Println()
	}
	fmt.Printf("\ndeviation from full KV at %d tokens (budget %d):\n", length, budget)
	for _, ms := range methods[1:] {
		d := results[ms.name][len(checkpoints)-1] - full[len(checkpoints)-1]
		fmt.Printf("  %-11s %+0.2f\n", ms.name, d)
	}
}

// Benchmarks: one testing.B target per table/figure of the paper (reduced
// problem sizes so iterations stay subsecond — use cmd/clusterkv-bench for
// the full-scale regeneration), plus microbenchmarks of the hot kernels.
package clusterkv_test

import (
	"runtime"
	"testing"

	"clusterkv"
	"clusterkv/internal/bench"
)

func benchOptions() bench.Options {
	return bench.Options{MaxCtx: 2048, ModelCtx: 1024, Seed: 1}
}

// ---- One bench per paper artifact -------------------------------------------

func BenchmarkFig3aImportanceDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig3a(benchOptions())
	}
}

func BenchmarkFig3bFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig3b(benchOptions())
	}
}

func BenchmarkFig9LongBench(b *testing.B) {
	opt := bench.Options{MaxCtx: 1024, ModelCtx: 512, Seed: 1}
	for i := 0; i < b.N; i++ {
		bench.RunFig9(opt)
	}
}

func BenchmarkTab1AverageScores(b *testing.B) {
	opt := bench.Options{MaxCtx: 1024, ModelCtx: 512, Seed: 1}
	for i := 0; i < b.N; i++ {
		bench.RunTab1(opt)
	}
}

func BenchmarkFig10Perplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig10(benchOptions())
	}
}

func BenchmarkFig11aRecall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig11a(benchOptions())
	}
}

func BenchmarkFig11bAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig11b(benchOptions())
	}
}

func BenchmarkFig12Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig12(benchOptions())
	}
}

func BenchmarkFig13aVsInfiniGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig13a(benchOptions())
	}
}

func BenchmarkFig13bVsQuest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFig13b(benchOptions())
	}
}

func BenchmarkCacheHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunCache(benchOptions())
	}
}

func BenchmarkOverlapPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunOverlap(benchOptions())
	}
}

// BenchmarkFleetRouting runs the fleet-routing policy comparison (affinity
// vs round-robin vs least-loaded over 4 engine replicas) at reduced scale,
// reporting the affinity policy's prefill-pages-saved advantage as a metric.
func BenchmarkFleetRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunFleet(benchOptions())
	}
}

// ---- Microbenchmarks of the system's hot paths ---------------------------------

// BenchmarkPrefillClustering measures semantic clustering of an 8k-token
// context (the §III-D Concern-1 cost).
func BenchmarkPrefillClustering(b *testing.B) {
	tc := clusterkv.DefaultTraceConfig()
	tc.L = 8192
	tr := clusterkv.NewTrace(tc)
	cfg := clusterkv.DefaultConfig()
	cfg.BypassLayers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := clusterkv.New(cfg)
		clusterkv.RunTrace(tr, sel, 1024)
	}
}

// BenchmarkSelectStep measures one ClusterKV selection step (score + sort +
// gather, §IV-C) amortised over a run.
func BenchmarkSelectStep(b *testing.B) {
	spec := clusterkv.TaskSpec{
		Name: "bench", BaseScore: 1, CtxLen: 4096, NumNeedles: 2,
		NeedleTokens: 16, SpreadRegion: 256, AnswerSteps: 64,
		HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1,
	}
	task := clusterkv.BuildTask(spec, 1)
	cfg := clusterkv.DefaultConfig()
	cfg.BypassLayers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusterkv.RunTrace(task.Trace, clusterkv.New(cfg), 512)
	}
}

// BenchmarkQuestSelect measures Quest page scoring over the same workload.
func BenchmarkQuestSelect(b *testing.B) {
	spec := clusterkv.TaskSpec{
		Name: "bench", BaseScore: 1, CtxLen: 4096, NumNeedles: 2,
		NeedleTokens: 16, SpreadRegion: 256, AnswerSteps: 64,
		HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1,
	}
	task := clusterkv.BuildTask(spec, 1)
	cfg := clusterkv.DefaultQuestConfig()
	cfg.BypassLayers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusterkv.RunTrace(task.Trace, clusterkv.NewQuest(cfg), 512)
	}
}

// BenchmarkInfiniGenSelect measures InfiniGen per-token partial scoring.
func BenchmarkInfiniGenSelect(b *testing.B) {
	spec := clusterkv.TaskSpec{
		Name: "bench", BaseScore: 1, CtxLen: 4096, NumNeedles: 2,
		NeedleTokens: 16, SpreadRegion: 256, AnswerSteps: 64,
		HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1,
	}
	task := clusterkv.BuildTask(spec, 1)
	cfg := clusterkv.DefaultInfiniGenConfig()
	cfg.BypassLayers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusterkv.RunTrace(task.Trace, clusterkv.NewInfiniGen(cfg), 512)
	}
}

// BenchmarkTransformerPrefill measures the engine's parallel prefill.
func BenchmarkTransformerPrefill(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := m.NewSequence(nil, 0)
		seq.Prefill(doc, nil)
	}
}

// benchPrefillAtWidth prefills a 4k-token prompt with the intra-op pool
// pinned to the given width and reports tokens/sec. The acceptance target
// for the parallel kernels is ≥ 2.5x tok/s at 4 workers vs 1 worker on a
// ≥ 4-core machine (conformance tests prove the outputs are bit-identical).
func benchPrefillAtWidth(b *testing.B, width int) {
	const promptLen = 4096
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), promptLen)
	clusterkv.SetIntraOpWorkers(width)
	defer clusterkv.SetIntraOpWorkers(runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := m.NewSequence(nil, 0)
		seq.Prefill(doc, nil)
	}
	b.StopTimer()
	b.ReportMetric(float64(promptLen)*float64(b.N)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkPrefill4kSerial is the single-worker baseline on a 4k prompt.
func BenchmarkPrefill4kSerial(b *testing.B) { benchPrefillAtWidth(b, 1) }

// BenchmarkPrefill4kWorkers2 runs the same prefill at pool width 2.
func BenchmarkPrefill4kWorkers2(b *testing.B) { benchPrefillAtWidth(b, 2) }

// BenchmarkPrefill4kWorkers4 runs the same prefill at pool width 4 (the
// ≥ 2.5x acceptance point on 4-core hardware).
func BenchmarkPrefill4kWorkers4(b *testing.B) { benchPrefillAtWidth(b, 4) }

// BenchmarkPrefill4kWorkers8 runs the same prefill at pool width 8.
func BenchmarkPrefill4kWorkers8(b *testing.B) { benchPrefillAtWidth(b, 8) }

// BenchmarkServeEngine measures the continuous-batching engine over a small
// shared-document QA load (8 requests, 2 shared docs, ClusterKV selectors).
func BenchmarkServeEngine(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	lc := clusterkv.DefaultLoadConfig()
	lc.DocLen = 512
	lc.NRequests = 8
	lc.MaxNewTokens = 8
	load := clusterkv.NewLoad(lc)
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          256,
			NewSelector: func() clusterkv.Selector {
				return clusterkv.New(clusterkv.DefaultConfig())
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := clusterkv.NewEngine(m, clusterkv.EngineConfig{MaxBatch: 8, Workers: 1, Seed: 1})
		eng.Run(reqs)
		eng.Close()
	}
}

// BenchmarkServeTwoTierAsync measures the engine under two-tier admission
// with the async transfer runtime: device budget below one request's prefill
// footprint (unservable single-tier), host tier absorbing cold spills, and
// layer-ahead prefetch overlapping the modeled channel. Reports the fraction
// of transfer time hidden behind compute.
func BenchmarkServeTwoTierAsync(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	lc := clusterkv.DefaultLoadConfig()
	lc.DocLen = 512
	lc.NRequests = 8
	lc.MaxNewTokens = 8
	load := clusterkv.NewLoad(lc)
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          64,
			NewSelector: func() clusterkv.Selector {
				return clusterkv.New(clusterkv.DefaultConfig())
			},
		}
	}
	b.ResetTimer()
	var hidden float64
	for i := 0; i < b.N; i++ {
		eng := clusterkv.NewEngine(m, clusterkv.EngineConfig{
			MaxBatch: 2, Workers: 2, Seed: 1,
			KVBudget: 512, HostBudget: 16384, XferSecPerPage: 2e-6,
		})
		eng.Run(reqs)
		eng.Close() // drain the transfer worker before reading telemetry
		hidden = eng.Metrics().Transfer.HiddenFrac()
	}
	b.StopTimer()
	b.ReportMetric(hidden*100, "hidden%")
}

// BenchmarkServeSerialBaseline decodes the same load one request at a time
// through the plain Sequence API (the replayer the engine is compared to).
func BenchmarkServeSerialBaseline(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	lc := clusterkv.DefaultLoadConfig()
	lc.DocLen = 512
	lc.NRequests = 8
	lc.MaxNewTokens = 8
	load := clusterkv.NewLoad(lc)
	logits := make([]float32, clusterkv.DefaultModelConfig().VocabSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range load {
			seq := m.NewSequence(clusterkv.New(clusterkv.DefaultConfig()), 256)
			seq.Prefill(q.Prompt, nil)
			tok := q.Prompt[len(q.Prompt)-1]
			for j := 0; j < q.MaxNewTokens; j++ {
				seq.DecodeInto(tok, logits)
				tok = argmax(logits)
			}
		}
	}
}

// BenchmarkForkDivergence measures the paged prefix-sharing fast path: one
// prefilled document snapshot forked into fresh sequences that each append a
// short divergent tail. With block-granular COW only the boundary page is
// copied per fork, so the fork itself is O(pages) page-table work, not
// O(tokens) KV copying; the reported pages/fork metric is the arena cost of
// one divergent descendant.
func BenchmarkForkDivergence(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	arena := clusterkv.NewKVArena(clusterkv.DefaultKVPageTokens, nil)
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 1024)
	tail := clusterkv.Doc(clusterkv.DefaultDocConfig(), 16)

	base := m.NewSequenceIn(arena, nil, 0)
	base.Prefill(doc, nil)
	snap := base.Snapshot()
	base.Release()
	pagesBefore := arena.LivePages()

	b.ResetTimer()
	var pagesPerFork float64
	for i := 0; i < b.N; i++ {
		seq := m.NewSequenceFrom(snap, nil, 0)
		seq.Prefill(tail, nil)
		pagesPerFork = float64(arena.LivePages() - pagesBefore)
		seq.Release()
	}
	b.StopTimer()
	snap.Release()
	b.ReportMetric(pagesPerFork, "pages/fork")
}

// BenchmarkDecodeSteadyAllocs asserts the steady-state decode allocation
// contract (DESIGN.md §12): with reusable attention scratch, the packed
// LM-head GEMV and a caller-provided logits buffer, a full-attention decode
// round allocates nothing once rope tables and scratch capacities have
// warmed up. Page-boundary rounds legitimately allocate (one page per
// (layer, kvHead) plane every PageTokens steps); the measured window is
// placed to avoid them. Runs in `make bench-smoke`, so a regression that
// reintroduces per-round allocations fails CI rather than silently eroding
// decode tok/s.
func BenchmarkDecodeSteadyAllocs(b *testing.B) {
	clusterkv.SetIntraOpWorkers(1)
	defer clusterkv.SetIntraOpWorkers(runtime.GOMAXPROCS(0))
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 1024)
	seq := m.NewSequence(nil, 0)
	seq.Prefill(doc, nil)
	logits := make([]float32, m.Config().VocabSize)
	tok := doc[0]
	// Warm-up: cross the post-prefill page boundary, grow rope headroom and
	// the scratch buffers.
	for i := 0; i < 4; i++ {
		seq.DecodeInto(tok, logits)
	}
	allocs := testing.AllocsPerRun(40, func() { seq.DecodeInto(tok, logits) })
	b.ReportMetric(allocs, "allocs/round")
	if allocs > 0.5 {
		b.Fatalf("steady-state decode allocates %.1f objects/round, want 0", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.DecodeInto(tok, logits)
	}
}

// BenchmarkBatchDecodeSteadyAllocs extends the steady-state allocation
// contract to the batched cross-stream decode path: once the decoder's
// gather/scratch matrices have grown to cohort size and the post-prefill
// page boundaries are behind it, a batched round over a 4-stream cohort
// allocates nothing. Prompt lengths are page-aligned so the next
// page-boundary allocation falls outside the measured window.
func BenchmarkBatchDecodeSteadyAllocs(b *testing.B) {
	clusterkv.SetIntraOpWorkers(1)
	defer clusterkv.SetIntraOpWorkers(runtime.GOMAXPROCS(0))
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	const streams = 4
	bd := m.NewBatchDecoder()
	seqs := make([]*clusterkv.Sequence, streams)
	toks := make([]int, streams)
	lgs := make([][]float32, streams)
	for i := 0; i < streams; i++ {
		doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 512+64*i)
		seqs[i] = m.NewSequence(nil, 0)
		seqs[i].Prefill(doc, nil)
		toks[i] = doc[len(doc)-1]
		lgs[i] = make([]float32, m.Config().VocabSize)
	}
	for i := 0; i < 4; i++ {
		bd.DecodeInto(seqs, toks, lgs)
	}
	allocs := testing.AllocsPerRun(40, func() { bd.DecodeInto(seqs, toks, lgs) })
	b.ReportMetric(allocs, "allocs/round")
	if allocs > 0.5 {
		b.Fatalf("steady-state batched decode allocates %.1f objects/round, want 0", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.DecodeInto(seqs, toks, lgs)
	}
}

// BenchmarkTransformerDecode measures one decode step with ClusterKV active.
func BenchmarkTransformerDecode(b *testing.B) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 1024)
	seq := m.NewSequence(clusterkv.New(clusterkv.DefaultConfig()), 256)
	seq.Prefill(doc, nil)
	logits := make([]float32, clusterkv.DefaultModelConfig().VocabSize)
	b.ResetTimer()
	tok := doc[0]
	for i := 0; i < b.N; i++ {
		seq.DecodeInto(tok, logits)
		tok = int(logits[0]) & 63 // cheap pseudo-token to vary input
		if tok < 0 {
			tok = 0
		}
	}
}

package clusterkv_test

import (
	"math"
	"testing"

	"clusterkv"
)

// TestEndToEndDecodeWithEveryMethod runs the full transformer with each
// compression method over a real prefill+decode cycle and checks basic
// sanity: finite logits, correct budget behaviour, recorded stats.
func TestEndToEndDecodeWithEveryMethod(t *testing.T) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 768)

	methods := map[string]clusterkv.Selector{
		"ClusterKV":    clusterkv.New(clusterkv.DefaultConfig()),
		"Quest":        clusterkv.NewQuest(clusterkv.DefaultQuestConfig()),
		"InfiniGen":    clusterkv.NewInfiniGen(clusterkv.DefaultInfiniGenConfig()),
		"H2O":          clusterkv.NewH2O(clusterkv.DefaultH2OConfig()),
		"StreamingLLM": clusterkv.NewStreamingLLM(clusterkv.DefaultStreamingConfig()),
		"FullKV":       clusterkv.NewFullKV(),
	}
	for name, sel := range methods {
		t.Run(name, func(t *testing.T) {
			seq := m.NewSequence(sel, 128)
			seq.Prefill(doc, nil)
			tok := doc[len(doc)-1]
			for i := 0; i < 8; i++ {
				logits := seq.Decode(tok)
				for _, v := range logits {
					if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
						t.Fatalf("%s produced non-finite logits", name)
					}
				}
				tok = argmax(logits)
			}
			if sel.Stats().Steps != 8 {
				t.Fatalf("%s counted %d steps", name, sel.Stats().Steps)
			}
		})
	}
}

// TestCompressionEqualsFullWhenBudgetCovers checks the exactness property:
// with a budget at least the context length, every recallable method must
// reproduce full attention bit-for-bit (selection returns nil).
func TestCompressionEqualsFullWhenBudgetCovers(t *testing.T) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	doc := clusterkv.Doc(clusterkv.DefaultDocConfig(), 300)

	run := func(sel clusterkv.Selector) []float32 {
		seq := m.NewSequence(sel, 100000)
		seq.Prefill(doc[:280], nil)
		var last []float32
		for _, tok := range doc[280:] {
			last = seq.Decode(tok)
		}
		return last
	}
	want := run(clusterkv.NewFullKV())
	for _, mk := range []func() clusterkv.Selector{
		func() clusterkv.Selector { return clusterkv.New(clusterkv.DefaultConfig()) },
		func() clusterkv.Selector { return clusterkv.NewQuest(clusterkv.DefaultQuestConfig()) },
		func() clusterkv.Selector { return clusterkv.NewInfiniGen(clusterkv.DefaultInfiniGenConfig()) },
	} {
		got := run(mk())
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("budget >= n did not reproduce full attention at logit %d", i)
			}
		}
	}
}

// TestDeterministicEndToEnd ensures the whole pipeline — model, workload,
// compression, metrics — is reproducible run-to-run.
func TestDeterministicEndToEnd(t *testing.T) {
	spec := clusterkv.LongBenchTasks(1024)[0]
	runOnce := func() float64 {
		task := clusterkv.BuildTask(spec, 42)
		cfg := clusterkv.DefaultConfig()
		cfg.BypassLayers = 0
		return clusterkv.RunTrace(task.Trace, clusterkv.New(cfg), 128).MeanRecall()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("pipeline not deterministic: %v vs %v", a, b)
	}
}

// TestClusterKVBeatsNonRecallableOnRevisit encodes the paper's central
// claim: when importance returns to earlier tokens, recallable compression
// (ClusterKV) must beat non-recallable eviction (H2O, StreamingLLM) on
// needle retrieval.
func TestClusterKVBeatsNonRecallableOnRevisit(t *testing.T) {
	spec := clusterkv.TaskSpec{
		Name: "revisit", BaseScore: 1,
		CtxLen: 4096, NumNeedles: 3, NeedleTokens: 16, SpreadRegion: 512,
		AnswerSteps: 24, HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1,
	}
	task := clusterkv.BuildTask(spec, 17)
	budget := 256

	ckvCfg := clusterkv.DefaultConfig()
	ckvCfg.BypassLayers = 0
	ckv := clusterkv.RunTrace(task.Trace, clusterkv.New(ckvCfg), budget).MeanNeedleFidelity()

	h2oCfg := clusterkv.DefaultH2OConfig()
	h2oCfg.BypassLayers = 0
	h2o := clusterkv.RunTrace(task.Trace, clusterkv.NewH2O(h2oCfg), budget).MeanNeedleFidelity()

	strCfg := clusterkv.DefaultStreamingConfig()
	strCfg.BypassLayers = 0
	str := clusterkv.RunTrace(task.Trace, clusterkv.NewStreamingLLM(strCfg), budget).MeanNeedleFidelity()

	if ckv <= h2o || ckv <= str {
		t.Fatalf("recallability claim failed: ClusterKV=%.3f H2O=%.3f StreamingLLM=%.3f", ckv, h2o, str)
	}
}

// TestCostModelHeadline checks the Fig. 12 headline shape end to end through
// the public facade: compressed decoding beats full KV at long context.
func TestCostModelHeadline(t *testing.T) {
	hw := clusterkv.AdaRTX6000()
	shape := clusterkv.Llama31_8B()
	full := hw.DecodeStepFull(shape, 32768).Total
	step := hw.DecodeStepClusterKV(shape, clusterkv.ClusterKVCounts{
		Budget: 1024, Clusters: 410, MissRate: 0.3,
	})
	if full/step.Total < 1.5 {
		t.Fatalf("throughput gain %v too small", full/step.Total)
	}
}

// TestServingEngineEndToEnd drives the public serving API: a QA load over
// shared documents, mixed tenants, deterministic results that match serial
// one-at-a-time decode.
func TestServingEngineEndToEnd(t *testing.T) {
	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	lc := clusterkv.DefaultLoadConfig()
	lc.DocLen = 384
	lc.NRequests = 6
	lc.QuestionLen = 16
	lc.MaxNewTokens = 8
	load := clusterkv.NewLoad(lc)

	sels := []func() clusterkv.Selector{
		func() clusterkv.Selector { return clusterkv.New(clusterkv.DefaultConfig()) },
		func() clusterkv.Selector { return clusterkv.NewQuest(clusterkv.DefaultQuestConfig()) },
		nil, // full attention
	}
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
		}
		if sel := sels[i%len(sels)]; sel != nil {
			reqs[i].Budget = 128
			reqs[i].NewSelector = sel
		}
	}

	cfg := clusterkv.DefaultEngineConfig()
	cfg.MaxBatch = 3
	cfg.Seed = 7
	eng := clusterkv.NewEngine(m, cfg)
	resps := eng.Run(reqs)
	mx := eng.Metrics()
	eng.Close()

	if mx.Completed != 6 || mx.Failed != 0 {
		t.Fatalf("completed %d failed %d", mx.Completed, mx.Failed)
	}
	if mx.PrefixHits == 0 {
		t.Fatal("shared documents produced no prefix-cache hits")
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		var sel clusterkv.Selector
		if reqs[i].NewSelector != nil {
			sel = reqs[i].NewSelector()
		}
		seq := m.NewSequence(sel, reqs[i].Budget)
		seq.Prefill(reqs[i].Prompt, nil)
		tok := reqs[i].Prompt[len(reqs[i].Prompt)-1]
		for j := 0; j < reqs[i].MaxNewTokens; j++ {
			tok = argmax(seq.Decode(tok))
			if r.Tokens[j] != tok {
				t.Fatalf("request %d diverges from serial decode at token %d", i, j)
			}
		}
	}
}

func argmax(x []float32) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"clusterkv/internal/metrics"
)

// Span attribution (DESIGN.md §14): every retired request carries a
// Breakdown — its modeled wall time on the engine's attribution clock, tiled
// exactly into phases — and an Attribution aggregates breakdowns into the
// per-phase critical-path view an operator reads: totals, wall fractions,
// quantiles and the top-K slowest requests. Phases are priced by
// memsim.LatencyModel from deterministic counts (tokens, pages, rounds), so
// a request's breakdown reproduces run-to-run; the only measured fields are
// the transfer-stall pair (XferExposedSec/XferHiddenSec), which — like the
// overlap counters of DESIGN.md §8 — are telemetry excluded from the
// determinism fingerprint.

// Phase enumerates the slices a request's modeled wall time is tiled into.
// The tiling is exact: summed over phases, a Breakdown reproduces the
// modeled wall time between the round the request was first seen and the
// round it retired.
type Phase uint8

const (
	// PhaseQueue is time spent queued before the request's first admission
	// attempt (intake to head-of-line).
	PhaseQueue Phase = iota
	// PhaseAdmit is time spent retrying admission at the head of the line
	// while the KV budget was busy.
	PhaseAdmit
	// PhasePrefill is the request's own prefill compute, after prefix-reuse
	// credit (only the suffix the radix cache couldn't serve is charged).
	PhasePrefill
	// PhaseDecode is the request's own decode rounds: one batched
	// weight-streaming step per resident round.
	PhaseDecode
	// PhaseInterference is co-scheduled streams' prefill compute during the
	// request's residency — the continuous-batching head-of-line cost.
	PhaseInterference
	// PhaseTiering is spill/promote channel time charged to rounds the
	// request was resident in.
	PhaseTiering
	// NumPhases bounds the enum.
	NumPhases
)

// String returns the phase's taxonomy name.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseAdmit:
		return "admit"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	case PhaseInterference:
		return "interference"
	case PhaseTiering:
		return "tiering"
	}
	return "unknown"
}

// Breakdown is one request's span tree flattened: the modeled begin/end
// rounds, the exact per-phase tiling of the wall time between them, and the
// attribution side-channels (prefix credit, measured transfer stalls, SLO
// margin).
type Breakdown struct {
	// Req is the engine request id; Replica the serving replica (-1 when
	// single-engine).
	Req     uint64
	Replica int
	// SeenRound is the round the scheduler first considered the request,
	// AdmitRound the round it joined the batch, DoneRound the round it
	// retired.
	SeenRound, AdmitRound, DoneRound int64
	// Phases is the exact tiling of the request's modeled wall time.
	Phases [NumPhases]float64
	// PrefixCreditSec is the modeled prefill time avoided by radix
	// prefix reuse — what PhasePrefill would have cost extra without it.
	PrefixCreditSec float64
	// DecodeRounds counts resident decode rounds; BatchedRounds how many of
	// them ran as a batched cohort (DESIGN.md §13).
	DecodeRounds, BatchedRounds int64
	// XferExposedSec and XferHiddenSec are the request's measured transfer
	// stalls: modeled channel time that blocked compute vs modeled channel
	// time hidden behind it (DESIGN.md §8). Wall-clock dependent — telemetry
	// only, excluded from determinism fingerprints and the span stream.
	XferExposedSec, XferHiddenSec float64
	// SLOMarginSec is min(SLO − modeled) over the configured SLOs, stamped
	// by the fleet router (HasSLO reports whether it was).
	SLOMarginSec float64
	HasSLO       bool
}

// Wall returns the request's modeled wall time: the sum of all phases,
// which by construction equals the attribution clock's span from SeenRound
// to DoneRound.
func (b *Breakdown) Wall() float64 {
	var w float64
	for _, s := range b.Phases {
		w += s
	}
	return w
}

// AttributionTopK is how many slowest requests a snapshot retains.
const AttributionTopK = 8

// Attribution aggregates Breakdowns. Each serve engine observes its own
// retirements from the scheduler loop (deterministic order); the fleet
// router merges per-replica aggregators in replica order, so snapshots
// reproduce per seed. Safe for concurrent use.
type Attribution struct {
	mu        sync.Mutex
	n         int
	phase     [NumPhases]metrics.Summary
	phaseTot  [NumPhases]float64
	wall      metrics.Summary
	credit    float64
	xferExp   float64
	xferHid   float64
	batched   int64
	decRounds int64
	slo       metrics.Summary
	top       []Breakdown
}

// NewAttribution returns an empty aggregator.
func NewAttribution() *Attribution { return &Attribution{} }

// Observe records one request's breakdown.
func (a *Attribution) Observe(b Breakdown) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	for p := Phase(0); p < NumPhases; p++ {
		a.phase[p].Add(b.Phases[p])
		a.phaseTot[p] += b.Phases[p]
	}
	a.wall.Add(b.Wall())
	a.credit += b.PrefixCreditSec
	a.xferExp += b.XferExposedSec
	a.xferHid += b.XferHiddenSec
	a.batched += b.BatchedRounds
	a.decRounds += b.DecodeRounds
	if b.HasSLO {
		a.slo.Add(b.SLOMarginSec)
	}
	a.insertTop(b)
}

func (a *Attribution) insertTop(b Breakdown) {
	a.top = append(a.top, b)
	sort.SliceStable(a.top, func(i, j int) bool {
		wi, wj := a.top[i].Wall(), a.top[j].Wall()
		if wi != wj {
			return wi > wj
		}
		if a.top[i].Replica != a.top[j].Replica {
			return a.top[i].Replica < a.top[j].Replica
		}
		return a.top[i].Req < a.top[j].Req
	})
	if len(a.top) > AttributionTopK {
		a.top = a.top[:AttributionTopK]
	}
}

// Merge folds other into a. Call in a deterministic order (replica index)
// on quiesced aggregators to keep merged snapshots reproducible.
func (a *Attribution) Merge(other *Attribution) {
	if other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += other.n
	for p := Phase(0); p < NumPhases; p++ {
		a.phase[p].Merge(&other.phase[p])
		a.phaseTot[p] += other.phaseTot[p]
	}
	a.wall.Merge(&other.wall)
	a.credit += other.credit
	a.xferExp += other.xferExp
	a.xferHid += other.xferHid
	a.batched += other.batched
	a.decRounds += other.decRounds
	a.slo.Merge(&other.slo)
	for _, b := range other.top {
		a.insertTop(b)
	}
}

// PhaseStats is one phase's aggregate view in a snapshot.
type PhaseStats struct {
	Phase    string
	TotalSec float64
	// FracWall is this phase's share of the summed modeled wall time.
	FracWall      float64
	P50, P95, Max float64
}

// AttributionSnapshot is the exported aggregate: per-phase totals and
// quantiles, wall stats, attribution side-channels, and the top-K slowest
// requests.
type AttributionSnapshot struct {
	Requests int
	// WallSec is the summed modeled wall time across requests;
	// WallP50/WallP95/WallMax its distribution.
	WallSec                     float64
	WallP50, WallP95, WallMax   float64
	Phases                      []PhaseStats
	PrefixCreditSec             float64
	XferExposedSec              float64
	XferHiddenSec               float64
	DecodeRounds, BatchedRounds int64
	// SLON counts requests with an SLO margin; SLOMarginP50/Min summarize it.
	SLON                       int
	SLOMarginP50, SLOMarginMin float64
	Slowest                    []Breakdown
}

// Snapshot returns the current aggregate.
func (a *Attribution) Snapshot() AttributionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	var wallTot float64
	for p := Phase(0); p < NumPhases; p++ {
		wallTot += a.phaseTot[p]
	}
	s := AttributionSnapshot{
		Requests:        a.n,
		WallSec:         wallTot,
		WallP50:         a.wall.Quantile(0.5),
		WallP95:         a.wall.Quantile(0.95),
		WallMax:         a.wall.Max(),
		PrefixCreditSec: a.credit,
		XferExposedSec:  a.xferExp,
		XferHiddenSec:   a.xferHid,
		DecodeRounds:    a.decRounds,
		BatchedRounds:   a.batched,
		SLON:            a.slo.N(),
		Slowest:         append([]Breakdown(nil), a.top...),
	}
	if s.SLON > 0 {
		s.SLOMarginP50 = a.slo.Quantile(0.5)
		s.SLOMarginMin = a.slo.Min()
	}
	for p := Phase(0); p < NumPhases; p++ {
		ps := PhaseStats{
			Phase:    p.String(),
			TotalSec: a.phaseTot[p],
			P50:      a.phase[p].Quantile(0.5),
			P95:      a.phase[p].Quantile(0.95),
			Max:      a.phase[p].Max(),
		}
		if wallTot > 0 {
			ps.FracWall = a.phaseTot[p] / wallTot
		}
		s.Phases = append(s.Phases, ps)
	}
	return s
}

// FillRegistry publishes the snapshot's aggregates into reg under
// clusterkv_attr_* names, labeled by phase plus any caller labels (e.g. one
// series set per method or per routing policy).
func (s AttributionSnapshot) FillRegistry(reg *Registry, labels ...Label) {
	reg.Counter("clusterkv_attr_requests_total", labels...).Set(int64(s.Requests))
	reg.Gauge("clusterkv_attr_wall_seconds", labels...).Set(s.WallSec)
	reg.Gauge("clusterkv_attr_prefix_credit_seconds", labels...).Set(s.PrefixCreditSec)
	reg.Gauge("clusterkv_attr_xfer_exposed_seconds", labels...).Set(s.XferExposedSec)
	reg.Gauge("clusterkv_attr_xfer_hidden_seconds", labels...).Set(s.XferHiddenSec)
	reg.Counter("clusterkv_attr_decode_rounds_total", labels...).Set(s.DecodeRounds)
	reg.Counter("clusterkv_attr_batched_rounds_total", labels...).Set(s.BatchedRounds)
	for _, ps := range s.Phases {
		pl := append(append([]Label{}, labels...), L("phase", ps.Phase))
		reg.Gauge("clusterkv_attr_phase_seconds", pl...).Set(ps.TotalSec)
		reg.Gauge("clusterkv_attr_phase_frac_wall", pl...).Set(ps.FracWall)
		reg.Gauge("clusterkv_attr_phase_p95_seconds", pl...).Set(ps.P95)
	}
	if s.SLON > 0 {
		reg.Gauge("clusterkv_attr_slo_margin_p50_seconds", labels...).Set(s.SLOMarginP50)
		reg.Gauge("clusterkv_attr_slo_margin_min_seconds", labels...).Set(s.SLOMarginMin)
	}
}

// WriteTable renders the human-readable per-phase breakdown table.
func (s AttributionSnapshot) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "attribution: %d requests, modeled wall %.1f ms (p50 %.2f / p95 %.2f / max %.2f ms)\n",
		s.Requests, s.WallSec*1e3, s.WallP50*1e3, s.WallP95*1e3, s.WallMax*1e3)
	fmt.Fprintf(w, "  %-13s %12s %7s %10s %10s %10s\n", "phase", "total ms", "%wall", "p50 ms", "p95 ms", "max ms")
	for _, ps := range s.Phases {
		fmt.Fprintf(w, "  %-13s %12.2f %6.1f%% %10.3f %10.3f %10.3f\n",
			ps.Phase, ps.TotalSec*1e3, ps.FracWall*100, ps.P50*1e3, ps.P95*1e3, ps.Max*1e3)
	}
	fmt.Fprintf(w, "  prefix credit %.2f ms", s.PrefixCreditSec*1e3)
	if s.DecodeRounds > 0 {
		fmt.Fprintf(w, " | batched rounds %d/%d", s.BatchedRounds, s.DecodeRounds)
	}
	if s.XferExposedSec > 0 || s.XferHiddenSec > 0 {
		fmt.Fprintf(w, " | xfer exposed %.2f ms hidden %.2f ms",
			s.XferExposedSec*1e3, s.XferHiddenSec*1e3)
	}
	if s.SLON > 0 {
		fmt.Fprintf(w, " | slo margin p50 %.2f ms min %.2f ms",
			s.SLOMarginP50*1e3, s.SLOMarginMin*1e3)
	}
	fmt.Fprintln(w)
	for i, b := range s.Slowest {
		if i == 0 {
			fmt.Fprintf(w, "  slowest requests (modeled wall):\n")
		}
		rep := ""
		if b.Replica >= 0 {
			rep = fmt.Sprintf(" rep=%d", b.Replica)
		}
		fmt.Fprintf(w, "    req=%d%s wall=%.2fms queue=%.2f admit=%.2f prefill=%.2f decode=%.2f interf=%.2f tier=%.2f rounds=%d..%d\n",
			b.Req, rep, b.Wall()*1e3,
			b.Phases[PhaseQueue]*1e3, b.Phases[PhaseAdmit]*1e3,
			b.Phases[PhasePrefill]*1e3, b.Phases[PhaseDecode]*1e3,
			b.Phases[PhaseInterference]*1e3, b.Phases[PhaseTiering]*1e3,
			b.SeenRound, b.DoneRound)
	}
}

// String renders the breakdown table.
func (s AttributionSnapshot) String() string {
	var b strings.Builder
	s.WriteTable(&b)
	return strings.TrimRight(b.String(), "\n")
}

// SpanEvent encodes a Breakdown as EvSpan trace events: one parent span
// (the request's modeled wall) followed by its nonzero phase children in
// phase order. Event fields: Req = request id, Round = retire round,
// N = phase index (-1 for the parent), Aux = decode rounds (parent) /
// batched rounds (decode child), Sec = span begin on the attribution clock
// (seconds), Dur = span duration. Emission order and content are
// deterministic, so the EvSpan sub-stream reproduces per seed.
func EmitSpans(r Recorder, b *Breakdown, clockBegin float64) {
	if !r.Enabled() {
		return
	}
	r.Emit(Event{
		Type: EvSpan, Round: b.DoneRound, Req: b.Req,
		N: -1, Aux: b.DecodeRounds, Sec: clockBegin, Dur: b.Wall(),
	})
	at := clockBegin
	for p := Phase(0); p < NumPhases; p++ {
		d := b.Phases[p]
		if d <= 0 {
			continue
		}
		aux := int64(0)
		if p == PhaseDecode {
			aux = b.BatchedRounds
		}
		r.Emit(Event{
			Type: EvSpan, Round: b.DoneRound, Req: b.Req,
			N: int64(p), Aux: aux, Sec: at, Dur: d,
		})
		at += d
	}
}

// FillRegistry publishes the tracer's ring health under
// clusterkv_trace_* names — total events, retained, and dropped by ring
// wraparound (satellite: the overwrite-oldest ring must not drop silently).
func (t *Tracer) FillRegistry(reg *Registry) {
	if t == nil {
		return
	}
	reg.Counter("clusterkv_trace_events_total").Set(int64(t.Total()))
	reg.Gauge("clusterkv_trace_events_retained").Set(float64(t.Len()))
	reg.Counter("clusterkv_trace_events_dropped_total").Set(int64(t.Dropped()))
}

// Package obs is the unified observability layer: a deterministic structured
// trace recorder for the scheduling decisions the stack makes (scheduler
// rounds, admission, prefix-cache traffic, tier spills, layer-ahead prefetch,
// modeled PCIe transfers, fleet placement), a Chrome trace_event exporter
// that renders the modeled timeline for chrome://tracing / Perfetto, and a
// labeled metrics registry with a text exposition format.
//
// The layer's headline contract is that enabling it never perturbs the
// deterministic schedules the serving stack locks down (DESIGN.md §5–§9):
// events are typed values keyed by the modeled clock (scheduler round,
// modeled channel seconds), recording is an append into a bounded ring under
// a mutex that no scheduling decision ever reads back, and a disabled
// recorder is a nil check — no allocation, no lock, no branch into shared
// state. Traced and untraced runs produce identical tokens, rounds and
// metrics; CI locks this (internal/serve and internal/fleet traced-vs-
// untraced determinism suites).
package obs

import "sync"

// EventType enumerates the trace event taxonomy (DESIGN.md §10).
type EventType uint8

const (
	// EvRoundBegin opens scheduler round Round. N = active streams this
	// round, Aux = still-queued requests.
	EvRoundBegin EventType = iota
	// EvRoundEnd closes scheduler round Round, sampled at the round barrier
	// after the spill pass. N = device-resident slots, Aux = host-resident
	// slots.
	EvRoundEnd
	// EvAdmit records request Req entering the batch at round Round.
	// N = admission hold in raw slots, Aux = prefix disposition
	// (0 none, 1 hit, 2 builds).
	EvAdmit
	// EvRefuse records request Req refused as unadmittable (ErrTooLarge).
	// N = slots needed.
	EvRefuse
	// EvRetire records request Req leaving the batch at round Round.
	// N = tokens generated, Aux = 1 on failure.
	EvRetire
	// EvPrefixHit / EvPrefixMiss record a shared-prefix request served from /
	// building a cache entry (Req, N = prefix tokens; on a miss Aux = tokens
	// reused from a cached ancestor's pages via radix partial reuse, 0 on a
	// cold build). EvPrefixEvict records an idle entry dropped under budget
	// pressure at round Round (N = slots released, 0 under exact accounting
	// where pages free on release).
	EvPrefixHit
	EvPrefixMiss
	EvPrefixEvict
	// EvPageSpill / EvPagePromote record the between-rounds tiering pass
	// moving N raw slots device→host / host→device at round Round.
	EvPageSpill
	EvPagePromote
	// EvPrefetchIssue records a layer-ahead prefetch request of N pages.
	// EvPrefetchLand records N pages actually promoted by one serviced
	// prefetch; EvPrefetchDrop records N pages dropped for lack of evictable
	// device room.
	EvPrefetchIssue
	EvPrefetchLand
	EvPrefetchDrop
	// EvTransferStart / EvTransferComplete bracket one serviced transfer on
	// the modeled channel clock: Req = transfer sequence number, N = pages,
	// Sec = modeled channel-busy offset at start (seconds), Dur = modeled
	// duration (complete only), Aux = kind (0 fetch, 1 prefetch, 2 offload /
	// accounting-only).
	EvTransferStart
	EvTransferComplete
	// EvFleetPlace / EvFleetReroute / EvFleetShed record router decisions:
	// Req = request index in submission order, N = chosen replica (-1 shed),
	// Aux = marginal prefill tokens, Sec = predicted modeled TTFT.
	EvFleetPlace
	EvFleetReroute
	EvFleetShed
	// EvBatchRound records a round whose decode streams ran as one batched
	// cohort (Config.BatchDecode): N = cohort size (decoding streams),
	// Aux = prefill steps running per-stream alongside it.
	EvBatchRound
	// EvSpan records one attribution span on the modeled attribution clock
	// (DESIGN.md §14): Req = request id, Round = retire round, N = phase
	// index (-1 for the request's parent span), Sec = span begin (modeled
	// seconds), Dur = span duration, Aux = decode rounds (parent) / batched
	// rounds (decode phase). Emitted at retire via EmitSpans.
	EvSpan
)

// String returns the event type's taxonomy name.
func (t EventType) String() string {
	switch t {
	case EvRoundBegin:
		return "round-begin"
	case EvRoundEnd:
		return "round-end"
	case EvAdmit:
		return "admit"
	case EvRefuse:
		return "refuse"
	case EvRetire:
		return "retire"
	case EvPrefixHit:
		return "prefix-hit"
	case EvPrefixMiss:
		return "prefix-miss"
	case EvPrefixEvict:
		return "prefix-evict"
	case EvPageSpill:
		return "page-spill"
	case EvPagePromote:
		return "page-promote"
	case EvPrefetchIssue:
		return "prefetch-issue"
	case EvPrefetchLand:
		return "prefetch-land"
	case EvPrefetchDrop:
		return "prefetch-drop"
	case EvTransferStart:
		return "transfer-start"
	case EvTransferComplete:
		return "transfer-complete"
	case EvFleetPlace:
		return "fleet-place"
	case EvFleetReroute:
		return "fleet-reroute"
	case EvFleetShed:
		return "fleet-shed"
	case EvBatchRound:
		return "batch-round"
	case EvSpan:
		return "span"
	}
	return "unknown"
}

// Event is one typed trace record. Every field is a plain value on the
// modeled clock — no wall-clock timestamps, so a trace is as reproducible as
// the schedule it records. Field meaning is per-type (see the EventType
// constants); unused fields are zero.
type Event struct {
	Type EventType
	// Round is the scheduler round the event belongs to (0 when the event is
	// not round-scoped, e.g. transfers on the channel clock).
	Round int64
	// Replica is the lane the event belongs to: the replica index stamped by
	// the emitting Recorder, -1 for the fleet router's own decisions.
	Replica int
	// Req identifies the request (engine request id, fleet submission index)
	// or transfer (runtime sequence number) the event concerns.
	Req uint64
	// N and Aux are the event's primary and secondary counts (slots, pages,
	// tokens, replica — per-type, see EventType).
	N, Aux int64
	// Sec and Dur are modeled seconds (channel-clock offset and duration for
	// transfers, predicted TTFT for fleet decisions).
	Sec, Dur float64
}

// Sink receives every recorded event in emission order, synchronously under
// the tracer lock — implementations must be fast and must never call back
// into the tracer.
type Sink interface {
	Emit(Event)
}

// DefaultRingCapacity bounds a NewTracer(0) ring.
const DefaultRingCapacity = 1 << 16

// Tracer records events into a bounded ring. When the ring is full the
// oldest event is overwritten and counted dropped: tracing is telemetry, it
// must never grow without bound or stall the scheduler. A nil *Tracer is a
// valid, permanently disabled tracer.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest retained event
	n       int // retained events
	total   uint64
	dropped uint64
	sinks   []Sink
}

// NewTracer returns a tracer retaining up to capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Attach adds a sink receiving every subsequent event.
func (t *Tracer) Attach(s Sink) {
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Recorder returns a recorder stamping events with the given replica lane
// (-1 for router/global events). Valid on a nil tracer: the returned
// recorder is disabled.
func (t *Tracer) Recorder(replica int) Recorder {
	if t == nil {
		return Recorder{}
	}
	return Recorder{t: t, replica: replica}
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	t.total++
	if t.n == len(t.buf) {
		// Ring full: overwrite the oldest event.
		t.start++
		if t.start == len(t.buf) {
			t.start = 0
		}
		t.n--
		t.dropped++
	}
	i := t.start + t.n
	if i >= len(t.buf) {
		i -= len(t.buf)
	}
	t.buf[i] = ev
	t.n++
	for _, s := range t.sinks {
		s.Emit(ev)
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of events ever recorded (retained + dropped).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns the number of events overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	head := len(t.buf) - t.start
	if head > t.n {
		head = t.n
	}
	copy(out, t.buf[t.start:t.start+head])
	copy(out[head:], t.buf[:t.n-head])
	return out
}

// Reset drops every retained event and zeroes the counters; attached sinks
// stay attached.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.n = 0, 0
	t.total, t.dropped = 0, 0
	t.mu.Unlock()
}

// Recorder is the emission handle instrumented code holds: a tracer plus the
// replica lane to stamp. The zero value is disabled — Emit on it is a single
// nil compare with no allocation, which is what lets the serving hot paths
// carry recorders unconditionally.
type Recorder struct {
	t       *Tracer
	replica int
}

// Enabled reports whether events will be recorded.
func (r Recorder) Enabled() bool { return r.t != nil }

// Replica returns the lane this recorder stamps.
func (r Recorder) Replica() int { return r.replica }

// Emit records ev, stamping the recorder's replica lane. A disabled
// recorder's Emit is a no-op.
func (r Recorder) Emit(ev Event) {
	if r.t == nil {
		return
	}
	ev.Replica = r.replica
	r.t.emit(ev)
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodedTrace mirrors the trace_event JSON object format so the test
// validates what an actual viewer would parse.
type decodedTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Ph    string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		Pid   int            `json:"pid"`
		Tid   int            `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	events := []Event{
		{Type: EvRoundBegin, Round: 1, Replica: 0, N: 2, Aux: 3},
		{Type: EvAdmit, Round: 1, Replica: 0, Req: 11, N: 128, Aux: 1},
		{Type: EvPrefixHit, Round: 1, Replica: 0, Req: 11, N: 96},
		{Type: EvPageSpill, Round: 2, Replica: 0, N: 64},
		{Type: EvPrefetchIssue, Replica: 0, N: 4},
		{Type: EvTransferStart, Replica: 0, Req: 0, N: 4, Sec: 0.001, Aux: 1},
		{Type: EvTransferComplete, Replica: 0, Req: 0, N: 4, Sec: 0.001, Dur: 0.0005, Aux: 1},
		{Type: EvRoundEnd, Round: 2, Replica: 0, N: 512, Aux: 128},
		{Type: EvRetire, Round: 3, Replica: 0, Req: 11, N: 6},
		{Type: EvFleetPlace, Replica: -1, Req: 0, N: 1, Aux: 208, Sec: 0.05},
		{Type: EvFleetShed, Replica: -1, Req: 1, N: -1, Sec: 0.3},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}

	valid := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	var slices, instants, counters, metas int
	pids := map[int]bool{}
	for i, ev := range tr.TraceEvents {
		if !valid[ev.Ph] {
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		if ev.Pid < 0 || ev.Ts < 0 {
			t.Fatalf("event %d: negative pid/ts: %+v", i, ev)
		}
		pids[ev.Pid] = true
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Fatalf("slice %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Fatalf("instant %q missing thread scope, got %q", ev.Name, ev.Scope)
			}
		case "C":
			counters++
		case "M":
			metas++
		}
	}
	// Router pid 0 and replica-0 pid 1, both named via metadata.
	if !pids[0] || !pids[1] {
		t.Fatalf("expected router pid 0 and replica pid 1, got pids %v", pids)
	}
	// round slice + transfer slice; kv counter; metadata for 2 processes.
	if slices != 2 || counters != 1 {
		t.Fatalf("got %d slices and %d counters, want 2 and 1", slices, counters)
	}
	if instants == 0 || metas == 0 {
		t.Fatalf("got %d instants, %d metadata records; want both > 0", instants, metas)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("empty input produced %d events", len(tr.TraceEvents))
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	events := []Event{
		{Type: EvRoundBegin, Round: 1, Replica: 2, N: 1},
		{Type: EvRoundBegin, Round: 1, Replica: 0, N: 1},
		{Type: EvFleetPlace, Replica: -1, Req: 0, N: 2},
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same events render to different bytes (metadata ordering must be deterministic)")
	}
}

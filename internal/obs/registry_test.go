package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Set is max-keeping: snapshot re-publishing can never rewind a counter.
	c.Set(3)
	if got := c.Value(); got != 5 {
		t.Fatalf("Set(3) rewound counter to %d, want 5", got)
	}
	c.Set(17)
	if got := c.Value(); got != 17 {
		t.Fatalf("Set(17) -> %d, want 17", got)
	}
}

func TestGaugeRoundTrips(t *testing.T) {
	var g Gauge
	for _, v := range []float64{0, 1.5, -3.25, 1e-9, 1e12} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Fatalf("gauge round-trip %v -> %v", v, got)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	n, sum, q50, _, max := h.Snapshot()
	if n != 4 || sum != 10 || max != 4 {
		t.Fatalf("n=%d sum=%v max=%v, want 4/10/4", n, sum, max)
	}
	if q50 != 2.5 {
		t.Fatalf("q50 = %v, want 2.5 (interpolated median)", q50)
	}
}

func TestRegistryIdempotentGetters(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", L("m", "a"))
	b := reg.Counter("x_total", L("m", "a"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if reg.Counter("x_total", L("m", "b")) == a {
		t.Fatal("different labels must return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("x_total", L("m", "a"))
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	fill := func(order []string) string {
		reg := NewRegistry()
		for _, name := range order {
			reg.Counter("b_total", L("m", name)).Set(1)
		}
		reg.Gauge("a_gauge").Set(2.5)
		h := reg.Histogram("c_seconds")
		h.Observe(1)
		h.Observe(3)
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return buf.String()
	}
	x := fill([]string{"p", "q", "r"})
	y := fill([]string{"r", "p", "q"})
	if x != y {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", x, y)
	}

	// Names sorted, one TYPE line each, histogram exposed as a summary.
	wantOrder := []string{
		"# TYPE a_gauge gauge",
		"a_gauge 2.5",
		"# TYPE b_total counter",
		`b_total{m="p"} 1`,
		`b_total{m="q"} 1`,
		`b_total{m="r"} 1`,
		"# TYPE c_seconds summary",
		`c_seconds{quantile="0.5"} 2`,
		`c_seconds{quantile="0.95"}`,
		`c_seconds{quantile="1"} 3`,
		"c_seconds_sum 4",
		"c_seconds_count 2",
	}
	lines := strings.Split(strings.TrimSpace(x), "\n")
	if len(lines) != len(wantOrder) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantOrder), x)
	}
	for i, want := range wantOrder {
		if !strings.HasPrefix(lines[i], want) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], want)
		}
	}
}

func TestLabelRenderingSorted(t *testing.T) {
	reg := NewRegistry()
	// Same label set in two orders must be the same series.
	a := reg.Gauge("g", L("z", "1"), L("a", "2"))
	b := reg.Gauge("g", L("a", "2"), L("z", "1"))
	if a != b {
		t.Fatal("label order must not split series")
	}
	a.Set(9)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `g{a="2",z="1"} 9`; !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition %q missing sorted labels %q", buf.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(3)
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "hits_total 3") {
		t.Fatalf("body missing counter:\n%s", rr.Body.String())
	}
}

package obs

import (
	"testing"
)

func TestTracerRingBoundedOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	rec := tr.Recorder(0)
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Type: EvAdmit, N: int64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", got)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		// Oldest first: the retained window is events 6..9.
		if want := int64(6 + i); ev.N != want {
			t.Fatalf("event %d: N = %d, want %d (oldest-first ordering)", i, ev.N, want)
		}
	}
}

func TestTracerEventsBeforeWraparound(t *testing.T) {
	tr := NewTracer(8)
	rec := tr.Recorder(3)
	for i := 0; i < 5; i++ {
		rec.Emit(Event{Type: EvRoundBegin, Round: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 5 || tr.Dropped() != 0 {
		t.Fatalf("got %d events, %d dropped; want 5, 0", len(evs), tr.Dropped())
	}
	for i, ev := range evs {
		if ev.Round != int64(i) {
			t.Fatalf("event %d: round %d, want %d", i, ev.Round, i)
		}
		if ev.Replica != 3 {
			t.Fatalf("event %d: replica %d, want 3 (stamped by recorder)", i, ev.Replica)
		}
	}
}

func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var rec Recorder // zero value = disabled
	if rec.Enabled() {
		t.Fatal("zero-value recorder reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Type: EvAdmit, Round: 12, Req: 34, N: 56})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	rec := tr.Recorder(2)
	if rec.Enabled() {
		t.Fatal("recorder from nil tracer reports enabled")
	}
	rec.Emit(Event{Type: EvAdmit}) // must not panic
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accessors must report empty")
	}
	tr.Reset() // must not panic
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	rec := tr.Recorder(0)
	for i := 0; i < 5; i++ {
		rec.Emit(Event{Type: EvRetire})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d total=%d dropped=%d, want zeros",
			tr.Len(), tr.Total(), tr.Dropped())
	}
	rec.Emit(Event{Type: EvRetire, N: 7})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].N != 7 {
		t.Fatalf("tracer unusable after Reset: %+v", evs)
	}
}

type captureSink struct{ evs []Event }

func (c *captureSink) Emit(ev Event) { c.evs = append(c.evs, ev) }

func TestTracerSinkSeesEveryEvent(t *testing.T) {
	tr := NewTracer(2) // smaller than the emission count: ring drops, sink keeps all
	sink := &captureSink{}
	tr.Attach(sink)
	rec := tr.Recorder(1)
	for i := 0; i < 6; i++ {
		rec.Emit(Event{Type: EvPageSpill, N: int64(i)})
	}
	if len(sink.evs) != 6 {
		t.Fatalf("sink saw %d events, want all 6 (ring bound must not apply)", len(sink.evs))
	}
	for i, ev := range sink.evs {
		if ev.N != int64(i) || ev.Replica != 1 {
			t.Fatalf("sink event %d: %+v", i, ev)
		}
	}
}

func TestEventTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for ty := EvRoundBegin; ty <= EvFleetShed; ty++ {
		s := ty.String()
		if s == "unknown" || s == "" {
			t.Fatalf("event type %d has no taxonomy name", ty)
		}
		if seen[s] {
			t.Fatalf("duplicate taxonomy name %q", s)
		}
		seen[s] = true
	}
	if EventType(200).String() != "unknown" {
		t.Fatal("out-of-range type must stringify as unknown")
	}
}

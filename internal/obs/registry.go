package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"clusterkv/internal/metrics"
)

// The metrics registry: one namespace of labeled counters, gauges and
// histograms that every subsystem's snapshot exports into, with a
// Prometheus-style text exposition. serve.Metrics, fleet.Summary and the
// arena gauges publish into a Registry via their FillRegistry methods, so
// one scrape (or one dump at exit) sees the whole stack under consistent
// names — the cmd drivers expose it behind -metrics / -metrics-addr.

// Label is one name=value dimension of an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set forces the counter to v when v is larger than the current value —
// snapshot publishing re-states cumulative totals rather than deltas.
func (c *Counter) Set(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float instrument that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Histogram accumulates a sample distribution (metrics.Summary under a
// mutex) and exposes it as a Prometheus summary: quantiles, sum, count.
type Histogram struct {
	mu sync.Mutex
	s  metrics.Summary
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.s.Add(v)
	h.mu.Unlock()
}

// Snapshot returns (n, sum, q50, q95, max).
func (h *Histogram) Snapshot() (n int, sum, q50, q95, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n = h.s.N()
	sum = h.s.Mean() * float64(n)
	q50 = h.s.Quantile(0.5)
	q95 = h.s.Quantile(0.95)
	max = h.s.Max()
	return
}

type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

type instrument struct {
	name   string
	labels string // rendered {k="v",...} or ""
	kind   instrumentKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds labeled instruments. Getting an instrument is idempotent:
// the same (name, labels) always returns the same instance, so publishers
// can re-fill on every snapshot. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*instrument{}}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) get(name string, kind instrumentKind, labels []Label) *instrument {
	rendered := renderLabels(labels)
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: instrument %s re-registered with a different kind", key))
		}
		return in
	}
	in := &instrument{name: name, labels: rendered, kind: kind}
	switch kind {
	case kindCounter:
		in.c = &Counter{}
	case kindGauge:
		in.g = &Gauge{}
	case kindHistogram:
		in.h = &Histogram{}
	}
	r.byKey[key] = in
	return in
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, kindCounter, labels).c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, kindGauge, labels).g
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.get(name, kindHistogram, labels).h
}

// WriteText writes the registry in the Prometheus text exposition format,
// deterministically ordered by (name, labels). Histograms expose as
// summaries (quantile series plus _sum and _count).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.byKey))
	for _, in := range r.byKey {
		ins = append(ins, in)
	}
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].name != ins[j].name {
			return ins[i].name < ins[j].name
		}
		return ins[i].labels < ins[j].labels
	})
	lastTyped := ""
	for _, in := range ins {
		if in.name != lastTyped {
			kind := "counter"
			switch in.kind {
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, kind); err != nil {
				return err
			}
			lastTyped = in.name
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", in.name, in.labels, in.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %g\n", in.name, in.labels, in.g.Value())
		case kindHistogram:
			n, sum, q50, q95, max := in.h.Snapshot()
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", q50}, {"0.95", q95}, {"1", max}} {
				ql := in.labels
				if ql == "" {
					ql = fmt.Sprintf("{quantile=%q}", q.q)
				} else {
					ql = ql[:len(ql)-1] + fmt.Sprintf(",quantile=%q}", q.q)
				}
				if _, err = fmt.Fprintf(w, "%s%s %g\n", in.name, ql, q.v); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				in.name, in.labels, sum, in.name, in.labels, n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the text exposition — the
// /metrics endpoint the cmd drivers mount behind -metrics-addr.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteText(w)
	})
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

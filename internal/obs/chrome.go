package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event exporter: renders a recorded event stream as the JSON
// object format chrome://tracing and Perfetto load (traceEvents array plus
// displayTimeUnit). The timeline is the *modeled* one, not wall clock:
//
//   - each replica becomes one process (pid), the fleet router pid 0;
//   - the scheduler lane renders rounds as back-to-back slices on the round
//     clock (one round = RoundUsec microseconds) with admissions, retirements
//     and prefix-cache traffic as instants inside their round;
//   - the transfer lane renders serviced transfers as slices on the modeled
//     PCIe channel clock (cumulative channel-busy seconds), so gaps are
//     genuine channel idle time;
//   - the tiering and prefetch lanes render spills/promotes and layer-ahead
//     prefetch traffic as instants;
//   - round-end gauges become counter tracks (device/host resident slots).
//
// The two clocks (round index, channel seconds) share one timeline; both
// start at zero, so lanes line up qualitatively — the export is a schedule
// viewer, not a latency profile.

// RoundUsec is the rendered width of one scheduler round in trace
// microseconds.
const RoundUsec = 1000

// Thread-lane ids within each replica process.
const (
	laneRounds = 1 + iota
	laneSched
	laneTransfers
	laneTiering
	lanePrefetch
)

// spanTidBase offsets per-request attribution-span lanes: request Req's
// span tree renders on tid spanTidBase+Req, so overlapping requests never
// share a B/E stack.
const spanTidBase = 100

// chromeEvent is one trace_event record. Fields follow the Trace Event
// Format; Scope/Args are optional.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`

	// depth is the span's nesting depth (0 parent, 1 phase child) — sort
	// key only, not marshaled.
	depth int
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// pidOf maps a replica lane to a trace process id: router (-1) → 0,
// replica i → i+1.
func pidOf(replica int) int { return replica + 1 }

func meta(name string, pid, tid int, value string) chromeEvent {
	args := map[string]any{"name": value}
	return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

// WriteChromeTrace renders events as Chrome trace_event JSON. Events may
// come straight from Tracer.Events; ordering within a lane follows the
// modeled clocks, not slice order.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return writeChromeTrace(w, events, 0)
}

// WriteChromeTraceFrom renders the tracer's retained events, annotating the
// trace with a warning instant when the ring has overwritten (dropped)
// events — the exported timeline is then a suffix of the run, not the whole
// run.
func WriteChromeTraceFrom(w io.Writer, t *Tracer) error {
	return writeChromeTrace(w, t.Events(), t.Dropped())
}

func writeChromeTrace(w io.Writer, events []Event, dropped uint64) error {
	var out []chromeEvent

	// Metadata: name every process and lane we will touch, including one
	// span lane per (replica, request) seen in the EvSpan stream.
	pids := map[int]bool{}
	spanTids := map[int]map[int]uint64{}
	for _, ev := range events {
		pid := pidOf(ev.Replica)
		pids[pid] = true
		if ev.Type == EvSpan && ev.N < 0 {
			if spanTids[pid] == nil {
				spanTids[pid] = map[int]uint64{}
			}
			spanTids[pid][spanTidBase+int(ev.Req)] = ev.Req
		}
	}
	var pidList []int
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		pname := fmt.Sprintf("replica %d", pid-1)
		if pid == 0 {
			pname = "fleet router"
		}
		out = append(out, meta("process_name", pid, 0, pname))
		for tid, lname := range map[int]string{
			laneRounds:    "rounds (round clock)",
			laneSched:     "scheduler events",
			laneTransfers: "pcie transfers (channel clock)",
			laneTiering:   "tier spill/promote",
			lanePrefetch:  "layer-ahead prefetch",
		} {
			out = append(out, meta("thread_name", pid, tid, lname))
		}
		for tid, req := range spanTids[pid] {
			out = append(out, meta("thread_name", pid, tid,
				fmt.Sprintf("req %d attribution (modeled)", req)))
		}
	}
	// Deterministic metadata order (map iteration above is not).
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		return out[i].Tid < out[j].Tid
	})

	if dropped > 0 {
		warnPid := 0
		if len(pidList) > 0 {
			warnPid = pidList[0]
		}
		out = append(out, chromeEvent{
			Name: "WARNING: tracer ring dropped events", Ph: "i", Ts: 0,
			Pid: warnPid, Tid: 0, Scope: "g",
			Args: map[string]any{"dropped": dropped,
				"note": "ring overwrote oldest events; timeline is a suffix of the run"},
		})
	}

	roundTs := func(round int64) float64 {
		if round < 1 {
			round = 1
		}
		return float64(round-1) * RoundUsec
	}
	instant := func(ev Event, tid int, name string, args map[string]any) chromeEvent {
		return chromeEvent{Name: name, Ph: "i", Ts: roundTs(ev.Round),
			Pid: pidOf(ev.Replica), Tid: tid, Scope: "t", Args: args}
	}

	// Attribution spans render as B/E pairs on per-request lanes; they are
	// collected separately and sorted so nesting is well-formed (a child
	// opens after its parent and closes before it) regardless of emission
	// interleaving in the ring.
	var spans []chromeEvent

	for _, ev := range events {
		pid := pidOf(ev.Replica)
		switch ev.Type {
		case EvSpan:
			tid := spanTidBase + int(ev.Req)
			name := fmt.Sprintf("req %d", ev.Req)
			depth := 0
			args := map[string]any{"req": ev.Req, "retire_round": ev.Round,
				"modeled_ms": ev.Dur * 1e3}
			if ev.N >= 0 {
				name = Phase(ev.N).String()
				depth = 1
				if Phase(ev.N) == PhaseDecode {
					args["batched_rounds"] = ev.Aux
				}
			} else {
				args["decode_rounds"] = ev.Aux
			}
			spans = append(spans,
				chromeEvent{Name: name, Ph: "B", Ts: ev.Sec * 1e6,
					Pid: pid, Tid: tid, Args: args, depth: depth},
				chromeEvent{Name: name, Ph: "E", Ts: (ev.Sec + ev.Dur) * 1e6,
					Pid: pid, Tid: tid, depth: depth})
		case EvRoundBegin:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("round %d", ev.Round), Ph: "X",
				Ts: roundTs(ev.Round), Dur: RoundUsec, Pid: pid, Tid: laneRounds,
				Args: map[string]any{"active": ev.N, "queued": ev.Aux},
			})
		case EvRoundEnd:
			out = append(out, chromeEvent{
				Name: "kv resident slots", Ph: "C",
				Ts: roundTs(ev.Round) + RoundUsec, Pid: pid, Tid: 0,
				Args: map[string]any{"device": ev.N, "host": ev.Aux},
			})
		case EvAdmit:
			out = append(out, instant(ev, laneSched, "admit",
				map[string]any{"req": ev.Req, "hold_slots": ev.N, "prefix": ev.Aux}))
		case EvRefuse:
			out = append(out, instant(ev, laneSched, "refuse",
				map[string]any{"req": ev.Req, "need_slots": ev.N}))
		case EvRetire:
			out = append(out, instant(ev, laneSched, "retire",
				map[string]any{"req": ev.Req, "tokens": ev.N, "failed": ev.Aux != 0}))
		case EvPrefixHit:
			out = append(out, instant(ev, laneSched, "prefix-hit",
				map[string]any{"req": ev.Req, "prefix_tokens": ev.N}))
		case EvPrefixMiss:
			out = append(out, instant(ev, laneSched, "prefix-miss",
				map[string]any{"req": ev.Req, "prefix_tokens": ev.N}))
		case EvPrefixEvict:
			out = append(out, instant(ev, laneSched, "prefix-evict",
				map[string]any{"released_slots": ev.N}))
		case EvBatchRound:
			out = append(out, instant(ev, laneSched, "batch-round",
				map[string]any{"cohort": ev.N, "prefills": ev.Aux}))
		case EvPageSpill:
			out = append(out, instant(ev, laneTiering, "spill",
				map[string]any{"slots": ev.N}))
		case EvPagePromote:
			out = append(out, instant(ev, laneTiering, "promote",
				map[string]any{"slots": ev.N}))
		case EvPrefetchIssue:
			out = append(out, instant(ev, lanePrefetch, "prefetch-issue",
				map[string]any{"pages": ev.N}))
		case EvPrefetchLand:
			out = append(out, instant(ev, lanePrefetch, "prefetch-land",
				map[string]any{"pages": ev.N}))
		case EvPrefetchDrop:
			out = append(out, instant(ev, lanePrefetch, "prefetch-drop",
				map[string]any{"pages": ev.N}))
		case EvTransferComplete:
			kind := "fetch"
			switch ev.Aux {
			case 1:
				kind = "prefetch"
			case 2:
				kind = "offload"
			}
			dur := ev.Dur * 1e6
			if dur <= 0 {
				dur = 1 // zero-cost transfers still get a visible sliver
			}
			out = append(out, chromeEvent{
				Name: kind, Ph: "X", Ts: ev.Sec * 1e6, Dur: dur,
				Pid: pid, Tid: laneTransfers,
				Args: map[string]any{"xfer": ev.Req, "pages": ev.N},
			})
		case EvTransferStart:
			// Rendered via the matching EvTransferComplete slice.
		case EvFleetPlace:
			out = append(out, chromeEvent{
				Name: "place", Ph: "i", Ts: float64(ev.Req) * RoundUsec,
				Pid: pid, Tid: laneSched, Scope: "t",
				Args: map[string]any{"req": ev.Req, "replica": ev.N,
					"marginal_tokens": ev.Aux, "pred_ttft_sec": ev.Sec},
			})
		case EvFleetReroute:
			out = append(out, chromeEvent{
				Name: "reroute", Ph: "i", Ts: float64(ev.Req) * RoundUsec,
				Pid: pid, Tid: laneSched, Scope: "t",
				Args: map[string]any{"req": ev.Req, "replica": ev.N,
					"pred_ttft_sec": ev.Sec},
			})
		case EvFleetShed:
			out = append(out, chromeEvent{
				Name: "shed", Ph: "i", Ts: float64(ev.Req) * RoundUsec,
				Pid: pid, Tid: laneSched, Scope: "t",
				Args: map[string]any{"req": ev.Req, "pred_ttft_sec": ev.Sec},
			})
		}
	}

	// Order each span lane so B/E nesting is well-formed: by timestamp; at
	// equal timestamps an E closes before a B opens (adjacent phases tile),
	// deeper spans close before their parent, and a parent opens before its
	// children.
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		ra, rb := 0, 0
		if a.Ph == "B" {
			ra = 1
		}
		if b.Ph == "B" {
			rb = 1
		}
		if ra != rb {
			return ra < rb // E before B at the same timestamp
		}
		if a.Ph == "E" {
			return a.depth > b.depth // children close before the parent
		}
		return a.depth < b.depth // the parent opens before its children
	})
	out = append(out, spans...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

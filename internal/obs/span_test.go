package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func mkBreakdown(req uint64, rep int, phases [NumPhases]float64) Breakdown {
	return Breakdown{
		Req: req, Replica: rep,
		SeenRound: 1, AdmitRound: 2, DoneRound: 5,
		Phases: phases, DecodeRounds: 4, BatchedRounds: 2,
	}
}

func TestAttributionObserveSnapshot(t *testing.T) {
	a := NewAttribution()
	b1 := mkBreakdown(1, -1, [NumPhases]float64{0.1, 0.2, 0.3, 0.4, 0, 0})
	b2 := mkBreakdown(2, -1, [NumPhases]float64{0.2, 0, 0.1, 0.5, 0.1, 0.1})
	b1.PrefixCreditSec = 0.05
	a.Observe(b1)
	a.Observe(b2)

	s := a.Snapshot()
	if s.Requests != 2 {
		t.Fatalf("Requests = %d, want 2", s.Requests)
	}
	wantWall := b1.Wall() + b2.Wall()
	if math.Abs(s.WallSec-wantWall) > 1e-12 {
		t.Fatalf("WallSec = %v, want %v", s.WallSec, wantWall)
	}
	if len(s.Phases) != int(NumPhases) {
		t.Fatalf("got %d phase rows, want %d", len(s.Phases), NumPhases)
	}
	var frac float64
	for _, ps := range s.Phases {
		frac += ps.FracWall
	}
	if math.Abs(frac-1) > 1e-12 {
		t.Fatalf("phase fractions sum to %v, want 1", frac)
	}
	if s.PrefixCreditSec != 0.05 {
		t.Fatalf("PrefixCreditSec = %v, want 0.05", s.PrefixCreditSec)
	}
	if s.DecodeRounds != 8 || s.BatchedRounds != 4 {
		t.Fatalf("rounds = %d/%d, want 8/4", s.BatchedRounds, s.DecodeRounds)
	}
	// Slowest list is sorted by modeled wall, descending.
	if len(s.Slowest) != 2 || s.Slowest[0].Req != 1 {
		t.Fatalf("Slowest = %+v, want req 1 (wall %v) first", s.Slowest, b1.Wall())
	}
	if !strings.Contains(s.String(), "attribution: 2 requests") {
		t.Fatalf("String() missing header:\n%s", s.String())
	}
}

func TestAttributionTopKBounded(t *testing.T) {
	a := NewAttribution()
	for i := 0; i < 3*AttributionTopK; i++ {
		b := mkBreakdown(uint64(i), -1, [NumPhases]float64{0, 0, 0, float64(i) * 0.01, 0, 0})
		a.Observe(b)
	}
	s := a.Snapshot()
	if len(s.Slowest) != AttributionTopK {
		t.Fatalf("retained %d slowest, want %d", len(s.Slowest), AttributionTopK)
	}
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].Wall() > s.Slowest[i-1].Wall() {
			t.Fatalf("Slowest not sorted descending at %d", i)
		}
	}
	if s.Slowest[0].Req != uint64(3*AttributionTopK-1) {
		t.Fatalf("slowest req = %d, want %d", s.Slowest[0].Req, 3*AttributionTopK-1)
	}
}

func TestAttributionMergeMatchesDirectObserve(t *testing.T) {
	var parts [2]*Attribution
	direct := NewAttribution()
	for rep := 0; rep < 2; rep++ {
		parts[rep] = NewAttribution()
		for i := 0; i < 5; i++ {
			b := mkBreakdown(uint64(rep*10+i), rep,
				[NumPhases]float64{0.01, 0, 0.02, float64(i+1) * 0.03, 0.004, 0})
			b.HasSLO = true
			b.SLOMarginSec = 0.5 - float64(i)*0.1
			parts[rep].Observe(b)
			direct.Observe(b)
		}
	}
	merged := NewAttribution()
	merged.Merge(parts[0])
	merged.Merge(parts[1])

	ms, ds := merged.Snapshot(), direct.Snapshot()
	if ms.Requests != ds.Requests || ms.WallSec != ds.WallSec ||
		ms.SLON != ds.SLON || ms.SLOMarginMin != ds.SLOMarginMin {
		t.Fatalf("merged snapshot diverges from direct:\n%+v\n%+v", ms, ds)
	}
	if len(ms.Slowest) != len(ds.Slowest) {
		t.Fatalf("slowest lengths differ: %d vs %d", len(ms.Slowest), len(ds.Slowest))
	}
	for i := range ms.Slowest {
		if ms.Slowest[i].Req != ds.Slowest[i].Req || ms.Slowest[i].Replica != ds.Slowest[i].Replica {
			t.Fatalf("slowest[%d] differs: %+v vs %+v", i, ms.Slowest[i], ds.Slowest[i])
		}
	}
}

func TestAttributionFillRegistry(t *testing.T) {
	a := NewAttribution()
	b := mkBreakdown(7, -1, [NumPhases]float64{0.1, 0, 0.2, 0.3, 0, 0.05})
	b.HasSLO = true
	b.SLOMarginSec = -0.01
	a.Observe(b)
	reg := NewRegistry()
	a.Snapshot().FillRegistry(reg)
	var buf bytes.Buffer
	reg.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"clusterkv_attr_requests_total 1",
		`clusterkv_attr_phase_seconds{phase="decode"}`,
		`clusterkv_attr_phase_frac_wall{phase="queue"}`,
		"clusterkv_attr_slo_margin_min_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry text missing %q:\n%s", want, out)
		}
	}
}

// TestEmitSpansTraceDeterministic locks the span sub-stream contract: the
// same breakdown emits an identical EvSpan sequence every time, parent first,
// children tiling the parent exactly.
func TestEmitSpansTraceDeterministic(t *testing.T) {
	b := mkBreakdown(3, 0, [NumPhases]float64{0.1, 0, 0.25, 0.4, 0.05, 0})
	emit := func() []Event {
		tr := NewTracer(64)
		EmitSpans(tr.Recorder(0), &b, 1.5)
		return tr.Events()
	}
	ev1, ev2 := emit(), emit()
	if len(ev1) == 0 || len(ev1) != len(ev2) {
		t.Fatalf("span streams differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("span stream not reproducible at %d: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	// Parent first, then nonzero phases in order, tiling [begin, begin+wall].
	if ev1[0].N != -1 || ev1[0].Sec != 1.5 || math.Abs(ev1[0].Dur-b.Wall()) > 1e-12 {
		t.Fatalf("parent span = %+v, want N=-1 Sec=1.5 Dur=%v", ev1[0], b.Wall())
	}
	at := 1.5
	var children float64
	for _, ev := range ev1[1:] {
		if ev.Type != EvSpan || ev.N < 0 {
			t.Fatalf("unexpected child event %+v", ev)
		}
		if math.Abs(ev.Sec-at) > 1e-12 {
			t.Fatalf("child %s begins at %v, want %v (children must tile)", Phase(ev.N), ev.Sec, at)
		}
		at += ev.Dur
		children += ev.Dur
	}
	if math.Abs(children-b.Wall()) > 1e-12 {
		t.Fatalf("children sum to %v, want parent wall %v", children, b.Wall())
	}
}

// TestChromeTraceSpanNesting validates the exported span lane the way a
// trace viewer would: unmarshal the JSON and check every per-(pid,tid) B/E
// stream is a well-formed stack — no span closes a parent before its
// children, no E without a B.
func TestChromeTraceSpanNesting(t *testing.T) {
	tr := NewTracer(256)
	rec := tr.Recorder(0)
	b1 := mkBreakdown(0, 0, [NumPhases]float64{0.1, 0.05, 0.3, 0.8, 0.02, 0.01})
	b2 := mkBreakdown(1, 0, [NumPhases]float64{0, 0, 0.2, 0.6, 0, 0})
	EmitSpans(rec, &b1, 0)
	EmitSpans(rec, &b2, 0.15) // overlaps b1's window: must land on its own lane
	rec.Emit(Event{Type: EvRoundBegin, Round: 1, N: 2})

	var buf bytes.Buffer
	if err := WriteChromeTraceFrom(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTraceFrom: %v", err)
	}
	var dec decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &dec); err != nil {
		t.Fatalf("span trace is not valid JSON: %v", err)
	}

	type lane struct{ pid, tid int }
	stacks := map[lane][]float64{} // open B timestamps per lane
	spanLanes := map[lane]bool{}
	var laneNames int
	for i, ev := range dec.TraceEvents {
		if ev.Ph == "M" && ev.Tid >= spanTidBase {
			laneNames++
			if name, _ := ev.Args["name"].(string); !strings.Contains(name, "attribution") {
				t.Fatalf("span lane meta %d has name %v", i, ev.Args["name"])
			}
		}
		if ev.Ph != "B" && ev.Ph != "E" {
			continue
		}
		l := lane{ev.Pid, ev.Tid}
		if ev.Tid < spanTidBase {
			t.Fatalf("event %d: B/E outside a span lane (tid %d)", i, ev.Tid)
		}
		spanLanes[l] = true
		switch ev.Ph {
		case "B":
			stacks[l] = append(stacks[l], ev.Ts)
		case "E":
			st := stacks[l]
			if len(st) == 0 {
				t.Fatalf("event %d: E with no open span on lane %+v", i, l)
			}
			if ev.Ts < st[len(st)-1] {
				t.Fatalf("event %d: span closes at %v before it opened at %v", i, ev.Ts, st[len(st)-1])
			}
			stacks[l] = st[:len(st)-1]
		}
	}
	for l, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("lane %+v left %d spans open", l, len(st))
		}
	}
	if len(spanLanes) != 2 {
		t.Fatalf("got %d span lanes, want 2 (one per request)", len(spanLanes))
	}
	if laneNames != 2 {
		t.Fatalf("got %d span-lane thread_name records, want 2", laneNames)
	}
	if strings.Contains(buf.String(), "WARNING: tracer ring dropped") {
		t.Fatal("no-drop trace carries a dropped-events warning")
	}
}

// TestChromeTraceDroppedWarning locks the satellite: a wrapped ring must
// announce the truncation in the exported trace instead of dropping silently.
func TestChromeTraceDroppedWarning(t *testing.T) {
	tr := NewTracer(4)
	rec := tr.Recorder(0)
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Type: EvRoundBegin, Round: int64(i + 1), N: 1})
	}
	if tr.Dropped() == 0 {
		t.Fatal("ring did not wrap; test needs a smaller capacity")
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceFrom(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTraceFrom: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING: tracer ring dropped events") {
		t.Fatalf("trace with %d dropped events carries no warning", tr.Dropped())
	}
	var dec decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &dec); err != nil {
		t.Fatalf("warning trace is not valid JSON: %v", err)
	}
}

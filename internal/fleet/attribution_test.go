package fleet

import (
	"math"
	"testing"

	"clusterkv/internal/obs"
)

// TestTraceFleetAttributionFingerprintNeutral extends the attribution
// tentpole's headline lock to the fleet: enabling attribution on every
// replica must not perturb placements, token streams, rounds, modeled
// latencies or summary counters — including under SLO-driven rerouting and
// shedding.
func TestTraceFleetAttributionFingerprintNeutral(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(3, 12)
	attrOn := func(c *Config) { c.Attribution = true }
	slo := func(c *Config) { c.SLOTTFT = 0.15; c.Shed = true }

	cases := []struct {
		name     string
		replicas int
		mutate   []func(*Config)
	}{
		{"1-replica", 1, nil},
		{"2-replicas", 2, nil},
		{"4-replicas", 4, nil},
		{"2-replicas/slo-shed", 2, []func(*Config){slo}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runFleet(t, m, tc.replicas, reqs, tc.mutate...)
			withAttr := append(append([]func(*Config){}, tc.mutate...), attrOn)
			got := runFleet(t, m, tc.replicas, reqs, withAttr...)
			if d := base.diff(got); d != "" {
				t.Fatalf("attribution-on fleet run differs: %s", d)
			}
		})
	}
}

// TestTraceFleetAttributionSummary locks the merged fleet view: every served
// request's breakdown is replica-stamped and SLO-margin-stamped, the merged
// aggregator counts exactly the served requests, and SLOMargin agrees with
// the SLOMiss verdict.
func TestTraceFleetAttributionSummary(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(3, 12)
	r := NewRouter(m, Config{
		Replicas:    2,
		Policy:      PolicyAffinity,
		Engine:      DefaultConfig().Engine,
		Seed:        7,
		SLOTTFT:     0.5, // loose: judged but nothing shed
		Attribution: true,
	})
	out := r.Run(reqs)
	sum := r.Summary()
	r.Close()

	served := 0
	var wallSum float64
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, out[i].Err)
		}
		served++
		b := out[i].Breakdown
		if b == nil {
			t.Fatalf("request %d served without a breakdown", i)
		}
		if b.Replica != out[i].Replica {
			t.Fatalf("request %d: breakdown replica %d, response replica %d",
				i, b.Replica, out[i].Replica)
		}
		if !b.HasSLO {
			t.Fatalf("request %d: SLO configured but HasSLO unset", i)
		}
		if b.SLOMarginSec != out[i].SLOMargin {
			t.Fatalf("request %d: breakdown margin %v, response margin %v",
				i, b.SLOMarginSec, out[i].SLOMargin)
		}
		if out[i].SLOMiss != (out[i].SLOMargin < 0) {
			t.Fatalf("request %d: SLOMiss=%v disagrees with margin %v",
				i, out[i].SLOMiss, out[i].SLOMargin)
		}
		wallSum += b.Wall()
	}

	s := sum.Attribution
	if s == nil {
		t.Fatal("Summary.Attribution is nil with Config.Attribution set")
	}
	if s.Requests != served {
		t.Fatalf("merged aggregator saw %d requests, want %d", s.Requests, served)
	}
	if math.Abs(s.WallSec-wallSum) > 1e-9 {
		t.Fatalf("merged wall %v != sum of breakdown walls %v", s.WallSec, wallSum)
	}
	if s.SLON != served {
		t.Fatalf("merged SLO margins cover %d requests, want %d", s.SLON, served)
	}
	for _, b := range s.Slowest {
		if b.Replica < 0 || b.Replica >= 2 {
			t.Fatalf("slowest entry carries unstamped replica %d", b.Replica)
		}
	}
	if sum.String() == "" || s.String() == "" {
		t.Fatal("summary rendering is empty")
	}
}

// TestTraceFleetAttributionRepeats locks merged-snapshot reproducibility:
// two attributed fleet runs render byte-identical attribution tables and
// carry identical per-request phase tilings.
func TestTraceFleetAttributionRepeats(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(3, 12)
	run := func() ([]Response, string) {
		r := NewRouter(m, Config{
			Replicas: 2, Policy: PolicyAffinity,
			Engine: DefaultConfig().Engine, Seed: 7,
			Attribution: true,
		})
		out := r.Run(reqs)
		snap := r.Summary().Attribution.String()
		r.Close()
		return out, snap
	}
	outA, snapA := run()
	outB, snapB := run()
	if snapA != snapB {
		t.Fatalf("attribution tables differ across identical runs:\n%s\n---\n%s", snapA, snapB)
	}
	for i := range outA {
		ba, bb := outA[i].Breakdown, outB[i].Breakdown
		if (ba == nil) != (bb == nil) {
			t.Fatalf("request %d: breakdown presence differs", i)
		}
		if ba == nil {
			continue
		}
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			if ba.Phases[p] != bb.Phases[p] {
				t.Fatalf("request %d: %s phase %v vs %v", i, p, ba.Phases[p], bb.Phases[p])
			}
		}
	}
}

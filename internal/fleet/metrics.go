package fleet

import (
	"fmt"
	"strings"

	"clusterkv/internal/metrics"
	"clusterkv/internal/obs"
	"clusterkv/internal/serve"
)

// ReplicaStats condenses one replica's contribution to a fleet run.
type ReplicaStats struct {
	// Routed is the number of requests the router placed on this replica.
	Routed int64
	// Completed/Failed are the replica engine's terminal counters.
	Completed, Failed uint64
	// PrefixHits/PrefixMisses are the replica's prefix-cache counters;
	// PrefixPartialHits counts misses that still reused a cached ancestor's
	// pages (radix cache), and PrefixReusedTokens the prompt tokens whose
	// prefill the replica skipped via either form of reuse.
	PrefixHits, PrefixMisses uint64
	PrefixPartialHits        uint64
	PrefixReusedTokens       int64
	// PrefillTokens/TokensGenerated are the replica's token counters.
	PrefillTokens, TokensGenerated int64
	// Rounds is the replica's scheduler round count.
	Rounds int64
	// KVPeak is the replica's KV high-water mark in per-head token slots;
	// ArenaPeakPages its peak live page count.
	KVPeak, ArenaPeakPages int64
}

// Summary is a point-in-time snapshot of fleet-wide routing and serving
// state. Every field except the engines' wall-clock-derived counters is
// deterministic for a fixed (load, config, seed).
type Summary struct {
	Replicas int
	Policy   Policy

	// Routing counters. Routed counts placements on engines; Shed counts
	// requests refused by SLO shedding (never submitted); Rerouted counts
	// affinity placements moved off the prefix home by the TTFT SLO.
	Routed, Shed, Rerouted int64

	// Aggregate serving counters across replicas.
	Completed, Failed        uint64
	PrefixHits, PrefixMisses uint64
	PrefixPartialHits        uint64
	PrefixReusedTokens       int64
	PrefillTokens            int64
	TokensGenerated          int64

	// SavedPrefillTokens/Pages measure the fleet's prefix-affinity win: the
	// prefill work avoided versus every request re-prefilling its full
	// prompt (pages across all (layer, head) planes).
	SavedPrefillTokens, SavedPrefillPages int64

	// Modeled latency distributions (seconds; see Response.ModelTTFT).
	ModelTTFT, ModelTBT serve.LatencyStats

	// SLO attainment: fraction of judged requests whose modeled latencies
	// met the configured SLOs (1 when no SLO is configured; shed requests
	// count as misses).
	SLOTTFT, SLOTBT float64
	SLOAttainment   float64

	// Balance is max/mean routed requests per replica (1 = perfectly even,
	// Replicas = everything on one replica).
	Balance float64

	PerReplica []ReplicaStats

	// Attribution is the merged per-phase latency attribution across every
	// request served by Run, replica-labeled and SLO-margin-stamped
	// (DESIGN.md §14). nil unless Config.Attribution.
	Attribution *obs.AttributionSnapshot
}

// PrefixHitRate returns hits/(hits+misses) across the fleet (0 when no
// shared-prefix requests ran).
func (s Summary) PrefixHitRate() float64 {
	tot := s.PrefixHits + s.PrefixMisses
	if tot == 0 {
		return 0
	}
	return float64(s.PrefixHits) / float64(tot)
}

// latStats condenses a metrics.Summary into the serve reporting shape.
func latStats(s *metrics.Summary) serve.LatencyStats {
	return serve.LatencyStats{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Quantile(0.5),
		P95:  s.Quantile(0.95),
		Max:  s.Max(),
	}
}

// Summary returns a snapshot of the fleet's aggregate state.
func (r *Router) Summary() Summary {
	r.mu.Lock()
	s := Summary{
		Replicas:           len(r.engines),
		Policy:             r.cfg.Policy,
		Shed:               r.shed,
		Rerouted:           r.rerouted,
		SavedPrefillTokens: r.savedPrefillTokens,
		SavedPrefillPages:  r.savedPrefillPages,
		ModelTTFT:          latStats(&r.modelTTFT),
		ModelTBT:           latStats(&r.modelTBT),
		SLOTTFT:            r.cfg.SLOTTFT,
		SLOTBT:             r.cfg.SLOTBT,
		SLOAttainment:      1,
	}
	if r.sloJudged > 0 {
		s.SLOAttainment = 1 - float64(r.sloMissed)/float64(r.sloJudged)
	}
	routed := append([]int64(nil), r.routedReqs...)
	attr := r.attr
	r.mu.Unlock()
	if attr != nil {
		snap := attr.Snapshot()
		s.Attribution = &snap
	}

	var maxRouted int64
	for i, e := range r.engines {
		mx := e.Metrics()
		rs := ReplicaStats{
			Routed:             routed[i],
			Completed:          mx.Completed,
			Failed:             mx.Failed,
			PrefixHits:         mx.PrefixHits,
			PrefixMisses:       mx.PrefixMisses,
			PrefixPartialHits:  mx.PrefixPartialHits,
			PrefixReusedTokens: mx.PrefixReusedTokens,
			PrefillTokens:      mx.PrefillTokens,
			TokensGenerated:    mx.TokensGenerated,
			Rounds:             mx.Rounds,
			KVPeak:             mx.KVPeak,
			ArenaPeakPages:     e.Arena().PeakPages(),
		}
		s.PerReplica = append(s.PerReplica, rs)
		s.Routed += rs.Routed
		s.Completed += rs.Completed
		s.Failed += rs.Failed
		s.PrefixHits += rs.PrefixHits
		s.PrefixMisses += rs.PrefixMisses
		s.PrefixPartialHits += rs.PrefixPartialHits
		s.PrefixReusedTokens += rs.PrefixReusedTokens
		s.PrefillTokens += rs.PrefillTokens
		s.TokensGenerated += rs.TokensGenerated
		if rs.Routed > maxRouted {
			maxRouted = rs.Routed
		}
	}
	if s.Routed > 0 {
		s.Balance = float64(maxRouted) * float64(s.Replicas) / float64(s.Routed)
	}
	return s
}

// FillRegistry publishes the router's current Summary into reg under the
// clusterkv_fleet_* namespace, then each replica engine's full serve view
// under a replica label — one registry sees the whole fleet. Like the serve
// view it is snapshot-in, never read-back, and safe at any cadence.
func (r *Router) FillRegistry(reg *obs.Registry, labels ...obs.Label) {
	s := r.Summary()
	cnt := func(name string, v int64) { reg.Counter(name, labels...).Set(v) }
	gauge := func(name string, v float64) { reg.Gauge(name, labels...).Set(v) }
	gauge("clusterkv_fleet_replicas", float64(s.Replicas))
	cnt("clusterkv_fleet_routed_total", s.Routed)
	cnt("clusterkv_fleet_shed_total", s.Shed)
	cnt("clusterkv_fleet_rerouted_total", s.Rerouted)
	cnt("clusterkv_fleet_saved_prefill_tokens_total", s.SavedPrefillTokens)
	cnt("clusterkv_fleet_saved_prefill_pages_total", s.SavedPrefillPages)
	cnt("clusterkv_fleet_prefix_partial_hits_total", int64(s.PrefixPartialHits))
	cnt("clusterkv_fleet_prefix_reused_tokens_total", s.PrefixReusedTokens)
	gauge("clusterkv_fleet_prefix_hit_rate", s.PrefixHitRate())
	gauge("clusterkv_fleet_balance", s.Balance)
	gauge("clusterkv_fleet_slo_attainment", s.SLOAttainment)
	fill := func(l serve.LatencyStats, name, stat string) {
		ls := append(append([]obs.Label(nil), labels...), obs.L("stat", stat))
		switch stat {
		case "count":
			reg.Gauge(name, ls...).Set(float64(l.N))
		case "mean":
			reg.Gauge(name, ls...).Set(l.Mean)
		case "p50":
			reg.Gauge(name, ls...).Set(l.P50)
		case "p95":
			reg.Gauge(name, ls...).Set(l.P95)
		case "max":
			reg.Gauge(name, ls...).Set(l.Max)
		}
	}
	for _, stat := range []string{"count", "mean", "p50", "p95", "max"} {
		fill(s.ModelTTFT, "clusterkv_fleet_model_ttft_seconds", stat)
		fill(s.ModelTBT, "clusterkv_fleet_model_tbt_seconds", stat)
	}
	for i, e := range r.engines {
		rl := append(append([]obs.Label(nil), labels...), obs.L("replica", fmt.Sprint(i)))
		e.FillRegistry(reg, rl...)
		reg.Counter("clusterkv_fleet_replica_routed_total", rl...).Set(s.PerReplica[i].Routed)
	}
	if s.Attribution != nil {
		s.Attribution.FillRegistry(reg, labels...)
	}
}

// String formats the snapshot as a small report: fleet aggregates plus one
// row per replica.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d replicas, policy %s\n", s.Replicas, s.Policy)
	fmt.Fprintf(&b, "routing: %d routed, %d shed, %d rerouted, balance %.2f (1 = even)\n",
		s.Routed, s.Shed, s.Rerouted, s.Balance)
	fmt.Fprintf(&b, "requests: %d completed, %d failed\n", s.Completed, s.Failed)
	fmt.Fprintf(&b, "prefix cache: %d hits, %d misses (%d partial, %.0f%% hit rate); %d tokens reused, prefill saved %d tokens / %d pages\n",
		s.PrefixHits, s.PrefixMisses, s.PrefixPartialHits, s.PrefixHitRate()*100,
		s.PrefixReusedTokens, s.SavedPrefillTokens, s.SavedPrefillPages)
	fmt.Fprintf(&b, "tokens: %d prefilled, %d generated\n", s.PrefillTokens, s.TokensGenerated)
	fmt.Fprintf(&b, "modeled ttft: %s\n", s.ModelTTFT)
	fmt.Fprintf(&b, "modeled tbt:  %s\n", s.ModelTBT)
	if s.SLOTTFT > 0 || s.SLOTBT > 0 {
		fmt.Fprintf(&b, "slo: ttft %.2fms tbt %.2fms -> %.1f%% attainment\n",
			s.SLOTTFT*1e3, s.SLOTBT*1e3, s.SLOAttainment*100)
	}
	fmt.Fprintf(&b, "%-8s %7s %9s %7s %8s %8s %8s %7s %8s %9s\n",
		"replica", "routed", "completed", "failed", "pfx hit", "pfx miss", "prefill", "tokens", "rounds", "kv peak")
	for i, rs := range s.PerReplica {
		fmt.Fprintf(&b, "%-8d %7d %9d %7d %8d %8d %8d %7d %8d %9d\n",
			i, rs.Routed, rs.Completed, rs.Failed, rs.PrefixHits, rs.PrefixMisses,
			rs.PrefillTokens, rs.TokensGenerated, rs.Rounds, rs.KVPeak)
	}
	if s.Attribution != nil {
		b.WriteString(s.Attribution.String())
	}
	return b.String()
}

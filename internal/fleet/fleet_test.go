package fleet

import (
	"context"
	"errors"
	"testing"

	"clusterkv/internal/serve"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"affinity":    PolicyAffinity,
		"rr":          PolicyRoundRobin,
		"RoundRobin":  PolicyRoundRobin,
		"leastloaded": PolicyLeastLoaded,
		" ll ":        PolicyLeastLoaded,
	}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if rt, err := ParsePolicy(got.String()); err != nil || rt != want {
			t.Fatalf("policy %v does not round-trip through String(): %v, %v", want, rt, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

// TestAffinityKeepsDocumentsTogether: with as many replicas as shared
// documents, affinity routing prefills each document exactly once
// fleet-wide (misses == docs), keeps every same-document request on one
// replica, and beats round-robin on prefill work saved.
func TestAffinityKeepsDocumentsTogether(t *testing.T) {
	m := testModel()
	const nDocs, nReqs = 4, 16
	reqs := fleetLoad(nDocs, nReqs)

	run := func(policy Policy) (Summary, []Response) {
		r := NewRouter(m, Config{
			Replicas: nDocs,
			Policy:   policy,
			Engine:   serve.Config{Workers: 2, MaxBatch: 4, Seed: 7},
			Seed:     7,
		})
		resps := r.Run(reqs)
		sum := r.Summary()
		r.Close()
		for i, resp := range resps {
			if resp.Err != nil {
				t.Fatalf("policy %s request %d: %v", policy, i, resp.Err)
			}
		}
		return sum, resps
	}

	aff, affResps := run(PolicyAffinity)
	rr, _ := run(PolicyRoundRobin)

	if aff.PrefixMisses != nDocs {
		t.Fatalf("affinity prefilled %d documents, want exactly %d", aff.PrefixMisses, nDocs)
	}
	// Same document => same replica under affinity.
	docReplica := map[uint64]int{}
	for i, resp := range affResps {
		h := serve.PrefixKey(reqs[i].Prompt[:reqs[i].SharedPrefixLen])
		if rep, ok := docReplica[h]; ok {
			if rep != resp.Replica {
				t.Fatalf("document split across replicas %d and %d under affinity", rep, resp.Replica)
			}
		} else {
			docReplica[h] = resp.Replica
		}
	}
	if aff.SavedPrefillTokens <= rr.SavedPrefillTokens {
		t.Fatalf("affinity saved %d prefill tokens, round-robin %d; affinity should win",
			aff.SavedPrefillTokens, rr.SavedPrefillTokens)
	}
	if aff.SavedPrefillPages <= rr.SavedPrefillPages {
		t.Fatalf("affinity saved %d prefill pages, round-robin %d; affinity should win",
			aff.SavedPrefillPages, rr.SavedPrefillPages)
	}
	if aff.PrefillTokens >= rr.PrefillTokens {
		t.Fatalf("affinity prefilled %d tokens, round-robin %d; affinity should prefill less",
			aff.PrefillTokens, rr.PrefillTokens)
	}
	if aff.ModelTTFT.P50 >= rr.ModelTTFT.P50 {
		t.Fatalf("affinity modeled TTFT p50 %.3gms not better than round-robin %.3gms",
			aff.ModelTTFT.P50*1e3, rr.ModelTTFT.P50*1e3)
	}
}

// TestLeastLoadedBalances: the cache-oblivious least-loaded policy spreads a
// uniform load evenly (balance == 1 for a request count divisible by the
// fleet size).
func TestLeastLoadedBalances(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 12)
	r := NewRouter(m, Config{
		Replicas: 4,
		Policy:   PolicyLeastLoaded,
		Engine:   serve.Config{Workers: 1, MaxBatch: 4, Seed: 3},
		Seed:     3,
	})
	for i, resp := range r.Run(reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}
	sum := r.Summary()
	r.Close()
	for i, rs := range sum.PerReplica {
		if rs.Routed != 3 {
			t.Fatalf("replica %d routed %d of 12 requests across 4 replicas (balance %.2f)",
				i, rs.Routed, sum.Balance)
		}
	}
	if sum.Balance != 1 {
		t.Fatalf("balance = %.3f, want 1.0", sum.Balance)
	}
}

// TestSLOShedsUnplaceableRequests: an impossible TTFT SLO with shedding on
// drops every request deterministically — nothing reaches an engine, and the
// summary reports zero attainment.
func TestSLOShedsUnplaceableRequests(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 8)
	r := NewRouter(m, Config{
		Replicas: 2,
		Engine:   serve.Config{Workers: 1, MaxBatch: 4, Seed: 1},
		SLOTTFT:  1e-12, // below even an empty replica's first-token time
		Shed:     true,
		Seed:     1,
	})
	defer r.Close()
	for i, resp := range r.Run(reqs) {
		if !errors.Is(resp.Err, ErrSLOShed) {
			t.Fatalf("request %d err = %v, want ErrSLOShed", i, resp.Err)
		}
		if resp.Replica != -1 || !resp.SLOMiss {
			t.Fatalf("shed request %d: replica %d, sloMiss %v", i, resp.Replica, resp.SLOMiss)
		}
	}
	sum := r.Summary()
	if sum.Shed != int64(len(reqs)) || sum.Routed != 0 {
		t.Fatalf("shed %d routed %d, want %d/0", sum.Shed, sum.Routed, len(reqs))
	}
	if sum.SLOAttainment != 0 {
		t.Fatalf("SLO attainment %.2f with everything shed", sum.SLOAttainment)
	}
	if sum.Completed != 0 || sum.TokensGenerated != 0 {
		t.Fatalf("shed requests reached the engines: %d completed", sum.Completed)
	}
}

// TestSLOReroutesOffOverloadedHome: a tight-but-achievable TTFT SLO makes
// affinity routing abandon a prefix home whose modeled backlog has grown past
// the SLO, re-prefilling on an idle replica instead — requests still all
// complete, and the reroute counter records the decisions.
func TestSLOReroutesOffOverloadedHome(t *testing.T) {
	m := testModel()
	// One shared document: pure affinity would pile everything on one home.
	reqs := fleetLoad(1, 10)
	r := NewRouter(m, Config{
		Replicas: 2,
		Engine:   serve.Config{Workers: 2, MaxBatch: 4, Seed: 5},
		SLOTTFT:  0.05, // below one marginal request of modeled backlog
		Seed:     5,
	})
	for i, resp := range r.Run(reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}
	sum := r.Summary()
	r.Close()
	if sum.Rerouted == 0 {
		t.Fatal("no SLO reroute happened; backlog never exceeded the SLO or the SLO gate is dead")
	}
	if sum.Completed != uint64(len(reqs)) {
		t.Fatalf("%d of %d completed after rerouting", sum.Completed, len(reqs))
	}
	// Rerouting must have put work on both replicas.
	for i, rs := range sum.PerReplica {
		if rs.Routed == 0 {
			t.Fatalf("replica %d received nothing despite SLO rerouting", i)
		}
	}
}

// TestRouterReuseRebasesBacklog: a second Run on the same (drained) router
// must not predict TTFT against the first batch's completed work. Before the
// rebase, the load ledgers only ever grew, so a reused router under an SLO
// spuriously shed requests on an idle fleet.
func TestRouterReuseRebasesBacklog(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 8)
	r := NewRouter(m, Config{
		Replicas: 2,
		Engine:   serve.Config{Workers: 1, MaxBatch: 4, Seed: 4},
		SLOTTFT:  0.2, // fits one batch's modeled backlog, not two stacked
		Shed:     true,
		Seed:     4,
	})
	defer r.Close()
	shedIn := func(resps []Response) int {
		n := 0
		for _, resp := range resps {
			if errors.Is(resp.Err, ErrSLOShed) {
				n++
			}
		}
		return n
	}
	if n := shedIn(r.Run(reqs)); n != 0 {
		t.Fatalf("first run shed %d requests; SLO too tight for the test's premise", n)
	}
	if n := shedIn(r.Run(reqs)); n != 0 {
		t.Fatalf("second run on a drained fleet shed %d requests: backlog not rebased", n)
	}
	sum := r.Summary()
	if sum.Routed != 16 || sum.Completed != 16 {
		t.Fatalf("routed %d completed %d across two runs, want 16/16", sum.Routed, sum.Completed)
	}
}

// TestStreamingSubmitCompletes: the live (non-deterministic) routing path —
// residency probes, occupancy, TrySubmit failover under a tiny intake queue —
// serves an open-loop stream completely and routes within the fleet.
func TestStreamingSubmitCompletes(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 14)
	r := NewRouter(m, Config{
		Replicas: 2,
		Engine:   serve.Config{Workers: 1, MaxBatch: 2, QueueCap: 1, Seed: 2},
		Seed:     2,
	})
	var tickets []*Ticket
	for _, req := range reqs {
		tickets = append(tickets, r.Submit(req))
	}
	for i, tk := range tickets {
		if tk.Replica < 0 || tk.Replica >= r.Replicas() {
			t.Fatalf("ticket %d routed to replica %d of %d", i, tk.Replica, r.Replicas())
		}
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatalf("request %d failed: %v", i, resp.Err)
		}
	}
	sum := r.Summary()
	r.Close()
	if sum.Routed != int64(len(reqs)) || sum.Shed != 0 {
		t.Fatalf("routed %d shed %d, want %d/0", sum.Routed, sum.Shed, len(reqs))
	}
	if sum.Completed != uint64(len(reqs)) {
		t.Fatalf("completed %d of %d", sum.Completed, len(reqs))
	}
}

// TestRouterShutdownAborts: an expired context aborts outstanding work
// across every replica and reports the context error.
func TestRouterShutdownAborts(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 8)
	for i := range reqs {
		reqs[i].MaxNewTokens = 400 // long enough that shutdown lands mid-flight
	}
	r := NewRouter(m, Config{
		Replicas: 2,
		Engine:   serve.Config{Workers: 1, MaxBatch: 2, Seed: 1},
		Seed:     1,
	})
	var tickets []*Ticket
	for _, req := range reqs {
		tickets = append(tickets, r.Submit(req))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	aborted := 0
	for _, tk := range tickets {
		if resp := tk.Wait(); errors.Is(resp.Err, serve.ErrAborted) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no request was aborted by an expired fleet shutdown")
	}
	for i := 0; i < r.Replicas(); i++ {
		if lp := r.Engine(i).Arena().LivePages(); lp != 0 {
			t.Fatalf("replica %d leaked %d arena pages after shutdown", i, lp)
		}
	}
}

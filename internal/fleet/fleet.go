// Package fleet scales the single-node serving engine to a multi-replica
// fleet: a Router owns N serve.Engine replicas over one model and places a
// stream of requests across them. Placement is what a fleet gets to optimise
// that a single engine cannot: a request whose shared document prefix is
// already cached on replica A is a near-free prefill there and a full
// re-prefill anywhere else, so *where* a request lands decides its TTFT. The
// router implements three policies —
//
//   - affinity (default): route to the replica whose prefix cache holds the
//     longest resident prefix of the request's shared prefix — probed at
//     every page-aligned depth, so nested-prefix traffic (multi-turn chat,
//     agentic re-entry, templated RAG) follows the replica holding the
//     deepest cached ancestor, not just exact hash matches; fall back to
//     least-loaded (KV pages, then queue depth) with consistent hashing as
//     the deterministic tiebreaker;
//   - round-robin: the classic cache-oblivious baseline;
//   - least-loaded: pure load balancing, still cache-oblivious;
//
// — plus per-replica admission backpressure (streaming submissions probe
// replicas with serve.Engine.TrySubmit and fail over instead of blocking on a
// saturated intake) and SLO-aware scheduling: every placement carries a
// modeled TTFT (replica backlog + marginal prefill + first token, with page
// transfer costs from memsim), and requests predicted to miss a configured
// TTFT SLO are re-routed to the best replica or, optionally, shed.
//
// Determinism: Router.Run places requests from router-owned ledgers only
// (never wall clock or live gauges), each replica's engine is itself
// deterministic, and modeled TTFT/TBT are computed from round schedules and
// token/page counts — so a fixed (load, config, seed) reproduces placements,
// token streams and fleet metrics exactly, at any GOMAXPROCS. With one
// replica, Router.Run degenerates to Engine.Run token-for-token.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/memsim"
	"clusterkv/internal/metrics"
	"clusterkv/internal/model"
	"clusterkv/internal/obs"
	"clusterkv/internal/serve"
)

// ErrSLOShed reports a request the router refused to place because even the
// best replica's modeled TTFT missed the configured SLO (Config.Shed).
var ErrSLOShed = errors.New("fleet: request shed (modeled TTFT misses SLO on every replica)")

// Policy selects the routing policy.
type Policy int

const (
	// PolicyAffinity routes by shared-prefix residency, falling back to
	// least-loaded with a consistent-hash tiebreak. The default.
	PolicyAffinity Policy = iota
	// PolicyRoundRobin ignores both cache state and load.
	PolicyRoundRobin
	// PolicyLeastLoaded balances KV pages and queue depth, ignoring caches.
	PolicyLeastLoaded
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "rr"
	case PolicyLeastLoaded:
		return "leastloaded"
	default:
		return "affinity"
	}
}

// ParsePolicy parses a policy flag value ("affinity", "rr", "leastloaded").
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "affinity":
		return PolicyAffinity, nil
	case "rr", "roundrobin", "round-robin":
		return PolicyRoundRobin, nil
	case "leastloaded", "least-loaded", "ll":
		return PolicyLeastLoaded, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (affinity, rr, leastloaded)", s)
}

// Config holds the fleet tunables.
type Config struct {
	// Replicas is the engine count. Values <= 0 mean 1.
	Replicas int
	// Policy is the routing policy (PolicyAffinity by default).
	Policy Policy
	// Engine is the per-replica engine configuration. Replica 0 uses
	// Engine.Seed exactly (the 1-replica equivalence contract); replica i>0
	// derives an independent seed from it.
	Engine serve.Config
	// SLOTTFT, when > 0, is the modeled time-to-first-token SLO in seconds:
	// placements predicted to miss it are re-routed to the best replica
	// (affinity policy) and, with Shed set, shed with ErrSLOShed when no
	// replica can make it.
	SLOTTFT float64
	// SLOTBT, when > 0, is the modeled time-between-tokens SLO in seconds.
	// It is evaluated on the post-run round schedule (SLO attainment and
	// Response.SLOMiss); it does not gate placement.
	SLOTBT float64
	// Shed enables dropping requests predicted to miss SLOTTFT everywhere.
	Shed bool
	// Hardware parameterises the modeled latencies; the zero value means the
	// paper GPU (memsim.AdaRTX6000).
	Hardware memsim.Hardware
	// Shape is the model the latency model pretends the fleet serves (the
	// memsim idiom: real algorithm counts, paper-scale costs). The zero
	// value means memsim.Llama31_8B.
	Shape memsim.ModelShape
	// Seed salts the consistent-hash tiebreaker (placement stays
	// deterministic per seed).
	Seed uint64
	// Trace, when non-nil, receives structured trace events from the router
	// (fleet place/reroute/shed on lane -1) and from every replica engine
	// (each on its replica index lane; Config.Engine.Trace is overridden).
	// Tracing never changes placement or scheduling — the traced-vs-untraced
	// fleet determinism suite locks this.
	Trace *obs.Tracer
	// Attribution enables per-request latency attribution (DESIGN.md §14) on
	// every replica engine and aggregates Run workloads' breakdowns — with
	// replica labels and modeled SLO margins stamped in — into
	// Summary.Attribution. Deterministic per seed and fingerprint-neutral,
	// like tracing.
	Attribution bool
}

// DefaultConfig returns a 2-replica affinity-routing fleet over default
// engines.
func DefaultConfig() Config {
	return Config{Replicas: 2, Policy: PolicyAffinity, Engine: serve.DefaultConfig(), Seed: 1}
}

// Response is the outcome of one routed request.
type Response struct {
	serve.Response
	// Replica is the index of the replica that served the request (-1 when
	// the router shed it).
	Replica int
	// ModelTTFT and ModelTBT are the request's modeled time-to-first-token
	// and time-between-tokens in seconds: for Run, reconstructed from the
	// serving replica's actual round schedule plus memsim transfer costs;
	// for streaming Submits, the placement-time prediction.
	ModelTTFT, ModelTBT float64
	// SLOMiss reports whether a configured SLO was missed by the modeled
	// latencies (always true for shed requests).
	SLOMiss bool
	// SLOMargin is the modeled margin to the tightest configured SLO in
	// seconds — min over the configured SLOTTFT/SLOTBT of (SLO − modeled);
	// negative on a miss. Zero when no SLO is configured.
	SLOMargin float64
}

// Ticket is the handle returned by Submit.
type Ticket struct {
	// Replica is the replica the request was placed on (-1 when shed).
	Replica int
	// PredTTFT is the placement-time modeled TTFT in seconds.
	PredTTFT float64
	tk       *serve.Ticket
	predTBT  float64
	sloMiss  bool
	shed     *Response
}

// Wait blocks until the request completes and returns its Response. Call it
// once per ticket.
func (t *Ticket) Wait() Response {
	if t.shed != nil {
		return *t.shed
	}
	resp := t.tk.Wait()
	return Response{Response: resp, Replica: t.Replica,
		ModelTTFT: t.PredTTFT, ModelTBT: t.predTBT, SLOMiss: t.sloMiss}
}

// prefixOn keys the "prefix charged on replica" ledger.
type prefixOn struct {
	hash uint64
	rep  int
}

// Router places requests across a fleet of engine replicas. All methods are
// safe for concurrent use; Run is additionally deterministic (see the
// package comment).
type Router struct {
	m       *model.Model
	cfg     Config
	engines []*serve.Engine
	lm      latencyModel

	pageTokens int
	planes     int64
	maxBatch   int
	// radix mirrors the replicas' cache shape: when the engines run the radix
	// prefix cache, the router tracks every page-aligned prefix depth (chain
	// links) instead of whole-prefix hashes only, so nested-prefix requests
	// route to the replica holding the deepest cached ancestor.
	radix bool

	mu sync.Mutex
	// Placement ledgers: the router's own deterministic model of each
	// replica's state. Run consults only these (never live gauges), which is
	// what makes fleet placement reproducible.
	prefixHome map[uint64]int // content hash (any chain depth) -> first replica assigned it
	// charged books the pages a placed prefix made resident on a replica,
	// keyed by the whole-prefix hash; nested prefixes are charged only their
	// marginal pages beyond the deepest ancestor already resident there.
	// chainOn indexes every page-aligned chain hash resident per replica —
	// membership only, for the longest-prefix marginal walk.
	charged       map[prefixOn]int64 // prefix pages added on a replica (rebase model)
	chainOn       map[prefixOn]struct{}
	assignedReqs  []int64   // requests routed since the last rebase
	assignedPages []int64   // modeled KV pages routed per replica (prefix counted once)
	backlogSec    []float64 // modeled seconds of work routed since the last rebase
	routedReqs    []int64   // cumulative per-replica placements (Summary)
	rrNext        uint64

	// Fleet accumulators.
	shed, rerouted       int64
	savedPrefillTokens   int64
	savedPrefillPages    int64
	sloMissed, sloJudged int64
	modelTTFT, modelTBT  metrics.Summary
	// attr merges every served Run request's latency breakdown (replica and
	// SLO margin stamped in) in submission order — deterministic because
	// observe folds the indexed out slice, never goroutine completion order.
	// nil unless Config.Attribution.
	attr *obs.Attribution

	// rec is the router's own trace lane (-1); placeSeq numbers streaming
	// placements (under mu) so Submit events carry a submission index too.
	rec      obs.Recorder
	placeSeq uint64

	closeOnce sync.Once
}

// NewRouter builds a fleet of cfg.Replicas engines over one model. Callers
// must Close (or Shutdown) it.
func NewRouter(m *model.Model, cfg Config) *Router {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Engine.MaxBatch <= 0 {
		cfg.Engine.MaxBatch = serve.DefaultConfig().MaxBatch
	}
	if cfg.Hardware.Name == "" {
		cfg.Hardware = memsim.AdaRTX6000()
	}
	if cfg.Shape.Name == "" {
		cfg.Shape = memsim.Llama31_8B()
	}
	pageTokens := cfg.Engine.PageTokens
	if pageTokens <= 0 {
		pageTokens = kvcache.DefaultPageTokens
	}
	mc := m.Config()
	r := &Router{
		m:          m,
		cfg:        cfg,
		lm:         newLatencyModel(cfg.Hardware, cfg.Shape, pageTokens),
		pageTokens: pageTokens,
		planes:     int64(mc.NLayers * mc.NKVHeads),
		maxBatch:   cfg.Engine.MaxBatch,
		radix: !cfg.Engine.WorstCaseAdmission && !cfg.Engine.FlatPrefixCache &&
			!cfg.Engine.NoPrefixCache,
		prefixHome: make(map[uint64]int),
		charged:    make(map[prefixOn]int64),
		chainOn:    make(map[prefixOn]struct{}),
	}
	r.rec = cfg.Trace.Recorder(-1) // nil-safe: disabled on a nil tracer
	if cfg.Attribution {
		r.attr = obs.NewAttribution()
	}
	r.engines = make([]*serve.Engine, cfg.Replicas)
	r.assignedReqs = make([]int64, cfg.Replicas)
	r.assignedPages = make([]int64, cfg.Replicas)
	r.backlogSec = make([]float64, cfg.Replicas)
	r.routedReqs = make([]int64, cfg.Replicas)
	for i := range r.engines {
		ecfg := cfg.Engine
		// Replica 0 keeps the base seed exactly (XOR with 0), preserving the
		// 1-replica ≡ Engine.Run contract; others get independent streams.
		ecfg.Seed = cfg.Engine.Seed ^ (uint64(i) * 0x9e3779b97f4a7c15)
		ecfg.Trace = cfg.Trace.Recorder(i)
		ecfg.Attribution = cfg.Attribution
		ecfg.ModelHardware = cfg.Hardware
		ecfg.ModelShape = cfg.Shape
		r.engines[i] = serve.NewEngine(m, ecfg)
	}
	return r
}

// Replicas returns the fleet size.
func (r *Router) Replicas() int { return len(r.engines) }

// Engine exposes replica i (read-only use intended: gauges for tests and
// reports).
func (r *Router) Engine(i int) *serve.Engine { return r.engines[i] }

// Close drains every replica gracefully.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		var wg sync.WaitGroup
		for _, e := range r.engines {
			wg.Add(1)
			go func(e *serve.Engine) {
				defer wg.Done()
				e.Close()
			}(e)
		}
		wg.Wait()
	})
}

// Shutdown drains like Close but aborts outstanding requests when the
// context expires first, returning the first non-nil engine error.
func (r *Router) Shutdown(ctx context.Context) error {
	var firstErr error
	r.closeOnce.Do(func() {
		errs := make([]error, len(r.engines))
		var wg sync.WaitGroup
		for i, e := range r.engines {
			wg.Add(1)
			go func(i int, e *serve.Engine) {
				defer wg.Done()
				errs[i] = e.Shutdown(ctx)
			}(i, e)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	})
	return firstErr
}

// ---- Placement --------------------------------------------------------------

// placement is one routing decision.
type placement struct {
	replica  int
	shed     bool
	rerouted bool
	hash     uint64
	shared   bool
	margToks int // marginal prefill tokens under the router's residency model
	predTTFT float64
}

// routeKey is the consistent-hash key: the shared prefix when there is one
// (so equal-prefix requests hash alike), the whole prompt otherwise.
func (r *Router) routeKey(req *serve.Request) (uint64, bool) {
	shared := req.SharedPrefixLen > 0 && !r.cfg.Engine.NoPrefixCache
	if shared {
		return serve.PrefixKey(req.Prompt[:req.SharedPrefixLen]), true
	}
	return serve.PrefixKey(req.Prompt), false
}

// chainLink is one probe depth of a shared prefix: the content hash of its
// first depth tokens. The last link is always the whole prefix (hash ==
// routeKey), so exact matches rank deepest.
type chainLink struct {
	hash  uint64
	depth int
}

// prefixChain returns the request's residency probe chain, deepest last:
// every page-aligned prefix depth plus the whole prefix under the radix
// cache, the whole prefix alone when the replicas only reuse exact matches
// (flat cache, worst-case admission).
func (r *Router) prefixChain(req *serve.Request, h uint64) []chainLink {
	prefix := req.Prompt[:req.SharedPrefixLen]
	if !r.radix {
		return []chainLink{{hash: h, depth: len(prefix)}}
	}
	hashes := serve.AlignedPrefixKeys(prefix, r.pageTokens)
	links := make([]chainLink, len(hashes))
	for i, hh := range hashes {
		d := (i + 1) * r.pageTokens
		if d > len(prefix) {
			d = len(prefix)
		}
		links[i] = chainLink{hash: hh, depth: d}
	}
	return links
}

// marginal returns the prefill tokens the request would actually cost on rep
// under the router's residency model: the tokens past the deepest chain link
// already resident there, the full prompt when nothing matches.
func (r *Router) marginal(req *serve.Request, rep int, chain []chainLink) int {
	for i := len(chain) - 1; i >= 0; i-- {
		if _, ok := r.chainOn[prefixOn{chain[i].hash, rep}]; ok {
			return len(req.Prompt) - chain[i].depth
		}
	}
	return len(req.Prompt)
}

// reqSec is the modeled service time the request adds to a replica:
// marginal prefill (compute + page movement) and its decode share of the
// continuously batched rounds.
func (r *Router) reqSec(req *serve.Request, margToks int) float64 {
	return r.lm.PrefillSec(margToks) +
		r.lm.DecodeSecPerTok*float64(req.MaxNewTokens)/float64(r.maxBatch)
}

// predictTTFT models time-to-first-token on rep: everything already routed
// there, then this request's marginal prefill and first batched decode step.
func (r *Router) predictTTFT(req *serve.Request, rep, margToks int) float64 {
	return r.backlogSec[rep] + r.lm.PrefillSec(margToks) + r.lm.DecodeSecPerTok
}

// mix is the consistent-hash mixer (splitmix64 finaliser): placement
// tiebreaks depend only on (request key, seed, replica), never on order.
func mix(h, seed uint64, rep int) uint64 {
	x := h ^ seed ^ (uint64(rep+1) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// loadLess orders replicas by the router's deterministic load model: KV
// pages first, queue depth second, consistent hash as the final tiebreak.
func (r *Router) loadLess(a, b int, h uint64) bool {
	if r.assignedPages[a] != r.assignedPages[b] {
		return r.assignedPages[a] < r.assignedPages[b]
	}
	if r.assignedReqs[a] != r.assignedReqs[b] {
		return r.assignedReqs[a] < r.assignedReqs[b]
	}
	return mix(h, r.cfg.Seed, a) > mix(h, r.cfg.Seed, b)
}

// leastLoaded picks the replica the load model ranks first for key h.
func (r *Router) leastLoaded(h uint64) int {
	best := 0
	for c := 1; c < len(r.engines); c++ {
		if r.loadLess(c, best, h) {
			best = c
		}
	}
	return best
}

// place makes one deterministic routing decision and commits it to the
// ledgers. Caller holds r.mu.
func (r *Router) place(req *serve.Request) placement {
	h, shared := r.routeKey(req)
	var chain []chainLink
	if shared {
		chain = r.prefixChain(req, h)
	}
	var rep int
	switch r.cfg.Policy {
	case PolicyRoundRobin:
		rep = int(r.rrNext % uint64(len(r.engines)))
		r.rrNext++
	case PolicyLeastLoaded:
		rep = r.leastLoaded(h)
	default: // affinity
		rep = -1
		// Longest-prefix affinity: walk the chain deepest-first, so an exact
		// prefix home wins over a shallower ancestor's home.
		for i := len(chain) - 1; i >= 0; i-- {
			if home, ok := r.prefixHome[chain[i].hash]; ok {
				rep = home
				break
			}
		}
		if rep < 0 {
			rep = r.leastLoaded(h)
		}
	}
	margToks := r.marginal(req, rep, chain)
	pred := r.predictTTFT(req, rep, margToks)
	rerouted := false
	if slo := r.cfg.SLOTTFT; slo > 0 && pred > slo {
		// Find the best-predicted replica regardless of policy: shedding is
		// judged against it, so a request is shed only when *every* replica's
		// modeled TTFT misses the SLO (the ErrSLOShed contract). Strictly
		// better only, so ties deterministically keep the original choice.
		best, bestPred, bestMarg := rep, pred, margToks
		for c := 0; c < len(r.engines); c++ {
			if c == rep {
				continue
			}
			mt := r.marginal(req, c, chain)
			if p := r.predictTTFT(req, c, mt); p < bestPred {
				best, bestPred, bestMarg = c, p, mt
			}
		}
		if bestPred > slo && r.cfg.Shed {
			return placement{replica: -1, shed: true, hash: h, shared: shared, predTTFT: bestPred}
		}
		if r.cfg.Policy == PolicyAffinity && best != rep {
			// Affinity re-routes: losing the cached prefix costs a
			// re-prefill, but a long backlog on the home replica can cost
			// more. The oblivious baselines keep their placement (the miss
			// is recorded, not rescued).
			rep, pred, margToks = best, bestPred, bestMarg
			rerouted = true
		}
	}
	r.commit(req, rep, chain, margToks)
	return placement{replica: rep, rerouted: rerouted, hash: h, shared: shared,
		margToks: margToks, predTTFT: pred}
}

// commit books the placement into the router ledgers. Caller holds r.mu.
// chain is nil for unshared requests; margToks encodes the resident depth the
// placement was priced at (len(Prompt) - margToks), so the charged delta
// covers only the pages this prefix adds beyond its deepest resident ancestor.
func (r *Router) commit(req *serve.Request, rep int, chain []chainLink, margToks int) {
	r.assignedReqs[rep]++
	r.routedReqs[rep]++
	r.assignedPages[rep] += pagesFor(margToks+req.MaxNewTokens, r.pageTokens) * r.planes
	r.backlogSec[rep] += r.reqSec(req, margToks)
	if len(chain) == 0 {
		return
	}
	key := prefixOn{chain[len(chain)-1].hash, rep}
	if _, ok := r.charged[key]; !ok {
		depth := len(req.Prompt) - margToks
		if depth > req.SharedPrefixLen {
			depth = req.SharedPrefixLen
		}
		r.charged[key] = (pagesFor(req.SharedPrefixLen, r.pageTokens) -
			pagesFor(depth, r.pageTokens)) * r.planes
	}
	for _, link := range chain {
		r.chainOn[prefixOn{link.hash, rep}] = struct{}{}
		if _, ok := r.prefixHome[link.hash]; !ok {
			r.prefixHome[link.hash] = rep
		}
	}
}

// rebaseLocked resets the load ledgers to the state that actually survives a
// drained fleet: no backlog, no queued requests, only cached prefix pages
// still resident on their replicas. Run calls it on entry — Run is
// synchronous, so by the time a previous Run (or a Waited streaming ticket)
// returned, its routed work has completed and predicting TTFT against it
// would spuriously reroute or shed. Caller holds r.mu.
func (r *Router) rebaseLocked() {
	for i := range r.backlogSec {
		r.backlogSec[i] = 0
		r.assignedReqs[i] = 0
		r.assignedPages[i] = 0
	}
	for key, pages := range r.charged {
		r.assignedPages[key.rep] += pages
	}
}

// ---- Deterministic batch ----------------------------------------------------

// Run places the whole request set deterministically, runs every replica's
// sub-batch concurrently, and returns responses in submission order with
// modeled TTFT/TBT reconstructed from each replica's round schedule. Given
// identical requests, config and seed, Run reproduces placements, token
// streams and fleet metrics on every call (run it on a fresh router for
// identical request ids and rounds). With one replica it is exactly
// Engine.Run.
func (r *Router) Run(reqs []serve.Request) []Response {
	out := make([]Response, len(reqs))
	perRep := make([][]int, len(r.engines))
	places := make([]placement, len(reqs))
	r.mu.Lock()
	r.rebaseLocked()
	for i := range reqs {
		p := r.place(&reqs[i])
		places[i] = p
		r.placeSeq++
		if p.shed {
			r.shed++
			r.sloJudged++
			r.sloMissed++
			out[i] = Response{
				Response: serve.Response{Err: ErrSLOShed},
				Replica:  -1, ModelTTFT: p.predTTFT, SLOMiss: true,
			}
			r.rec.Emit(obs.Event{Type: obs.EvFleetShed, Req: uint64(i),
				N: -1, Sec: p.predTTFT})
			continue
		}
		if p.rerouted {
			r.rerouted++
			r.rec.Emit(obs.Event{Type: obs.EvFleetReroute, Req: uint64(i),
				N: int64(p.replica), Sec: p.predTTFT})
		}
		r.rec.Emit(obs.Event{Type: obs.EvFleetPlace, Req: uint64(i),
			N: int64(p.replica), Aux: int64(p.margToks), Sec: p.predTTFT})
		perRep[p.replica] = append(perRep[p.replica], i)
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for rep, idxs := range perRep {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(rep int, idxs []int) {
			defer wg.Done()
			sub := make([]serve.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			resps := r.engines[rep].Run(sub)
			for j, i := range idxs {
				out[i] = Response{Response: resps[j], Replica: rep}
			}
		}(rep, idxs)
	}
	wg.Wait()

	r.modelLatencies(reqs, out, perRep)
	r.observe(reqs, out)
	return out
}

// modelLatencies reconstructs modeled TTFT/TBT for every served request from
// its replica's actual round schedule: round t costs one batched decode step
// plus the prefill compute and page movement of requests admitted at t. All
// inputs (rounds, token counts, page counts) are deterministic, so the
// modeled latencies are too.
func (r *Router) modelLatencies(reqs []serve.Request, out []Response, perRep [][]int) {
	hasSLO := r.cfg.SLOTTFT > 0 || r.cfg.SLOTBT > 0
	for rep, idxs := range perRep {
		if len(idxs) == 0 {
			continue
		}
		base, maxRound := int64(-1), int64(0)
		for _, i := range idxs {
			if out[i].Err != nil {
				continue
			}
			if base < 0 || out[i].AdmitRound-1 < base {
				base = out[i].AdmitRound - 1
			}
			if out[i].DoneRound > maxRound {
				maxRound = out[i].DoneRound
			}
		}
		if base < 0 {
			continue // nothing served on this replica
		}
		// Per-round prefill work: marginal tokens (past whatever depth the
		// prefix cache actually served, whole-prefix hit or partial radix
		// reuse) of requests admitted that round.
		prefillAt := make(map[int64]int64, len(idxs))
		for _, i := range idxs {
			if out[i].Err != nil {
				continue
			}
			marg := int64(len(reqs[i].Prompt) - out[i].PrefixReusedTokens)
			prefillAt[out[i].AdmitRound] += marg
		}
		// Cumulative modeled clock across rounds base+1..maxRound.
		T := make([]float64, maxRound-base+1)
		for t := base + 1; t <= maxRound; t++ {
			T[t-base] = T[t-base-1] + r.lm.DecodeSecPerTok +
				r.lm.PrefillSec(int(prefillAt[t]))
		}
		for _, i := range idxs {
			if out[i].Err != nil {
				continue
			}
			ttft := T[out[i].AdmitRound-base]
			out[i].ModelTTFT = ttft
			if n := len(out[i].Tokens); n > 1 {
				out[i].ModelTBT = (T[out[i].DoneRound-base] - ttft) / float64(n-1)
			}
			out[i].SLOMiss = (r.cfg.SLOTTFT > 0 && out[i].ModelTTFT > r.cfg.SLOTTFT) ||
				(r.cfg.SLOTBT > 0 && out[i].ModelTBT > r.cfg.SLOTBT)
			if hasSLO {
				margin := math.Inf(1)
				if r.cfg.SLOTTFT > 0 {
					margin = r.cfg.SLOTTFT - out[i].ModelTTFT
				}
				if r.cfg.SLOTBT > 0 {
					if m := r.cfg.SLOTBT - out[i].ModelTBT; m < margin {
						margin = m
					}
				}
				out[i].SLOMargin = margin
			}
			if bd := out[i].Breakdown; bd != nil {
				bd.Replica = rep
				bd.SLOMarginSec = out[i].SLOMargin
				bd.HasSLO = hasSLO
			}
		}
	}
}

// observe folds a completed Run into the fleet accumulators.
func (r *Router) observe(reqs []serve.Request, out []Response) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range out {
		if out[i].Replica < 0 || out[i].Err != nil {
			continue
		}
		naive := int64(len(reqs[i].Prompt))
		marg := naive - int64(out[i].PrefixReusedTokens)
		r.savedPrefillTokens += naive - marg
		r.savedPrefillPages += (pagesFor(int(naive), r.pageTokens) - pagesFor(int(marg), r.pageTokens)) * r.planes
		r.modelTTFT.Add(out[i].ModelTTFT)
		if len(out[i].Tokens) > 1 {
			r.modelTBT.Add(out[i].ModelTBT)
		}
		if r.cfg.SLOTTFT > 0 || r.cfg.SLOTBT > 0 {
			r.sloJudged++
			if out[i].SLOMiss {
				r.sloMissed++
			}
		}
		if r.attr != nil && out[i].Breakdown != nil {
			r.attr.Observe(*out[i].Breakdown)
		}
	}
}

// ---- Streaming --------------------------------------------------------------

// Submit routes one request immediately using live replica state — prefix
// residency probes (Engine.PrefixResident), occupancy gauges, and
// non-blocking TrySubmit with failover, so a saturated replica never blocks
// the router. When every intake is full, Submit falls back to a blocking
// Submit on the chosen replica (backpressure reaches the caller, requests
// are never dropped silently). Streaming placement is latency-driven and
// timing-dependent; use Run for the deterministic batch contract.
func (r *Router) Submit(req serve.Request) *Ticket {
	h, shared := r.routeKey(&req)
	var chain []chainLink
	if shared {
		chain = r.prefixChain(&req, h)
	}

	// Candidate order: replicas holding the deepest resident prefix first
	// (longest-prefix affinity, probed live via Engine.ResidentPrefixLen),
	// then everyone by live load (pages, then queue depth, consistent hash
	// tiebreak).
	type cand struct {
		rep      int
		resDepth int // deepest live resident prefix depth in tokens
		pages    int64
		depth    int
	}
	cands := make([]cand, len(r.engines))
	for i, e := range r.engines {
		occ := e.Occupancy()
		resDepth := 0
		if shared && r.cfg.Policy == PolicyAffinity {
			resDepth = e.ResidentPrefixLen(req.Prompt[:req.SharedPrefixLen])
		}
		cands[i] = cand{
			rep:      i,
			resDepth: resDepth,
			pages:    occ.LivePages,
			depth:    occ.Queued + occ.Active,
		}
	}
	less := func(a, b cand) bool {
		if a.resDepth != b.resDepth {
			return a.resDepth > b.resDepth
		}
		if a.pages != b.pages {
			return a.pages < b.pages
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return mix(h, r.cfg.Seed, a.rep) > mix(h, r.cfg.Seed, b.rep)
	}
	// Selection sort of a handful of replicas: keep it allocation-light.
	for i := range cands {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if less(cands[j], cands[best]) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	if r.cfg.Policy == PolicyRoundRobin {
		r.mu.Lock()
		rep := int(r.rrNext % uint64(len(r.engines)))
		r.rrNext++
		r.mu.Unlock()
		// Round-robin ignores state: put the assigned replica first, keep
		// the rest as failover order.
		for i := range cands {
			if cands[i].rep == rep {
				cands[0], cands[i] = cands[i], cands[0]
				break
			}
		}
	}

	// Live prediction per candidate: each one's own modeled cost plus its
	// queued work at the router's mean modeled service time. Shedding is
	// judged against the best prediction, so a request is shed only when
	// every replica is predicted to miss the SLO (the ErrSLOShed contract).
	r.mu.Lock()
	preds := make([]float64, len(cands))
	minPred := math.Inf(1)
	for i, c := range cands {
		marg := r.marginal(&req, c.rep, chain)
		if live := len(req.Prompt) - c.resDepth; c.resDepth > 0 && live < marg {
			marg = live
		}
		preds[i] = r.reqSec(&req, marg) + float64(c.depth)*r.meanReqSecLocked(c.rep)
		if preds[i] < minPred {
			minPred = preds[i]
		}
	}
	predTBT := r.lm.DecodeSecPerTok // modeled per-round token interval
	if r.cfg.SLOTTFT > 0 && r.cfg.Shed && minPred > r.cfg.SLOTTFT {
		r.shed++
		r.sloJudged++
		r.sloMissed++
		seq := r.placeSeq
		r.placeSeq++
		r.rec.Emit(obs.Event{Type: obs.EvFleetShed, Req: seq, N: -1, Sec: minPred})
		r.mu.Unlock()
		return &Ticket{Replica: -1, PredTTFT: minPred, shed: &Response{
			Response: serve.Response{Err: ErrSLOShed},
			Replica:  -1, ModelTTFT: minPred, ModelTBT: predTBT, SLOMiss: true,
		}}
	}
	r.mu.Unlock()

	// Admission backpressure: probe candidates in order, book the one that
	// actually accepts; block on the best only when every intake is full.
	accept := func(i int, tk *serve.Ticket) *Ticket {
		c := cands[i]
		r.mu.Lock()
		marg := r.marginal(&req, c.rep, chain)
		if live := len(req.Prompt) - c.resDepth; c.resDepth > 0 && live < marg {
			marg = live
		}
		r.commit(&req, c.rep, chain, marg)
		sloMiss := (r.cfg.SLOTTFT > 0 && preds[i] > r.cfg.SLOTTFT) ||
			(r.cfg.SLOTBT > 0 && predTBT > r.cfg.SLOTBT)
		if r.cfg.SLOTTFT > 0 || r.cfg.SLOTBT > 0 {
			r.sloJudged++
			if sloMiss {
				r.sloMissed++
			}
		}
		r.modelTTFT.Add(preds[i])
		r.modelTBT.Add(predTBT)
		seq := r.placeSeq
		r.placeSeq++
		r.rec.Emit(obs.Event{Type: obs.EvFleetPlace, Req: seq,
			N: int64(c.rep), Aux: int64(marg), Sec: preds[i]})
		r.mu.Unlock()
		return &Ticket{Replica: c.rep, PredTTFT: preds[i], predTBT: predTBT, sloMiss: sloMiss, tk: tk}
	}
	for i, c := range cands {
		if tk, ok := r.engines[c.rep].TrySubmit(req); ok {
			return accept(i, tk)
		}
	}
	return accept(0, r.engines[cands[0].rep].Submit(req))
}

// meanReqSecLocked is the mean modeled service time of requests routed so
// far (0 before the first placement). Caller holds r.mu.
func (r *Router) meanReqSecLocked(rep int) float64 {
	if r.assignedReqs[rep] == 0 {
		return 0
	}
	return r.backlogSec[rep] / float64(r.assignedReqs[rep])
}

package fleet

import (
	"strings"
	"testing"

	"clusterkv/internal/obs"
	"clusterkv/internal/serve"
)

// TestRouterDeterminismWithTraceEnabled locks the fleet half of the
// observability contract: a fleet-wide tracer (router lane plus one lane per
// replica) must not perturb placements, token streams or summary counters at
// any replica count, including with SLO scheduling engaged.
func TestRouterDeterminismWithTraceEnabled(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(3, 12)
	slo := func(c *Config) { c.SLOTTFT = 0.15; c.Shed = true }

	for _, replicas := range []int{1, 2, 4} {
		for _, withSLO := range []bool{false, true} {
			var mutate []func(*Config)
			if withSLO {
				mutate = append(mutate, slo)
			}
			base := runFleet(t, m, replicas, reqs, mutate...)

			tracer := obs.NewTracer(0)
			withTrace := append(append([]func(*Config){}, mutate...),
				func(c *Config) { c.Trace = tracer })
			traced := runFleet(t, m, replicas, reqs, withTrace...)

			if d := base.diff(traced); d != "" {
				t.Fatalf("replicas=%d slo=%v: traced run differs: %s", replicas, withSLO, d)
			}

			var places, sheds, reroutes int64
			replicaEvents := 0
			for _, ev := range tracer.Events() {
				switch ev.Type {
				case obs.EvFleetPlace:
					places++
					if ev.Replica != -1 {
						t.Fatalf("place event on lane %d, want router lane -1", ev.Replica)
					}
					if ev.N < 0 || ev.N >= int64(replicas) {
						t.Fatalf("place chose replica %d of %d", ev.N, replicas)
					}
				case obs.EvFleetShed:
					sheds++
				case obs.EvFleetReroute:
					reroutes++
				default:
					if ev.Replica < 0 || ev.Replica >= replicas {
						t.Fatalf("engine event %s on lane %d, want [0,%d)", ev.Type, ev.Replica, replicas)
					}
					replicaEvents++
				}
			}
			if places != traced.routed {
				t.Fatalf("replicas=%d slo=%v: %d place events, summary routed %d",
					replicas, withSLO, places, traced.routed)
			}
			if sheds != traced.shed {
				t.Fatalf("replicas=%d slo=%v: %d shed events, summary shed %d",
					replicas, withSLO, sheds, traced.shed)
			}
			if reroutes != traced.rerouted {
				t.Fatalf("replicas=%d slo=%v: %d reroute events, summary rerouted %d",
					replicas, withSLO, reroutes, traced.rerouted)
			}
			if replicaEvents == 0 {
				t.Fatal("replica engines emitted no events through the fleet tracer")
			}
		}
	}
}

// TestSummaryEmptyDistributions guards Summary formatting before any request
// ran: no NaN/Inf from empty latency distributions or zero routed counts,
// and the modeled latency lines read n=0.
func TestSummaryEmptyDistributions(t *testing.T) {
	m := testModel()
	r := NewRouter(m, Config{Replicas: 2, Engine: serve.Config{Workers: 1, MaxBatch: 2, Seed: 7}})
	defer r.Close()
	s := r.Summary()
	out := s.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("empty summary renders NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "modeled ttft: n=0") {
		t.Fatalf("empty summary must print n=0 modeled ttft:\n%s", out)
	}
	if s.Balance != 0 || s.PrefixHitRate() != 0 {
		t.Fatalf("empty summary balance=%v hit rate=%v, want zeros", s.Balance, s.PrefixHitRate())
	}
}

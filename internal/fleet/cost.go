package fleet

import (
	"clusterkv/internal/memsim"
)

// latencyModel is memsim.LatencyModel — the shared round/token/page cost
// model (see internal/memsim/costmodel.go). The router uses it twice: at
// placement time to predict a candidate replica's TTFT against the SLO
// (backlog + marginal prefill + first token), and after a deterministic Run
// to assign every request a modeled TTFT/TBT from the replica's actual round
// schedule. The serve engine's attribution clock (DESIGN.md §14) uses the
// same model, so fleet latencies and per-request phase breakdowns agree on
// what a round costs.
type latencyModel = memsim.LatencyModel

func newLatencyModel(hw memsim.Hardware, shape memsim.ModelShape, pageTokens int) latencyModel {
	return memsim.NewLatencyModel(hw, shape, pageTokens)
}

// pagesFor returns the per-plane page count covering n tokens.
func pagesFor(n, pageTokens int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + pageTokens - 1) / pageTokens)
}

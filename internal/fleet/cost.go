package fleet

import (
	"clusterkv/internal/memsim"
)

// latencyModel converts a replica's round/token/page counts into modeled
// seconds. It follows the memsim idiom (DESIGN.md §4): the algorithms run
// for real on the small deterministic engine, producing exact token, page
// and round counts, and those counts are costed as if the fleet were serving
// Config.Shape (Llama-3.1-8B by default) on Config.Hardware — which is what
// makes prefill, decode and PCIe page movement carry their paper-scale
// relative weights instead of the toy model's.
//
// The router uses it twice: at placement time to predict a candidate
// replica's TTFT against the SLO (backlog + marginal prefill + first token),
// and after a deterministic Run to assign every request a modeled TTFT/TBT
// from the replica's actual round schedule. Both uses are pure functions of
// deterministic state — token counts, page counts, scheduler rounds — so
// modeled latencies reproduce run-to-run even though wall clock does not.
type latencyModel struct {
	// prefillSecPerTok is the modeled compute time to prefill one token:
	// 2 FLOPs per weight through the dense pipeline.
	prefillSecPerTok float64
	// decodeSecPerTok is the modeled time of one batched decode step: the
	// weight-streaming pass every concurrent stream shares, plus the fixed
	// launch overhead. Continuous batching is what makes this per-round, not
	// per-stream.
	decodeSecPerTok float64
	// secPerPlanePage is the modeled PCIe time to move one (layer, head) KV
	// page (memsim.Hardware.SecPerKVPage), and pagePlanes the (layer, head)
	// plane count a token's KV spans on the modeled shape.
	secPerPlanePage float64
	pagePlanes      int64
	pageTokens      int
}

// newLatencyModel derives the model from the hardware and the modeled shape.
func newLatencyModel(hw memsim.Hardware, shape memsim.ModelShape, pageTokens int) latencyModel {
	return latencyModel{
		prefillSecPerTok: 2 * float64(shape.Params) / hw.ComputeFLOPS,
		decodeSecPerTok:  shape.WeightBytes()/hw.HBMBandwidth + hw.LaunchOverhead,
		secPerPlanePage:  hw.SecPerKVPage(shape.HeadDim, pageTokens),
		pagePlanes:       int64(shape.NLayers * shape.NKVHeads),
		pageTokens:       pageTokens,
	}
}

// prefillSec models prefilling n marginal tokens: dense compute plus the
// PCIe movement of the KV pages that prefill writes.
func (lm latencyModel) prefillSec(n int) float64 {
	pages := pagesFor(n, lm.pageTokens) * lm.pagePlanes
	return lm.prefillSecPerTok*float64(n) + lm.secPerPlanePage*float64(pages)
}

// pagesFor returns the per-plane page count covering n tokens.
func pagesFor(n, pageTokens int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + pageTokens - 1) / pageTokens)
}

package fleet

import (
	"fmt"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/core"
	"clusterkv/internal/model"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

func testModel() *model.Model {
	cfg := model.DefaultConfig()
	cfg.VocabSize = 128
	cfg.DModel = 32
	cfg.NLayers = 2
	cfg.NHeads = 2
	cfg.NKVHeads = 2
	cfg.HeadDim = 8
	cfg.FFNDim = 64
	cfg.NTopics = 8
	return model.New(cfg)
}

func clusterSel() attention.Selector {
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	return core.New(cfg)
}

// fleetLoad builds a deterministic shared-document QA load: nReqs requests
// over nDocs distinct shared documents, mixing ClusterKV tenants, a
// full-attention tenant and a sampled tenant.
func fleetLoad(nDocs, nReqs int) []serve.Request {
	lc := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        nDocs,
		DocLen:       160,
		NRequests:    nReqs,
		QuestionLen:  12,
		MaxNewTokens: 5,
	}
	lc.Doc.VocabSize = 128
	lc.Doc.NTopics = 8
	lc.Doc.Seed = 42
	load := workload.NewLoad(lc)
	reqs := make([]serve.Request, len(load))
	for i, q := range load {
		reqs[i] = serve.Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          64,
			NewSelector:     clusterSel,
		}
		if i%4 == 1 {
			reqs[i].NewSelector = nil
			reqs[i].Budget = 0
		}
		if i%5 == 2 {
			reqs[i].Temperature = 0.8
		}
	}
	return reqs
}

// fleetFingerprint is everything about a fleet Run that must reproduce:
// placements, token streams, round schedules, modeled latencies, and the
// deterministic summary counters.
type fleetFingerprint struct {
	replica    []int
	tokens     [][]int
	admitRound []int64
	doneRound  []int64
	prefixHit  []bool
	reused     []int
	errs       []string
	modelTTFT  []float64
	modelTBT   []float64

	routed, shed, rerouted       int64
	completed, failed            uint64
	prefixHits, prefixMisses     uint64
	prefixPartial                uint64
	prefixReused                 int64
	prefillTokens, tokensOut     int64
	savedTokens, savedPages      int64
	balance                      float64
	sloAttain                    float64
	perReplicaRouted             []int64
	ttftP50, ttftP95, ttftN, tbt float64
}

func (a fleetFingerprint) diff(b fleetFingerprint) string {
	if len(a.replica) != len(b.replica) {
		return fmt.Sprintf("response count %d vs %d", len(a.replica), len(b.replica))
	}
	for i := range a.replica {
		switch {
		case a.replica[i] != b.replica[i]:
			return fmt.Sprintf("request %d placed on replica %d vs %d", i, a.replica[i], b.replica[i])
		case a.errs[i] != b.errs[i]:
			return fmt.Sprintf("request %d err %q vs %q", i, a.errs[i], b.errs[i])
		case len(a.tokens[i]) != len(b.tokens[i]):
			return fmt.Sprintf("request %d token count %d vs %d", i, len(a.tokens[i]), len(b.tokens[i]))
		case a.admitRound[i] != b.admitRound[i] || a.doneRound[i] != b.doneRound[i]:
			return fmt.Sprintf("request %d rounds (%d,%d) vs (%d,%d)",
				i, a.admitRound[i], a.doneRound[i], b.admitRound[i], b.doneRound[i])
		case a.prefixHit[i] != b.prefixHit[i]:
			return fmt.Sprintf("request %d prefix hit %v vs %v", i, a.prefixHit[i], b.prefixHit[i])
		case a.reused[i] != b.reused[i]:
			return fmt.Sprintf("request %d reused tokens %d vs %d", i, a.reused[i], b.reused[i])
		case a.modelTTFT[i] != b.modelTTFT[i]:
			return fmt.Sprintf("request %d modeled TTFT %v vs %v", i, a.modelTTFT[i], b.modelTTFT[i])
		case a.modelTBT[i] != b.modelTBT[i]:
			return fmt.Sprintf("request %d modeled TBT %v vs %v", i, a.modelTBT[i], b.modelTBT[i])
		}
		for j := range a.tokens[i] {
			if a.tokens[i][j] != b.tokens[i][j] {
				return fmt.Sprintf("request %d token %d: %d vs %d", i, j, a.tokens[i][j], b.tokens[i][j])
			}
		}
	}
	type num struct {
		a, b float64
		name string
	}
	for _, c := range []num{
		{float64(a.routed), float64(b.routed), "routed"},
		{float64(a.shed), float64(b.shed), "shed"},
		{float64(a.rerouted), float64(b.rerouted), "rerouted"},
		{float64(a.completed), float64(b.completed), "completed"},
		{float64(a.failed), float64(b.failed), "failed"},
		{float64(a.prefixHits), float64(b.prefixHits), "prefixHits"},
		{float64(a.prefixMisses), float64(b.prefixMisses), "prefixMisses"},
		{float64(a.prefixPartial), float64(b.prefixPartial), "prefixPartialHits"},
		{float64(a.prefixReused), float64(b.prefixReused), "prefixReusedTokens"},
		{float64(a.prefillTokens), float64(b.prefillTokens), "prefillTokens"},
		{float64(a.tokensOut), float64(b.tokensOut), "tokensGenerated"},
		{float64(a.savedTokens), float64(b.savedTokens), "savedPrefillTokens"},
		{float64(a.savedPages), float64(b.savedPages), "savedPrefillPages"},
		{a.balance, b.balance, "balance"},
		{a.sloAttain, b.sloAttain, "sloAttainment"},
		{a.ttftP50, b.ttftP50, "modelTTFT.P50"},
		{a.ttftP95, b.ttftP95, "modelTTFT.P95"},
		{a.ttftN, b.ttftN, "modelTTFT.N"},
		{a.tbt, b.tbt, "modelTBT.P50"},
	} {
		if c.a != c.b {
			return fmt.Sprintf("summary %s: %v vs %v", c.name, c.a, c.b)
		}
	}
	if len(a.perReplicaRouted) != len(b.perReplicaRouted) {
		return "replica count differs"
	}
	for i := range a.perReplicaRouted {
		if a.perReplicaRouted[i] != b.perReplicaRouted[i] {
			return fmt.Sprintf("replica %d routed %d vs %d", i, a.perReplicaRouted[i], b.perReplicaRouted[i])
		}
	}
	return ""
}

// runFleet runs the load on a fresh router and fingerprints the outcome.
func runFleet(t *testing.T, m *model.Model, replicas int, reqs []serve.Request, mutate ...func(*Config)) fleetFingerprint {
	t.Helper()
	cfg := Config{
		Replicas: replicas,
		Policy:   PolicyAffinity,
		Engine:   serve.Config{Workers: 2, MaxBatch: 4, KVBudget: 2048, Seed: 7},
		Seed:     7,
	}
	for _, mu := range mutate {
		mu(&cfg)
	}
	r := NewRouter(m, cfg)
	resps := r.Run(reqs)
	sum := r.Summary()
	r.Close()

	fp := fleetFingerprint{}
	for _, resp := range resps {
		fp.replica = append(fp.replica, resp.Replica)
		fp.tokens = append(fp.tokens, resp.Tokens)
		fp.admitRound = append(fp.admitRound, resp.AdmitRound)
		fp.doneRound = append(fp.doneRound, resp.DoneRound)
		fp.prefixHit = append(fp.prefixHit, resp.PrefixHit)
		fp.reused = append(fp.reused, resp.PrefixReusedTokens)
		fp.modelTTFT = append(fp.modelTTFT, resp.ModelTTFT)
		fp.modelTBT = append(fp.modelTBT, resp.ModelTBT)
		if resp.Err != nil {
			fp.errs = append(fp.errs, resp.Err.Error())
		} else {
			fp.errs = append(fp.errs, "")
		}
	}
	fp.routed, fp.shed, fp.rerouted = sum.Routed, sum.Shed, sum.Rerouted
	fp.completed, fp.failed = sum.Completed, sum.Failed
	fp.prefixHits, fp.prefixMisses = sum.PrefixHits, sum.PrefixMisses
	fp.prefixPartial, fp.prefixReused = sum.PrefixPartialHits, sum.PrefixReusedTokens
	fp.prefillTokens, fp.tokensOut = sum.PrefillTokens, sum.TokensGenerated
	fp.savedTokens, fp.savedPages = sum.SavedPrefillTokens, sum.SavedPrefillPages
	fp.balance, fp.sloAttain = sum.Balance, sum.SLOAttainment
	fp.ttftP50, fp.ttftP95, fp.ttftN = sum.ModelTTFT.P50, sum.ModelTTFT.P95, float64(sum.ModelTTFT.N)
	fp.tbt = sum.ModelTBT.P50
	for _, rs := range sum.PerReplica {
		fp.perReplicaRouted = append(fp.perReplicaRouted, rs.Routed)
	}
	return fp
}

// TestRouterDeterminismAcrossReplicaCounts is the fleet determinism lock:
// at every replica count in {1, 2, 4} and for every policy, two runs of the
// same seeded load on fresh routers must produce identical placements, token
// streams, round schedules, modeled latencies and summary counters.
func TestRouterDeterminismAcrossReplicaCounts(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(3, 12)
	for _, replicas := range []int{1, 2, 4} {
		for _, policy := range []Policy{PolicyAffinity, PolicyRoundRobin, PolicyLeastLoaded} {
			mutate := func(c *Config) { c.Policy = policy }
			a := runFleet(t, m, replicas, reqs, mutate)
			if a.completed != uint64(len(reqs)) || a.failed != 0 {
				t.Fatalf("replicas=%d policy=%s: %d completed, %d failed, want %d/0",
					replicas, policy, a.completed, a.failed, len(reqs))
			}
			b := runFleet(t, m, replicas, reqs, mutate)
			if d := a.diff(b); d != "" {
				t.Fatalf("replicas=%d policy=%s: runs differ: %s", replicas, policy, d)
			}
		}
	}
}

// TestRouterDeterminismWithSLO repeats the lock with SLO scheduling engaged
// (reroute and shed paths included), which exercises the prediction model in
// the placement loop.
func TestRouterDeterminismWithSLO(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 16)
	mutate := func(c *Config) {
		c.SLOTTFT = 0.15 // ~7 modeled decode rounds: early placements fit, a backlog sheds
		c.Shed = true
	}
	for _, replicas := range []int{1, 2, 4} {
		a := runFleet(t, m, replicas, reqs, mutate)
		b := runFleet(t, m, replicas, reqs, mutate)
		if d := a.diff(b); d != "" {
			t.Fatalf("replicas=%d: SLO runs differ: %s", replicas, d)
		}
		if a.shed+int64(a.completed) != int64(len(reqs)) {
			t.Fatalf("replicas=%d: shed %d + completed %d != %d",
				replicas, a.shed, a.completed, len(reqs))
		}
	}
}

// TestSingleReplicaMatchesEngineRun: a 1-replica fleet is exactly the engine.
// Router.Run must reproduce Engine.Run token-for-token, with identical round
// schedules and prefix-cache behaviour, for every policy.
func TestSingleReplicaMatchesEngineRun(t *testing.T) {
	m := testModel()
	reqs := fleetLoad(2, 10)
	ecfg := serve.Config{Workers: 2, MaxBatch: 4, KVBudget: 2048, Seed: 7}

	eng := serve.NewEngine(m, ecfg)
	want := eng.Run(reqs)
	eng.Close()

	for _, policy := range []Policy{PolicyAffinity, PolicyRoundRobin, PolicyLeastLoaded} {
		r := NewRouter(m, Config{Replicas: 1, Policy: policy, Engine: ecfg, Seed: 7})
		got := r.Run(reqs)
		r.Close()
		for i := range want {
			if got[i].Replica != 0 {
				t.Fatalf("policy %s: request %d on replica %d, want 0", policy, i, got[i].Replica)
			}
			if (want[i].Err == nil) != (got[i].Err == nil) {
				t.Fatalf("policy %s: request %d err %v vs engine %v", policy, i, got[i].Err, want[i].Err)
			}
			if len(got[i].Tokens) != len(want[i].Tokens) {
				t.Fatalf("policy %s: request %d has %d tokens, engine %d",
					policy, i, len(got[i].Tokens), len(want[i].Tokens))
			}
			for j := range want[i].Tokens {
				if got[i].Tokens[j] != want[i].Tokens[j] {
					t.Fatalf("policy %s: request %d token %d: %d vs engine %d",
						policy, i, j, got[i].Tokens[j], want[i].Tokens[j])
				}
			}
			if got[i].AdmitRound != want[i].AdmitRound || got[i].DoneRound != want[i].DoneRound {
				t.Fatalf("policy %s: request %d rounds (%d,%d) vs engine (%d,%d)",
					policy, i, got[i].AdmitRound, got[i].DoneRound, want[i].AdmitRound, want[i].DoneRound)
			}
			if got[i].PrefixHit != want[i].PrefixHit {
				t.Fatalf("policy %s: request %d prefix hit %v vs engine %v",
					policy, i, got[i].PrefixHit, want[i].PrefixHit)
			}
		}
	}
}

// nestedFleetLoad builds a multi-turn conversation load shaped for the fleet
// test model: nested prompts within each session, interleaved across sessions,
// so affinity routing and radix partial reuse both engage.
func nestedFleetLoad() []serve.Request {
	cfg := workload.DefaultConversationConfig()
	cfg.Doc.VocabSize = 128
	cfg.Doc.NTopics = 8
	cfg.Doc.Seed = 67
	load := workload.ConversationLoad(cfg)
	reqs := make([]serve.Request, len(load))
	for i, q := range load {
		reqs[i] = serve.Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          64,
			NewSelector:     clusterSel,
		}
	}
	return reqs
}

// TestRouterDeterminismNestedSessions extends the fleet determinism lock to
// the radix path: a multi-turn conversation load (nested shared prefixes, so
// longest-prefix affinity and partial page reuse both fire) must reproduce
// exactly at every replica count in {1, 2, 4}, and the run must actually
// exercise partial reuse — otherwise the lock proves nothing.
func TestRouterDeterminismNestedSessions(t *testing.T) {
	m := testModel()
	reqs := nestedFleetLoad()
	for _, replicas := range []int{1, 2, 4} {
		a := runFleet(t, m, replicas, reqs)
		if a.completed != uint64(len(reqs)) || a.failed != 0 {
			t.Fatalf("replicas=%d: %d completed, %d failed, want %d/0",
				replicas, a.completed, a.failed, len(reqs))
		}
		if a.prefixPartial == 0 {
			t.Fatalf("replicas=%d: nested load produced no partial prefix hits", replicas)
		}
		if a.prefixReused <= 0 {
			t.Fatalf("replicas=%d: nested load reused %d prefix tokens", replicas, a.prefixReused)
		}
		b := runFleet(t, m, replicas, reqs)
		if d := a.diff(b); d != "" {
			t.Fatalf("replicas=%d: nested-session runs differ: %s", replicas, d)
		}
	}
}

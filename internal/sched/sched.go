// Package sched implements the event-driven two-stream pipeline simulator
// used to model ClusterKV's asynchronous clustering during prefill (paper
// Fig. 6): clustering of layer i's keys is launched on a side stream as soon
// as the keys leave the QKV-projection + RoPE modules, and overlaps with the
// rest of layer i (attention, FFN) and the start of layer i+1.
package sched

// Stage is one main-stream stage (a transformer layer during prefill).
type Stage struct {
	// Compute is the stage's main-stream duration (seconds).
	Compute float64
	// SideJob is the duration of the side-stream job this stage spawns
	// (clustering of this layer's keys); 0 for no job.
	SideJob float64
	// ReadyFrac is the fraction of Compute after which the side job's input
	// is ready (keys exist after QKV+RoPE, early in the layer).
	ReadyFrac float64
}

// Result summarises the pipeline simulation.
type Result struct {
	// MainTotal is the main stream's finish time (no side work).
	MainTotal float64
	// SideBusy is the total side-stream busy time.
	SideBusy float64
	// Total is the pipeline makespan: everything, including side jobs that
	// outlast the main stream, must finish.
	Total float64
	// Exposed is the extra latency caused by side work: Total − MainTotal.
	Exposed float64
}

// Overlap simulates the two-stream pipeline. The main stream runs stages
// back-to-back; each stage's side job becomes ready at
// stageStart + ReadyFrac·Compute and the single side stream executes ready
// jobs in order. The sequence completes when both streams drain.
func Overlap(stages []Stage) Result {
	var mainT, sideT float64
	for _, st := range stages {
		ready := mainT + st.ReadyFrac*st.Compute
		if st.SideJob > 0 {
			if sideT < ready {
				sideT = ready
			}
			sideT += st.SideJob
		}
		mainT += st.Compute
	}
	res := Result{MainTotal: mainT}
	for _, st := range stages {
		res.SideBusy += st.SideJob
	}
	res.Total = mainT
	if sideT > res.Total {
		res.Total = sideT
	}
	res.Exposed = res.Total - res.MainTotal
	return res
}

// UniformLayers builds a homogeneous prefill pipeline: nLayers stages of
// layerTime each, spawning clusterTime side jobs ready at readyFrac.
func UniformLayers(nLayers int, layerTime, clusterTime, readyFrac float64) []Stage {
	stages := make([]Stage, nLayers)
	for i := range stages {
		stages[i] = Stage{Compute: layerTime, SideJob: clusterTime, ReadyFrac: readyFrac}
	}
	return stages
}

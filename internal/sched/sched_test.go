package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoSideJobs(t *testing.T) {
	res := Overlap([]Stage{{Compute: 1}, {Compute: 2}, {Compute: 3}})
	if res.MainTotal != 6 || res.Total != 6 || res.Exposed != 0 || res.SideBusy != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestFullyHiddenSideJobs(t *testing.T) {
	// Tiny side jobs launched early are hidden entirely.
	stages := UniformLayers(4, 10, 0.5, 0.1)
	res := Overlap(stages)
	if res.Exposed != 0 {
		t.Fatalf("tiny side jobs exposed %v", res.Exposed)
	}
	if res.SideBusy != 2 {
		t.Fatalf("SideBusy = %v", res.SideBusy)
	}
}

func TestEmptyStageList(t *testing.T) {
	for _, stages := range [][]Stage{nil, {}} {
		res := Overlap(stages)
		if res.MainTotal != 0 || res.SideBusy != 0 || res.Total != 0 || res.Exposed != 0 {
			t.Fatalf("empty pipeline: %+v", res)
		}
	}
}

func TestAllZeroSideJobs(t *testing.T) {
	// SideJob == 0 stages must not advance the side stream even when their
	// ReadyFrac is set, and zero-compute stages are tolerated.
	stages := []Stage{
		{Compute: 2, SideJob: 0, ReadyFrac: 0.5},
		{Compute: 0, SideJob: 0, ReadyFrac: 1},
		{Compute: 3, SideJob: 0, ReadyFrac: 0},
	}
	res := Overlap(stages)
	if res.MainTotal != 5 || res.Total != 5 || res.SideBusy != 0 || res.Exposed != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestSideJobReadyAfterMainEnds(t *testing.T) {
	// The last stage's side job becomes ready exactly when the main stream
	// finishes (ReadyFrac = 1): it is fully exposed.
	stages := []Stage{
		{Compute: 1},
		{Compute: 2, SideJob: 4, ReadyFrac: 1},
	}
	res := Overlap(stages)
	if res.MainTotal != 3 {
		t.Fatalf("MainTotal = %v", res.MainTotal)
	}
	if math.Abs(res.Total-7) > 1e-12 || math.Abs(res.Exposed-4) > 1e-12 {
		t.Fatalf("fully exposed side job: %+v", res)
	}
	// A queued side job whose predecessor pushes its start past the main
	// stream's end is also fully serialised after it.
	stages = []Stage{
		{Compute: 2, SideJob: 5, ReadyFrac: 0.5}, // side: [1, 6)
		{Compute: 1, SideJob: 2, ReadyFrac: 0},   // ready at 2, starts at 6
	}
	res = Overlap(stages)
	if math.Abs(res.Total-8) > 1e-12 || math.Abs(res.Exposed-5) > 1e-12 {
		t.Fatalf("queued-past-main side job: %+v", res)
	}
}

func TestSideJobOutlastsMain(t *testing.T) {
	// One huge side job from the last stage extends the makespan.
	stages := []Stage{{Compute: 1}, {Compute: 1, SideJob: 10, ReadyFrac: 0.5}}
	res := Overlap(stages)
	// Side job starts at 1.5, runs 10 → finishes 11.5; main ends at 2.
	if math.Abs(res.Total-11.5) > 1e-12 || math.Abs(res.Exposed-9.5) > 1e-12 {
		t.Fatalf("%+v", res)
	}
}

func TestSideStreamSerialisation(t *testing.T) {
	// Two side jobs of 3s each, ready at t=0.5 and t=1.5: the second queues
	// behind the first (0.5+3=3.5 > 1.5), finishing at 6.5.
	stages := []Stage{
		{Compute: 1, SideJob: 3, ReadyFrac: 0.5},
		{Compute: 1, SideJob: 3, ReadyFrac: 0.5},
	}
	res := Overlap(stages)
	if math.Abs(res.Total-6.5) > 1e-12 {
		t.Fatalf("Total = %v, want 6.5", res.Total)
	}
}

func TestReadyFracDelaysStart(t *testing.T) {
	early := Overlap([]Stage{{Compute: 10, SideJob: 20, ReadyFrac: 0}})
	late := Overlap([]Stage{{Compute: 10, SideJob: 20, ReadyFrac: 1}})
	if late.Total-early.Total != 10 {
		t.Fatalf("ReadyFrac shift wrong: %v vs %v", early.Total, late.Total)
	}
}

func TestOverlapInvariantsProperty(t *testing.T) {
	check := func(seeds []uint8) bool {
		var stages []Stage
		for i := 0; i+2 < len(seeds); i += 3 {
			stages = append(stages, Stage{
				Compute:   float64(seeds[i])/16 + 0.01,
				SideJob:   float64(seeds[i+1]) / 32,
				ReadyFrac: float64(seeds[i+2]%100) / 100,
			})
		}
		res := Overlap(stages)
		// Total >= MainTotal; Total >= SideBusy; Exposed = Total - MainTotal >= 0.
		return res.Total >= res.MainTotal-1e-12 &&
			res.Total >= res.SideBusy-1e-12 &&
			res.Exposed >= -1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformLayers(t *testing.T) {
	stages := UniformLayers(3, 2, 1, 0.25)
	if len(stages) != 3 {
		t.Fatalf("%d stages", len(stages))
	}
	for _, s := range stages {
		if s.Compute != 2 || s.SideJob != 1 || s.ReadyFrac != 0.25 {
			t.Fatalf("%+v", s)
		}
	}
}

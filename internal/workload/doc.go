package workload

import "clusterkv/internal/rng"

// DocConfig controls token-document generation for the transformer engine.
// Documents are sequences of topic segments: within a segment, tokens are
// drawn from that topic's vocabulary slice with occasional global tokens —
// mirroring how real documents keep local topical coherence, which is what
// gives transformer keys their semantic-cluster structure.
type DocConfig struct {
	// VocabSize must match the model's vocabulary.
	VocabSize int
	// NTopics must match the model's topic count (vocabulary is striped
	// across topics: token v belongs to topic v % NTopics).
	NTopics int
	// SegMean is the mean segment length.
	SegMean int
	// GlobalRate is the probability of drawing a token from the whole
	// vocabulary instead of the segment topic.
	GlobalRate float64
	// Seed drives determinism.
	Seed uint64
}

// DefaultDocConfig matches model.DefaultConfig().
func DefaultDocConfig() DocConfig {
	return DocConfig{VocabSize: 512, NTopics: 16, SegMean: 48, GlobalRate: 0.15, Seed: 7}
}

// Doc generates a document of n tokens.
func Doc(cfg DocConfig, n int) []int {
	rnd := rng.New(cfg.Seed)
	out := make([]int, 0, n)
	tokensPerTopic := cfg.VocabSize / cfg.NTopics
	for len(out) < n {
		topic := rnd.Intn(cfg.NTopics)
		segLen := cfg.SegMean/2 + rnd.Intn(cfg.SegMean)
		for i := 0; i < segLen && len(out) < n; i++ {
			var tok int
			if rnd.Float64() < cfg.GlobalRate {
				tok = rnd.Intn(cfg.VocabSize)
			} else {
				tok = rnd.Intn(tokensPerTopic)*cfg.NTopics + topic
			}
			out = append(out, tok)
		}
	}
	return out
}

// PG19Stream generates a language-modeling stream mirroring PG19 long-book
// text: topic segments with a slowly drifting topic distribution plus
// recurring "character" tokens that reappear throughout the stream (long
// range reuse is what makes recallable compression matter for LM perplexity).
func PG19Stream(cfg DocConfig, n int) []int {
	rnd := rng.New(cfg.Seed ^ 0x19)
	out := make([]int, 0, n)
	tokensPerTopic := cfg.VocabSize / cfg.NTopics

	// Recurring character tokens: a handful of tokens that appear in bursts
	// across the whole stream.
	numChars := 6
	chars := make([]int, numChars)
	for i := range chars {
		chars[i] = rnd.Intn(cfg.VocabSize)
	}

	topic := rnd.Intn(cfg.NTopics)
	for len(out) < n {
		// Drift: usually stay on the current topic, sometimes move.
		if rnd.Float64() < 0.25 {
			topic = (topic + 1 + rnd.Intn(3)) % cfg.NTopics
		}
		segLen := cfg.SegMean/2 + rnd.Intn(cfg.SegMean)
		for i := 0; i < segLen && len(out) < n; i++ {
			r := rnd.Float64()
			var tok int
			switch {
			case r < 0.10:
				tok = chars[rnd.Intn(numChars)]
			case r < 0.10+cfg.GlobalRate:
				tok = rnd.Intn(cfg.VocabSize)
			default:
				tok = rnd.Intn(tokensPerTopic)*cfg.NTopics + topic
			}
			out = append(out, tok)
		}
	}
	return out
}

package workload

import "testing"

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkNestedLoad asserts the invariants every session load must keep: valid
// requests (shared prefix strictly inside the prompt, tokens in vocabulary)
// and determinism across re-generation.
func checkNestedLoad(t *testing.T, name string, load, again []QARequest, vocab int) {
	t.Helper()
	if len(load) == 0 {
		t.Fatalf("%s: empty load", name)
	}
	if len(load) != len(again) {
		t.Fatalf("%s: regenerated load has %d requests, want %d", name, len(again), len(load))
	}
	for i, q := range load {
		if q.SharedPrefixLen <= 0 || q.SharedPrefixLen >= len(q.Prompt) {
			t.Fatalf("%s[%d]: SharedPrefixLen %d outside (0, %d)", name, i, q.SharedPrefixLen, len(q.Prompt))
		}
		for _, tok := range q.Prompt {
			if tok < 0 || tok >= vocab {
				t.Fatalf("%s[%d]: token %d outside vocab %d", name, i, tok, vocab)
			}
		}
		if !sameInts(q.Prompt, again[i].Prompt) || q.SharedPrefixLen != again[i].SharedPrefixLen {
			t.Fatalf("%s[%d]: regeneration differs", name, i)
		}
	}
}

// TestConversationLoadNesting locks the chat generator's defining property:
// within a session, turn k's declared shared prefix extends turn k-1's whole
// prompt (history = previous prompt + scripted reply), and every session
// starts with the common system prompt.
func TestConversationLoadNesting(t *testing.T) {
	cfg := DefaultConversationConfig()
	load := ConversationLoad(cfg)
	checkNestedLoad(t, "chat", load, ConversationLoad(cfg), cfg.Doc.VocabSize)
	if len(load) != cfg.Sessions*cfg.Turns {
		t.Fatalf("%d requests, want %d", len(load), cfg.Sessions*cfg.Turns)
	}
	// Turn-major order: request index = turn*Sessions + session.
	for s := 0; s < cfg.Sessions; s++ {
		prev := load[s] // turn 0 of session s
		if prev.SharedPrefixLen != cfg.SystemLen {
			t.Fatalf("session %d turn 0 shares %d tokens, want system %d", s, prev.SharedPrefixLen, cfg.SystemLen)
		}
		for turn := 1; turn < cfg.Turns; turn++ {
			q := load[turn*cfg.Sessions+s]
			if q.Doc != s {
				t.Fatalf("session %d turn %d carries Doc %d", s, turn, q.Doc)
			}
			wantShared := len(prev.Prompt) + cfg.ReplyLen
			if q.SharedPrefixLen != wantShared {
				t.Fatalf("session %d turn %d shares %d, want %d", s, turn, q.SharedPrefixLen, wantShared)
			}
			if !sameInts(q.Prompt[:len(prev.Prompt)], prev.Prompt) {
				t.Fatalf("session %d turn %d prompt does not extend turn %d's", s, turn, turn-1)
			}
			prev = q
		}
	}
}

// TestAgenticLoadNesting locks re-entry: each step's prompt extends the
// previous step's whole prompt and declares exactly it shared.
func TestAgenticLoadNesting(t *testing.T) {
	cfg := DefaultAgenticConfig()
	load := AgenticLoad(cfg)
	checkNestedLoad(t, "agentic", load, AgenticLoad(cfg), cfg.Doc.VocabSize)
	if len(load) != cfg.Agents*cfg.Steps {
		t.Fatalf("%d requests, want %d", len(load), cfg.Agents*cfg.Steps)
	}
	for a := 0; a < cfg.Agents; a++ {
		prev := load[a]
		if prev.SharedPrefixLen != cfg.SystemLen {
			t.Fatalf("agent %d step 0 shares %d, want scaffold %d", a, prev.SharedPrefixLen, cfg.SystemLen)
		}
		for step := 1; step < cfg.Steps; step++ {
			q := load[step*cfg.Agents+a]
			if q.SharedPrefixLen != len(prev.Prompt) {
				t.Fatalf("agent %d step %d shares %d, want previous prompt %d",
					a, step, q.SharedPrefixLen, len(prev.Prompt))
			}
			if !sameInts(q.Prompt[:len(prev.Prompt)], prev.Prompt) {
				t.Fatalf("agent %d step %d prompt does not re-enter step %d's", a, step, step-1)
			}
			prev = q
		}
	}
}

// TestRAGLoadTemplate locks the templated-RAG shape: every prompt starts with
// the common template, the declared shared prefix covers template + chunks
// (everything but the question), and at least two requests agree on their
// leading chunk (otherwise the load exercises nothing).
func TestRAGLoadTemplate(t *testing.T) {
	cfg := DefaultRAGConfig()
	load := RAGLoad(cfg)
	checkNestedLoad(t, "rag", load, RAGLoad(cfg), cfg.Doc.VocabSize)
	template := load[0].Prompt[:cfg.TemplateLen]
	firstChunk := map[int]int{}
	for i, q := range load {
		if !sameInts(q.Prompt[:cfg.TemplateLen], template) {
			t.Fatalf("request %d does not start with the template", i)
		}
		wantShared := cfg.TemplateLen + cfg.ChunksPerRequest*cfg.ChunkLen
		if q.SharedPrefixLen != wantShared {
			t.Fatalf("request %d shares %d, want %d", i, q.SharedPrefixLen, wantShared)
		}
		firstChunk[q.Doc]++
	}
	shared := false
	for _, n := range firstChunk {
		if n > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatalf("no two requests agree on a leading chunk: %v", firstChunk)
	}
}

package workload

import (
	"math"
	"testing"
)

// TestPoissonArrivalsDeterministic: identical (seed, n, rate) reproduce the
// trace bit-for-bit; different seeds diverge.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(7, 200, 4)
	b := PoissonArrivals(7, 200, 4)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := PoissonArrivals(8, 200, 4)
	same := true
	for i := range a {
		if a[i].Gap != c[i].Gap {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap streams (suspicious)")
	}
}

// TestPoissonArrivalsShape: gaps are positive with the configured mean (law
// of large numbers tolerance), times are the cumulative gap sum, and rate<=0
// degenerates to a closed-loop trace.
func TestPoissonArrivalsShape(t *testing.T) {
	const n, rate = 5000, 8.0
	as := PoissonArrivals(3, n, rate)
	sum := 0.0
	prev := 0.0
	for i, a := range as {
		if a.Index != i {
			t.Fatalf("arrival %d has Index %d", i, a.Index)
		}
		if a.Gap < 0 {
			t.Fatalf("arrival %d has negative gap %v", i, a.Gap)
		}
		sum += a.Gap
		if math.Abs(a.At-(prev+a.Gap)) > 1e-12 {
			t.Fatalf("arrival %d: At %v is not prev %v + gap %v", i, a.At, prev, a.Gap)
		}
		if a.At < prev {
			t.Fatalf("arrival %d: time went backwards (%v after %v)", i, a.At, prev)
		}
		prev = a.At
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.15/rate {
		t.Fatalf("mean gap %v, want ~%v", mean, 1/rate)
	}
	for i, a := range PoissonArrivals(3, 16, 0) {
		if a.Gap != 0 || a.At != 0 {
			t.Fatalf("closed-loop arrival %d not at t=0: %+v", i, a)
		}
	}
}

// TestArrivalsReplayPreservesTaskOrder is the open-loop replay property test:
// across many seeds, materialising a Poisson load's embedded gaps yields one
// arrival per task, in the load's task order, at non-decreasing times that
// are exactly the cumulative gaps — so replaying the trace submits tasks in
// the same order the load defined, regardless of seed.
func TestArrivalsReplayPreservesTaskOrder(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		lc := LoadConfig{
			Doc:          DefaultDocConfig(),
			NDocs:        3,
			DocLen:       64,
			NRequests:    40,
			QuestionLen:  8,
			MaxNewTokens: 4,
			RatePerSec:   16,
		}
		lc.Doc.Seed = seed
		load := NewLoad(lc)
		as := Arrivals(load)
		if len(as) != len(load) {
			t.Fatalf("seed %d: %d arrivals for %d tasks", seed, len(as), len(load))
		}
		prev := 0.0
		for i, a := range as {
			if a.Index != i {
				t.Fatalf("seed %d: arrival %d replays task %d (order broken)", seed, i, a.Index)
			}
			if a.Gap != load[i].Gap {
				t.Fatalf("seed %d: arrival %d gap %v != load gap %v", seed, i, a.Gap, load[i].Gap)
			}
			if a.At < prev {
				t.Fatalf("seed %d: arrival %d at %v before previous %v", seed, i, a.At, prev)
			}
			if math.Abs(a.At-(prev+a.Gap)) > 1e-12 {
				t.Fatalf("seed %d: arrival %d At is not cumulative", seed, i)
			}
			prev = a.At
		}
		// Replaying the same seed reproduces the same arrival trace.
		again := Arrivals(NewLoad(lc))
		for i := range as {
			if as[i] != again[i] {
				t.Fatalf("seed %d: replay %d differs: %+v vs %+v", seed, i, as[i], again[i])
			}
		}
	}
}

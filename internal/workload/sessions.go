package workload

import "clusterkv/internal/rng"

// Nested-prefix serving loads: traffic classes whose shared prefixes *grow*
// request to request instead of matching exactly — multi-turn conversation,
// agentic tool-call re-entry, and templated RAG. A flat exact-match prefix
// cache gets little or no reuse on them (every turn's declared prefix is new);
// the serve engine's radix cache reuses the longest page-aligned common
// prefix, which for these loads is nearly the whole history. All generators
// are deterministic: identical configs yield identical request sequences.

// ConversationConfig shapes a multi-turn chat load: Sessions independent
// conversations of Turns turns each, all sharing one system prompt. Turn k's
// prompt is system ++ history(k) ++ user(k), where history grows by the
// previous user message plus a scripted assistant reply — so the declared
// shared prefix (everything before the new user message) extends the previous
// turn's whole prompt.
type ConversationConfig struct {
	// Doc controls token generation; Doc.Seed seeds the whole load.
	Doc DocConfig
	// Sessions is the number of independent conversations.
	Sessions int
	// Turns per conversation.
	Turns int
	// SystemLen is the shared system-prompt length, identical across every
	// session (cross-session sharing of the first pages).
	SystemLen int
	// UserLen is the per-turn user-message length.
	UserLen int
	// ReplyLen is the scripted assistant reply appended to the history after
	// each turn. Scripted (not the engine's sampled tokens) so the load is a
	// pure function of the config.
	ReplyLen int
	// MaxNewTokens is the per-request generation length.
	MaxNewTokens int
}

// DefaultConversationConfig returns a small interleaved chat load matched to
// DefaultDocConfig's vocabulary.
func DefaultConversationConfig() ConversationConfig {
	return ConversationConfig{
		Doc:          DefaultDocConfig(),
		Sessions:     4,
		Turns:        4,
		SystemLen:    96,
		UserLen:      24,
		ReplyLen:     24,
		MaxNewTokens: 8,
	}
}

// ConversationLoad materialises the chat load, turn-major (turn 1 of every
// session, then turn 2, ...), so the engine sees sessions interleaved the way
// a server would. QARequest.Doc carries the session index.
func ConversationLoad(cfg ConversationConfig) []QARequest {
	if cfg.Sessions <= 0 || cfg.Turns <= 0 || cfg.SystemLen <= 0 || cfg.UserLen <= 0 {
		panic("workload: ConversationLoad with non-positive shape")
	}
	system := sessionDoc(cfg.Doc, 0, 0, cfg.SystemLen)
	histories := make([][]int, cfg.Sessions)
	for s := range histories {
		histories[s] = append([]int(nil), system...)
	}
	var out []QARequest
	for turn := 0; turn < cfg.Turns; turn++ {
		for s := 0; s < cfg.Sessions; s++ {
			user := sessionDoc(cfg.Doc, uint64(s+1), uint64(2*turn+1), cfg.UserLen)
			hist := histories[s]
			prompt := make([]int, 0, len(hist)+len(user))
			prompt = append(append(prompt, hist...), user...)
			out = append(out, QARequest{
				Doc:             s,
				Prompt:          prompt,
				SharedPrefixLen: len(hist),
				MaxNewTokens:    cfg.MaxNewTokens,
			})
			if cfg.ReplyLen > 0 {
				reply := sessionDoc(cfg.Doc, uint64(s+1), uint64(2*turn+2), cfg.ReplyLen)
				prompt = append(prompt, reply...)
			}
			histories[s] = prompt
		}
	}
	return out
}

// AgenticConfig shapes an agentic re-entry load: Agents independent agent
// loops of Steps iterations. Each iteration re-enters the model with the
// *entire* previous prompt plus one new tool observation, declaring the whole
// previous prompt shared — the pattern where radix reuse approaches 100% of
// the prompt.
type AgenticConfig struct {
	Doc DocConfig
	// Agents is the number of independent agent loops.
	Agents int
	// Steps is the number of tool-call iterations per agent.
	Steps int
	// SystemLen is the shared agent scaffold prompt, identical across agents.
	SystemLen int
	// TaskLen is the per-agent task description following the scaffold.
	TaskLen int
	// ObsLen is the tool observation appended at each re-entry.
	ObsLen int
	// MaxNewTokens is the per-request generation length.
	MaxNewTokens int
}

// DefaultAgenticConfig returns a small agent-loop load matched to
// DefaultDocConfig's vocabulary.
func DefaultAgenticConfig() AgenticConfig {
	return AgenticConfig{
		Doc:          DefaultDocConfig(),
		Agents:       3,
		Steps:        5,
		SystemLen:    96,
		TaskLen:      32,
		ObsLen:       32,
		MaxNewTokens: 8,
	}
}

// AgenticLoad materialises the agent load, step-major across agents.
// QARequest.Doc carries the agent index.
func AgenticLoad(cfg AgenticConfig) []QARequest {
	if cfg.Agents <= 0 || cfg.Steps <= 0 || cfg.SystemLen <= 0 || cfg.TaskLen <= 0 || cfg.ObsLen <= 0 {
		panic("workload: AgenticLoad with non-positive shape")
	}
	system := sessionDoc(cfg.Doc, 0, 0, cfg.SystemLen)
	ctxs := make([][]int, cfg.Agents)
	for a := range ctxs {
		task := sessionDoc(cfg.Doc, uint64(a+1), 0, cfg.TaskLen)
		ctxs[a] = append(append([]int(nil), system...), task...)
	}
	var out []QARequest
	for step := 0; step < cfg.Steps; step++ {
		for a := 0; a < cfg.Agents; a++ {
			obs := sessionDoc(cfg.Doc, uint64(a+1), uint64(step+1), cfg.ObsLen)
			prev := ctxs[a]
			prompt := make([]int, 0, len(prev)+len(obs))
			prompt = append(append(prompt, prev...), obs...)
			shared := len(prev)
			if step == 0 {
				// First entry: only the scaffold is shared (across agents).
				shared = len(system)
			}
			out = append(out, QARequest{
				Doc:             a,
				Prompt:          prompt,
				SharedPrefixLen: shared,
				MaxNewTokens:    cfg.MaxNewTokens,
			})
			ctxs[a] = prompt
		}
	}
	return out
}

// RAGConfig shapes a templated retrieval-augmented load: every prompt is
// template ++ chunk_1 ++ ... ++ chunk_k ++ question, with chunks drawn from a
// shared pool. The whole retrieved context is declared shared; two requests
// whose retrievals agree on a leading run of chunks share that run's pages
// under the radix cache even though their full prefixes differ.
type RAGConfig struct {
	Doc DocConfig
	// TemplateLen is the instruction template every prompt starts with.
	TemplateLen int
	// NChunks is the retrieval pool size; ChunkLen each chunk's token length.
	NChunks, ChunkLen int
	// ChunksPerRequest is the retrieval depth k.
	ChunksPerRequest int
	// NRequests is the total request count; QuestionLen the per-request
	// question suffix.
	NRequests, QuestionLen int
	// MaxNewTokens is the per-request generation length.
	MaxNewTokens int
}

// DefaultRAGConfig returns a small templated-RAG load matched to
// DefaultDocConfig's vocabulary.
func DefaultRAGConfig() RAGConfig {
	return RAGConfig{
		Doc:              DefaultDocConfig(),
		TemplateLen:      64,
		NChunks:          6,
		ChunkLen:         128,
		ChunksPerRequest: 2,
		NRequests:        12,
		QuestionLen:      24,
		MaxNewTokens:     8,
	}
}

// RAGLoad materialises the RAG load. Retrieval is Zipf-flavoured (low chunk
// indices retrieved more often), so leading-chunk agreement — and with it
// radix reuse — actually occurs. QARequest.Doc carries the first retrieved
// chunk's index.
func RAGLoad(cfg RAGConfig) []QARequest {
	if cfg.TemplateLen <= 0 || cfg.NChunks <= 0 || cfg.ChunkLen <= 0 ||
		cfg.ChunksPerRequest <= 0 || cfg.NRequests <= 0 || cfg.QuestionLen <= 0 {
		panic("workload: RAGLoad with non-positive shape")
	}
	template := sessionDoc(cfg.Doc, 0, 0, cfg.TemplateLen)
	chunks := make([][]int, cfg.NChunks)
	for i := range chunks {
		chunks[i] = sessionDoc(cfg.Doc, uint64(i+1), 0, cfg.ChunkLen)
	}
	r := rng.New(cfg.Doc.Seed ^ 0x5e47e10ad) // salt: keep retrieval independent of Doc's stream
	out := make([]QARequest, cfg.NRequests)
	for i := range out {
		picked := make([]int, 0, cfg.ChunksPerRequest)
		for len(picked) < cfg.ChunksPerRequest {
			// Squaring the uniform draw skews retrieval toward low indices.
			u := r.Float64()
			c := int(u * u * float64(cfg.NChunks))
			if c >= cfg.NChunks {
				c = cfg.NChunks - 1
			}
			seen := false
			for _, p := range picked {
				if p == c {
					seen = true
					break
				}
			}
			if !seen {
				picked = append(picked, c)
			}
		}
		question := sessionDoc(cfg.Doc, uint64(i+1), 0xa5, cfg.QuestionLen)
		prompt := make([]int, 0, cfg.TemplateLen+cfg.ChunksPerRequest*cfg.ChunkLen+cfg.QuestionLen)
		prompt = append(prompt, template...)
		for _, c := range picked {
			prompt = append(prompt, chunks[c]...)
		}
		shared := len(prompt)
		prompt = append(prompt, question...)
		out[i] = QARequest{
			Doc:             picked[0],
			Prompt:          prompt,
			SharedPrefixLen: shared,
			MaxNewTokens:    cfg.MaxNewTokens,
		}
	}
	return out
}

// sessionDoc derives a deterministic token run for one (stream, step) slot of
// a session load, salting the config seed the same way NewLoad salts its
// per-index seeds.
func sessionDoc(dc DocConfig, stream, step uint64, n int) []int {
	dc.Seed = dc.Seed ^ ((stream*64 + step + 1) * 0x9e3779b97f4a7c15) ^ (step * 0xbf58476d1ce4e5b9)
	return Doc(dc, n)
}

package workload

import (
	"math"
	"testing"

	"clusterkv/internal/tensor"
)

func TestDocProperties(t *testing.T) {
	cfg := DefaultDocConfig()
	doc := Doc(cfg, 5000)
	if len(doc) != 5000 {
		t.Fatalf("doc length %d", len(doc))
	}
	for _, tok := range doc {
		if tok < 0 || tok >= cfg.VocabSize {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	// Topic coherence: adjacent tokens share a topic far more often than
	// chance (1/NTopics + global rate effects).
	same := 0
	for i := 1; i < len(doc); i++ {
		if doc[i]%cfg.NTopics == doc[i-1]%cfg.NTopics {
			same++
		}
	}
	if frac := float64(same) / float64(len(doc)-1); frac < 0.4 {
		t.Fatalf("topic coherence %.2f too low", frac)
	}
}

func TestDocDeterminism(t *testing.T) {
	cfg := DefaultDocConfig()
	a := Doc(cfg, 1000)
	b := Doc(cfg, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Doc not deterministic")
		}
	}
}

func TestPG19StreamTopicsConsistent(t *testing.T) {
	cfg := DefaultDocConfig()
	tokens, topics := PG19StreamTopics(cfg, 2000)
	if len(tokens) != 2000 || len(topics) != 2000 {
		t.Fatalf("lengths %d/%d", len(tokens), len(topics))
	}
	for i := range tokens {
		if topics[i] != tokens[i]%cfg.NTopics {
			t.Fatalf("topic label inconsistent at %d", i)
		}
	}
}

func TestNewTraceShapes(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.L = 512
	tr := NewTrace(cfg)
	if len(tr.Keys) != cfg.Heads || len(tr.Vals) != cfg.Heads {
		t.Fatal("per-head tensors missing")
	}
	for h := 0; h < cfg.Heads; h++ {
		if tr.Keys[h].Rows != 512 || tr.Keys[h].Cols != cfg.D {
			t.Fatalf("head %d keys shape %dx%d", h, tr.Keys[h].Rows, tr.Keys[h].Cols)
		}
	}
	if len(tr.TokenTopic) != 512 {
		t.Fatal("TokenTopic length")
	}
	for p := 0; p < cfg.SinkTokens; p++ {
		if tr.TokenTopic[p] != -1 {
			t.Fatalf("sink %d has topic %d", p, tr.TokenTopic[p])
		}
	}
}

func TestTraceTopicClusterStructure(t *testing.T) {
	// Same-topic keys must be more similar (cosine) than cross-topic keys.
	cfg := DefaultTraceConfig()
	cfg.L = 2048
	tr := NewTrace(cfg)
	var same, cross float64
	var nSame, nCross int
	for i := 100; i < 1000; i += 7 {
		for j := i + 1; j < 1000; j += 97 {
			sim := float64(tensor.CosineSim(tr.Keys[0].Row(i), tr.Keys[0].Row(j)))
			if tr.TokenTopic[i] == tr.TokenTopic[j] {
				same += sim
				nSame++
			} else {
				cross += sim
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate sampling")
	}
	if same/float64(nSame) <= cross/float64(nCross)+0.05 {
		t.Fatalf("no cluster structure: same=%.3f cross=%.3f", same/float64(nSame), cross/float64(nCross))
	}
}

func TestPlanSeedChangesDocumentNotDirections(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.L = 256
	a := NewTrace(cfg)
	cfg.PlanSeed = cfg.Seed ^ 0xca11b
	b := NewTrace(cfg)
	// Same head-level structure: topic directions identical.
	for tp := 0; tp < cfg.NTopics; tp++ {
		for j := 0; j < cfg.D; j++ {
			if a.topicDirs[0].At(tp, j) != b.topicDirs[0].At(tp, j) {
				t.Fatal("PlanSeed changed topic directions")
			}
		}
	}
	// Different document: token topics differ somewhere.
	diff := false
	for p := range a.TokenTopic {
		if a.TokenTopic[p] != b.TokenTopic[p] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("PlanSeed did not change the document plan")
	}
}

func TestAddStepAndLen(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.L = 128
	tr := NewTrace(cfg)
	tr.AddStep(QueryMix{TopicWeights: map[int]float32{1: 1}, Gain: 1, Noise: 0.1}, 1, []int{5, 6}, 0)
	if tr.Len() != 129 || len(tr.Steps) != 1 {
		t.Fatalf("Len=%d steps=%d", tr.Len(), len(tr.Steps))
	}
	st := tr.Steps[0]
	if len(st.Queries) != cfg.Heads || len(st.AppendK) != cfg.Heads {
		t.Fatal("step missing per-head data")
	}
	if len(st.Relevant) != 2 {
		t.Fatal("relevant set lost")
	}
}

func TestQueryTargetsItsTopic(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.L = 1024
	tr := NewTrace(cfg)
	topic := 3
	tr.AddStep(QueryMix{TopicWeights: map[int]float32{topic: 1}, Gain: 1, Noise: 0.1}, topic, nil, 1)
	q := tr.Steps[0].Queries[0]
	var onTopic, offTopic float64
	var nOn, nOff int
	for p := cfg.SinkTokens; p < 1024; p++ {
		dot := float64(tensor.Dot(q, tr.Keys[0].Row(p)))
		if tr.TokenTopic[p] == topic {
			onTopic += dot
			nOn++
		} else {
			offTopic += dot
			nOff++
		}
	}
	if nOn == 0 {
		t.Skip("topic absent from plan")
	}
	if onTopic/float64(nOn) <= offTopic/float64(nOff) {
		t.Fatal("query does not prefer its topic's keys")
	}
}

func TestLongBenchTasksSpecs(t *testing.T) {
	tasks := LongBenchTasks(32768)
	if len(tasks) != 8 {
		t.Fatalf("%d tasks, want 8", len(tasks))
	}
	names := map[string]bool{}
	for _, spec := range tasks {
		if names[spec.Name] {
			t.Fatalf("duplicate task %s", spec.Name)
		}
		names[spec.Name] = true
		if spec.CtxLen > 32768 || spec.CtxLen <= 0 {
			t.Fatalf("%s ctx %d", spec.Name, spec.CtxLen)
		}
	}
	capped := LongBenchTasks(4096)
	for _, spec := range capped {
		if spec.CtxLen > 4096 {
			t.Fatalf("%s not capped: %d", spec.Name, spec.CtxLen)
		}
	}
}

func TestBuildTaskNeedles(t *testing.T) {
	spec := LongBenchTasks(4096)[0]
	task := BuildTask(spec, 5)
	if len(task.NeedlePositions) != spec.NumNeedles {
		t.Fatalf("%d needle groups", len(task.NeedlePositions))
	}
	for i, pos := range task.NeedlePositions {
		if len(pos) != spec.NeedleTokens {
			t.Fatalf("needle %d has %d tokens", i, len(pos))
		}
		topic := task.NeedleTopic[i]
		for _, p := range pos {
			if p < 0 || p >= spec.CtxLen {
				t.Fatalf("needle position %d out of range", p)
			}
			if task.Trace.TokenTopic[p] != topic {
				t.Fatalf("needle token %d not retagged to topic %d", p, topic)
			}
		}
	}
	if len(task.Trace.Steps) != spec.AnswerSteps {
		t.Fatalf("%d steps, want %d", len(task.Trace.Steps), spec.AnswerSteps)
	}
}

func TestBuildTaskDeterminism(t *testing.T) {
	spec := LongBenchTasks(2048)[2]
	a := BuildTask(spec, 9)
	b := BuildTask(spec, 9)
	for h := range a.Trace.Keys {
		for i := range a.Trace.Keys[h].Data {
			if a.Trace.Keys[h].Data[i] != b.Trace.Keys[h].Data[i] {
				t.Fatal("BuildTask not deterministic")
			}
		}
	}
}

func TestHopPatternsCoverNeedles(t *testing.T) {
	for _, pattern := range []string{"sequential", "interleave", "revisit", "sweep", "diffuse"} {
		spec := TaskSpec{
			Name: pattern, BaseScore: 1, CtxLen: 1024, NumNeedles: 3,
			NeedleTokens: 8, SpreadRegion: 128, AnswerSteps: 12,
			HopPattern: pattern, DiffuseNoise: 0.3, QueryGain: 1,
		}
		task := BuildTask(spec, 11)
		touched := map[string]bool{}
		for _, st := range task.Trace.Steps {
			if len(st.Relevant) > 0 {
				touched[ikey(st.Relevant)] = true
			}
		}
		if len(touched) < 2 {
			t.Fatalf("pattern %s touched %d distinct needle sets", pattern, len(touched))
		}
	}
}

func ikey(xs []int) string {
	b := make([]byte, 0, len(xs))
	for _, x := range xs {
		b = append(b, byte(x%251))
	}
	return string(b)
}

func TestUnknownHopPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildTask(TaskSpec{Name: "x", CtxLen: 256, NumNeedles: 1, NeedleTokens: 4,
		SpreadRegion: 64, AnswerSteps: 2, HopPattern: "bogus"}, 1)
}

func TestRetrievalLMStream(t *testing.T) {
	doc := DefaultDocConfig()
	tc := DefaultTraceConfig()
	tc.Heads = 2
	lm := NewRetrievalLM(doc, tc, 800, 256, 10)
	if len(lm.Tokens) != 801 {
		t.Fatalf("stream length %d, want 801", len(lm.Tokens))
	}
	for i, tok := range lm.Tokens {
		if tok < 0 || tok >= doc.VocabSize {
			t.Fatalf("token %d out of vocab at %d", tok, i)
		}
		if lm.Topics[i] != tok%doc.NTopics && i >= lm.Warmup {
			t.Fatalf("generated topic inconsistent at %d", i)
		}
	}
}

func TestRetrievalLMDeterministicKV(t *testing.T) {
	doc := DefaultDocConfig()
	tc := DefaultTraceConfig()
	tc.Heads = 2
	lm := NewRetrievalLM(doc, tc, 400, 128, 10)
	k1, v1 := lm.KV(0, 50)
	k2, v2 := lm.KV(0, 50)
	for j := range k1 {
		if k1[j] != k2[j] || v1[j] != v2[j] {
			t.Fatal("KV not deterministic")
		}
	}
}

func TestRetrievalLMLogitsFinite(t *testing.T) {
	doc := DefaultDocConfig()
	tc := DefaultTraceConfig()
	tc.Heads = 2
	lm := NewRetrievalLM(doc, tc, 300, 128, 10)
	outs := [][]float32{make([]float32, tc.D), make([]float32, tc.D)}
	outs[0][0] = 1
	logits := lm.Logits(outs)
	if len(logits) != doc.VocabSize {
		t.Fatalf("logits length %d", len(logits))
	}
	for _, v := range logits {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite logit")
		}
	}
}

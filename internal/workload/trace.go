// Package workload generates the synthetic evaluation inputs that substitute
// for the paper's datasets (DESIGN.md §1): semantically structured key/value
// traces with decode-step queries (standing in for LongBench samples),
// topic-segmented token documents for the transformer engine, and a PG19-like
// language-modeling stream.
//
// The trace generator produces key vectors with the properties ClusterKV
// exploits in real LLMs: tokens of the same semantic topic have nearby keys;
// a few channels carry large-magnitude outliers; initial tokens act as
// attention sinks; keys carry a low-frequency positional rotation; and the
// set of important tokens drifts across decoding steps (the paper's Fig. 3a
// motivation).
package workload

import (
	"math"

	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// TraceConfig controls trace generation. Zero values take defaults from
// DefaultTraceConfig.
type TraceConfig struct {
	// L is the prefill context length.
	L int
	// Heads is the number of independent attention heads in the trace.
	Heads int
	// D is the key dimension per head.
	D int
	// NTopics is the number of semantic topics.
	NTopics int
	// SegMean is the mean topic-segment length in tokens.
	SegMean int
	// TopicStrength scales the shared topic direction vs noise.
	TopicStrength float32
	// NoiseStd is the per-token key noise.
	NoiseStd float32
	// OutlierChannels key channels carry a fixed large-magnitude pattern of
	// OutlierMean with relative jitter OutlierStd (the KIVI outlier-channel
	// phenomenon).
	OutlierChannels int
	OutlierMean     float32
	OutlierStd      float32
	// Sharpness scales every decode-step query so that post-softmax
	// attention is peaked like a trained model's (logit range of several
	// nats over the context) rather than near-uniform. Pure scaling: token
	// orderings, and hence recall metrics, are unaffected.
	Sharpness float32
	// ScaleStd is the lognormal sigma of the per-token global key magnitude.
	// Real LLM key norms vary strongly token-to-token; cosine clustering is
	// invariant to this scale while L2/inner-product distances are dominated
	// by it — the core of the paper's SIII-B metric choice.
	ScaleStd float64
	// SinkTokens initial positions receive the sink offset; every query
	// carries a matching component.
	SinkTokens   int
	SinkStrength float32
	// RotFrac is the fraction of channel pairs receiving positional
	// rotation (low-frequency RoPE-like mixing).
	RotFrac float64
	// Seed drives determinism of the head-level structure (topic/value/sink
	// directions) — the "model weights" of the trace.
	Seed uint64
	// PlanSeed drives the document plan (topic segments) and token noise —
	// the "input document". Zero means "use Seed". Two traces with equal
	// Seed but different PlanSeed model the same LLM reading different
	// documents; InfiniGen's offline calibration uses such a sibling trace.
	PlanSeed uint64
}

// DefaultTraceConfig returns the trace shape used across experiments.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		L:               8192,
		Heads:           4,
		D:               32,
		NTopics:         40,
		SegMean:         64,
		TopicStrength:   2.2,
		NoiseStd:        0.45,
		OutlierChannels: 2,
		OutlierMean:     2.5,
		OutlierStd:      0.7,
		ScaleStd:        0.15,
		SinkTokens:      16,
		SinkStrength:    2.5,
		RotFrac:         0.25,
		Sharpness:       22,
		Seed:            42,
	}
}

// Step is one decode step of a trace: per-head query vectors, the generated
// token's per-head key/value to append, and the ground-truth relevant
// positions for retrieval scoring.
type Step struct {
	// Queries[h] is the query vector of head h.
	Queries [][]float32
	// AppendK[h]/AppendV[h] are the generated token's key/value for head h.
	AppendK [][]float32
	AppendV [][]float32
	// Relevant lists the context positions that this step's answer depends
	// on (needle tokens of the currently queried hop). Empty for diffuse
	// steps.
	Relevant []int
}

// Trace is a fully materialised synthetic attention trace.
type Trace struct {
	Cfg TraceConfig
	// Keys[h]/Vals[h] are L×D prefill tensors of head h.
	Keys []*tensor.Mat
	Vals []*tensor.Mat
	// TokenTopic[p] is the topic of context position p (-1 for sinks).
	TokenTopic []int
	// Steps are the decode steps in order.
	Steps []Step

	// internal generator state kept for query synthesis
	topicDirs []*tensor.Mat // per head: NTopics×D
	valueDirs []*tensor.Mat
	sinkDirs  [][]float32 // per head
}

// headGen holds the per-head deterministic generator.
type headGen struct {
	rnd *rng.RNG
}

// NewTrace generates the prefill portion of a trace: a topic-segmented
// context of cfg.L tokens. Decode steps are added by the task builders.
func NewTrace(cfg TraceConfig) *Trace {
	if cfg.L <= 0 || cfg.Heads <= 0 || cfg.D <= 0 {
		panic("workload: invalid trace dimensions")
	}
	root := rng.New(cfg.Seed)
	if cfg.PlanSeed == 0 {
		cfg.PlanSeed = cfg.Seed
	}
	t := &Trace{Cfg: cfg}

	// Topic plan shared across heads (the document's content).
	planRNG := rng.New(cfg.PlanSeed ^ 0x1a)
	t.TokenTopic = make([]int, cfg.L)
	pos := 0
	for pos < cfg.L {
		topic := planRNG.Intn(cfg.NTopics)
		segLen := cfg.SegMean/2 + planRNG.Intn(cfg.SegMean)
		for i := 0; i < segLen && pos < cfg.L; i++ {
			t.TokenTopic[pos] = topic
			pos++
		}
	}
	for p := 0; p < cfg.SinkTokens && p < cfg.L; p++ {
		t.TokenTopic[p] = -1
	}

	for h := 0; h < cfg.Heads; h++ {
		hr := root.Split(uint64(1000 + h))
		dirs := tensor.NewMat(cfg.NTopics, cfg.D)
		vdirs := tensor.NewMat(cfg.NTopics, cfg.D)
		for tp := 0; tp < cfg.NTopics; tp++ {
			fillUnit(hr, dirs.Row(tp))
			fillUnit(hr, vdirs.Row(tp))
		}
		sink := make([]float32, cfg.D)
		fillUnit(hr, sink)
		t.topicDirs = append(t.topicDirs, dirs)
		t.valueDirs = append(t.valueDirs, vdirs)
		t.sinkDirs = append(t.sinkDirs, sink)

		tokRNG := rng.New(cfg.PlanSeed ^ uint64(0xbeef+137*h))
		keys := tensor.NewMat(cfg.L, cfg.D)
		vals := tensor.NewMat(cfg.L, cfg.D)
		for p := 0; p < cfg.L; p++ {
			t.genToken(h, tokRNG, keys.Row(p), vals.Row(p), t.TokenTopic[p], p)
		}
		t.Keys = append(t.Keys, keys)
		t.Vals = append(t.Vals, vals)
	}
	return t
}

// genToken synthesises the key/value of one token of the given topic at the
// given position for head h.
func (t *Trace) genToken(h int, hr *rng.RNG, key, val []float32, topic, pos int) {
	cfg := t.Cfg
	if topic >= 0 {
		dir := t.topicDirs[h].Row(topic)
		vdir := t.valueDirs[h].Row(topic)
		for j := range key {
			key[j] = cfg.TopicStrength*dir[j] + cfg.NoiseStd*hr.NormFloat32()
			val[j] = vdir[j] + 0.3*hr.NormFloat32()
		}
	} else {
		for j := range key {
			key[j] = cfg.NoiseStd * hr.NormFloat32()
			val[j] = 0.3 * hr.NormFloat32()
		}
	}
	// Outlier channels: consistent positions and sign, large magnitudes
	// with small relative jitter — the KIVI phenomenon (§III-B).
	for oc := 0; oc < cfg.OutlierChannels && oc < cfg.D; oc++ {
		ch := (oc * 7) % cfg.D
		key[ch] += cfg.OutlierMean * (1 + cfg.OutlierStd*hr.NormFloat32())
	}
	// Per-token global magnitude (lognormal): key norms in real models vary
	// strongly token-to-token. Cosine clustering is invariant to this scale;
	// L2 and inner-product distances are dominated by it.
	if cfg.ScaleStd > 0 {
		s := float32(math.Exp(cfg.ScaleStd*hr.NormFloat64() - cfg.ScaleStd*cfg.ScaleStd/2))
		for j := range key {
			key[j] *= s
		}
	}
	// Low-frequency positional rotation on a fraction of channel pairs.
	// Frequencies are kept slow (periods of thousands of tokens): retrieval
	// heads in long-context models match content in the slow rotary
	// channels, which is why post-RoPE keys still cluster semantically.
	pairs := int(cfg.RotFrac * float64(cfg.D/2))
	for pr := 0; pr < pairs; pr++ {
		freq := math.Pow(10000, -2*float64(pr+14)/float64(cfg.D))
		ang := float64(pos) * freq
		c, s := float32(math.Cos(ang)), float32(math.Sin(ang))
		a, b := key[2*pr], key[2*pr+1]
		key[2*pr] = a*c - b*s
		key[2*pr+1] = a*s + b*c
	}
	// Attention-sink offset.
	if pos >= 0 && pos < cfg.SinkTokens {
		tensor.Axpy(cfg.SinkStrength, t.sinkDirs[h], key)
	}
}

// QueryMix describes the composition of one decode-step query: weights over
// topics plus diffuse noise. Weights need not be normalised.
type QueryMix struct {
	// TopicWeights[topic] is the attention pull toward that topic's tokens.
	TopicWeights map[int]float32
	// Noise is the diffuse component's standard deviation.
	Noise float32
	// Gain scales the whole structured component.
	Gain float32
}

// AddStep synthesises one decode step: per-head queries matching the mix,
// the generated token's KV (drawn from genTopic), and the relevant set.
func (t *Trace) AddStep(mix QueryMix, genTopic int, relevant []int, stepSeed uint64) {
	cfg := t.Cfg
	sr := rng.New(cfg.Seed ^ (stepSeed+1)*0x9e3779b97f4a7c15)
	st := Step{Relevant: relevant}
	for h := 0; h < cfg.Heads; h++ {
		q := make([]float32, cfg.D)
		for topic, w := range mix.TopicWeights {
			// Pull toward the *key* direction of the topic so that q·k is
			// large for that topic's tokens.
			tensor.Axpy(w*mix.Gain, t.topicDirs[h].Row(topic), q)
		}
		// Sink component so sinks absorb baseline attention.
		tensor.Axpy(0.6, t.sinkDirs[h], q)
		// Sharpness scales only the structured part: trained-model attention
		// concentrates its mass on semantically coherent token groups, with
		// a modest unstructured residue added below.
		if cfg.Sharpness > 0 {
			tensor.Scale(cfg.Sharpness, q)
		}
		for j := range q {
			q[j] += 3 * mix.Noise * sr.NormFloat32()
		}
		// Queries place no mass on the outlier channels (noise there is
		// zeroed): in real models the outlier key channels act as a
		// near-constant bias on attention logits, so the ranking stays
		// semantic while L2/inner-product distances between keys are
		// outlier-dominated (the KIVI phenomenon behind the paper's cosine
		// choice, SIII-B).
		for oc := 0; oc < cfg.OutlierChannels && oc < cfg.D; oc++ {
			ch := (oc * 7) % cfg.D
			q[ch] = 0
		}

		k := make([]float32, cfg.D)
		v := make([]float32, cfg.D)
		t.genToken(h, sr, k, v, genTopic, t.Len())
		st.Queries = append(st.Queries, q)
		st.AppendK = append(st.AppendK, k)
		st.AppendV = append(st.AppendV, v)
	}
	t.Steps = append(t.Steps, st)
}

// Len returns the current total length (prefill + appended steps).
func (t *Trace) Len() int { return t.Cfg.L + len(t.Steps) }

// TopicPositions returns the context positions whose token has the given
// topic.
func (t *Trace) TopicPositions(topic int) []int {
	var out []int
	for p, tp := range t.TokenTopic {
		if tp == topic {
			out = append(out, p)
		}
	}
	return out
}

func fillUnit(r *rng.RNG, v []float32) {
	for j := range v {
		v[j] = r.NormFloat32()
	}
	tensor.Normalize(v)
}

package workload

import (
	"math"

	"clusterkv/internal/rng"
)

// QARequest is one request of a synthetic serving load: a question suffix
// appended to a (possibly shared) document prefix — the multi-question
// long-document scenario recallable KV compression targets.
type QARequest struct {
	// Doc is the index of the shared document this request reads.
	Doc int
	// Prompt is the full prompt: document tokens followed by the question.
	Prompt []int
	// SharedPrefixLen is the document length: Prompt[:SharedPrefixLen] is
	// byte-identical across every request with the same Doc.
	SharedPrefixLen int
	// MaxNewTokens is the answer length to generate.
	MaxNewTokens int
	// Gap is the open-loop interarrival delay in seconds between the
	// previous request's submission and this one (0 for closed-loop loads).
	Gap float64
}

// LoadConfig shapes a synthetic serving load.
type LoadConfig struct {
	// Doc controls token generation; Doc.Seed seeds the whole load.
	Doc DocConfig
	// NDocs is the number of distinct shared documents tenants ask about.
	NDocs int
	// DocLen is each document's token length.
	DocLen int
	// NRequests is the total request count.
	NRequests int
	// QuestionLen is the per-request question suffix length.
	QuestionLen int
	// MaxNewTokens is the per-request answer length.
	MaxNewTokens int
	// RatePerSec, when > 0, draws exponential (Poisson-process) interarrival
	// gaps with this mean rate; <= 0 produces a closed-loop load (all gaps 0).
	RatePerSec float64
}

// DefaultLoadConfig returns a small 8-tenant QA load over two shared
// documents, matched to DefaultDocConfig's vocabulary.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Doc:          DefaultDocConfig(),
		NDocs:        2,
		DocLen:       1024,
		NRequests:    8,
		QuestionLen:  32,
		MaxNewTokens: 24,
	}
}

// NewLoad materialises a deterministic request sequence: documents are
// generated once per Doc index, questions and document assignment per
// request, and gaps from a seeded Poisson process. Identical configs yield
// identical loads.
func NewLoad(cfg LoadConfig) []QARequest {
	if cfg.NDocs <= 0 || cfg.DocLen <= 0 || cfg.NRequests <= 0 || cfg.QuestionLen <= 0 {
		panic("workload: NewLoad with non-positive shape")
	}
	docs := make([][]int, cfg.NDocs)
	for i := range docs {
		dc := cfg.Doc
		dc.Seed = cfg.Doc.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		docs[i] = Doc(dc, cfg.DocLen)
	}
	r := rng.New(cfg.Doc.Seed ^ 0x5e47e10ad) // salt: keep load stream independent of Doc's
	out := make([]QARequest, cfg.NRequests)
	for i := range out {
		d := r.Intn(cfg.NDocs)
		qc := cfg.Doc
		qc.Seed = cfg.Doc.Seed ^ (uint64(i+1) * 0xbf58476d1ce4e5b9)
		question := Doc(qc, cfg.QuestionLen)
		prompt := make([]int, 0, cfg.DocLen+cfg.QuestionLen)
		prompt = append(prompt, docs[d]...)
		prompt = append(prompt, question...)
		gap := 0.0
		if cfg.RatePerSec > 0 {
			gap = -math.Log(1-r.Float64()) / cfg.RatePerSec
		}
		out[i] = QARequest{
			Doc:             d,
			Prompt:          prompt,
			SharedPrefixLen: cfg.DocLen,
			MaxNewTokens:    cfg.MaxNewTokens,
			Gap:             gap,
		}
	}
	return out
}

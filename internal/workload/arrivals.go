package workload

import (
	"math"

	"clusterkv/internal/rng"
)

// Arrival is one event of an open-loop arrival process: request Index is
// submitted At seconds after the trace starts, Gap seconds after the previous
// request. Open-loop means arrivals are independent of service completions —
// the load generator never waits for responses, which is what exposes queueing
// behaviour under overload.
type Arrival struct {
	// Index is the request's position in submission order.
	Index int
	// At is the absolute arrival time in seconds from the start of the trace
	// (the cumulative sum of Gaps up to and including this one).
	At float64
	// Gap is the interarrival delay in seconds since the previous arrival
	// (At for the first).
	Gap float64
}

// PoissonArrivals draws n open-loop arrivals from a seeded Poisson process
// with mean rate req/s: gaps are i.i.d. exponential with mean 1/rate, the
// standard arrival model for aggregate user traffic. rate <= 0 yields a
// closed-loop trace (every gap zero: all requests available up front).
// Identical (seed, n, rate) yield identical traces; the stream is salted so
// it is independent of the document/question streams a load with the same
// seed draws.
func PoissonArrivals(seed uint64, n int, rate float64) []Arrival {
	if n < 0 {
		panic("workload: PoissonArrivals with negative n")
	}
	r := rng.New(seed ^ 0xa1177a15) // salt: keep arrivals independent of Doc/NewLoad streams
	out := make([]Arrival, n)
	t := 0.0
	for i := range out {
		gap := 0.0
		if rate > 0 {
			gap = -math.Log(1-r.Float64()) / rate
		}
		t += gap
		out[i] = Arrival{Index: i, At: t, Gap: gap}
	}
	return out
}

// Arrivals materialises the arrival process already embedded in a load's
// per-request Gaps (NewLoad with RatePerSec > 0) as absolute submission
// times, preserving the load's task order: Arrivals(load)[i] replays
// load[i].
func Arrivals(load []QARequest) []Arrival {
	out := make([]Arrival, len(load))
	t := 0.0
	for i, q := range load {
		t += q.Gap
		out[i] = Arrival{Index: i, At: t, Gap: q.Gap}
	}
	return out
}

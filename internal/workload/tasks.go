package workload

import (
	"fmt"

	"clusterkv/internal/rng"
)

// TaskSpec defines one LongBench-like synthetic task (DESIGN.md §1). Each
// task plants NumNeedles needle groups — scattered important tokens of a
// dedicated topic — inside the context, and schedules decode-step queries
// that move across the needles according to the task's hop pattern. The
// scatter mimics the paper's Fig. 3b observation that important tokens are
// spread 1–2 per 16-token page.
type TaskSpec struct {
	// Name is the LongBench dataset the task mirrors.
	Name string
	// BaseScore calibrates the Full-KV score to the paper's reported scale
	// for that dataset (see EXPERIMENTS.md); method differences come from
	// measured retrieval fidelity, not from this constant.
	BaseScore float64
	// CtxLen is the context length in tokens.
	CtxLen int
	// NumNeedles is the number of needle groups (hops).
	NumNeedles int
	// NeedleTokens is the number of important tokens per needle group.
	NeedleTokens int
	// SpreadRegion is the span (in tokens) over which one needle group's
	// tokens are scattered.
	SpreadRegion int
	// AnswerSteps is the number of decode steps.
	AnswerSteps int
	// HopPattern chooses how queries traverse needles: "sequential" (one
	// needle per phase — multi-hop QA), "interleave" (alternating),
	// "revisit" (returns to earlier needles — exercises recall), "sweep"
	// (queries slide across the whole document — summarization), "diffuse"
	// (broad attention with weak needle pull).
	HopPattern string
	// DiffuseNoise is the query noise level (higher = broader attention).
	DiffuseNoise float32
	// QueryGain scales the structured query component.
	QueryGain float32
}

// LongBenchTasks returns the eight task specs mirroring the paper's §V-A
// dataset list. Context lengths follow the datasets' typical scale, capped
// by maxCtx (the harness shrinks them for quick runs).
func LongBenchTasks(maxCtx int) []TaskSpec {
	clamp := func(l int) int {
		if l > maxCtx {
			return maxCtx
		}
		return l
	}
	return []TaskSpec{
		{Name: "2WikiMQA", BaseScore: 48.5, CtxLen: clamp(8192), NumNeedles: 2, NeedleTokens: 24, SpreadRegion: 512, AnswerSteps: 24, HopPattern: "revisit", DiffuseNoise: 0.35, QueryGain: 1.0},
		{Name: "TriviaQA", BaseScore: 89.0, CtxLen: clamp(8192), NumNeedles: 1, NeedleTokens: 32, SpreadRegion: 384, AnswerSteps: 16, HopPattern: "sequential", DiffuseNoise: 0.25, QueryGain: 1.2},
		{Name: "HotpotQA", BaseScore: 57.0, CtxLen: clamp(8192), NumNeedles: 2, NeedleTokens: 24, SpreadRegion: 512, AnswerSteps: 24, HopPattern: "interleave", DiffuseNoise: 0.35, QueryGain: 1.0},
		{Name: "MultiFieldQA", BaseScore: 50.5, CtxLen: clamp(8192), NumNeedles: 3, NeedleTokens: 20, SpreadRegion: 448, AnswerSteps: 24, HopPattern: "sequential", DiffuseNoise: 0.35, QueryGain: 1.0},
		{Name: "MuSiQue", BaseScore: 31.0, CtxLen: clamp(16384), NumNeedles: 4, NeedleTokens: 16, SpreadRegion: 512, AnswerSteps: 32, HopPattern: "revisit", DiffuseNoise: 0.45, QueryGain: 0.9},
		{Name: "NarrativeQA", BaseScore: 25.5, CtxLen: clamp(32768), NumNeedles: 3, NeedleTokens: 20, SpreadRegion: 768, AnswerSteps: 32, HopPattern: "revisit", DiffuseNoise: 0.55, QueryGain: 0.85},
		{Name: "Qasper", BaseScore: 41.0, CtxLen: clamp(8192), NumNeedles: 2, NeedleTokens: 20, SpreadRegion: 512, AnswerSteps: 24, HopPattern: "diffuse", DiffuseNoise: 0.5, QueryGain: 0.9},
		{Name: "GovReport", BaseScore: 31.0, CtxLen: clamp(16384), NumNeedles: 6, NeedleTokens: 24, SpreadRegion: 1024, AnswerSteps: 40, HopPattern: "sweep", DiffuseNoise: 0.5, QueryGain: 0.9},
	}
}

// Task is a materialised task instance: a trace plus needle bookkeeping.
type Task struct {
	Spec TaskSpec
	// Trace holds the context and the scheduled decode steps.
	Trace *Trace
	// NeedlePositions[i] lists the context positions of needle group i.
	NeedlePositions [][]int
	// NeedleTopic[i] is the dedicated topic of needle group i.
	NeedleTopic []int
}

// BuildTask generates a deterministic instance of the spec.
func BuildTask(spec TaskSpec, seed uint64) *Task {
	tc := DefaultTraceConfig()
	tc.L = spec.CtxLen
	tc.Seed = seed
	tr := NewTrace(tc)
	task := &Task{Spec: spec, Trace: tr}

	rnd := rng.New(seed ^ 0xbeefcafe)

	// Plant needles: reserve the last NumNeedles topics as needle topics so
	// background segments (drawn from all NTopics) rarely collide; rewrite
	// scattered positions within each needle's region to the needle topic.
	for i := 0; i < spec.NumNeedles; i++ {
		topic := tc.NTopics - 1 - i
		if topic < 0 {
			panic(fmt.Sprintf("workload: task %s needs more topics", spec.Name))
		}
		region := spec.SpreadRegion
		if region > spec.CtxLen-tc.SinkTokens {
			region = spec.CtxLen - tc.SinkTokens
		}
		maxStart := spec.CtxLen - region
		minStart := tc.SinkTokens
		start := minStart
		if maxStart > minStart {
			// Spread needle regions across the document deterministically
			// with jitter, so hops require long-range recall.
			span := (maxStart - minStart) / spec.NumNeedles
			start = minStart + i*span + rnd.Intn(max(1, span/2))
		}
		positions := make([]int, 0, spec.NeedleTokens)
		stride := max(1, region/spec.NeedleTokens)
		for j := 0; j < spec.NeedleTokens; j++ {
			p := start + j*stride + rnd.Intn(max(1, stride/2))
			if p >= spec.CtxLen {
				p = spec.CtxLen - 1
			}
			positions = append(positions, p)
			tr.TokenTopic[p] = topic
			// Regenerate the token's key/value under the needle topic.
			for h := 0; h < tc.Heads; h++ {
				hr := rng.New(seed ^ uint64(h*977+p))
				tr.genToken(h, hr, tr.Keys[h].Row(p), tr.Vals[h].Row(p), topic, p)
			}
		}
		task.NeedlePositions = append(task.NeedlePositions, positions)
		task.NeedleTopic = append(task.NeedleTopic, topic)
	}

	scheduleSteps(task, rnd)
	return task
}

// scheduleSteps adds spec.AnswerSteps decode steps to the trace following the
// hop pattern. Besides the primary needle topic, every query carries weaker
// pulls on a rotating set of secondary background topics — real attention
// retrieves semantically related content, and this is what makes the
// mid-ranked attention mass cluster-structured rather than white noise.
func scheduleSteps(task *Task, rnd *rng.RNG) {
	spec := task.Spec
	tr := task.Trace
	n := spec.NumNeedles

	// Task-fixed pool of secondary topics (background content the answer
	// keeps referring to).
	poolSize := 8
	pool := make([]int, poolSize)
	for i := range pool {
		pool[i] = rnd.Intn(tr.Cfg.NTopics - spec.NumNeedles)
	}

	for s := 0; s < spec.AnswerSteps; s++ {
		var hop int
		switch spec.HopPattern {
		case "sequential":
			hop = s * n / spec.AnswerSteps
		case "interleave":
			hop = s % n
		case "revisit":
			// Forward pass then revisit earlier needles (importance returns
			// — the recallability motivation of Fig. 3a).
			phase := s * (2*n - 1) / spec.AnswerSteps
			if phase < n {
				hop = phase
			} else {
				hop = 2*n - 2 - phase
			}
		case "sweep":
			hop = s * n / spec.AnswerSteps
		case "diffuse":
			hop = s % n
		default:
			panic("workload: unknown hop pattern " + spec.HopPattern)
		}
		mix := QueryMix{
			TopicWeights: map[int]float32{task.NeedleTopic[hop]: 1},
			Noise:        spec.DiffuseNoise * 0.3,
			Gain:         spec.QueryGain,
		}
		if spec.HopPattern == "diffuse" {
			// Weak pull on every needle plus strong noise.
			for i := 0; i < n; i++ {
				mix.TopicWeights[task.NeedleTopic[i]] = 0.5
			}
			mix.TopicWeights[task.NeedleTopic[hop]] = 1
		}
		// Rotating secondary topics with drifting weights: related background
		// content the answer keeps referring to, at clearly lower attention
		// strength than the needle (trained-model attention is peaked).
		for j := 0; j < 3; j++ {
			t := pool[(s+j*3)%len(pool)]
			if _, taken := mix.TopicWeights[t]; !taken {
				mix.TopicWeights[t] = 0.18 + 0.1*float32(j%2)
			}
		}
		genTopic := task.NeedleTopic[hop]
		tr.AddStep(mix, genTopic, task.NeedlePositions[hop], uint64(s)*7919+uint64(rnd.Intn(1<<20)))
	}
}

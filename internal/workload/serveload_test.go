package workload

import "testing"

func TestNewLoadDeterministicAndShaped(t *testing.T) {
	cfg := DefaultLoadConfig()
	cfg.DocLen = 64
	cfg.QuestionLen = 8
	cfg.NRequests = 12
	cfg.RatePerSec = 50

	a := NewLoad(cfg)
	b := NewLoad(cfg)
	if len(a) != 12 {
		t.Fatalf("load size %d", len(a))
	}
	docs := map[int][]int{}
	for i, r := range a {
		if len(r.Prompt) != cfg.DocLen+cfg.QuestionLen {
			t.Fatalf("request %d prompt length %d", i, len(r.Prompt))
		}
		if r.SharedPrefixLen != cfg.DocLen {
			t.Fatalf("request %d prefix length %d", i, r.SharedPrefixLen)
		}
		if r.Gap < 0 {
			t.Fatalf("request %d negative gap", i)
		}
		if r.Doc < 0 || r.Doc >= cfg.NDocs {
			t.Fatalf("request %d doc index %d", i, r.Doc)
		}
		// All requests on one document share an identical prefix.
		prefix := r.Prompt[:r.SharedPrefixLen]
		if seen, ok := docs[r.Doc]; ok {
			for j := range seen {
				if seen[j] != prefix[j] {
					t.Fatalf("doc %d prefixes differ", r.Doc)
				}
			}
		} else {
			docs[r.Doc] = prefix
		}
		// Determinism.
		if len(b[i].Prompt) != len(r.Prompt) || b[i].Gap != r.Gap || b[i].Doc != r.Doc {
			t.Fatalf("request %d not deterministic", i)
		}
		for j := range r.Prompt {
			if b[i].Prompt[j] != r.Prompt[j] {
				t.Fatalf("request %d prompt not deterministic", i)
			}
		}
	}
	if len(docs) < 2 {
		t.Fatal("load never used the second document")
	}
}

func TestNewLoadClosedLoopHasZeroGaps(t *testing.T) {
	cfg := DefaultLoadConfig()
	cfg.DocLen = 32
	cfg.QuestionLen = 4
	cfg.NRequests = 4
	for _, r := range NewLoad(cfg) {
		if r.Gap != 0 {
			t.Fatal("closed-loop load produced gaps")
		}
	}
}

func TestNewLoadPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cfg := DefaultLoadConfig()
	cfg.NDocs = 0
	NewLoad(cfg)
}

// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository. All experiments are seeded so
// that every table and figure is exactly reproducible run-to-run.
//
// The generator is xoshiro256** seeded via splitmix64, following the
// reference implementations by Blackman and Vigna. It is NOT cryptographically
// secure; it is a simulation RNG.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not valid;
// use New.
type RNG struct {
	s         [4]uint64
	haveSpare bool
	spare     float64
}

// New returns a generator seeded from the given seed using splitmix64 so that
// nearby seeds produce uncorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of r's, derived
// from r's state and the given stream label. Useful for giving each
// layer/head its own reproducible stream regardless of consumption order.
func (r *RNG) Split(label uint64) *RNG {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform (the polar variant is avoided to keep consumption deterministic
// at exactly two uniforms per pair of outputs).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 1e-300 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Partial Fisher–Yates: only the first k swaps are needed.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
		out[i] = p[i]
	}
	return out
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d times in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make(map[int]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	check := func(seed uint64, nn, kk uint8) bool {
		n := int(nn)%64 + 1
		k := int(kk) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2, 3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestSampleCoverage(t *testing.T) {
	// Sampling n of n must return every index.
	s := New(9).Sample(20, 20)
	seen := make([]bool, 20)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(20,20) missing %d", i)
		}
	}
}

package metrics

import "sort"

// Summary accumulates a sample set and reports order statistics. It backs
// the serving engine's latency reporting (TTFT, per-token latency, queue
// wait). The zero value is ready to use. Summary is not safe for concurrent
// use; callers aggregate under their own lock.
type Summary struct {
	xs     []float64
	sorted bool
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Merge records every sample of other into s.
func (s *Summary) Merge(other *Summary) {
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// N returns the number of recorded samples.
func (s *Summary) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return Mean(s.xs) }

// Min returns the smallest sample (0 for an empty summary).
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest sample (0 for an empty summary).
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank with linear
// interpolation, or 0 for an empty summary. Quantile(0.5) is the median.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

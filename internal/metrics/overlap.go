package metrics

// Overlap summarises the copy/compute overlap achieved by an asynchronous
// transfer runtime (kvcache.TransferRuntime): how much modeled channel time
// was spent moving KV pages, and how much of it a compute thread actually
// had to wait out. BusySec − ExposedSec is the transfer time hidden behind
// compute — the quantity the overlap experiment optimises.
type Overlap struct {
	// Transfers is the number of serviced transfer requests (fetches,
	// prefetches and accounting-only offloads).
	Transfers int64
	// Pages is the total number of KV pages moved across the channel.
	Pages int64
	// BusySec is the total modeled channel-busy time in seconds.
	BusySec float64
	// ExposedSec is the portion of BusySec a waiter was actually blocked on
	// (per transfer, clamped to its own modeled duration).
	ExposedSec float64
	// PrefetchedPages counts pages promoted speculatively by layer-ahead
	// prefetch; PrefetchHits counts those later requested by an exact fetch
	// while still device-resident; PrefetchDropped counts prefetch pages
	// skipped because no unpinned device page could be evicted for them.
	PrefetchedPages int64
	PrefetchHits    int64
	PrefetchDropped int64
}

// Add accumulates other into o.
func (o *Overlap) Add(other Overlap) {
	o.Transfers += other.Transfers
	o.Pages += other.Pages
	o.BusySec += other.BusySec
	o.ExposedSec += other.ExposedSec
	o.PrefetchedPages += other.PrefetchedPages
	o.PrefetchHits += other.PrefetchHits
	o.PrefetchDropped += other.PrefetchDropped
}

// HiddenSec returns the transfer time overlapped with compute.
func (o Overlap) HiddenSec() float64 {
	h := o.BusySec - o.ExposedSec
	if h < 0 {
		return 0
	}
	return h
}

// HiddenFrac returns HiddenSec as a fraction of BusySec (0 when idle).
func (o Overlap) HiddenFrac() float64 {
	if o.BusySec <= 0 {
		return 0
	}
	return o.HiddenSec() / o.BusySec
}

// PrefetchHitRate returns PrefetchHits / PrefetchedPages (0 when no
// prefetches were issued).
func (o Overlap) PrefetchHitRate() float64 {
	if o.PrefetchedPages == 0 {
		return 0
	}
	return float64(o.PrefetchHits) / float64(o.PrefetchedPages)
}

// Package metrics implements the evaluation metrics of the paper's §V:
// recall rate of important tokens, perplexity, retrieval-fidelity scores for
// the LongBench-like tasks, and small summary-statistics helpers.
package metrics

import "math"

// Recall returns |selected ∩ truth| / |truth| — the paper's recall-rate
// definition (§V-B) with I_T = selected and I_T^true = truth. An empty truth
// set yields 1 (nothing to recall).
func Recall(selected, truth []int) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(selected))
	for _, p := range selected {
		set[p] = struct{}{}
	}
	hit := 0
	for _, p := range truth {
		if _, ok := set[p]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Perplexity converts a total negative log-likelihood (nats) over n tokens
// into perplexity exp(nll/n). n must be positive.
func Perplexity(totalNLL float64, n int) float64 {
	if n <= 0 {
		panic("metrics: Perplexity over zero tokens")
	}
	return math.Exp(totalNLL / float64(n))
}

// NLLFromLogits returns −log softmax(logits)[target] computed stably.
func NLLFromLogits(logits []float32, target int) float64 {
	if target < 0 || target >= len(logits) {
		panic("metrics: NLL target out of range")
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v - maxv))
	}
	return math.Log(sum) - float64(logits[target]-maxv)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Ratio returns a/b, or 0 when b == 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

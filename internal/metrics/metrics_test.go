package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecall(t *testing.T) {
	cases := []struct {
		sel, truth []int
		want       float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2, 3}, []int{4, 5, 6}, 0},
		{[]int{1, 2}, []int{1, 3}, 0.5},
		{nil, nil, 1},
		{nil, []int{1}, 0},
	}
	for _, c := range cases {
		if got := Recall(c.sel, c.truth); got != c.want {
			t.Errorf("Recall(%v, %v) = %v, want %v", c.sel, c.truth, got, c.want)
		}
	}
}

func TestPerplexity(t *testing.T) {
	if got := Perplexity(0, 10); got != 1 {
		t.Fatalf("zero NLL ppl = %v", got)
	}
	if got := Perplexity(math.Log(4)*3, 3); math.Abs(got-4) > 1e-9 {
		t.Fatalf("ppl = %v, want 4", got)
	}
}

func TestPerplexityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Perplexity(1, 0)
}

func TestNLLFromLogits(t *testing.T) {
	// Uniform logits over 4 classes: NLL = ln 4.
	if got := NLLFromLogits([]float32{0, 0, 0, 0}, 2); math.Abs(got-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform NLL = %v", got)
	}
	// Shifting all logits by a constant must not change NLL.
	a := NLLFromLogits([]float32{1, 2, 3}, 1)
	b := NLLFromLogits([]float32{101, 102, 103}, 1)
	if math.Abs(a-b) > 1e-4 {
		t.Fatalf("NLL not shift invariant: %v vs %v", a, b)
	}
}

func TestNLLNonNegativeProperty(t *testing.T) {
	check := func(l0, l1, l2 float32, target uint8) bool {
		logits := []float32{clip(l0), clip(l1), clip(l2)}
		nll := NLLFromLogits(logits, int(target)%3)
		return nll >= -1e-6 && !math.IsNaN(nll)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func clip(v float32) float32 {
	if v > 50 {
		return 50
	}
	if v < -50 {
		return -50
	}
	if v != v {
		return 0
	}
	return v
}

func TestMeanStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestRatioClamp(t *testing.T) {
	if Ratio(4, 2) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-1, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
}

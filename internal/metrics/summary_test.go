package metrics

import "testing"

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty summary must report zeros")
	}
}

func TestSummaryOrderStatistics(t *testing.T) {
	var s Summary
	for _, x := range []float64{5, 1, 4, 2, 3} {
		s.Add(x)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 || s.Mean() != 3 {
		t.Fatalf("n=%d min=%v max=%v mean=%v", s.N(), s.Min(), s.Max(), s.Mean())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	// Interpolated quantile: q=0.25 over [1..5] sits exactly at 2.
	if got := s.Quantile(0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if got := s.Quantile(0.875); got != 4.5 {
		t.Fatalf("q87.5 = %v", got)
	}
}

func TestSummaryAddAfterQuantile(t *testing.T) {
	var s Summary
	s.Add(10)
	s.Add(1)
	_ = s.Quantile(0.5) // forces sort
	s.Add(5)
	if s.Max() != 10 || s.Min() != 1 || s.Quantile(0.5) != 5 {
		t.Fatal("Add after Quantile broke ordering")
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(7)
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("n=1: Quantile(%v) = %v, want the single sample", q, got)
		}
	}
	if s.Min() != 7 || s.Max() != 7 || s.Mean() != 7 {
		t.Fatalf("n=1: min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestSummaryDuplicates(t *testing.T) {
	var s Summary
	for i := 0; i < 6; i++ {
		s.Add(2)
	}
	s.Add(8)
	// Every quantile below the top rank lands on the duplicated value and
	// interpolation across equal samples must stay exact.
	for _, q := range []float64{0, 0.5, 0.8} {
		if got := s.Quantile(q); got != 2 {
			t.Fatalf("Quantile(%v) = %v, want 2", q, got)
		}
	}
	if got := s.Quantile(1); got != 8 {
		t.Fatalf("Quantile(1) = %v, want 8", got)
	}
}

func TestSummaryQuantileBounds(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	// Out-of-range q clamps to the extremes rather than indexing out of
	// bounds or extrapolating.
	if got := s.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want min", got)
	}
	if got := s.Quantile(1.5); got != 3 {
		t.Fatalf("Quantile(1.5) = %v, want max", got)
	}
	// q just under 1 interpolates inside the top interval, never past it.
	if got := s.Quantile(0.999); got <= 1 || got > 3 {
		t.Fatalf("Quantile(0.999) = %v, want within (1, 3]", got)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want midpoint 2", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(2)
	b.Add(3)
	b.Add(4)
	a.Merge(&b)
	if a.N() != 4 || a.Max() != 4 || a.Mean() != 2.5 {
		t.Fatalf("merge: n=%d max=%v mean=%v", a.N(), a.Max(), a.Mean())
	}
}

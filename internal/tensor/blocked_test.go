package tensor_test

// Blocked/packed kernel conformance (DESIGN.md §12): the register-blocked
// GEMV variants must be bit-identical to the naive one-row-at-a-time serial
// loops at every shape (blocking interleaves rows, never reassociates within
// one) and at any pool width.

import (
	"math"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

func randSlice(r *rng.RNG, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = r.NormFloat32()
	}
	return out
}

func TestDotRowsBitIdentical(t *testing.T) {
	for _, shape := range []struct{ m, d int }{
		{1, 1}, {3, 5}, {4, 16}, {5, 16}, {7, 3}, {64, 64}, {63, 17}, {100, 8},
	} {
		r := rng.New(uint64(shape.m*1000 + shape.d))
		x := randSlice(r, shape.d)
		rows := randSlice(r, shape.m*shape.d)
		scale := 0.5 + r.Float32()
		got := make([]float32, shape.m)
		tensor.DotRows(got, x, rows, shape.d, scale)
		for i := 0; i < shape.m; i++ {
			var s float32
			for j := 0; j < shape.d; j++ {
				s += x[j] * rows[i*shape.d+j]
			}
			want := s * scale
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("m=%d d=%d: row %d diverges: %v vs %v", shape.m, shape.d, i, got[i], want)
			}
		}
	}
}

func TestAddScaledRowsBitIdentical(t *testing.T) {
	for _, shape := range []struct{ m, d int }{
		{1, 4}, {4, 8}, {5, 8}, {9, 16}, {64, 64}, {130, 7},
	} {
		r := rng.New(uint64(shape.m*977 + shape.d))
		rows := randSlice(r, shape.m*shape.d)
		w := randSlice(r, shape.m)
		// Exact zeros appear in real weights (softmax underflow); the
		// reference skips them, the blocked kernel must match bit-for-bit.
		for i := 0; i < shape.m; i += 3 {
			w[i] = 0
		}
		got := randSlice(rng.New(7), shape.d)
		want := append([]float32(nil), got...)
		tensor.AddScaledRows(got, w, rows, shape.d)
		for i := 0; i < shape.m; i++ {
			if w[i] == 0 {
				continue
			}
			for j := 0; j < shape.d; j++ {
				want[j] += w[i] * rows[i*shape.d+j]
			}
		}
		for j := range got {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("m=%d d=%d: channel %d diverges: %v vs %v", shape.m, shape.d, j, got[j], want[j])
			}
		}
	}
}

func TestPackedMatVecBitIdentical(t *testing.T) {
	pools := map[string]*parallel.Pool{"serial": nil, "w4": parallel.NewPool(4)}
	for _, shape := range []struct{ rows, cols int }{
		{1, 8}, {3, 8}, {4, 8}, {5, 8}, {512, 64}, {127, 33},
	} {
		r := rng.New(uint64(shape.rows*31 + shape.cols))
		m := tensor.NewMat(shape.rows, shape.cols)
		copy(m.Data, randSlice(r, shape.rows*shape.cols))
		pm := tensor.Pack(m)
		x := randSlice(r, shape.cols)
		want := make([]float32, shape.rows)
		tensor.MatVecOn(nil, want, m, x)
		for name, p := range pools {
			got := make([]float32, shape.rows)
			pm.MatVecOn(p, got, x)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%dx%d %s: row %d diverges: %v vs %v", shape.rows, shape.cols, name, i, got[i], want[i])
				}
			}
		}
	}
}

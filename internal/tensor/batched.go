package tensor

import "clusterkv/internal/parallel"

// Cross-stream batched GEMM kernels (DESIGN.md §13). A decode round with S
// streams issues the same weight-matrix products S times as GEMVs; these
// kernels walk each weight row once and apply it to every stream's
// activation, so the weight operand streams from memory once per round
// instead of once per stream. Each output row keeps the exact per-element
// reduction order of the corresponding GEMV (rows ascending, the x == 0
// skip, one accumulator per element), so batched results are bit-identical
// to the per-stream kernels at any batch size and any pool width.

// MatTMat computes dst.Row(s) = mᵀ · x.Row(s) for every row s of x on the
// shared intra-op pool. Shapes: m is R×C, x is S×R, dst is S×C. Row s of dst
// is bit-identical to MatTVec(dst.Row(s), m, x.Row(s)).
func MatTMat(dst, m, x *Mat) {
	MatTMatOn(parallel.Default(), dst, m, x)
}

// MatTMatOn is MatTMat on an explicit pool (nil runs serial). The parallel
// split is over output *columns*, as in MatTVecOn: every (stream, column)
// element accumulates m's rows in ascending order with the per-stream
// x == 0 skip, so each dst row is bit-identical to the per-stream GEMV at
// any width. Within a column band each weight row is loaded once and
// applied to all streams — the cross-stream bandwidth amortization.
func MatTMatOn(p *parallel.Pool, dst, m, x *Mat) {
	if x.Cols != m.Rows || dst.Rows != x.Rows || dst.Cols != m.Cols {
		panic("tensor: MatTMat dimension mismatch")
	}
	// Closure-free serial fast path (see MatVecOn): batched decode rounds
	// must not allocate at pool width 1.
	if p.RunsInline(m.Cols, kernelGrain(m.Rows*x.Rows)) {
		matTMatBand(dst, m, x, 0, m.Cols)
		return
	}
	p.For(m.Cols, kernelGrain(m.Rows*x.Rows), func(lo, hi int) { matTMatBand(dst, m, x, lo, hi) })
}

func matTMatBand(dst, m, x *Mat, lo, hi int) {
	for s := 0; s < x.Rows; s++ {
		Fill(dst.Data[s*dst.Cols+lo:s*dst.Cols+hi], 0)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		for s := 0; s < x.Rows; s++ {
			xi := x.Data[s*x.Cols+i]
			if xi == 0 {
				continue
			}
			band := dst.Data[s*dst.Cols+lo : s*dst.Cols+hi]
			for j, v := range row {
				band[j] += xi * v
			}
		}
	}
}

// MatMulRows computes dsts[s] = pm · x.Row(s) for every row s of x on the
// shared intra-op pool — the batched LM-head projection. Each destination is
// a caller-owned buffer (the serving engine passes per-task logits buffers
// directly), and each is bit-identical to MatVec over the unpacked matrix.
func (pm *PackedMat) MatMulRows(dsts [][]float32, x *Mat) {
	pm.MatMulRowsOn(parallel.Default(), dsts, x)
}

// MatMulRowsOn is MatMulRows on an explicit pool (nil runs serial). The
// parallel split is over panels, as in MatVecOn: a panel is swept once per
// stream while it is cache-resident, and every output row keeps the serial
// channel-ascending reduction order of panelBand, so each dsts[s] is
// bit-identical to the per-stream packed GEMV at any width.
func (pm *PackedMat) MatMulRowsOn(p *parallel.Pool, dsts [][]float32, x *Mat) {
	if x.Cols != pm.Cols || len(dsts) != x.Rows {
		panic("tensor: PackedMat.MatMulRows dimension mismatch")
	}
	for _, d := range dsts {
		if len(d) != pm.Rows {
			panic("tensor: PackedMat.MatMulRows dst length mismatch")
		}
	}
	np := (pm.Rows + packRows - 1) / packRows
	stride := pm.Cols * packRows
	// Closure-free serial fast path (see PackedMat.MatVecOn).
	if p.RunsInline(np, kernelGrain(stride*x.Rows)) {
		pm.panelBandRows(dsts, x, 0, np)
		return
	}
	p.For(np, kernelGrain(stride*x.Rows), func(lo, hi int) { pm.panelBandRows(dsts, x, lo, hi) })
}

func (pm *PackedMat) panelBandRows(dsts [][]float32, x *Mat, lo, hi int) {
	stride := pm.Cols * packRows
	for pi := lo; pi < hi; pi++ {
		panel := pm.panels[pi*stride : (pi+1)*stride]
		base := pi * packRows
		for s := 0; s < x.Rows; s++ {
			xr := x.Data[s*x.Cols : (s+1)*x.Cols]
			var s0, s1, s2, s3 float32
			for j, xj := range xr {
				s0 += xj * panel[j*packRows]
				s1 += xj * panel[j*packRows+1]
				s2 += xj * panel[j*packRows+2]
				s3 += xj * panel[j*packRows+3]
			}
			dst := dsts[s]
			dst[base] = s0
			if base+1 < pm.Rows {
				dst[base+1] = s1
			}
			if base+2 < pm.Rows {
				dst[base+2] = s2
			}
			if base+3 < pm.Rows {
				dst[base+3] = s3
			}
		}
	}
}

package tensor

import (
	"math"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Conformance suite: every parallel kernel must be bit-identical to the
// naive serial reference at every worker count, including odd shapes where
// rows < workers and ranges that produce minimum-size blocks. The references
// below are intentionally independent re-implementations of the pre-parallel
// loops — not calls into the code under test.

func refMatVec(dst []float32, m *Mat, x []float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

func refMatTVec(dst []float32, m *Mat, x []float32) {
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

func refMatMul(c, a, b *Mat) {
	Fill(c.Data, 0)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func refMatMulT(c, a, b *Mat) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float32
			for k := range arow {
				s += arow[k] * brow[k]
			}
			crow[j] = s
		}
	}
}

// fillRandom fills x with a mix of random values, exact zeros (to exercise
// the zero-skip fast paths) and sign flips.
func fillRandom(x []float32, r *rng.RNG) {
	for i := range x {
		switch r.Intn(8) {
		case 0:
			x[i] = 0
		case 1:
			x[i] = float32(math.Copysign(0, -1)) // negative zero
		default:
			x[i] = float32(r.Float64()*4 - 2)
		}
	}
}

var conformanceWidths = []int{1, 2, 3, 8}

// conformanceShapes are (M, K, N) triples, chosen so rows < workers,
// single-element, long-thin and thin-long cases all appear.
var conformanceShapes = [][3]int{
	{1, 1, 1},
	{2, 7, 3},   // rows < every multi-worker width
	{3, 5, 8},   // rows == width for width 3
	{7, 129, 5}, // odd K
	{8, 8, 8},
	{37, 16, 11},
	{64, 64, 64},
	{1, 512, 1}, // single row, wide reduction
	{130, 1, 2}, // K = 1
}

func bitsEqual(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %g (bits %08x), want %g (bits %08x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestMatKernelConformance(t *testing.T) {
	r := rng.New(42)
	for _, shape := range conformanceShapes {
		m, k, n := shape[0], shape[1], shape[2]
		a := NewMat(m, k)
		b := NewMat(k, n)
		bt := NewMat(n, k)
		x := make([]float32, k)
		xr := make([]float32, m)
		fillRandom(a.Data, r)
		fillRandom(b.Data, r)
		fillRandom(bt.Data, r)
		fillRandom(x, r)
		fillRandom(xr, r)

		wantMV := make([]float32, m)
		refMatVec(wantMV, a, x)
		wantMTV := make([]float32, k)
		refMatTVec(wantMTV, a, xr)
		wantMM := NewMat(m, n)
		refMatMul(wantMM, a, b)
		wantMMT := NewMat(m, n)
		refMatMulT(wantMMT, a, bt)

		for _, width := range conformanceWidths {
			p := parallel.NewPool(width)
			gotMV := make([]float32, m)
			MatVecOn(p, gotMV, a, x)
			bitsEqual(t, sprintShape("MatVec", m, k, n, width), gotMV, wantMV)

			gotMTV := make([]float32, k)
			MatTVecOn(p, gotMTV, a, xr)
			bitsEqual(t, sprintShape("MatTVec", m, k, n, width), gotMTV, wantMTV)

			gotMM := NewMat(m, n)
			MatMulOn(p, gotMM, a, b)
			bitsEqual(t, sprintShape("MatMul", m, k, n, width), gotMM.Data, wantMM.Data)

			gotMMT := NewMat(m, n)
			MatMulTOn(p, gotMMT, a, bt)
			bitsEqual(t, sprintShape("MatMulT", m, k, n, width), gotMMT.Data, wantMMT.Data)
			p.Close()
		}

		// The default-pool entry points must agree with the references too.
		gotMV := make([]float32, m)
		MatVec(gotMV, a, x)
		bitsEqual(t, sprintShape("MatVec/default", m, k, n, 0), gotMV, wantMV)
		gotMM := NewMat(m, n)
		MatMul(gotMM, a, b)
		bitsEqual(t, sprintShape("MatMul/default", m, k, n, 0), gotMM.Data, wantMM.Data)
	}
}

// TestMatKernelZeroRows asserts degenerate 0-row/0-col shapes are no-ops at
// every width (blocks would be zero-size; For must simply not emit them).
func TestMatKernelZeroRows(t *testing.T) {
	for _, width := range conformanceWidths {
		p := parallel.NewPool(width)
		a := NewMat(0, 5)
		MatVecOn(p, []float32{}, a, make([]float32, 5))
		MatTVecOn(p, make([]float32, 5), a, []float32{}) // 0 rows: dst stays zero
		c := NewMat(0, 3)
		MatMulOn(p, c, a, NewMat(5, 3))
		MatMulTOn(p, c, a, NewMat(3, 5))
		p.Close()
	}
}

// TestMatTVecZeroRowsClearsDst asserts MatTVec still zero-fills dst when the
// matrix has no rows — the serial reference Fill semantics.
func TestMatTVecZeroRowsClearsDst(t *testing.T) {
	for _, width := range conformanceWidths {
		p := parallel.NewPool(width)
		a := NewMat(0, 4)
		dst := []float32{1, 2, 3, 4}
		MatTVecOn(p, dst, a, []float32{})
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("width %d: dst[%d] = %g, want 0", width, i, v)
			}
		}
		p.Close()
	}
}

func sprintShape(op string, m, k, n, width int) string {
	return op + " " + itoa(m) + "x" + itoa(k) + "x" + itoa(n) + " width=" + itoa(width)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

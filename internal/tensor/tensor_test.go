package tensor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"clusterkv/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Fatalf("Norm(nil) = %v, want 0", got)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float32{1, 2}, []float32{4, 6}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestCosineSim(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float64
		tol  float64
	}{
		{[]float32{1, 0}, []float32{1, 0}, 1, 1e-6},
		{[]float32{1, 0}, []float32{0, 1}, 0, 1e-6},
		{[]float32{1, 0}, []float32{-1, 0}, -1, 1e-6},
		{[]float32{2, 0}, []float32{5, 0}, 1, 1e-6}, // scale invariant
		{[]float32{0, 0}, []float32{1, 0}, 0, 0},    // zero vector convention
	}
	for _, c := range cases {
		if got := CosineSim(c.a, c.b); !almostEq(float64(got), c.want, c.tol) {
			t.Errorf("CosineSim(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAxpyScaleAdd(t *testing.T) {
	y := []float32{1, 1}
	Axpy(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy got %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale got %v", y)
	}
	dst := make([]float32, 2)
	Add(dst, y, y)
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("Add got %v", dst)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float32{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize(zero) should return 0")
	}
}

func TestMean(t *testing.T) {
	dst := make([]float32, 2)
	Mean(dst, [][]float32{{1, 2}, {3, 4}})
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Mean got %v", dst)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn)%32 + 1
		r := rng.New(seed)
		x := make([]float32, n)
		for i := range x {
			x[i] = r.NormFloat32() * 10
		}
		Softmax(x)
		var sum float64
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := []float32{1e4, 1e4 + 1}
	Softmax(x)
	if math.IsNaN(float64(x[0])) || math.IsNaN(float64(x[1])) {
		t.Fatal("softmax overflowed on large inputs")
	}
	if x[1] <= x[0] {
		t.Fatal("softmax lost ordering")
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil) // must not panic
}

func TestLogSumExp(t *testing.T) {
	x := []float32{0, 0}
	if got := LogSumExp(x); !almostEq(float64(got), math.Log(2), 1e-5) {
		t.Fatalf("LogSumExp = %v, want ln2", got)
	}
}

func TestMatVec(t *testing.T) {
	m := WrapMat(2, 3, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 2)
	MatVec(dst, m, []float32{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec got %v", dst)
	}
}

func TestMatTVec(t *testing.T) {
	m := WrapMat(2, 3, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 3)
	MatTVec(dst, m, []float32{1, 2})
	want := []float32{9, 12, 15}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatTVec got %v, want %v", dst, want)
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	a := NewMat(4, 5)
	b := NewMat(5, 3)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat32()
	}
	c := NewMat(4, 3)
	MatMul(c, a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float32
			for k := 0; k < 5; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if !almostEq(float64(c.At(i, j)), float64(want), 1e-4) {
				t.Fatalf("MatMul[%d,%d] = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestMatMulT(t *testing.T) {
	r := rng.New(2)
	a := NewMat(3, 4)
	b := NewMat(2, 4)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat32()
	}
	c := NewMat(3, 2)
	MatMulT(c, a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := Dot(a.Row(i), b.Row(j))
			if !almostEq(float64(c.At(i, j)), float64(want), 1e-4) {
				t.Fatalf("MatMulT mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatClone(t *testing.T) {
	m := WrapMat(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestWrapMatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WrapMat(2, 2, []float32{1, 2, 3})
}

func TestTopKAgainstSortOracle(t *testing.T) {
	check := func(seed uint64, nn, kk uint8) bool {
		n := int(nn)%64 + 1
		k := int(kk)%70 + 1
		r := rng.New(seed)
		x := make([]float32, n)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		got := TopK(x, k)

		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
		wantK := k
		if wantK > n {
			wantK = n
		}
		if len(got) != wantK {
			return false
		}
		for i := 0; i < wantK; i++ {
			if x[got[i]] != x[idx[i]] { // value-equal (tie order may differ only on equal values)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	x := []float32{1, 1, 1, 1}
	got := TopK(x, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie-break not by ascending index: %v", got)
	}
}

func TestTopKEdge(t *testing.T) {
	if got := TopK([]float32{1, 2}, 0); len(got) != 0 {
		t.Fatal("k=0 should return empty")
	}
	if got := TopK(nil, 3); len(got) != 0 {
		t.Fatal("empty input should return empty")
	}
	if got := TopK([]float32{5}, 10); len(got) != 1 || got[0] != 0 {
		t.Fatalf("k>n got %v", got)
	}
}

func TestArgsortDesc(t *testing.T) {
	got := ArgsortDesc([]float32{1, 3, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgsortDesc got %v", got)
		}
	}
}

func TestArgMaxMin(t *testing.T) {
	x := []float32{2, 5, 5, 1}
	if ArgMax(x) != 1 {
		t.Fatalf("ArgMax = %d", ArgMax(x))
	}
	if ArgMin(x) != 3 {
		t.Fatalf("ArgMin = %d", ArgMin(x))
	}
}

func TestTruncatedSVDLowRank(t *testing.T) {
	// Build an exactly rank-2 matrix: its rank-2 SVD must reconstruct it.
	r := rng.New(3)
	n, d := 40, 12
	u1 := make([]float32, d)
	u2 := make([]float32, d)
	for i := range u1 {
		u1[i] = r.NormFloat32()
		u2[i] = r.NormFloat32()
	}
	a := NewMat(n, d)
	for i := 0; i < n; i++ {
		c1, c2 := r.NormFloat32(), r.NormFloat32()
		row := a.Row(i)
		for j := 0; j < d; j++ {
			row[j] = c1*u1[j] + c2*u2[j]
		}
	}
	v, sigma := TruncatedSVD(a, 2, 20, 1)
	if v.Rows != d || v.Cols != 2 {
		t.Fatalf("V shape = %dx%d", v.Rows, v.Cols)
	}
	if err := ReconstructionError(a, v); err > 1e-3 {
		t.Fatalf("rank-2 reconstruction error = %v", err)
	}
	if sigma[0] < sigma[1] {
		t.Fatal("singular values not descending")
	}
}

func TestTruncatedSVDOrthonormal(t *testing.T) {
	r := rng.New(4)
	a := NewMat(30, 8)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	v, _ := TruncatedSVD(a, 4, 15, 2)
	for i := 0; i < v.Cols; i++ {
		ci := make([]float32, v.Rows)
		for k := 0; k < v.Rows; k++ {
			ci[k] = v.At(k, i)
		}
		if !almostEq(float64(Norm(ci)), 1, 1e-3) {
			t.Fatalf("column %d not unit norm: %v", i, Norm(ci))
		}
		for j := i + 1; j < v.Cols; j++ {
			cj := make([]float32, v.Rows)
			for k := 0; k < v.Rows; k++ {
				cj[k] = v.At(k, j)
			}
			if dot := Dot(ci, cj); !almostEq(float64(dot), 0, 1e-3) {
				t.Fatalf("columns %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

func TestTruncatedSVDCapturesVariance(t *testing.T) {
	// Rank-4 projection of a full-rank matrix should reduce error vs rank-1.
	r := rng.New(5)
	a := NewMat(50, 10)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	v1, _ := TruncatedSVD(a, 1, 15, 3)
	v4, _ := TruncatedSVD(a, 4, 15, 3)
	if ReconstructionError(a, v4) >= ReconstructionError(a, v1) {
		t.Fatal("higher-rank SVD did not reduce reconstruction error")
	}
}

func TestProjectRows(t *testing.T) {
	a := WrapMat(1, 2, []float32{3, 4})
	v := WrapMat(2, 1, []float32{1, 0}) // project onto first axis
	p := ProjectRows(a, v)
	if p.At(0, 0) != 3 {
		t.Fatalf("ProjectRows got %v", p.At(0, 0))
	}
}

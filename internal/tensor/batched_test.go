package tensor

import (
	"math"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Batched-kernel conformance: every row of a batched product must be
// bit-identical to the per-stream GEMV it replaces, at any batch size and
// any pool width — the contract that lets the serving engine switch between
// batched and per-stream decode without changing a single token.

var batchWidths = []int{1, 2, 3, 8}
var batchSizes = []int{1, 2, 3, 8}

func randMat(r *rng.RNG, rows, cols int, zeroFrac float64) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		if r.Float64() < zeroFrac {
			continue // keep exact zeros: the kernels' skip branch must match
		}
		m.Data[i] = r.NormFloat32()
	}
	return m
}

func expectBitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %g (bits %08x), want %g (bits %08x)",
				name, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestMatTMatMatchesMatTVec(t *testing.T) {
	shapes := []struct{ r, c int }{
		{64, 64},   // square decode projection
		{64, 37},   // odd columns (band splits mid-panel)
		{17, 128},  // fewer weight rows than columns
		{3, 5},     // tiny
		{128, 256}, // FFN-like
	}
	r := rng.New(31)
	for _, sh := range shapes {
		m := randMat(r, sh.r, sh.c, 0.1)
		for _, S := range batchSizes {
			x := randMat(r, S, sh.r, 0.1)
			want := NewMat(S, sh.c)
			for s := 0; s < S; s++ {
				MatTVecOn(nil, want.Row(s), m, x.Row(s))
			}
			for _, width := range batchWidths {
				pool := parallel.NewPool(width)
				got := NewMat(S, sh.c)
				MatTMatOn(pool, got, m, x)
				pool.Close()
				expectBitsEqual(t, "MatTMat", got.Data, want.Data)
			}
		}
	}
}

func TestPackedMatMulRowsMatchesMatVec(t *testing.T) {
	shapes := []struct{ r, c int }{
		{512, 64}, // LM-head shape
		{33, 16},  // tail panel with 1 live row
		{4, 8},    // single panel
		{130, 48}, // tail panel with 2 live rows
	}
	r := rng.New(37)
	for _, sh := range shapes {
		m := randMat(r, sh.r, sh.c, 0)
		pm := Pack(m)
		for _, S := range batchSizes {
			x := randMat(r, S, sh.c, 0.05)
			want := make([][]float32, S)
			for s := 0; s < S; s++ {
				want[s] = make([]float32, sh.r)
				pm.MatVecOn(nil, want[s], x.Row(s))
			}
			for _, width := range batchWidths {
				pool := parallel.NewPool(width)
				got := make([][]float32, S)
				for s := 0; s < S; s++ {
					got[s] = make([]float32, sh.r)
				}
				pm.MatMulRowsOn(pool, got, x)
				pool.Close()
				for s := 0; s < S; s++ {
					expectBitsEqual(t, "MatMulRows", got[s], want[s])
				}
			}
		}
	}
}

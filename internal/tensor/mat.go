package tensor

import (
	"fmt"

	"clusterkv/internal/parallel"
)

// Mat is a dense row-major float32 matrix view. Rows() returns slices that
// alias the underlying Data; mutating them mutates the matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMat negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// WrapMat wraps an existing flat slice as a Rows×Cols matrix without copying.
// It panics if the length does not match.
func WrapMat(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: WrapMat %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// kernelGrain is the shared fan-out policy: the minimum block length so
// each parallel block does a worthwhile amount of inner-loop work.
func kernelGrain(perIndexOps int) int { return parallel.Grain(perIndexOps) }

// MatVec computes dst = m · x (m is Rows×Cols, x has Cols entries,
// dst has Rows entries). dst must not alias x. Rows are computed in
// parallel on the shared intra-op pool; each output element keeps the
// serial reduction order, so results are bit-identical at any width.
func MatVec(dst []float32, m *Mat, x []float32) {
	MatVecOn(parallel.Default(), dst, m, x)
}

// MatVecOn is MatVec on an explicit pool (nil runs serial).
func MatVecOn(p *parallel.Pool, dst []float32, m *Mat, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MatVec dimension mismatch")
	}
	// Closure-free serial fast path: decode-round GEMVs must not allocate
	// (DESIGN.md §12), and a closure passed to For is forced onto the heap.
	if p.RunsInline(m.Rows, kernelGrain(m.Cols)) {
		matVecBand(dst, m, x, 0, m.Rows)
		return
	}
	p.For(m.Rows, kernelGrain(m.Cols), func(lo, hi int) { matVecBand(dst, m, x, lo, hi) })
}

func matVecBand(dst []float32, m *Mat, x []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatTVec computes dst = mᵀ · x (x has Rows entries, dst has Cols entries).
// The parallel split is over output *columns*: each dst[j] accumulates over
// rows in ascending order exactly as the serial loop does (including the
// x[i] == 0 skip), so results are bit-identical at any width.
func MatTVec(dst []float32, m *Mat, x []float32) {
	MatTVecOn(parallel.Default(), dst, m, x)
}

// MatTVecOn is MatTVec on an explicit pool (nil runs serial).
func MatTVecOn(p *parallel.Pool, dst []float32, m *Mat, x []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("tensor: MatTVec dimension mismatch")
	}
	// Closure-free serial fast path (see MatVecOn).
	if p.RunsInline(m.Cols, kernelGrain(m.Rows)) {
		matTVecBand(dst, m, x, 0, m.Cols)
		return
	}
	p.For(m.Cols, kernelGrain(m.Rows), func(lo, hi int) { matTVecBand(dst, m, x, lo, hi) })
}

func matTVecBand(dst []float32, m *Mat, x []float32, lo, hi int) {
	band := dst[lo:hi]
	Fill(band, 0)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		for j, v := range row {
			band[j] += xi * v
		}
	}
}

// MatMul computes c = a · b. Shapes: a is M×K, b is K×N, c is M×N.
// c must not alias a or b. Output rows are computed in parallel; each row
// accumulates over k in ascending order (with the a==0 skip) exactly as the
// serial loop, so results are bit-identical at any width.
func MatMul(c, a, b *Mat) {
	MatMulOn(parallel.Default(), c, a, b)
}

// MatMulOn is MatMul on an explicit pool (nil runs serial).
func MatMulOn(p *parallel.Pool, c, a, b *Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: MatMul dimension mismatch")
	}
	p.For(a.Rows, kernelGrain(a.Cols*b.Cols), func(lo, hi int) {
		Fill(c.Data[lo*c.Cols:hi*c.Cols], 0)
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulT computes c = a · bᵀ. Shapes: a is M×K, b is N×K, c is M×N.
// Output rows of c are computed in parallel with the serial per-element
// reduction order, so results are bit-identical at any width.
func MatMulT(c, a, b *Mat) {
	MatMulTOn(parallel.Default(), c, a, b)
}

// MatMulTOn is MatMulT on an explicit pool (nil runs serial).
func MatMulTOn(p *parallel.Pool, c, a, b *Mat) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: MatMulT dimension mismatch")
	}
	p.For(a.Rows, kernelGrain(a.Cols*b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j := 0; j < b.Rows; j++ {
				brow := b.Data[j*b.Cols : (j+1)*b.Cols]
				var s float32
				for k := range arow {
					s += arow[k] * brow[k]
				}
				crow[j] = s
			}
		}
	})
}

// Package tensor provides the dense float32 linear-algebra substrate used by
// the transformer engine, the clustering algorithms and the baselines.
//
// Conventions:
//   - All data is row-major float32.
//   - A Mat is a view over a flat slice; rows are contiguous.
//   - Functions never retain argument slices unless documented.
//
// The package is deliberately small: only the operations actually needed by
// the repository are implemented, each with a straightforward, allocation
// conscious loop. There is no SIMD; loops are written so the compiler can
// vectorize the hot paths (no bounds-check-defeating indirection).
package tensor

import "math"

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float32) float32 {
	var s float32
	for _, v := range a {
		s += v * v
	}
	return float32(math.Sqrt(float64(s)))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: SqDist length mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// CosineSim returns the cosine similarity <a,b>/(|a||b|). If either vector is
// (numerically) zero, it returns 0.
func CosineSim(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: CosineSim length mismatch")
	}
	var dot, na, nb float32
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (float32(math.Sqrt(float64(na))) * float32(math.Sqrt(float64(nb))))
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Copy copies src into dst and panics on length mismatch (unlike the builtin,
// which silently truncates — we want layout bugs to be loud).
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Copy length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Normalize scales x to unit L2 norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float32) float32 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Mean writes into dst the elementwise mean of the given rows. It panics if
// rows is empty or lengths mismatch.
func Mean(dst []float32, rows [][]float32) {
	if len(rows) == 0 {
		panic("tensor: Mean of no rows")
	}
	Fill(dst, 0)
	for _, r := range rows {
		Axpy(1, r, dst)
	}
	Scale(1/float32(len(rows)), dst)
}

// Softmax computes, in place, the numerically stable softmax of x.
// An empty slice is a no-op.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range x {
		e := float32(math.Exp(float64(v - maxv)))
		x[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// LogSumExp returns log(sum(exp(x))) computed stably. It panics on empty x.
func LogSumExp(x []float32) float32 {
	if len(x) == 0 {
		panic("tensor: LogSumExp of empty slice")
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - maxv))
	}
	return maxv + float32(math.Log(sum))
}

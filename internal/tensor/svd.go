package tensor

import (
	"math"

	"clusterkv/internal/rng"
)

// TruncatedSVD computes an approximate rank-r factorization of the n×d matrix
// a: the top-r right singular vectors V (d×r, orthonormal columns) and the
// corresponding singular values (descending). It uses subspace (block power)
// iteration on the Gram matrix aᵀa with Gram–Schmidt re-orthonormalization,
// which converges quickly for matrices with decaying spectra — exactly the
// regime of LLM key matrices that InfiniGen exploits.
//
// iters controls the number of subspace iterations (8–15 is plenty for our
// use). The rng seed makes the decomposition deterministic.
func TruncatedSVD(a *Mat, r, iters int, seed uint64) (v *Mat, sigma []float32) {
	n, d := a.Rows, a.Cols
	if r > d {
		r = d
	}
	if r > n {
		r = n
	}
	if r <= 0 {
		return NewMat(d, 0), nil
	}
	rnd := rng.New(seed)

	// V columns stored as rows of vt (r×d) for contiguous access.
	vt := NewMat(r, d)
	for i := range vt.Data {
		vt.Data[i] = rnd.NormFloat32()
	}
	orthonormalizeRows(vt)

	tmp := make([]float32, n)
	next := NewMat(r, d)
	for it := 0; it < iters; it++ {
		// next_i = aᵀ (a v_i)
		for i := 0; i < r; i++ {
			MatVec(tmp, a, vt.Row(i))
			MatTVec(next.Row(i), a, tmp)
		}
		vt, next = next, vt
		orthonormalizeRows(vt)
	}

	// Singular values: sigma_i = |a v_i|.
	sigma = make([]float32, r)
	for i := 0; i < r; i++ {
		MatVec(tmp, a, vt.Row(i))
		sigma[i] = Norm(tmp)
	}
	// Sort by descending sigma (subspace iteration usually yields this order
	// already, but make it a guarantee).
	order := ArgsortDesc(sigma)
	sortedVT := NewMat(r, d)
	sortedSigma := make([]float32, r)
	for i, o := range order {
		copy(sortedVT.Row(i), vt.Row(o))
		sortedSigma[i] = sigma[o]
	}

	// Return V as d×r.
	v = NewMat(d, r)
	for i := 0; i < r; i++ {
		col := sortedVT.Row(i)
		for j := 0; j < d; j++ {
			v.Set(j, i, col[j])
		}
	}
	return v, sortedSigma
}

// orthonormalizeRows applies modified Gram–Schmidt to the rows of m in place.
// Rows that become numerically zero are replaced by deterministic unit basis
// vectors to keep the basis full-rank.
func orthonormalizeRows(m *Mat) {
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := 0; j < i; j++ {
			rj := m.Row(j)
			proj := Dot(ri, rj)
			Axpy(-proj, rj, ri)
		}
		if Normalize(ri) < 1e-12 {
			Fill(ri, 0)
			ri[i%m.Cols] = 1
			for j := 0; j < i; j++ {
				proj := Dot(ri, m.Row(j))
				Axpy(-proj, m.Row(j), ri)
			}
			Normalize(ri)
		}
	}
}

// ProjectRows computes b = a · v where a is n×d and v is d×r, returning the
// n×r matrix of projected rows. Used to build InfiniGen's "partial keys".
func ProjectRows(a, v *Mat) *Mat {
	if a.Cols != v.Rows {
		panic("tensor: ProjectRows dimension mismatch")
	}
	out := NewMat(a.Rows, v.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			vrow := v.Row(k)
			for j, vv := range vrow {
				orow[j] += av * vv
			}
		}
	}
	return out
}

// ReconstructionError returns |a - a·v·vᵀ|_F / |a|_F, the relative Frobenius
// error of projecting a onto the subspace spanned by v's columns. Used in
// tests to validate TruncatedSVD.
func ReconstructionError(a, v *Mat) float64 {
	proj := ProjectRows(a, v) // n×r
	var num, den float64
	row := make([]float32, a.Cols)
	for i := 0; i < a.Rows; i++ {
		// reconstruct row i: proj_i · vᵀ
		Fill(row, 0)
		prow := proj.Row(i)
		for j := 0; j < v.Cols; j++ {
			pj := prow[j]
			if pj == 0 {
				continue
			}
			for k := 0; k < v.Rows; k++ {
				row[k] += pj * v.At(k, j)
			}
		}
		arow := a.Row(i)
		for k := range arow {
			diff := float64(arow[k] - row[k])
			num += diff * diff
			den += float64(arow[k]) * float64(arow[k])
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

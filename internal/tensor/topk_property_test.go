package tensor

import (
	"sort"
	"testing"

	"clusterkv/internal/rng"
)

// oracleTopK is the sort-based reference: indices ordered by descending
// value, ties broken by ascending index, truncated to k.
func oracleTopK(x []float32, k int) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k < 0 {
		k = 0
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TestTopKMatchesOracle is the property test: on random inputs — including
// heavy ties from a tiny value alphabet — TopK must equal the sort oracle
// exactly, for every k from degenerate to beyond-length.
func TestTopKMatchesOracle(t *testing.T) {
	r := rng.New(2024)
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		n := r.Intn(64)
		x := make([]float32, n)
		distinct := 1 + r.Intn(6) // few distinct values => many ties
		for i := range x {
			x[i] = float32(r.Intn(distinct)) / 2
			if r.Intn(5) == 0 {
				x[i] = -x[i]
			}
		}
		ks := []int{0, -1, 1, n / 2, n - 1, n, n + 3}
		for _, k := range ks {
			got := TopK(x, k)
			want := oracleTopK(x, k)
			if got == nil {
				t.Fatalf("trial %d: TopK returned nil for k=%d", trial, k)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d n=%d k=%d: len %d, oracle %d", trial, n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d k=%d: position %d is index %d (val %g), oracle %d (val %g)\nx=%v",
						trial, n, k, i, got[i], x[got[i]], want[i], x[want[i]], x)
				}
			}
		}
	}
}

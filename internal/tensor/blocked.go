package tensor

import "clusterkv/internal/parallel"

// Blocked and packed GEMV kernels (DESIGN.md §12). The Go compiler does not
// auto-vectorize, so the win available to a pure-Go GEMV is instruction-level
// parallelism: a single dot product is one serial FP-add dependency chain,
// while four rows processed together keep four independent chains in flight.
// Every kernel here preserves the *per-row* reduction order of the naive
// serial loop (channels ascending, one accumulator per row), so results are
// bit-identical to the unblocked path — the blocking only interleaves rows,
// never reassociates within one.

// DotRows computes dst[i] = scale * <x, rows[i*d : (i+1)*d]> for
// i in [0, len(dst)), four rows per pass. rows must hold at least
// len(dst)*d elements; x must have length d. Bit-identical to the
// one-row-at-a-time loop (per-row channel-ascending accumulation, one
// rounding for the final scale).
func DotRows(dst, x, rows []float32, d int, scale float32) {
	if len(x) != d {
		panic("tensor: DotRows x length mismatch")
	}
	m := len(dst)
	if len(rows) < m*d {
		panic("tensor: DotRows rows too short")
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		r0 := rows[i*d : i*d+d]
		r1 := rows[(i+1)*d : (i+1)*d+d]
		r2 := rows[(i+2)*d : (i+2)*d+d]
		r3 := rows[(i+3)*d : (i+3)*d+d]
		var s0, s1, s2, s3 float32
		for j, xj := range x {
			s0 += xj * r0[j]
			s1 += xj * r1[j]
			s2 += xj * r2[j]
			s3 += xj * r3[j]
		}
		dst[i] = s0 * scale
		dst[i+1] = s1 * scale
		dst[i+2] = s2 * scale
		dst[i+3] = s3 * scale
	}
	for ; i < m; i++ {
		row := rows[i*d : i*d+d]
		var s float32
		for j, xj := range x {
			s += xj * row[j]
		}
		dst[i] = s * scale
	}
}

// AddScaledRows computes out[j] += Σ_i w[i] * rows[i*d + j] — the weighted
// row sum of attention's value accumulation — four rows per pass. Each
// out[j] accumulates rows in ascending order exactly as the serial loop
// (out += w0·r0 before w1·r1, ...), so results are bit-identical at any
// blocking: interleaving elements of distinct out[j] chains never
// reassociates within one. A block whose four weights are all zero is
// skipped; individual zero weights contribute an exact ±0 add, which cannot
// change out[j] for finite inputs (partial sums are never -0 under
// round-to-nearest), matching the serial loop's per-row skip bit-for-bit.
func AddScaledRows(out, w, rows []float32, d int) {
	if len(out) != d {
		panic("tensor: AddScaledRows out length mismatch")
	}
	m := len(w)
	if len(rows) < m*d {
		panic("tensor: AddScaledRows rows too short")
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		w0, w1, w2, w3 := w[i], w[i+1], w[i+2], w[i+3]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
			continue
		}
		r0 := rows[i*d : i*d+d]
		r1 := rows[(i+1)*d : (i+1)*d+d]
		r2 := rows[(i+2)*d : (i+2)*d+d]
		r3 := rows[(i+3)*d : (i+3)*d+d]
		for j := range out {
			v := out[j]
			v += w0 * r0[j]
			v += w1 * r1[j]
			v += w2 * r2[j]
			v += w3 * r3[j]
			out[j] = v
		}
	}
	for ; i < m; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := rows[i*d : i*d+d]
		for j := range out {
			out[j] += wi * row[j]
		}
	}
}

// packRows is the PackedMat panel height.
const packRows = 4

// PackedMat is a matrix pre-packed into 4-row interleaved panels for the
// fastest pure-Go GEMV over static weights (the decode LM-head projection):
// panel p holds rows [4p, 4p+4) column-interleaved, so one sequential sweep
// of a panel feeds four independent accumulator chains from a single memory
// stream. The tail panel zero-pads missing rows. Packing is a layout copy —
// build once for long-lived weights, not per call.
type PackedMat struct {
	Rows, Cols int
	// panels holds ceil(Rows/4) panels of Cols*4 elements:
	// panels[p*Cols*4 + j*4 + k] == source row (4p+k), column j.
	panels []float32
}

// Pack copies m into the panel layout.
func Pack(m *Mat) *PackedMat {
	np := (m.Rows + packRows - 1) / packRows
	pm := &PackedMat{Rows: m.Rows, Cols: m.Cols, panels: make([]float32, np*m.Cols*packRows)}
	for i := 0; i < m.Rows; i++ {
		p, k := i/packRows, i%packRows
		base := p * m.Cols * packRows
		row := m.Row(i)
		for j, v := range row {
			pm.panels[base+j*packRows+k] = v
		}
	}
	return pm
}

// MatVec computes dst = pm · x on the shared intra-op pool. Each output row
// keeps the serial channel-ascending reduction order, so the result is
// bit-identical to MatVec over the unpacked matrix at any pool width.
func (pm *PackedMat) MatVec(dst, x []float32) {
	pm.MatVecOn(parallel.Default(), dst, x)
}

// MatVecOn is MatVec on an explicit pool (nil runs serial).
func (pm *PackedMat) MatVecOn(p *parallel.Pool, dst, x []float32) {
	if len(x) != pm.Cols || len(dst) != pm.Rows {
		panic("tensor: PackedMat.MatVec dimension mismatch")
	}
	np := (pm.Rows + packRows - 1) / packRows
	stride := pm.Cols * packRows
	// Closure-free serial fast path (see MatVecOn in mat.go): the decode
	// LM-head projection runs every round and must not allocate.
	if p.RunsInline(np, kernelGrain(stride)) {
		pm.panelBand(dst, x, 0, np)
		return
	}
	p.For(np, kernelGrain(stride), func(lo, hi int) { pm.panelBand(dst, x, lo, hi) })
}

func (pm *PackedMat) panelBand(dst, x []float32, lo, hi int) {
	stride := pm.Cols * packRows
	for pi := lo; pi < hi; pi++ {
		panel := pm.panels[pi*stride : (pi+1)*stride]
		var s0, s1, s2, s3 float32
		for j, xj := range x {
			s0 += xj * panel[j*packRows]
			s1 += xj * panel[j*packRows+1]
			s2 += xj * panel[j*packRows+2]
			s3 += xj * panel[j*packRows+3]
		}
		base := pi * packRows
		dst[base] = s0
		if base+1 < pm.Rows {
			dst[base+1] = s1
		}
		if base+2 < pm.Rows {
			dst[base+2] = s2
		}
		if base+3 < pm.Rows {
			dst[base+3] = s3
		}
	}
}

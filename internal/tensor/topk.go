package tensor

import "sort"

// TopK returns the indices of the k largest values in x, ordered by
// descending value (ties broken by ascending index so results are
// deterministic). If k >= len(x) it returns all indices sorted by value.
// k <= 0 returns an empty, non-nil slice.
func TopK(x []float32, k int) []int {
	if k <= 0 {
		return []int{}
	}
	if k > len(x) {
		k = len(x)
	}
	// Maintain a min-heap of size k over (value, index).
	type vi struct {
		v float32
		i int
	}
	h := make([]vi, 0, k)
	less := func(a, b vi) bool {
		// heap orders by "smallest kept": smaller value first; for equal
		// values the LARGER index is "smaller" so the smaller index wins.
		if a.v != b.v {
			return a.v < b.v
		}
		return a.i > b.i
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for i, v := range x {
		e := vi{v, i}
		if len(h) < k {
			h = append(h, e)
			up(len(h) - 1)
			continue
		}
		if less(h[0], e) {
			h[0] = e
			down(0)
		}
	}
	// Extract and sort descending by value, ascending index on ties.
	out := make([]int, len(h))
	sort.Slice(h, func(a, b int) bool {
		if h[a].v != h[b].v {
			return h[a].v > h[b].v
		}
		return h[a].i < h[b].i
	})
	for i, e := range h {
		out[i] = e.i
	}
	return out
}

// ArgsortDesc returns the permutation that sorts x in descending order,
// breaking ties by ascending index.
func ArgsortDesc(x []float32) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return x[idx[a]] > x[idx[b]]
	})
	return idx
}

// ArgMax returns the index of the largest element (first on ties).
// It panics on an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties).
// It panics on an empty slice.
func ArgMin(x []float32) int {
	if len(x) == 0 {
		panic("tensor: ArgMin of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// Async tiered-KV transfer runtime: a background executor servicing
// page-granular fetch/offload requests against a modeled PCIe channel,
// returning futures that attention waits on only if the transfer hasn't
// landed yet.
//
// The data plane of this reproduction always lives in process memory, so a
// "transfer" moves simulated residency (Ledger tiers, plus dequantization
// for a bound quantized host tier) and charges modeled channel time. What
// the runtime adds over the synchronous Ledger calls is *when* that happens:
// requests are enqueued while compute proceeds, a background worker applies
// them (fanning batches out on the shared intra-op pool), and Wait exposes
// only the modeled time that did not fit behind compute. Transfers change
// when data moves, never what attention reads — token streams are identical
// with the runtime on, off, or forced synchronous.
package kvcache

import (
	"sync"
	"sync/atomic"
	"time"

	"clusterkv/internal/metrics"
	"clusterkv/internal/obs"
	"clusterkv/internal/parallel"
)

// Channel models the simulated host↔device link transfers are scheduled on.
type Channel struct {
	// SecPerPage is the modeled seconds to move one (layer, head) KV page
	// (both K and V rows). <= 0 makes transfers free (pure bookkeeping).
	SecPerPage float64
}

// TransferRuntime schedules page-granular KV transfers on one modeled
// channel. One runtime serves a whole engine: every sequence's ledger
// enqueues into the same FIFO, so concurrent tenants contend for the modeled
// PCIe link exactly like they would for the real one.
//
// Modes:
//   - async (default): requests are serviced by a background worker; Wait
//     blocks only for servicing plus whatever modeled time is still left on
//     the channel clock (the *exposed* time).
//   - sync (NewTransferRuntime with sync=true): requests are serviced inline
//     on the caller and their full modeled time is exposed — the baseline
//     the overlap experiment compares against.
//
// A runtime is safe for concurrent use.
type TransferRuntime struct {
	ch       Channel
	syncMode bool
	throttle bool

	reqs   chan *Transfer
	exited chan struct{}

	mu       sync.Mutex
	closed   bool
	chanFree time.Time // when the modeled channel next goes idle

	transfers  int64
	pages      int64
	busySec    float64
	exposedSec float64

	// pf aggregates prefetch telemetry across every ledger this runtime has
	// serviced; ledgers increment it directly (atomics — the ledger lock is
	// held when they fire, so no lock ordering with rt.mu).
	pf xferCounters

	// rec, when enabled via SetTrace, receives transfer start/complete and
	// prefetch issue/land/drop events. Written once before any traffic (see
	// SetTrace), so the untracked reads on the request paths are race-free.
	rec obs.Recorder
}

// xferCounters is the runtime-wide prefetch telemetry sink ledgers feed.
type xferCounters struct {
	issued  atomic.Int64
	hits    atomic.Int64
	dropped atomic.Int64
}

// Transfer is the future of one enqueued request. Wait blocks until the
// request has been serviced and its modeled channel time has been accounted;
// a nil *Transfer is valid and waits for nothing.
type Transfer struct {
	rt       *TransferRuntime
	ledger   *Ledger
	pages    []int
	prefetch bool
	acctOnly int // accounting-only page count (offload/spill), no ledger work

	ready    chan struct{} // nil for inline-serviced transfers (done on creation)
	deadline time.Time
	modeled  float64
	moved    int

	waited atomic.Bool
}

// NewTransferRuntime returns a runtime on the given channel. sync forces
// inline servicing (every request fully exposed); throttle makes Wait
// actually sleep out the exposed residue, so wall-clock throughput reflects
// the modeled channel (experiments opt in; servers usually leave it off and
// read the overlap telemetry instead).
func NewTransferRuntime(ch Channel, sync, throttle bool) *TransferRuntime {
	rt := &TransferRuntime{ch: ch, syncMode: sync, throttle: throttle}
	if !sync {
		rt.reqs = make(chan *Transfer, 256)
		rt.exited = make(chan struct{})
		go rt.worker()
	}
	return rt
}

// Sync reports whether the runtime services requests inline.
func (rt *TransferRuntime) Sync() bool { return rt.syncMode }

// SetTrace attaches a trace recorder emitting transfer and prefetch events
// (obs.EvTransferStart/Complete on the modeled channel clock, prefetch
// issue/land/drop from the serviced ledgers). It must be called before any
// transfer traffic — the engine wires it during construction — because the
// recorder is read without synchronization on the request paths.
func (rt *TransferRuntime) SetTrace(rec obs.Recorder) { rt.rec = rec }

// Close stops the background worker after draining queued requests. Requests
// enqueued after Close are serviced inline; Close is idempotent.
func (rt *TransferRuntime) Close() {
	if rt.reqs == nil {
		return
	}
	rt.mu.Lock()
	already := rt.closed
	rt.closed = true
	rt.mu.Unlock()
	if !already {
		close(rt.reqs)
	}
	<-rt.exited
}

// Fetch schedules an exact fetch of the pages covering positions in l,
// pinning them for l's current epoch. The caller must Wait the returned
// Transfer before reading the fetched KV (attention blocks only if the
// transfer hasn't landed). Fetches are serviced inline on the caller: the
// very next statement waits them anyway, so a background hand-off would buy
// nothing but wakeup latency — the modeled channel accounting (FIFO deadline
// against chanFree) is identical either way. Being inline, the transfer
// needs no ready channel and reuses the ledger's page scratch: the hot
// decode path allocates nothing here.
func (rt *TransferRuntime) Fetch(l *Ledger, positions []int) *Transfer {
	l.setSink(&rt.pf, rt.rec)
	t := &Transfer{rt: rt, ledger: l, pages: l.pagesForFetch(positions)}
	rt.service([]*Transfer{t})
	return t
}

// Prefetch enqueues a speculative promotion of the pages covering positions
// (layer-ahead prefetch). Prefetched pages are unpinned hints: capacity
// pressure may re-evict them, and a wrong prediction costs only channel
// time. The returned Transfer should be waited before the layer's exact
// Select runs, so residency the selector observes is deterministic.
func (rt *TransferRuntime) Prefetch(l *Ledger, positions []int) *Transfer {
	l.setSink(&rt.pf, rt.rec)
	t := &Transfer{rt: rt, ledger: l, pages: l.PagesOf(positions, nil), prefetch: true, ready: make(chan struct{})}
	if rt.rec.Enabled() {
		rt.rec.Emit(obs.Event{Type: obs.EvPrefetchIssue, N: int64(len(t.pages))})
	}
	rt.enqueue(t)
	return t
}

// AccountPages charges the channel for moving n pages without touching any
// ledger — the device→host direction (post-prefill offloads, engine spills),
// which consumes link time but nobody waits on. Fire-and-forget.
func (rt *TransferRuntime) AccountPages(n int) *Transfer {
	if n <= 0 {
		return nil
	}
	t := &Transfer{rt: rt, acctOnly: n, ready: make(chan struct{})}
	rt.enqueue(t)
	return t
}

// Stats returns a snapshot of the runtime's overlap telemetry, including
// prefetch counters aggregated across every ledger the runtime has serviced
// (per-ledger figures remain available via Ledger.PrefetchCounters).
func (rt *TransferRuntime) Stats() metrics.Overlap {
	rt.mu.Lock()
	o := metrics.Overlap{
		Transfers:  rt.transfers,
		Pages:      rt.pages,
		BusySec:    rt.busySec,
		ExposedSec: rt.exposedSec,
	}
	rt.mu.Unlock()
	o.PrefetchedPages = rt.pf.issued.Load()
	o.PrefetchHits = rt.pf.hits.Load()
	o.PrefetchDropped = rt.pf.dropped.Load()
	return o
}

// enqueue hands t to the worker, falling back to inline servicing in sync
// mode, after Close, or when the queue is full (backpressure degrades to the
// synchronous path instead of blocking the compute thread indefinitely).
func (rt *TransferRuntime) enqueue(t *Transfer) {
	// A ledger with a bound store (quantized host tier) is serviced inline:
	// dequantize-on-fetch walks the store's page table, which is owned by the
	// compute goroutine and not synchronised against the background worker.
	if !rt.syncMode && (t.ledger == nil || !t.ledger.Bound()) {
		rt.mu.Lock()
		if !rt.closed {
			select {
			case rt.reqs <- t:
				rt.mu.Unlock()
				return
			default:
			}
		}
		rt.mu.Unlock()
	}
	rt.service([]*Transfer{t})
}

// worker drains the queue in arrival order, servicing whatever batch has
// accumulated since the last pass in one go.
func (rt *TransferRuntime) worker() {
	defer close(rt.exited)
	for t := range rt.reqs {
		batch := []*Transfer{t}
	drain:
		for {
			select {
			case t2, ok := <-rt.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, t2)
			default:
				break drain
			}
		}
		rt.service(batch)
	}
}

// service applies a batch: ledger promotions fan out on the shared intra-op
// pool (disjoint ledgers, per-ledger locks), then channel time is accounted
// serially in FIFO order so the modeled link stays a single serialized
// resource.
func (rt *TransferRuntime) service(batch []*Transfer) {
	apply := func(t *Transfer) {
		switch {
		case t.acctOnly > 0:
			t.moved = t.acctOnly
		case t.prefetch:
			t.moved = t.ledger.PrefetchPages(t.pages)
		default:
			t.moved = t.ledger.FetchPages(t.pages)
		}
	}
	if len(batch) == 1 {
		apply(batch[0])
	} else {
		parallel.Default().For(len(batch), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				apply(batch[i])
			}
		})
	}
	now := time.Now()
	rt.mu.Lock()
	for _, t := range batch {
		dur := float64(t.moved) * rt.ch.SecPerPage
		if dur < 0 {
			dur = 0
		}
		start := now
		if rt.chanFree.After(start) {
			start = rt.chanFree
		}
		t.modeled = dur
		t.deadline = start.Add(time.Duration(dur * float64(time.Second)))
		rt.chanFree = t.deadline
		startSec := rt.busySec // channel-busy offset this transfer starts at
		rt.transfers++
		rt.pages += int64(t.moved)
		rt.busySec += dur
		if rt.rec.Enabled() {
			var kind int64
			switch {
			case t.acctOnly > 0:
				kind = 2
			case t.prefetch:
				kind = 1
			}
			seq := uint64(rt.transfers)
			rt.rec.Emit(obs.Event{Type: obs.EvTransferStart,
				Req: seq, N: int64(t.moved), Sec: startSec, Aux: kind})
			rt.rec.Emit(obs.Event{Type: obs.EvTransferComplete,
				Req: seq, N: int64(t.moved), Sec: startSec, Dur: dur, Aux: kind})
		}
		if rt.syncMode {
			// The synchronous baseline exposes every modeled second by
			// definition; Wait then only sleeps (throttle) without
			// re-measuring, so wall time between service and Wait can never
			// masquerade as overlap.
			rt.exposedSec += dur
		}
	}
	rt.mu.Unlock()
	for _, t := range batch {
		if rt.syncMode && t.ledger != nil {
			// Sync mode exposes every modeled second by definition, so the
			// per-ledger attribution is settled here; Wait skips it.
			t.ledger.addStall(t.modeled, t.modeled)
		}
		if t.ready != nil {
			close(t.ready)
		}
	}
}

// Wait blocks until the transfer has been serviced, then accounts (and, with
// throttling, sleeps out) the modeled time still outstanding on the channel
// clock — the exposed portion; everything that elapsed while compute ran is
// hidden. Waiting a nil or already-waited Transfer is a no-op.
func (t *Transfer) Wait() {
	if t == nil {
		return
	}
	if t.ready != nil {
		<-t.ready
	}
	if !t.waited.CompareAndSwap(false, true) {
		return
	}
	residue := time.Until(t.deadline)
	rt := t.rt
	if !rt.syncMode {
		var exposed float64
		if residue > 0 {
			exposed = residue.Seconds()
			if exposed > t.modeled {
				exposed = t.modeled
			}
			rt.mu.Lock()
			rt.exposedSec += exposed
			rt.mu.Unlock()
		}
		if t.ledger != nil {
			// Per-ledger stall attribution: exposed blocked this wait, the
			// rest of the modeled time hid behind compute (DESIGN.md §14).
			t.ledger.addStall(exposed, t.modeled)
		}
	}
	if residue > 0 && rt.throttle {
		time.Sleep(residue)
	}
}

// Pages returns how many pages the serviced transfer actually moved (valid
// after Wait).
func (t *Transfer) Pages() int {
	if t == nil {
		return 0
	}
	return t.moved
}

package kvcache

import (
	"sync"
	"testing"
	"time"
)

// TestOffloadRejectsInvalidInterval locks the Offload contract: reversed or
// out-of-range intervals are caller bugs and must panic with a clear message
// instead of being silently clamped.
func TestOffloadRejectsInvalidInterval(t *testing.T) {
	cases := []struct {
		name     string
		from, to int
	}{
		{"reversed", 8, 4},
		{"negative-from", -1, 4},
		{"past-end", 0, 17},
		{"both-past-end", 20, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLedgerPaged(4)
			l.Extend(16, TierDevice)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Offload(%d, %d) did not panic", tc.from, tc.to)
				}
				if s, ok := r.(string); !ok || s == "" {
					t.Fatalf("Offload panic value %v is not a descriptive string", r)
				}
			}()
			l.Offload(tc.from, tc.to)
		})
	}

	// Valid boundary intervals must keep working, including the empty one.
	l := NewLedgerPaged(4)
	l.Extend(16, TierDevice)
	l.Offload(0, 16)
	l.Offload(16, 16)
	l.Offload(0, 0)
	if l.TierOf(0) != TierHost || l.TierOf(15) != TierHost {
		t.Fatal("full-range offload did not demote")
	}
}

// TestTransferRuntimeFetchPromotes: an async fetch promotes the pages
// covering the requested positions, counts transfers on the ledger and
// channel time on the runtime, and Wait makes the result visible.
func TestTransferRuntimeFetchPromotes(t *testing.T) {
	for _, sync := range []bool{false, true} {
		rt := NewTransferRuntime(Channel{SecPerPage: 1e-6}, sync, false)
		l := NewLedgerPaged(4)
		l.Extend(32, TierDevice)
		l.OffloadAll()

		tr := rt.Fetch(l, []int{0, 1, 9, 30})
		tr.Wait()
		if tr.Pages() != 3 {
			t.Fatalf("sync=%v: moved %d pages, want 3 (pages 0, 2, 7)", sync, tr.Pages())
		}
		for _, p := range []int{0, 9, 30} {
			if l.TierOf(p) != TierDevice {
				t.Fatalf("sync=%v: position %d not device after fetch", sync, p)
			}
		}
		if l.TierOf(16) != TierHost {
			t.Fatalf("sync=%v: unrequested page promoted", sync)
		}
		h2d, _ := l.Counters()
		if h2d != 3 {
			t.Fatalf("sync=%v: HostToDevice=%d, want 3", sync, h2d)
		}
		o := rt.Stats()
		if o.Transfers != 1 || o.Pages != 3 || o.BusySec <= 0 {
			t.Fatalf("sync=%v: stats %+v", sync, o)
		}
		if sync && o.ExposedSec != o.BusySec {
			t.Fatalf("sync mode must expose the full modeled time: busy=%g exposed=%g", o.BusySec, o.ExposedSec)
		}
		rt.Close()
	}
}

// TestTransferRuntimeOverlapHidesTime: a prefetch issued ahead of compute
// and waited after a compute-sized delay exposes (nearly) nothing — the
// modeled transfer time hides behind the work in between.
func TestTransferRuntimeOverlapHidesTime(t *testing.T) {
	rt := NewTransferRuntime(Channel{SecPerPage: 2e-3}, false, false)
	defer rt.Close()
	l := NewLedgerPaged(4)
	l.Extend(64, TierDevice)
	l.OffloadAll()

	tr := rt.Prefetch(l, []int{0, 4, 8, 12}) // 4 pages × 2ms = 8ms modeled
	time.Sleep(40 * time.Millisecond)        // "compute"
	tr.Wait()
	o := rt.Stats()
	if o.BusySec < 7e-3 {
		t.Fatalf("busy %.4fs, want ~8ms of modeled transfer", o.BusySec)
	}
	if o.HiddenFrac() < 0.5 {
		t.Fatalf("hidden fraction %.2f, want most of an 8ms transfer hidden behind 40ms of compute (exposed %.4fs)",
			o.HiddenFrac(), o.ExposedSec)
	}
	if issued, _, _ := l.PrefetchCounters(); issued != 4 {
		t.Fatalf("prefetched pages = %d, want 4", issued)
	}
}

// TestTransferRuntimeSyncNeverHides: the same schedule forced synchronous
// exposes every modeled second.
func TestTransferRuntimeSyncNeverHides(t *testing.T) {
	rt := NewTransferRuntime(Channel{SecPerPage: 1e-3}, true, false)
	defer rt.Close()
	l := NewLedgerPaged(4)
	l.Extend(64, TierDevice)
	l.OffloadAll()
	for i := 0; i < 4; i++ {
		rt.Fetch(l, []int{i * 16}).Wait()
	}
	o := rt.Stats()
	if o.HiddenSec() > 1e-9 {
		t.Fatalf("sync runtime hid %.6fs of transfer time", o.HiddenSec())
	}
	if o.Transfers != 4 || o.Pages != 4 {
		t.Fatalf("stats %+v", o)
	}
}

// TestPrefetchNeverEvictsPinned is the misprediction-safety lock (run under
// -race): a compute thread fetch-pins a working set while a concurrent
// prefetcher floods the ledger with wrong-cluster pages under a tight device
// cap. Capacity eviction triggered by the prefetches must displace only
// unpinned pages — after every concurrent burst, the just-fetched working
// set is still device-resident.
func TestPrefetchNeverEvictsPinned(t *testing.T) {
	const (
		pageTokens = 4
		pages      = 64
		devCap     = 8
		rounds     = 200
	)
	l := NewLedgerPaged(pageTokens)
	l.Extend(pages*pageTokens, TierDevice)
	l.OffloadAll()
	l.SetDeviceCap(devCap)
	rt := NewTransferRuntime(Channel{}, false, false)
	defer rt.Close()

	// Hot working set: pages 0..3 (positions 0, 4, 8, 12).
	hot := []int{0, 4, 8, 12}
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		// Wrong-cluster prefetcher: hammers cold pages, forcing capacity
		// eviction pressure against the fetcher's pins.
		i := 4
		for {
			select {
			case <-stop:
				return
			default:
			}
			cold := []int{(i % (pages - 4) * pageTokens) + 4*pageTokens}
			rt.Prefetch(l, cold).Wait()
			i++
		}
	}()

	for r := 0; r < rounds; r++ {
		l.Fetch(hot) // pins for the current epoch
		for _, p := range hot {
			if l.TierOf(p) != TierDevice {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: pinned position %d was evicted by a concurrent prefetch", r, p)
			}
		}
		l.EndEpoch()
	}
	close(stop)
	wg.Wait()
	if dp := l.DevicePages(); dp > devCap {
		t.Fatalf("device pages %d exceed cap %d after quiescence (fetch overflow is allowed only transiently under full pins)", dp, devCap)
	}
}

// TestLedgerDeviceCapEvictsLRU: with a device cap, promotion evicts the
// least-recently-used unpinned page, and prefetches finding no evictable
// room are dropped rather than forced.
func TestLedgerDeviceCapEvictsLRU(t *testing.T) {
	l := NewLedgerPaged(1)
	l.Extend(8, TierDevice)
	l.OffloadAll()
	l.SetDeviceCap(2)

	l.Fetch([]int{0}) // device: {0}, pinned
	l.Fetch([]int{1}) // device: {0, 1}, both pinned
	l.EndEpoch()      // pins expire
	l.Fetch([]int{2}) // cap 2: evict LRU (page 0) -> device {1, 2}
	if l.TierOf(0) != TierHost {
		t.Fatal("LRU page 0 not evicted")
	}
	if l.TierOf(1) != TierDevice || l.TierOf(2) != TierDevice {
		t.Fatal("wrong eviction victim")
	}

	// All device pages pinned this epoch: prefetch must drop, not evict.
	l.Fetch([]int{1})
	if moved := l.PrefetchPages([]int{5}); moved != 0 {
		t.Fatalf("prefetch promoted %d pages past a fully pinned cap", moved)
	}
	if _, _, dropped := l.PrefetchCounters(); dropped != 1 {
		t.Fatalf("dropped counter = %d, want 1", dropped)
	}
	// Exact fetches always proceed (attention must read what it selected),
	// even when that means transiently exceeding the cap.
	l.Fetch([]int{6})
	if l.TierOf(6) != TierDevice {
		t.Fatal("exact fetch blocked by pinned cap")
	}
}

// TestPrefetchHitAccounting: pages promoted speculatively and then claimed
// by an exact fetch count as prefetch hits exactly once.
func TestPrefetchHitAccounting(t *testing.T) {
	l := NewLedgerPaged(4)
	l.Extend(32, TierDevice)
	l.OffloadAll()
	if moved := l.PrefetchPages([]int{0, 1}); moved != 2 {
		t.Fatalf("prefetch moved %d, want 2", moved)
	}
	l.Fetch([]int{0, 2, 5, 17}) // pages 0, 1 prefetched; page 4 cold
	issued, hits, dropped := l.PrefetchCounters()
	if issued != 2 || hits != 2 || dropped != 0 {
		t.Fatalf("prefetch counters issued=%d hits=%d dropped=%d, want 2/2/0", issued, hits, dropped)
	}
	l.Fetch([]int{0}) // already consumed: no double hit
	if _, hits, _ = l.PrefetchCounters(); hits != 2 {
		t.Fatalf("hit double-counted: %d", hits)
	}
	h2d, devHits := l.Counters()
	if h2d != 3 { // 2 prefetch + 1 cold fetch (page 4)
		t.Fatalf("HostToDevice=%d, want 3", h2d)
	}
	if devHits != 3 { // fetch of prefetched pages 0,1 + refetch of page 0
		t.Fatalf("DeviceHits=%d, want 3", devHits)
	}
}

// TestTieredAccountant covers the host-tier dimension: combined-capacity
// admission, spill/unspill moves, and release clamping.
func TestTieredAccountant(t *testing.T) {
	a := NewTieredAccountant(100, 50)
	if !a.TryReserve(130) {
		t.Fatal("reservation within device+host refused")
	}
	if a.TryReserve(30) {
		t.Fatal("reservation past combined capacity granted")
	}
	if a.TotalCapacity() != 150 {
		t.Fatalf("TotalCapacity=%d", a.TotalCapacity())
	}
	a.MoveToHost(40)
	if a.DeviceUsed() != 90 || a.HostUsed() != 40 {
		t.Fatalf("after spill: dev=%d host=%d", a.DeviceUsed(), a.HostUsed())
	}
	a.MoveToDevice(10)
	if a.DeviceUsed() != 100 || a.HostUsed() != 30 {
		t.Fatalf("after unspill: dev=%d host=%d", a.DeviceUsed(), a.HostUsed())
	}
	if a.HostPeak() != 40 {
		t.Fatalf("host peak %d, want 40", a.HostPeak())
	}
	// Releasing slots that were host-accounted shrinks the host side too.
	a.Release(110)
	if a.Used() != 20 || a.HostUsed() > a.Used() {
		t.Fatalf("after release: used=%d host=%d", a.Used(), a.HostUsed())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MoveToHost past device residency did not panic")
			}
		}()
		a.MoveToHost(1000)
	}()
}

package kvcache

import (
	"math"
	"testing"
)

// fillN appends n tokens whose key/value channels encode the position, so
// aliasing bugs show up as concrete wrong values.
func fillN(s *Store, from, n int) {
	d := s.HeadDim()
	k := make([]float32, d)
	v := make([]float32, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			k[j] = float32((from+i)*10 + j)
			v[j] = float32(-((from + i) * 10) - j)
		}
		s.Append(k, v)
	}
}

func wantRow(t *testing.T, s *Store, i int) {
	t.Helper()
	d := s.HeadDim()
	k, v := s.Key(i), s.Value(i)
	for j := 0; j < d; j++ {
		if k[j] != float32(i*10+j) || v[j] != float32(-(i*10)-j) {
			t.Fatalf("token %d corrupted: k=%v v=%v", i, k, v)
		}
	}
}

// TestStoreTruncateAfterForkAliasing is the COW aliasing lock: truncating a
// fork inside a shared page and appending over the rewound range must
// copy-on-write, never mutate rows the parent (or a sibling fork) still
// reads — the load-bearing invariant behind snapshot rewind under paging.
func TestStoreTruncateAfterForkAliasing(t *testing.T) {
	a := NewArena(8, nil) // small pages so the scenario spans several
	parent := NewStoreIn(a, 2)
	fillN(parent, 0, 20) // pages: 8+8+4

	child := parent.Fork()
	sibling := parent.Fork()

	// Child rewinds into the middle of shared page 1 and diverges.
	child.Truncate(12)
	for i := 12; i < 18; i++ {
		child.Append([]float32{9999, 9999}, []float32{-9999, -9999})
	}
	// Parent and sibling must still see the original rows 12..19.
	for i := 0; i < 20; i++ {
		wantRow(t, parent, i)
		wantRow(t, sibling, i)
	}
	// Child keeps the common prefix and its own divergent tail.
	for i := 0; i < 12; i++ {
		wantRow(t, child, i)
	}
	for i := 12; i < 18; i++ {
		if child.Key(i)[0] != 9999 {
			t.Fatalf("child divergent row %d lost: %v", i, child.Key(i))
		}
	}

	// Parent truncates and re-appends over a page the child still shares:
	// the child's view must survive the parent's rewrite.
	parent.Truncate(4)
	for i := 4; i < 10; i++ {
		parent.Append([]float32{-1, -1}, []float32{1, 1})
	}
	for i := 0; i < 12; i++ {
		wantRow(t, child, i)
	}
	for i := 0; i < 20; i++ {
		wantRow(t, sibling, i)
	}
	if parent.Key(5)[0] != -1 {
		t.Fatalf("parent rewrite lost: %v", parent.Key(5))
	}
}

// TestForkSharesPagesByRefcount verifies block-granular sharing via refcount
// inspection: fully common pages stay shared after divergence; only the
// partially filled boundary page is copied.
func TestForkSharesPagesByRefcount(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 4)
	fillN(s, 0, 20) // 2 full pages + 4 rows in page 2

	f1 := s.Fork()
	f2 := s.Fork()
	for p := 0; p < 3; p++ {
		if s.PageRef(p) != 3 {
			t.Fatalf("page %d refcount %d after two forks, want 3", p, s.PageRef(p))
		}
	}

	// Divergence: each fork appends. Full pages 0-1 stay shared; page 2 is
	// copy-on-written per fork.
	fillN(f1, 20, 1)
	fillN(f2, 20, 1)
	for p := 0; p < 2; p++ {
		if s.PageRef(p) != 3 || f1.PageRef(p) != 3 || f2.PageRef(p) != 3 {
			t.Fatalf("fully common page %d no longer shared: %d/%d/%d",
				p, s.PageRef(p), f1.PageRef(p), f2.PageRef(p))
		}
	}
	if s.PageRef(2) != 1 || f1.PageRef(2) != 1 || f2.PageRef(2) != 1 {
		t.Fatalf("divergent tail pages should be exclusive: %d/%d/%d",
			s.PageRef(2), f1.PageRef(2), f2.PageRef(2))
	}
	if got := a.LivePages(); got != 5 {
		t.Fatalf("live pages = %d, want 5 (2 shared + 3 private tails)", got)
	}
}

// TestArenaAccountantChargesSharedPagesOnce is the shared-prefix accounting
// regression (satellite of the TryReserve double-count fix): forking never
// charges, COW charges only the copied page, and releasing the last holder
// frees the slots.
func TestArenaAccountantChargesSharedPagesOnce(t *testing.T) {
	acct := NewAccountant(0)
	a := NewArena(64, acct)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 128) // exactly 2 pages -> 128 slots

	if acct.Used() != 128 {
		t.Fatalf("prefill charge = %d, want 128", acct.Used())
	}
	forks := make([]*Store, 5)
	for i := range forks {
		forks[i] = s.Fork()
	}
	if acct.Used() != 128 {
		t.Fatalf("forking charged: %d, want unchanged 128", acct.Used())
	}
	// Each fork diverges by one token: page-boundary divergence allocates
	// one private page per fork, no COW copy of shared pages.
	for _, f := range forks {
		fillN(f, 128, 1)
	}
	if acct.Used() != 128+5*64 {
		t.Fatalf("divergence charge = %d, want %d", acct.Used(), 128+5*64)
	}
	for _, f := range forks {
		f.Free()
	}
	if acct.Used() != 128 {
		t.Fatalf("fork release = %d, want 128", acct.Used())
	}
	s.Free()
	if acct.Used() != 0 {
		t.Fatalf("leaked %d slots", acct.Used())
	}
	if a.LivePages() != 0 {
		t.Fatalf("leaked %d pages", a.LivePages())
	}
}

// TestArenaCOWMidPageCharges: diverging inside a shared page charges exactly
// one extra page (the copy), and releasing the fork returns it.
func TestArenaCOWMidPageCharges(t *testing.T) {
	acct := NewAccountant(0)
	a := NewArena(64, acct)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 100) // 2 pages (64 + 36): 128 slots

	f := s.Fork()
	fillN(f, 100, 1) // COW of the partial page 1
	if acct.Used() != 192 {
		t.Fatalf("mid-page divergence = %d, want 192 (2 shared-era pages + 1 copy)", acct.Used())
	}
	if s.PageRef(0) != 2 || s.PageRef(1) != 1 || f.PageRef(1) != 1 {
		t.Fatalf("refcounts after COW: %d/%d/%d", s.PageRef(0), s.PageRef(1), f.PageRef(1))
	}
	f.Free()
	if acct.Used() != 128 {
		t.Fatalf("after fork free = %d, want 128", acct.Used())
	}
	s.Free()
	if acct.Used() != 0 || a.LivePages() != 0 {
		t.Fatalf("leak: %d slots, %d pages", acct.Used(), a.LivePages())
	}
}

// TestArenaRecyclesFreedPages: refcount-zero pages return to the free list
// and back the next allocation.
func TestArenaRecyclesFreedPages(t *testing.T) {
	a := NewArena(16, nil)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 32)
	s.Free()
	if a.LivePages() != 0 {
		t.Fatalf("live after free: %d", a.LivePages())
	}
	before := a.Allocs()
	s2 := NewStoreIn(a, 2)
	fillN(s2, 0, 32)
	if a.Allocs() != before+2 {
		t.Fatalf("allocs %d -> %d", before, a.Allocs())
	}
	for i := 0; i < 32; i++ {
		wantRow(t, s2, i)
	}
	if a.PeakPages() != 2 {
		t.Fatalf("peak pages = %d, want 2 (recycled, not regrown)", a.PeakPages())
	}
}

// TestStoreAppendBatchAcrossPages: one batch spanning several pages lands
// row-exact, including into a partially filled tail.
func TestStoreAppendBatchAcrossPages(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 5) // partial first page
	n := 20
	ks := make([]float32, n*2)
	vs := make([]float32, n*2)
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			ks[i*2+j] = float32((5+i)*10 + j)
			vs[i*2+j] = float32(-((5 + i) * 10) - j)
		}
	}
	if first := s.AppendBatch(ks, vs); first != 5 {
		t.Fatalf("AppendBatch first = %d", first)
	}
	if s.Len() != 25 || s.NumPages() != 4 {
		t.Fatalf("len=%d pages=%d", s.Len(), s.NumPages())
	}
	for i := 0; i < 25; i++ {
		wantRow(t, s, i)
	}
}

// TestStoreFlatViewMatchesPages: the Keys/Values flat-copy fallback is
// bit-identical to the page reads, across appends, truncates and re-appends.
func TestStoreFlatViewMatchesPages(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 3)
	check := func() {
		t.Helper()
		ks, vs := s.Keys(), s.Values()
		if len(ks) != s.Len()*3 || len(vs) != s.Len()*3 {
			t.Fatalf("flat view lengths %d/%d for %d tokens", len(ks), len(vs), s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			k, v := s.Key(i), s.Value(i)
			for j := 0; j < 3; j++ {
				if math.Float32bits(ks[i*3+j]) != math.Float32bits(k[j]) ||
					math.Float32bits(vs[i*3+j]) != math.Float32bits(v[j]) {
					t.Fatalf("flat view diverges at token %d", i)
				}
			}
		}
	}
	fillN(s, 0, 13)
	check()
	fillN(s, 13, 4)
	check() // incremental sync
	s.Truncate(9)
	check() // rewind invalidates
	fillN(s, 9, 10)
	check() // rewrite over rewound range
	f := s.Fork()
	fillN(f, 19, 3) // COW in the fork
	check()
	fillN(s, 19, 1) // and divergence on the original side
	check()
}

// TestReadKeysRangedCopy: the non-retaining selector read matches per-token
// access across page boundaries, reuses caller scratch, and decodes
// quantized pages without restoring them.
func TestReadKeysRangedCopy(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 3)
	fillN(s, 0, 21) // pages 8+8+5
	for _, r := range [][2]int{{0, 21}, {3, 19}, {8, 16}, {5, 5}, {20, 21}} {
		ks := s.ReadKeys(r[0], r[1], nil)
		vs := s.ReadValues(r[0], r[1], nil)
		if len(ks) != (r[1]-r[0])*3 {
			t.Fatalf("range %v: got %d floats", r, len(ks))
		}
		for i := r[0]; i < r[1]; i++ {
			for j := 0; j < 3; j++ {
				if ks[(i-r[0])*3+j] != s.Key(i)[j] || vs[(i-r[0])*3+j] != s.Value(i)[j] {
					t.Fatalf("range %v diverges at token %d", r, i)
				}
			}
		}
	}
	// Scratch reuse: same backing array when capacity suffices.
	buf := make([]float32, 0, 64)
	out := s.ReadKeys(2, 12, buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("ReadKeys reallocated despite sufficient scratch")
	}
	// Quantized pages decode without restoring.
	s.QuantizePage(0, 8)
	got := s.ReadKeys(0, 8, nil)
	if !s.PageQuantized(0) {
		t.Fatal("ReadKeys restored a quantized page")
	}
	for i := 0; i < 8; i++ {
		if diff := math.Abs(float64(got[i*3] - float32(i*10))); diff > 1.0 {
			t.Fatalf("decoded row %d off by %.3f", i, diff)
		}
	}
	// Out-of-range panics.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range read")
		}
	}()
	s.ReadKeys(5, 22, nil)
}

// TestLedgerPagedFetchStraddle covers page-granular Fetch/Evict including a
// fetch whose positions straddle a page boundary: both touched pages move,
// each counted once.
func TestLedgerPagedFetchStraddle(t *testing.T) {
	l := NewLedgerPaged(4)
	l.Extend(10, TierDevice) // pages: [0-3] [4-7] [8-9]
	if l.NumPages() != 3 {
		t.Fatalf("pages = %d", l.NumPages())
	}
	l.OffloadAll()

	// Positions 3 and 4 straddle the page 0/1 boundary: two page transfers.
	if moved := l.Fetch([]int{3, 4}); moved != 2 {
		t.Fatalf("straddle fetch moved %d pages, want 2", moved)
	}
	if l.HostToDevice != 2 || l.DeviceHits != 0 {
		t.Fatalf("counters after straddle: h2d=%d hits=%d", l.HostToDevice, l.DeviceHits)
	}
	// All of page 0 is now device-resident: any token on it is a hit.
	if moved := l.Fetch([]int{0, 1, 2}); moved != 0 {
		t.Fatalf("co-located tokens re-transferred: %d", moved)
	}
	if l.DeviceHits != 1 {
		t.Fatalf("page dedup failed: hits=%d, want 1 (one page)", l.DeviceHits)
	}
	// Unsorted positions across pages dedup per page.
	l.ResetCounters()
	if moved := l.Fetch([]int{9, 1, 8, 2}); moved != 1 {
		t.Fatalf("mixed fetch moved %d, want 1 (page 2 only)", moved)
	}
	if l.DeviceHits != 1 || l.HostToDevice != 1 {
		t.Fatalf("mixed fetch counters: h2d=%d hits=%d", l.HostToDevice, l.DeviceHits)
	}

	// Evicting one token demotes its whole page (co-located tokens lose
	// device residency with it), without touching transfer counters.
	l.ResetCounters()
	l.Evict([]int{5})
	if l.TierOf(4) != TierHost || l.TierOf(7) != TierHost {
		t.Fatal("page eviction did not demote co-located tokens")
	}
	if l.TierOf(3) != TierDevice {
		t.Fatal("eviction spilled to a neighbouring page")
	}
	if l.HostToDevice != 0 || l.DeviceHits != 0 {
		t.Fatal("Evict moved transfer counters")
	}
}

// TestLedgerPagedOffloadBoundaries: Offload demotes only fully covered
// pages, except a partial tail that ends the registered range; Extend keeps
// a partially filled boundary page on device when fresh tokens land on it.
func TestLedgerPagedOffloadBoundaries(t *testing.T) {
	l := NewLedgerPaged(4)
	l.Extend(10, TierDevice)
	l.Offload(2, 7) // only page 1's tokens 4-7... but 7 < 8: page 1 not fully covered
	if l.TierOf(0) != TierDevice || l.TierOf(5) != TierDevice || l.TierOf(9) != TierDevice {
		t.Fatal("partial coverage offloaded a page")
	}
	l.Offload(4, 8) // page 1 fully covered
	if l.TierOf(4) != TierHost || l.TierOf(7) != TierHost {
		t.Fatal("fully covered page not offloaded")
	}
	if l.TierOf(8) != TierDevice {
		t.Fatal("offload spilled past its range")
	}
	// Offload to the exact end of the ledger takes the partial tail page.
	l.Offload(8, 10)
	if l.TierOf(9) != TierHost {
		t.Fatal("end-of-range partial tail page not offloaded")
	}
	// New decode tokens land on the partial tail page: it must come back to
	// device (fresh KV is written on device).
	l.Extend(1, TierDevice)
	if l.TierOf(10) != TierDevice || l.TierOf(9) != TierDevice {
		t.Fatal("boundary page with fresh device rows stayed host")
	}
}

// TestStoreHostQuantRoundTrip: the off-by-default quantized host tier. With
// a bound ledger at quant bits, offloaded full pages drop to codes and any
// read (fetch) restores approximate values; without the flag, reads are
// bit-identical forever.
func TestStoreHostQuantRoundTrip(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 4)
	fillN(s, 0, 20)
	orig := append([]float32(nil), s.Keys()...)

	l := NewLedgerPaged(8)
	l.Bind(s, 8)
	l.Extend(20, TierDevice)
	l.Offload(0, 20) // pages 0,1 full -> quantized; partial tail page stays fp32

	if !s.PageQuantized(0) || !s.PageQuantized(1) {
		t.Fatal("offloaded full pages not quantized")
	}
	if s.PageQuantized(2) {
		t.Fatal("partial tail page quantized")
	}

	// Fetch restores: values are close but (in general) not identical.
	l.Fetch([]int{0})
	if s.PageQuantized(0) {
		t.Fatal("fetch did not restore page 0")
	}
	// Direct reads on a still-quantized page restore on demand.
	_ = s.Key(9)
	if s.PageQuantized(1) {
		t.Fatal("read did not restore page 1")
	}
	got := s.Keys()
	for i := range orig {
		if diff := math.Abs(float64(orig[i] - got[i])); diff > 1.0 {
			t.Fatalf("8-bit round trip error %.3f at %d (orig %.1f got %.1f)", diff, i, orig[i], got[i])
		}
	}

	// A shared page must not quantize (siblings keep exact reads).
	s2 := NewStoreIn(a, 4)
	fillN(s2, 0, 8)
	f := s2.Fork()
	l2 := NewLedgerPaged(8)
	l2.Bind(s2, 4)
	l2.Extend(8, TierDevice)
	l2.Offload(0, 8)
	if s2.PageQuantized(0) {
		t.Fatal("shared page quantized under a sibling's feet")
	}
	f.Free()

	// Flag off: residency moves never touch the floats.
	s3 := NewStoreIn(a, 4)
	fillN(s3, 0, 16)
	before := append([]float32(nil), s3.Keys()...)
	l3 := NewLedgerPaged(8)
	l3.Bind(s3, 0)
	l3.Extend(16, TierDevice)
	l3.Offload(0, 16)
	l3.Fetch([]int{0, 8})
	after := s3.Keys()
	for i := range before {
		if math.Float32bits(before[i]) != math.Float32bits(after[i]) {
			t.Fatalf("flag-off residency changed bits at %d", i)
		}
	}
}

// TestFlatViewDoesNotRestoreQuantizedPages: building selector metadata over
// Keys/Values (the flat fallback) must not undo the simulated quantized
// host tier — only Key/KeyPage fetches restore. Regression for the decode
// window silently dequantizing every host page.
func TestFlatViewDoesNotRestoreQuantizedPages(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 20)
	s.QuantizePage(0, 8)
	s.QuantizePage(1, 8)

	ks := s.Keys()
	vs := s.Values()
	if !s.PageQuantized(0) || !s.PageQuantized(1) {
		t.Fatal("flat view restored quantized pages")
	}
	// The view holds the decoded (lossy) values a reader would see.
	for i := 0; i < 16; i++ {
		if diff := math.Abs(float64(ks[i*2] - float32(i*10))); diff > 1.0 {
			t.Fatalf("decoded key row %d off by %.3f", i, diff)
		}
		if diff := math.Abs(float64(vs[i*2] + float32(i*10))); diff > 1.0 {
			t.Fatalf("decoded val row %d off by %.3f", i, diff)
		}
	}
	// COW from a shared quantized page keeps the source quantized for the
	// sibling (the copy decodes without restoring).
	f := s.Fork()
	f.Truncate(4)
	f.Append([]float32{1, 1}, []float32{2, 2})
	if !s.PageQuantized(0) {
		t.Fatal("sibling's COW restored the shared quantized page")
	}
	// Clone reads without restoring either.
	c := s.Clone()
	if !s.PageQuantized(1) {
		t.Fatal("Clone restored the source's quantized page")
	}
	if c.PageQuantized(1) {
		t.Fatal("Clone produced a quantized copy")
	}
	f.Free()
	c.Free()
}

// TestQuantizedPageCOW: appending over a fork whose shared tail was... can't
// happen (shared pages never quantize), but a fork taken *after* a page
// quantized must COW from the dequantized rows, and an exclusively owned
// quantized tail must restore before accepting appends.
func TestQuantizedPageCOW(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 2)
	fillN(s, 0, 8) // one full page
	s.QuantizePage(0, 8)
	if !s.PageQuantized(0) {
		t.Fatal("explicit quantize failed")
	}

	f := s.Fork() // shares the quantized page
	fillN(f, 8, 1)
	if f.NumPages() != 2 || f.Len() != 9 {
		t.Fatalf("fork shape: %d pages, %d tokens", f.NumPages(), f.Len())
	}

	// Truncate into the quantized shared page, then append: COW must
	// dequantize-copy, leaving s's page intact.
	f.Truncate(4)
	f.Append([]float32{7, 7}, []float32{8, 8})
	if f.Key(4)[0] != 7 {
		t.Fatalf("append over quantized COW lost: %v", f.Key(4))
	}
	for i := 0; i < 4; i++ {
		k := f.Key(i)
		if math.Abs(float64(k[0]-float32(i*10))) > 1.0 {
			t.Fatalf("COW from quantized page lost row %d: %v", i, k)
		}
	}
	f.Free()

	// Exclusive quantized tail: truncate + append restores in place.
	s.Truncate(6)
	s.Append([]float32{5, 5}, []float32{6, 6})
	if s.Key(6)[0] != 5 {
		t.Fatalf("append on quantized exclusive tail: %v", s.Key(6))
	}
}

// TestAccountantGrow: unconditional growth past capacity is visible in
// Used/Peak and throttles TryReserve until released.
func TestAccountantGrow(t *testing.T) {
	a := NewAccountant(100)
	if !a.TryReserve(80) {
		t.Fatal("initial reserve refused")
	}
	a.Grow(50) // decode growth: allowed past capacity
	if a.Used() != 130 || a.Peak() != 130 {
		t.Fatalf("used=%d peak=%d", a.Used(), a.Peak())
	}
	if a.TryReserve(1) {
		t.Fatal("reserve granted while over capacity")
	}
	a.Release(130)
	if !a.TryReserve(100) {
		t.Fatal("capacity not restored")
	}
}

package kvcache

import (
	"sync"
	"sync/atomic"

	"clusterkv/internal/quant"
)

// DefaultPageTokens is the arena page size in tokens. 64 tokens balances
// sharing granularity against page-table overhead: shared document prefixes
// in the serving workloads are hundreds-to-thousands of tokens (so almost all
// prefix pages are fully shared across forks), while a diverging decode tail
// wastes at most 63 slots per (layer, head).
const DefaultPageTokens = 64

// page is one fixed-size block of K/V storage for a single (layer, head)
// plane: up to pageTokens rows of headDim channels for keys and values.
// Pages are reference-counted: Store.Fork retains them, COW and Truncate
// release them, and the arena recycles a page when its count reaches zero.
//
// Rows of a shared page (refs > 1) are immutable; only a store holding the
// sole reference may write into the page's tail. That invariant is what makes
// forked prefixes safe to read concurrently from many sequences.
type page struct {
	refs atomic.Int32
	keys []float32
	vals []float32

	// Host-quantized form (optional, see Arena.SetHostQuant). While qk/qv are
	// non-nil the float storage is dropped; any read restores it first. muQ
	// serialises the quantize/restore transitions; quantized is the lock-free
	// fast-path flag.
	muQ       sync.Mutex
	quantized atomic.Bool
	qk, qv    *quant.Tensor
}

// Arena is a process- or engine-wide allocator of KV pages. Every Store is a
// page table over exactly one arena; forks share pages by reference count, so
// the arena's live-page gauge is the exact deduplicated KV footprint across
// all sequences built on it — the quantity exact admission control meters.
//
// An Arena is safe for concurrent use.
type Arena struct {
	mu         sync.Mutex
	pageTokens int
	acct       *Accountant // optional: charged pageTokens per live page
	free       map[int][]*page
	live       int64
	peak       int64
	allocs     int64 // total allocations (incl. reused pages)
}

// NewArena returns an arena with the given page size in tokens. acct, when
// non-nil, is charged pageTokens slots per page on allocation and released on
// refcount-zero free — the exact-accounting substrate of serve admission.
func NewArena(pageTokens int, acct *Accountant) *Arena {
	if pageTokens <= 0 {
		panic("kvcache: non-positive arena page size")
	}
	return &Arena{
		pageTokens: pageTokens,
		acct:       acct,
		free:       make(map[int][]*page),
	}
}

var defaultArena = NewArena(DefaultPageTokens, nil)

// DefaultArena returns the process-wide arena NewStore allocates from. It has
// no accountant: standalone stores (tests, examples, trace harnesses) are not
// budget-gated.
func DefaultArena() *Arena { return defaultArena }

// PageTokens returns the page size in tokens.
func (a *Arena) PageTokens() int { return a.pageTokens }

// LivePages returns the number of pages currently referenced by any store.
func (a *Arena) LivePages() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// PeakPages returns the high-water mark of live pages.
func (a *Arena) PeakPages() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocs returns the total number of page allocations served (including
// recycled pages); Allocs − LivePages is the number of frees.
func (a *Arena) Allocs() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs
}

// alloc hands out a page with refcount 1 for the given head dimension,
// reusing a freed page of the same shape when available.
func (a *Arena) alloc(headDim int) *page {
	a.mu.Lock()
	var pg *page
	if list := a.free[headDim]; len(list) > 0 {
		pg = list[len(list)-1]
		a.free[headDim] = list[:len(list)-1]
	}
	a.live++
	a.allocs++
	if a.live > a.peak {
		a.peak = a.live
	}
	acct := a.acct
	a.mu.Unlock()

	if pg == nil {
		// Keys and values live in one packed slab (keys first), so a page is a
		// single allocation and a decode step's K-score sweep followed by the
		// V-weighted-sum touches one contiguous 2·pageTokens·headDim region per
		// plane instead of two unrelated heap objects (DESIGN.md §12). The
		// three-index subslice caps keys so an overrun can never bleed into vals.
		n := a.pageTokens * headDim
		slab := make([]float32, 2*n)
		pg = &page{keys: slab[:n:n], vals: slab[n:]}
	}
	pg.refs.Store(1)
	if acct != nil {
		// Unconditional: admission control gates *requests*; an admitted
		// sequence's appends must never fail mid-decode.
		acct.Grow(int64(a.pageTokens))
	}
	return pg
}

// retain adds one reference. The caller must already hold a reference (e.g.
// forking a store whose page table it owns), which keeps retain race-free
// against a concurrent drop to zero.
func (a *Arena) retain(pg *page) {
	if pg.refs.Add(1) <= 1 {
		panic("kvcache: retain of a freed page")
	}
}

// release drops one reference and recycles the page when the count reaches
// zero, returning the accountant's slots.
func (a *Arena) release(pg *page, headDim int) {
	left := pg.refs.Add(-1)
	if left > 0 {
		return
	}
	if left < 0 {
		panic("kvcache: page over-released")
	}
	// Restore float storage before recycling so a reused page never leaks a
	// stale quantized form.
	pg.restore(a.pageTokens, headDim)
	a.mu.Lock()
	a.free[headDim] = append(a.free[headDim], pg)
	a.live--
	acct := a.acct
	a.mu.Unlock()
	if acct != nil {
		acct.Release(int64(a.pageTokens))
	}
}

// quantize drops the page's float storage for a KIVI-style quantized form:
// keys per-channel, values per-token (see internal/quant). rows is the number
// of valid rows. No-op while the page is shared or already quantized.
func (pg *page) quantize(bits, rows, headDim int) {
	if bits == 0 || rows == 0 || pg.refs.Load() != 1 {
		return
	}
	pg.muQ.Lock()
	defer pg.muQ.Unlock()
	if pg.quantized.Load() {
		return
	}
	pg.qk = quant.Quantize(pg.keys[:rows*headDim], rows, headDim, bits, quant.PerChannel)
	pg.qv = quant.Quantize(pg.vals[:rows*headDim], rows, headDim, bits, quant.PerToken)
	pg.keys, pg.vals = nil, nil
	pg.quantized.Store(true)
}

// readRows copies rows [from, from+n) into dstK and/or dstV (either may be
// nil to skip that side) without changing the page's storage form: a
// quantized page is decoded on the fly, preserving its simulated
// host-quantized residency. Metadata reads (selector clustering over
// Store.ReadKeys/Keys, conformance references) go through here — they are
// measurements, not fetches.
func (pg *page) readRows(dstK, dstV []float32, from, n, headDim int) {
	if pg.quantized.Load() {
		pg.muQ.Lock()
		defer pg.muQ.Unlock()
		if pg.quantized.Load() {
			for r := 0; r < n; r++ {
				if dstK != nil {
					pg.qk.Row(from+r, dstK[r*headDim:(r+1)*headDim])
				}
				if dstV != nil {
					pg.qv.Row(from+r, dstV[r*headDim:(r+1)*headDim])
				}
			}
			return
		}
	}
	if dstK != nil {
		copy(dstK, pg.keys[from*headDim:(from+n)*headDim])
	}
	if dstV != nil {
		copy(dstV, pg.vals[from*headDim:(from+n)*headDim])
	}
}

// restore rebuilds float storage from the quantized form (the dequantize-on-
// fetch of a host→device transfer). Safe to call concurrently; the float
// buffers are fully written before the quantized flag clears, so lock-free
// readers that observe quantized == false see complete rows.
func (pg *page) restore(pageTokens, headDim int) {
	if !pg.quantized.Load() {
		return
	}
	pg.muQ.Lock()
	defer pg.muQ.Unlock()
	if !pg.quantized.Load() {
		return
	}
	// Same packed single-slab layout as Arena.alloc.
	n := pageTokens * headDim
	slab := make([]float32, 2*n)
	keys := slab[:n:n]
	vals := slab[n:]
	pg.qk.Dequantize(keys[:pg.qk.N*pg.qk.D])
	pg.qv.Dequantize(vals[:pg.qv.N*pg.qv.D])
	pg.keys, pg.vals = keys, vals
	pg.qk, pg.qv = nil, nil
	pg.quantized.Store(false)
}

package kvcache

import (
	"fmt"
	"sort"
	"sync"

	"clusterkv/internal/obs"
)

// Tier identifies where the simulated copy of a KV page resides.
type Tier uint8

const (
	// TierDevice means the page's KV is resident in (simulated) GPU memory.
	TierDevice Tier = iota
	// TierHost means the page's KV was offloaded to (simulated) CPU memory
	// and must be transferred over PCIe before attention can read it.
	TierHost
)

// Ledger tracks per-page residency for one (layer, head) store and counts
// simulated transfers. It is the bookkeeping behind the paper's Fig. 5
// offload arrows and the §IV-D cache-hit accounting, at the granularity real
// offloaders move data: whole pages, not tokens. A page-1 ledger
// (NewLedger) degenerates to exact per-token residency.
//
// Page rules:
//   - Fetch promotes every page containing a requested position; a page
//     already device-resident is one hit, a host page is one transfer —
//     counters are in pages (equal to tokens when PageTokens() == 1).
//   - Offload demotes only pages fully inside the range: a page with any
//     token outside [from, to) keeps its device copy (the decode tail's
//     partially filled page is still being written on device).
//   - Evict demotes every page containing an evicted position: reclaiming a
//     page's device memory takes its co-located tokens with it — exactly the
//     granularity cost block-based cache management pays.
//
// Concurrency: a Ledger is safe for concurrent use. The async transfer
// runtime (TransferRuntime) promotes prefetched pages from a background
// executor while the compute thread extends, fetches and evicts, so every
// method takes the ledger lock. Pages promoted by a compute-side Fetch are
// *pinned* for the current epoch (one decode step, advanced by EndEpoch):
// capacity eviction — triggered when SetDeviceCap is set and a promotion
// needs room — never evicts a pinned page, so a mispredicted prefetch can
// never displace KV a concurrent Select just fetched for attention.
//
// The exported counter fields (HostToDevice, DeviceHits) are mutated under
// the lock; read them directly only from quiescent single-threaded code
// (tests, trace harnesses) and through Counters() when a runtime may be
// servicing this ledger concurrently.
type Ledger struct {
	mu         sync.Mutex
	pageTokens int
	tiers      []Tier // one entry per page
	n          int    // registered tokens
	// HostToDevice counts pages transferred host→device (cache misses).
	HostToDevice int64
	// DeviceHits counts pages that were already device-resident when
	// requested (cache hits).
	DeviceHits int64

	// lastUse is the per-page LRU stamp (bumped on fetch/prefetch/pin);
	// pinEpoch marks the epoch a page was last pinned by a compute-side
	// Fetch. A page is pinned while pinEpoch == epoch.
	lastUse  []int64
	pinEpoch []int64
	epoch    int64
	clock    int64

	// prefetched marks pages promoted speculatively and not yet consumed by
	// an exact fetch; the per-ledger prefetch counters feed TransferRuntime
	// stats and tests. sink, when attached by a runtime, receives the same
	// increments aggregated runtime-wide.
	prefetched      []bool
	prefetchedPages int64
	prefetchHits    int64
	prefetchDropped int64
	sink            *xferCounters
	rec             obs.Recorder

	// devCap caps device-resident pages (0 = unlimited); devPages is the
	// current device-resident page count.
	devCap   int
	devPages int

	// store, when bound, receives page-granular quantize/restore calls as
	// residency changes: host-tier pages are stored quantized at quantBits.
	store     *Store
	quantBits int

	scratch      []int // page-dedup scratch reused across Fetch calls
	fetchScratch []int // page set scratch for inline runtime fetches (compute-thread-only)

	// xferExposedSec / xferHiddenSec split this ledger's modeled transfer
	// time into the portion that blocked compute (exposed at Wait) and the
	// portion that fit behind it. Wall-clock dependent — attribution
	// telemetry (DESIGN.md §14), excluded from determinism fingerprints.
	xferExposedSec float64
	xferHiddenSec  float64
}

// NewLedger returns a token-granular ledger (page size 1), the exact
// residency bookkeeping the per-token experiments use.
func NewLedger() *Ledger { return NewLedgerPaged(1) }

// NewLedgerPaged returns a ledger tracking residency in pages of the given
// token count.
func NewLedgerPaged(pageTokens int) *Ledger {
	if pageTokens <= 0 {
		panic("kvcache: non-positive ledger page size")
	}
	return &Ledger{pageTokens: pageTokens, epoch: 1}
}

// PageTokens returns the residency granularity in tokens.
func (l *Ledger) PageTokens() int { return l.pageTokens }

// addStall attributes one waited transfer's modeled time to this ledger:
// exposedSec blocked compute, the rest hid behind it. Called by the
// transfer runtime at Wait (async) or service (sync).
func (l *Ledger) addStall(exposedSec, modeledSec float64) {
	l.mu.Lock()
	l.xferExposedSec += exposedSec
	if h := modeledSec - exposedSec; h > 0 {
		l.xferHiddenSec += h
	}
	l.mu.Unlock()
}

// TransferStalls returns the ledger's accumulated exposed/hidden modeled
// transfer time (see addStall). Wall-clock dependent telemetry.
func (l *Ledger) TransferStalls() (exposedSec, hiddenSec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.xferExposedSec, l.xferHiddenSec
}

// Bind attaches a store so host-tier transitions quantize its pages at the
// given bit width (2–8) and fetches restore (dequantize) them — the
// simulated "quantized host tier" extension, off unless a selector or
// experiment opts in. The store's page size must match the ledger's.
//
// A bound store pins transfer servicing to the caller's goroutine: the async
// runtime services bound ledgers inline (see TransferRuntime), because store
// page tables are not synchronised against the background executor.
func (l *Ledger) Bind(s *Store, quantBits int) {
	if s != nil && s.PageTokens() != l.pageTokens {
		panic("kvcache: Bind page-size mismatch")
	}
	l.mu.Lock()
	l.store = s
	l.quantBits = quantBits
	l.mu.Unlock()
}

// Bound reports whether a store is bound (quantized host tier active).
func (l *Ledger) Bound() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store != nil
}

// SetDeviceCap bounds the number of device-resident pages (0 = unlimited).
// When a promotion would exceed the cap, the least-recently-used unpinned
// device page is evicted to make room; pinned pages are never displaced.
// Fresh tokens (Extend) and exact fetches may still push the count past the
// cap when nothing is evictable — attention must be able to read what it
// selected — while prefetches are dropped instead.
func (l *Ledger) SetDeviceCap(pages int) {
	l.mu.Lock()
	l.devCap = pages
	l.mu.Unlock()
}

// pageOf returns the page index of token position p.
func (l *Ledger) pageOf(p int) int { return p / l.pageTokens }

// NumPages returns the number of residency pages covering the tokens.
func (l *Ledger) NumPages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tiers)
}

// Extend registers n new tokens at the given tier (tokens are created on the
// device during prefill/decode, then typically offloaded). A page partially
// covered by the previous length adopts t only if it was device-resident or
// t is TierDevice — fresh tokens are written on device, which pulls their
// page's simulated copy back regardless of where the older rows sat.
func (l *Ledger) Extend(n int, t Tier) {
	if n < 0 {
		panic("kvcache: Extend with negative count")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.n
	l.n += n
	if n > 0 && prev%l.pageTokens != 0 && t == TierDevice {
		// The boundary page was partially filled and gains fresh device rows.
		last := len(l.tiers) - 1
		if l.tiers[last] == TierHost {
			l.tiers[last] = TierDevice
			l.devPages++
		}
	}
	want := (l.n + l.pageTokens - 1) / l.pageTokens
	for len(l.tiers) < want {
		l.tiers = append(l.tiers, t)
		l.lastUse = append(l.lastUse, l.clock)
		l.pinEpoch = append(l.pinEpoch, 0)
		l.prefetched = append(l.prefetched, false)
		l.clock++
		if t == TierDevice {
			l.devPages++
		}
	}
}

// Len returns the number of registered tokens.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// OffloadAll marks every page host-resident (the post-prefill offload of
// Fig. 5, and the periodic decode-time offload every m steps).
func (l *Ledger) OffloadAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.tiers {
		l.demote(i)
	}
}

// Offload marks the pages fully contained in token range [from, to) as
// host-resident; partially covered boundary pages keep their device copy.
// The interval must satisfy 0 <= from <= to <= Len(): a reversed or
// out-of-range interval is a caller bug and panics rather than being
// silently clamped.
func (l *Ledger) Offload(from, to int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 || to > l.n || from > to {
		panic(fmt.Sprintf("kvcache: Offload[%d, %d) invalid for ledger of %d tokens (need 0 <= from <= to <= len)", from, to, l.n))
	}
	first := (from + l.pageTokens - 1) / l.pageTokens // first fully covered
	last := to / l.pageTokens                         // one past last fully covered
	hi := min(last, len(l.tiers))
	for p := first; p < hi; p++ {
		l.demote(p)
	}
	// The final partial page is offloadable only when it ends the ledger's
	// registered range exactly at to (nothing newer lives on it).
	if to == l.n && to%l.pageTokens != 0 && last < len(l.tiers) && from <= last*l.pageTokens {
		l.demote(last)
	}
}

// PagesOf appends to dst the deduplicated, ascending page indices covering
// the given token positions and returns it. It is how the transfer runtime
// turns a selector's position set into a page-granular request.
func (l *Ledger) PagesOf(positions []int, dst []int) []int {
	dst = dst[:0]
	for _, p := range positions {
		dst = append(dst, l.pageOf(p))
	}
	sort.Ints(dst)
	out := dst[:0]
	last := -1
	for _, pg := range dst {
		if pg != last {
			out = append(out, pg)
			last = pg
		}
	}
	return out
}

// Fetch requests the given token positions for attention. Every page holding
// a requested position is promoted exactly once: host pages count as
// transfers, device pages as hits. Fetched pages are pinned for the current
// epoch, so concurrent capacity eviction (a mispredicted prefetch making
// room) can never displace them. It returns the number of pages transferred.
func (l *Ledger) Fetch(positions []int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scratch = l.pagesOfLocked(positions, l.scratch)
	return l.fetchPagesLocked(l.scratch)
}

// FetchPages is Fetch over pre-computed page indices (deduplicated by the
// caller, e.g. via PagesOf).
func (l *Ledger) FetchPages(pages []int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fetchPagesLocked(pages)
}

func (l *Ledger) pagesOfLocked(positions []int, dst []int) []int {
	dst = dst[:0]
	if l.pageTokens == 1 {
		// Token-granular: one page per position; Fetch semantics count every
		// position individually, so no dedup (positions are distinct by
		// contract of the selector index sets).
		return append(dst, positions...)
	}
	for _, p := range positions {
		dst = append(dst, l.pageOf(p))
	}
	sort.Ints(dst)
	out := dst[:0]
	last := -1
	for _, pg := range dst {
		if pg != last {
			out = append(out, pg)
			last = pg
		}
	}
	return out
}

func (l *Ledger) fetchPagesLocked(pages []int) int {
	// Pre-pin the whole batch: capacity eviction triggered by promoting one
	// page of this fetch must never pick a later page of the same fetch as
	// its LRU victim (it would be counted resident, evicted, then
	// re-transferred within a single call).
	for _, pg := range pages {
		l.pinEpoch[pg] = l.epoch
	}
	moved := 0
	for _, pg := range pages {
		if l.prefetched[pg] {
			l.prefetched[pg] = false
			if l.tiers[pg] == TierDevice {
				l.prefetchHits++
				if l.sink != nil {
					l.sink.hits.Add(1)
				}
			}
		}
		if l.tiers[pg] == TierHost {
			l.makeRoom()
			l.promote(pg)
			l.HostToDevice++
			moved++
		} else {
			l.DeviceHits++
		}
		l.lastUse[pg] = l.clock
		l.clock++
	}
	return moved
}

// PrefetchPages speculatively promotes the given pages (deduplicated,
// ascending). Unlike Fetch it does not pin: a prefetched page is fair game
// for capacity eviction until an exact fetch claims it. Under a device cap
// with no evictable room the page is dropped (counted, not forced) — a
// prefetch is a hint, never an obligation. Returns pages transferred.
func (l *Ledger) PrefetchPages(pages []int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	moved, dropped := 0, 0
	for _, pg := range pages {
		if pg < 0 || pg >= len(l.tiers) || l.tiers[pg] == TierDevice {
			continue
		}
		if l.devCap > 0 && l.devPages >= l.devCap && !l.evictLRU() {
			l.prefetchDropped++
			if l.sink != nil {
				l.sink.dropped.Add(1)
			}
			dropped++
			continue
		}
		l.promote(pg)
		l.prefetched[pg] = true
		l.prefetchedPages++
		if l.sink != nil {
			l.sink.issued.Add(1)
		}
		l.HostToDevice++
		moved++
		l.lastUse[pg] = l.clock
		l.clock++
	}
	if l.rec.Enabled() {
		if moved > 0 {
			l.rec.Emit(obs.Event{Type: obs.EvPrefetchLand, N: int64(moved)})
		}
		if dropped > 0 {
			l.rec.Emit(obs.Event{Type: obs.EvPrefetchDrop, N: int64(dropped)})
		}
	}
	return moved
}

// setSink attaches the runtime-wide prefetch telemetry sink and trace
// recorder.
func (l *Ledger) setSink(s *xferCounters, rec obs.Recorder) {
	l.mu.Lock()
	l.sink = s
	l.rec = rec
	l.mu.Unlock()
}

// pagesForFetch computes the page set of a fetch into a reusable scratch.
// It is owned by the sequence's compute goroutine — the only issuer of
// exact fetches, which are serviced inline before the next call — and must
// not be used for async requests, whose page slices outlive the call.
func (l *Ledger) pagesForFetch(positions []int) []int {
	l.fetchScratch = l.PagesOf(positions, l.fetchScratch)
	return l.fetchScratch
}

// makeRoom evicts LRU unpinned pages until the device cap admits one more
// page. Exact fetches proceed even when nothing is evictable (attention must
// read what it selected); the overflow shows up in DevicePages.
func (l *Ledger) makeRoom() {
	for l.devCap > 0 && l.devPages >= l.devCap {
		if !l.evictLRU() {
			return
		}
	}
}

// evictLRU demotes the least-recently-used unpinned device page, reporting
// whether one was found. Pinned pages (fetched this epoch) are never chosen.
func (l *Ledger) evictLRU() bool {
	victim := -1
	for pg := range l.tiers {
		if l.tiers[pg] != TierDevice || l.pinEpoch[pg] == l.epoch {
			continue
		}
		if victim < 0 || l.lastUse[pg] < l.lastUse[victim] {
			victim = pg
		}
	}
	if victim < 0 {
		return false
	}
	l.demote(victim)
	return true
}

// Evict marks every page containing one of the positions host-resident
// without counting a transfer (device memory reclaimed; the host copy was
// never deleted).
func (l *Ledger) Evict(positions []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range positions {
		l.demote(l.pageOf(p))
	}
}

// EndEpoch advances the pin epoch: pages pinned by this epoch's fetches
// become evictable again. Selectors call it once per decode step.
func (l *Ledger) EndEpoch() {
	l.mu.Lock()
	l.epoch++
	l.mu.Unlock()
}

// TierOf reports the current tier of token p (the tier of its page).
func (l *Ledger) TierOf(p int) Tier {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tiers[l.pageOf(p)]
}

// DevicePages returns the number of device-resident pages.
func (l *Ledger) DevicePages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.devPages
}

// Counters returns the transfer counters under the lock — the concurrent-
// safe way to read HostToDevice/DeviceHits while a runtime is attached.
func (l *Ledger) Counters() (hostToDevice, deviceHits int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.HostToDevice, l.DeviceHits
}

// PrefetchCounters returns (pages prefetched, prefetched pages consumed by a
// later fetch while device-resident, prefetch pages dropped for lack of
// evictable room).
func (l *Ledger) PrefetchCounters() (issued, hits, dropped int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.prefetchedPages, l.prefetchHits, l.prefetchDropped
}

// ResetCounters zeroes the transfer counters, keeping residency state.
func (l *Ledger) ResetCounters() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.HostToDevice = 0
	l.DeviceHits = 0
	l.prefetchedPages = 0
	l.prefetchHits = 0
	l.prefetchDropped = 0
}

func (l *Ledger) promote(pg int) {
	if l.tiers[pg] == TierHost {
		l.devPages++
	}
	l.tiers[pg] = TierDevice
	if l.store != nil && pg < l.store.NumPages() && l.store.PageQuantized(pg) {
		// Dequantize-on-fetch: touching the page restores float storage.
		_ = l.store.KeyPage(pg)
	}
}

func (l *Ledger) demote(pg int) {
	if l.tiers[pg] == TierDevice {
		l.devPages--
	}
	l.tiers[pg] = TierHost
	l.prefetched[pg] = false
	if l.store != nil && pg < l.store.NumPages() {
		l.store.QuantizePage(pg, l.quantBits)
	}
}

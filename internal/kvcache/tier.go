package kvcache

// Tier identifies where the simulated copy of a token's KV resides.
type Tier uint8

const (
	// TierDevice means the token's KV is resident in (simulated) GPU memory.
	TierDevice Tier = iota
	// TierHost means the token's KV was offloaded to (simulated) CPU memory
	// and must be transferred over PCIe before attention can read it.
	TierHost
)

// Ledger tracks per-token residency for one (layer, head) store and counts
// simulated transfers. It is the bookkeeping behind the paper's Fig. 5
// offload arrows and the §IV-D cache-hit accounting.
type Ledger struct {
	tiers []Tier
	// HostToDevice counts tokens transferred host→device (cache misses).
	HostToDevice int64
	// DeviceHits counts tokens that were already device-resident when
	// requested (cache hits).
	DeviceHits int64
}

// NewLedger returns a ledger with no tokens.
func NewLedger() *Ledger { return &Ledger{} }

// Extend registers n new tokens at the given tier (tokens are created on the
// device during prefill/decode, then typically offloaded).
func (l *Ledger) Extend(n int, t Tier) {
	for i := 0; i < n; i++ {
		l.tiers = append(l.tiers, t)
	}
}

// Len returns the number of registered tokens.
func (l *Ledger) Len() int { return len(l.tiers) }

// OffloadAll marks every token as host-resident (the post-prefill offload of
// Fig. 5, and the periodic decode-time offload every m steps).
func (l *Ledger) OffloadAll() {
	for i := range l.tiers {
		l.tiers[i] = TierHost
	}
}

// Offload marks tokens [from, to) as host-resident.
func (l *Ledger) Offload(from, to int) {
	for i := from; i < to; i++ {
		l.tiers[i] = TierHost
	}
}

// Fetch requests the given token positions for attention. Host-resident
// tokens are counted as transfers and become device-resident; device-resident
// tokens are counted as hits. It returns the number of tokens transferred.
func (l *Ledger) Fetch(positions []int) int {
	moved := 0
	for _, p := range positions {
		if l.tiers[p] == TierHost {
			l.tiers[p] = TierDevice
			l.HostToDevice++
			moved++
		} else {
			l.DeviceHits++
		}
	}
	return moved
}

// Evict marks the given positions host-resident without counting a transfer
// (device memory reclaimed; the host copy was never deleted).
func (l *Ledger) Evict(positions []int) {
	for _, p := range positions {
		l.tiers[p] = TierHost
	}
}

// TierOf reports the current tier of token p.
func (l *Ledger) TierOf(p int) Tier { return l.tiers[p] }

// ResetCounters zeroes the transfer counters, keeping residency state.
func (l *Ledger) ResetCounters() {
	l.HostToDevice = 0
	l.DeviceHits = 0
}

package kvcache

import "sort"

// Tier identifies where the simulated copy of a KV page resides.
type Tier uint8

const (
	// TierDevice means the page's KV is resident in (simulated) GPU memory.
	TierDevice Tier = iota
	// TierHost means the page's KV was offloaded to (simulated) CPU memory
	// and must be transferred over PCIe before attention can read it.
	TierHost
)

// Ledger tracks per-page residency for one (layer, head) store and counts
// simulated transfers. It is the bookkeeping behind the paper's Fig. 5
// offload arrows and the §IV-D cache-hit accounting, at the granularity real
// offloaders move data: whole pages, not tokens. A page-1 ledger
// (NewLedger) degenerates to exact per-token residency.
//
// Page rules:
//   - Fetch promotes every page containing a requested position; a page
//     already device-resident is one hit, a host page is one transfer —
//     counters are in pages (equal to tokens when PageTokens() == 1).
//   - Offload demotes only pages fully inside the range: a page with any
//     token outside [from, to) keeps its device copy (the decode tail's
//     partially filled page is still being written on device).
//   - Evict demotes every page containing an evicted position: reclaiming a
//     page's device memory takes its co-located tokens with it — exactly the
//     granularity cost block-based cache management pays.
type Ledger struct {
	pageTokens int
	tiers      []Tier // one entry per page
	n          int    // registered tokens
	// HostToDevice counts pages transferred host→device (cache misses).
	HostToDevice int64
	// DeviceHits counts pages that were already device-resident when
	// requested (cache hits).
	DeviceHits int64

	// store, when bound, receives page-granular quantize/restore calls as
	// residency changes: host-tier pages are stored quantized at quantBits.
	store     *Store
	quantBits int

	scratch []int // page-dedup scratch reused across Fetch calls
}

// NewLedger returns a token-granular ledger (page size 1), the exact
// residency bookkeeping the per-token experiments use.
func NewLedger() *Ledger { return NewLedgerPaged(1) }

// NewLedgerPaged returns a ledger tracking residency in pages of the given
// token count.
func NewLedgerPaged(pageTokens int) *Ledger {
	if pageTokens <= 0 {
		panic("kvcache: non-positive ledger page size")
	}
	return &Ledger{pageTokens: pageTokens}
}

// PageTokens returns the residency granularity in tokens.
func (l *Ledger) PageTokens() int { return l.pageTokens }

// Bind attaches a store so host-tier transitions quantize its pages at the
// given bit width (2–8) and fetches restore (dequantize) them — the
// simulated "quantized host tier" extension, off unless a selector or
// experiment opts in. The store's page size must match the ledger's.
func (l *Ledger) Bind(s *Store, quantBits int) {
	if s != nil && s.PageTokens() != l.pageTokens {
		panic("kvcache: Bind page-size mismatch")
	}
	l.store = s
	l.quantBits = quantBits
}

// pageOf returns the page index of token position p.
func (l *Ledger) pageOf(p int) int { return p / l.pageTokens }

// NumPages returns the number of residency pages covering the tokens.
func (l *Ledger) NumPages() int { return len(l.tiers) }

// Extend registers n new tokens at the given tier (tokens are created on the
// device during prefill/decode, then typically offloaded). A page partially
// covered by the previous length adopts t only if it was device-resident or
// t is TierDevice — fresh tokens are written on device, which pulls their
// page's simulated copy back regardless of where the older rows sat.
func (l *Ledger) Extend(n int, t Tier) {
	if n < 0 {
		panic("kvcache: Extend with negative count")
	}
	prev := l.n
	l.n += n
	if n > 0 && prev%l.pageTokens != 0 && t == TierDevice {
		// The boundary page was partially filled and gains fresh device rows.
		l.tiers[len(l.tiers)-1] = TierDevice
	}
	want := (l.n + l.pageTokens - 1) / l.pageTokens
	for len(l.tiers) < want {
		l.tiers = append(l.tiers, t)
	}
}

// Len returns the number of registered tokens.
func (l *Ledger) Len() int { return l.n }

// OffloadAll marks every page host-resident (the post-prefill offload of
// Fig. 5, and the periodic decode-time offload every m steps).
func (l *Ledger) OffloadAll() {
	for i := range l.tiers {
		l.demote(i)
	}
}

// Offload marks the pages fully contained in token range [from, to) as
// host-resident; partially covered boundary pages keep their device copy.
func (l *Ledger) Offload(from, to int) {
	first := (from + l.pageTokens - 1) / l.pageTokens // first fully covered
	last := to / l.pageTokens                         // one past last fully covered
	hi := min(last, len(l.tiers))
	for p := first; p < hi; p++ {
		l.demote(p)
	}
	// The final partial page is offloadable only when it ends the ledger's
	// registered range exactly at to (nothing newer lives on it).
	if to == l.n && to%l.pageTokens != 0 && last < len(l.tiers) && from <= last*l.pageTokens {
		l.demote(last)
	}
}

// Fetch requests the given token positions for attention. Every page holding
// a requested position is promoted exactly once: host pages count as
// transfers, device pages as hits. It returns the number of pages
// transferred.
func (l *Ledger) Fetch(positions []int) int {
	moved := 0
	if l.pageTokens == 1 {
		// Token-granular fast path: one page per position, no dedup needed.
		for _, p := range positions {
			if l.tiers[p] == TierHost {
				l.promote(p)
				l.HostToDevice++
				moved++
			} else {
				l.DeviceHits++
			}
		}
		return moved
	}
	l.scratch = l.scratch[:0]
	for _, p := range positions {
		l.scratch = append(l.scratch, l.pageOf(p))
	}
	sort.Ints(l.scratch)
	last := -1
	for _, pg := range l.scratch {
		if pg == last {
			continue
		}
		last = pg
		if l.tiers[pg] == TierHost {
			l.promote(pg)
			l.HostToDevice++
			moved++
		} else {
			l.DeviceHits++
		}
	}
	return moved
}

// Evict marks every page containing one of the positions host-resident
// without counting a transfer (device memory reclaimed; the host copy was
// never deleted).
func (l *Ledger) Evict(positions []int) {
	for _, p := range positions {
		l.demote(l.pageOf(p))
	}
}

// TierOf reports the current tier of token p (the tier of its page).
func (l *Ledger) TierOf(p int) Tier { return l.tiers[l.pageOf(p)] }

// ResetCounters zeroes the transfer counters, keeping residency state.
func (l *Ledger) ResetCounters() {
	l.HostToDevice = 0
	l.DeviceHits = 0
}

func (l *Ledger) promote(pg int) {
	l.tiers[pg] = TierDevice
	if l.store != nil && pg < l.store.NumPages() && l.store.PageQuantized(pg) {
		// Dequantize-on-fetch: touching the page restores float storage.
		_ = l.store.KeyPage(pg)
	}
}

func (l *Ledger) demote(pg int) {
	l.tiers[pg] = TierHost
	if l.store != nil && pg < l.store.NumPages() {
		l.store.QuantizePage(pg, l.quantBits)
	}
}

package kvcache

import "testing"

// Compute-quantization watermark semantics (DESIGN.md §12): QuantizeFullPages
// offers each full page exactly once, never touches the tail, skips pages
// shared at offer time (which then stay float32 for life), and Truncate
// rewinds the watermark so re-grown positions are offered again.

func TestComputeQuantFullPagesAndTail(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 4)
	s.SetComputeQuant(8)
	fillN(s, 0, 20) // 2 full pages + 4-row tail
	s.QuantizeFullPages()
	if !s.PageQuantized(0) || !s.PageQuantized(1) {
		t.Fatal("full pages not quantized")
	}
	if s.PageQuantized(2) {
		t.Fatal("tail page quantized while partially filled")
	}
	if qk, qv := s.PageQuant(0); qk == nil || qv == nil {
		t.Fatal("PageQuant nil for a quantized page")
	}
	if qk, qv := s.PageQuant(2); qk != nil || qv != nil {
		t.Fatal("PageQuant non-nil for the float tail")
	}
	// Growing the tail into a full page re-arms exactly the new page.
	fillN(s, 20, 4)
	s.QuantizeFullPages()
	if !s.PageQuantized(2) {
		t.Fatal("newly filled page not offered")
	}
	// Restoring reads still decode correct-magnitude rows (lossy, so compare
	// against the quantization error bound rather than exactly).
	k := s.Key(5)
	if diff := k[1] - float32(5*10+1); diff > 0.5 || diff < -0.5 {
		t.Fatalf("restored row diverged beyond quant error: %v", k[1])
	}
}

func TestComputeQuantSkipsSharedPagesForever(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 4)
	fillN(s, 0, 16)
	f := s.Fork() // both full pages now shared
	s.SetComputeQuant(8)
	s.QuantizeFullPages()
	if s.PageQuantized(0) || s.PageQuantized(1) {
		t.Fatal("shared page quantized under fork")
	}
	f.Free()
	// The offer already happened; dropping the fork must not re-offer.
	s.QuantizeFullPages()
	if s.PageQuantized(0) || s.PageQuantized(1) {
		t.Fatal("page re-offered after watermark passed it")
	}
	// New growth past the watermark is still offered.
	fillN(s, 16, 8)
	s.QuantizeFullPages()
	if !s.PageQuantized(2) {
		t.Fatal("post-fork growth not quantized")
	}
}

func TestComputeQuantTruncateRewindsWatermark(t *testing.T) {
	a := NewArena(8, nil)
	s := NewStoreIn(a, 4)
	s.SetComputeQuant(4)
	fillN(s, 0, 16)
	s.QuantizeFullPages()
	s.Truncate(8) // drops page 1; watermark must rewind to 1
	fillN(s, 8, 8)
	s.QuantizeFullPages()
	if !s.PageQuantized(1) {
		t.Fatal("regrown page not re-offered after Truncate")
	}
	// Free resets everything for store reuse.
	s.Free()
	fillN(s, 0, 8)
	s.QuantizeFullPages()
	if !s.PageQuantized(0) {
		t.Fatal("watermark not reset by Free")
	}
}

package kvcache

import (
	"fmt"
	"sync"
)

// Accountant tracks aggregate simulated device residency across many
// concurrent sequences against a global budget. Units are per-(layer, head)
// token slots — the same unit as a Sequence's per-head KV budget — so a
// sequence that keeps at most B tokens per head device-resident accounts for
// B slots regardless of the model's layer/head count (every sequence scales
// by the same factor).
//
// The serving engine reserves a sequence's worst-case residency at admission
// time and releases it at retirement, which is what turns the per-sequence
// Tier ledgers into a multi-tenant admission-control policy.
//
// An Accountant is safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
}

// NewAccountant returns an accountant with the given capacity in token
// slots. capacity <= 0 means unlimited.
func NewAccountant(capacity int64) *Accountant {
	return &Accountant{capacity: capacity}
}

// Capacity returns the configured capacity (<= 0 for unlimited).
func (a *Accountant) Capacity() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}

// TryReserve atomically reserves n token slots if they fit, reporting
// whether the reservation was granted. n must be non-negative.
func (a *Accountant) TryReserve(n int64) bool {
	if n < 0 {
		panic("kvcache: TryReserve with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity > 0 && a.used+n > a.capacity {
		return false
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return true
}

// Grow reserves n slots unconditionally, even past capacity. The paged arena
// uses it for page allocations: admission control gates *requests* against
// the budget (TryReserve), but an admitted sequence's decode appends must
// never fail mid-flight — growth past capacity shows up in Used/Peak and
// throttles the next admission instead.
func (a *Accountant) Grow(n int64) {
	if n < 0 {
		panic("kvcache: Grow with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
}

// Release returns n previously reserved slots. It panics if more is released
// than is currently reserved (a double-release bug in the caller).
func (a *Accountant) Release(n int64) {
	if n < 0 {
		panic("kvcache: Release with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.used {
		panic(fmt.Sprintf("kvcache: Release(%d) exceeds %d reserved", n, a.used))
	}
	a.used -= n
}

// Used returns the currently reserved slot count.
func (a *Accountant) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark of reserved slots.
func (a *Accountant) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

package kvcache

import (
	"fmt"
	"sync"
)

// Accountant tracks aggregate simulated device residency across many
// concurrent sequences against a global budget. Units are per-(layer, head)
// token slots — the same unit as a Sequence's per-head KV budget — so a
// sequence that keeps at most B tokens per head device-resident accounts for
// B slots regardless of the model's layer/head count (every sequence scales
// by the same factor).
//
// The serving engine reserves a sequence's worst-case residency at admission
// time and releases it at retirement, which is what turns the per-sequence
// Tier ledgers into a multi-tenant admission-control policy.
//
// An Accountant is safe for concurrent use.
//
// Two-tier accounting: an accountant built with NewTieredAccountant also
// carries a host-tier capacity. used stays the *total* footprint across both
// tiers; hostUsed is the portion currently marked host-resident (spilled),
// so device residency is used − hostUsed. TryReserve then admits against the
// combined capacity — a request fits if device + host together can hold it —
// and the serving engine keeps the device side under its own capacity by
// moving cold slots host-ward (MoveToHost) between rounds.
type Accountant struct {
	mu       sync.Mutex
	capacity int64 // device capacity
	hostCap  int64 // host capacity (0 = no host tier)
	used     int64 // total footprint, both tiers
	peak     int64
	hostUsed int64
	hostPeak int64
}

// NewAccountant returns an accountant with the given capacity in token
// slots. capacity <= 0 means unlimited.
func NewAccountant(capacity int64) *Accountant {
	return &Accountant{capacity: capacity}
}

// NewTieredAccountant returns an accountant with separate device and host
// capacities. deviceCap <= 0 means unlimited (hostCap is then irrelevant);
// hostCap <= 0 disables the host tier (single-tier behavior).
func NewTieredAccountant(deviceCap, hostCap int64) *Accountant {
	if hostCap < 0 {
		hostCap = 0
	}
	return &Accountant{capacity: deviceCap, hostCap: hostCap}
}

// Capacity returns the configured capacity (<= 0 for unlimited).
func (a *Accountant) Capacity() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}

// TryReserve atomically reserves n token slots if they fit, reporting
// whether the reservation was granted. With a host tier configured, the
// reservation is admitted against the combined device + host capacity; the
// caller is responsible for keeping device residency under the device
// capacity via MoveToHost. n must be non-negative.
func (a *Accountant) TryReserve(n int64) bool {
	if n < 0 {
		panic("kvcache: TryReserve with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity > 0 && a.used+n > a.capacity+a.hostCap {
		return false
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return true
}

// HostCapacity returns the host-tier capacity (0 when no host tier).
func (a *Accountant) HostCapacity() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hostCap
}

// TotalCapacity returns device + host capacity (<= 0 for unlimited).
func (a *Accountant) TotalCapacity() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity <= 0 {
		return a.capacity
	}
	return a.capacity + a.hostCap
}

// HostUsed returns the slots currently marked host-resident.
func (a *Accountant) HostUsed() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hostUsed
}

// HostPeak returns the high-water mark of host-resident slots.
func (a *Accountant) HostPeak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hostPeak
}

// DeviceUsed returns the device-resident slots (total − host).
func (a *Accountant) DeviceUsed() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used - a.hostUsed
}

// MoveToHost marks n currently device-resident slots host-resident (a spill:
// total footprint unchanged, device side shrinks). Panics if n exceeds
// device residency.
func (a *Accountant) MoveToHost(n int64) {
	if n < 0 {
		panic("kvcache: MoveToHost with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.used-a.hostUsed {
		panic(fmt.Sprintf("kvcache: MoveToHost(%d) exceeds %d device-resident slots", n, a.used-a.hostUsed))
	}
	a.hostUsed += n
	if a.hostUsed > a.hostPeak {
		a.hostPeak = a.hostUsed
	}
}

// MoveToDevice marks n host-resident slots device-resident again (unspill).
// Panics if n exceeds host residency.
func (a *Accountant) MoveToDevice(n int64) {
	if n < 0 {
		panic("kvcache: MoveToDevice with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.hostUsed {
		panic(fmt.Sprintf("kvcache: MoveToDevice(%d) exceeds %d host-resident slots", n, a.hostUsed))
	}
	a.hostUsed -= n
}

// Grow reserves n slots unconditionally, even past capacity. The paged arena
// uses it for page allocations: admission control gates *requests* against
// the budget (TryReserve), but an admitted sequence's decode appends must
// never fail mid-flight — growth past capacity shows up in Used/Peak and
// throttles the next admission instead.
func (a *Accountant) Grow(n int64) {
	if n < 0 {
		panic("kvcache: Grow with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
}

// Release returns n previously reserved slots. It panics if more is released
// than is currently reserved (a double-release bug in the caller).
func (a *Accountant) Release(n int64) {
	if n < 0 {
		panic("kvcache: Release with negative size")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.used {
		panic(fmt.Sprintf("kvcache: Release(%d) exceeds %d reserved", n, a.used))
	}
	a.used -= n
	if a.hostUsed > a.used {
		// Releasing pages that were accounted host-resident (a spilled
		// sequence retiring) shrinks the host side with them.
		a.hostUsed = a.used
	}
}

// Used returns the currently reserved slot count.
func (a *Accountant) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark of reserved slots.
func (a *Accountant) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

package kvcache

import "testing"

func TestStoreAppendAndAccess(t *testing.T) {
	s := NewStore(2)
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	pos := s.Append([]float32{1, 2}, []float32{3, 4})
	if pos != 0 || s.Len() != 1 {
		t.Fatalf("Append pos=%d len=%d", pos, s.Len())
	}
	if k := s.Key(0); k[0] != 1 || k[1] != 2 {
		t.Fatalf("Key(0) = %v", k)
	}
	if v := s.Value(0); v[0] != 3 || v[1] != 4 {
		t.Fatalf("Value(0) = %v", v)
	}
}

func TestStoreAppendBatch(t *testing.T) {
	s := NewStore(2)
	first := s.AppendBatch([]float32{1, 2, 3, 4}, []float32{5, 6, 7, 8})
	if first != 0 || s.Len() != 2 {
		t.Fatalf("AppendBatch first=%d len=%d", first, s.Len())
	}
	if s.Key(1)[0] != 3 || s.Value(1)[1] != 8 {
		t.Fatal("AppendBatch wrong layout")
	}
	if len(s.Keys()) != 4 || len(s.Values()) != 4 {
		t.Fatal("packed accessors wrong length")
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore(1)
	s.Append([]float32{1}, []float32{2})
	c := s.Clone()
	c.Append([]float32{9}, []float32{9})
	if s.Len() != 1 {
		t.Fatal("Clone shares length")
	}
	c.Key(0)[0] = 42
	if s.Key(0)[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStoreTruncate(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 5; i++ {
		s.Append([]float32{float32(i)}, []float32{0})
	}
	s.Truncate(2)
	if s.Len() != 2 || s.Key(1)[0] != 1 {
		t.Fatalf("Truncate len=%d", s.Len())
	}
}

func TestStorePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"dim-mismatch", func() { NewStore(2).Append([]float32{1}, []float32{1, 2}) }},
		{"batch-mismatch", func() { NewStore(2).AppendBatch([]float32{1, 2, 3}, []float32{1, 2, 3}) }},
		{"zero-dim", func() { NewStore(0) }},
		{"truncate-range", func() { NewStore(1).Truncate(1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			c.f()
		})
	}
}

func TestLedgerFetchCountsTransfers(t *testing.T) {
	l := NewLedger()
	l.Extend(4, TierDevice)
	l.OffloadAll()
	moved := l.Fetch([]int{0, 1})
	if moved != 2 || l.HostToDevice != 2 || l.DeviceHits != 0 {
		t.Fatalf("fetch after offload: moved=%d h2d=%d hits=%d", moved, l.HostToDevice, l.DeviceHits)
	}
	// Second fetch of the same tokens: all hits.
	moved = l.Fetch([]int{0, 1})
	if moved != 0 || l.DeviceHits != 2 {
		t.Fatalf("second fetch: moved=%d hits=%d", moved, l.DeviceHits)
	}
}

func TestLedgerEvict(t *testing.T) {
	l := NewLedger()
	l.Extend(2, TierDevice)
	l.Evict([]int{0})
	if l.TierOf(0) != TierHost || l.TierOf(1) != TierDevice {
		t.Fatal("Evict tier state wrong")
	}
	if l.HostToDevice != 0 {
		t.Fatal("Evict must not count transfers")
	}
}

func TestLedgerPartialOffload(t *testing.T) {
	l := NewLedger()
	l.Extend(4, TierDevice)
	l.Offload(1, 3)
	want := []Tier{TierDevice, TierHost, TierHost, TierDevice}
	for i, w := range want {
		if l.TierOf(i) != w {
			t.Fatalf("token %d tier = %v, want %v", i, l.TierOf(i), w)
		}
	}
}

func TestLedgerResetCounters(t *testing.T) {
	l := NewLedger()
	l.Extend(1, TierHost)
	l.Fetch([]int{0})
	l.ResetCounters()
	if l.HostToDevice != 0 || l.DeviceHits != 0 {
		t.Fatal("ResetCounters did not zero")
	}
	if l.TierOf(0) != TierDevice {
		t.Fatal("ResetCounters must keep residency")
	}
}

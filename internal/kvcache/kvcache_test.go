package kvcache

import (
	"sync"
	"testing"
)

func TestStoreAppendAndAccess(t *testing.T) {
	s := NewStore(2)
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	pos := s.Append([]float32{1, 2}, []float32{3, 4})
	if pos != 0 || s.Len() != 1 {
		t.Fatalf("Append pos=%d len=%d", pos, s.Len())
	}
	if k := s.Key(0); k[0] != 1 || k[1] != 2 {
		t.Fatalf("Key(0) = %v", k)
	}
	if v := s.Value(0); v[0] != 3 || v[1] != 4 {
		t.Fatalf("Value(0) = %v", v)
	}
}

func TestStoreAppendBatch(t *testing.T) {
	s := NewStore(2)
	first := s.AppendBatch([]float32{1, 2, 3, 4}, []float32{5, 6, 7, 8})
	if first != 0 || s.Len() != 2 {
		t.Fatalf("AppendBatch first=%d len=%d", first, s.Len())
	}
	if s.Key(1)[0] != 3 || s.Value(1)[1] != 8 {
		t.Fatal("AppendBatch wrong layout")
	}
	if len(s.Keys()) != 4 || len(s.Values()) != 4 {
		t.Fatal("packed accessors wrong length")
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore(1)
	s.Append([]float32{1}, []float32{2})
	c := s.Clone()
	c.Append([]float32{9}, []float32{9})
	if s.Len() != 1 {
		t.Fatal("Clone shares length")
	}
	c.Key(0)[0] = 42
	if s.Key(0)[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStoreTruncate(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 5; i++ {
		s.Append([]float32{float32(i)}, []float32{0})
	}
	s.Truncate(2)
	if s.Len() != 2 || s.Key(1)[0] != 1 {
		t.Fatalf("Truncate len=%d", s.Len())
	}
}

func TestStorePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"dim-mismatch", func() { NewStore(2).Append([]float32{1}, []float32{1, 2}) }},
		{"batch-mismatch", func() { NewStore(2).AppendBatch([]float32{1, 2, 3}, []float32{1, 2, 3}) }},
		{"zero-dim", func() { NewStore(0) }},
		{"truncate-range", func() { NewStore(1).Truncate(1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			c.f()
		})
	}
}

func TestStoreForkIndependentAppends(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 3; i++ {
		s.Append([]float32{float32(i)}, []float32{float32(10 + i)})
	}
	f1 := s.Fork()
	f2 := s.Fork()

	// Each fork and the original continue independently.
	s.Append([]float32{100}, []float32{100})
	f1.Append([]float32{200}, []float32{200})
	f2.Append([]float32{300}, []float32{300})

	if s.Len() != 4 || f1.Len() != 4 || f2.Len() != 4 {
		t.Fatalf("lengths after fork appends: %d %d %d", s.Len(), f1.Len(), f2.Len())
	}
	if s.Key(3)[0] != 100 || f1.Key(3)[0] != 200 || f2.Key(3)[0] != 300 {
		t.Fatalf("fork appends bled: %v %v %v", s.Key(3), f1.Key(3), f2.Key(3))
	}
	// The shared prefix is intact everywhere.
	for i := 0; i < 3; i++ {
		if s.Key(i)[0] != float32(i) || f1.Key(i)[0] != float32(i) || f2.Key(i)[0] != float32(i) {
			t.Fatalf("shared prefix corrupted at %d", i)
		}
		if f1.Value(i)[0] != float32(10+i) {
			t.Fatalf("fork value prefix corrupted at %d", i)
		}
	}
}

func TestStoreForkOfFork(t *testing.T) {
	s := NewStore(2)
	s.Append([]float32{1, 2}, []float32{3, 4})
	f := s.Fork()
	f.Append([]float32{5, 6}, []float32{7, 8})
	g := f.Fork()
	g.Append([]float32{9, 9}, []float32{9, 9})
	f.Append([]float32{5, 5}, []float32{5, 5})
	if g.Key(2)[0] != 9 || f.Key(2)[0] != 5 {
		t.Fatalf("fork-of-fork shares tail: g=%v f=%v", g.Key(2), f.Key(2))
	}
}

func TestAccountantReserveRelease(t *testing.T) {
	a := NewAccountant(100)
	if !a.TryReserve(60) || !a.TryReserve(40) {
		t.Fatal("reservations within capacity refused")
	}
	if a.TryReserve(1) {
		t.Fatal("over-capacity reservation granted")
	}
	a.Release(50)
	if a.Used() != 50 || a.Peak() != 100 {
		t.Fatalf("used=%d peak=%d", a.Used(), a.Peak())
	}
	if !a.TryReserve(50) {
		t.Fatal("freed capacity not reusable")
	}
}

func TestAccountantUnlimited(t *testing.T) {
	a := NewAccountant(0)
	if !a.TryReserve(1 << 40) {
		t.Fatal("unlimited accountant refused")
	}
}

func TestAccountantDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	a := NewAccountant(10)
	a.TryReserve(5)
	a.Release(6)
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if a.TryReserve(8) {
					a.Release(8)
				}
			}
		}()
	}
	wg.Wait()
	if a.Used() != 0 {
		t.Fatalf("leaked reservations: %d", a.Used())
	}
	if a.Peak() > 64 {
		t.Fatalf("peak %d exceeds capacity", a.Peak())
	}
}

func TestLedgerFetchCountsTransfers(t *testing.T) {
	l := NewLedger()
	l.Extend(4, TierDevice)
	l.OffloadAll()
	moved := l.Fetch([]int{0, 1})
	if moved != 2 || l.HostToDevice != 2 || l.DeviceHits != 0 {
		t.Fatalf("fetch after offload: moved=%d h2d=%d hits=%d", moved, l.HostToDevice, l.DeviceHits)
	}
	// Second fetch of the same tokens: all hits.
	moved = l.Fetch([]int{0, 1})
	if moved != 0 || l.DeviceHits != 2 {
		t.Fatalf("second fetch: moved=%d hits=%d", moved, l.DeviceHits)
	}
}

func TestLedgerEvict(t *testing.T) {
	l := NewLedger()
	l.Extend(2, TierDevice)
	l.Evict([]int{0})
	if l.TierOf(0) != TierHost || l.TierOf(1) != TierDevice {
		t.Fatal("Evict tier state wrong")
	}
	if l.HostToDevice != 0 {
		t.Fatal("Evict must not count transfers")
	}
}

func TestLedgerPartialOffload(t *testing.T) {
	l := NewLedger()
	l.Extend(4, TierDevice)
	l.Offload(1, 3)
	want := []Tier{TierDevice, TierHost, TierHost, TierDevice}
	for i, w := range want {
		if l.TierOf(i) != w {
			t.Fatalf("token %d tier = %v, want %v", i, l.TierOf(i), w)
		}
	}
}

// TestLedgerInterleavedPromoteEvict walks a ledger through the cadence the
// serving path produces — decode-time extends, selective fetches (promote),
// cache evictions, periodic offloads — and checks tier state and counters
// after every move.
func TestLedgerInterleavedPromoteEvict(t *testing.T) {
	l := NewLedger()
	l.Extend(6, TierDevice)
	l.OffloadAll() // post-prefill offload: all host

	// Step 1: select {0,1,2} — three misses.
	if moved := l.Fetch([]int{0, 1, 2}); moved != 3 {
		t.Fatalf("step1 moved=%d", moved)
	}
	// Evict 2 (cache pressure), then re-select {1,2}: one hit, one miss.
	l.Evict([]int{2})
	if moved := l.Fetch([]int{1, 2}); moved != 1 {
		t.Fatalf("step2 moved=%d", moved)
	}
	if l.HostToDevice != 4 || l.DeviceHits != 1 {
		t.Fatalf("counters after step2: h2d=%d hits=%d", l.HostToDevice, l.DeviceHits)
	}

	// Decode appends two device-resident tokens, then a periodic offload of
	// the old range only: new tokens must stay device-resident.
	l.Extend(2, TierDevice)
	l.Offload(0, 6)
	for i := 0; i < 6; i++ {
		if l.TierOf(i) != TierHost {
			t.Fatalf("token %d not offloaded", i)
		}
	}
	if l.TierOf(6) != TierDevice || l.TierOf(7) != TierDevice {
		t.Fatal("offload clobbered fresh decode tokens")
	}

	// Promote an evicted-then-offloaded token again: exactly one transfer.
	before := l.HostToDevice
	l.Fetch([]int{2})
	if l.HostToDevice != before+1 {
		t.Fatal("re-promote after offload not counted as transfer")
	}
	// Evict must never touch transfer counters, however often repeated.
	before = l.HostToDevice
	hits := l.DeviceHits
	l.Evict([]int{2})
	l.Evict([]int{2})
	if l.HostToDevice != before || l.DeviceHits != hits {
		t.Fatal("Evict moved the transfer counters")
	}
	if l.Len() != 8 {
		t.Fatalf("ledger length %d, want 8", l.Len())
	}
}

func TestLedgerResetCounters(t *testing.T) {
	l := NewLedger()
	l.Extend(1, TierHost)
	l.Fetch([]int{0})
	l.ResetCounters()
	if l.HostToDevice != 0 || l.DeviceHits != 0 {
		t.Fatal("ResetCounters did not zero")
	}
	if l.TierOf(0) != TierDevice {
		t.Fatal("ResetCounters must keep residency")
	}
}

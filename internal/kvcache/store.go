// Package kvcache implements the key/value cache substrate: per-(layer, head)
// append-only stores for key and value vectors, with gather primitives used
// by sparse attention, and a two-tier (host/device) residency ledger used by
// the offloading simulation.
//
// The paper's system offloads the full K/V to CPU memory after prefill and
// keeps only selected clusters on the GPU (§IV-A). In this reproduction the
// data always lives in process memory; the Tier ledger records *where the
// simulated copy resides* so the cost model can charge PCIe transfers for
// host-resident tokens.
package kvcache

import "fmt"

// Store holds the K and V vectors of a single (layer, head) pair.
// Vectors are appended in token order; index == token position.
type Store struct {
	headDim int
	keys    []float32
	vals    []float32
	n       int
}

// NewStore returns an empty store for vectors of the given head dimension.
func NewStore(headDim int) *Store {
	if headDim <= 0 {
		panic("kvcache: non-positive head dimension")
	}
	return &Store{headDim: headDim}
}

// HeadDim returns the per-head channel count.
func (s *Store) HeadDim() int { return s.headDim }

// Len returns the number of tokens stored.
func (s *Store) Len() int { return s.n }

// Append adds the key and value of one token and returns its position.
func (s *Store) Append(k, v []float32) int {
	if len(k) != s.headDim || len(v) != s.headDim {
		panic(fmt.Sprintf("kvcache: Append dim mismatch: got k=%d v=%d want %d", len(k), len(v), s.headDim))
	}
	s.keys = append(s.keys, k...)
	s.vals = append(s.vals, v...)
	s.n++
	return s.n - 1
}

// AppendBatch adds n tokens whose keys and values are packed row-major in
// ks and vs. It returns the position of the first appended token.
func (s *Store) AppendBatch(ks, vs []float32) int {
	if len(ks) != len(vs) || len(ks)%s.headDim != 0 {
		panic("kvcache: AppendBatch length mismatch")
	}
	first := s.n
	s.keys = append(s.keys, ks...)
	s.vals = append(s.vals, vs...)
	s.n += len(ks) / s.headDim
	return first
}

// Key returns the key vector of token i (aliasing internal storage).
func (s *Store) Key(i int) []float32 {
	return s.keys[i*s.headDim : (i+1)*s.headDim]
}

// Value returns the value vector of token i (aliasing internal storage).
func (s *Store) Value(i int) []float32 {
	return s.vals[i*s.headDim : (i+1)*s.headDim]
}

// Keys returns the packed key storage for tokens [0, Len()). Row-major,
// aliasing internal storage; callers must not resize.
func (s *Store) Keys() []float32 { return s.keys[:s.n*s.headDim] }

// Values returns the packed value storage, aliasing internal storage.
func (s *Store) Values() []float32 { return s.vals[:s.n*s.headDim] }

// Clone returns a deep copy of the store. Used to snapshot the post-prefill
// state so several compression methods can decode from identical caches.
func (s *Store) Clone() *Store {
	out := NewStore(s.headDim)
	out.keys = append([]float32(nil), s.keys...)
	out.vals = append([]float32(nil), s.vals...)
	out.n = s.n
	return out
}

// Fork returns a store that shares s's current contents without copying.
// Both stores may keep appending independently: the fork's slices are
// capacity-clamped to the current length, so the first Append on either side
// that outgrows the shared backing reallocates instead of overwriting the
// other store's tokens. Existing rows are never mutated in place, which makes
// the shared prefix safe to read concurrently from both stores.
//
// Fork is the substrate of prefix-cache sharing in the serving engine: one
// prefill of a shared document is forked into every sequence that continues
// from it.
func (s *Store) Fork() *Store {
	nd := s.n * s.headDim
	return &Store{
		headDim: s.headDim,
		keys:    s.keys[:nd:nd],
		vals:    s.vals[:nd:nd],
		n:       s.n,
	}
}

// Truncate drops all tokens at positions >= n. Used by harnesses that rewind
// a sequence to a snapshot point.
func (s *Store) Truncate(n int) {
	if n < 0 || n > s.n {
		panic("kvcache: Truncate out of range")
	}
	s.keys = s.keys[:n*s.headDim]
	s.vals = s.vals[:n*s.headDim]
	s.n = n
}

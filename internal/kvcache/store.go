// Package kvcache implements the key/value cache substrate: per-(layer, head)
// paged stores for key and value vectors backed by a reference-counted page
// arena, with gather primitives used by sparse attention, a two-tier
// (host/device) residency ledger used by the offloading simulation, and a
// cross-sequence accountant for admission control.
//
// The paper's system offloads the full K/V to CPU memory after prefill and
// keeps only selected clusters on the GPU (§IV-A). In this reproduction the
// data always lives in process memory; the Tier ledger records *where the
// simulated copy resides* so the cost model can charge PCIe transfers for
// host-resident pages.
//
// Storage is block-granular (DESIGN.md §7): a Store is a page table over an
// Arena of fixed-size pages. Fork shares pages by reference count with
// copy-on-write on the first post-fork Append/Truncate divergence, so two
// requests that share only the first N tokens share exactly the pages fully
// covered by those N tokens — never the divergent tail's ancestors.
package kvcache

import (
	"fmt"

	"clusterkv/internal/quant"
)

// Store holds the K and V vectors of a single (layer, head) pair as a page
// table over its arena. Vectors are appended in token order; index == token
// position.
type Store struct {
	headDim int
	arena   *Arena
	pages   []*page
	n       int

	// flatK/flatV are the lazily materialised contiguous views behind
	// Keys/Values; flatN is the number of tokens synced into them. Rows are
	// append-only and COW copies preserve row values, so synced rows stay
	// valid until Truncate rewinds flatN.
	flatK, flatV []float32
	flatN        int

	// computeBits, when non-zero, promotes KIVI quantization from storage
	// format to *compute* format (DESIGN.md §12): QuantizeFullPages converts
	// full pages in place and attention kernels read the codes directly via
	// PageQuant instead of restoring floats. Zero (the default) keeps the
	// exact bit-identical decode path. qmark is the page index below which
	// pages have already been offered for compute quantization; pages skipped
	// there (shared with a fork at the time) stay float32 permanently — the
	// kernels dispatch per page, so mixed stores are fine.
	computeBits int
	qmark       int
}

// NewStore returns an empty store for vectors of the given head dimension,
// allocating from the process-wide DefaultArena.
func NewStore(headDim int) *Store { return NewStoreIn(DefaultArena(), headDim) }

// NewStoreIn returns an empty store allocating from the given arena. Serving
// engines pass their own accountant-backed arena so every page the store
// allocates is charged against the engine's KV budget.
func NewStoreIn(a *Arena, headDim int) *Store {
	if headDim <= 0 {
		panic("kvcache: non-positive head dimension")
	}
	if a == nil {
		panic("kvcache: nil arena")
	}
	return &Store{headDim: headDim, arena: a}
}

// HeadDim returns the per-head channel count.
func (s *Store) HeadDim() int { return s.headDim }

// Len returns the number of tokens stored.
func (s *Store) Len() int { return s.n }

// Arena returns the arena this store allocates from.
func (s *Store) Arena() *Arena { return s.arena }

// PageTokens returns the arena page size in tokens.
func (s *Store) PageTokens() int { return s.arena.pageTokens }

// NumPages returns the number of pages covering tokens [0, Len()).
func (s *Store) NumPages() int { return len(s.pages) }

// PageRows returns the number of valid token rows in page p.
func (s *Store) PageRows(p int) int {
	rows := s.n - p*s.arena.pageTokens
	if rows > s.arena.pageTokens {
		rows = s.arena.pageTokens
	}
	if rows < 0 {
		rows = 0
	}
	return rows
}

// PageRef returns the reference count of page p — introspection for sharing
// tests and the pagedkv experiment (a count > 1 means the page is shared with
// a fork or snapshot).
func (s *Store) PageRef(p int) int { return int(s.pages[p].refs.Load()) }

// KeyPage returns the packed key rows of page p (PageRows(p)×HeadDim,
// row-major, aliasing page storage). A host-quantized page is restored
// (dequantized) first.
func (s *Store) KeyPage(p int) []float32 {
	pg := s.pages[p]
	if pg.quantized.Load() {
		pg.restore(s.arena.pageTokens, s.headDim)
	}
	return pg.keys[:s.PageRows(p)*s.headDim]
}

// ValuePage returns the packed value rows of page p (see KeyPage).
func (s *Store) ValuePage(p int) []float32 {
	pg := s.pages[p]
	if pg.quantized.Load() {
		pg.restore(s.arena.pageTokens, s.headDim)
	}
	return pg.vals[:s.PageRows(p)*s.headDim]
}

// Key returns the key vector of token i (aliasing page storage).
func (s *Store) Key(i int) []float32 {
	P := s.arena.pageTokens
	pg := s.pages[i/P]
	if pg.quantized.Load() {
		pg.restore(P, s.headDim)
	}
	off := (i % P) * s.headDim
	return pg.keys[off : off+s.headDim]
}

// Value returns the value vector of token i (aliasing page storage).
func (s *Store) Value(i int) []float32 {
	P := s.arena.pageTokens
	pg := s.pages[i/P]
	if pg.quantized.Load() {
		pg.restore(P, s.headDim)
	}
	off := (i % P) * s.headDim
	return pg.vals[off : off+s.headDim]
}

// writableTail returns the tail page with room for one more row, allocating a
// fresh page at a page boundary and copy-on-writing a shared (or quantized)
// tail so the write can never be observed through a fork or snapshot.
func (s *Store) writableTail() *page {
	P := s.arena.pageTokens
	if s.n == len(s.pages)*P {
		pg := s.arena.alloc(s.headDim)
		s.pages = append(s.pages, pg)
		return pg
	}
	last := len(s.pages) - 1
	pg := s.pages[last]
	if pg.refs.Load() == 1 && !pg.quantized.Load() {
		return pg
	}
	// COW: the tail page is shared with a fork/snapshot (or holds only a
	// quantized form). Copy the rows this store still uses into a private
	// page — decoding without restoring, so a shared quantized source keeps
	// its form for its other holders — and drop our reference.
	used := s.n - last*P
	np := s.arena.alloc(s.headDim)
	if used > 0 {
		pg.readRows(np.keys[:used*s.headDim], np.vals[:used*s.headDim], 0, used, s.headDim)
	}
	s.arena.release(pg, s.headDim)
	s.pages[last] = np
	return np
}

// Append adds the key and value of one token and returns its position.
func (s *Store) Append(k, v []float32) int {
	if len(k) != s.headDim || len(v) != s.headDim {
		panic(fmt.Sprintf("kvcache: Append dim mismatch: got k=%d v=%d want %d", len(k), len(v), s.headDim))
	}
	pg := s.writableTail()
	off := (s.n % s.arena.pageTokens) * s.headDim
	copy(pg.keys[off:off+s.headDim], k)
	copy(pg.vals[off:off+s.headDim], v)
	s.n++
	return s.n - 1
}

// AppendBatch adds n tokens whose keys and values are packed row-major in
// ks and vs. It returns the position of the first appended token.
func (s *Store) AppendBatch(ks, vs []float32) int {
	if len(ks) != len(vs) || len(ks)%s.headDim != 0 {
		panic("kvcache: AppendBatch length mismatch")
	}
	P := s.arena.pageTokens
	first := s.n
	rows := len(ks) / s.headDim
	done := 0
	for done < rows {
		pg := s.writableTail()
		used := s.n - (len(s.pages)-1)*P
		room := P - used
		take := rows - done
		if take > room {
			take = room
		}
		copy(pg.keys[used*s.headDim:(used+take)*s.headDim], ks[done*s.headDim:(done+take)*s.headDim])
		copy(pg.vals[used*s.headDim:(used+take)*s.headDim], vs[done*s.headDim:(done+take)*s.headDim])
		s.n += take
		done += take
	}
	return first
}

// ReadKeys copies the key rows of tokens [from, to) into dst (grown as
// needed; pass nil to allocate) and returns it, packed row-major. It is the
// non-retaining metadata read: nothing is cached on the store and
// host-quantized pages are decoded without being restored. Selectors that
// need a contiguous key matrix (clustering, SVD) use this with their own
// short-lived buffers instead of Keys(), whose mirror lives as long as the
// store.
func (s *Store) ReadKeys(from, to int, dst []float32) []float32 {
	return s.readRange(from, to, dst, true)
}

// ReadValues is ReadKeys for value rows.
func (s *Store) ReadValues(from, to int, dst []float32) []float32 {
	return s.readRange(from, to, dst, false)
}

func (s *Store) readRange(from, to int, dst []float32, keys bool) []float32 {
	if from < 0 || to > s.n || from > to {
		panic("kvcache: read range out of bounds")
	}
	d := s.headDim
	want := (to - from) * d
	if cap(dst) < want {
		dst = make([]float32, want)
	}
	dst = dst[:want]
	P := s.arena.pageTokens
	for i := from; i < to; {
		p := i / P
		off := i - p*P
		rows := min(s.PageRows(p)-off, to-i)
		out := dst[(i-from)*d : (i-from+rows)*d]
		if keys {
			s.pages[p].readRows(out, nil, off, rows, d)
		} else {
			s.pages[p].readRows(nil, out, off, rows, d)
		}
		i += rows
	}
	return dst
}

// Keys returns the tokens' keys as one packed row-major slice. With paged
// storage this is a materialised contiguous view, synced incrementally on
// call: rows already synced are reused, so amortised cost is O(new tokens)
// (quantizing a page rewinds the watermark, so the experimental host-quant
// flag re-syncs from the first still-quantized page). Callers must treat it
// as read-only; it is the flat-copy fallback kept for selectors and
// conformance harnesses, while hot paths read pages directly
// (KeyPage/ValuePage). Unlike Key/KeyPage, reading through the flat view
// never restores a host-quantized page — metadata reads are measurements,
// not fetches.
func (s *Store) Keys() []float32 {
	s.syncFlat()
	return s.flatK[:s.n*s.headDim]
}

// Values returns the packed value storage (see Keys).
func (s *Store) Values() []float32 {
	s.syncFlat()
	return s.flatV[:s.n*s.headDim]
}

func (s *Store) syncFlat() {
	if s.flatN == s.n {
		return
	}
	d := s.headDim
	want := s.n * d
	if cap(s.flatK) < want {
		nk := make([]float32, want)
		nv := make([]float32, want)
		copy(nk, s.flatK[:s.flatN*d])
		copy(nv, s.flatV[:s.flatN*d])
		s.flatK, s.flatV = nk, nv
	}
	s.flatK = s.flatK[:want]
	s.flatV = s.flatV[:want]
	P := s.arena.pageTokens
	for i := s.flatN; i < s.n; {
		p := i / P
		from := i - p*P
		rows := s.PageRows(p) - from
		// Non-mutating read: a host-quantized page is decoded into the flat
		// view without being restored, so building selector metadata over
		// Keys/Values never disturbs simulated page residency.
		s.pages[p].readRows(s.flatK[i*d:(i+rows)*d], s.flatV[i*d:(i+rows)*d], from, rows, d)
		i += rows
	}
	s.flatN = s.n
}

// Clone returns a deep copy of the store with freshly allocated, exclusively
// owned pages. Used to snapshot the post-prefill state so several compression
// methods can decode from identical caches.
func (s *Store) Clone() *Store {
	out := NewStoreIn(s.arena, s.headDim)
	for p := range s.pages {
		rows := s.PageRows(p)
		np := s.arena.alloc(s.headDim)
		s.pages[p].readRows(np.keys[:rows*s.headDim], np.vals[:rows*s.headDim], 0, rows, s.headDim)
		out.pages = append(out.pages, np)
		out.n += rows
	}
	return out
}

// Fork returns a store that shares s's current pages without copying, by
// retaining a reference on each. Both stores may keep appending
// independently: the first Append (or post-Truncate Append) on a shared tail
// page copies it (copy-on-write), so divergence never mutates rows the other
// side reads — fully common pages stay shared for the stores' lifetimes.
//
// Fork is the substrate of prefix-cache sharing in the serving engine: one
// prefill of a shared document is forked into every sequence that continues
// from it, and two requests sharing only the first N tokens share exactly the
// pages those N tokens cover.
func (s *Store) Fork() *Store {
	out := NewStoreIn(s.arena, s.headDim)
	out.pages = make([]*page, len(s.pages))
	for i, pg := range s.pages {
		s.arena.retain(pg)
		out.pages[i] = pg
	}
	out.n = s.n
	return out
}

// Truncate drops all tokens at positions >= n. Pages beyond the new length
// are released; a partially covered tail page is kept (and copy-on-written on
// the next Append if shared). Used by harnesses that rewind a sequence to a
// snapshot point.
func (s *Store) Truncate(n int) {
	if n < 0 || n > s.n {
		panic("kvcache: Truncate out of range")
	}
	P := s.arena.pageTokens
	keep := (n + P - 1) / P
	for _, pg := range s.pages[keep:] {
		s.arena.release(pg, s.headDim)
	}
	s.pages = s.pages[:keep]
	s.n = n
	if s.flatN > n {
		s.flatN = n
	}
	if full := n / P; s.qmark > full {
		s.qmark = full
	}
}

// Free releases every page reference held by the store, returning pages whose
// count reaches zero to the arena (and their slots to the accountant). The
// store is empty but reusable afterwards; Free is idempotent.
func (s *Store) Free() {
	for _, pg := range s.pages {
		s.arena.release(pg, s.headDim)
	}
	s.pages = s.pages[:0]
	s.n = 0
	s.flatN = 0
	s.qmark = 0
}

// QuantizePage converts page p to a KIVI-style quantized form at the given
// bit width (keys per-channel, values per-token; see internal/quant) — the
// simulated host copy of an offloaded page. It is a no-op when bits is 0,
// the page is shared (siblings keep exact float reads), or p is the
// partially filled tail. Quantization is lossy: any later read restores
// (dequantizes) the page, so opting in trades bit-identical token streams
// for the smaller simulated host footprint.
func (s *Store) QuantizePage(p, bits int) {
	if bits == 0 {
		return
	}
	if bits < 2 || bits > 8 {
		panic("kvcache: QuantizePage bits must be 0 or 2..8")
	}
	rows := s.PageRows(p)
	if rows < s.arena.pageTokens {
		return // tail still being written
	}
	s.pages[p].quantize(bits, rows, s.headDim)
	if s.flatN > p*s.arena.pageTokens {
		// Quantization is lossy; invalidate the flat view so it re-reads the
		// dequantized rows on next sync.
		s.flatN = p * s.arena.pageTokens
	}
}

// PageQuantized reports whether page p currently holds only the quantized
// form.
func (s *Store) PageQuantized(p int) bool { return s.pages[p].quantized.Load() }

// SetComputeQuant opts the store into the quantized *decode compute* path:
// after each decode-step append the model calls QuantizeFullPages, and the
// attention kernels compute scores and weighted sums directly over the int8
// codes (dequantize-free inner loops) for every page holding a quantized
// form. bits 0 disables (the default, exact path). The quantized path is
// deterministic per seed but not bit-identical to float32 — it carries the
// bounded-ULP contract documented in DESIGN.md §12.
func (s *Store) SetComputeQuant(bits int) {
	if bits != 0 && (bits < 2 || bits > 8) {
		panic("kvcache: SetComputeQuant bits must be 0 or 2..8")
	}
	s.computeBits = bits
}

// ComputeQuantBits returns the compute-quantization width (0 = exact path).
func (s *Store) ComputeQuantBits() int { return s.computeBits }

// QuantizeFullPages converts every not-yet-offered full page to the compute
// quantized form at the configured width. Each page is offered exactly once
// (watermarked by qmark): a page shared with a fork or snapshot at offer time
// is skipped and stays float32 for its lifetime, keeping shared prefixes
// exact for their other readers. No-op unless SetComputeQuant enabled the
// path.
func (s *Store) QuantizeFullPages() {
	if s.computeBits == 0 {
		return
	}
	full := s.n / s.arena.pageTokens
	for p := s.qmark; p < full; p++ {
		s.QuantizePage(p, s.computeBits)
	}
	if full > s.qmark {
		s.qmark = full
	}
}

// PageQuant returns page p's quantized tensors (keys per-channel, values
// per-token) when the page currently holds a quantized form, else (nil, nil).
// Unlike KeyPage/ValuePage this never restores: it is the read side of the
// quantized compute path. The returned tensors are immutable snapshots — a
// concurrent restore builds new float storage and drops the page's pointers,
// but never mutates the tensors themselves.
func (s *Store) PageQuant(p int) (qk, qv *quant.Tensor) {
	pg := s.pages[p]
	if !pg.quantized.Load() {
		return nil, nil
	}
	pg.muQ.Lock()
	defer pg.muQ.Unlock()
	if !pg.quantized.Load() {
		return nil, nil
	}
	return pg.qk, pg.qv
}

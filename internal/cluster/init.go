package cluster

import (
	"math"

	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// seedPlusPlus fills cents with k-means++ seeds: the first centroid is a
// uniform sample; each next one is drawn with probability proportional to
// its distance from the nearest already-chosen centroid. Distances follow
// the configured metric (for Cosine and InnerProduct the "distance" is
// 1−similarity, floored at zero).
func seedPlusPlus(cents *tensor.Mat, keys []float32, d int, metric Metric, rnd *rng.RNG) {
	n := len(keys) / d
	c := cents.Rows
	key := func(i int) []float32 { return keys[i*d : (i+1)*d] }

	first := rnd.Intn(n)
	copy(cents.Row(0), key(first))

	// dist[i] is the distance from key i to the nearest chosen centroid.
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = seedDistance(key(i), cents.Row(0), metric)
	}
	for j := 1; j < c; j++ {
		var total float64
		for _, v := range dist {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rnd.Intn(n) // all keys coincide with the chosen set
		} else {
			u := rnd.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range dist {
				acc += v
				if u < acc {
					pick = i
					break
				}
			}
		}
		copy(cents.Row(j), key(pick))
		for i := 0; i < n; i++ {
			if v := seedDistance(key(i), cents.Row(j), metric); v < dist[i] {
				dist[i] = v
			}
		}
	}
}

// seedDistance returns a non-negative seeding distance under the metric.
func seedDistance(a, b []float32, metric Metric) float64 {
	switch metric {
	case L2:
		return float64(tensor.SqDist(a, b))
	case InnerProduct:
		return math.Max(0, 1-float64(tensor.Dot(a, b)))
	default: // Cosine
		return math.Max(0, 1-float64(tensor.CosineSim(a, b)))
	}
}

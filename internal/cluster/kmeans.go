// Package cluster implements semantic clustering of key vectors (paper
// §III-B) and the clustering metadata used by selection and indexing (paper
// §IV-C, Fig. 8): cluster sizes, prefix sums and member indices sorted by
// cluster label.
//
// The clustering algorithm is K-means with a configurable distance:
// cosine (the paper's choice), L2, or inner product (the Fig. 11b ablations).
// Initial centroids are sampled from the data; assignment and update steps
// alternate until the assignment is stable or an iteration cap is reached.
package cluster

import (
	"fmt"
	"math"
	"sync/atomic"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// Metric selects the semantic distance used for K-means assignment.
type Metric int

const (
	// Cosine assigns each key to the centroid with the largest cosine
	// similarity: D(i,j) = 1 - <k_i,k_j>/(|k_i||k_j|). The paper's default.
	Cosine Metric = iota
	// L2 assigns to the centroid with the smallest Euclidean distance.
	L2
	// InnerProduct assigns to the centroid with the largest dot product.
	InnerProduct
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case L2:
		return "l2"
	case InnerProduct:
		return "inner-product"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Init selects the centroid initialisation strategy.
type Init int

const (
	// RandomInit samples c distinct keys uniformly (the paper's choice:
	// "we first randomly sample key vectors as the initial centroids").
	RandomInit Init = iota
	// PlusPlusInit is k-means++ seeding: subsequent centroids are sampled
	// proportionally to their distance from the chosen set. Slower to seed
	// (O(n·c·d)) but converges in fewer iterations — an extension ablation
	// beyond the paper.
	PlusPlusInit
)

// Config controls K-means behaviour.
type Config struct {
	// Metric is the assignment distance (default Cosine).
	Metric Metric
	// MaxIters caps the assignment/update alternation. The algorithm also
	// stops as soon as an assignment pass changes no labels. Zero means the
	// package default (16).
	MaxIters int
	// Init is the centroid initialisation strategy (default RandomInit).
	Init Init
	// Seed drives the deterministic centroid initialisation.
	Seed uint64
}

const defaultMaxIters = 16

// Result is the outcome of clustering n keys into c clusters, including the
// Fig. 8 metadata. Token indices inside Result are *local* to the clustered
// slice: 0..n-1. Book offsets them to absolute positions.
type Result struct {
	// Centroids is the c×d matrix of cluster representations.
	Centroids *tensor.Mat
	// Labels[i] is the cluster of key i, in [0, c).
	Labels []int
	// Sizes[j] is the member count of cluster j. Every cluster is non-empty.
	Sizes []int
	// SortedIndices lists key indices sorted by (label, index): the members
	// of cluster j are SortedIndices[PrefixSum[j]:PrefixSum[j+1]].
	SortedIndices []int
	// PrefixSum has length c+1 with PrefixSum[0] = 0 and
	// PrefixSum[j+1]-PrefixSum[j] == Sizes[j].
	PrefixSum []int
	// Iters is the number of assignment passes executed.
	Iters int
	// AssignOps counts score-dimension operations performed (iters×n×c×d),
	// the quantity the cost model charges for clustering (§III-D Concern 1).
	AssignOps int64
}

// KMeans clusters the n keys packed row-major in keys (n = len(keys)/d) into
// at most c clusters and returns the result with Fig. 8 metadata. If c >= n
// every key gets its own cluster. c must be >= 1 and n >= 1.
func KMeans(keys []float32, d, c int, cfg Config) *Result {
	n := len(keys) / d
	if len(keys)%d != 0 {
		panic("cluster: keys length not a multiple of d")
	}
	if n == 0 {
		panic("cluster: KMeans over zero keys")
	}
	if c < 1 {
		panic("cluster: KMeans with c < 1")
	}
	if c > n {
		c = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = defaultMaxIters
	}
	rnd := rng.New(cfg.Seed)

	key := func(i int) []float32 { return keys[i*d : (i+1)*d] }

	// Initial centroids.
	cents := tensor.NewMat(c, d)
	switch cfg.Init {
	case PlusPlusInit:
		seedPlusPlus(cents, keys, d, cfg.Metric, rnd)
	default:
		for i, idx := range rnd.Sample(n, c) {
			copy(cents.Row(i), key(idx))
		}
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	sizes := make([]int, c)

	pool := parallel.Default()
	// Shared fan-out policy: an assignment index costs c·d ops, a norm d.
	assignGrain := parallel.Grain(c * d)

	// Pre-normalised views for cosine assignment.
	var keyNorms []float32
	if cfg.Metric == Cosine {
		keyNorms = make([]float32, n)
		pool.For(n, parallel.Grain(d), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				keyNorms[i] = tensor.Norm(key(i))
			}
		})
	}
	centNorm := make([]float32, c)

	// Scratch for the deterministic parallel update step: members of each
	// cluster in ascending key order (rebuilt per iteration).
	sortedIdx := make([]int, n)
	prefix := make([]int, c+1)
	cursor := make([]int, c)

	var assignOps int64
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters++
		if cfg.Metric == Cosine {
			for j := 0; j < c; j++ {
				centNorm[j] = tensor.Norm(cents.Row(j))
			}
		}
		// Assignment, key-parallel: each labels[i] is an independent argbest
		// over read-only centroids, so any split is bit-identical to serial.
		// The changed counter is an integer (exact, order-free) accumulated
		// once per block — no atomics ever touch float data.
		var changed atomic.Int64
		pool.For(n, assignGrain, func(lo, hi int) {
			blockChanged := 0
			for i := lo; i < hi; i++ {
				ki := key(i)
				best, bestScore := 0, float32(math.Inf(-1))
				switch cfg.Metric {
				case Cosine:
					kn := keyNorms[i]
					for j := 0; j < c; j++ {
						dot := tensor.Dot(ki, cents.Row(j))
						den := kn * centNorm[j]
						var s float32
						if den > 0 {
							s = dot / den
						}
						if s > bestScore {
							bestScore, best = s, j
						}
					}
				case L2:
					bestScore = float32(math.Inf(1))
					for j := 0; j < c; j++ {
						s := tensor.SqDist(ki, cents.Row(j))
						if s < bestScore {
							bestScore, best = s, j
						}
					}
				case InnerProduct:
					for j := 0; j < c; j++ {
						s := tensor.Dot(ki, cents.Row(j))
						if s > bestScore {
							bestScore, best = s, j
						}
					}
				}
				if labels[i] != best {
					labels[i] = best
					blockChanged++
				}
			}
			if blockChanged > 0 {
				changed.Add(int64(blockChanged))
			}
		})
		for j := range sizes {
			sizes[j] = 0
		}
		for i := 0; i < n; i++ {
			sizes[labels[i]]++
		}
		assignOps += int64(n) * int64(c) * int64(d)

		// Repair empty clusters by stealing the key farthest from its
		// centroid among clusters with >1 member (deterministic scan).
		repairEmptyClusters(keys, d, cents, labels, sizes, cfg.Metric)

		// Update step: centroid = mean of members (the custom-kernel step of
		// paper §IV-B). Parallel over clusters: each centroid accumulates its
		// members in ascending key order — the exact order of the serial
		// accumulate-and-divide — so the update is bit-identical at any
		// worker count. The member lists come from a serial counting sort.
		sortByLabel(labels, sizes, prefix, cursor, sortedIdx)
		pool.For(c, parallel.Grain(d*(n/c+1)), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				row := cents.Row(j)
				tensor.Fill(row, 0)
				for _, i := range sortedIdx[prefix[j]:prefix[j+1]] {
					tensor.Axpy(1, key(i), row)
				}
				if sizes[j] > 0 {
					tensor.Scale(1/float32(sizes[j]), row)
				}
			}
		})
		if changed.Load() == 0 {
			break
		}
	}

	// The last iteration's counting sort is computed from the final labels,
	// so its outputs are exactly the Fig. 8 metadata — hand them off instead
	// of re-deriving.
	return &Result{
		Centroids:     cents,
		Labels:        labels,
		Sizes:         sizes,
		SortedIndices: sortedIdx,
		PrefixSum:     prefix,
		Iters:         iters,
		AssignOps:     assignOps,
	}
}

// sortByLabel is the counting-sort construction of paper Fig. 8: prefix
// (len c+1) receives the per-label prefix sums and out (len n) the indices
// sorted by (label, index) — ascending i keeps members index-sorted.
// cursor (len c) is scratch.
func sortByLabel(labels, sizes, prefix, cursor, out []int) {
	prefix[0] = 0
	for j, sz := range sizes {
		prefix[j+1] = prefix[j] + sz
	}
	copy(cursor, prefix[:len(sizes)])
	for i, l := range labels {
		out[cursor[l]] = i
		cursor[l]++
	}
}

// repairEmptyClusters reassigns, for each empty cluster, the member that is
// farthest from its current centroid (among clusters of size ≥ 2).
func repairEmptyClusters(keys []float32, d int, cents *tensor.Mat, labels []int, sizes []int, metric Metric) {
	n := len(labels)
	for j := range sizes {
		if sizes[j] != 0 {
			continue
		}
		worst, worstScore := -1, float32(math.Inf(1))
		for i := 0; i < n; i++ {
			li := labels[i]
			if sizes[li] < 2 {
				continue
			}
			ki := keys[i*d : (i+1)*d]
			var s float32
			switch metric {
			case Cosine:
				s = tensor.CosineSim(ki, cents.Row(li))
			case L2:
				s = -tensor.SqDist(ki, cents.Row(li))
			case InnerProduct:
				s = tensor.Dot(ki, cents.Row(li))
			}
			// Lower similarity == farther from its centroid.
			if s < worstScore {
				worstScore, worst = s, i
			}
		}
		if worst < 0 {
			continue // all clusters singletons; nothing to steal
		}
		sizes[labels[worst]]--
		labels[worst] = j
		sizes[j] = 1
		copy(cents.Row(j), keys[worst*d:(worst+1)*d])
	}
}

// Members returns the (local) indices belonging to cluster j, aliasing the
// metadata storage.
func (r *Result) Members(j int) []int {
	return r.SortedIndices[r.PrefixSum[j]:r.PrefixSum[j+1]]
}

// NumClusters returns the number of clusters.
func (r *Result) NumClusters() int { return len(r.Sizes) }

package cluster

import (
	"clusterkv/internal/parallel"
	"clusterkv/internal/tensor"
)

// Book is the incremental cluster registry of one (layer, head): the prefill
// clustering plus every decode-time batch (paper §III-B: every m decoding
// steps the m new keys are clustered into C+ new clusters, appended to the
// existing ones). Cluster ids are global and stable; token positions stored
// in the Book are absolute sequence positions.
//
// The Book also implements the selection-time indexing of paper §IV-C /
// Fig. 8: given clusters sorted by attention weight, gather member indices
// via sizes + prefix sums and trim the last cluster to the budget.
type Book struct {
	d int
	// centroids packed row-major, one row per global cluster.
	centroids []float32
	// sizes[j] is the member count of global cluster j.
	sizes []int
	// members is the concatenation of per-cluster member position lists:
	// cluster j owns members[prefix[j]:prefix[j+1]] — the Book-level
	// equivalent of Fig. 8's sorted indices + prefix sums.
	members []int
	prefix  []int
	// clusteredUpTo is the absolute position one past the last clustered
	// token (sink tokens are excluded and live below Start).
	clusteredUpTo int
	start         int
}

// NewBook returns an empty Book for key vectors of dimension d, whose first
// clustered token will be at absolute position start (tokens below start are
// attention sinks, handled outside the Book — paper §III-B).
func NewBook(d, start int) *Book {
	return &Book{d: d, start: start, clusteredUpTo: start, prefix: []int{0}}
}

// Dim returns the key dimension.
func (b *Book) Dim() int { return b.d }

// Start returns the absolute position of the first clusterable token.
func (b *Book) Start() int { return b.start }

// ClusteredUpTo returns one past the last clustered absolute position.
func (b *Book) ClusteredUpTo() int { return b.clusteredUpTo }

// NumClusters returns the number of global clusters.
func (b *Book) NumClusters() int { return len(b.sizes) }

// Centroid returns the centroid of global cluster j (aliases storage).
func (b *Book) Centroid(j int) []float32 {
	return b.centroids[j*b.d : (j+1)*b.d]
}

// Centroids returns the packed centroid storage (NumClusters()×d row-major).
func (b *Book) Centroids() []float32 { return b.centroids }

// Size returns the member count of global cluster j.
func (b *Book) Size(j int) int { return b.sizes[j] }

// Members returns the absolute token positions of global cluster j,
// aliasing internal storage.
func (b *Book) Members(j int) []int {
	return b.members[b.prefix[j]:b.prefix[j+1]]
}

// TotalTokens returns the number of clustered tokens.
func (b *Book) TotalTokens() int { return b.clusteredUpTo - b.start }

// AddBatch appends a clustering result covering the keys at absolute
// positions [b.ClusteredUpTo(), b.ClusteredUpTo()+len(res.Labels)). The
// result's local indices are offset to absolute positions.
func (b *Book) AddBatch(res *Result) {
	offset := b.clusteredUpTo
	for j := 0; j < res.NumClusters(); j++ {
		b.centroids = append(b.centroids, res.Centroids.Row(j)...)
		b.sizes = append(b.sizes, res.Sizes[j])
		for _, local := range res.Members(j) {
			b.members = append(b.members, offset+local)
		}
		b.prefix = append(b.prefix, len(b.members))
	}
	b.clusteredUpTo += len(res.Labels)
}

// ScoreClusters writes q·µ_j into dst for every global cluster j (inner
// product scoring, §III-C: "the distance between query vector and centroids
// is measured with inner product, as it better aligns with attention weight
// computation"). dst must have length NumClusters(). Returns the number of
// score-dimension ops performed (C·d).
//
// Scoring is cluster-parallel on the shared intra-op pool: every dst[j] is
// an independent dot product, so results are bit-identical at any width.
func (b *Book) ScoreClusters(dst, q []float32) int64 {
	c := b.NumClusters()
	parallel.Default().For(c, parallel.Grain(b.d), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = tensor.Dot(q, b.Centroid(j))
		}
	})
	return int64(c) * int64(b.d)
}

// SelectTopClusters implements the §IV-C selection & indexing procedure:
// clusters are taken in descending score order until their cumulative size
// reaches tokenBudget; the last selected cluster is trimmed so the total
// equals the budget exactly (when enough clustered tokens exist).
//
// It returns the chosen cluster ids (in score order) and the gathered member
// positions I_T. The trim drops the tail of the last cluster's member list.
func (b *Book) SelectTopClusters(scores []float32, tokenBudget int) (clusters []int, positions []int) {
	if tokenBudget <= 0 {
		return nil, nil
	}
	order := tensor.ArgsortDesc(scores)
	positions = make([]int, 0, tokenBudget)
	total := 0
	for _, j := range order {
		sz := b.sizes[j]
		if sz == 0 {
			continue
		}
		clusters = append(clusters, j)
		take := sz
		if total+take > tokenBudget {
			take = tokenBudget - total // trim the last selected cluster
		}
		positions = append(positions, b.Members(j)[:take]...)
		total += take
		if total >= tokenBudget {
			break
		}
	}
	return clusters, positions
}

package cluster

import (
	"testing"
	"testing/quick"

	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// randKeys builds n keys of dimension d with g well-separated groups.
func randKeys(seed uint64, n, d, g int) ([]float32, []int) {
	r := rng.New(seed)
	dirs := make([][]float32, g)
	for i := range dirs {
		dirs[i] = make([]float32, d)
		for j := range dirs[i] {
			dirs[i][j] = r.NormFloat32()
		}
		tensor.Normalize(dirs[i])
	}
	keys := make([]float32, n*d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		grp := i % g
		truth[i] = grp
		row := keys[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = 4*dirs[grp][j] + 0.2*r.NormFloat32()
		}
	}
	return keys, truth
}

func checkInvariants(t *testing.T, res *Result, n int) {
	t.Helper()
	c := res.NumClusters()
	if len(res.Labels) != n {
		t.Fatalf("labels length %d, want %d", len(res.Labels), n)
	}
	total := 0
	for j, sz := range res.Sizes {
		if sz <= 0 {
			t.Fatalf("cluster %d empty (size %d)", j, sz)
		}
		total += sz
	}
	if total != n {
		t.Fatalf("sizes sum %d, want %d", total, n)
	}
	if len(res.PrefixSum) != c+1 || res.PrefixSum[0] != 0 || res.PrefixSum[c] != n {
		t.Fatalf("prefix sum malformed: %v", res.PrefixSum)
	}
	for j := 0; j < c; j++ {
		if res.PrefixSum[j+1]-res.PrefixSum[j] != res.Sizes[j] {
			t.Fatalf("prefix sum inconsistent with sizes at %d", j)
		}
	}
	// SortedIndices is a permutation partitioned by label, index-sorted
	// within each cluster.
	seen := make([]bool, n)
	for j := 0; j < c; j++ {
		members := res.Members(j)
		if len(members) != res.Sizes[j] {
			t.Fatalf("Members(%d) length mismatch", j)
		}
		for i, m := range members {
			if m < 0 || m >= n || seen[m] {
				t.Fatalf("member %d invalid or duplicated", m)
			}
			seen[m] = true
			if res.Labels[m] != j {
				t.Fatalf("member %d has label %d, want %d", m, res.Labels[m], j)
			}
			if i > 0 && members[i-1] >= m {
				t.Fatalf("members of cluster %d not index-sorted", j)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("key %d missing from metadata", i)
		}
	}
}

func TestKMeansInvariantsAllMetrics(t *testing.T) {
	for _, m := range []Metric{Cosine, L2, InnerProduct} {
		t.Run(m.String(), func(t *testing.T) {
			keys, _ := randKeys(uint64(m)+1, 200, 8, 5)
			res := KMeans(keys, 8, 10, Config{Metric: m, Seed: 1})
			checkInvariants(t, res, 200)
		})
	}
}

func TestKMeansRecoversSeparatedGroups(t *testing.T) {
	// Over-segment (12 clusters for 6 groups): k-means with exact c=g often
	// hits merge/split local optima, but over-segmented clusters should be
	// nearly pure.
	keys, truth := randKeys(7, 300, 16, 6)
	res := KMeans(keys, 16, 12, Config{Metric: Cosine, Seed: 3})
	// Majority-label purity should be near 1 on well-separated groups.
	agree := 0
	for j := 0; j < res.NumClusters(); j++ {
		counts := map[int]int{}
		for _, m := range res.Members(j) {
			counts[truth[m]]++
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		agree += best
	}
	if purity := float64(agree) / 300; purity < 0.95 {
		t.Fatalf("purity = %v on well-separated groups", purity)
	}
}

func TestKMeansCentroidIsMeanOfMembers(t *testing.T) {
	keys, _ := randKeys(9, 120, 4, 3)
	res := KMeans(keys, 4, 5, Config{Metric: Cosine, Seed: 2})
	for j := 0; j < res.NumClusters(); j++ {
		mean := make([]float32, 4)
		for _, m := range res.Members(j) {
			tensor.Axpy(1, keys[m*4:(m+1)*4], mean)
		}
		tensor.Scale(1/float32(res.Sizes[j]), mean)
		for d := 0; d < 4; d++ {
			diff := mean[d] - res.Centroids.At(j, d)
			if diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("centroid %d chan %d = %v, want mean %v", j, d, res.Centroids.At(j, d), mean[d])
			}
		}
	}
}

func TestKMeansMoreClustersThanKeys(t *testing.T) {
	keys, _ := randKeys(11, 5, 4, 2)
	res := KMeans(keys, 4, 50, Config{Seed: 1})
	if res.NumClusters() > 5 {
		t.Fatalf("got %d clusters for 5 keys", res.NumClusters())
	}
	checkInvariants(t, res, 5)
}

func TestKMeansSingleKey(t *testing.T) {
	res := KMeans([]float32{1, 2}, 2, 3, Config{Seed: 1})
	if res.NumClusters() != 1 || res.Sizes[0] != 1 {
		t.Fatalf("single key: %d clusters", res.NumClusters())
	}
}

func TestKMeansIdenticalKeys(t *testing.T) {
	keys := make([]float32, 20*4)
	for i := 0; i < 20; i++ {
		copy(keys[i*4:], []float32{1, 2, 3, 4})
	}
	res := KMeans(keys, 4, 4, Config{Seed: 5})
	checkInvariants(t, res, 20)
}

func TestKMeansDeterminism(t *testing.T) {
	keys, _ := randKeys(13, 100, 8, 4)
	a := KMeans(keys, 8, 8, Config{Seed: 9})
	b := KMeans(keys, 8, 8, Config{Seed: 9})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("KMeans not deterministic")
		}
	}
}

func TestKMeansIterCap(t *testing.T) {
	keys, _ := randKeys(15, 200, 8, 4)
	res := KMeans(keys, 8, 10, Config{MaxIters: 2, Seed: 1})
	if res.Iters > 2 {
		t.Fatalf("iters = %d, cap 2", res.Iters)
	}
	if res.AssignOps != int64(res.Iters)*200*10*8 {
		t.Fatalf("AssignOps = %d", res.AssignOps)
	}
}

func TestKMeansPanics(t *testing.T) {
	cases := []func(){
		func() { KMeans([]float32{1, 2, 3}, 2, 1, Config{}) }, // not multiple of d
		func() { KMeans(nil, 2, 1, Config{}) },                // zero keys
		func() { KMeans([]float32{1, 2}, 2, 0, Config{}) },    // c < 1
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	check := func(seed uint64, nn, cc, dd uint8) bool {
		n := int(nn)%120 + 1
		c := int(cc)%20 + 1
		d := int(dd)%12 + 2
		r := rng.New(seed)
		keys := make([]float32, n*d)
		for i := range keys {
			keys[i] = r.NormFloat32()
		}
		res := KMeans(keys, d, c, Config{Seed: seed})
		// Inline invariant checks (bool form for quick).
		total := 0
		for _, sz := range res.Sizes {
			if sz <= 0 {
				return false
			}
			total += sz
		}
		if total != n {
			return false
		}
		seen := make([]bool, n)
		for j := 0; j < res.NumClusters(); j++ {
			for _, m := range res.Members(j) {
				if m < 0 || m >= n || seen[m] || res.Labels[m] != j {
					return false
				}
				seen[m] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBookAddBatchOffsets(t *testing.T) {
	b := NewBook(4, 16)
	keys, _ := randKeys(1, 80, 4, 4)
	res := KMeans(keys, 4, 4, Config{Seed: 1})
	b.AddBatch(res)
	if b.ClusteredUpTo() != 96 || b.TotalTokens() != 80 {
		t.Fatalf("ClusteredUpTo=%d TotalTokens=%d", b.ClusteredUpTo(), b.TotalTokens())
	}
	// Every member position must be offset by start=16.
	count := 0
	for j := 0; j < b.NumClusters(); j++ {
		for _, p := range b.Members(j) {
			if p < 16 || p >= 96 {
				t.Fatalf("member %d outside [16,96)", p)
			}
			count++
		}
	}
	if count != 80 {
		t.Fatalf("total members %d", count)
	}

	// Second (decode) batch appends after the first.
	keys2, _ := randKeys(2, 20, 4, 2)
	res2 := KMeans(keys2, 4, 2, Config{Seed: 2})
	b.AddBatch(res2)
	if b.ClusteredUpTo() != 116 || b.NumClusters() != 6 {
		t.Fatalf("after second batch: upTo=%d clusters=%d", b.ClusteredUpTo(), b.NumClusters())
	}
	for j := 4; j < 6; j++ {
		for _, p := range b.Members(j) {
			if p < 96 || p >= 116 {
				t.Fatalf("decode-batch member %d outside [96,116)", p)
			}
		}
	}
}

func TestBookScoreClusters(t *testing.T) {
	b := NewBook(2, 0)
	res := KMeans([]float32{1, 0, 1, 0, 0, 1, 0, 1}, 2, 2, Config{Seed: 1})
	b.AddBatch(res)
	scores := make([]float32, b.NumClusters())
	ops := b.ScoreClusters(scores, []float32{1, 0})
	if ops != int64(b.NumClusters())*2 {
		t.Fatalf("ops = %d", ops)
	}
	for j := 0; j < b.NumClusters(); j++ {
		want := tensor.Dot([]float32{1, 0}, b.Centroid(j))
		if scores[j] != want {
			t.Fatalf("score %d = %v, want %v", j, scores[j], want)
		}
	}
}

func TestBookSelectTopClustersBudgetAndTrim(t *testing.T) {
	// Three clusters of sizes 3, 2, 1; budget 4 must take the best cluster
	// whole and trim the next.
	b := NewBook(1, 0)
	res := &Result{
		Centroids:     tensor.WrapMat(3, 1, []float32{3, 2, 1}),
		Labels:        []int{0, 0, 0, 1, 1, 2},
		Sizes:         []int{3, 2, 1},
		Iters:         1,
		SortedIndices: []int{0, 1, 2, 3, 4, 5},
		PrefixSum:     []int{0, 3, 5, 6},
	}
	b.AddBatch(res)
	scores := []float32{10, 5, 1}
	clusters, positions := b.SelectTopClusters(scores, 4)
	if len(clusters) != 2 || clusters[0] != 0 || clusters[1] != 1 {
		t.Fatalf("clusters = %v", clusters)
	}
	if len(positions) != 4 {
		t.Fatalf("positions = %v, want exactly budget 4", positions)
	}
	// Cluster 0 fully (0,1,2) + first member of cluster 1 (3).
	want := []int{0, 1, 2, 3}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("positions = %v", positions)
		}
	}
}

func TestBookSelectTopClustersSmallBudget(t *testing.T) {
	b := NewBook(1, 0)
	keys, _ := randKeys(3, 50, 1, 2)
	b.AddBatch(KMeans(keys, 1, 5, Config{Seed: 1}))
	scores := make([]float32, b.NumClusters())
	b.ScoreClusters(scores, []float32{1})
	_, positions := b.SelectTopClusters(scores, 7)
	if len(positions) != 7 {
		t.Fatalf("got %d positions, want 7", len(positions))
	}
	if _, p := b.SelectTopClusters(scores, 0); p != nil {
		t.Fatal("zero budget must select nothing")
	}
}

func TestBookSelectBudgetBeyondTokens(t *testing.T) {
	b := NewBook(1, 0)
	keys, _ := randKeys(4, 10, 1, 2)
	b.AddBatch(KMeans(keys, 1, 2, Config{Seed: 1}))
	scores := make([]float32, b.NumClusters())
	b.ScoreClusters(scores, []float32{1})
	_, positions := b.SelectTopClusters(scores, 100)
	if len(positions) != 10 {
		t.Fatalf("budget beyond tokens: got %d, want all 10", len(positions))
	}
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || L2.String() != "l2" || InnerProduct.String() != "inner-product" {
		t.Fatal("Metric.String wrong")
	}
	if Metric(99).String() != "Metric(99)" {
		t.Fatal("unknown metric string")
	}
}

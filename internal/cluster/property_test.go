package cluster

import (
	"math"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// Property-based KMeans tests: random shapes and data, asserting structural
// invariants always, assignment optimality at convergence, and bit-identical
// results across worker-pool widths.

// randKeys draws n×d keys with loose cluster structure plus outliers.
func propKeys(r *rng.RNG, n, d int) []float32 {
	keys := make([]float32, n*d)
	for i := range keys {
		keys[i] = r.NormFloat32()
	}
	// Pull half the keys toward a few anchor directions so clusters exist.
	anchors := 1 + r.Intn(4)
	for i := 0; i < n; i += 2 {
		a := i % anchors
		for j := 0; j < d; j++ {
			keys[i*d+j] += float32(2 * (a + 1) * (j%2*2 - 1))
		}
	}
	return keys
}

// score replicates the assignment scoring exactly (same tensor calls, same
// den > 0 guard), so optimality checks compare identical float pipelines.
func propScore(metric Metric, key, cent []float32) float32 {
	switch metric {
	case Cosine:
		dot := tensor.Dot(key, cent)
		den := tensor.Norm(key) * tensor.Norm(cent)
		if den > 0 {
			return dot / den
		}
		return 0
	case L2:
		return -tensor.SqDist(key, cent)
	default:
		return tensor.Dot(key, cent)
	}
}

func checkPropInvariants(t *testing.T, res *Result, n, cReq int) {
	t.Helper()
	c := res.NumClusters()
	if c < 1 || c > cReq {
		t.Fatalf("NumClusters = %d, want in [1, %d]", c, cReq)
	}
	if len(res.Labels) != n {
		t.Fatalf("len(Labels) = %d, want %d", len(res.Labels), n)
	}
	total := 0
	for j, sz := range res.Sizes {
		if sz < 0 {
			t.Fatalf("cluster %d has negative size %d", j, sz)
		}
		total += sz
		if res.PrefixSum[j+1]-res.PrefixSum[j] != sz {
			t.Fatalf("PrefixSum inconsistent at cluster %d", j)
		}
	}
	if total != n {
		t.Fatalf("sizes sum to %d, want %d", total, n)
	}
	seen := make([]bool, n)
	for j := 0; j < c; j++ {
		members := res.Members(j)
		for k, i := range members {
			if i < 0 || i >= n {
				t.Fatalf("cluster %d: member %d out of range", j, i)
			}
			if seen[i] {
				t.Fatalf("key %d appears in two clusters", i)
			}
			seen[i] = true
			if res.Labels[i] != j {
				t.Fatalf("key %d in members of %d but labeled %d", i, j, res.Labels[i])
			}
			if k > 0 && members[k-1] >= i {
				t.Fatalf("cluster %d members not ascending", j)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("key %d missing from all member lists", i)
		}
	}
}

// checkAssignmentOptimal asserts, for a converged run, that every key's
// label achieves the best score among the returned centroids. Keys that sit
// in a singleton cluster whose centroid is the key itself are exempt: the
// empty-cluster repair deliberately plants the farthest key there.
func checkAssignmentOptimal(t *testing.T, res *Result, keys []float32, d int, metric Metric) {
	t.Helper()
	n := len(res.Labels)
	c := res.NumClusters()
	for i := 0; i < n; i++ {
		ki := keys[i*d : (i+1)*d]
		l := res.Labels[i]
		if res.Sizes[l] == 1 && bitsEq(ki, res.Centroids.Row(l)) {
			continue // repair-planted singleton
		}
		mine := propScore(metric, ki, res.Centroids.Row(l))
		for j := 0; j < c; j++ {
			if s := propScore(metric, ki, res.Centroids.Row(j)); s > mine {
				t.Fatalf("metric %v: key %d labeled %d (score %g) but cluster %d scores %g",
					metric, i, l, mine, j, s)
			}
		}
	}
}

func bitsEq(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestKMeansProperties(t *testing.T) {
	r := rng.New(1234)
	metrics := []Metric{Cosine, L2, InnerProduct}
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + r.Intn(200)
		d := 1 + r.Intn(24)
		cReq := 1 + r.Intn(12)
		metric := metrics[trial%len(metrics)]
		keys := propKeys(r, n, d)
		cfg := Config{Metric: metric, Seed: uint64(trial), MaxIters: 64}
		res := KMeans(keys, d, cReq, cfg)

		checkPropInvariants(t, res, n, cReq)
		if res.Iters < 64 { // converged: last pass changed no labels
			checkAssignmentOptimal(t, res, keys, d, metric)
		}
		wantOps := int64(res.Iters) * int64(n) * int64(min(cReq, n)) * int64(d)
		if res.AssignOps != wantOps {
			t.Fatalf("AssignOps = %d, want iters·n·c·d = %d", res.AssignOps, wantOps)
		}
	}
}

// TestKMeansConformanceAcrossWidths locks the parallel assignment + update:
// identical seeds must produce bit-identical clusterings at pool widths
// {1, 2, 3, 8}, including n smaller than the width.
func TestKMeansConformanceAcrossWidths(t *testing.T) {
	r := rng.New(77)
	run := func(width int, keys []float32, d, c int, cfg Config) *Result {
		pool := parallel.NewPool(width)
		old := parallel.SetDefault(pool)
		defer func() {
			parallel.SetDefault(old)
			pool.Close()
		}()
		return KMeans(keys, d, c, cfg)
	}
	for _, metric := range []Metric{Cosine, L2, InnerProduct} {
		for _, shape := range [][2]int{{2, 3}, {7, 4}, {50, 8}, {157, 16}} {
			n, d := shape[0], shape[1]
			keys := propKeys(r, n, d)
			c := 1 + n/3
			cfg := Config{Metric: metric, Seed: 5, MaxIters: 32}
			want := run(1, keys, d, c, cfg)
			for _, width := range []int{2, 3, 8} {
				got := run(width, keys, d, c, cfg)
				if got.Iters != want.Iters {
					t.Fatalf("metric %v n=%d width=%d: iters %d vs %d", metric, n, width, got.Iters, want.Iters)
				}
				for i := range want.Labels {
					if got.Labels[i] != want.Labels[i] {
						t.Fatalf("metric %v n=%d width=%d: label %d differs", metric, n, width, i)
					}
				}
				if !bitsEq(got.Centroids.Data, want.Centroids.Data) {
					t.Fatalf("metric %v n=%d width=%d: centroid bits differ", metric, n, width)
				}
			}
		}
	}
}

// Package parallel provides the shared intra-op worker pool behind every
// data-parallel kernel in the repository: blocked matrix kernels in
// internal/tensor, row/head-parallel prefill attention in internal/model,
// K-means assignment in internal/cluster and the serve engine's per-round
// step fan-out.
//
// Determinism contract: For splits [0, n) into blocks at *fixed* split
// points computed only from (n, grain, pool width) — never from runtime
// load — and every kernel built on it writes a disjoint output range per
// index with the per-element arithmetic order unchanged from the serial
// loop. Blocks are *assigned* to executors dynamically (an atomic next-block
// counter, so skewed work such as causal attention load-balances), but
// because outputs are disjoint and each element's reduction stays serial,
// results are bit-identical to the serial path at any worker count,
// including 1. No atomics ever touch float data.
//
// Oversubscription contract: one process-wide Default pool is sized to
// GOMAXPROCS. Callers of For always participate in executing their own
// blocks, and idle pool helpers join in; a nested For (a parallel kernel
// invoked from inside a pool worker) finds no idle helpers and simply runs
// inline, so total concurrency stays bounded by the pool width no matter
// how many engine goroutines issue kernels at once.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// blocksPerWorker oversubscribes block count relative to pool width so the
// dynamic block counter can load-balance skewed work (e.g. causal attention,
// where late positions cost more than early ones). Split points stay a pure
// function of (n, grain, width).
const blocksPerWorker = 4

// Pool is a fixed-width intra-op worker pool. The zero value is not usable;
// use NewPool. A nil *Pool is valid and runs everything inline.
type Pool struct {
	width     int
	jobs      chan *job
	closeOnce sync.Once
}

// job is one For invocation: fixed block boundaries plus a dynamic
// next-block cursor shared by the caller and any helpers that join.
type job struct {
	fn      func(lo, hi int)
	n       int
	nblocks int
	next    atomic.Int64
	wg      sync.WaitGroup
	panicMu sync.Mutex
	panicV  any
}

// NewPool returns a pool that runs For callbacks on up to width concurrent
// executors (the caller plus width-1 persistent helper goroutines).
// width <= 1 yields a fully inline pool with no goroutines. A For that
// overlaps or follows Close still completes correctly — the caller executes
// any blocks the retiring helpers don't.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	p := &Pool{width: width}
	if width > 1 {
		p.jobs = make(chan *job, width)
		for i := 0; i < width-1; i++ {
			go func(jobs <-chan *job) {
				for {
					j := <-jobs
					if j == nil {
						return // Close sentinel
					}
					j.runBlocks()
				}
			}(p.jobs)
		}
	}
	return p
}

// blocks returns the number of partition blocks For would use for (n, grain).
func (p *Pool) blocks(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	nb := n / grain // floor: every even-split block then holds >= grain indices
	if nb < 1 {
		nb = 1
	}
	if max := p.Width() * blocksPerWorker; nb > max {
		nb = max
	}
	return nb
}

// RunsInline reports whether For(n, grain, fn) would execute fn entirely on
// the calling goroutine (no job dispatch). Hot single-token kernels branch on
// it to call their loop body directly instead of constructing a closure —
// For's parallel path stores fn in a job, which forces every closure passed
// to it onto the heap, and that per-call allocation is what the steady-state
// zero-alloc decode contract (DESIGN.md §12) forbids. Must mirror For's
// dispatch branch exactly.
func (p *Pool) RunsInline(n, grain int) bool {
	return p == nil || p.width <= 1 || n <= 0 || p.blocks(n, grain) <= 1
}

// Width returns the pool's maximum concurrency (>= 1).
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Close releases the helper goroutines by sending them exit sentinels; the
// jobs channel itself is never closed, so a For racing Close (or issued
// after it) can still offer jobs safely — it simply gets no helpers and the
// caller runs every block inline. Closing a width-1 or nil pool is a no-op;
// Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	p.closeOnce.Do(func() {
		for i := 0; i < p.width-1; i++ {
			p.jobs <- nil
		}
	})
}

// For runs fn over the half-open blocks of a fixed partition of [0, n) and
// returns when every block has finished. grain is the minimum indices per
// block (grain < 1 is treated as 1): blocks never get smaller than grain, so
// cheap loops stay inline instead of paying fan-out overhead. fn may be
// invoked concurrently from multiple goroutines, each call on a disjoint
// [lo, hi) range; together the ranges tile [0, n) exactly. A panic in fn is
// re-raised on the caller's goroutine after all blocks settle.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nb := p.blocks(n, grain)
	if p == nil || p.width <= 1 || nb <= 1 {
		fn(0, n)
		return
	}
	j := &job{fn: fn, n: n, nblocks: nb}
	j.wg.Add(nb)
	// Offer the job to up to nb-1 idle helpers without blocking: a helper
	// that is busy (or a nested For from inside a helper) just means fewer
	// hands, never a stall — the caller executes blocks regardless.
offer:
	for i := 0; i < nb-1; i++ {
		select {
		case p.jobs <- j:
		default:
			break offer // no idle helper; the caller picks up the slack
		}
	}
	j.runBlocks()
	j.wg.Wait()
	if j.panicV != nil {
		panic(j.panicV)
	}
}

// runBlocks claims blocks off the job until none remain.
func (j *job) runBlocks() {
	for {
		b := int(j.next.Add(1)) - 1
		if b >= j.nblocks {
			return
		}
		j.runOne(b)
	}
}

// runOne executes block b, recording a panic's raw value so the pool's
// helper goroutines never crash the process; For re-raises it on the
// caller, preserving the value so failure behavior is identical to the
// inline (single-block) path at any pool width.
func (j *job) runOne(b int) {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.panicMu.Lock()
			if j.panicV == nil {
				j.panicV = r
			}
			j.panicMu.Unlock()
		}
	}()
	lo := b * j.n / j.nblocks
	hi := (b + 1) * j.n / j.nblocks
	if lo < hi {
		j.fn(lo, hi)
	}
}

// defaultPool is the process-wide intra-op pool, sized to GOMAXPROCS at
// startup and replaceable via SetDefault (tests, CLI --intraop flags).
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(NewPool(runtime.GOMAXPROCS(0)))
}

// Default returns the process-wide pool shared by all intra-op kernels.
func Default() *Pool { return defaultPool.Load() }

// grainBlockOps is the target inner-loop operation count per parallel
// block: below it, fan-out overhead (job allocation, channel offers, the
// barrier) is not worth paying.
const grainBlockOps = 8192

// Grain converts a kernel's per-index cost into the For grain that keeps
// every block at or above the target operation budget, so all kernels
// share one fan-out policy. Deterministic — depends only on the cost.
func Grain(perIndexOps int) int {
	if perIndexOps <= 0 {
		return grainBlockOps
	}
	g := grainBlockOps / perIndexOps
	if g < 1 {
		g = 1
	}
	return g
}

// SetDefault installs p as the process-wide pool and returns the previous
// one. Swapping while kernels are in flight is safe — in-flight For calls
// keep the pool they loaded, and Close never invalidates a pool for
// callers (it only retires helpers), so the old pool may be Closed at any
// time.
func SetDefault(p *Pool) *Pool {
	if p == nil {
		p = NewPool(1)
	}
	return defaultPool.Swap(p)
}

// SetDefaultWidth resizes the process-wide pool to width executors, closing
// the pool it replaces. In-flight kernels on the old pool finish correctly
// (at worst caller-only once its helpers retire); new kernels pick up the
// new pool.
func SetDefaultWidth(width int) {
	old := SetDefault(NewPool(width))
	old.Close()
}

package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForTilesRange asserts that For covers [0, n) exactly once for a grid
// of sizes, grains and widths, including n < width and n smaller than one
// grain.
func TestForTilesRange(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8} {
		p := NewPool(width)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 1 << 20} {
				var mu sync.Mutex
				counts := make([]int, n)
				p.For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("width=%d n=%d grain=%d: bad block [%d,%d)", width, n, grain, lo, hi)
						return
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						counts[i]++
					}
					mu.Unlock()
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("width=%d n=%d grain=%d: index %d ran %d times", width, n, grain, i, c)
					}
				}
			}
		}
		p.Close()
	}
}

// TestForSplitPointsFixed asserts that block boundaries are a pure function
// of (n, grain, width): two invocations observe the identical block set.
func TestForSplitPointsFixed(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	observe := func() map[[2]int]bool {
		var mu sync.Mutex
		blocks := map[[2]int]bool{}
		p.For(1000, 1, func(lo, hi int) {
			mu.Lock()
			blocks[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return blocks
	}
	a, b := observe(), observe()
	if len(a) != len(b) {
		t.Fatalf("block count differs across runs: %d vs %d", len(a), len(b))
	}
	for blk := range a {
		if !b[blk] {
			t.Fatalf("block %v present in run 1, absent in run 2", blk)
		}
	}
}

// TestNestedFor asserts a For issued from inside a For block completes and
// covers its range (inline when no helpers are idle — never deadlocks).
func TestNestedFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(100, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested For covered %d indices, want 800", got)
	}
}

// TestForPanicPropagates asserts a panic inside a block is re-raised on the
// caller after all blocks settle, and the pool stays usable.
func TestForPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				// The raw panic value must survive, exactly as on the
				// inline path, so recover-and-match callers behave the
				// same at every width.
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("unexpected panic value: %v", r)
				}
			}()
			p.For(100, 1, func(lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
		// Pool must still work after the panic.
		var ran atomic.Int64
		p.For(10, 1, func(lo, hi int) { ran.Add(int64(hi - lo)) })
		if ran.Load() != 10 {
			t.Fatal("pool unusable after recovered panic")
		}
	}
}

// TestConcurrentFor hammers one pool from many goroutines (the serving
// pattern: concurrent prefills sharing the intra-op pool). Run with -race.
func TestConcurrentFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	iters := 200
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, 512)
			for it := 0; it < iters; it++ {
				p.For(len(out), 7, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = g*1000 + i
					}
				})
				for i := range out {
					if out[i] != g*1000+i {
						t.Errorf("goroutine %d: index %d corrupted", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNilAndWidthOnePool asserts the degenerate pools run inline.
func TestNilAndWidthOnePool(t *testing.T) {
	var nilPool *Pool
	sum := 0
	nilPool.For(10, 1, func(lo, hi int) { sum += hi - lo }) // no mutex: must be inline
	if sum != 10 {
		t.Fatalf("nil pool covered %d, want 10", sum)
	}
	if nilPool.Width() != 1 {
		t.Fatalf("nil pool width = %d, want 1", nilPool.Width())
	}
	p := NewPool(0)
	defer p.Close()
	if p.Width() != 1 {
		t.Fatalf("NewPool(0) width = %d, want 1", p.Width())
	}
	sum = 0
	p.For(10, 1, func(lo, hi int) { sum += hi - lo })
	if sum != 10 {
		t.Fatalf("width-1 pool covered %d, want 10", sum)
	}
}

// TestForAfterClose asserts a For racing or following Close completes
// caller-side instead of panicking (the SetDefaultWidth resize path: an
// engine mid-round may hold a pool another goroutine just retired).
func TestForAfterClose(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		p.For(100, 1, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	}
	if ran.Load() != 300 {
		t.Fatalf("For after Close covered %d indices, want 300", ran.Load())
	}
}

// TestSetDefault asserts the default-pool swap returns the previous pool.
func TestSetDefault(t *testing.T) {
	orig := Default()
	p := NewPool(2)
	if got := SetDefault(p); got != orig {
		t.Fatal("SetDefault did not return the previous default")
	}
	if Default() != p {
		t.Fatal("Default() is not the installed pool")
	}
	if got := SetDefault(orig); got != p {
		t.Fatal("second SetDefault did not return the test pool")
	}
	p.Close()
}

package attention_test

// Selector contract conformance: every compression method in the module is
// run through the same harness and checked against the interface invariants
// the engines rely on — valid, deduplicated indices; bypass and
// budget-covers-context behaviour; stats monotonicity; determinism.

import (
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/core"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

func allSelectors() map[string]func() attention.Selector {
	return map[string]func() attention.Selector{
		"ClusterKV": func() attention.Selector {
			cfg := core.NewConfig()
			cfg.BypassLayers = 0
			return core.New(cfg)
		},
		"Quest": func() attention.Selector {
			cfg := baselines.NewQuestConfig()
			cfg.BypassLayers = 0
			return baselines.NewQuest(cfg)
		},
		"InfiniGen": func() attention.Selector {
			cfg := baselines.NewInfiniGenConfig()
			cfg.BypassLayers = 0
			return baselines.NewInfiniGen(cfg)
		},
		"H2O": func() attention.Selector {
			cfg := baselines.NewH2OConfig()
			cfg.BypassLayers = 0
			return baselines.NewH2O(cfg)
		},
		"StreamingLLM": func() attention.Selector {
			cfg := baselines.NewStreamingConfig()
			cfg.BypassLayers = 0
			return baselines.NewStreamingLLM(cfg)
		},
		"FullKV": func() attention.Selector { return baselines.NewFullKV() },
	}
}

func conformanceStore(seed uint64, n, d int) *kvcache.Store {
	r := rng.New(seed)
	s := kvcache.NewStore(d)
	k := make([]float32, d)
	v := make([]float32, d)
	for p := 0; p < n; p++ {
		grp := p % 7
		for j := 0; j < d; j++ {
			k[j] = float32(grp)*0.7 + 0.4*r.NormFloat32()
			v[j] = r.NormFloat32()
		}
		s.Append(k, v)
	}
	return s
}

func conformanceQuery(seed uint64, d int) []float32 {
	r := rng.New(seed)
	q := make([]float32, d)
	for j := range q {
		q[j] = r.NormFloat32()
	}
	return q
}

func TestSelectorConformance(t *testing.T) {
	const (
		n      = 900
		d      = 16
		budget = 128
		steps  = 6
	)
	for name, mk := range allSelectors() {
		t.Run(name, func(t *testing.T) {
			sel := mk()
			sel.Reset(1, 2, d)
			stores := []*kvcache.Store{conformanceStore(1, n, d), conformanceStore(2, n, d)}
			for h, s := range stores {
				sel.OnPrefill(0, h, s)
			}
			var prevSelected int64
			for step := 0; step < steps; step++ {
				for h, s := range stores {
					s.Append(conformanceQuery(uint64(step*10+h), d), conformanceQuery(uint64(step*10+h+5), d))
					sel.OnAppend(0, h, s)
				}
				for h, s := range stores {
					q := conformanceQuery(uint64(100+step*2+h), d)
					idx := sel.Select(0, h, q, s, budget)
					if name == "FullKV" {
						if idx != nil {
							t.Fatal("FullKV must return nil")
						}
						continue
					}
					if idx == nil {
						t.Fatalf("budget %d over %d tokens returned full attention", budget, s.Len())
					}
					seen := map[int]bool{}
					for _, p := range idx {
						if p < 0 || p >= s.Len() {
							t.Fatalf("index %d out of range [0, %d)", p, s.Len())
						}
						if seen[p] {
							t.Fatalf("duplicate index %d", p)
						}
						seen[p] = true
					}
					// Selected size stays within 2× budget (methods may
					// keep mandatory sets, but not explode).
					if len(idx) > 2*budget {
						t.Fatalf("selected %d tokens for budget %d", len(idx), budget)
					}
				}
				sel.EndStep()
				st := sel.Stats()
				if st.Steps != int64(step+1) {
					t.Fatalf("steps counter %d after %d EndStep calls", st.Steps, step+1)
				}
				if st.TokensSelected < prevSelected {
					t.Fatal("TokensSelected decreased")
				}
				prevSelected = st.TokensSelected
			}
		})
	}
}

func TestSelectorBudgetCoversContext(t *testing.T) {
	const d = 8
	for name, mk := range allSelectors() {
		t.Run(name, func(t *testing.T) {
			sel := mk()
			sel.Reset(1, 1, d)
			s := conformanceStore(3, 50, d)
			sel.OnPrefill(0, 0, s)
			if idx := sel.Select(0, 0, conformanceQuery(4, d), s, 50); idx != nil {
				t.Fatalf("%s: budget == context must return nil, got %d indices", name, len(idx))
			}
		})
	}
}

func TestSelectorDeterminism(t *testing.T) {
	const (
		n      = 600
		d      = 8
		budget = 96
	)
	for name, mk := range allSelectors() {
		if name == "FullKV" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			run := func() []int {
				sel := mk()
				sel.Reset(1, 1, d)
				s := conformanceStore(5, n, d)
				sel.OnPrefill(0, 0, s)
				return sel.Select(0, 0, conformanceQuery(6, d), s, budget)
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s selection not deterministic at %d", name, i)
				}
			}
		})
	}
}

func TestSelectorResetClearsState(t *testing.T) {
	const d = 8
	for name, mk := range allSelectors() {
		t.Run(name, func(t *testing.T) {
			sel := mk()
			sel.Reset(1, 1, d)
			s := conformanceStore(7, 400, d)
			sel.OnPrefill(0, 0, s)
			sel.Select(0, 0, conformanceQuery(8, d), s, 64)
			sel.EndStep()

			sel.Reset(1, 1, d)
			if st := sel.Stats(); st.Steps != 0 || st.TokensSelected != 0 {
				t.Fatalf("%s: Reset did not clear stats: %+v", name, st)
			}
			// Must be usable again after Reset.
			s2 := conformanceStore(9, 400, d)
			sel.OnPrefill(0, 0, s2)
			sel.Select(0, 0, conformanceQuery(10, d), s2, 64)
			sel.EndStep()
		})
	}
}

package attention_test

// Quantized decode kernel contract (DESIGN.md §12): the dequantize-free int8
// kernels must match dequantize-then-float-GEMV over the SAME quantized
// tensors up to the reassociation of the folded affine (zero-point) terms.
// That reassociation perturbs each reduction by a few rounding steps of the
// reduction's operand magnitudes, so the contract — property-tested over
// random shapes, bit widths and page-straddling selections — is norm-
// relative with a tight ULP fast path for large channels:
//
//	|fused − reference| ≤ 512 ULP  or  |fused − reference| ≤ 1e-4·‖out‖∞
//
// The norm-relative arm is load-bearing for channels whose exact value sits
// near zero, where ULP spacing is meaninglessly fine relative to the terms
// being summed. Empirically (200-trial probe) the kernels stay ~25× inside
// the norm-relative bound (max observed 3.9e-6·‖out‖∞).

import (
	"math"
	"sort"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

const (
	quantULPBound = 512
	quantAbsRel   = 1e-4
)

// ulpDist32 returns the distance in representable float32 steps between a
// and b (order-preserving integer mapping of the IEEE bit patterns).
func ulpDist32(a, b float32) int64 {
	ia := int64(int32(math.Float32bits(a)))
	ib := int64(int32(math.Float32bits(b)))
	if ia < 0 {
		ia = math.MinInt32 - ia
	}
	if ib < 0 {
		ib = math.MinInt32 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// quantStore builds a compute-quantized store over random contents.
func quantStore(seed uint64, n, d, bits int) *kvcache.Store {
	s := conformanceStore(seed, n, d)
	s.SetComputeQuant(bits)
	s.QuantizeFullPages()
	return s
}

// dequantClone builds the dequantize-then-GEMV reference: Clone reads
// quantized pages through the non-restoring decode path, so the float clone
// holds exactly the values the int8 kernels encode (and exact copies of any
// page that stayed float32).
func dequantClone(src *kvcache.Store) *kvcache.Store {
	return src.Clone()
}

func checkULP(t *testing.T, ctx string, got, want []float32) {
	t.Helper()
	var norm float32
	for _, v := range want {
		if a := float32(math.Abs(float64(v))); a > norm {
			norm = a
		}
	}
	for j := range got {
		ulp := ulpDist32(got[j], want[j])
		abs := math.Abs(float64(got[j] - want[j]))
		if ulp > quantULPBound && abs > quantAbsRel*float64(norm) {
			t.Fatalf("%s: channel %d beyond ULP contract: got %v want %v (ulp=%d abs=%g)",
				ctx, j, got[j], want[j], ulp, abs)
		}
	}
}

func TestQuantKernelULPBound(t *testing.T) {
	r := rng.New(20260808)
	for trial := 0; trial < 40; trial++ {
		n := 65 + r.Intn(400)
		d := []int{8, 16, 32, 64}[r.Intn(4)]
		bits := []int{4, 8}[r.Intn(2)]
		qs := quantStore(uint64(trial)+1, n, d, bits)
		ref := dequantClone(qs)
		q := conformanceQuery(uint64(trial*13+5), d)

		var scQ, scR attention.Scratch
		got := make([]float32, d)
		want := make([]float32, d)

		// Full attention over all tokens.
		scQ.Full(got, q, qs)
		scR.Full(want, q, ref)
		checkULP(t, "Full", got, want)
		if scQ.QuantRuns == 0 {
			t.Fatalf("trial %d: no page runs hit the int8 kernels (n=%d)", trial, n)
		}

		// Sparse over a random page-straddling selection.
		idx := []int{0, 1}
		for len(idx) < 32 {
			start := r.Intn(n)
			for k := 0; k < 6 && start+k < n; k++ {
				idx = append(idx, start+k)
			}
		}
		sort.Ints(idx)
		idx = dedupInts(idx)
		scQ.Sparse(got, q, qs, idx)
		scR.Sparse(want, q, ref, idx)
		checkULP(t, "Sparse", got, want)
	}
}

// TestQuantMixedPages locks the per-page dispatch: a store whose pages are
// partly quantized (shared pages skipped) must blend int8 and float runs and
// still meet the ULP contract against its fully restored twin.
func TestQuantMixedPages(t *testing.T) {
	const n, d, bits = 300, 16, 8
	s := conformanceStore(42, n, d)
	// Hold pages 0..1 shared via a fork so QuantizeFullPages skips them.
	f := s.Fork()
	f.Truncate(128)
	s.SetComputeQuant(bits)
	s.QuantizeFullPages()
	if s.PageQuantized(0) || s.PageQuantized(1) {
		t.Fatal("shared pages unexpectedly quantized")
	}
	if !s.PageQuantized(2) {
		t.Fatal("exclusive full page not quantized")
	}
	ref := dequantClone(s) // decodes quantized pages; shared pages copy exact
	q := conformanceQuery(9, d)
	var sc, scR attention.Scratch
	got := make([]float32, d)
	want := make([]float32, d)
	sc.Full(got, q, s)
	scR.Full(want, q, ref)
	checkULP(t, "mixed Full", got, want)
	if sc.QuantRuns == 0 || sc.FloatRuns == 0 {
		t.Fatalf("expected mixed dispatch, got quant=%d float=%d", sc.QuantRuns, sc.FloatRuns)
	}
	f.Free()
}

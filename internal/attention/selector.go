package attention

import "clusterkv/internal/kvcache"

// Selector is the contract between the inference engines (transformer model
// and trace harness) and a KV-cache compression method. One Selector instance
// manages the whole model: implementations keep per-(layer, head) state.
//
// Call sequence for a sequence of decode steps:
//
//	Reset(layers, heads, headDim)
//	for each (layer, head): OnPrefill(layer, head, store)   // after prefill
//	repeat per decode step:
//	    for each (layer, head): OnAppend(layer, head, store) // new token's KV appended
//	    for each (layer, head): idx := Select(layer, head, q, store, budget)
//	    EndStep()
//
// Select returns the positions whose K/V approximate full attention, or nil
// to request full attention (e.g. on bypass layers or when budget ≥ length).
type Selector interface {
	// Name returns the method name used in reports ("ClusterKV", "Quest", ...).
	Name() string
	// Reset prepares state for a new sequence shape.
	Reset(layers, heads, headDim int)
	// OnPrefill is invoked once per (layer, head) after the prefill KV is in
	// the store; implementations build metadata (clusters, page bounds, SVD).
	OnPrefill(layer, head int, s *kvcache.Store)
	// OnAppend is invoked per (layer, head) after one decode token's KV has
	// been appended to the store.
	OnAppend(layer, head int, s *kvcache.Store)
	// Select returns the token positions to attend over for query q, subject
	// to the budget. A nil return means "use full attention".
	Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int
	// EndStep marks the end of one decode step (all layers/heads done).
	EndStep()
	// Stats returns accumulated counters since the last Reset.
	Stats() SelStats
}

// LayerAware is an optional Selector extension: the model's forward loops
// (Prefill and Decode) bracket every layer's computation with
// BeforeLayer/AfterLayer, so a selector can overlap work with compute —
// layer-ahead prefetch issues speculative KV transfers in AfterLayer(l) and
// drains them in BeforeLayer(l+1), hiding transfer time behind the layer in
// between. Hooks run on the compute goroutine; implementations must tolerate
// being called before any prefill (no metadata yet).
type LayerAware interface {
	// BeforeLayer runs just before layer's attention/FFN computation.
	BeforeLayer(layer int)
	// AfterLayer runs right after layer's computation completes.
	AfterLayer(layer int)
}

// RuntimeAware is an optional Selector extension: selectors that route their
// simulated KV movement through an asynchronous transfer runtime accept it
// here. The serving engine hands every RuntimeAware selector its engine-wide
// runtime before the request's first prefill.
type RuntimeAware interface {
	SetTransferRuntime(rt *kvcache.TransferRuntime)
}

// StallReporter is an optional Selector extension: selectors whose ledgers
// account per-request transfer stalls report them here, summed across
// layers and heads — modeled channel seconds that blocked compute (exposed)
// vs seconds hidden behind it. The serving engine harvests the pair at
// retirement into the request's attribution breakdown (DESIGN.md §14).
// Wall-clock dependent telemetry: excluded from determinism fingerprints.
type StallReporter interface {
	TransferStalls() (exposedSec, hiddenSec float64)
}

// SelStats aggregates the operation counts the latency model charges for.
// All counts are totals across layers, heads and steps since Reset.
type SelStats struct {
	// Steps is the number of completed decode steps.
	Steps int64
	// SelectCalls counts Select invocations that performed selection
	// (bypass layers and full-attention returns are excluded).
	SelectCalls int64
	// TokensSelected is the total size of returned index sets.
	TokensSelected int64
	// TokensLoaded counts tokens transferred host→device (cache misses under
	// the offloading design; equals TokensSelected for methods without a
	// device cache).
	TokensLoaded int64
	// TokensHit counts tokens served from the device cache.
	TokensHit int64
	// ScoreOps counts inner-product dimensions evaluated during selection
	// (the O(·) terms of §II-C: L·d for per-token methods, L·d/page for
	// Quest, C·d for ClusterKV).
	ScoreOps int64
	// MetaOps counts metadata-building work (clustering iterations ×
	// assignments × d, page reductions, SVD projections).
	MetaOps int64
	// ClustersSelected counts selected clusters/pages across steps.
	ClustersSelected int64
}

// Add accumulates other into s.
func (s *SelStats) Add(other SelStats) {
	s.Steps += other.Steps
	s.SelectCalls += other.SelectCalls
	s.TokensSelected += other.TokensSelected
	s.TokensLoaded += other.TokensLoaded
	s.TokensHit += other.TokensHit
	s.ScoreOps += other.ScoreOps
	s.MetaOps += other.MetaOps
	s.ClustersSelected += other.ClustersSelected
}

// HitRate returns the device-cache hit rate TokensHit/(TokensHit+TokensLoaded),
// or 0 when nothing was requested.
func (s SelStats) HitRate() float64 {
	tot := s.TokensHit + s.TokensLoaded
	if tot == 0 {
		return 0
	}
	return float64(s.TokensHit) / float64(tot)
}

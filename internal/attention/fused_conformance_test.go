package attention_test

// Fused gather-attention conformance (DESIGN.md §12): the page-run fused
// Sparse kernel must be bit-identical to the unfused per-token gather
// (score each selected token via Key(i), softmax, accumulate via Value(i))
// across page-straddling, sorted, unsorted and single-token selections.
// Runs in the GOMAXPROCS=1 CI lane (make test-kernels) as well as the
// default schedule; the kernels are serial per (layer, head), so the lane
// locks schedule independence of the callers around them.

import (
	"math"
	"sort"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// unfusedSparse is the reference pre-fusion implementation: explicit
// per-token gather through the aliasing accessors.
func unfusedSparse(out, q []float32, s *kvcache.Store, idx []int) {
	scores := make([]float32, len(idx))
	inv := float32(1 / math.Sqrt(float64(s.HeadDim())))
	for j, p := range idx {
		scores[j] = tensor.Dot(q, s.Key(p)) * inv
	}
	softmaxRef(scores)
	for t := range out {
		out[t] = 0
	}
	for j, p := range idx {
		w := scores[j]
		if w == 0 {
			continue
		}
		row := s.Value(p)
		for t := range out {
			out[t] += w * row[t]
		}
	}
}

func TestFusedSparseBitIdentical(t *testing.T) {
	const d = 16
	for _, n := range []int{40, 64, 65, 300, 513} {
		s := conformanceStore(uint64(n), n, d)
		r := rng.New(uint64(7 + n))
		q := conformanceQuery(uint64(n*3+1), d)

		sels := map[string][]int{
			"single": {n / 2},
			"first":  {0},
			"last":   {n - 1},
		}
		// Page-straddling contiguous run across every page boundary present.
		full := make([]int, n)
		for i := range full {
			full[i] = i
		}
		sels["all"] = full
		// Selector-shaped: sinks + scattered cluster runs + tail, sorted.
		sel := []int{0, 1, 2, 3}
		for len(sel) < 48 && len(sel) < n {
			start := int(r.Uint64() % uint64(n))
			for k := 0; k < 5 && start+k < n; k++ {
				sel = append(sel, start+k)
			}
		}
		sort.Ints(sel)
		sel = dedupInts(sel)
		sels["clustered"] = sel
		// Unsorted selection: the kernel must follow idx order, not position
		// order (runs simply never form).
		rev := make([]int, 0, n/3)
		for i := n - 1; i >= 0; i -= 3 {
			rev = append(rev, i)
		}
		sels["descending"] = rev

		var sc attention.Scratch
		for name, idx := range sels {
			got := make([]float32, d)
			want := make([]float32, d)
			sc.Sparse(got, q, s, idx)
			unfusedSparse(want, q, s, idx)
			for j := range got {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("n=%d sel=%s: fused Sparse diverges at channel %d: %v vs %v",
						n, name, j, got[j], want[j])
				}
			}
		}
	}
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestFusedSparseCOWFork locks fusion against the page-sharing machinery:
// a fork plus post-fork divergence (COW tail) must not change fused reads.
func TestFusedSparseCOWFork(t *testing.T) {
	const d = 8
	s := conformanceStore(3, 100, d)
	f := s.Fork()
	ext := conformanceStore(4, 30, d)
	for i := 0; i < ext.Len(); i++ {
		s.Append(ext.Key(i), ext.Value(i))
	}
	q := conformanceQuery(11, d)
	for name, st := range map[string]*kvcache.Store{"orig": s, "fork": f} {
		idx := []int{0, 1, 62, 63, 64, 65, 90, st.Len() - 1}
		var sc attention.Scratch
		got := make([]float32, d)
		want := make([]float32, d)
		sc.Sparse(got, q, st, idx)
		unfusedSparse(want, q, st, idx)
		for j := range got {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("%s: fused Sparse diverges at channel %d", name, j)
			}
		}
	}
}

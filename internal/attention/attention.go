// Package attention implements the attention computations shared by the
// transformer engine, the compression methods and the evaluation harness:
// full causal attention, sparse attention over an explicit index set, and
// raw attention-weight probes used for importance analysis.
//
// All routines operate on a single (layer, head) kvcache.Store; batching
// across heads is done by callers. The gather paths read the store's pages
// directly (KeyPage/ValuePage) — no flat materialisation — walking tokens in
// position order with the same per-row arithmetic as a contiguous layout, so
// outputs are bit-identical to the flat-copy fallback (Store.Keys/Values).
package attention

import (
	"math"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/tensor"
)

// Full computes out = softmax(q·Kᵀ/√d)·V over all n tokens currently in the
// store. scores is scratch space of length ≥ n (pass nil to allocate).
// It returns the scratch slice for reuse.
func Full(out, q []float32, s *kvcache.Store, scores []float32) []float32 {
	n := s.Len()
	d := s.HeadDim()
	if cap(scores) < n {
		scores = make([]float32, n)
	}
	scores = scores[:n]
	Weights(scores, q, s)
	tensor.Softmax(scores)
	tensor.Fill(out, 0)
	i := 0
	for p := 0; p < s.NumPages(); p++ {
		vals := s.ValuePage(p)
		for r := 0; r < len(vals); r += d {
			w := scores[i]
			i++
			if w == 0 {
				continue
			}
			row := vals[r : r+d]
			for j := range out {
				out[j] += w * row[j]
			}
		}
	}
	return scores
}

// Sparse computes out = softmax(q·K_Sᵀ/√d)·V_S over the tokens listed in
// idx. scores is scratch of length ≥ len(idx). It returns the scratch slice.
func Sparse(out, q []float32, s *kvcache.Store, idx []int, scores []float32) []float32 {
	m := len(idx)
	if cap(scores) < m {
		scores = make([]float32, m)
	}
	scores = scores[:m]
	inv := float32(1 / math.Sqrt(float64(s.HeadDim())))
	for j, p := range idx {
		scores[j] = tensor.Dot(q, s.Key(p)) * inv
	}
	tensor.Softmax(scores)
	tensor.Fill(out, 0)
	for j, p := range idx {
		w := scores[j]
		if w == 0 {
			continue
		}
		row := s.Value(p)
		for t := range out {
			out[t] += w * row[t]
		}
	}
	return scores
}

// Weights writes the scaled raw attention logits q·k_i/√d for every token i
// into dst (length must be ≥ s.Len()). No softmax is applied; these are the
// "attention weights" the paper's selection methods rank by (q·Kᵀ, §III-A).
func Weights(dst, q []float32, s *kvcache.Store) {
	d := s.HeadDim()
	inv := float32(1 / math.Sqrt(float64(d)))
	i := 0
	for p := 0; p < s.NumPages(); p++ {
		keys := s.KeyPage(p)
		for r := 0; r < len(keys); r += d {
			row := keys[r : r+d]
			var dot float32
			for j := range q {
				dot += q[j] * row[j]
			}
			dst[i] = dot * inv
			i++
		}
	}
}

// TopTrue returns the indices of the B tokens with the largest attention
// weights for q — the oracle set I_T^true of the paper's recall-rate metric
// (§V-B). scores is scratch of length ≥ s.Len().
func TopTrue(q []float32, s *kvcache.Store, b int, scores []float32) []int {
	n := s.Len()
	if cap(scores) < n {
		scores = make([]float32, n)
	}
	scores = scores[:n]
	Weights(scores, q, s)
	return tensor.TopK(scores, b)
}

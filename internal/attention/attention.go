// Package attention implements the attention computations shared by the
// transformer engine, the compression methods and the evaluation harness:
// full causal attention, sparse attention over an explicit index set, and
// raw attention-weight probes used for importance analysis.
//
// All routines operate on a single (layer, head) kvcache.Store; batching
// across heads is done by callers. The gather paths are *fused* with the
// score and weighted-sum loops (DESIGN.md §12): selected tokens are walked as
// page runs — maximal stretches of consecutive positions inside one page — so
// each run is one blocked kernel call over contiguous page rows, with no
// intermediate gathered copy. Per-row arithmetic order matches a contiguous
// layout exactly, so exact-path outputs are bit-identical to the flat-copy
// fallback (Store.Keys/Values) at any worker count.
//
// Stores opted into compute quantization (Store.SetComputeQuant) dispatch per
// page run to int8 kernels that read quant.Tensor codes directly — see
// quantized.go for the folded-zero-point algebra and the bounded-ULP
// contract.
package attention

import (
	"math"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/tensor"
)

// Scratch holds the reusable per-sequence (or per-worker) buffers of the
// decode attention kernels, so steady-state decode rounds allocate nothing:
// buffers grow geometrically and are reused across calls. A Scratch is not
// safe for concurrent use; give each goroutine its own.
type Scratch struct {
	scores []float32
	fold   []float32 // folded quant coefficients (see quantized.go)

	// QuantRuns and FloatRuns count page runs dispatched to the int8 and
	// float32 kernels while compute quantization was enabled on the store —
	// the serve metrics source for quantized-decode coverage. Runs on stores
	// with the exact path (ComputeQuantBits == 0) are not counted.
	QuantRuns, FloatRuns int64
}

// Scores returns the score buffer sized to n, growing capacity geometrically
// (never shrinking) so a decode loop whose context grows by one token per
// step amortises to zero allocations.
func (sc *Scratch) Scores(n int) []float32 {
	sc.scores = growF32(sc.scores, n)
	return sc.scores
}

func (sc *Scratch) foldBuf(n int) []float32 {
	sc.fold = growF32(sc.fold, n)
	return sc.fold
}

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		if c < 64 {
			c = 64
		}
		buf = make([]float32, c)
	}
	return buf[:n]
}

// Full computes out = softmax(q·Kᵀ/√d)·V over all n tokens currently in the
// store, page by page with the blocked kernels.
func (sc *Scratch) Full(out, q []float32, s *kvcache.Store) {
	sc.FullN(out, q, s, s.Len())
}

// FullN is Full restricted to the first n tokens — the causal attention of a
// prefill position, which must ignore the later positions already appended
// to the store by the same layer pass.
func (sc *Scratch) FullN(out, q []float32, s *kvcache.Store, n int) {
	d := s.HeadDim()
	scores := sc.Scores(n)
	inv := float32(1 / math.Sqrt(float64(d)))
	bits := s.ComputeQuantBits()
	for p, i := 0, 0; i < n; p++ {
		rows := s.PageRows(p)
		if rows > n-i {
			rows = n - i
		}
		if bits > 0 {
			if qk, _ := s.PageQuant(p); qk != nil {
				dotQuantK(scores[i:i+rows], q, qk, 0, inv, sc.foldBuf(d))
				sc.QuantRuns++
				i += rows
				continue
			}
			sc.FloatRuns++
		}
		tensor.DotRows(scores[i:i+rows], q, s.KeyPage(p), d, inv)
		i += rows
	}
	tensor.Softmax(scores)
	tensor.Fill(out, 0)
	for p, i := 0, 0; i < n; p++ {
		rows := s.PageRows(p)
		if rows > n-i {
			rows = n - i
		}
		if bits > 0 {
			if _, qv := s.PageQuant(p); qv != nil {
				addQuantV(out, scores[i:i+rows], qv, 0, sc.foldBuf(rows))
				i += rows
				continue
			}
		}
		tensor.AddScaledRows(out, scores[i:i+rows], s.ValuePage(p), d)
		i += rows
	}
}

// Sparse computes out = softmax(q·K_Sᵀ/√d)·V_S over the tokens listed in
// idx, fusing the gather with the kernels: maximal runs of consecutive
// positions within one page (selectors emit sorted indices, so cluster- and
// page-contiguous selections form long runs) become single blocked calls over
// the page's contiguous rows; isolated indices degrade to one-row runs.
// idx order is preserved — scores and accumulation follow idx exactly as the
// unfused per-token loop, so exact-path outputs are bit-identical to it.
func (sc *Scratch) Sparse(out, q []float32, s *kvcache.Store, idx []int) {
	m := len(idx)
	d := s.HeadDim()
	P := s.PageTokens()
	scores := sc.Scores(m)
	inv := float32(1 / math.Sqrt(float64(d)))
	bits := s.ComputeQuantBits()
	for j := 0; j < m; {
		i0 := idx[j]
		p := i0 / P
		e := runEnd(idx, j, (p+1)*P)
		from := i0 - p*P
		if bits > 0 {
			if qk, _ := s.PageQuant(p); qk != nil {
				dotQuantK(scores[j:e], q, qk, from, inv, sc.foldBuf(d))
				sc.QuantRuns++
				j = e
				continue
			}
			sc.FloatRuns++
		}
		keys := s.KeyPage(p)
		tensor.DotRows(scores[j:e], q, keys[from*d:(from+e-j)*d], d, inv)
		j = e
	}
	tensor.Softmax(scores)
	tensor.Fill(out, 0)
	for j := 0; j < m; {
		i0 := idx[j]
		p := i0 / P
		e := runEnd(idx, j, (p+1)*P)
		from := i0 - p*P
		if bits > 0 {
			if _, qv := s.PageQuant(p); qv != nil {
				addQuantV(out, scores[j:e], qv, from, sc.foldBuf(e-j))
				j = e
				continue
			}
		}
		vals := s.ValuePage(p)
		tensor.AddScaledRows(out, scores[j:e], vals[from*d:(from+e-j)*d], d)
		j = e
	}
}

// runEnd extends a page run: the longest stretch idx[j..e) of consecutive
// positions that stays below pageEnd. Works for any idx order — non-adjacent
// or descending neighbours simply end the run.
func runEnd(idx []int, j, pageEnd int) int {
	e := j + 1
	for e < len(idx) && idx[e] == idx[e-1]+1 && idx[e] < pageEnd {
		e++
	}
	return e
}

// weights writes the scaled raw attention logits into dst using sc's fold
// scratch for quantized pages.
func (sc *Scratch) weights(dst, q []float32, s *kvcache.Store) {
	d := s.HeadDim()
	inv := float32(1 / math.Sqrt(float64(d)))
	n := s.Len()
	bits := s.ComputeQuantBits()
	for p, i := 0, 0; i < n; p++ {
		rows := s.PageRows(p)
		if bits > 0 {
			if qk, _ := s.PageQuant(p); qk != nil {
				dotQuantK(dst[i:i+rows], q, qk, 0, inv, sc.foldBuf(d))
				i += rows
				continue
			}
		}
		tensor.DotRows(dst[i:i+rows], q, s.KeyPage(p), d, inv)
		i += rows
	}
}

// Weights writes the scaled raw attention logits q·k_i/√d for every token i
// into dst (length must be ≥ s.Len()), reusing the scratch's fold buffer for
// quantized pages. Probing decoders on a hot path should use this instead of
// the package-level Weights, which allocates a fresh Scratch per call.
func (sc *Scratch) Weights(dst, q []float32, s *kvcache.Store) {
	sc.weights(dst[:s.Len()], q, s)
}

// Full computes out = softmax(q·Kᵀ/√d)·V over all n tokens currently in the
// store. scores is scratch space of length ≥ n (pass nil to allocate).
// It returns the scratch slice for reuse. Callers on a decode hot path should
// hold a Scratch and use its Full method instead.
func Full(out, q []float32, s *kvcache.Store, scores []float32) []float32 {
	sc := Scratch{scores: scores}
	sc.Full(out, q, s)
	return sc.scores
}

// Sparse computes out = softmax(q·K_Sᵀ/√d)·V_S over the tokens listed in
// idx. scores is scratch of length ≥ len(idx). It returns the scratch slice.
// Callers on a decode hot path should hold a Scratch and use its Sparse
// method instead.
func Sparse(out, q []float32, s *kvcache.Store, idx []int, scores []float32) []float32 {
	sc := Scratch{scores: scores}
	sc.Sparse(out, q, s, idx)
	return sc.scores
}

// Weights writes the scaled raw attention logits q·k_i/√d for every token i
// into dst (length must be ≥ s.Len()). No softmax is applied; these are the
// "attention weights" the paper's selection methods rank by (q·Kᵀ, §III-A).
func Weights(dst, q []float32, s *kvcache.Store) {
	var sc Scratch
	sc.weights(dst[:s.Len()], q, s)
}

// TopTrue returns the indices of the B tokens with the largest attention
// weights for q — the oracle set I_T^true of the paper's recall-rate metric
// (§V-B). scores is scratch of length ≥ s.Len().
func TopTrue(q []float32, s *kvcache.Store, b int, scores []float32) []int {
	n := s.Len()
	scores = growF32(scores, n)
	Weights(scores, q, s)
	return tensor.TopK(scores, b)
}

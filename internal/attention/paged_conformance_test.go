package attention_test

// Page-aware gather conformance: the attention kernels read KV pages
// directly; their outputs must be bit-identical to the same arithmetic over
// the flat-copy fallback (Store.Keys/Values) — the tentpole's "page-aware
// gather returns the same float32 values" guarantee.

import (
	"math"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

// flatFull recomputes Full attention from the flat views with the reference
// per-row arithmetic (the pre-paged implementation).
func flatFull(out, q []float32, s *kvcache.Store) {
	n, d := s.Len(), s.HeadDim()
	scores := make([]float32, n)
	inv := float32(1 / math.Sqrt(float64(d)))
	keys := s.Keys()
	for i := 0; i < n; i++ {
		row := keys[i*d : (i+1)*d]
		var dot float32
		for j := range q {
			dot += q[j] * row[j]
		}
		scores[i] = dot * inv
	}
	softmaxRef(scores)
	for j := range out {
		out[j] = 0
	}
	vals := s.Values()
	for i := 0; i < n; i++ {
		w := scores[i]
		if w == 0 {
			continue
		}
		row := vals[i*d : (i+1)*d]
		for j := range out {
			out[j] += w * row[j]
		}
	}
}

// softmaxRef mirrors tensor.Softmax's exact operation order.
func softmaxRef(xs []float32) {
	maxv := xs[0]
	for _, v := range xs[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range xs {
		e := float32(math.Exp(float64(v - maxv)))
		xs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range xs {
		xs[i] *= inv
	}
}

// TestPageAwareGatherBitIdentical runs Full and Weights over stores that
// span multiple pages (including a partial tail and COW-diverged forks) and
// compares every float bit-for-bit against the flat-copy reference.
func TestPageAwareGatherBitIdentical(t *testing.T) {
	const d = 8
	for _, n := range []int{1, 63, 64, 65, 200, 333} {
		s := conformanceStore(uint64(n), n, d)
		// Exercise COW divergence too: fork, then extend the original.
		f := s.Fork()
		extra := conformanceStore(99, 7, d)
		for i := 0; i < extra.Len(); i++ {
			s.Append(extra.Key(i), extra.Value(i))
		}

		r := rng.New(uint64(1000 + n))
		q := make([]float32, d)
		for j := range q {
			q[j] = r.NormFloat32()
		}
		for name, st := range map[string]*kvcache.Store{"orig": s, "fork": f} {
			got := make([]float32, d)
			want := make([]float32, d)
			attention.Full(got, q, st, nil)
			flatFull(want, q, st)
			for j := range got {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("n=%d %s: Full diverges at channel %d: %v vs %v", n, name, j, got[j], want[j])
				}
			}
			w1 := make([]float32, st.Len())
			attention.Weights(w1, q, st)
			keys := st.Keys()
			inv := float32(1 / math.Sqrt(float64(d)))
			for i := 0; i < st.Len(); i++ {
				var dot float32
				for j := range q {
					dot += q[j] * keys[i*d+j]
				}
				if math.Float32bits(w1[i]) != math.Float32bits(dot*inv) {
					t.Fatalf("n=%d %s: Weights diverges at token %d", n, name, i)
				}
			}
		}
	}
}

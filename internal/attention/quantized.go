package attention

import "clusterkv/internal/quant"

// Dequantize-free int8 decode kernels (DESIGN.md §12). A KIVI tensor stores
// v[i][j] = zero[g] + code[i][j]·scale[g]; substituting that into the score
// and weighted-sum reductions and folding the affine terms moves every
// per-element dequantization out of the inner loop:
//
//	keys (per-channel groups, g = j):
//	  <q, k_i> = Σ_j q[j]·(z[j] + c[i][j]·s[j])
//	           = qz + Σ_j (q[j]·s[j])·c[i][j]     qz, q·s computed once/page
//
//	values (per-token groups, g = i):
//	  out[j] += Σ_i w[i]·(z[i] + c[i][j]·s[i])
//	          = Σ_i (w[i]·s[i])·c[i][j]  +  (Σ_i w[i]·z[i])   added once
//
// The inner loops are pure uint8→float32 multiply-accumulate over the code
// bytes — 4× denser than float rows, so a page's scores cost one cache line
// of codes per 64 channels. Results are NOT bit-identical to the float path;
// the contract is the bounded-ULP property locked by the conformance suite:
// each kernel equals dequantize-then-float-GEMV up to reassociating the
// per-group affine term, a bounded perturbation property-tested over random
// shapes (TestQuantKernelULPBound).

// dotQuantK computes dst[i] = inv · <q, row (from+i) of qk> for
// i in [0, len(dst)) directly over per-channel quantized codes.
// qs is scratch of length qk.D for the folded per-channel coefficients.
func dotQuantK(dst, q []float32, qk *quant.Tensor, from int, inv float32, qs []float32) {
	d := qk.D
	if len(q) != d || len(qs) != d {
		panic("attention: dotQuantK dimension mismatch")
	}
	var qz float32
	for j, v := range q {
		qs[j] = v * qk.Scales[j]
		qz += v * qk.Zeros[j]
	}
	m := len(dst)
	i := 0
	for ; i+4 <= m; i += 4 {
		base := (from + i) * d
		c0 := qk.Codes[base : base+d]
		c1 := qk.Codes[base+d : base+2*d]
		c2 := qk.Codes[base+2*d : base+3*d]
		c3 := qk.Codes[base+3*d : base+4*d]
		var s0, s1, s2, s3 float32
		for j, w := range qs {
			s0 += w * float32(c0[j])
			s1 += w * float32(c1[j])
			s2 += w * float32(c2[j])
			s3 += w * float32(c3[j])
		}
		dst[i] = (qz + s0) * inv
		dst[i+1] = (qz + s1) * inv
		dst[i+2] = (qz + s2) * inv
		dst[i+3] = (qz + s3) * inv
	}
	for ; i < m; i++ {
		base := (from + i) * d
		row := qk.Codes[base : base+d]
		var s float32
		for j, w := range qs {
			s += w * float32(row[j])
		}
		dst[i] = (qz + s) * inv
	}
}

// addQuantV accumulates out[j] += Σ_i w[i] · (row (from+i) of qv)[j] directly
// over per-token quantized codes. ws is scratch of length len(w) for the
// folded per-token coefficients.
func addQuantV(out, w []float32, qv *quant.Tensor, from int, ws []float32) {
	d := qv.D
	if len(out) != d || len(ws) != len(w) {
		panic("attention: addQuantV dimension mismatch")
	}
	var wz float32
	for i, wi := range w {
		ws[i] = wi * qv.Scales[from+i]
		wz += wi * qv.Zeros[from+i]
	}
	m := len(w)
	i := 0
	for ; i+4 <= m; i += 4 {
		w0, w1, w2, w3 := ws[i], ws[i+1], ws[i+2], ws[i+3]
		base := (from + i) * d
		c0 := qv.Codes[base : base+d]
		c1 := qv.Codes[base+d : base+2*d]
		c2 := qv.Codes[base+2*d : base+3*d]
		c3 := qv.Codes[base+3*d : base+4*d]
		for j := range out {
			v := out[j]
			v += w0 * float32(c0[j])
			v += w1 * float32(c1[j])
			v += w2 * float32(c2[j])
			v += w3 * float32(c3[j])
			out[j] = v
		}
	}
	for ; i < m; i++ {
		wi := ws[i]
		base := (from + i) * d
		row := qv.Codes[base : base+d]
		for j := range out {
			out[j] += wi * float32(row[j])
		}
	}
	if wz != 0 {
		for j := range out {
			out[j] += wz
		}
	}
}

package attention

import (
	"math"
	"testing"
	"testing/quick"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

func fillStore(seed uint64, n, d int) *kvcache.Store {
	r := rng.New(seed)
	s := kvcache.NewStore(d)
	k := make([]float32, d)
	v := make([]float32, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			k[j] = r.NormFloat32()
			v[j] = r.NormFloat32()
		}
		s.Append(k, v)
	}
	return s
}

func TestSparseWithAllIndicesEqualsFull(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn)%40 + 1
		d := 8
		s := fillStore(seed, n, d)
		r := rng.New(seed ^ 1)
		q := make([]float32, d)
		for j := range q {
			q[j] = r.NormFloat32()
		}
		full := make([]float32, d)
		sparse := make([]float32, d)
		Full(full, q, s, nil)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		Sparse(sparse, q, s, idx, nil)
		for j := range full {
			if math.Abs(float64(full[j]-sparse[j])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWeightsScaling(t *testing.T) {
	s := kvcache.NewStore(4)
	s.Append([]float32{2, 0, 0, 0}, []float32{0, 0, 0, 0})
	q := []float32{3, 0, 0, 0}
	w := make([]float32, 1)
	Weights(w, q, s)
	want := float32(6.0 / 2.0) // q·k/√d, √4 = 2
	if w[0] != want {
		t.Fatalf("Weights = %v, want %v", w[0], want)
	}
}

func TestFullIsConvexCombination(t *testing.T) {
	// With identical values, output equals that value regardless of q.
	s := kvcache.NewStore(2)
	for i := 0; i < 5; i++ {
		s.Append([]float32{float32(i), 1}, []float32{3, -2})
	}
	out := make([]float32, 2)
	Full(out, []float32{1, 1}, s, nil)
	if math.Abs(float64(out[0]-3)) > 1e-5 || math.Abs(float64(out[1]+2)) > 1e-5 {
		t.Fatalf("Full = %v, want [3,-2]", out)
	}
}

func TestSparseSubsetFocusesMass(t *testing.T) {
	s := kvcache.NewStore(1)
	s.Append([]float32{10}, []float32{1})
	s.Append([]float32{0}, []float32{100})
	out := make([]float32, 1)
	Sparse(out, []float32{1}, s, []int{0}, nil)
	if out[0] != 1 {
		t.Fatalf("Sparse over {0} = %v, want exactly value of token 0", out[0])
	}
}

func TestTopTrueMatchesOracle(t *testing.T) {
	s := fillStore(11, 30, 4)
	r := rng.New(12)
	q := make([]float32, 4)
	for j := range q {
		q[j] = r.NormFloat32()
	}
	scores := make([]float32, s.Len())
	Weights(scores, q, s)
	top := TopTrue(q, s, 5, nil)
	if len(top) != 5 {
		t.Fatalf("TopTrue returned %d indices", len(top))
	}
	// Every returned index must have score >= every excluded index.
	minTop := float32(math.Inf(1))
	for _, p := range top {
		if scores[p] < minTop {
			minTop = scores[p]
		}
	}
	inTop := map[int]bool{}
	for _, p := range top {
		inTop[p] = true
	}
	for i, sc := range scores {
		if !inTop[i] && sc > minTop {
			t.Fatalf("excluded token %d has higher score than included", i)
		}
	}
}

func TestSelStatsAddAndHitRate(t *testing.T) {
	a := SelStats{Steps: 1, TokensHit: 3, TokensLoaded: 1, ScoreOps: 10}
	b := SelStats{Steps: 2, TokensHit: 1, TokensLoaded: 3, MetaOps: 5}
	a.Add(b)
	if a.Steps != 3 || a.TokensHit != 4 || a.TokensLoaded != 4 || a.ScoreOps != 10 || a.MetaOps != 5 {
		t.Fatalf("Add got %+v", a)
	}
	if a.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", a.HitRate())
	}
	if (SelStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

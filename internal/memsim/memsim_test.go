package memsim

import (
	"math"
	"testing"
)

func TestShapeFootprints(t *testing.T) {
	m := Llama31_8B()
	if m.WeightBytes() != float64(m.Params)*2 {
		t.Fatal("WeightBytes")
	}
	// 2 (K,V) × 8 kv heads × 128 dim × 32 layers × 2 bytes = 128 KiB/token.
	if got := m.KVBytesPerToken(); got != 131072 {
		t.Fatalf("KVBytesPerToken = %v", got)
	}
}

func TestDecodeStepFullGrowsWithContext(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	a := hw.DecodeStepFull(m, 8192).Total
	b := hw.DecodeStepFull(m, 32768).Total
	if b <= a {
		t.Fatal("full-KV step must grow with context")
	}
}

func TestClusterKVStepNearlyContextInvariant(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	c := ClusterKVCounts{Budget: 1024, Clusters: 400, MissRate: 0.37}
	step := hw.DecodeStepClusterKV(m, c).Total
	// The step depends on budget and cluster count, not context length —
	// the core efficiency claim.
	full32 := hw.DecodeStepFull(m, 32768).Total
	if step >= full32 {
		t.Fatal("compressed step not faster than full at 32k")
	}
}

func TestClusterKVSpeedupShape(t *testing.T) {
	// Paper headline: ~2x total speedup at P=32k, D=1024, budget 1024, and
	// up to ~2.5x decoding throughput.
	hw := AdaRTX6000()
	m := Llama31_8B()
	p, d := 32768, 1024
	pre := hw.Prefill(m, p).Total
	full := pre + float64(d)*hw.DecodeStepFull(m, p+d/2).Total
	step := hw.DecodeStepClusterKV(m, ClusterKVCounts{Budget: 1024, Clusters: 410, MissRate: 0.3})
	ckv := pre + float64(d)*step.Total
	speedup := full / ckv
	if speedup < 1.5 || speedup > 3 {
		t.Fatalf("total speedup %v outside the paper's ballpark [1.5, 3]", speedup)
	}
	thr := hw.DecodeStepFull(m, p+d/2).Total / step.Total
	if thr < 1.8 || thr > 3.5 {
		t.Fatalf("throughput gain %v outside [1.8, 3.5]", thr)
	}
}

func TestTransferOverlapsCompute(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	// Small transfer must be hidden: total == compute + launch.
	small := hw.DecodeStepClusterKV(m, ClusterKVCounts{Budget: 256, Clusters: 100, MissRate: 0.1})
	computeSide := small.Weights + small.Attention + small.Selection
	if math.Abs(small.Total-(computeSide+small.Launch)) > 1e-9 {
		t.Fatalf("hidden transfer not overlapped: %+v", small)
	}
	// A huge miss rate on a huge budget must dominate via max().
	big := hw.DecodeStepClusterKV(m, ClusterKVCounts{Budget: 60000, Clusters: 100, MissRate: 1})
	if big.Total < big.Transfer {
		t.Fatalf("transfer-bound step not respected: %+v", big)
	}
}

func TestQuestVsClusterKVDeviationSmall(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	quest := hw.DecodeStepQuest(m, 32768, QuestCounts{Budget: 1024, PageSize: 16}).Total
	ckv := hw.DecodeStepClusterKV(m, ClusterKVCounts{Budget: 1024, Clusters: 410, MissRate: 0.3}).Total
	dev := math.Abs(ckv-quest) / quest
	if dev > 0.05 {
		t.Fatalf("deviation %.1f%% above the paper's 5%%", dev*100)
	}
}

func TestInfiniGenComparableToOffloadFull(t *testing.T) {
	// Paper §V-C: InfiniGen's latency is comparable to full KV.
	hw := AdaRTX6000()
	m := OPT67B()
	full := hw.DecodeStepOffloadFull(m, 2048).Total
	infini := hw.DecodeStepInfiniGen(m, 2048, InfiniGenCounts{Budget: 256, PartialDim: 32}).Total
	ratio := infini / full
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("InfiniGen/full = %v, want comparable", ratio)
	}
}

func TestPrefillScalesSuperlinearly(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	p8 := hw.Prefill(m, 8192).Total
	p32 := hw.Prefill(m, 32768).Total
	if p32 <= 4*p8 {
		t.Fatal("prefill must grow superlinearly (quadratic attention term)")
	}
	if p32 >= 16*p8 {
		t.Fatal("prefill should not be fully quadratic (GEMM dominates)")
	}
}

func TestClusterWorkSmallShareOfPrefill(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	p := 32768
	// iters≈10, C0=L/80, all selection layers.
	ops := int64(10) * int64(p) * int64(p/80) * int64(m.HeadDim) * int64(m.NKVHeads) * int64(m.NLayers-2)
	frac := hw.ClusterWork(ops) / hw.Prefill(m, p).Total
	if frac < 0.01 || frac > 0.2 {
		t.Fatalf("clustering share of prefill %.1f%% outside the plausible band", frac*100)
	}
}

func TestBreakdownComposition(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	b := hw.DecodeStepInfiniGen(m, 8192, InfiniGenCounts{Budget: 256, PartialDim: 32})
	compute := b.Weights + b.Attention + b.Selection
	want := math.Max(compute, b.Transfer) + b.HostWork + b.Launch
	if math.Abs(b.Total-want) > 1e-12 {
		t.Fatalf("Total %v != composition %v", b.Total, want)
	}
}

func TestPageGranularTransferRoundsUp(t *testing.T) {
	hw := AdaRTX6000()
	m := Llama31_8B()
	base := ClusterKVCounts{Budget: 1000, Clusters: 400, MissRate: 0.333}
	tok := hw.DecodeStepClusterKV(m, base)

	paged := base
	paged.PageTokens = 64
	pg := hw.DecodeStepClusterKV(m, paged)

	// 333 missed tokens -> 6 pages of 64 = 384 page-tokens: the paged charge
	// must exceed the token-granular one by exactly the rounding slack.
	if pg.Transfer <= tok.Transfer {
		t.Fatalf("paged transfer %.3g not above token-granular %.3g", pg.Transfer, tok.Transfer)
	}
	want := 384 * m.KVBytesPerToken() / hw.PCIeBandwidth
	if math.Abs(pg.Transfer-want)/want > 1e-12 {
		t.Fatalf("paged transfer %.6g, want %.6g", pg.Transfer, want)
	}
	// Compute terms are untouched by the granularity switch.
	if pg.Weights != tok.Weights || pg.Attention != tok.Attention || pg.Selection != tok.Selection {
		t.Fatal("page granularity changed non-transfer terms")
	}

	// An exact page multiple charges identically under both granularities.
	exact := ClusterKVCounts{Budget: 1024, Clusters: 400, MissRate: 0.5, PageTokens: 64}
	exactTok := exact
	exactTok.PageTokens = 0
	a := hw.DecodeStepClusterKV(m, exact).Transfer
	b := hw.DecodeStepClusterKV(m, exactTok).Transfer
	if a != b {
		t.Fatalf("512 missed tokens: paged %.6g vs token %.6g", a, b)
	}

	// PageTransfer is the raw per-page PCIe term.
	if got := hw.PageTransfer(m, 6, 64); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("PageTransfer = %.6g, want %.6g", got, want)
	}
}

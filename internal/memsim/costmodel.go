package memsim

// LatencyModel converts serving-level round/token/page counts into modeled
// seconds. It follows the memsim idiom (DESIGN.md §4): the algorithms run for
// real on the small deterministic engine, producing exact token, page and
// round counts, and those counts are costed as if the stack were serving
// Shape (Llama-3.1-8B by default) on Hardware — which is what makes prefill,
// decode and PCIe page movement carry their paper-scale relative weights
// instead of the toy model's.
//
// Two layers share it: the fleet router prices placements and reconstructs
// modeled TTFT/TBT from round schedules, and the serve engine's attribution
// clock (DESIGN.md §14) prices every round's prefill/decode/tiering work to
// split each request's modeled wall time into phases. Both uses are pure
// functions of deterministic state — token counts, page counts, scheduler
// rounds — so modeled latencies reproduce run-to-run even though wall clock
// does not.
type LatencyModel struct {
	// PrefillSecPerTok is the modeled compute time to prefill one token:
	// 2 FLOPs per weight through the dense pipeline.
	PrefillSecPerTok float64
	// DecodeSecPerTok is the modeled time of one batched decode step: the
	// weight-streaming pass every concurrent stream shares, plus the fixed
	// launch overhead. Continuous batching is what makes this per-round, not
	// per-stream.
	DecodeSecPerTok float64
	// SecPerPlanePage is the modeled PCIe time to move one (layer, head) KV
	// page (Hardware.SecPerKVPage), and PagePlanes the (layer, head) plane
	// count a token's KV spans on the modeled shape.
	SecPerPlanePage float64
	PagePlanes      int64
	// PageTokens is the KV page size the model's page rounding uses.
	PageTokens int
}

// NewLatencyModel derives the model from the hardware and the modeled shape.
func NewLatencyModel(hw Hardware, shape ModelShape, pageTokens int) LatencyModel {
	return LatencyModel{
		PrefillSecPerTok: 2 * float64(shape.Params) / hw.ComputeFLOPS,
		DecodeSecPerTok:  shape.WeightBytes()/hw.HBMBandwidth + hw.LaunchOverhead,
		SecPerPlanePage:  hw.SecPerKVPage(shape.HeadDim, pageTokens),
		PagePlanes:       int64(shape.NLayers * shape.NKVHeads),
		PageTokens:       pageTokens,
	}
}

// PrefillSec models prefilling n marginal tokens: dense compute plus the
// PCIe movement of the KV pages that prefill writes.
func (lm LatencyModel) PrefillSec(n int) float64 {
	pages := lm.PagesFor(n) * lm.PagePlanes
	return lm.PrefillSecPerTok*float64(n) + lm.SecPerPlanePage*float64(pages)
}

// PagesFor returns the per-plane page count covering n tokens.
func (lm LatencyModel) PagesFor(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + lm.PageTokens - 1) / lm.PageTokens)
}

// TierSec models the channel time of moving rawSlots token slots (summed
// across planes) between tiers, page-rounded — the cost the attribution clock
// charges a round's spill/promote traffic with.
func (lm LatencyModel) TierSec(rawSlots int64) float64 {
	if rawSlots <= 0 {
		return 0
	}
	p := int64(lm.PageTokens)
	return lm.SecPerPlanePage * float64((rawSlots+p-1)/p)
}

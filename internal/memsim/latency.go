package memsim

import "math"

// DecodeBreakdown itemises one decode step's modeled latency in seconds.
// Total applies copy/compute overlap: host→device transfers proceed on the
// copy engine concurrently with compute, so
// Total = max(computeSide, Transfer) + HostSide + Launch.
type DecodeBreakdown struct {
	Weights   float64 // streaming model weights (GEMV, memory bound)
	Attention float64 // reading K/V for attention
	Selection float64 // device-side selection work (centroid/page scores)
	HostWork  float64 // host-side selection work (InfiniGen partial scores)
	Transfer  float64 // PCIe host→device KV copies
	Launch    float64 // kernel launch/sync overhead
	Total     float64
}

func (hw Hardware) finish(b DecodeBreakdown) DecodeBreakdown {
	compute := b.Weights + b.Attention + b.Selection
	m := compute
	if b.Transfer > m {
		m = b.Transfer
	}
	b.Total = m + b.HostWork + b.Launch
	return b
}

// DecodeStepFull models one decode step with the full KV cache resident on
// the GPU: stream the weights and read K/V of all L tokens through the
// full-context attention path.
func (hw Hardware) DecodeStepFull(m ModelShape, l int) DecodeBreakdown {
	b := DecodeBreakdown{
		Weights:   m.WeightBytes() / hw.HBMBandwidth,
		Attention: float64(l) * m.KVBytesPerToken() / hw.AttnFullBandwidth,
		Launch:    hw.LaunchOverhead,
	}
	return hw.finish(b)
}

// DecodeStepOffloadFull models a FlexGen-style step with the full KV cache
// offloaded to host memory (the InfiniGen "Full" baseline of Fig. 13a):
// every step transfers all L tokens over PCIe.
func (hw Hardware) DecodeStepOffloadFull(m ModelShape, l int) DecodeBreakdown {
	b := DecodeBreakdown{
		Weights:  m.WeightBytes() / hw.HBMBandwidth,
		Transfer: float64(l) * m.KVBytesPerToken() / hw.PCIeBandwidth,
		Launch:   hw.LaunchOverhead,
	}
	// The attention itself then reads the B(=L) tokens on device.
	b.Attention = float64(l) * m.KVBytesPerToken() / hw.AttnGatherBandwidth
	return hw.finish(b)
}

// ClusterKVCounts are the per-step averages measured from the executed
// algorithm that the model charges for.
type ClusterKVCounts struct {
	// Budget is the token budget B (tokens attended per head).
	Budget int
	// Clusters is the average number of cluster centroids scored (C).
	Clusters float64
	// MissRate is the fraction of selected tokens loaded over PCIe
	// (1 − cache hit rate, §IV-D).
	MissRate float64
	// PageTokens, when > 0, charges PCIe at page granularity: the missed
	// tokens are rounded up to whole KV pages per (layer, kv head), matching
	// the paged arena's transfer unit. 0 keeps the token-granular charge.
	PageTokens int
}

// roundUpToPages rounds a per-head token count up to whole pages of
// pageTokens (identity when pageTokens <= 0 — token-granular charging).
func roundUpToPages(tokens float64, pageTokens int) float64 {
	if pageTokens <= 0 || tokens <= 0 {
		return tokens
	}
	p := float64(pageTokens)
	return math.Ceil(tokens/p) * p
}

// PageTransfer returns the PCIe time to move the given number of whole KV
// pages (pageTokens tokens per page, per-(layer, head) planes included in
// KVBytesPerToken's per-token figure times pageTokens).
func (hw Hardware) PageTransfer(m ModelShape, pages int, pageTokens int) float64 {
	return float64(pages) * float64(pageTokens) * m.KVBytesPerToken() / hw.PCIeBandwidth
}

// DecodeStepClusterKV models one ClusterKV decode step: weights + attention
// over B gathered tokens + centroid scoring + PCIe transfer of cache-missed
// tokens (overlapped with compute). With PageTokens set, the transfer term
// moves whole pages — the missed fraction of the budget rounded up to page
// multiples, which is what the paged offload actually copies.
func (hw Hardware) DecodeStepClusterKV(m ModelShape, c ClusterKVCounts) DecodeBreakdown {
	kvBudgetBytes := float64(c.Budget) * m.KVBytesPerToken()
	// Centroid matrix read + scores: C centroids × HeadDim per (kv head,
	// layer), read at gather bandwidth.
	centroidBytes := c.Clusters * float64(m.HeadDim*m.NKVHeads*m.NLayers) * bytesPerScalar
	missTokens := roundUpToPages(c.MissRate*float64(c.Budget), c.PageTokens)
	b := DecodeBreakdown{
		Weights:   m.WeightBytes() / hw.HBMBandwidth,
		Attention: kvBudgetBytes / hw.AttnGatherBandwidth,
		Selection: centroidBytes/hw.AttnGatherBandwidth + hw.LaunchOverhead*0.5, // scoring + sort/gather kernels
		Transfer:  missTokens * m.KVBytesPerToken() / hw.PCIeBandwidth,
		Launch:    hw.LaunchOverhead,
	}
	return hw.finish(b)
}

// QuestCounts parameterise a Quest step.
type QuestCounts struct {
	Budget   int
	PageSize int
}

// DecodeStepQuest models one Quest decode step: weights + page metadata scan
// (min & max vectors per page over the whole context) + attention over the
// selected budget. Quest keeps KV resident on the GPU — no PCIe term.
func (hw Hardware) DecodeStepQuest(m ModelShape, l int, c QuestCounts) DecodeBreakdown {
	pages := float64(l) / float64(c.PageSize)
	metaBytes := pages * float64(2*m.HeadDim*m.NKVHeads*m.NLayers) * bytesPerScalar
	b := DecodeBreakdown{
		Weights:   m.WeightBytes() / hw.HBMBandwidth,
		Attention: float64(c.Budget) * m.KVBytesPerToken() / hw.AttnGatherBandwidth,
		Selection: metaBytes/hw.AttnGatherBandwidth + hw.LaunchOverhead*0.5,
		Launch:    hw.LaunchOverhead,
	}
	return hw.finish(b)
}

// InfiniGenCounts parameterise an InfiniGen step.
type InfiniGenCounts struct {
	Budget int
	// PartialDim is r, the reduced dimensionality of partial keys.
	PartialDim int
}

// DecodeStepInfiniGen models one InfiniGen step: weights + per-token partial
// score computation over all L tokens (host-side path, the cost §II-C calls
// "still scales linearly with the context length") + PCIe load of the
// selected tokens (InfiniGen offloads KV to host, no cluster cache).
func (hw Hardware) DecodeStepInfiniGen(m ModelShape, l int, c InfiniGenCounts) DecodeBreakdown {
	partialFlops := 2 * float64(l) * float64(c.PartialDim) * float64(m.NHeads*m.NLayers)
	b := DecodeBreakdown{
		Weights:   m.WeightBytes() / hw.HBMBandwidth,
		Attention: float64(c.Budget) * m.KVBytesPerToken() / hw.AttnGatherBandwidth,
		HostWork:  partialFlops / hw.HostFLOPS,
		Transfer:  float64(c.Budget) * m.KVBytesPerToken() / hw.PCIeBandwidth,
		Launch:    hw.LaunchOverhead,
	}
	return hw.finish(b)
}

// PrefillBreakdown itemises prefill latency.
type PrefillBreakdown struct {
	GEMM      float64 // weight GEMMs over all prompt tokens
	Attention float64 // causal attention compute
	Cluster   float64 // clustering work (ClusterKV only, before overlap)
	Exposed   float64 // clustering time not hidden by overlap (Fig. 6)
	Offload   float64 // device→host KV copy (overlapped; exposed part only)
	Total     float64
}

// Prefill models the prompt phase for a full-KV serve: dense GEMMs at tensor
// throughput plus causal attention FLOPs.
func (hw Hardware) Prefill(m ModelShape, l int) PrefillBreakdown {
	gemmFlops := 2 * float64(m.Params) * float64(l)
	attnFlops := 2 * 2 * float64(l) * float64(l) / 2 * float64(m.NHeads*m.HeadDim*m.NLayers)
	b := PrefillBreakdown{
		GEMM:      gemmFlops / hw.ComputeFLOPS,
		Attention: attnFlops / hw.ComputeFLOPS,
	}
	b.Total = b.GEMM + b.Attention
	return b
}

// clusterKernelEfficiency is the fraction of peak tensor throughput the
// batched K-means assignment/update kernels reach (small per-head GEMMs and
// atomics-heavy updates, paper §IV-B).
const clusterKernelEfficiency = 0.15

// ClusterWork converts K-means assignment operation counts (from the real
// clustering run: iterations × tokens × clusters × dim, summed over heads
// and layers) into device time. Assignment is a batched (L×d)·(d×C) GEMM —
// compute-bound — at reduced kernel efficiency.
func (hw Hardware) ClusterWork(assignOps int64) float64 {
	return 2 * float64(assignOps) / (clusterKernelEfficiency * hw.ComputeFLOPS)
}

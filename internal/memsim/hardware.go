// Package memsim is the analytic GPU/PCIe cost model behind the inference
// efficiency experiments (paper Fig. 12/13, §V-C). The paper measures wall
// clock on an NVIDIA Ada 6000; this reproduction runs the *algorithms* for
// real (producing byte counts, hit rates and operation counts) and feeds
// those counts through this model to obtain latencies.
//
// Every hardware constant lives in this file with its justification. The
// model is deliberately simple — bandwidth terms, an efficiency factor for
// gather-heavy attention kernels, kernel-launch overheads, and copy/compute
// overlap via max() — because those are the effects that produce the paper's
// latency shapes.
package memsim

// Hardware models one GPU + host link.
type Hardware struct {
	// Name identifies the device in reports.
	Name string
	// HBMBandwidth is the effective device-memory bandwidth for streaming
	// weights during GEMV-dominated decode (bytes/s).
	HBMBandwidth float64
	// AttnFullBandwidth is the effective bandwidth of full-context decode
	// attention kernels. Single-batch long-context attention is launch- and
	// gather-bound and reaches only a fraction of peak HBM bandwidth.
	AttnFullBandwidth float64
	// AttnGatherBandwidth is the effective bandwidth when attending over a
	// small gathered KV buffer (selected tokens, contiguous after gather).
	AttnGatherBandwidth float64
	// PCIeBandwidth is the effective host→device copy bandwidth (bytes/s).
	PCIeBandwidth float64
	// ComputeFLOPS is the effective dense fp16 throughput for prefill GEMMs.
	ComputeFLOPS float64
	// HostFLOPS is the effective host-side compute throughput, charged for
	// selection work a method performs on the CPU (InfiniGen's per-token
	// partial-score path inside the FlexGen Python pipeline).
	HostFLOPS float64
	// LaunchOverhead is the fixed per-decode-step kernel-launch + sync cost
	// in seconds (dozens of small launches per step).
	LaunchOverhead float64
}

// AdaRTX6000 returns the paper's GPU (NVIDIA RTX 6000 Ada Generation):
// 48 GB GDDR6 at 960 GB/s, ~182 TFLOPS dense fp16, PCIe 4.0 ×16.
// Efficiency factors: weight-streaming GEMV reaches ~85% of peak; published
// single-batch long-context decode-attention kernels sustain roughly
// 100–200 GB/s (we use 150 GB/s); attention over a compact gathered buffer
// reaches ~400 GB/s; effective pinned-memory PCIe 4.0 ×16 is ~25 GB/s;
// dense prefill GEMMs reach ~55% of peak tensor throughput.
func AdaRTX6000() Hardware {
	return Hardware{
		Name:                "NVIDIA Ada 6000",
		HBMBandwidth:        0.85 * 960e9,
		AttnFullBandwidth:   150e9,
		AttnGatherBandwidth: 400e9,
		PCIeBandwidth:       25e9,
		ComputeFLOPS:        0.55 * 182e12,
		HostFLOPS:           5e9,
		LaunchOverhead:      300e-6,
	}
}

// ModelShape captures the dimensions of a served model that the cost model
// needs. Weights and KV are fp16 (2 bytes/scalar).
type ModelShape struct {
	Name      string
	Params    int64 // total parameter count
	NLayers   int
	NHeads    int
	NKVHeads  int
	HeadDim   int
	DModel    int
	FFNDim    int
	VocabSize int
}

const bytesPerScalar = 2 // fp16

// Llama31_8B returns the shape of Llama-3.1-8B (GQA: 32 q heads, 8 kv heads).
func Llama31_8B() ModelShape {
	return ModelShape{
		Name: "Llama-3.1-8B", Params: 8_030_000_000,
		NLayers: 32, NHeads: 32, NKVHeads: 8, HeadDim: 128,
		DModel: 4096, FFNDim: 14336, VocabSize: 128256,
	}
}

// OPT67B returns the shape of OPT-6.7B (MHA, 2k context window).
func OPT67B() ModelShape {
	return ModelShape{
		Name: "OPT-6.7B", Params: 6_700_000_000,
		NLayers: 32, NHeads: 32, NKVHeads: 32, HeadDim: 128,
		DModel: 4096, FFNDim: 16384, VocabSize: 50272,
	}
}

// GLM49B returns the shape of GLM4-9B-Chat (GQA with 2 kv heads… modeled
// with its published 32-layer, 4096-wide config).
func GLM49B() ModelShape {
	return ModelShape{
		Name: "GLM4-9B", Params: 9_400_000_000,
		NLayers: 40, NHeads: 32, NKVHeads: 2, HeadDim: 128,
		DModel: 4096, FFNDim: 13696, VocabSize: 151552,
	}
}

// SecPerKVPage returns the modeled PCIe seconds to move one (layer, head) KV
// page of pageTokens tokens — K and V rows of headDim fp16 channels. It is
// the per-page cost the async transfer runtime (kvcache.TransferRuntime)
// charges its channel with.
func (hw Hardware) SecPerKVPage(headDim, pageTokens int) float64 {
	return float64(2*pageTokens*headDim*bytesPerScalar) / hw.PCIeBandwidth
}

// WeightBytes returns the fp16 parameter footprint.
func (m ModelShape) WeightBytes() float64 { return float64(m.Params) * bytesPerScalar }

// KVBytesPerToken returns the fp16 K+V bytes one token occupies across all
// layers.
func (m ModelShape) KVBytesPerToken() float64 {
	return float64(2*m.NKVHeads*m.HeadDim*m.NLayers) * bytesPerScalar
}

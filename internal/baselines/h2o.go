package baselines

import (
	"math"
	"sort"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/tensor"
)

// H2OConfig configures the H2O reimplementation (Zhang et al., NeurIPS'23) —
// the canonical *non-recallable* eviction method of the paper's Fig. 1b:
// once a token is evicted it can never return.
type H2OConfig struct {
	// RecentFraction of the budget is reserved for the most recent tokens;
	// the rest keeps the heavy hitters by accumulated attention mass.
	// Original default: 0.5.
	RecentFraction float64
	// BypassLayers disables selection on the first N layers.
	BypassLayers int
}

// NewH2OConfig returns the original H2O defaults.
func NewH2OConfig() H2OConfig { return H2OConfig{RecentFraction: 0.5, BypassLayers: 2} }

type h2oHead struct {
	// kept holds the positions still in the compressed cache, ascending.
	kept []int
	// acc[i] is the accumulated attention probability mass of kept[i].
	acc []float64
	// initialized marks whether prefill seeding happened.
	initialized bool
	scores      []float32
}

// H2O implements attention.Selector with greedy heavy-hitter eviction.
// Unlike the recallable methods, the candidate set only shrinks: Select
// computes attention over the kept set, accumulates the mass, and evicts the
// lowest-mass non-recent token when over budget.
type H2O struct {
	cfg    H2OConfig
	heads  int
	states []*h2oHead
	stats  attention.SelStats
}

var _ attention.Selector = (*H2O)(nil)

// NewH2O returns an H2O selector.
func NewH2O(cfg H2OConfig) *H2O {
	if cfg.RecentFraction <= 0 || cfg.RecentFraction >= 1 {
		cfg.RecentFraction = 0.5
	}
	return &H2O{cfg: cfg}
}

// Name implements attention.Selector.
func (h *H2O) Name() string { return "H2O" }

// Reset implements attention.Selector.
func (h *H2O) Reset(layers, heads, headDim int) {
	h.heads = heads
	h.stats = attention.SelStats{}
	h.states = make([]*h2oHead, layers*heads)
	for i := range h.states {
		h.states[i] = &h2oHead{}
	}
}

func (h *H2O) state(layer, head int) *h2oHead { return h.states[layer*h.heads+head] }

// OnPrefill implements attention.Selector. Seeding of the kept set is
// deferred to the first Select because it depends on the budget.
func (h *H2O) OnPrefill(layer, head int, s *kvcache.Store) {}

// OnAppend implements attention.Selector: newly generated tokens join the
// kept set (they are the most recent by construction).
func (h *H2O) OnAppend(layer, head int, s *kvcache.Store) {
	if layer < h.cfg.BypassLayers {
		return
	}
	st := h.state(layer, head)
	if !st.initialized {
		return
	}
	st.kept = append(st.kept, s.Len()-1)
	st.acc = append(st.acc, 0)
}

// seed initialises the kept set from the prefill: attention of the last
// prefill token ranks heavy hitters; the recent window fills the rest.
func (h *H2O) seed(st *h2oHead, q []float32, s *kvcache.Store, budget int) {
	n := s.Len()
	recent := int(float64(budget) * h.cfg.RecentFraction)
	if recent > n {
		recent = n
	}
	heavy := budget - recent
	scores := make([]float32, n)
	attention.Weights(scores, q, s)
	tensor.Softmax(scores)
	h.stats.ScoreOps += int64(n) * int64(s.HeadDim())

	inRecent := func(p int) bool { return p >= n-recent }
	type cand struct {
		pos int
		w   float64
	}
	var cands []cand
	for p := 0; p < n-recent; p++ {
		cands = append(cands, cand{p, float64(scores[p])})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].pos < cands[b].pos
	})
	if heavy > len(cands) {
		heavy = len(cands)
	}
	var kept []int
	for _, c := range cands[:heavy] {
		kept = append(kept, c.pos)
	}
	for p := n - recent; p < n; p++ {
		kept = append(kept, p)
	}
	sort.Ints(kept)
	st.kept = kept
	st.acc = make([]float64, len(kept))
	for i, p := range kept {
		if !inRecent(p) {
			st.acc[i] = float64(scores[p])
		}
	}
	st.initialized = true
}

// Select implements attention.Selector: return the kept set, update the
// accumulated attention mass with this query, then evict the weakest
// non-recent tokens down to the budget. Evicted tokens are gone forever —
// the non-recallable behaviour the paper's motivation targets.
func (h *H2O) Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int {
	if layer < h.cfg.BypassLayers {
		return nil
	}
	n := s.Len()
	if budget >= n {
		return nil
	}
	st := h.state(layer, head)
	if !st.initialized {
		h.seed(st, q, s, budget)
	}
	m := len(st.kept)
	if cap(st.scores) < m {
		st.scores = make([]float32, m)
	}
	scores := st.scores[:m]
	d := s.HeadDim()
	inv := float32(1 / math.Sqrt(float64(d)))
	for i, p := range st.kept {
		scores[i] = tensor.Dot(q, s.Key(p)) * inv
	}
	tensor.Softmax(scores)
	h.stats.ScoreOps += int64(m) * int64(d)
	for i := range st.kept {
		st.acc[i] += float64(scores[i])
	}

	out := append([]int(nil), st.kept...)

	// Evict down to budget: protect the recent window, drop lowest mass.
	recent := int(float64(budget) * h.cfg.RecentFraction)
	for len(st.kept) > budget {
		worst, worstAcc := -1, math.Inf(1)
		cutoff := n - recent
		for i, p := range st.kept {
			if p >= cutoff {
				continue
			}
			if st.acc[i] < worstAcc {
				worstAcc, worst = st.acc[i], i
			}
		}
		if worst < 0 {
			break
		}
		st.kept = append(st.kept[:worst], st.kept[worst+1:]...)
		st.acc = append(st.acc[:worst], st.acc[worst+1:]...)
	}

	h.stats.SelectCalls++
	h.stats.TokensSelected += int64(len(out))
	h.stats.TokensHit += int64(len(out)) // cache never leaves the device
	return out
}

// EndStep implements attention.Selector.
func (h *H2O) EndStep() { h.stats.Steps++ }

// Stats implements attention.Selector.
func (h *H2O) Stats() attention.SelStats { return h.stats }

package baselines

import (
	"math"
	"sort"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

func fillStore(seed uint64, n, d int) *kvcache.Store {
	r := rng.New(seed)
	s := kvcache.NewStore(d)
	k := make([]float32, d)
	v := make([]float32, d)
	for p := 0; p < n; p++ {
		for j := 0; j < d; j++ {
			k[j] = r.NormFloat32()
			v[j] = r.NormFloat32()
		}
		s.Append(k, v)
	}
	return s
}

func randQ(seed uint64, d int) []float32 {
	r := rng.New(seed)
	q := make([]float32, d)
	for j := range q {
		q[j] = r.NormFloat32()
	}
	return q
}

// ---- FullKV -----------------------------------------------------------------

func TestFullKVAlwaysNil(t *testing.T) {
	f := NewFullKV()
	f.Reset(1, 1, 4)
	s := fillStore(1, 50, 4)
	f.OnPrefill(0, 0, s)
	if f.Select(0, 0, randQ(1, 4), s, 10) != nil {
		t.Fatal("FullKV must return nil")
	}
	f.EndStep()
	if f.Stats().Steps != 1 {
		t.Fatal("steps not counted")
	}
	if f.Name() != "FullKV" {
		t.Fatal("name")
	}
}

// ---- Quest --------------------------------------------------------------------

func questForTest() *Quest {
	cfg := NewQuestConfig()
	cfg.BypassLayers = 0
	return NewQuest(cfg)
}

func TestQuestPageBoundDominatesMembers(t *testing.T) {
	// The per-channel max/min page score is an upper bound on every member
	// token's raw attention logit (before the 1/√d scale).
	q := questForTest()
	q.Reset(1, 1, 8)
	s := fillStore(3, 160, 8)
	q.OnPrefill(0, 0, s)
	st := q.state(0, 0)
	qv := randQ(4, 8)
	for p := 0; p < 10; p++ {
		mx := st.maxs[p*8 : (p+1)*8]
		mn := st.mins[p*8 : (p+1)*8]
		var bound float32
		for c := 0; c < 8; c++ {
			a, b := qv[c]*mx[c], qv[c]*mn[c]
			if a > b {
				bound += a
			} else {
				bound += b
			}
		}
		for tok := p * 16; tok < (p+1)*16; tok++ {
			if dot := tensor.Dot(qv, s.Key(tok)); dot > bound+1e-4 {
				t.Fatalf("page %d bound %v below member %d score %v", p, bound, tok, dot)
			}
		}
	}
}

func TestQuestSelectsWholePages(t *testing.T) {
	q := questForTest()
	q.Reset(1, 1, 8)
	s := fillStore(5, 320, 8)
	q.OnPrefill(0, 0, s)
	idx := q.Select(0, 0, randQ(6, 8), s, 64)
	if len(idx) != 64 {
		t.Fatalf("|idx| = %d, want 64 (4 pages)", len(idx))
	}
	pages := map[int][]int{}
	for _, p := range idx {
		pages[p/16] = append(pages[p/16], p)
	}
	for pg, members := range pages {
		if len(members) != 16 {
			t.Fatalf("page %d partially selected: %d tokens", pg, len(members))
		}
	}
}

func TestQuestIncludesUncoveredTail(t *testing.T) {
	q := questForTest()
	q.Reset(1, 1, 8)
	s := fillStore(7, 160, 8)
	q.OnPrefill(0, 0, s)
	// Append 5 tokens: not yet a full page.
	for i := 0; i < 5; i++ {
		s.Append(randQ(uint64(i), 8), randQ(uint64(i)+50, 8))
		q.OnAppend(0, 0, s)
	}
	idx := q.Select(0, 0, randQ(8, 8), s, 64)
	inIdx := map[int]bool{}
	for _, p := range idx {
		inIdx[p] = true
	}
	for p := 160; p < 165; p++ {
		if !inIdx[p] {
			t.Fatalf("tail token %d not selected", p)
		}
	}
}

func TestQuestPageMetadataGrowsOnAppend(t *testing.T) {
	q := questForTest()
	q.Reset(1, 1, 4)
	s := fillStore(9, 16, 4)
	q.OnPrefill(0, 0, s)
	if q.state(0, 0).n != 16 {
		t.Fatalf("covered %d after prefill", q.state(0, 0).n)
	}
	for i := 0; i < 16; i++ {
		s.Append(randQ(uint64(i), 4), randQ(uint64(i)+9, 4))
		q.OnAppend(0, 0, s)
	}
	if q.state(0, 0).n != 32 {
		t.Fatalf("covered %d after full second page", q.state(0, 0).n)
	}
}

func TestQuestBypassAndFull(t *testing.T) {
	q := NewQuest(NewQuestConfig()) // bypass 2
	q.Reset(3, 1, 4)
	s := fillStore(11, 100, 4)
	q.OnPrefill(2, 0, s)
	if q.Select(0, 0, randQ(1, 4), s, 10) != nil {
		t.Fatal("bypass layer must be nil")
	}
	if q.Select(2, 0, randQ(1, 4), s, 200) != nil {
		t.Fatal("budget >= n must be nil")
	}
}

// ---- InfiniGen ----------------------------------------------------------------

func infinigenForTest(spec float64) *InfiniGen {
	cfg := NewInfiniGenConfig()
	cfg.BypassLayers = 0
	cfg.SpecNoise = spec
	return NewInfiniGen(cfg)
}

func TestInfiniGenSelectsExactBudget(t *testing.T) {
	g := infinigenForTest(0)
	g.Reset(1, 1, 16)
	s := fillStore(13, 300, 16)
	g.OnPrefill(0, 0, s)
	idx := g.Select(0, 0, randQ(14, 16), s, 64)
	if len(idx) != 64 {
		t.Fatalf("|idx| = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, p := range idx {
		if p < 0 || p >= 300 || seen[p] {
			t.Fatalf("invalid index set")
		}
		seen[p] = true
	}
}

func TestInfiniGenNoSpecNoiseApproximatesTopK(t *testing.T) {
	// With exact per-context SVD and no speculation noise, partial scores on
	// a low-rank key matrix reproduce the true top-k well.
	g := infinigenForTest(0)
	g.Reset(1, 1, 8)
	r := rng.New(15)
	s := kvcache.NewStore(8)
	base := randQ(16, 8)
	k := make([]float32, 8)
	for p := 0; p < 200; p++ {
		c := r.NormFloat32()
		for j := range k {
			k[j] = c * base[j] // rank-1 keys
		}
		s.Append(k, k)
	}
	g.OnPrefill(0, 0, s)
	q := base
	idx := g.Select(0, 0, q, s, 20)
	truth := attention.TopTrue(q, s, 20, nil)
	inIdx := map[int]bool{}
	for _, p := range idx {
		inIdx[p] = true
	}
	hit := 0
	for _, p := range truth {
		if inIdx[p] {
			hit++
		}
	}
	if hit < 18 {
		t.Fatalf("rank-1 recall %d/20", hit)
	}
}

func TestInfiniGenSpeculationDeterministic(t *testing.T) {
	g := infinigenForTest(0.5)
	g.Reset(1, 1, 8)
	s := fillStore(17, 150, 8)
	g.OnPrefill(0, 0, s)
	q := randQ(18, 8)
	a := g.Select(0, 0, q, s, 32)
	b := g.Select(0, 0, q, s, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("speculated selection not deterministic")
		}
	}
}

func TestInfiniGenProjectorHook(t *testing.T) {
	called := 0
	cfg := NewInfiniGenConfig()
	cfg.BypassLayers = 0
	cfg.Projector = func(layer, head int, keys *tensor.Mat, r int) *tensor.Mat {
		called++
		v, _ := tensor.TruncatedSVD(keys, r, 5, 1)
		return v
	}
	g := NewInfiniGen(cfg)
	g.Reset(1, 1, 8)
	s := fillStore(19, 100, 8)
	g.OnPrefill(0, 0, s)
	if called != 1 {
		t.Fatalf("projector called %d times", called)
	}
}

func TestInfiniGenPartialDims(t *testing.T) {
	g := infinigenForTest(0)
	g.Reset(1, 1, 16)
	if g.r != 4 { // 0.25 × 16
		t.Fatalf("r = %d, want 4", g.r)
	}
}

func TestInfiniGenLoadsEverySelectedToken(t *testing.T) {
	g := infinigenForTest(0)
	g.Reset(1, 1, 8)
	s := fillStore(21, 200, 8)
	g.OnPrefill(0, 0, s)
	g.Select(0, 0, randQ(22, 8), s, 50)
	st := g.Stats()
	if st.TokensLoaded != 50 || st.TokensHit != 0 {
		t.Fatalf("no-cache accounting: loaded=%d hit=%d", st.TokensLoaded, st.TokensHit)
	}
}

// ---- H2O -----------------------------------------------------------------------

func h2oForTest() *H2O {
	cfg := NewH2OConfig()
	cfg.BypassLayers = 0
	return NewH2O(cfg)
}

func TestH2ONonRecallable(t *testing.T) {
	h := h2oForTest()
	h.Reset(1, 1, 8)
	s := fillStore(23, 500, 8)
	h.OnPrefill(0, 0, s)
	budget := 64
	first := h.Select(0, 0, randQ(24, 8), s, budget)
	kept := map[int]bool{}
	for _, p := range first {
		kept[p] = true
	}
	h.EndStep()
	// Evicted tokens must never reappear across later steps.
	for step := 0; step < 5; step++ {
		s.Append(randQ(uint64(step), 8), randQ(uint64(step)+3, 8))
		h.OnAppend(0, 0, s)
		idx := h.Select(0, 0, randQ(uint64(30+step), 8), s, budget)
		for _, p := range idx {
			if p < 500 && !kept[p] {
				t.Fatalf("step %d recalled evicted token %d — H2O must be non-recallable", step, p)
			}
		}
		h.EndStep()
	}
}

func TestH2OKeptSetConvergesToBudget(t *testing.T) {
	h := h2oForTest()
	h.Reset(1, 1, 8)
	s := fillStore(25, 300, 8)
	h.OnPrefill(0, 0, s)
	budget := 50
	h.Select(0, 0, randQ(26, 8), s, budget)
	h.EndStep()
	idx := h.Select(0, 0, randQ(27, 8), s, budget)
	if len(idx) != budget {
		t.Fatalf("kept set = %d, want %d", len(idx), budget)
	}
	if !sort.IntsAreSorted(idx) {
		t.Fatal("kept set not sorted")
	}
}

func TestH2OProtectsRecentWindow(t *testing.T) {
	h := h2oForTest() // RecentFraction 0.5
	h.Reset(1, 1, 8)
	s := fillStore(29, 200, 8)
	h.OnPrefill(0, 0, s)
	budget := 40
	h.Select(0, 0, randQ(31, 8), s, budget)
	h.EndStep()
	idx := h.Select(0, 0, randQ(32, 8), s, budget)
	recent := 0
	for _, p := range idx {
		if p >= 200-20 { // recent half of the budget
			recent++
		}
	}
	if recent < 15 {
		t.Fatalf("recent window underrepresented: %d", recent)
	}
}

// ---- StreamingLLM ----------------------------------------------------------------

func TestStreamingSinksPlusRecency(t *testing.T) {
	cfg := NewStreamingConfig()
	cfg.BypassLayers = 0
	st := NewStreamingLLM(cfg)
	st.Reset(1, 1, 4)
	s := fillStore(33, 300, 4)
	idx := st.Select(0, 0, randQ(34, 4), s, 64)
	if len(idx) != 64 {
		t.Fatalf("|idx| = %d", len(idx))
	}
	for p := 0; p < 16; p++ {
		if idx[p] != p {
			t.Fatalf("sink %d missing", p)
		}
	}
	for i, p := 16, 300-48; p < 300; i, p = i+1, p+1 {
		if idx[i] != p {
			t.Fatalf("recency window wrong at %d: got %d want %d", i, idx[i], p)
		}
	}
}

func TestStreamingSmallContext(t *testing.T) {
	cfg := NewStreamingConfig()
	cfg.BypassLayers = 0
	st := NewStreamingLLM(cfg)
	st.Reset(1, 1, 4)
	s := fillStore(35, 20, 4)
	if idx := st.Select(0, 0, randQ(36, 4), s, 64); idx != nil {
		t.Fatal("budget >= n must be nil")
	}
}

// ---- Cross-method sanity ------------------------------------------------------------

func TestAllMethodsImplementSelector(t *testing.T) {
	sels := []attention.Selector{
		NewFullKV(), NewQuest(NewQuestConfig()), NewInfiniGen(NewInfiniGenConfig()),
		NewH2O(NewH2OConfig()), NewStreamingLLM(NewStreamingConfig()),
	}
	names := map[string]bool{}
	for _, sel := range sels {
		if sel.Name() == "" || names[sel.Name()] {
			t.Fatalf("bad or duplicate name %q", sel.Name())
		}
		names[sel.Name()] = true
	}
}

func TestSparseOutputsFiniteForAllMethods(t *testing.T) {
	sels := []attention.Selector{
		NewQuest(QuestConfig{PageSize: 16}),
		NewInfiniGen(InfiniGenConfig{PartialRatio: 0.25, SVDIters: 5}),
		NewH2O(H2OConfig{RecentFraction: 0.5}),
		NewStreamingLLM(StreamingConfig{SinkTokens: 16}),
	}
	s := fillStore(37, 400, 8)
	out := make([]float32, 8)
	for _, sel := range sels {
		sel.Reset(1, 1, 8)
		sel.OnPrefill(0, 0, s)
		q := randQ(38, 8)
		idx := sel.Select(0, 0, q, s, 64)
		if idx == nil {
			t.Fatalf("%s returned nil for budget 64 over 400 tokens", sel.Name())
		}
		attention.Sparse(out, q, s, idx, nil)
		for _, v := range out {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s produced non-finite attention output", sel.Name())
			}
		}
	}
}

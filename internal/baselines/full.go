// Package baselines implements the KV-cache compression methods the paper
// compares against: Quest (page-granularity recall, ICML'24), InfiniGen
// (SVD partial-key per-token recall, OSDI'24), H2O (non-recallable
// heavy-hitter eviction, NeurIPS'23), StreamingLLM (attention sinks + recency
// window, ICLR'24) and the uncompressed FullKV reference.
//
// Every method implements attention.Selector so the transformer engine, the
// trace harness and the benchmark runners treat all methods uniformly.
package baselines

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
)

// FullKV is the uncompressed reference: Select always returns nil, which the
// engines interpret as "attend over everything".
type FullKV struct {
	stats attention.SelStats
}

var _ attention.Selector = (*FullKV)(nil)

// NewFullKV returns the full-attention reference selector.
func NewFullKV() *FullKV { return &FullKV{} }

// Name implements attention.Selector.
func (f *FullKV) Name() string { return "FullKV" }

// Reset implements attention.Selector.
func (f *FullKV) Reset(layers, heads, headDim int) { f.stats = attention.SelStats{} }

// OnPrefill implements attention.Selector.
func (f *FullKV) OnPrefill(layer, head int, s *kvcache.Store) {}

// OnAppend implements attention.Selector.
func (f *FullKV) OnAppend(layer, head int, s *kvcache.Store) {}

// Select implements attention.Selector; FullKV never restricts attention.
func (f *FullKV) Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int {
	return nil
}

// EndStep implements attention.Selector.
func (f *FullKV) EndStep() { f.stats.Steps++ }

// Stats implements attention.Selector.
func (f *FullKV) Stats() attention.SelStats { return f.stats }

package baselines

import (
	"sort"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/tensor"
)

// QuestConfig configures the Quest reimplementation (Tang et al., ICML'24;
// paper §II-C, Fig. 1c).
type QuestConfig struct {
	// PageSize is the number of consecutive tokens per page (original
	// default, and the paper's Fig. 3b setting: 16).
	PageSize int
	// BypassLayers disables selection on the first N layers (original Quest
	// setting: 2).
	BypassLayers int
}

// NewQuestConfig returns the original Quest defaults.
func NewQuestConfig() QuestConfig {
	return QuestConfig{PageSize: 16, BypassLayers: 2}
}

// questHead holds per-(layer, head) page metadata: per-channel elementwise
// max and min over each page's keys. The page score for query q is
// Σ_d max(q_d·max_d, q_d·min_d) — an upper bound on any member token's
// attention logit.
type questHead struct {
	maxs []float32 // numPages × d
	mins []float32
	n    int // tokens covered by complete pages metadata
}

// Quest implements attention.Selector with page-granularity recall.
type Quest struct {
	cfg    QuestConfig
	heads  int
	d      int
	states []*questHead
	stats  attention.SelStats
	scores []float32
}

var _ attention.Selector = (*Quest)(nil)

// NewQuest returns a Quest selector.
func NewQuest(cfg QuestConfig) *Quest {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 16
	}
	return &Quest{cfg: cfg}
}

// Name implements attention.Selector.
func (q *Quest) Name() string { return "Quest" }

// Reset implements attention.Selector.
func (q *Quest) Reset(layers, heads, headDim int) {
	q.heads, q.d = heads, headDim
	q.stats = attention.SelStats{}
	q.states = make([]*questHead, layers*heads)
	for i := range q.states {
		q.states[i] = &questHead{}
	}
}

func (q *Quest) state(layer, head int) *questHead { return q.states[layer*q.heads+head] }

// OnPrefill implements attention.Selector: build min/max metadata for every
// complete page of the prefill keys.
func (q *Quest) OnPrefill(layer, head int, s *kvcache.Store) {
	if layer < q.cfg.BypassLayers {
		return
	}
	q.extendPages(q.state(layer, head), s)
}

// OnAppend implements attention.Selector: extend page metadata whenever a new
// page fills up.
func (q *Quest) OnAppend(layer, head int, s *kvcache.Store) {
	if layer < q.cfg.BypassLayers {
		return
	}
	q.extendPages(q.state(layer, head), s)
}

func (q *Quest) extendPages(st *questHead, s *kvcache.Store) {
	d := s.HeadDim()
	ps := q.cfg.PageSize
	for st.n+ps <= s.Len() {
		base := len(st.maxs)
		st.maxs = append(st.maxs, make([]float32, d)...)
		st.mins = append(st.mins, make([]float32, d)...)
		mx := st.maxs[base : base+d]
		mn := st.mins[base : base+d]
		copy(mx, s.Key(st.n))
		copy(mn, s.Key(st.n))
		for t := st.n + 1; t < st.n+ps; t++ {
			k := s.Key(t)
			for c := 0; c < d; c++ {
				if k[c] > mx[c] {
					mx[c] = k[c]
				}
				if k[c] < mn[c] {
					mn[c] = k[c]
				}
			}
		}
		st.n += ps
		q.stats.MetaOps += int64(ps) * int64(d)
	}
}

// Select implements attention.Selector: rank pages by the per-channel
// max-bound score and take the top budget/PageSize pages; the trailing
// partial page (tokens not yet covered by metadata) is always included.
func (q *Quest) Select(layer, head int, qv []float32, s *kvcache.Store, budget int) []int {
	if layer < q.cfg.BypassLayers {
		return nil
	}
	n := s.Len()
	if budget >= n {
		return nil
	}
	st := q.state(layer, head)
	d := s.HeadDim()
	ps := q.cfg.PageSize
	numPages := st.n / ps

	tail := n - st.n // uncovered trailing tokens, always attended
	pageBudget := (budget - tail) / ps
	if pageBudget < 0 {
		pageBudget = 0
	}
	if pageBudget > numPages {
		pageBudget = numPages
	}

	if cap(q.scores) < numPages {
		q.scores = make([]float32, numPages)
	}
	scores := q.scores[:numPages]
	for p := 0; p < numPages; p++ {
		mx := st.maxs[p*d : (p+1)*d]
		mn := st.mins[p*d : (p+1)*d]
		var sc float32
		for c := 0; c < d; c++ {
			a := qv[c] * mx[c]
			b := qv[c] * mn[c]
			if a > b {
				sc += a
			} else {
				sc += b
			}
		}
		scores[p] = sc
	}
	q.stats.ScoreOps += int64(numPages) * int64(d) // O(L·d/page_size), §II-C

	pages := tensor.TopK(scores, pageBudget)
	out := make([]int, 0, pageBudget*ps+tail)
	for _, p := range pages {
		for t := p * ps; t < (p+1)*ps; t++ {
			out = append(out, t)
		}
	}
	for t := st.n; t < n; t++ {
		out = append(out, t)
	}
	sort.Ints(out)

	q.stats.SelectCalls++
	q.stats.TokensSelected += int64(len(out))
	q.stats.ClustersSelected += int64(len(pages))
	// Quest keeps the whole KV cache in GPU memory (no offload): selected
	// tokens are device reads, not transfers.
	q.stats.TokensHit += int64(len(out))
	return out
}

// EndStep implements attention.Selector.
func (q *Quest) EndStep() { q.stats.Steps++ }

// Stats implements attention.Selector.
func (q *Quest) Stats() attention.SelStats { return q.stats }

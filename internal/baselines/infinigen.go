package baselines

import (
	"math"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// InfiniGenConfig configures the InfiniGen reimplementation (Lee et al.,
// OSDI'24; paper §II-C). InfiniGen reduces the dimensionality of q and K with
// singular-value decomposition computed offline, stores "partial keys" in the
// reduced space alongside the full keys, and scores every previous token with
// the partial inner product — per-token recall at O(L·r) selection cost.
type InfiniGenConfig struct {
	// PartialRatio is the fraction of head channels kept by the SVD
	// projection (the original "partial weight ratio"; default 0.25).
	PartialRatio float64
	// SVDIters is the subspace-iteration count for the truncated SVD.
	SVDIters int
	// BypassLayers disables selection on the first N layers, matching the
	// evaluation alignment of §V-A.
	BypassLayers int
	// SpecNoise models InfiniGen's speculative selection: the original
	// prefetches layer i's KV using attention speculated from layer i−1's
	// inputs through skewed partial weights, so the selection query is an
	// approximation of the true query. SpecNoise is the relative magnitude
	// of that approximation error (0 disables; default 0.35, roughly the
	// adjacent-layer query mismatch observed in the transformer engine).
	SpecNoise float64
	// Seed drives the deterministic SVD initialisation.
	Seed uint64
	// Projector, when non-nil, replaces the built-in truncated SVD with a
	// caller-provided d×r projection (memoisation hook for harnesses that
	// sweep budgets over the same context).
	Projector func(layer, head int, keys *tensor.Mat, r int) *tensor.Mat
}

// NewInfiniGenConfig returns defaults mirroring the original configuration.
func NewInfiniGenConfig() InfiniGenConfig {
	return InfiniGenConfig{PartialRatio: 0.25, SVDIters: 10, BypassLayers: 2, SpecNoise: 0.55}
}

type infinigenHead struct {
	v        *tensor.Mat // d×r projection (right singular vectors)
	partials []float32   // n×r projected keys
	n        int
	qbuf     []float32
	scores   []float32
}

// InfiniGen implements attention.Selector with SVD partial-key selection.
type InfiniGen struct {
	cfg    InfiniGenConfig
	heads  int
	d      int
	r      int
	states []*infinigenHead
	stats  attention.SelStats
}

var _ attention.Selector = (*InfiniGen)(nil)

// NewInfiniGen returns an InfiniGen selector.
func NewInfiniGen(cfg InfiniGenConfig) *InfiniGen {
	if cfg.PartialRatio <= 0 || cfg.PartialRatio > 1 {
		cfg.PartialRatio = 0.25
	}
	if cfg.SVDIters <= 0 {
		cfg.SVDIters = 10
	}
	return &InfiniGen{cfg: cfg}
}

// Name implements attention.Selector.
func (g *InfiniGen) Name() string { return "InfiniGen" }

// Reset implements attention.Selector.
func (g *InfiniGen) Reset(layers, heads, headDim int) {
	g.heads, g.d = heads, headDim
	g.r = int(float64(headDim)*g.cfg.PartialRatio + 0.5)
	if g.r < 1 {
		g.r = 1
	}
	g.stats = attention.SelStats{}
	g.states = make([]*infinigenHead, layers*heads)
	for i := range g.states {
		g.states[i] = &infinigenHead{}
	}
}

func (g *InfiniGen) state(layer, head int) *infinigenHead { return g.states[layer*g.heads+head] }

// OnPrefill implements attention.Selector: compute the truncated SVD of the
// prefill key matrix (the "offline partial weight generation") and project
// every key into the partial space.
func (g *InfiniGen) OnPrefill(layer, head int, s *kvcache.Store) {
	if layer < g.cfg.BypassLayers {
		return
	}
	st := g.state(layer, head)
	n := s.Len()
	d := s.HeadDim()
	// Non-retaining read: the key matrix is scratch for the SVD; only the
	// projection basis survives, so the store keeps no flat mirror.
	keyMat := tensor.WrapMat(n, d, s.ReadKeys(0, n, nil))
	var v *tensor.Mat
	if g.cfg.Projector != nil {
		v = g.cfg.Projector(layer, head, keyMat, g.r)
	} else {
		v, _ = tensor.TruncatedSVD(keyMat, g.r, g.cfg.SVDIters, g.cfg.Seed^uint64(layer*131+head))
	}
	st.v = v
	st.partials = make([]float32, 0, n*v.Cols)
	st.n = 0
	g.projectNew(st, s)
	// SVD + projection cost: iters×n×d×r for the subspace iteration plus
	// n×d×r for the projection.
	g.stats.MetaOps += int64(g.cfg.SVDIters+1) * int64(n) * int64(d) * int64(v.Cols)
}

func (g *InfiniGen) projectNew(st *infinigenHead, s *kvcache.Store) {
	r := st.v.Cols
	for ; st.n < s.Len(); st.n++ {
		k := s.Key(st.n)
		base := len(st.partials)
		st.partials = append(st.partials, make([]float32, r)...)
		row := st.partials[base : base+r]
		for c, kv := range k {
			if kv == 0 {
				continue
			}
			vrow := st.v.Row(c)
			for j := 0; j < r; j++ {
				row[j] += kv * vrow[j]
			}
		}
	}
}

// OnAppend implements attention.Selector: project the new token's key with
// the prefill-time SVD basis (InfiniGen keeps partial keys for generated
// tokens using the same offline projection).
func (g *InfiniGen) OnAppend(layer, head int, s *kvcache.Store) {
	if layer < g.cfg.BypassLayers {
		return
	}
	st := g.state(layer, head)
	if st.v == nil {
		return
	}
	g.projectNew(st, s)
	g.stats.MetaOps += int64(s.HeadDim()) * int64(st.v.Cols)
}

// Select implements attention.Selector: score every token with the partial
// inner product (q·V)·(k·V)ᵀ and keep the top budget tokens. The selection
// cost scales linearly with context length, O(L·r) — the defect §II-C calls
// out.
func (g *InfiniGen) Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int {
	if layer < g.cfg.BypassLayers {
		return nil
	}
	n := s.Len()
	if budget >= n {
		return nil
	}
	st := g.state(layer, head)
	q = g.speculate(q, layer, head)
	r := st.v.Cols
	if cap(st.qbuf) < r {
		st.qbuf = make([]float32, r)
	}
	qp := st.qbuf[:r]
	tensor.Fill(qp, 0)
	for c, qv := range q {
		if qv == 0 {
			continue
		}
		vrow := st.v.Row(c)
		for j := 0; j < r; j++ {
			qp[j] += qv * vrow[j]
		}
	}
	if cap(st.scores) < n {
		st.scores = make([]float32, n)
	}
	scores := st.scores[:n]
	for i := 0; i < n; i++ {
		row := st.partials[i*r : (i+1)*r]
		var sc float32
		for j := range row {
			sc += qp[j] * row[j]
		}
		scores[i] = sc
	}
	g.stats.ScoreOps += int64(n) * int64(r) // O(L·r): linear in context length

	out := tensor.TopK(scores, budget)
	g.stats.SelectCalls++
	g.stats.TokensSelected += int64(len(out))
	// InfiniGen offloads KV to host memory and loads the selected tokens
	// each step (no cluster cache).
	g.stats.TokensLoaded += int64(len(out))
	return out
}

// speculate applies the speculative-query approximation error: a
// deterministic pseudo-random perturbation of relative magnitude SpecNoise,
// seeded from the query contents so replays are reproducible.
func (g *InfiniGen) speculate(q []float32, layer, head int) []float32 {
	if g.cfg.SpecNoise <= 0 {
		return q
	}
	var h uint64 = 0xcbf29ce484222325 ^ uint64(layer*8191+head)
	for _, v := range q {
		h = (h ^ uint64(math.Float32bits(v))) * 0x100000001b3
	}
	rnd := rng.New(h)
	norm := tensor.Norm(q)
	out := make([]float32, len(q))
	scale := float32(g.cfg.SpecNoise) * norm / float32(math.Sqrt(float64(len(q))))
	for i, v := range q {
		out[i] = v + scale*rnd.NormFloat32()
	}
	return out
}

// EndStep implements attention.Selector.
func (g *InfiniGen) EndStep() { g.stats.Steps++ }

// Stats implements attention.Selector.
func (g *InfiniGen) Stats() attention.SelStats { return g.stats }

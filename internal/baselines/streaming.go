package baselines

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
)

// StreamingConfig configures the StreamingLLM reimplementation (Xiao et al.,
// ICLR'24): a fixed pattern of attention-sink tokens plus a recency window —
// the paper's Fig. 1b "fixed pattern" non-recallable compression.
type StreamingConfig struct {
	// SinkTokens is the number of initial tokens always kept (default 16,
	// matching the sink count ClusterKV retains).
	SinkTokens int
	// BypassLayers disables selection on the first N layers.
	BypassLayers int
}

// NewStreamingConfig returns defaults aligned with the paper's sink setting.
func NewStreamingConfig() StreamingConfig { return StreamingConfig{SinkTokens: 16, BypassLayers: 2} }

// StreamingLLM implements attention.Selector with sinks + recency.
type StreamingLLM struct {
	cfg   StreamingConfig
	stats attention.SelStats
}

var _ attention.Selector = (*StreamingLLM)(nil)

// NewStreamingLLM returns a StreamingLLM selector.
func NewStreamingLLM(cfg StreamingConfig) *StreamingLLM {
	if cfg.SinkTokens < 0 {
		cfg.SinkTokens = 16
	}
	return &StreamingLLM{cfg: cfg}
}

// Name implements attention.Selector.
func (st *StreamingLLM) Name() string { return "StreamingLLM" }

// Reset implements attention.Selector.
func (st *StreamingLLM) Reset(layers, heads, headDim int) { st.stats = attention.SelStats{} }

// OnPrefill implements attention.Selector.
func (st *StreamingLLM) OnPrefill(layer, head int, s *kvcache.Store) {}

// OnAppend implements attention.Selector.
func (st *StreamingLLM) OnAppend(layer, head int, s *kvcache.Store) {}

// Select implements attention.Selector: the first SinkTokens positions plus
// the most recent budget−SinkTokens positions.
func (st *StreamingLLM) Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int {
	if layer < st.cfg.BypassLayers {
		return nil
	}
	n := s.Len()
	if budget >= n {
		return nil
	}
	sinks := st.cfg.SinkTokens
	if sinks > budget {
		sinks = budget
	}
	recent := budget - sinks
	out := make([]int, 0, budget)
	for i := 0; i < sinks; i++ {
		out = append(out, i)
	}
	start := n - recent
	if start < sinks {
		start = sinks
	}
	for i := start; i < n; i++ {
		out = append(out, i)
	}
	st.stats.SelectCalls++
	st.stats.TokensSelected += int64(len(out))
	st.stats.TokensHit += int64(len(out))
	return out
}

// EndStep implements attention.Selector.
func (st *StreamingLLM) EndStep() { st.stats.Steps++ }

// Stats implements attention.Selector.
func (st *StreamingLLM) Stats() attention.SelStats { return st.stats }

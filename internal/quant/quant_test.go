package quant

import (
	"math"
	"testing"
	"testing/quick"

	"clusterkv/internal/cluster"
	"clusterkv/internal/rng"
	"clusterkv/internal/workload"
)

func randData(seed uint64, n, d int) []float32 {
	r := rng.New(seed)
	data := make([]float32, n*d)
	for i := range data {
		data[i] = r.NormFloat32()
	}
	return data
}

func TestRoundTripErrorBound(t *testing.T) {
	// Reconstruction error is bounded by half a quantization step per group.
	for _, axis := range []Axis{PerChannel, PerToken} {
		for _, bits := range []int{2, 4, 8} {
			data := randData(uint64(bits), 50, 8)
			q := Quantize(data, 50, 8, bits, axis)
			maxStep := 0.0
			for _, s := range q.Scales {
				if float64(s) > maxStep {
					maxStep = float64(s)
				}
			}
			if err := q.MaxAbsError(data); err > maxStep/2+1e-5 {
				t.Fatalf("%v %d-bit: error %v exceeds half-step %v", axis, bits, err, maxStep/2)
			}
		}
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	data := randData(1, 100, 16)
	e2 := Quantize(data, 100, 16, 2, PerChannel).MaxAbsError(data)
	e4 := Quantize(data, 100, 16, 4, PerChannel).MaxAbsError(data)
	e8 := Quantize(data, 100, 16, 8, PerChannel).MaxAbsError(data)
	if !(e8 < e4 && e4 < e2) {
		t.Fatalf("errors not decreasing: 2b=%v 4b=%v 8b=%v", e2, e4, e8)
	}
}

func TestPerChannelIsolatesOutliers(t *testing.T) {
	// A single huge channel must not degrade the other channels' precision
	// under per-channel quantization — the KIVI motivation.
	r := rng.New(2)
	n, d := 200, 8
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			data[i*d+j] = r.NormFloat32()
			if j == 0 {
				data[i*d+j] = 50 + 10*r.NormFloat32() // outlier channel
			}
		}
	}
	perCh := Quantize(data, n, d, 4, PerChannel)
	perTok := Quantize(data, n, d, 4, PerToken)

	// Error restricted to the non-outlier channels.
	errOn := func(q *Tensor) float64 {
		recon := q.Dequantize(nil)
		worst := 0.0
		for i := 0; i < n; i++ {
			for j := 1; j < d; j++ {
				if e := math.Abs(float64(data[i*d+j] - recon[i*d+j])); e > worst {
					worst = e
				}
			}
		}
		return worst
	}
	if errOn(perCh) >= errOn(perTok) {
		t.Fatalf("per-channel (%v) should isolate outliers better than per-token (%v)",
			errOn(perCh), errOn(perTok))
	}
}

func TestRowMatchesDequantize(t *testing.T) {
	data := randData(3, 20, 4)
	q := Quantize(data, 20, 4, 4, PerToken)
	full := q.Dequantize(nil)
	for i := 0; i < 20; i++ {
		row := q.Row(i, nil)
		for j := 0; j < 4; j++ {
			if row[j] != full[i*4+j] {
				t.Fatalf("Row(%d) differs from Dequantize", i)
			}
		}
	}
}

func TestBytesFootprint(t *testing.T) {
	q := Quantize(randData(4, 100, 16), 100, 16, 4, PerChannel)
	// 100×16 4-bit codes = 800 bytes + 16 groups × 4 bytes = 864.
	if q.Bytes() != 864 {
		t.Fatalf("Bytes = %d, want 864", q.Bytes())
	}
}

func TestQuantizePanics(t *testing.T) {
	cases := []func(){
		func() { Quantize(make([]float32, 4), 2, 2, 1, PerChannel) }, // bits too low
		func() { Quantize(make([]float32, 4), 2, 2, 9, PerChannel) }, // bits too high
		func() { Quantize(make([]float32, 3), 2, 2, 4, PerChannel) }, // length mismatch
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestConstantDataRoundTrips(t *testing.T) {
	data := make([]float32, 40)
	for i := range data {
		data[i] = 3.5
	}
	q := Quantize(data, 10, 4, 4, PerToken)
	if err := q.MaxAbsError(data); err > 1e-4 {
		t.Fatalf("constant data error %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(seed uint64, nn, dd uint8) bool {
		n := int(nn)%30 + 1
		d := int(dd)%12 + 1
		data := randData(seed, n, d)
		q := Quantize(data, n, d, 8, PerChannel)
		// 8-bit error must be tiny relative to the data range.
		return q.MaxAbsError(data) < 0.05
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestClusteringSurvivesQuantization is the extension study: semantic
// clustering built on 4-bit quantized keys must assign tokens almost
// identically to clustering on full-precision keys.
func TestClusteringSurvivesQuantization(t *testing.T) {
	tc := workload.DefaultTraceConfig()
	tc.L = 1024
	tr := workload.NewTrace(tc)
	keys := tr.Keys[0].Data
	n, d := tr.Keys[0].Rows, tr.Keys[0].Cols

	full := cluster.KMeans(keys, d, 12, cluster.Config{Seed: 1})
	deq := Quantize(keys, n, d, 4, PerChannel).Dequantize(nil)
	quant := cluster.KMeans(deq, d, 12, cluster.Config{Seed: 1})

	agree := 0
	for i := range full.Labels {
		if full.Labels[i] == quant.Labels[i] {
			agree++
		}
	}
	// k-means is path dependent, so perfect agreement is not expected; the
	// bulk of assignments must survive.
	if frac := float64(agree) / float64(n); frac < 0.75 {
		t.Fatalf("only %.0f%% of assignments survive 4-bit quantization", frac*100)
	}
}

// TestPageShapeRoundTrip covers the shapes the paged KV arena quantizes: one
// 64-token page per (layer, head), keys per-channel and values per-token,
// with the reconstruction error bounded by half a quantization step per
// group — the guarantee the host-quantized tier relies on.
func TestPageShapeRoundTrip(t *testing.T) {
	const pageTokens, d = 64, 16
	r := rng.New(77)
	keys := make([]float32, pageTokens*d)
	vals := make([]float32, pageTokens*d)
	for i := range keys {
		keys[i] = r.NormFloat32() * 3
		vals[i] = r.NormFloat32()
	}
	// An outlier channel, the KIVI motivation for per-channel key scales.
	for i := 0; i < pageTokens; i++ {
		keys[i*d+3] *= 40
	}

	for _, bits := range []int{4, 8} {
		qk := Quantize(keys, pageTokens, d, bits, PerChannel)
		qv := Quantize(vals, pageTokens, d, bits, PerToken)
		rk := qk.Dequantize(nil)
		rv := qv.Dequantize(nil)
		for i := 0; i < pageTokens; i++ {
			for j := 0; j < d; j++ {
				if e := abs64(keys[i*d+j] - rk[i*d+j]); e > float64(qk.Scales[j])*0.5+1e-6 {
					t.Fatalf("bits=%d key (%d,%d): err %.4g > step/2 %.4g", bits, i, j, e, qk.Scales[j]*0.5)
				}
				if e := abs64(vals[i*d+j] - rv[i*d+j]); e > float64(qv.Scales[i])*0.5+1e-6 {
					t.Fatalf("bits=%d val (%d,%d): err %.4g > step/2 %.4g", bits, i, j, e, qv.Scales[i]*0.5)
				}
			}
		}
		// The outlier channel must not poison its neighbours' scales.
		if qk.Scales[3] < 10*qk.Scales[2] {
			t.Fatalf("bits=%d: outlier channel scale %.3g vs neighbour %.3g", bits, qk.Scales[3], qk.Scales[2])
		}
	}
}

func abs64(x float32) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

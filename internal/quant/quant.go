// Package quant implements KIVI-style asymmetric low-bit quantization of KV
// cache tensors (Liu et al., ICML'24 — the work the paper cites for the
// outlier-channel observation motivating cosine clustering, §III-B).
//
// KIVI's finding: key tensors should be quantized *per channel* (outlier
// channels get their own scale so they do not destroy the range of the other
// channels), while value tensors should be quantized *per token*. This
// package provides both layouts with arbitrary bit widths (2–8), plus
// round-trip helpers used to study how quantized keys interact with semantic
// clustering (an extension beyond the paper: cluster metadata built on
// quantized keys).
package quant

import (
	"fmt"
	"math"
)

// Axis selects the quantization grouping.
type Axis int

const (
	// PerChannel groups along the channel dimension: one (scale, zero) pair
	// per channel across all tokens — KIVI's choice for keys.
	PerChannel Axis = iota
	// PerToken groups along the token dimension: one (scale, zero) pair per
	// token across its channels — KIVI's choice for values.
	PerToken
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	if a == PerChannel {
		return "per-channel"
	}
	return "per-token"
}

// Tensor is a quantized n×d row-major tensor.
type Tensor struct {
	// Bits is the code width (2–8).
	Bits int
	// Axis is the grouping.
	Axis Axis
	// N and D are the token and channel counts.
	N, D int
	// Codes holds one byte per element (packing into sub-byte codes is a
	// storage concern the simulator does not need; Bits bounds the range).
	Codes []uint8
	// Scales and Zeros hold one entry per group (D groups for PerChannel,
	// N groups for PerToken).
	Scales []float32
	Zeros  []float32
}

// Quantize compresses the n×d row-major data to the given bit width.
// It panics on invalid arguments.
func Quantize(data []float32, n, d, bits int, axis Axis) *Tensor {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	if len(data) != n*d {
		panic("quant: data length mismatch")
	}
	groups := d
	if axis == PerToken {
		groups = n
	}
	t := &Tensor{
		Bits: bits, Axis: axis, N: n, D: d,
		Codes:  make([]uint8, n*d),
		Scales: make([]float32, groups),
		Zeros:  make([]float32, groups),
	}
	levels := float32(int(1)<<bits - 1)

	groupOf := func(i, j int) int {
		if axis == PerChannel {
			return j
		}
		return i
	}
	// Pass 1: per-group min/max.
	mins := make([]float32, groups)
	maxs := make([]float32, groups)
	for g := range mins {
		mins[g] = float32(math.Inf(1))
		maxs[g] = float32(math.Inf(-1))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := data[i*d+j]
			g := groupOf(i, j)
			if v < mins[g] {
				mins[g] = v
			}
			if v > maxs[g] {
				maxs[g] = v
			}
		}
	}
	for g := range mins {
		span := maxs[g] - mins[g]
		if span <= 0 {
			span = 1e-8
		}
		t.Scales[g] = span / levels
		t.Zeros[g] = mins[g]
	}
	// Pass 2: encode.
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			g := groupOf(i, j)
			q := (data[i*d+j] - t.Zeros[g]) / t.Scales[g]
			c := int(q + 0.5)
			if c < 0 {
				c = 0
			}
			if c > int(levels) {
				c = int(levels)
			}
			t.Codes[i*d+j] = uint8(c)
		}
	}
	return t
}

// Dequantize reconstructs the full-precision tensor into dst (length n×d);
// pass nil to allocate. It returns dst.
func (t *Tensor) Dequantize(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, t.N*t.D)
	}
	if len(dst) != t.N*t.D {
		panic("quant: Dequantize buffer mismatch")
	}
	for i := 0; i < t.N; i++ {
		for j := 0; j < t.D; j++ {
			g := j
			if t.Axis == PerToken {
				g = i
			}
			dst[i*t.D+j] = t.Zeros[g] + float32(t.Codes[i*t.D+j])*t.Scales[g]
		}
	}
	return dst
}

// Row reconstructs token i into dst (length d); pass nil to allocate.
func (t *Tensor) Row(i int, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, t.D)
	}
	for j := 0; j < t.D; j++ {
		g := j
		if t.Axis == PerToken {
			g = i
		}
		dst[j] = t.Zeros[g] + float32(t.Codes[i*t.D+j])*t.Scales[g]
	}
	return dst
}

// Bytes returns the simulated storage footprint in bytes: Bits per element
// plus fp16 scale/zero pairs per group.
func (t *Tensor) Bytes() int {
	elems := (t.N*t.D*t.Bits + 7) / 8
	meta := len(t.Scales) * 4 // fp16 scale + fp16 zero
	return elems + meta
}

// MaxAbsError returns the worst-case absolute reconstruction error against
// the original data.
func (t *Tensor) MaxAbsError(data []float32) float64 {
	worst := 0.0
	recon := t.Dequantize(nil)
	for i := range data {
		if e := math.Abs(float64(data[i] - recon[i])); e > worst {
			worst = e
		}
	}
	return worst
}

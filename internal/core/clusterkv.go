// Package core implements ClusterKV, the paper's primary contribution:
// recallable KV-cache compression at the granularity of semantic clusters.
//
// Per (layer, head) it maintains a cluster.Book built from the prefill keys
// (§III-B), extends it every DecodeWindow steps with clusters over the newly
// generated keys, scores clusters against the query with inner products,
// selects top clusters under the token budget with last-cluster trimming
// (§III-C, §IV-C), and serves K/V through a cluster-granularity device cache
// that retains the clusters selected during the last R decode steps (§IV-D).
//
// The compute-heavy stages — K-means assignment/update inside cluster.KMeans
// and centroid scoring inside cluster.Book.ScoreClusters — run on the shared
// intra-op pool (internal/parallel) with bit-identical-to-serial results, so
// a selector behaves identically at any worker count; per-head selector
// state itself is single-threaded (one sequence drives one selector).
package core

import (
	"sort"

	"clusterkv/internal/attention"
	"clusterkv/internal/cluster"
	"clusterkv/internal/kvcache"
)

// Config holds every tunable of the method. NewConfig returns the paper's
// defaults; the Fig. 11b ablations override Metric and C0Override.
type Config struct {
	// SinkTokens is the number of initial tokens kept unclustered and always
	// selected (attention sinks, §III-B). Paper default: 16.
	SinkTokens int
	// ClusterRatio sets the prefill cluster count C0 = clusteredLen/ClusterRatio
	// (paper: C0 = L/80, i.e. ratio 80).
	ClusterRatio int
	// C0Override, when > 0, fixes the prefill cluster count regardless of
	// context length (used by the Fig. 11b ablation C0 ∈ {200,...,800}).
	C0Override int
	// MinClusters floors the prefill cluster count (default 4).
	MinClusters int
	// DecodeWindow is m: decode-time clustering is applied every m generated
	// tokens (paper default 320).
	DecodeWindow int
	// DecodeClusters is C+: clusters created per decode-time batch (paper
	// default 4).
	DecodeClusters int
	// CacheR is the cache retention horizon in decode steps (paper default 1;
	// 0 disables the cache so every selected token is a transfer).
	CacheR int
	// BypassLayers disables selection on the first N layers, matching the
	// Quest-aligned evaluation setting (§V-A). Paper default 2.
	BypassLayers int
	// Metric is the clustering distance (paper default cosine).
	Metric cluster.Metric
	// Init is the K-means seeding strategy (paper default: random sampling;
	// PlusPlusInit is an extension ablation).
	Init cluster.Init
	// KMeansIters caps K-means iterations (default 16).
	KMeansIters int
	// Seed makes clustering deterministic.
	Seed uint64
	// HostQuantBits, when 2–8, stores host-tier KV pages KIVI-quantized at
	// that width, dequantizing on fetch (an extension beyond the paper:
	// quantized offload under cluster-granularity recall). Off (0) by
	// default — enabling it makes decoding lossy, so token streams are no
	// longer bit-identical to the fp32 run.
	HostQuantBits int
	// DeviceCachePages, when > 0, caps the simulated device-resident pages
	// per (layer, head) ledger: promotions past the cap evict the LRU
	// unpinned page, and prefetches that find no evictable room are dropped.
	// 0 leaves device residency unbounded (the paper's setting — the token
	// budget, not page capacity, limits the working set).
	DeviceCachePages int
	// PrefillClusterer, when non-nil, replaces the built-in K-means call for
	// prefill clustering. keys holds the post-sink prefill keys (row-major),
	// d the key dimension and c the requested cluster count; the returned
	// Result must use indices local to keys. Harnesses use this to memoise
	// clustering across budget sweeps; tests use it to inject degenerate
	// clusterings.
	PrefillClusterer func(layer, head int, keys []float32, d, c int) *cluster.Result
}

// NewConfig returns the paper's default configuration.
func NewConfig() Config {
	return Config{
		SinkTokens:     16,
		ClusterRatio:   80,
		MinClusters:    4,
		DecodeWindow:   320,
		DecodeClusters: 4,
		CacheR:         1,
		BypassLayers:   2,
		Metric:         cluster.Cosine,
		KMeansIters:    16,
	}
}

// headState is the per-(layer, head) working set.
type headState struct {
	book *cluster.Book
	// pendingFrom is the first absolute position not yet clustered (decode
	// tail); tokens in [pendingFrom, store.Len()) are device-resident and
	// always attended.
	pendingFrom int
	// cache maps cluster id -> last step it was selected. Entries older than
	// CacheR steps are evicted at step end.
	cache map[int]int64
	// ledger tracks simulated residency and transfer counts.
	ledger *kvcache.Ledger
	// scratch for cluster scores.
	scores []float32
	// idx is the reusable selection buffer returned by Select; valid until
	// the next Select on this (layer, head), which matches the attention
	// kernels' consume-within-the-step usage.
	idx []int
	// lastQ is a copy of the most recent query routed to this head, the
	// prediction input for layer-ahead prefetch (the next layer's clusters
	// are scored against the current layer's query).
	lastQ []float32
	// pending is the in-flight prefetch targeting this head's ledger; it is
	// drained (waited) in BeforeLayer before the head's own Select runs.
	pending *kvcache.Transfer
	// prefetchStep is the step a layer-ahead prefetch was last issued FOR
	// this head, so each (step, head) predicts at most once (Select fires
	// per query head, and AfterLayer backstops layers Select skipped).
	prefetchStep int64
}

// ClusterKV implements attention.Selector.
type ClusterKV struct {
	cfg    Config
	layers int
	heads  int
	d      int
	step   int64
	states []*headState // layer*heads + head
	stats  attention.SelStats

	// rt, when set, routes simulated KV movement through the engine-wide
	// async transfer runtime and enables layer-ahead prefetch via the
	// BeforeLayer/AfterLayer hooks. nil keeps the synchronous Ledger path.
	rt *kvcache.TransferRuntime
	// lastBudget is the device token budget observed on the latest Select,
	// reused to size prefetch predictions for the next layer.
	lastBudget int
}

var (
	_ attention.Selector     = (*ClusterKV)(nil)
	_ attention.LayerAware   = (*ClusterKV)(nil)
	_ attention.RuntimeAware = (*ClusterKV)(nil)
)

// New returns a ClusterKV selector with the given configuration.
func New(cfg Config) *ClusterKV {
	if cfg.ClusterRatio <= 0 {
		cfg.ClusterRatio = 80
	}
	if cfg.MinClusters <= 0 {
		cfg.MinClusters = 4
	}
	if cfg.DecodeWindow <= 0 {
		cfg.DecodeWindow = 320
	}
	if cfg.DecodeClusters <= 0 {
		cfg.DecodeClusters = 4
	}
	return &ClusterKV{cfg: cfg}
}

// Name implements attention.Selector.
func (c *ClusterKV) Name() string { return "ClusterKV" }

// SetTransferRuntime implements attention.RuntimeAware: simulated fetches go
// through rt's modeled channel and AfterLayer issues layer-ahead prefetch.
func (c *ClusterKV) SetTransferRuntime(rt *kvcache.TransferRuntime) { c.rt = rt }

// Config returns the active configuration.
func (c *ClusterKV) Config() Config { return c.cfg }

// Reset implements attention.Selector.
func (c *ClusterKV) Reset(layers, heads, headDim int) {
	c.layers, c.heads, c.d = layers, heads, headDim
	c.step = 0
	c.stats = attention.SelStats{}
	c.states = make([]*headState, layers*heads)
	for i := range c.states {
		c.states[i] = &headState{cache: make(map[int]int64), prefetchStep: -1}
	}
}

func (c *ClusterKV) state(layer, head int) *headState {
	return c.states[layer*c.heads+head]
}

// OnPrefill implements attention.Selector: cluster the prefill keys beyond
// the sink prefix into C0 = clusteredLen/ClusterRatio clusters.
func (c *ClusterKV) OnPrefill(layer, head int, s *kvcache.Store) {
	st := c.state(layer, head)
	n := s.Len()
	sinks := c.cfg.SinkTokens
	if sinks > n {
		sinks = n
	}
	// Residency is tracked at the store's page granularity: offload and
	// fetch move whole arena pages, the unit memsim charges PCIe for.
	st.book = cluster.NewBook(s.HeadDim(), sinks)
	st.ledger = kvcache.NewLedgerPaged(s.PageTokens())
	if c.cfg.HostQuantBits > 0 {
		st.ledger.Bind(s, c.cfg.HostQuantBits)
	}
	if c.cfg.DeviceCachePages > 0 {
		st.ledger.SetDeviceCap(c.cfg.DeviceCachePages)
	}
	st.ledger.Extend(n, kvcache.TierDevice)
	st.pendingFrom = n
	if layer < c.cfg.BypassLayers {
		return // bypass layers keep full KV on device; no clustering
	}
	clusteredLen := n - sinks
	if clusteredLen <= 0 {
		return
	}
	c0 := c.prefillClusterCount(clusteredLen)
	// Non-retaining read: the key matrix lives only for this clustering
	// call, so the store never carries a flat mirror of its pages.
	keys := s.ReadKeys(sinks, n, nil)
	var res *cluster.Result
	if c.cfg.PrefillClusterer != nil {
		res = c.cfg.PrefillClusterer(layer, head, keys, s.HeadDim(), c0)
	} else {
		res = cluster.KMeans(keys, s.HeadDim(), c0, cluster.Config{
			Metric:   c.cfg.Metric,
			MaxIters: c.cfg.KMeansIters,
			Init:     c.cfg.Init,
			Seed:     c.cfg.Seed ^ mix(uint64(layer), uint64(head)),
		})
	}
	st.book.AddBatch(res)
	c.stats.MetaOps += res.AssignOps
	// Post-prefill offload (Fig. 5): everything beyond the sinks moves to
	// host memory; sinks stay resident.
	st.ledger.Offload(sinks, n)
}

func (c *ClusterKV) prefillClusterCount(clusteredLen int) int {
	if c.cfg.C0Override > 0 {
		return c.cfg.C0Override
	}
	c0 := clusteredLen / c.cfg.ClusterRatio
	if c0 < c.cfg.MinClusters {
		c0 = c.cfg.MinClusters
	}
	return c0
}

// OnAppend implements attention.Selector: register the newly decoded token;
// every DecodeWindow appends, cluster the pending tail into DecodeClusters
// new clusters and offload it (§III-B, §IV-A "Step m").
func (c *ClusterKV) OnAppend(layer, head int, s *kvcache.Store) {
	st := c.state(layer, head)
	st.ledger.Extend(s.Len()-st.ledger.Len(), kvcache.TierDevice)
	if layer < c.cfg.BypassLayers {
		st.pendingFrom = s.Len()
		return
	}
	pending := s.Len() - st.pendingFrom
	if pending < c.cfg.DecodeWindow {
		return
	}
	d := s.HeadDim()
	keys := s.ReadKeys(st.pendingFrom, s.Len(), nil)
	res := cluster.KMeans(keys, d, c.cfg.DecodeClusters, cluster.Config{
		Metric:   c.cfg.Metric,
		MaxIters: c.cfg.KMeansIters,
		Init:     c.cfg.Init,
		Seed:     c.cfg.Seed ^ mix(uint64(layer), uint64(head)) ^ uint64(s.Len()),
	})
	// The Book requires batches to be contiguous from ClusteredUpTo; the
	// pending tail starts exactly there by construction.
	st.book.AddBatch(res)
	c.stats.MetaOps += res.AssignOps
	st.ledger.Offload(st.pendingFrom, s.Len())
	st.pendingFrom = s.Len()
}

// Select implements attention.Selector (§III-C, §IV-C): score centroids with
// inner products, take clusters in descending score order under the budget
// with last-cluster trimming, always include sinks and the unclustered
// decode tail, and account cache hits/misses at cluster granularity (§IV-D).
func (c *ClusterKV) Select(layer, head int, q []float32, s *kvcache.Store, budget int) []int {
	st := c.state(layer, head)
	// Remember the query and budget even on bypass/full-attention paths:
	// AfterLayer(layer) predicts layer+1's clusters from this query, and the
	// first selecting layer's prefetch is predicted from the last bypass
	// layer's query.
	if c.rt != nil {
		if cap(st.lastQ) < len(q) {
			st.lastQ = make([]float32, len(q))
		}
		st.lastQ = st.lastQ[:len(q)]
		copy(st.lastQ, q)
		c.lastBudget = budget
	}
	if layer < c.cfg.BypassLayers {
		return nil
	}
	n := s.Len()
	if budget >= n {
		return nil
	}
	sinks := st.book.Start()
	tail := n - st.pendingFrom

	// Mandatory tokens: sinks + unclustered decode tail.
	mandatory := sinks + tail
	clusterBudget := budget - mandatory
	if clusterBudget < 0 {
		clusterBudget = 0
	}

	book := st.book
	cn := book.NumClusters()
	if cap(st.scores) < cn {
		st.scores = make([]float32, cn)
	}
	scores := st.scores[:cn]
	c.stats.ScoreOps += book.ScoreClusters(scores, q)

	clusters, positions := book.SelectTopClusters(scores, clusterBudget)

	// Assemble I_T: sinks, selected cluster members, decode tail. The buffer
	// is per-head scratch: grown geometrically, reused across steps.
	if want := mandatory + len(positions); cap(st.idx) < want {
		c := 2 * cap(st.idx)
		if c < want {
			c = want
		}
		st.idx = make([]int, 0, c)
	}
	out := st.idx[:0]
	for i := 0; i < sinks; i++ {
		out = append(out, i)
	}
	out = append(out, positions...)
	for i := st.pendingFrom; i < n; i++ {
		out = append(out, i)
	}
	st.idx = out
	sort.Ints(out)

	// Cache accounting (§IV-D): a selected cluster present in the cache is a
	// hit for all the tokens taken from it; otherwise its taken tokens are
	// loaded host→device. Sinks and the decode tail are always device
	// resident and excluded from hit-rate accounting.
	taken := clusterTakenCounts(book, clusters, positions)
	for i, cl := range clusters {
		if _, ok := st.cache[cl]; ok {
			c.stats.TokensHit += int64(taken[i])
		} else {
			c.stats.TokensLoaded += int64(taken[i])
		}
		st.cache[cl] = c.step
	}
	// Ledger keeps page-granular residency (the cache retains whole
	// clusters; fetching every selected position promotes the pages they
	// live on). With a transfer runtime attached, the fetch is scheduled on
	// the modeled channel and waited immediately — pages the layer-ahead
	// prefetch already landed cost nothing here; only mispredicted (or
	// first-touch) pages expose transfer time.
	if c.rt != nil {
		// Drain this head's layer-ahead prefetch first (issued during the
		// previous layer; by now it has had that layer's tail plus this
		// layer's projections to land), then fetch exactly what selection
		// chose — pages the prefetch predicted right cost nothing here.
		if st.pending != nil {
			st.pending.Wait()
			st.pending = nil
		}
		c.rt.Fetch(st.ledger, positions).Wait()
		// Layer-ahead prefetch launches here, mid-attention: the predicted
		// next-layer clusters transfer while this layer's remaining heads,
		// output projection and FFN — and the next layer's QKV — compute.
		c.issuePrefetch(layer+1, head, q, budget)
	} else {
		st.ledger.Fetch(positions)
	}

	c.stats.SelectCalls++
	c.stats.TokensSelected += int64(len(out))
	c.stats.ClustersSelected += int64(len(clusters))
	return out
}

// clusterTakenCounts returns, aligned with clusters, how many of each
// cluster's members appear in positions (all clusters are taken fully except
// possibly the last, which may be trimmed).
func clusterTakenCounts(book *cluster.Book, clusters []int, positions []int) []int {
	taken := make([]int, len(clusters))
	remaining := len(positions)
	for i, cl := range clusters {
		sz := book.Size(cl)
		if sz > remaining {
			sz = remaining
		}
		taken[i] = sz
		remaining -= sz
	}
	return taken
}

// BeforeLayer implements attention.LayerAware: drain straggler prefetches
// targeting *other* layers (issued for a layer whose Select then never ran —
// full-attention steps), so no transfer ever outlives the layer sweep that
// issued it out of order. The current layer's own prefetch is deliberately
// left in flight: it keeps transferring through this layer's QKV
// projections and is drained lazily by Select just before the exact fetch —
// attention waits only if the transfer still hasn't landed by then.
func (c *ClusterKV) BeforeLayer(layer int) {
	if c.rt == nil || c.states == nil {
		return
	}
	for l := 0; l < layer; l++ {
		for h := 0; h < c.heads; h++ {
			st := c.state(l, h)
			if st.pending != nil {
				st.pending.Wait()
				st.pending = nil
			}
		}
	}
}

// AfterLayer implements attention.LayerAware: the backstop issue point for
// layer-ahead prefetch. Layers whose Select ran have already predicted the
// next layer mid-attention (see issuePrefetch's caller in Select, the wider
// overlap window); AfterLayer covers the layers where selection never fired —
// bypass layers feeding the first selecting layer, and full-attention steps
// — using the last query each head saw.
func (c *ClusterKV) AfterLayer(layer int) {
	if c.rt == nil || c.states == nil {
		return
	}
	for h := 0; h < c.heads; h++ {
		if cur := c.state(layer, h); len(cur.lastQ) > 0 {
			c.issuePrefetch(layer+1, h, cur.lastQ, c.lastBudget)
		}
	}
}

// issuePrefetch runs the layer-ahead prediction for (next, head) at most
// once per decode step: score layer next's centroid book against q — the
// *current* layer's query; cross-layer query similarity makes it a good
// proxy — take the predicted top clusters under the budget, and enqueue
// their pages on the async channel. The transfer proceeds while the rest of
// the current layer's attention/FFN and the next layer's projections
// compute; BeforeLayer(next) waits out whatever is left. A misprediction
// costs only modeled channel time: prefetched pages are unpinned hints that
// capacity pressure may re-evict, never a correctness hazard.
func (c *ClusterKV) issuePrefetch(next, head int, q []float32, budget int) {
	if c.rt == nil || next >= c.layers || next < c.cfg.BypassLayers || budget <= 0 {
		return
	}
	st := c.state(next, head)
	if st.prefetchStep == c.step {
		return // this (step, head) already predicted
	}
	st.prefetchStep = c.step
	if st.book == nil || st.ledger == nil {
		return
	}
	n := st.ledger.Len()
	if budget >= n {
		return // next layer will run full attention; nothing to fetch
	}
	cn := st.book.NumClusters()
	if cn == 0 {
		return
	}
	clusterBudget := budget - st.book.Start() - (n - st.pendingFrom)
	if clusterBudget <= 0 {
		return
	}
	if cap(st.scores) < cn {
		st.scores = make([]float32, cn)
	}
	scores := st.scores[:cn]
	c.stats.ScoreOps += st.book.ScoreClusters(scores, q)
	_, positions := st.book.SelectTopClusters(scores, clusterBudget)
	if len(positions) == 0 {
		return
	}
	if st.pending != nil {
		st.pending.Wait() // never stack prefetches on one head
	}
	st.pending = c.rt.Prefetch(st.ledger, positions)
}

// EndStep implements attention.Selector: advance the step counter and evict
// cache entries older than CacheR steps, returning their clusters' tokens to
// host residency.
func (c *ClusterKV) EndStep() {
	c.step++
	c.stats.Steps++
	for _, st := range c.states {
		// Catch-all drain: a prefetch whose target layer never selected
		// (e.g. the budget covered the whole context) must settle before
		// this step's evictions, so residency stays deterministic.
		if st.pending != nil {
			st.pending.Wait()
			st.pending = nil
		}
		if st.ledger != nil {
			// Pins taken by this step's fetches expire; prefetch/capacity
			// eviction may displace them from the next step on.
			st.ledger.EndEpoch()
		}
	}
	if c.cfg.CacheR < 0 {
		return // negative R: infinite cache (ablation)
	}
	// A cluster selected at step s stays cached through the selections of
	// steps s+1..s+R ("the KV of selected tokens from the last R decoding
	// steps", §IV-D); R=0 disables the cache.
	for _, st := range c.states {
		if st.book == nil {
			continue
		}
		for cl, last := range st.cache {
			if c.step-last > int64(c.cfg.CacheR) {
				delete(st.cache, cl)
				st.ledger.Evict(st.book.Members(cl))
			}
		}
	}
}

// Stats implements attention.Selector.
func (c *ClusterKV) Stats() attention.SelStats { return c.stats }

// Book exposes the cluster registry of one (layer, head) for analysis
// tooling (fragmentation studies, examples). It returns nil before prefill.
func (c *ClusterKV) Book(layer, head int) *cluster.Book {
	if c.states == nil {
		return nil
	}
	return c.state(layer, head).book
}

// Ledger exposes the residency ledger of one (layer, head).
func (c *ClusterKV) Ledger(layer, head int) *kvcache.Ledger {
	if c.states == nil {
		return nil
	}
	return c.state(layer, head).ledger
}

// TransferStalls implements attention.StallReporter: this selector's modeled
// transfer time summed across every (layer, head) ledger, split into the
// portion that blocked compute and the portion hidden behind it.
func (c *ClusterKV) TransferStalls() (exposedSec, hiddenSec float64) {
	for _, st := range c.states {
		if st == nil || st.ledger == nil {
			continue
		}
		e, h := st.ledger.TransferStalls()
		exposedSec += e
		hiddenSec += h
	}
	return exposedSec, hiddenSec
}

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ (b + 0x7f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

package core

import (
	"testing"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

// drivePrefetch runs a multi-layer decode harness over identical stores,
// queries and appends, invoking the model's layer-hook call sequence
// (BeforeLayer → OnAppend/Select per head → AfterLayer → EndStep), and
// returns every Select result. rt may be nil (synchronous ledger path).
func drivePrefetch(cfg Config, rt *kvcache.TransferRuntime, layers, heads, n, d, steps, budget int) [][]int {
	sel := New(cfg)
	if rt != nil {
		sel.SetTransferRuntime(rt)
	}
	sel.Reset(layers, heads, d)
	stores := buildStores(7, layers, heads, n, d)
	for l := 0; l < layers; l++ {
		for h := 0; h < heads; h++ {
			sel.OnPrefill(l, h, stores[l*heads+h])
		}
	}
	var out [][]int
	k := make([]float32, d)
	v := make([]float32, d)
	for step := 0; step < steps; step++ {
		for l := 0; l < layers; l++ {
			sel.BeforeLayer(l)
			for h := 0; h < heads; h++ {
				r := rng.New(uint64(step)*1315423911 + uint64(l)*2654435761 + uint64(h)*97)
				for j := 0; j < d; j++ {
					k[j] = r.NormFloat32()
					v[j] = r.NormFloat32()
				}
				s := stores[l*heads+h]
				s.Append(k, v)
				sel.OnAppend(l, h, s)
			}
			for h := 0; h < heads; h++ {
				q := randQuery(uint64(step)*31+uint64(l)*17+uint64(h)+5, d)
				idx := sel.Select(l, h, q, stores[l*heads+h], budget)
				out = append(out, append([]int(nil), idx...))
			}
			sel.AfterLayer(l)
		}
		sel.EndStep()
	}
	return out
}

func positionsEqual(a, b [][]int) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

// TestPrefetchDoesNotChangeSelection is the determinism lock at selector
// level: layer-ahead prefetch through the async runtime — and the same
// schedule forced synchronous — must produce exactly the positions the plain
// synchronous ledger path selects. Transfers change when residency moves,
// never what attention reads.
func TestPrefetchDoesNotChangeSelection(t *testing.T) {
	const (
		layers, heads = 3, 2
		n, d          = 600, 8
		steps, budget = 24, 128
	)
	cfg := traceConfig()
	base := drivePrefetch(cfg, nil, layers, heads, n, d, steps, budget)

	async := kvcache.NewTransferRuntime(kvcache.Channel{SecPerPage: 5e-6}, false, false)
	got := drivePrefetch(cfg, async, layers, heads, n, d, steps, budget)
	async.Close()
	if i, ok := positionsEqual(base, got); !ok {
		t.Fatalf("async runtime changed selection at call %d", i)
	}

	syncRT := kvcache.NewTransferRuntime(kvcache.Channel{SecPerPage: 5e-6}, true, false)
	got = drivePrefetch(cfg, syncRT, layers, heads, n, d, steps, budget)
	syncRT.Close()
	if i, ok := positionsEqual(base, got); !ok {
		t.Fatalf("sync runtime changed selection at call %d", i)
	}
}

// TestPrefetchIssuesAndHits: the layer-ahead path actually prefetches pages
// for layers ≥ 1 and a healthy share of them are claimed by the next layer's
// exact fetch (cross-layer query similarity in the structured test data).
func TestPrefetchIssuesAndHits(t *testing.T) {
	cfg := traceConfig()
	rt := kvcache.NewTransferRuntime(kvcache.Channel{SecPerPage: 5e-6}, false, false)
	defer rt.Close()
	drivePrefetch(cfg, rt, 3, 2, 600, 8, 24, 128)
	o := rt.Stats()
	if o.PrefetchedPages == 0 {
		t.Fatal("no pages prefetched by the layer-ahead path")
	}
	if o.PrefetchHits == 0 {
		t.Fatal("no prefetched page was ever claimed by an exact fetch")
	}
	if o.Transfers == 0 || o.BusySec <= 0 {
		t.Fatalf("runtime saw no transfers: %+v", o)
	}
}

// TestPrefetchMispredictionUnderCap runs the full selector with an async
// runtime and a deliberately tiny device cap, so every prefetch and fetch
// forces LRU capacity eviction (run under -race to exercise the background
// worker against the compute-side calls; the pin-vs-prefetch eviction race
// itself is locked by kvcache.TestPrefetchNeverEvictsPinned). Selection must
// still match the synchronous, uncapped baseline exactly — residency
// pressure may cost transfers, never correctness.
func TestPrefetchMispredictionUnderCap(t *testing.T) {
	const (
		layers, heads = 3, 2
		n, d          = 600, 8
		steps, budget = 24, 128
	)
	base := drivePrefetch(traceConfig(), nil, layers, heads, n, d, steps, budget)

	capped := traceConfig()
	capped.DeviceCachePages = 2 // far below the ~10 pages a 600-token context needs
	rt := kvcache.NewTransferRuntime(kvcache.Channel{SecPerPage: 5e-6}, false, false)
	defer rt.Close()
	got := drivePrefetch(capped, rt, layers, heads, n, d, steps, budget)
	if i, ok := positionsEqual(base, got); !ok {
		t.Fatalf("capped async run changed selection at call %d", i)
	}
	o := rt.Stats()
	if o.PrefetchedPages+o.PrefetchDropped == 0 {
		t.Fatal("capped run issued no prefetch attempts")
	}
	if o.Pages <= int64(o.PrefetchedPages) {
		t.Fatalf("capacity eviction under a 2-page cap should force extra refetches: %d pages moved, %d prefetched",
			o.Pages, o.PrefetchedPages)
	}
}

package core

import (
	"sort"
	"testing"
	"testing/quick"

	"clusterkv/internal/cluster"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/rng"
)

// buildStores creates layers×heads stores with n structured tokens each.
func buildStores(seed uint64, layers, heads, n, d int) []*kvcache.Store {
	stores := make([]*kvcache.Store, layers*heads)
	for i := range stores {
		r := rng.New(seed + uint64(i)*131)
		s := kvcache.NewStore(d)
		k := make([]float32, d)
		v := make([]float32, d)
		for p := 0; p < n; p++ {
			grp := p % 5
			for j := 0; j < d; j++ {
				k[j] = float32(grp)*0.8 + 0.3*r.NormFloat32()
				v[j] = r.NormFloat32()
			}
			s.Append(k, v)
		}
		stores[i] = s
	}
	return stores
}

func traceConfig() Config {
	cfg := NewConfig()
	cfg.BypassLayers = 0
	return cfg
}

func prepared(t *testing.T, cfg Config, n int) (*ClusterKV, *kvcache.Store) {
	t.Helper()
	sel := New(cfg)
	sel.Reset(1, 1, 8)
	s := buildStores(1, 1, 1, n, 8)[0]
	sel.OnPrefill(0, 0, s)
	return sel, s
}

func randQuery(seed uint64, d int) []float32 {
	r := rng.New(seed)
	q := make([]float32, d)
	for j := range q {
		q[j] = r.NormFloat32()
	}
	return q
}

func TestSelectReturnsExactBudget(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 2000)
	for _, budget := range []int{64, 128, 256, 777} {
		idx := sel.Select(0, 0, randQuery(2, 8), s, budget)
		if len(idx) != budget {
			t.Fatalf("budget %d: |I_T| = %d", budget, len(idx))
		}
	}
}

func TestSelectIndicesValidUniqueSorted(t *testing.T) {
	check := func(seed uint64, bb uint16) bool {
		budget := int(bb)%900 + 20
		sel, s := prepared(t, traceConfig(), 1000)
		idx := sel.Select(0, 0, randQuery(seed, 8), s, budget)
		if !sort.IntsAreSorted(idx) {
			return false
		}
		seen := map[int]bool{}
		for _, p := range idx {
			if p < 0 || p >= s.Len() || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSelectAlwaysIncludesSinks(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 1000)
	idx := sel.Select(0, 0, randQuery(3, 8), s, 100)
	for p := 0; p < 16; p++ {
		if idx[p] != p {
			t.Fatalf("sink token %d not selected (idx prefix %v)", p, idx[:16])
		}
	}
}

func TestSelectAlwaysIncludesDecodeTail(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 1000)
	// Append 10 decode tokens (below DecodeWindow, so they stay unclustered).
	for i := 0; i < 10; i++ {
		s.Append(randQuery(uint64(i), 8), randQuery(uint64(i)+100, 8))
		sel.OnAppend(0, 0, s)
	}
	idx := sel.Select(0, 0, randQuery(4, 8), s, 128)
	inIdx := map[int]bool{}
	for _, p := range idx {
		inIdx[p] = true
	}
	for p := 1000; p < 1010; p++ {
		if !inIdx[p] {
			t.Fatalf("decode-tail token %d not selected", p)
		}
	}
}

func TestSelectBypassLayersReturnNil(t *testing.T) {
	cfg := NewConfig() // BypassLayers = 2
	sel := New(cfg)
	sel.Reset(3, 1, 8)
	stores := buildStores(2, 3, 1, 500, 8)
	for l := 0; l < 3; l++ {
		sel.OnPrefill(l, 0, stores[l])
	}
	if idx := sel.Select(0, 0, randQuery(5, 8), stores[0], 64); idx != nil {
		t.Fatal("layer 0 should bypass selection")
	}
	if idx := sel.Select(1, 0, randQuery(5, 8), stores[1], 64); idx != nil {
		t.Fatal("layer 1 should bypass selection")
	}
	if idx := sel.Select(2, 0, randQuery(5, 8), stores[2], 64); idx == nil {
		t.Fatal("layer 2 should select")
	}
}

func TestSelectFullWhenBudgetCoversContext(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 100)
	if idx := sel.Select(0, 0, randQuery(6, 8), s, 100); idx != nil {
		t.Fatal("budget == n should return nil (full attention)")
	}
	if idx := sel.Select(0, 0, randQuery(6, 8), s, 1000); idx != nil {
		t.Fatal("budget > n should return nil")
	}
}

func TestDecodeWindowTriggersClustering(t *testing.T) {
	cfg := traceConfig()
	cfg.DecodeWindow = 32
	cfg.DecodeClusters = 2
	sel, s := prepared(t, cfg, 500)
	before := sel.Book(0, 0).NumClusters()
	for i := 0; i < 32; i++ {
		s.Append(randQuery(uint64(i), 8), randQuery(uint64(i)+7, 8))
		sel.OnAppend(0, 0, s)
	}
	after := sel.Book(0, 0).NumClusters()
	if after != before+2 {
		t.Fatalf("decode clustering: %d -> %d clusters, want +2", before, after)
	}
	if sel.Book(0, 0).ClusteredUpTo() != 532 {
		t.Fatalf("ClusteredUpTo = %d, want 532", sel.Book(0, 0).ClusteredUpTo())
	}
}

func TestCacheSemanticsR1(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 2000) // CacheR = 1 default
	q := randQuery(8, 8)

	sel.Select(0, 0, q, s, 256)
	sel.EndStep()
	first := sel.Stats()
	if first.TokensHit != 0 {
		t.Fatalf("first step should have no hits, got %d", first.TokensHit)
	}
	// Same query next step: identical clusters selected, should all hit.
	sel.Select(0, 0, q, s, 256)
	sel.EndStep()
	second := sel.Stats()
	hits := second.TokensHit - first.TokensHit
	loads := second.TokensLoaded - first.TokensLoaded
	if loads != 0 || hits == 0 {
		t.Fatalf("repeat step under R=1: hits=%d loads=%d, want all hits", hits, loads)
	}
}

func TestCacheDisabledR0(t *testing.T) {
	cfg := traceConfig()
	cfg.CacheR = 0
	sel, s := prepared(t, cfg, 2000)
	q := randQuery(9, 8)
	sel.Select(0, 0, q, s, 256)
	sel.EndStep()
	sel.Select(0, 0, q, s, 256)
	sel.EndStep()
	if st := sel.Stats(); st.TokensHit != 0 {
		t.Fatalf("R=0 must never hit, got %d hits", st.TokensHit)
	}
}

func TestCacheR2OutlivesOneStep(t *testing.T) {
	cfg := traceConfig()
	cfg.CacheR = 2
	sel, s := prepared(t, cfg, 2000)
	qa, qb := randQuery(10, 8), randQuery(11, 8)
	sel.Select(0, 0, qa, s, 256)
	sel.EndStep()
	sel.Select(0, 0, qb, s, 256) // different clusters likely
	sel.EndStep()
	base := sel.Stats()
	// qa's clusters were selected 2 steps ago — still cached under R=2.
	sel.Select(0, 0, qa, s, 256)
	sel.EndStep()
	st := sel.Stats()
	if st.TokensLoaded-base.TokensLoaded != 0 {
		t.Fatalf("R=2: qa clusters evicted too early (%d loads)", st.TokensLoaded-base.TokensLoaded)
	}
}

func TestC0Override(t *testing.T) {
	cfg := traceConfig()
	cfg.C0Override = 7
	sel, _ := prepared(t, cfg, 1000)
	if got := sel.Book(0, 0).NumClusters(); got != 7 {
		t.Fatalf("C0Override: %d clusters, want 7", got)
	}
}

func TestClusterRatioDefault(t *testing.T) {
	sel, _ := prepared(t, traceConfig(), 1000)
	want := (1000 - 16) / 80
	if got := sel.Book(0, 0).NumClusters(); got != want {
		t.Fatalf("C0 = %d, want %d", got, want)
	}
}

func TestPrefillClustererHook(t *testing.T) {
	called := 0
	cfg := traceConfig()
	cfg.PrefillClusterer = func(layer, head int, keys []float32, d, c int) *cluster.Result {
		called++
		return cluster.KMeans(keys, d, c, cluster.Config{Seed: 42})
	}
	prepared(t, cfg, 500)
	if called != 1 {
		t.Fatalf("hook called %d times", called)
	}
}

func TestStatsAccumulate(t *testing.T) {
	sel, s := prepared(t, traceConfig(), 1500)
	for i := 0; i < 3; i++ {
		sel.Select(0, 0, randQuery(uint64(i), 8), s, 128)
		sel.EndStep()
	}
	st := sel.Stats()
	if st.Steps != 3 || st.SelectCalls != 3 {
		t.Fatalf("steps=%d calls=%d", st.Steps, st.SelectCalls)
	}
	if st.TokensSelected != 3*128 {
		t.Fatalf("TokensSelected = %d", st.TokensSelected)
	}
	if st.ScoreOps == 0 || st.MetaOps == 0 || st.ClustersSelected == 0 {
		t.Fatalf("counters not accumulating: %+v", st)
	}
}

func TestTinyContexts(t *testing.T) {
	// Contexts at or below the sink count must not crash.
	for _, n := range []int{1, 8, 16, 17} {
		sel := New(traceConfig())
		sel.Reset(1, 1, 8)
		s := buildStores(3, 1, 1, n, 8)[0]
		sel.OnPrefill(0, 0, s)
		idx := sel.Select(0, 0, randQuery(1, 8), s, 4)
		_ = idx // any non-panicking answer is acceptable for degenerate sizes
	}
}

func TestBudgetSmallerThanMandatory(t *testing.T) {
	// Budget below sinks+tail: mandatory tokens are still included (the
	// selection never drops sinks), so |I_T| may exceed the budget.
	sel, s := prepared(t, traceConfig(), 1000)
	idx := sel.Select(0, 0, randQuery(12, 8), s, 8)
	inIdx := map[int]bool{}
	for _, p := range idx {
		inIdx[p] = true
	}
	for p := 0; p < 16; p++ {
		if !inIdx[p] {
			t.Fatalf("sink %d dropped under tiny budget", p)
		}
	}
}

func TestLedgerResidencyAfterPrefill(t *testing.T) {
	sel, _ := prepared(t, traceConfig(), 500)
	led := sel.Ledger(0, 0)
	// Sinks stay on device, clustered tokens offloaded to host.
	if led.TierOf(0) != kvcache.TierDevice {
		t.Fatal("sink offloaded")
	}
	if led.TierOf(100) != kvcache.TierHost {
		t.Fatal("clustered token not offloaded")
	}
}

func TestNameAndConfig(t *testing.T) {
	sel := New(traceConfig())
	if sel.Name() != "ClusterKV" {
		t.Fatal("wrong name")
	}
	if sel.Config().ClusterRatio != 80 {
		t.Fatal("config not retained")
	}
}

func TestNewDefaultsFilled(t *testing.T) {
	sel := New(Config{})
	cfg := sel.Config()
	if cfg.ClusterRatio != 80 || cfg.DecodeWindow != 320 || cfg.DecodeClusters != 4 || cfg.MinClusters != 4 {
		t.Fatalf("zero-config defaults: %+v", cfg)
	}
}

// TestHostQuantFlagQuantizesOffloadedPages: with the off-by-default
// HostQuantBits set, the post-prefill offload stores full host pages
// quantized; selection still works and fetching restores float storage. With
// the flag off (every other test in this file), pages never quantize.
func TestHostQuantFlagQuantizesOffloadedPages(t *testing.T) {
	cfg := traceConfig()
	cfg.HostQuantBits = 8
	sel, s := prepared(t, cfg, 500)

	quantized := 0
	for p := 0; p < s.NumPages(); p++ {
		if s.PageQuantized(p) {
			quantized++
		}
	}
	// Page 0 holds the device-resident sinks; the partial tail page stays
	// fp32; everything in between was offloaded and quantized.
	if quantized == 0 {
		t.Fatal("no page quantized after post-prefill offload")
	}
	if s.PageQuantized(0) {
		t.Fatal("sink page (device tier) quantized")
	}

	idx := sel.Select(0, 0, randQuery(3, 8), s, 128)
	if len(idx) == 0 {
		t.Fatal("selection over quantized host pages returned nothing")
	}
	led := sel.Ledger(0, 0)
	led.Fetch(idx)
	for _, p := range idx {
		pg := p / s.PageTokens()
		if led.TierOf(p) == kvcache.TierDevice && s.PageQuantized(pg) {
			t.Fatalf("device-resident page %d still quantized after fetch", pg)
		}
	}
}

// TestHostQuantSurvivesDecodeWindow: the decode-window clustering reads the
// pending tail through Store.Keys; that metadata read must not restore the
// already-quantized host pages (regression: syncFlat used to dequantize
// every page as a side effect).
func TestHostQuantSurvivesDecodeWindow(t *testing.T) {
	cfg := traceConfig()
	cfg.HostQuantBits = 8
	cfg.DecodeWindow = 24
	sel, s := prepared(t, cfg, 300)

	quantizedBefore := 0
	for p := 0; p < s.NumPages(); p++ {
		if s.PageQuantized(p) {
			quantizedBefore++
		}
	}
	if quantizedBefore == 0 {
		t.Fatal("prefill offload quantized nothing")
	}
	// Drive one full decode window (appends trigger tail clustering, which
	// slices s.Keys()) without any Select fetches.
	r := rng.New(9)
	k := make([]float32, 8)
	v := make([]float32, 8)
	for i := 0; i < cfg.DecodeWindow; i++ {
		for j := range k {
			k[j] = r.NormFloat32()
			v[j] = r.NormFloat32()
		}
		s.Append(k, v)
		sel.OnAppend(0, 0, s)
		sel.EndStep()
	}
	quantizedAfter := 0
	for p := 0; p < s.NumPages(); p++ {
		if s.PageQuantized(p) {
			quantizedAfter++
		}
	}
	if quantizedAfter < quantizedBefore {
		t.Fatalf("decode window restored quantized pages: %d -> %d", quantizedBefore, quantizedAfter)
	}
}

package bench

import (
	"fmt"

	"clusterkv/internal/cluster"
	"clusterkv/internal/core"
	"clusterkv/internal/workload"
)

// RunAblations exercises the design choices DESIGN.md §4 calls out beyond
// the paper's own ablations: cache retention R, decode-clustering cadence
// (m, C+), sink-token count, and the K-means iteration cap.
func RunAblations(opt Options) []*Report {
	opt = opt.withDefaults()
	task := narrativeTrace(opt)
	memo := NewMemo()
	budget := 1024

	runWith := func(mut func(*core.Config)) *RunResult {
		cfg := core.NewConfig()
		cfg.BypassLayers = 0
		mut(&cfg)
		return RunTrace(task.Trace, memo.ClusterKV(cfg), budget)
	}

	// --- Cache retention horizon R ---------------------------------------
	rRep := &Report{
		ID:      "ablation-cacheR",
		Title:   "Cache retention horizon R vs hit rate (extends paper §V-C)",
		Headers: []string{"R", "HitRate", "Recall", "Fidelity"},
	}
	for _, r := range []int{0, 1, 2, 4, 8} {
		run := runWith(func(c *core.Config) { c.CacheR = r })
		rRep.Rows = append(rRep.Rows, []string{
			fmt.Sprint(r),
			fmt.Sprintf("%.0f%%", run.Stats.HitRate()*100),
			f3(run.MeanRecall()), f3(run.MeanFidelity()),
		})
	}
	rRep.Notes = append(rRep.Notes, "selection quality is R-independent; R trades GPU memory for hit rate.")

	// --- Decode clustering cadence (m, C+) --------------------------------
	// A long-generation workload (512 decode steps) so the cadence actually
	// fires: with m=320 the tail is clustered once; with m=80, six times.
	longSpec := workload.TaskSpec{
		Name: "long-gen", BaseScore: 1,
		CtxLen: min(4096, opt.MaxCtx), NumNeedles: 3, NeedleTokens: 20,
		SpreadRegion: 512, AnswerSteps: 512, HopPattern: "revisit",
		DiffuseNoise: 0.5, QueryGain: 0.9,
	}
	longTask := workload.BuildTask(longSpec, opt.Seed^0xab1)
	mRep := &Report{
		ID:      "ablation-decode-clustering",
		Title:   "Decode-time clustering cadence m and C+ over 512 generated tokens (paper §III-B defaults m=320, C+=4)",
		Headers: []string{"m", "C+", "Recall", "Fidelity", "DecodeMetaOps"},
	}
	prefillOps := int64(-1)
	for _, mw := range []int{80, 160, 320, 640} {
		for _, cp := range []int{2, 4, 8} {
			cfg := core.NewConfig()
			cfg.BypassLayers = 0
			cfg.DecodeWindow = mw
			cfg.DecodeClusters = cp
			run := RunTrace(longTask.Trace, memo.ClusterKV(cfg), budget)
			if prefillOps < 0 {
				// Memoised prefill: decode-only ops = total − first-run prefill.
				prefillOps = 0
			}
			mRep.Rows = append(mRep.Rows, []string{
				fmt.Sprint(mw), fmt.Sprint(cp),
				f3(run.MeanRecall()), f3(run.MeanFidelity()),
				fmt.Sprint(run.Stats.MetaOps),
			})
		}
	}
	mRep.Notes = append(mRep.Notes,
		"smaller m clusters the generated tail sooner (better recall of generated",
		"tokens) at more frequent clustering launches; MetaOps includes the shared",
		"memoised prefill clustering only on its first computation.")

	// --- Sink tokens -------------------------------------------------------
	sRep := &Report{
		ID:      "ablation-sinks",
		Title:   "Attention-sink retention (paper §III-B keeps the first 16 tokens)",
		Headers: []string{"SinkTokens", "Recall", "Fidelity"},
	}
	for _, sk := range []int{0, 4, 16, 64} {
		run := runWith(func(c *core.Config) { c.SinkTokens = sk })
		sRep.Rows = append(sRep.Rows, []string{
			fmt.Sprint(sk), f3(run.MeanRecall()), f3(run.MeanFidelity()),
		})
	}
	sRep.Notes = append(sRep.Notes, "sinks are outliers in key space; clustering them wastes centroids and recall.")

	// --- K-means seeding strategy (extension beyond the paper) -------------
	iRep := &Report{
		ID:      "ablation-kmeans-init",
		Title:   "K-means seeding: random sampling (paper) vs k-means++",
		Headers: []string{"Init", "Recall", "Fidelity", "PrefillMetaOps"},
	}
	for _, init := range []struct {
		name string
		v    cluster.Init
	}{{"random", cluster.RandomInit}, {"k-means++", cluster.PlusPlusInit}} {
		cfg := core.NewConfig()
		cfg.BypassLayers = 0
		cfg.Init = init.v
		run := RunTrace(task.Trace, core.New(cfg), budget)
		iRep.Rows = append(iRep.Rows, []string{
			init.name, f3(run.MeanRecall()), f3(run.MeanFidelity()),
			fmt.Sprint(run.Stats.MetaOps),
		})
	}
	iRep.Notes = append(iRep.Notes, "k-means++ converges in fewer iterations (lower assignment ops) at equal quality.")

	// --- K-means iteration cap --------------------------------------------
	kRep := &Report{
		ID:      "ablation-kmeans-iters",
		Title:   "K-means iteration cap vs recall and clustering cost",
		Headers: []string{"MaxIters", "Recall", "PrefillMetaOps"},
	}
	for _, it := range []int{2, 4, 8, 16} {
		cfg := core.NewConfig()
		cfg.BypassLayers = 0
		cfg.KMeansIters = it
		// Fresh (non-memoised) selector: the iteration cap changes clustering.
		run := RunTrace(task.Trace, core.New(cfg), budget)
		kRep.Rows = append(kRep.Rows, []string{
			fmt.Sprint(it), f3(run.MeanRecall()), fmt.Sprint(run.Stats.MetaOps),
		})
	}
	return []*Report{rRep, mRep, sRep, iRep, kRep}
}

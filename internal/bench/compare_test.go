package bench

import (
	"bytes"
	"strings"
	"testing"
)

func snapWith(metrics ...Metric) Snapshot {
	return Snapshot{
		Schema:     SnapshotSchema,
		Experiment: "fleet",
		Commit:     "test",
		Reports:    []ReportSnapshot{{ID: "fleet", Metrics: metrics}},
	}
}

// TestCompareCleanPasses locks the gate's baseline behavior: an identical
// snapshot compares clean, with every metric OK.
func TestCompareCleanPasses(t *testing.T) {
	s := snapWith(
		Metric{Name: "affinity.model_ttft_p50", Value: 92.0, Unit: "ms"},
		Metric{Name: "affinity.prefix_hit_rate", Value: 0.75, Unit: "frac"},
		Metric{Name: "affinity.prefill_tokens", Value: 1280, Unit: "tokens"},
		Metric{Name: "decodebatch.identical", Value: 1, Unit: "bool"},
		Metric{Name: "solo_tok_s", Value: 200, Unit: "tok/s"},
	)
	res, err := Compare(s, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Fails != 0 || res.Warns != 0 {
		t.Fatalf("self-compare not clean: %+v", res)
	}
	for _, d := range res.Deltas {
		if d.Status != StatusOK {
			t.Fatalf("metric %s status %s on identical snapshots", d.Name, d.Status)
		}
	}
}

// TestComparePerturbedFails is the acceptance lock: an artificially injected
// 20% regression on a gated modeled metric must fail the comparison, and the
// rendered table must say so.
func TestComparePerturbedFails(t *testing.T) {
	base := snapWith(
		Metric{Name: "affinity.model_ttft_p50", Value: 100, Unit: "ms"},
		Metric{Name: "affinity.prefill_tokens", Value: 1000, Unit: "tokens"},
	)
	cur := snapWith(
		Metric{Name: "affinity.model_ttft_p50", Value: 120, Unit: "ms"}, // +20% modeled latency
		Metric{Name: "affinity.prefill_tokens", Value: 1000, Unit: "tokens"},
	)
	res, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Fails != 1 {
		t.Fatalf("20%% modeled-latency regression did not fail: %+v", res)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "model_ttft_p50") {
		t.Fatalf("table does not surface the failure:\n%s", out)
	}
	// The same perturbation inside the threshold passes.
	res, err = Compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("20%% change beyond a 25%% threshold still failed: %+v", res)
	}
}

// TestCompareWallClockOnlyWarns locks the measured/deterministic split: a
// throughput drop can never fail the build, only warn.
func TestCompareWallClockOnlyWarns(t *testing.T) {
	base := snapWith(
		Metric{Name: "solo_tok_s", Value: 200, Unit: "tok/s"},
		Metric{Name: "async.exposed_ms", Value: 4.0, Unit: "ms"},
		Metric{Name: "prefetch_hit_rate", Value: 0.9, Unit: "frac"},
	)
	cur := snapWith(
		Metric{Name: "solo_tok_s", Value: 160, Unit: "tok/s"},    // -20% throughput
		Metric{Name: "async.exposed_ms", Value: 6.0, Unit: "ms"}, // +50% exposed stall
		Metric{Name: "prefetch_hit_rate", Value: 0.5, Unit: "frac"},
	)
	res, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("wall-clock metrics failed the gate: %+v", res)
	}
	if res.Warns != 3 {
		t.Fatalf("got %d warnings, want 3: %+v", res.Warns, res.Deltas)
	}
}

// TestCompareDirections locks the per-family direction heuristics: a gated
// higher-is-better metric fails on a drop and improves on a rise, and
// vice versa for lower-is-better families.
func TestCompareDirections(t *testing.T) {
	base := snapWith(
		Metric{Name: "saved_prefill_tokens", Value: 1000, Unit: "tokens"},
		Metric{Name: "kv_peak", Value: 1000, Unit: "slots"},
		Metric{Name: "balance", Value: 1.0},
		Metric{Name: "max_divergence_relnorm", Value: 1e-6, Unit: "frac"},
	)
	cur := snapWith(
		Metric{Name: "saved_prefill_tokens", Value: 1500, Unit: "tokens"}, // better
		Metric{Name: "kv_peak", Value: 1500, Unit: "slots"},               // worse
		Metric{Name: "balance", Value: 2.0},                               // worse
		Metric{Name: "max_divergence_relnorm", Value: 1e-7, Unit: "frac"}, // better
	)
	res, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"saved_prefill_tokens":   StatusImproved,
		"kv_peak":                StatusFail,
		"balance":                StatusFail,
		"max_divergence_relnorm": StatusImproved,
	}
	for _, d := range res.Deltas {
		if d.Status != want[d.Name] {
			t.Fatalf("metric %s: status %s, want %s", d.Name, d.Status, want[d.Name])
		}
	}
	if res.Fails != 2 {
		t.Fatalf("got %d fails, want 2", res.Fails)
	}
}

// TestCompareBoolZeroTolerance locks identity metrics: any flip fails even
// inside the relative threshold.
func TestCompareBoolZeroTolerance(t *testing.T) {
	base := snapWith(Metric{Name: "token_identical", Value: 1, Unit: "bool"})
	cur := snapWith(Metric{Name: "token_identical", Value: 0, Unit: "bool"})
	res, err := Compare(base, cur, 5.0) // absurdly loose threshold
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatalf("boolean flip passed the gate: %+v", res)
	}
}

// TestCompareMissingAndNew locks schema drift handling: a tracked metric
// that disappears fails (refresh the baseline to retire it); a new metric is
// informational.
func TestCompareMissingAndNew(t *testing.T) {
	base := snapWith(Metric{Name: "prefill_tokens", Value: 100, Unit: "tokens"})
	cur := snapWith(Metric{Name: "saved_prefill_tokens", Value: 50, Unit: "tokens"})
	res, err := Compare(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Fails != 1 {
		t.Fatalf("missing tracked metric did not fail: %+v", res)
	}
	statuses := map[string]string{}
	for _, d := range res.Deltas {
		statuses[d.Name] = d.Status
	}
	if statuses["prefill_tokens"] != StatusMissing || statuses["saved_prefill_tokens"] != StatusNew {
		t.Fatalf("statuses = %v", statuses)
	}
}

// TestCompareExperimentMismatch guards against diffing unrelated snapshots.
func TestCompareExperimentMismatch(t *testing.T) {
	a := snapWith()
	b := snapWith()
	b.Experiment = "radix"
	if _, err := Compare(a, b, 0); err == nil {
		t.Fatal("cross-experiment compare did not error")
	}
}

// TestCompareAgainstCommittedBaselines replays every committed repo-root
// baseline against itself through the file reader, so the CI lane's inputs
// stay parseable and self-consistent.
func TestCompareRoundTripThroughDisk(t *testing.T) {
	dir := t.TempDir()
	s := snapWith(
		Metric{Name: "affinity.model_ttft_p50", Value: 92.0, Unit: "ms"},
		Metric{Name: "decodebatch.identical", Value: 1, Unit: "bool"},
	)
	path, err := WriteSnapshot(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(got, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("disk round-trip is not clean: %+v", res)
	}
}

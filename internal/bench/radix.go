package bench

import (
	"fmt"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/model"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

// RunRadix compares the engine's radix prefix cache against the flat
// whole-prefix cache on nested-prefix serving loads: multi-turn chat,
// agentic re-entry and templated RAG, plus the shared-document QA load as a
// single-level control. The flat cache only reuses a prefill when a request's
// shared prefix matches a cached entry token-for-token, so every chat turn
// and agent step re-prefills its whole growing history; the radix cache
// forks from the longest resident page-aligned ancestor and prefills only
// the suffix. Both engines run the identical load with the identical seed,
// so the token streams must agree exactly — the radix tree changes what is
// prefilled, never what is generated.
func RunRadix(o Options) *Report {
	o = o.withDefaults()
	mcfg := model.DefaultConfig()
	m := model.New(mcfg)
	planes := int64(mcfg.NLayers * mcfg.NKVHeads)
	pageTokens := int64(kvcache.DefaultPageTokens)

	toReqs := func(load []workload.QARequest) []serve.Request {
		reqs := make([]serve.Request, len(load))
		for i, q := range load {
			reqs[i] = serve.Request{
				Prompt:          q.Prompt,
				SharedPrefixLen: q.SharedPrefixLen,
				MaxNewTokens:    q.MaxNewTokens,
			}
		}
		return reqs
	}

	chat := workload.DefaultConversationConfig()
	chat.Doc.Seed = o.Seed
	agentic := workload.DefaultAgenticConfig()
	agentic.Doc.Seed = o.Seed + 1
	rag := workload.DefaultRAGConfig()
	rag.Doc.Seed = o.Seed + 2
	qa := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        3,
		DocLen:       192,
		NRequests:    12,
		QuestionLen:  16,
		MaxNewTokens: 8,
	}
	qa.Doc.Seed = o.Seed + 3

	cases := []struct {
		name string
		reqs []serve.Request
	}{
		{"chat", toReqs(workload.ConversationLoad(chat))},
		{"agentic", toReqs(workload.AgenticLoad(agentic))},
		{"rag", toReqs(workload.RAGLoad(rag))},
		{"qa", toReqs(workload.NewLoad(qa))},
	}

	run := func(reqs []serve.Request, flat bool) ([]serve.Response, serve.Metrics) {
		e := serve.NewEngine(m, serve.Config{
			Workers:         2,
			MaxBatch:        4,
			Seed:            o.Seed,
			FlatPrefixCache: flat,
		})
		resps := e.Run(reqs)
		mx := e.Metrics()
		e.Close()
		return resps, mx
	}

	identical := func(a, b []serve.Response) bool {
		for i := range a {
			if len(a[i].Tokens) != len(b[i].Tokens) {
				return false
			}
			for j := range a[i].Tokens {
				if a[i].Tokens[j] != b[i].Tokens[j] {
					return false
				}
			}
		}
		return true
	}

	rep := &Report{
		ID:    "radix",
		Title: "radix prefix cache vs flat whole-prefix cache, nested-prefix loads",
		Headers: []string{"load", "reqs", "cache", "hits", "partial",
			"reused toks", "prefill toks", "toks saved", "pages saved", "identical"},
	}

	for _, c := range cases {
		rResps, rm := run(c.reqs, false)
		fResps, fm := run(c.reqs, true)
		same := identical(rResps, fResps)
		savedToks := fm.PrefillTokens - rm.PrefillTokens
		// Partial reuse is page-aligned, so the saved prefill divides into
		// whole pages; planes = layers x kv heads (one arena page per plane).
		savedPages := savedToks / pageTokens * planes

		row := func(kind string, mx serve.Metrics, extra ...string) []string {
			cells := []string{
				c.name, fmt.Sprintf("%d", len(c.reqs)), kind,
				fmt.Sprintf("%d", mx.PrefixHits),
				fmt.Sprintf("%d", mx.PrefixPartialHits),
				fmt.Sprintf("%d", mx.PrefixReusedTokens),
				fmt.Sprintf("%d", mx.PrefillTokens),
			}
			return append(cells, extra...)
		}
		rep.Rows = append(rep.Rows,
			row("flat", fm, "-", "-", "-"),
			row("radix", rm,
				fmt.Sprintf("%d", savedToks),
				fmt.Sprintf("%d", savedPages),
				fmt.Sprintf("%v", same)))

		rep.AddMetric(c.name+".flat.prefill_tokens", float64(fm.PrefillTokens), "tokens")
		rep.AddMetric(c.name+".radix.prefill_tokens", float64(rm.PrefillTokens), "tokens")
		rep.AddMetric(c.name+".radix.partial_hits", float64(rm.PrefixPartialHits), "count")
		rep.AddMetric(c.name+".radix.reused_tokens", float64(rm.PrefixReusedTokens), "tokens")
		rep.AddMetric(c.name+".saved_prefill_tokens", float64(savedToks), "tokens")
		rep.AddMetric(c.name+".saved_prefill_pages", float64(savedPages), "pages")
		if same {
			rep.AddMetric(c.name+".token_identical", 1, "bool")
		} else {
			rep.AddMetric(c.name+".token_identical", 0, "bool")
		}
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("chat: %d sessions x %d turns; agentic: %d agents x %d steps; rag: %d requests, %d chunks each; qa: %d requests over %d docs (single-level control)",
			chat.Sessions, chat.Turns, agentic.Agents, agentic.Steps,
			rag.NRequests, rag.ChunksPerRequest, qa.NRequests, qa.NDocs),
		fmt.Sprintf("page = %d tokens; pages saved counts all %d (layer, kv head) planes; partial reuse forks page-aligned, so the division is exact",
			pageTokens, planes),
		"identical = radix and flat runs emit token-for-token equal streams (the cache changes prefill work, never sampling)",
	)
	return rep
}

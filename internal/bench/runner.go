// Package bench implements the experiment harness: one runner per table and
// figure of the paper's evaluation section (§V), each producing a formatted
// Report with the same rows/series the paper plots. The cmd/clusterkv-bench
// binary and the repository-root benchmarks drive these runners.
package bench

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/cluster"
	"clusterkv/internal/core"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/metrics"
	"clusterkv/internal/tensor"
	"clusterkv/internal/workload"
)

// MethodSpec names a compression method and builds fresh selector instances.
type MethodSpec struct {
	Name string
	New  func() attention.Selector
}

// TraceMethods returns the paper's §V method set configured for the trace
// harness (every trace head models a selection-enabled layer, so layer
// bypass is disabled; the first-two-layers-full rule is applied in the
// model-based experiments instead).
func TraceMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "Quest", New: func() attention.Selector {
			cfg := baselines.NewQuestConfig()
			cfg.BypassLayers = 0
			return baselines.NewQuest(cfg)
		}},
		{Name: "InfiniGen", New: func() attention.Selector {
			cfg := baselines.NewInfiniGenConfig()
			cfg.BypassLayers = 0
			return baselines.NewInfiniGen(cfg)
		}},
		{Name: "ClusterKV", New: func() attention.Selector {
			cfg := core.NewConfig()
			cfg.BypassLayers = 0
			return core.New(cfg)
		}},
		{Name: "FullKV", New: func() attention.Selector { return baselines.NewFullKV() }},
	}
}

// RunResult aggregates one (trace, method, budget) run.
type RunResult struct {
	// Recalls holds the per-(step, head) recall of important tokens.
	Recalls []float64
	// Fidelity holds the per-(step, head) attention-distribution overlap
	// Σ_p min(w_full(p), w_method(p)) ∈ [0, 1]; 1 for full attention.
	Fidelity []float64
	// NeedleFidelity is the overlap restricted to the step's relevant
	// (needle) positions, normalised by the full-attention needle mass.
	NeedleFidelity []float64
	// Stats are the selector's accumulated counters.
	Stats attention.SelStats
}

// MeanRecall returns the average recall across steps and heads.
func (r *RunResult) MeanRecall() float64 { return metrics.Mean(r.Recalls) }

// MeanFidelity returns the average attention fidelity.
func (r *RunResult) MeanFidelity() float64 { return metrics.Mean(r.Fidelity) }

// MeanNeedleFidelity returns the average needle-restricted fidelity.
func (r *RunResult) MeanNeedleFidelity() float64 { return metrics.Mean(r.NeedleFidelity) }

// RunTrace replays a trace against one selector at the given budget,
// measuring recall and attention fidelity at every decode step.
func RunTrace(tr *workload.Trace, sel attention.Selector, budget int) *RunResult {
	cfg := tr.Cfg
	stores := make([]*kvcache.Store, cfg.Heads)
	for h := range stores {
		stores[h] = kvcache.NewStore(cfg.D)
		stores[h].AppendBatch(tr.Keys[h].Data, tr.Vals[h].Data)
	}
	sel.Reset(1, cfg.Heads, cfg.D)
	for h, s := range stores {
		sel.OnPrefill(0, h, s)
	}

	res := &RunResult{}
	var scores, wFull, wSel []float32
	for _, step := range tr.Steps {
		for h, s := range stores {
			s.Append(step.AppendK[h], step.AppendV[h])
			sel.OnAppend(0, h, s)
		}
		for h, s := range stores {
			n := s.Len()
			if cap(scores) < n {
				scores = make([]float32, n)
				wFull = make([]float32, n)
			}
			scores = scores[:n]
			wFull = wFull[:n]
			q := step.Queries[h]
			attention.Weights(scores, q, s)
			copy(wFull, scores)
			tensor.Softmax(wFull)
			truth := tensor.TopK(scores, budget)

			idx := sel.Select(0, h, q, s, budget)
			if idx == nil {
				res.Recalls = append(res.Recalls, 1)
				res.Fidelity = append(res.Fidelity, 1)
				res.NeedleFidelity = append(res.NeedleFidelity, 1)
				continue
			}
			res.Recalls = append(res.Recalls, metrics.Recall(idx, truth))

			if cap(wSel) < len(idx) {
				wSel = make([]float32, len(idx))
			}
			wSel = wSel[:len(idx)]
			for j, p := range idx {
				wSel[j] = scores[p]
			}
			tensor.Softmax(wSel)

			var overlap, needleFull, needleSel float64
			inRel := make(map[int]float64, len(step.Relevant))
			for _, p := range step.Relevant {
				inRel[p] = float64(wFull[p])
				needleFull += float64(wFull[p])
			}
			for j, p := range idx {
				o := float64(wSel[j])
				if f := float64(wFull[p]); f < o {
					o = f
				}
				overlap += o
				if f, ok := inRel[p]; ok {
					m := float64(wSel[j])
					if f < m {
						m = f
					}
					needleSel += m
				}
			}
			res.Fidelity = append(res.Fidelity, overlap)
			if needleFull > 0 {
				res.NeedleFidelity = append(res.NeedleFidelity, metrics.Clamp(needleSel/needleFull, 0, 1))
			} else {
				res.NeedleFidelity = append(res.NeedleFidelity, overlap)
			}
		}
		sel.EndStep()
	}
	res.Stats = sel.Stats()
	return res
}

// NewClusterKVForTrace builds a ClusterKV selector for trace harness runs
// with the given overrides (used by the Fig. 11b ablations).
func NewClusterKVForTrace(metric cluster.Metric, c0 int) *core.ClusterKV {
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	cfg.Metric = metric
	cfg.C0Override = c0
	return core.New(cfg)
}

package bench

import (
	"fmt"
	"sort"

	"clusterkv/internal/cluster"
	"clusterkv/internal/model"
	"clusterkv/internal/tensor"
	"clusterkv/internal/workload"
)

// probeRun prefillsa document and decodes greedily for `steps` tokens while
// recording full attention weights of (layer, head) at every step.
type probeRun struct {
	weightsPerStep [][]float32 // copy of probe weights per decode step
	keys           *tensor.Mat // the probed head's prefill keys
}

func runProbe(opt Options, layer, head, steps int) *probeRun {
	cfg := model.DefaultConfig()
	m := model.New(cfg)
	doc := workload.Doc(workload.DefaultDocConfig(), opt.ModelCtx)
	seq := m.NewSequence(nil, 0)
	last := seq.Prefill(doc, nil)
	_ = last

	pr := &probeRun{}
	seq.Probe = func(l, h int, w []float32) {
		if l == layer && h == head {
			cp := make([]float32, len(w))
			copy(cp, w)
			pr.weightsPerStep = append(pr.weightsPerStep, cp)
		}
	}
	tok := doc[len(doc)-1]
	logits := make([]float32, cfg.VocabSize)
	for s := 0; s < steps; s++ {
		seq.DecodeInto(tok, logits)
		tok = tensor.ArgMax(logits)
	}
	st := seq.Store(layer, head/m.Config().GroupSize())
	pr.keys = tensor.WrapMat(st.Len(), st.HeadDim(), st.Keys())
	return pr
}

// RunFig3a reproduces Fig. 3a: variation in token-importance ranking across
// 64 decoding steps. Three probe tokens at the paper's relative positions
// (1/4, 2/5 and 7/8 of the context) are tracked by their attention-weight
// rank at a selection-enabled layer.
func RunFig3a(opt Options) *Report {
	opt = opt.withDefaults()
	steps := 64
	pr := runProbe(opt, 2, 0, steps)
	l := opt.ModelCtx
	probes := []int{l / 4, 2 * l / 5, 7 * l / 8}

	rep := &Report{
		ID:    "fig3a",
		Title: fmt.Sprintf("Token-importance ranking drift over %d decode steps, L=%d (paper Fig. 3a)", steps, l),
		Headers: []string{"Step",
			fmt.Sprintf("rank(tok %d)", probes[0]),
			fmt.Sprintf("rank(tok %d)", probes[1]),
			fmt.Sprintf("rank(tok %d)", probes[2])},
	}
	ranks := make([][]int, len(probes))
	for s, w := range pr.weightsPerStep {
		order := tensor.ArgsortDesc(w)
		rank := make(map[int]int, len(order))
		for r, p := range order {
			rank[p] = r
		}
		for i, p := range probes {
			ranks[i] = append(ranks[i], rank[p])
		}
		if s%8 == 0 || s == steps-1 {
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(s),
				fmt.Sprint(rank[probes[0]]),
				fmt.Sprint(rank[probes[1]]),
				fmt.Sprint(rank[probes[2]]),
			})
		}
	}
	for i, p := range probes {
		lo, hi := ranks[i][0], ranks[i][0]
		for _, r := range ranks[i] {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("token %d rank range [%d, %d] — importance fluctuates across steps", p, lo, hi))
	}
	rep.Notes = append(rep.Notes,
		"paper: tokens move between important and unimportant during decoding,",
		"so non-recallable eviction inevitably loses tokens that matter later.")
	return rep
}

// RunFig3b reproduces Fig. 3b: internal fragmentation of important tokens at
// page granularity (16-token pages) versus semantic-cluster granularity.
func RunFig3b(opt Options) *Report {
	opt = opt.withDefaults()
	pr := runProbe(opt, 2, 0, 1)
	w := pr.weightsPerStep[0]
	topN := 64
	important := tensor.TopK(w, topN)

	const pageSize = 16
	pages := map[int]int{}
	for _, p := range important {
		pages[p/pageSize]++
	}
	hist := map[int]int{} // important-per-page -> page count
	for _, c := range pages {
		hist[c]++
	}

	rep := &Report{
		ID:      "fig3b",
		Title:   fmt.Sprintf("Fragmentation of top-%d important tokens (page size %d) (paper Fig. 3b)", topN, pageSize),
		Headers: []string{"ImportantPerPage", "Pages"},
	}
	var counts []int
	for c := range hist {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	for _, c := range counts {
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(c), fmt.Sprint(hist[c])})
	}

	pagesTouched := len(pages)
	pageTokens := pagesTouched * pageSize
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("pages touched: %d -> page-granular recall needs %d tokens of budget for %d important tokens (%.1fx waste)",
			pagesTouched, pageTokens, topN, float64(pageTokens)/float64(topN)),
	)

	// Coverage comparison at a fixed 256-token budget: how many of the
	// top-64 important tokens does each granularity capture when both pick
	// their best units (oracle scoring) under the same budget?
	const coverBudget = 256
	n := pr.keys.Rows
	sink := 16
	c0 := (n - sink) / 80
	if c0 < 4 {
		c0 = 4
	}
	impSet := make(map[int]bool, len(important))
	for _, p := range important {
		impSet[p] = true
	}

	// Page granularity: take pages by descending important-token count.
	pageCounts := make([]float32, (n+pageSize-1)/pageSize)
	for _, p := range important {
		pageCounts[p/pageSize]++
	}
	pagesAllowed := coverBudget / pageSize
	covered := 0
	for _, pg := range tensor.TopK(pageCounts, pagesAllowed) {
		covered += int(pageCounts[pg])
	}

	// Cluster granularity: take clusters by descending important density,
	// trimming the last to the budget (the §IV-C policy).
	res := cluster.KMeans(pr.keys.Data[sink*pr.keys.Cols:], pr.keys.Cols, c0, cluster.Config{Seed: 7})
	density := make([]float32, res.NumClusters())
	for j := 0; j < res.NumClusters(); j++ {
		cnt := 0
		for _, p := range res.Members(j) {
			if impSet[p+sink] {
				cnt++
			}
		}
		density[j] = float32(cnt) / float32(res.Sizes[j]+1)
	}
	budget := coverBudget
	clusterCovered := 0
	for _, j := range tensor.ArgsortDesc(density) {
		if budget <= 0 {
			break
		}
		take := res.Sizes[j]
		if take > budget {
			take = budget
		}
		cnt := 0
		for _, p := range res.Members(j)[:take] {
			if impSet[p+sink] {
				cnt++
			}
		}
		clusterCovered += cnt
		budget -= take
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("within a %d-token budget, page granularity covers %d/%d important tokens, semantic-cluster granularity covers %d/%d",
			coverBudget, covered, topN, clusterCovered, topN),
		"paper: each 16-token page holds only 1-2 important tokens, so page-granular",
		"recall wastes budget on unimportant page fill.",
	)
	return rep
}

package bench

import (
	"fmt"

	"clusterkv/internal/memsim"
)

// RunCache reproduces the §V-C caching-effectiveness study: cluster-cache hit
// rates for retention horizons R = 1 and R = 2 on a 32k NarrativeQA-like
// sample, and the decoding-throughput improvement of the cached KV pipeline
// over direct synchronous loading from CPU memory.
func RunCache(opt Options) *Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.Llama31_8B()
	budget := 1024
	ctx := opt.MaxCtx

	rep := &Report{
		ID:      "cache",
		Title:   "Cluster-granularity cache effectiveness (paper §V-C)",
		Headers: []string{"R", "HitRate", "KV pipeline (ms/step)", "Throughput gain"},
	}

	// pipeTime models the per-step KV pipeline under *synchronous* loading —
	// the comparison the paper makes ("compared to directly loading from CPU
	// memory"): attention read over the budget + PCIe transfer of misses.
	pipeTime := func(missRate float64) float64 {
		attn := float64(budget) * shape.KVBytesPerToken() / hw.AttnGatherBandwidth
		xfer := missRate * float64(budget) * shape.KVBytesPerToken() / hw.PCIeBandwidth
		return attn + xfer
	}

	base := pipeTime(1) // no cache: every selected token loads from host
	for _, r := range []int{0, 1, 2, 4} {
		cfg := traceCoreConfig()
		cfg.CacheR = r
		cts := MeasureClusterKV(ctx, 128, budget, cfg, opt.Seed^0xcace)
		miss := cts.MissRate
		if r == 0 {
			miss = 1
		}
		t := pipeTime(miss)
		label := fmt.Sprint(r)
		if r == 0 {
			label = "0 (no cache)"
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			fmt.Sprintf("%.0f%%", cts.Stats.HitRate()*100),
			f2(t * 1000),
			fmt.Sprintf("%.1fx", base/t),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: average hit rates 63% (R=1) and 74% (R=2); decoding throughput",
		"improves 2.3x and 3x vs direct CPU loads.",
		fmt.Sprintf("measured on a %d-token NarrativeQA-like sample, 128 decode steps.", ctx),
	)
	return rep
}

package bench

import (
	"fmt"

	"clusterkv/internal/metrics"
	"clusterkv/internal/workload"
)

// Options scales experiments. Zero values take DefaultOptions.
type Options struct {
	// MaxCtx caps task/trace context lengths (quick default 8192; the
	// paper-scale run uses 32768).
	MaxCtx int
	// ModelCtx caps transformer-engine context lengths (quick default 4096).
	ModelCtx int
	// Seed is the experiment master seed.
	Seed uint64
}

// DefaultOptions returns the quick-run scaling.
func DefaultOptions() Options {
	return Options{MaxCtx: 8192, ModelCtx: 4096, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxCtx <= 0 {
		o.MaxCtx = d.MaxCtx
	}
	if o.ModelCtx <= 0 {
		o.ModelCtx = d.ModelCtx
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Budgets are the paper's Fig. 9 / Table I KV cache budgets.
var Budgets = []int{256, 512, 1024, 2048}

// scoreWeightNeedle blends needle-restricted and whole-distribution attention
// fidelity into the task score multiplier. QA answers hinge on the needle
// mass; coherence of the rest of the answer tracks overall fidelity.
const scoreWeightNeedle = 0.6

// taskScore converts a run into a LongBench-style score.
func taskScore(spec workload.TaskSpec, r *RunResult) float64 {
	fid := scoreWeightNeedle*r.MeanNeedleFidelity() + (1-scoreWeightNeedle)*r.MeanFidelity()
	return spec.BaseScore * fid
}

// Fig9Result holds the full score grid: [task][method][budget].
type Fig9Result struct {
	Tasks   []workload.TaskSpec
	Methods []string
	// Scores[t][m][b]; FullKV occupies one method column with the same
	// value across budgets.
	Scores [][][]float64
}

// RunFig9 reproduces Fig. 9: LongBench-style scores for eight tasks, four
// budgets and the method set {Quest, InfiniGen, ClusterKV, FullKV}.
func RunFig9(opt Options) (*Fig9Result, *Report) {
	opt = opt.withDefaults()
	tasks := workload.LongBenchTasks(opt.MaxCtx)
	res := &Fig9Result{Tasks: tasks}

	rep := &Report{
		ID:    "fig9",
		Title: "LongBench-style scores vs KV cache budget (paper Fig. 9)",
		Headers: []string{
			"Dataset", "Method", "B=256", "B=512", "B=1024", "B=2048",
		},
	}

	for ti, spec := range tasks {
		task := workload.BuildTask(spec, opt.Seed+uint64(ti)*7919)
		memo := NewMemo()
		methods := memo.TraceMethods(task.Trace)
		if ti == 0 {
			for _, ms := range methods {
				res.Methods = append(res.Methods, ms.Name)
			}
		}
		taskScores := make([][]float64, len(methods))
		for mi, ms := range methods {
			row := []string{spec.Name, ms.Name}
			taskScores[mi] = make([]float64, len(Budgets))
			for bi, b := range Budgets {
				run := RunTrace(task.Trace, ms.New(), b)
				s := taskScore(spec, run)
				taskScores[mi][bi] = s
				row = append(row, f2(s))
			}
			rep.Rows = append(rep.Rows, row)
		}
		res.Scores = append(res.Scores, taskScores)
	}
	rep.Notes = append(rep.Notes,
		"score = dataset base score (calibrated to the paper's Full-KV level) x measured attention-retrieval fidelity;",
		"method ordering and budget trends are measured, base levels are calibrated (DESIGN.md S1).",
	)
	return res, rep
}

// RunTab1 reproduces Table I: average scores over the eight datasets.
func RunTab1(opt Options) (*Report, *Fig9Result) {
	res, _ := RunFig9(opt)
	rep := &Report{
		ID:      "tab1",
		Title:   "Average scores on eight LongBench-style datasets (paper Table I)",
		Headers: []string{"Method", "B=256", "B=512", "B=1024", "B=2048"},
	}
	for mi, name := range res.Methods {
		row := []string{name}
		for bi := range Budgets {
			var xs []float64
			for ti := range res.Tasks {
				xs = append(xs, res.Scores[ti][mi][bi])
			}
			row = append(row, f2(metrics.Mean(xs)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper Table I: Quest 35.63/40.83/43.23/45.59, InfiniGen 43.69/45.04/45.13/45.14,",
		"ClusterKV 46.69/48.02/48.34/48.70, Full KV 49.01.",
		fmt.Sprintf("context lengths capped at %d tokens for this run.", opt.MaxCtx),
	)
	return rep, res
}

package bench

// Runner regenerates one experiment and returns its reports.
type Runner func(Options) []*Report

// Registry maps experiment ids (DESIGN.md §3) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3a": func(o Options) []*Report { return []*Report{RunFig3a(o)} },
		"fig3b": func(o Options) []*Report { return []*Report{RunFig3b(o)} },
		"fig9": func(o Options) []*Report {
			_, rep := RunFig9(o)
			return []*Report{rep}
		},
		"tab1": func(o Options) []*Report {
			rep, _ := RunTab1(o)
			return []*Report{rep}
		},
		"fig10":  func(o Options) []*Report { return []*Report{RunFig10(o)} },
		"fig11a": func(o Options) []*Report { return []*Report{RunFig11a(o)} },
		"fig11b": func(o Options) []*Report { return []*Report{RunFig11b(o)} },
		"fig12":  func(o Options) []*Report { return RunFig12(o) },
		"fig13a": func(o Options) []*Report { return []*Report{RunFig13a(o)} },
		"fig13b": func(o Options) []*Report { return []*Report{RunFig13b(o)} },
		"cache":  func(o Options) []*Report { return []*Report{RunCache(o)} },
		"overlap": func(o Options) []*Report {
			return []*Report{RunOverlap(o), RunXferOverlap(o)}
		},
		"ablations": func(o Options) []*Report { return RunAblations(o) },
		"parprefill": func(o Options) []*Report {
			return []*Report{RunParPrefill(o)}
		},
		"pagedkv": func(o Options) []*Report {
			return []*Report{RunPagedKV(o)}
		},
		"fleet": func(o Options) []*Report {
			return []*Report{RunFleet(o)}
		},
		"radix": func(o Options) []*Report {
			return []*Report{RunRadix(o)}
		},
		"kernels": func(o Options) []*Report {
			return []*Report{RunKernels(o)}
		},
		"decodebatch": func(o Options) []*Report {
			return []*Report{RunDecodeBatch(o)}
		},
	}
}

// RegistryOrder lists experiment ids in paper order.
func RegistryOrder() []string {
	return []string{
		"fig3a", "fig3b", "fig9", "tab1", "fig10",
		"fig11a", "fig11b", "fig12", "fig13a", "fig13b",
		"cache", "overlap", "ablations", "parprefill", "pagedkv", "fleet",
		"radix", "kernels", "decodebatch",
	}
}

package bench

import (
	"fmt"
	"sync"

	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/cluster"
	"clusterkv/internal/core"
	"clusterkv/internal/tensor"
	"clusterkv/internal/workload"
)

// Memo caches the budget-independent, expensive prefill artifacts —
// K-means clusterings and InfiniGen SVD projections — so that sweeping
// budgets over the same context does not redo them. One Memo instance is
// scoped to one context (trace or prompt); experiments create a fresh Memo
// per sample.
type Memo struct {
	mu    sync.Mutex
	kms   map[string]*cluster.Result
	projs map[string]*tensor.Mat
}

// NewMemo returns an empty cache.
func NewMemo() *Memo {
	return &Memo{kms: map[string]*cluster.Result{}, projs: map[string]*tensor.Mat{}}
}

// ClusterKV builds a ClusterKV selector whose prefill clustering is memoised
// in m. cfg.BypassLayers etc. are honored; the cache key includes the metric
// and cluster count so ablation configs do not collide.
func (m *Memo) ClusterKV(cfg core.Config) *core.ClusterKV {
	cfg.PrefillClusterer = func(layer, head int, keys []float32, d, c int) *cluster.Result {
		key := fmt.Sprintf("km/%d/%d/%d/%d/%v/%d", layer, head, len(keys), c, cfg.Metric, cfg.Seed)
		m.mu.Lock()
		res, ok := m.kms[key]
		m.mu.Unlock()
		if ok {
			return res
		}
		res = cluster.KMeans(keys, d, c, cluster.Config{
			Metric:   cfg.Metric,
			MaxIters: cfg.KMeansIters,
			Seed:     cfg.Seed ^ uint64(layer*1315423911+head*2654435761),
		})
		m.mu.Lock()
		m.kms[key] = res
		m.mu.Unlock()
		return res
	}
	return core.New(cfg)
}

// InfiniGen builds an InfiniGen selector whose partial-weight SVD is
// computed *offline* on a calibration sibling of the evaluation context —
// faithful to the original design, which generates partial query/key weights
// offline and applies them to unseen inputs (paper §II-C). calib supplies
// the calibration keys per head; the decomposition is memoised.
func (m *Memo) InfiniGen(cfg baselines.InfiniGenConfig, calib *workload.Trace) *baselines.InfiniGen {
	cfg.Projector = func(layer, head int, keys *tensor.Mat, r int) *tensor.Mat {
		key := fmt.Sprintf("svd/%d/%d/%d", layer, head, r)
		m.mu.Lock()
		v, ok := m.projs[key]
		m.mu.Unlock()
		if ok {
			return v
		}
		src := keys
		if calib != nil && head < len(calib.Keys) {
			src = calib.Keys[head]
		}
		v, _ = tensor.TruncatedSVD(src, r, cfg.SVDIters, cfg.Seed^uint64(layer*131+head))
		m.mu.Lock()
		m.projs[key] = v
		m.mu.Unlock()
		return v
	}
	return baselines.NewInfiniGen(cfg)
}

// CalibrationTrace builds the offline-calibration sibling of an evaluation
// trace: same head-level structure (the "model"), different document plan.
// Its length is capped to bound calibration cost.
func CalibrationTrace(cfg workload.TraceConfig) *workload.Trace {
	if cfg.PlanSeed == 0 {
		cfg.PlanSeed = cfg.Seed
	}
	cfg.PlanSeed ^= 0xca11b
	if cfg.L > 4096 {
		cfg.L = 4096
	}
	return workload.NewTrace(cfg)
}

// TraceMethods mirrors the package-level TraceMethods but routes the
// expensive prefill artifacts through the Memo and calibrates InfiniGen
// offline against a sibling of tr.
func (m *Memo) TraceMethods(tr *workload.Trace) []MethodSpec {
	calib := CalibrationTrace(tr.Cfg)
	return []MethodSpec{
		{Name: "Quest", New: func() attention.Selector {
			cfg := baselines.NewQuestConfig()
			cfg.BypassLayers = 0
			return baselines.NewQuest(cfg)
		}},
		{Name: "InfiniGen", New: func() attention.Selector {
			cfg := baselines.NewInfiniGenConfig()
			cfg.BypassLayers = 0
			return m.InfiniGen(cfg, calib)
		}},
		{Name: "ClusterKV", New: func() attention.Selector {
			cfg := core.NewConfig()
			cfg.BypassLayers = 0
			return m.ClusterKV(cfg)
		}},
		{Name: "FullKV", New: func() attention.Selector { return baselines.NewFullKV() }},
	}
}

package bench

import (
	"fmt"

	"clusterkv/internal/attention"
	"clusterkv/internal/core"
	"clusterkv/internal/memsim"
	"clusterkv/internal/model"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

// RunOverlap reproduces the Fig. 6 / §V-C prefill-overhead analysis: the
// asynchronous clustering pipeline exposure, the clustering share of prefill
// (paper: 6–8%) and of total inference time (paper: <2%).
func RunOverlap(opt Options) *Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.Llama31_8B()

	rep := &Report{
		ID:      "overlap",
		Title:   "Asynchronous clustering overhead during prefill (paper Fig. 6, §V-C)",
		Headers: []string{"P", "Prefill(s)", "ClusterBusy(s)", "Exposed(s)", "Cluster/Prefill", "Cluster/Total(D=1024)"},
	}
	for _, p := range Fig12Prompts {
		cts := MeasureClusterKV(min(p, opt.MaxCtx), 32, 1024, traceCoreConfig(), opt.Seed^uint64(p))
		exposed, busy, prefill := clusterPrefillExposure(hw, shape, p, cts.KMeansIters, 2)
		step := hw.DecodeStepClusterKV(shape, memsim.ClusterKVCounts{
			Budget: 1024, Clusters: cts.AvgClusters, MissRate: cts.MissRate,
		})
		total := prefill + exposed + 1024*step.Total
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dk", p/1024),
			f2(prefill), f2(busy), f3(exposed),
			fmt.Sprintf("%.1f%%", busy/prefill*100),
			fmt.Sprintf("%.2f%%", busy/total*100),
		})
	}
	rep.Notes = append(rep.Notes,
		"clustering is launched right after QKV+RoPE of each layer and overlaps",
		"with attention/FFN (Fig. 6); paper: 6-8% of prefill, <2% of total.",
	)
	return rep
}

// RunXferOverlap measures the async tiered-KV transfer runtime on the
// longdoc QA serving load: the same engine, load and seed run with the
// transfer channel forced synchronous (every fetch charges its full modeled
// PCIe time to the critical path) versus asynchronous (layer-ahead cluster
// prefetch overlapped with compute). The modeled tokens/sec folds the
// exposed transfer time into the measured compute time — sub-millisecond
// sleep quantization makes literally sleeping the waits (ThrottleTransfers)
// noisier than adding them — and the hidden fraction is the share of
// channel-busy time that never reached the critical path.
//
// The engine runs two-tier admission with a device budget deliberately
// smaller than one request's prefill footprint: before the host tier, this
// load was refused outright (ErrTooLarge); here it is served completely with
// cold pages spilled host-ward between rounds.
func RunXferOverlap(o Options) *Report {
	o = o.withDefaults()
	// A wider model than the evaluation default: per-layer decode compute
	// must be non-trivial for transfer/compute overlap to be measurable in
	// wall clock (the window the prefetch hides behind is real compute).
	mc := model.DefaultConfig()
	mc.DModel = 128
	mc.NHeads = 4
	mc.NKVHeads = 4
	mc.HeadDim = 32
	mc.FFNDim = 256
	m := model.New(mc)

	docLen := 512
	if o.ModelCtx < 1024 {
		docLen = 256
	}
	const (
		qLen    = 32
		maxNew  = 32
		nReqs   = 8
		budget  = 64
		hostBud = 16384
	)
	// Device budget: below one request's admission need (docLen + budget in
	// legacy terms, so the load was unservable pre-host-tier) but at or above
	// the active batch's hot floor — MaxBatch × (budget + tail) pages, the
	// working sets spilling can never evict — so round-barrier device
	// residency lands exactly on the budget.
	devBudget := int64(docLen)
	lc := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        2,
		DocLen:       docLen,
		NRequests:    nReqs,
		QuestionLen:  qLen,
		MaxNewTokens: maxNew,
	}
	lc.Doc.Seed = o.Seed
	load := workload.NewLoad(lc)
	reqs := make([]serve.Request, len(load))
	for i, q := range load {
		reqs[i] = serve.Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          budget,
			NewSelector: func() attention.Selector {
				cfg := core.NewConfig()
				// Retain selected clusters two steps: steadier working set,
				// less page churn on the modeled channel.
				cfg.CacheR = 2
				return core.New(cfg)
			},
		}
	}

	rep := &Report{
		ID:    "overlap",
		Title: "async transfer runtime: sync vs overlapped fetches, longdoc QA serve load",
		Headers: []string{"mode", "served", "tok/s", "busy(ms)", "exposed(ms)",
			"hidden(ms)", "hidden%", "prefetch hit%", "dev peak", "host peak"},
	}

	// Modeled channel: 2µs per (layer, head) KV page — roughly 3× the fp16
	// PCIe-4.0 cost of this page shape (16KB fp32-equivalent), i.e. a
	// deliberately narrow link so transfer time is a first-order cost the
	// way PCIe is for a real offloading serve, while still leaving per-layer
	// compute windows big enough that overlap is physically possible.
	const secPerPage = 2e-6
	for _, sync := range []bool{true, false} {
		eng := serve.NewEngine(m, serve.Config{
			Workers: 2, MaxBatch: 2, Seed: o.Seed,
			KVBudget: devBudget, HostBudget: hostBud,
			SyncTransfers:  sync,
			XferSecPerPage: secPerPage,
		})
		served := 0
		for _, r := range eng.Run(reqs) {
			if r.Err == nil {
				served++
			}
		}
		// Close before the snapshot: it drains the background worker, so
		// fire-and-forget spill transfers still queued in async mode are in
		// the overlap telemetry (the sync row services everything inline).
		eng.Close()
		mx := eng.Metrics()
		mode := "async overlapped"
		if sync {
			mode = "sync blocking"
		}
		tr := mx.Transfer
		// Modeled throughput: generated tokens over compute time plus the
		// transfer time that compute could not hide.
		tokS := 0.0
		if denom := mx.Elapsed.Seconds() + tr.ExposedSec; denom > 0 {
			tokS = float64(mx.TokensGenerated) / denom
		}
		rep.Rows = append(rep.Rows, []string{
			mode,
			fmt.Sprintf("%d/%d", served, nReqs),
			f1(tokS),
			f1(tr.BusySec * 1e3),
			f1(tr.ExposedSec * 1e3),
			f1(tr.HiddenSec() * 1e3),
			fmt.Sprintf("%.0f%%", tr.HiddenFrac()*100),
			fmt.Sprintf("%.0f%%", tr.PrefetchHitRate()*100),
			fmt.Sprintf("%d/%d", mx.KVDevicePeak, mx.KVCapacity),
			fmt.Sprintf("%d/%d", mx.KVHostPeak, mx.KVHostCapacity),
		})
		key := "async"
		if sync {
			key = "sync"
		}
		rep.AddMetric(key+".tok_per_sec", tokS, "tok/s")
		rep.AddMetric(key+".busy_ms", tr.BusySec*1e3, "ms")
		rep.AddMetric(key+".exposed_ms", tr.ExposedSec*1e3, "ms")
		rep.AddMetric(key+".hidden_frac", tr.HiddenFrac(), "frac")
		rep.AddMetric(key+".prefetch_hit_rate", tr.PrefetchHitRate(), "frac")
		rep.AddMetric(key+".kv_device_peak", float64(mx.KVDevicePeak), "slots")
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("load: %d requests, %d docs x %d tokens, %d-token questions, %d new tokens, budget %d",
			nReqs, lc.NDocs, docLen, qLen, maxNew, budget),
		fmt.Sprintf("modeled channel: %.0fus per (layer,head) KV page; tok/s = tokens / (compute + exposed transfer time)", secPerPage*1e6),
		fmt.Sprintf("two-tier admission: device budget %d slots/head < one prefill footprint -> refused outright before the host tier; served with cold-page spilling now", devBudget),
		"async mode issues layer-ahead cluster prefetch mid-Select of layer l and drains it lazily at layer l+1's Select; hidden% is transfer time that overlapped with compute",
		"token streams are identical in both modes (locked by serve's determinism suite)")
	return rep
}

package bench

import (
	"fmt"

	"clusterkv/internal/memsim"
)

// RunOverlap reproduces the Fig. 6 / §V-C prefill-overhead analysis: the
// asynchronous clustering pipeline exposure, the clustering share of prefill
// (paper: 6–8%) and of total inference time (paper: <2%).
func RunOverlap(opt Options) *Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.Llama31_8B()

	rep := &Report{
		ID:      "overlap",
		Title:   "Asynchronous clustering overhead during prefill (paper Fig. 6, §V-C)",
		Headers: []string{"P", "Prefill(s)", "ClusterBusy(s)", "Exposed(s)", "Cluster/Prefill", "Cluster/Total(D=1024)"},
	}
	for _, p := range Fig12Prompts {
		cts := MeasureClusterKV(min(p, opt.MaxCtx), 32, 1024, traceCoreConfig(), opt.Seed^uint64(p))
		exposed, busy, prefill := clusterPrefillExposure(hw, shape, p, cts.KMeansIters, 2)
		step := hw.DecodeStepClusterKV(shape, memsim.ClusterKVCounts{
			Budget: 1024, Clusters: cts.AvgClusters, MissRate: cts.MissRate,
		})
		total := prefill + exposed + 1024*step.Total
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dk", p/1024),
			f2(prefill), f2(busy), f3(exposed),
			fmt.Sprintf("%.1f%%", busy/prefill*100),
			fmt.Sprintf("%.2f%%", busy/total*100),
		})
	}
	rep.Notes = append(rep.Notes,
		"clustering is launched right after QKV+RoPE of each layer and overlaps",
		"with attention/FFN (Fig. 6); paper: 6-8% of prefill, <2% of total.",
	)
	return rep
}

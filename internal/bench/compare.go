package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Snapshot comparison: the perf-regression trajectory gate. Compare diffs
// two BENCH_<exp>.json snapshots of the same experiment and classifies every
// metric delta. Deterministic model-derived metrics (modeled latencies,
// token/page/slot counts, hit fractions, boolean identity checks) are
// *gated*: an adverse change beyond the threshold fails the comparison.
// Wall-clock-derived metrics (throughput, speedups, allocation counts,
// overlap timings) vary run-to-run on shared CI hardware, so they only warn.

// DefaultRegressPct is the default per-metric regression threshold (relative
// adverse change) beyond which a gated metric fails.
const DefaultRegressPct = 0.10

// Delta statuses, ordered by severity.
const (
	StatusOK       = "ok"
	StatusImproved = "improved"
	StatusNew      = "new"
	StatusWarn     = "WARN"
	StatusMissing  = "MISSING"
	StatusFail     = "FAIL"
)

// MetricDelta is one metric's baseline-vs-current comparison.
type MetricDelta struct {
	Name      string
	Unit      string
	Base, Cur float64
	Pct       float64 // relative change, signed; ±1 when the baseline is 0
	Gated     bool    // deterministic metric: adverse change fails
	Status    string
	HaveBase  bool
	HaveCur   bool
}

// CompareResult is the full diff of one experiment's snapshots.
type CompareResult struct {
	Experiment string
	Threshold  float64
	Deltas     []MetricDelta
	Fails      int
	Warns      int
}

// OK reports whether no gated metric regressed.
func (r CompareResult) OK() bool { return r.Fails == 0 }

// metricClass describes how a metric is judged: whether an adverse change
// gates the build, which direction is adverse, and whether any change at all
// is adverse (two-sided, used for boolean identity metrics).
type metricClass struct {
	gated        bool
	higherBetter bool
	twoSided     bool
}

func containsAny(name string, subs ...string) bool {
	for _, s := range subs {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// classify maps a metric to its judging rules by unit and name. The split
// follows the provenance of each metric family: modeled/counted values are
// deterministic per seed and gate; measured wall-clock values only warn.
func classify(name, unit string) metricClass {
	switch {
	case unit == "bool":
		// Identity checks (token_identical, ...): any flip is a failure.
		return metricClass{gated: true, twoSided: true}
	case unit == "tok/s" || unit == "x" || unit == "objects":
		// Throughput, speedups and allocation rates are measured.
		return metricClass{higherBetter: unit != "objects"}
	case strings.HasPrefix(name, "async.") ||
		containsAny(name, "exposed", "hidden", "busy", "prefetch_hit"):
		// Overlap telemetry rides the async runtime's wall-clock behavior.
		return metricClass{higherBetter: containsAny(name, "hidden", "prefetch_hit")}
	case unit == "ms":
		// Modeled latencies gate; measured milliseconds only warn. Credit/
		// savings timings invert: more time saved is better.
		return metricClass{gated: strings.Contains(name, "model_"),
			higherBetter: containsAny(name, "saved", "credit")}
	case unit == "frac":
		return metricClass{gated: true,
			higherBetter: !containsAny(name, "divergence", "miss")}
	case containsAny(name, "saved", "reused", "hit", "admitted", "attain", "dedup", "identical"):
		return metricClass{gated: true, higherBetter: true}
	case containsAny(name, "shed", "refused", "evict", "spill", "miss", "dropped", "peak", "prefill", "balance"):
		return metricClass{gated: true}
	default:
		// Unknown deterministic-unit metrics: drift warns both ways.
		return metricClass{twoSided: true}
	}
}

// flatMetrics flattens a snapshot's reports into (ordered names, name→metric).
func flatMetrics(s Snapshot) ([]string, map[string]Metric) {
	var order []string
	m := map[string]Metric{}
	for _, r := range s.Reports {
		for _, met := range r.Metrics {
			if _, dup := m[met.Name]; !dup {
				order = append(order, met.Name)
			}
			m[met.Name] = met
		}
	}
	return order, m
}

// Compare diffs two snapshots of the same experiment. A gated metric whose
// adverse relative change exceeds regressPct (<= 0 selects
// DefaultRegressPct) fails; an ungated one warns. Metrics present only in
// the baseline fail as MISSING (refresh the baseline to retire a metric);
// metrics present only in the current snapshot are informational.
func Compare(base, cur Snapshot, regressPct float64) (CompareResult, error) {
	if base.Experiment != cur.Experiment {
		return CompareResult{}, fmt.Errorf("bench: comparing %q against %q", cur.Experiment, base.Experiment)
	}
	if base.Schema != "" && base.Schema != SnapshotSchema {
		return CompareResult{}, fmt.Errorf("bench: baseline schema %q, want %q", base.Schema, SnapshotSchema)
	}
	if regressPct <= 0 {
		regressPct = DefaultRegressPct
	}
	res := CompareResult{Experiment: base.Experiment, Threshold: regressPct}

	baseOrder, baseM := flatMetrics(base)
	curOrder, curM := flatMetrics(cur)
	for _, name := range baseOrder {
		bm := baseM[name]
		cm, ok := curM[name]
		d := MetricDelta{Name: name, Unit: bm.Unit, Base: bm.Value, HaveBase: true}
		cl := classify(name, bm.Unit)
		d.Gated = cl.gated
		if !ok {
			d.Status = StatusMissing
			res.Fails++
			res.Deltas = append(res.Deltas, d)
			continue
		}
		d.Cur, d.HaveCur = cm.Value, true
		switch {
		case cm.Value == bm.Value:
			d.Pct = 0
		case bm.Value != 0:
			d.Pct = (cm.Value - bm.Value) / math.Abs(bm.Value)
		case cm.Value > bm.Value:
			d.Pct = 1
		default:
			d.Pct = -1
		}
		adverse, beyond := false, math.Abs(d.Pct) > regressPct
		switch {
		case cl.twoSided:
			adverse = d.Pct != 0
			beyond = adverse // zero tolerance
		case cl.higherBetter:
			adverse = d.Pct < 0
		default:
			adverse = d.Pct > 0
		}
		switch {
		case adverse && beyond && cl.gated:
			d.Status = StatusFail
			res.Fails++
		case adverse && beyond:
			d.Status = StatusWarn
			res.Warns++
		case !adverse && beyond:
			d.Status = StatusImproved
		default:
			d.Status = StatusOK
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, name := range curOrder {
		if _, ok := baseM[name]; ok {
			continue
		}
		cm := curM[name]
		res.Deltas = append(res.Deltas, MetricDelta{
			Name: name, Unit: cm.Unit, Cur: cm.Value, HaveCur: true,
			Gated: classify(name, cm.Unit).gated, Status: StatusNew,
		})
	}
	return res, nil
}

// WriteTable renders the comparison as a pass/fail table plus a verdict
// line.
func (r CompareResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "compare %s (gate: ±%.0f%% on deterministic metrics)\n",
		r.Experiment, r.Threshold*100)
	fmt.Fprintf(w, "  %-44s %14s %14s %9s %6s %s\n",
		"metric", "baseline", "current", "delta", "gate", "status")
	for _, d := range r.Deltas {
		base, cur, pct := "-", "-", "-"
		if d.HaveBase {
			base = fmt.Sprintf("%.6g", d.Base)
		}
		if d.HaveCur {
			cur = fmt.Sprintf("%.6g", d.Cur)
		}
		if d.HaveBase && d.HaveCur {
			pct = fmt.Sprintf("%+.1f%%", d.Pct*100)
		}
		gate := "warn"
		if d.Gated {
			gate = "gate"
		}
		fmt.Fprintf(w, "  %-44s %14s %14s %9s %6s %s\n", d.Name, base, cur, pct, gate, d.Status)
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "  -> %s: %d failed, %d warned, %d metrics\n",
		verdict, r.Fails, r.Warns, len(r.Deltas))
}

// ReadSnapshot loads a BENCH_<exp>.json snapshot from path.
func ReadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return Snapshot{}, fmt.Errorf("bench: %s has schema %q, want %q", path, s.Schema, SnapshotSchema)
	}
	return s, nil
}

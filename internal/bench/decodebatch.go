package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"clusterkv/internal/model"
	"clusterkv/internal/workload"
)

// batchModelConfig returns the decode-batching benchmark shape: ~28 MB of
// weights (8 layers, d_model 256, 4k vocabulary), big enough that a single
// decode stream is weight-bandwidth bound — every GEMV streams the full
// matrix through the cache hierarchy for one row of work. That is the regime
// cross-stream batching targets: one blocked GEMM per matrix amortizes the
// weight traffic over the whole cohort. The default evaluation model
// (d_model 64, ~200 KB of weights) is cache-resident and would understate
// the effect.
func batchModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.VocabSize = 8192
	cfg.DModel = 256
	cfg.NLayers = 8
	cfg.NHeads = 8
	cfg.NKVHeads = 8
	cfg.HeadDim = 32
	cfg.FFNDim = 512
	return cfg
}

// RunDecodeBatch measures aggregate decode throughput at 1/2/4/8 concurrent
// streams, per-stream (one Sequence.DecodeInto per stream per round) versus
// batched (one BatchDecoder.DecodeInto per round), and asserts in-bench that
// the two paths emit bit-identical greedy token streams — the determinism
// contract the serving engine relies on to flip Config.BatchDecode freely.
// Also reported: heap allocations per batched round in steady state (the
// zero-alloc decode contract, DESIGN.md §12, extended to cohorts).
func RunDecodeBatch(o Options) *Report {
	o = o.withDefaults()
	cfg := batchModelConfig()
	m := model.New(cfg)
	rep := &Report{
		ID:      "decodebatch",
		Title:   "cross-stream batched decode: one GEMM per weight matrix per round",
		Headers: []string{"streams", "per-stream tok/s", "batched tok/s", "speedup", "batched allocs/round"},
	}

	dc := workload.DefaultDocConfig()
	dc.VocabSize = cfg.VocabSize
	dc.NTopics = cfg.NTopics

	// Timing is interleaved min-of-trials: solo and batched chunks alternate
	// within each cohort size, and each variant's per-round cost is the
	// fastest trial. On shared/virtualized CPUs a single long window picks up
	// steal-time and frequency drift that dwarfs the effect being measured;
	// alternating short chunks exposes both variants to the same noise and
	// the min discards it.
	const warm, trials, chunk = 2, 5, 8
	const steps = trials * chunk
	argmax := func(v []float32) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}

	// cohort builds S fresh sequences with page-aligned prompt lengths, so
	// the one legitimate page-boundary allocation per stream lands in the
	// warm-up rounds rather than the measured window.
	cohort := func(S int) ([]*model.Sequence, []int) {
		seqs := make([]*model.Sequence, S)
		toks := make([]int, S)
		for i := 0; i < S; i++ {
			d := dc
			d.Seed = o.Seed + uint64(100+i)
			doc := workload.Doc(d, 256+64*i)
			s := m.NewSequence(nil, 0)
			s.Prefill(doc, nil)
			seqs[i] = s
			toks[i] = doc[len(doc)-1]
		}
		return seqs, toks
	}
	release := func(seqs []*model.Sequence) {
		for _, s := range seqs {
			s.Release()
		}
	}

	var speed8 float64
	for _, S := range []int{1, 2, 4, 8} {
		soloSeqs, soloTok := cohort(S)
		batSeqs, batTok := cohort(S)
		lgs := make([][]float32, S)
		soloLg := make([]float32, cfg.VocabSize)
		for i := range lgs {
			lgs[i] = make([]float32, cfg.VocabSize)
		}
		soloStream := make([][]int, S)
		batStream := make([][]int, S)
		for i := 0; i < S; i++ {
			soloStream[i] = make([]int, 0, warm+steps)
			batStream[i] = make([]int, 0, warm+steps)
		}
		bd := m.NewBatchDecoder()

		soloRound := func() {
			for i, s := range soloSeqs {
				s.DecodeInto(soloTok[i], soloLg)
				soloTok[i] = argmax(soloLg)
				soloStream[i] = append(soloStream[i], soloTok[i])
			}
		}
		batRound := func() {
			bd.DecodeInto(batSeqs, batTok, lgs)
			for i := range batSeqs {
				batTok[i] = argmax(lgs[i])
				batStream[i] = append(batStream[i], batTok[i])
			}
		}
		for step := 0; step < warm; step++ {
			soloRound()
			batRound()
		}

		soloBest := math.MaxFloat64
		batBest := math.MaxFloat64
		var mallocs uint64
		var ms0, ms1 runtime.MemStats
		for trial := 0; trial < trials; trial++ {
			runtime.GC()
			start := time.Now()
			for r := 0; r < chunk; r++ {
				soloRound()
			}
			if el := time.Since(start).Seconds(); el < soloBest {
				soloBest = el
			}
			runtime.ReadMemStats(&ms0)
			start = time.Now()
			for r := 0; r < chunk; r++ {
				batRound()
			}
			el := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)
			if el < batBest {
				batBest = el
			}
			mallocs += ms1.Mallocs - ms0.Mallocs
		}

		// The bit-identity assertion: batching may never change a token.
		for i := 0; i < S; i++ {
			for j := range soloStream[i] {
				if soloStream[i][j] != batStream[i][j] {
					panic(fmt.Sprintf(
						"decodebatch: batched decode diverged from per-stream at %d streams, stream %d, step %d: token %d != %d",
						S, i, j, batStream[i][j], soloStream[i][j]))
				}
			}
		}
		release(soloSeqs)
		release(batSeqs)

		soloTokS := float64(S*chunk) / soloBest
		batTokS := float64(S*chunk) / batBest
		speedup := batTokS / soloTokS
		allocsPerRound := float64(mallocs) / steps
		if S == 8 {
			speed8 = speedup
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", S),
			fmt.Sprintf("%.1f", soloTokS),
			fmt.Sprintf("%.1f", batTokS),
			f2(speedup),
			fmt.Sprintf("%.1f", allocsPerRound),
		})
		rep.AddMetric(fmt.Sprintf("decodebatch.solo_tok_s_%d", S), soloTokS, "tok/s")
		rep.AddMetric(fmt.Sprintf("decodebatch.batched_tok_s_%d", S), batTokS, "tok/s")
		rep.AddMetric(fmt.Sprintf("decodebatch.speedup_%d", S), speedup, "x")
		rep.AddMetric(fmt.Sprintf("decodebatch.allocs_per_round_%d", S), allocsPerRound, "objects")
	}
	rep.AddMetric("decodebatch.identical", 1, "bool")

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("model: %d layers, d_model %d, vocab %d (~%d MB of weights) — large enough that single-stream decode is weight-bandwidth bound",
			cfg.NLayers, cfg.DModel, cfg.VocabSize, weightMB(cfg)),
		fmt.Sprintf("per cohort: 256..%d-token prompts, full attention, %d warm rounds, then %d alternating solo/batched chunks of %d rounds each; tok/s is aggregate across streams from the fastest chunk (min-of-trials discards scheduler/steal-time noise)", 256+64*7, warm, trials, chunk),
		"both paths emit bit-identical greedy token streams (asserted in-bench; conformance-locked in internal/model)",
		fmt.Sprintf("speedup at 8 streams: %.2fx — one blocked GEMM per matrix streams each weight panel once per round instead of once per stream", speed8),
	)
	return rep
}

// weightMB estimates the parameter footprint of a shape in MB (f32, tied
// embedding counted twice: once row-major for lookup, once packed for the
// LM head).
func weightMB(cfg model.Config) int {
	perLayer := 4*cfg.DModel*cfg.NHeads*cfg.HeadDim + 3*cfg.DModel*cfg.FFNDim
	total := cfg.NLayers*perLayer + 2*cfg.VocabSize*cfg.DModel
	return total * 4 / (1 << 20)
}

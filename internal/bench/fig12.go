package bench

import (
	"fmt"

	"clusterkv/internal/core"
	"clusterkv/internal/memsim"
	"clusterkv/internal/sched"
)

// Fig12Prompts and Fig12Decodes are the paper's Fig. 12 sweep points.
var (
	Fig12Prompts = []int{8192, 16384, 32768}
	Fig12Decodes = []int{256, 512, 1024}
	Fig12Budgets = []int{512, 1024, 2048}
)

// clusterPrefillExposure models the asynchronous-clustering prefill overhead
// (Fig. 6): clustering per layer is charged from the measured K-means
// iteration count and overlapped with the layer pipeline.
func clusterPrefillExposure(hw memsim.Hardware, m memsim.ModelShape, p int, iters float64, bypass int) (exposed, clusterBusy, prefillTotal float64) {
	pre := hw.Prefill(m, p)
	layerTime := pre.Total / float64(m.NLayers)
	c0 := p / 80
	opsPerLayer := int64(iters * float64(p) * float64(c0) * float64(m.HeadDim) * float64(m.NKVHeads))
	clusterTime := hw.ClusterWork(opsPerLayer)
	stages := sched.UniformLayers(m.NLayers, layerTime, 0, 0.15)
	for i := bypass; i < m.NLayers; i++ {
		stages[i].SideJob = clusterTime
	}
	res := sched.Overlap(stages)
	return res.Exposed, res.SideBusy, pre.Total
}

// RunFig12 reproduces Fig. 12: end-to-end latency of ClusterKV under budgets
// {512, 1024, 2048} vs the full-KV configuration on a Llama-3.1-8B-shaped
// serve, for P ∈ {8k, 16k, 32k} and D ∈ {256, 512, 1024}; plus the decoding
// throughput comparison (§V-C: up to 2× latency speedup, 2.5× throughput).
func RunFig12(opt Options) []*Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.Llama31_8B()

	lat := &Report{
		ID:      "fig12",
		Title:   "Inference latency vs full KV cache, Llama-3.1-8B shape (paper Fig. 12)",
		Headers: []string{"P", "D", "FullKV(s)", "B=512(s)", "B=1024(s)", "B=2048(s)", "Speedup@1024", "Prefill(s)"},
	}
	thr := &Report{
		ID:      "fig12-throughput",
		Title:   "Decoding throughput (tokens/s) vs full KV cache (paper §V-C)",
		Headers: []string{"P", "D", "FullKV", "B=512", "B=1024", "B=2048", "Gain@1024"},
	}

	// Counters measured from the executed algorithm at (capped) context
	// scale; hit rates and cluster counts transfer across model shapes
	// (DESIGN.md §3).
	counts := map[int]map[int]Counts{} // P -> budget -> counts
	for _, p := range Fig12Prompts {
		counts[p] = map[int]Counts{}
		measCtx := min(p, opt.MaxCtx)
		for _, b := range Fig12Budgets {
			counts[p][b] = MeasureClusterKV(measCtx, 128, b, traceCoreConfig(), opt.Seed^uint64(p+b))
		}
	}

	for _, p := range Fig12Prompts {
		for _, d := range Fig12Decodes {
			lAvg := p + d/2
			pre := hw.Prefill(shape, p)
			fullTotal := pre.Total + float64(d)*hw.DecodeStepFull(shape, lAvg).Total

			row := []string{fmt.Sprintf("%dk", p/1024), fmt.Sprint(d), f2(fullTotal)}
			trow := []string{fmt.Sprintf("%dk", p/1024), fmt.Sprint(d),
				f1(float64(d) / (float64(d) * hw.DecodeStepFull(shape, lAvg).Total))}
			var speed1024, thr1024, fullThr float64
			fullThr = 1 / hw.DecodeStepFull(shape, lAvg).Total
			for _, b := range Fig12Budgets {
				cts := counts[p][b]
				exposed, _, _ := clusterPrefillExposure(hw, shape, p, cts.KMeansIters, 2)
				step := hw.DecodeStepClusterKV(shape, memsim.ClusterKVCounts{
					Budget:   b,
					Clusters: cts.AvgClusters,
					MissRate: cts.MissRate,
				})
				total := pre.Total + exposed + float64(d)*step.Total
				row = append(row, f2(total))
				trow = append(trow, f1(1/step.Total))
				if b == 1024 {
					speed1024 = fullTotal / total
					thr1024 = (1 / step.Total) / fullThr
				}
			}
			row = append(row, f2(speed1024), f2(pre.Total))
			trow = append(trow, f2(thr1024))
			lat.Rows = append(lat.Rows, row)
			thr.Rows = append(thr.Rows, trow)
		}
	}
	lat.Notes = append(lat.Notes,
		"latencies are modeled from measured algorithm counters through the calibrated",
		"Ada-6000 cost model (internal/memsim/hardware.go); paper: 2x speedup at P=32k,",
		"D=1024, budget 1024; clustering overhead 6-8% of prefill.",
	)
	thr.Notes = append(thr.Notes, "paper: decoding throughput improves by up to 2.5x.")
	return []*Report{lat, thr}
}

// traceCoreConfig is the ClusterKV configuration used for counter
// measurement runs (bypass disabled: the trace models selection layers).
func traceCoreConfig() core.Config {
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	return cfg
}

package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/model"
	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
	"clusterkv/internal/workload"
)

// RunKernels measures the cache-conscious decode kernels (DESIGN.md §12)
// against their pre-fusion references, one section per claim:
//
//   - fused page-run gather-attention vs the unfused per-token gather
//     (bit-identical outputs, conformance-locked; here only the speed);
//   - the 4-row packed-panel GEMV vs the row-major loop at the decode
//     LM-head shape;
//   - dequantize-free int8 attention over compute-quantized pages vs the
//     float path over identical contents (bounded-ULP, reported);
//   - end-to-end decode tok/s at f32 and int8 KV, plus steady-state heap
//     allocations per decode round.
//
// Timings are wall-clock measurements and vary across machines; the
// speedup ratios and the allocation/divergence numbers are the headline
// metrics the trajectory tracks.
func RunKernels(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:      "kernels",
		Title:   "cache-conscious decode kernels: fused gather, packed GEMV, int8 KV attention",
		Headers: []string{"section", "variant", "ns/op", "speedup"},
	}

	// --- fused page-run gather vs unfused per-token gather ---------------
	const d = 64
	n := 2048
	if o.ModelCtx < 2048 {
		n = o.ModelCtx
	}
	st, q := kernelStore(o.Seed, n, d)
	idx := kernelSelection(o.Seed, n)
	var sc attention.Scratch
	out := make([]float32, d)
	fused := timeIt(400, func() { sc.Sparse(out, q, st, idx) })
	unfused := timeIt(400, func() { unfusedGather(&sc, out, q, st, idx) })
	addSpeedup(rep, "gather", "unfused per-token", unfused, unfused)
	addSpeedup(rep, "gather", "fused page-run", fused, unfused)
	rep.AddMetric("gather.fused_speedup", unfused/fused, "x")

	// --- packed-panel GEMV vs row-major GEMV at the LM-head shape --------
	cfg := model.DefaultConfig()
	mat := tensor.NewMat(cfg.VocabSize, cfg.DModel)
	r := rng.New(o.Seed + 7)
	for i := range mat.Data {
		mat.Data[i] = r.NormFloat32()
	}
	pm := tensor.Pack(mat)
	x := make([]float32, cfg.DModel)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	logits := make([]float32, cfg.VocabSize)
	rowMajor := timeIt(2000, func() { tensor.MatVecOn(nil, logits, mat, x) })
	packed := timeIt(2000, func() { pm.MatVecOn(nil, logits, x) })
	addSpeedup(rep, "lmhead-gemv", "row-major", rowMajor, rowMajor)
	addSpeedup(rep, "lmhead-gemv", "packed 4-row", packed, rowMajor)
	rep.AddMetric("gemv.packed_speedup", rowMajor/packed, "x")

	// --- int8 attention vs f32 attention over identical contents ---------
	qst := st.Clone()
	qst.SetComputeQuant(8)
	qst.QuantizeFullPages()
	ref := qst.Clone() // decodes the quantized pages into exact floats
	want := make([]float32, d)
	f32t := timeIt(400, func() { sc.Full(want, q, ref) })
	i8t := timeIt(400, func() { sc.Full(out, q, qst) })
	addSpeedup(rep, "int8-attn", "f32 pages", f32t, f32t)
	addSpeedup(rep, "int8-attn", "int8 pages", i8t, f32t)
	rep.AddMetric("int8.attn_speedup", f32t/i8t, "x")
	var norm, maxDiff float64
	for j := range want {
		if a := math.Abs(float64(want[j])); a > norm {
			norm = a
		}
		if df := math.Abs(float64(out[j] - want[j])); df > maxDiff {
			maxDiff = df
		}
	}
	rep.AddMetric("int8.max_divergence_relnorm", maxDiff/norm, "frac")

	// --- end-to-end decode tok/s and allocations per round ---------------
	m := model.New(cfg)
	dc := workload.DefaultDocConfig()
	dc.Seed = o.Seed
	promptLen := 1024
	if o.ModelCtx < 1024 {
		promptLen = o.ModelCtx / 2
	}
	doc := workload.Doc(dc, promptLen)
	const steps = 128
	decode := func(bits int) (toks float64, allocsPerRound float64) {
		seq := m.NewSequence(nil, 0)
		defer seq.Release()
		seq.SetKVQuantDecode(bits)
		seq.Prefill(doc, nil)
		buf := make([]float32, cfg.VocabSize)
		tok := doc[0]
		for i := 0; i < 4; i++ { // warm rope/scratch before measuring
			seq.DecodeInto(tok, buf)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < steps; i++ {
			seq.DecodeInto(tok, buf)
		}
		el := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		return steps / el, float64(ms1.Mallocs-ms0.Mallocs) / steps
	}
	f32Tok, f32Allocs := decode(0)
	i8Tok, i8Allocs := decode(8)
	rep.Rows = append(rep.Rows,
		[]string{"decode-e2e", "f32 KV", fmt.Sprintf("%.1f tok/s", f32Tok), "1.00"},
		[]string{"decode-e2e", "int8 KV", fmt.Sprintf("%.1f tok/s", i8Tok), f2(i8Tok / f32Tok)})
	rep.AddMetric("decode.f32_tok_s", f32Tok, "tok/s")
	rep.AddMetric("decode.int8_tok_s", i8Tok, "tok/s")
	rep.AddMetric("decode.f32_allocs_per_round", f32Allocs, "objects")
	rep.AddMetric("decode.int8_allocs_per_round", i8Allocs, "objects")

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("gather: %d-token store, head dim %d, %d-token clustered selection; fused and unfused outputs are bit-identical (conformance suite)", n, d, len(idx)),
		fmt.Sprintf("lmhead-gemv: %dx%d (VocabSize x DModel), serial pool — the per-round decode projection", cfg.VocabSize, cfg.DModel),
		"int8-attn: full attention over 8-bit compute-quantized pages vs the float path over the decoded contents; divergence is norm-relative and bounded by the ULP contract",
		"int8 trades compute for footprint on this scalar CPU target: the byte->float convert in the MAC costs ~20% throughput, while the KV compute format shrinks 4x (admission capacity + modeled offload bandwidth); on bandwidth-bound hardware the ratio flips",
		fmt.Sprintf("decode-e2e: %d-token prefill, %d decode steps, full attention; allocs/round counts heap objects (page-boundary rounds legitimately allocate fresh pages)", promptLen, steps),
	)
	return rep
}

// kernelStore fills a store with deterministic pseudo-random rows.
func kernelStore(seed uint64, n, d int) (*kvcache.Store, []float32) {
	a := kvcache.NewArena(kvcache.DefaultPageTokens, nil)
	s := kvcache.NewStoreIn(a, d)
	r := rng.New(seed)
	k := make([]float32, d)
	v := make([]float32, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			k[j] = r.NormFloat32()
			v[j] = r.NormFloat32()
		}
		s.Append(k, v)
	}
	q := make([]float32, d)
	for j := range q {
		q[j] = r.NormFloat32()
	}
	return s, q
}

// kernelSelection builds a selector-shaped sparse index set: attention sinks
// plus clustered runs covering roughly a quarter of the context.
func kernelSelection(seed uint64, n int) []int {
	r := rng.New(seed + 3)
	seen := make(map[int]bool)
	idx := make([]int, 0, n/4)
	for _, i := range []int{0, 1, 2, 3} {
		seen[i] = true
		idx = append(idx, i)
	}
	for len(idx) < n/4 {
		start := r.Intn(n)
		for k := 0; k < 8 && start+k < n; k++ {
			if !seen[start+k] {
				seen[start+k] = true
				idx = append(idx, start+k)
			}
		}
	}
	sort.Ints(idx)
	return idx
}

// unfusedGather is the pre-fusion reference: per-token score via Key(i),
// softmax, per-token value accumulation via Value(i).
func unfusedGather(sc *attention.Scratch, out, q []float32, s *kvcache.Store, idx []int) {
	scores := sc.Scores(len(idx))
	inv := float32(1 / math.Sqrt(float64(s.HeadDim())))
	for j, p := range idx {
		scores[j] = tensor.Dot(q, s.Key(p)) * inv
	}
	tensor.Softmax(scores)
	for t := range out {
		out[t] = 0
	}
	for j, p := range idx {
		w := scores[j]
		if w == 0 {
			continue
		}
		row := s.Value(p)
		for t := range out {
			out[t] += w * row[t]
		}
	}
}

// timeIt returns mean ns/op over iters calls of f.
func timeIt(iters int, f func()) float64 {
	f() // warm caches and lazy growth outside the window
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func addSpeedup(rep *Report, section, variant string, ns, base float64) {
	rep.Rows = append(rep.Rows, []string{
		section, variant, fmt.Sprintf("%.0f", ns), f2(base / ns)})
}

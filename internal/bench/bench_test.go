package bench

import (
	"fmt"
	"strings"
	"testing"

	"clusterkv/internal/baselines"
	"clusterkv/internal/core"
	"clusterkv/internal/workload"
)

func smallOptions() Options {
	return Options{MaxCtx: 1024, ModelCtx: 512, Seed: 1}
}

func smallTask() *workload.Task {
	spec := workload.TaskSpec{
		Name: "small", BaseScore: 50,
		CtxLen: 1024, NumNeedles: 2, NeedleTokens: 10, SpreadRegion: 128,
		AnswerSteps: 8, HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1,
	}
	return workload.BuildTask(spec, 3)
}

func TestRunTraceFullKVIsPerfect(t *testing.T) {
	task := smallTask()
	run := RunTrace(task.Trace, baselines.NewFullKV(), 256)
	if run.MeanRecall() != 1 || run.MeanFidelity() != 1 || run.MeanNeedleFidelity() != 1 {
		t.Fatalf("FullKV run: recall=%v fid=%v needle=%v",
			run.MeanRecall(), run.MeanFidelity(), run.MeanNeedleFidelity())
	}
}

func TestRunTraceMetricsInRange(t *testing.T) {
	task := smallTask()
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	run := RunTrace(task.Trace, core.New(cfg), 128)
	if len(run.Recalls) != 8*task.Trace.Cfg.Heads {
		t.Fatalf("%d samples", len(run.Recalls))
	}
	for i := range run.Recalls {
		for _, v := range []float64{run.Recalls[i], run.Fidelity[i], run.NeedleFidelity[i]} {
			if v < 0 || v > 1.0001 {
				t.Fatalf("metric out of range: %v", v)
			}
		}
	}
	if run.Stats.Steps != 8 {
		t.Fatalf("steps = %d", run.Stats.Steps)
	}
}

func TestRunTraceBudgetMonotonicity(t *testing.T) {
	task := smallTask()
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	lo := RunTrace(task.Trace, core.New(cfg), 64).MeanRecall()
	hi := RunTrace(task.Trace, core.New(cfg), 512).MeanRecall()
	if hi < lo {
		t.Fatalf("recall not improving with budget: %v -> %v", lo, hi)
	}
}

func TestMemoClusterKVCachesPrefill(t *testing.T) {
	task := smallTask()
	memo := NewMemo()
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	RunTrace(task.Trace, memo.ClusterKV(cfg), 64)
	if len(memo.kms) == 0 {
		t.Fatal("memo empty after first run")
	}
	first := len(memo.kms)
	RunTrace(task.Trace, memo.ClusterKV(cfg), 128)
	if len(memo.kms) != first {
		t.Fatalf("budget sweep grew the memo: %d -> %d", first, len(memo.kms))
	}
}

func TestCalibrationTraceSharesStructure(t *testing.T) {
	tc := workload.DefaultTraceConfig()
	tc.L = 512
	calib := CalibrationTrace(tc)
	if calib.Cfg.PlanSeed == tc.Seed {
		t.Fatal("calibration trace has the same plan")
	}
	if calib.Cfg.L > 4096 {
		t.Fatal("calibration trace not capped")
	}
}

func TestMeasureClusterKVCounts(t *testing.T) {
	cts := MeasureClusterKV(1024, 16, 256, traceCoreConfig(), 1)
	if cts.PrefillMetaOps <= 0 || cts.KMeansIters <= 0 {
		t.Fatalf("prefill counters: %+v", cts)
	}
	if cts.AvgClusters <= 0 || cts.AvgSelected <= 0 {
		t.Fatalf("decode counters: %+v", cts)
	}
	if cts.MissRate < 0 || cts.MissRate > 1 {
		t.Fatalf("miss rate %v", cts.MissRate)
	}
}

func TestReportFormats(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "demo",
		Headers: []string{"A", "B"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"hello"},
	}
	s := rep.String()
	for _, want := range []string{"demo", "A", "3", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	md := rep.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "> hello") {
		t.Fatalf("Markdown malformed:\n%s", md)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range RegistryOrder() {
		if _, ok := reg[id]; !ok {
			t.Fatalf("registry missing %s", id)
		}
	}
	if len(reg) != len(RegistryOrder()) {
		t.Fatalf("registry has %d entries, order lists %d", len(reg), len(RegistryOrder()))
	}
}

func TestRunFig11aSmall(t *testing.T) {
	rep := RunFig11a(smallOptions())
	if len(rep.Rows) != 3 {
		t.Fatalf("%d method rows", len(rep.Rows))
	}
	if len(rep.Rows[0]) != len(RecallBudgets)+1 {
		t.Fatalf("row width %d", len(rep.Rows[0]))
	}
}

func TestRunTab1Small(t *testing.T) {
	rep, res := RunTab1(smallOptions())
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	if len(res.Tasks) != 8 {
		t.Fatalf("%d tasks", len(res.Tasks))
	}
	// FullKV average must be >= every compressed method at every budget.
	var full []float64
	for mi, name := range res.Methods {
		if name != "FullKV" {
			continue
		}
		for bi := range Budgets {
			var sum float64
			for ti := range res.Tasks {
				sum += res.Scores[ti][mi][bi]
			}
			full = append(full, sum)
		}
	}
	for mi, name := range res.Methods {
		if name == "FullKV" {
			continue
		}
		for bi := range Budgets {
			var sum float64
			for ti := range res.Tasks {
				sum += res.Scores[ti][mi][bi]
			}
			if sum > full[bi]+1e-9 {
				t.Fatalf("%s beats FullKV at budget %d", name, Budgets[bi])
			}
		}
	}
}

func TestRunCacheSmall(t *testing.T) {
	rep := RunCache(smallOptions())
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	if rep.Rows[0][1] != "0%" {
		t.Fatalf("no-cache hit rate %s", rep.Rows[0][1])
	}
}

func TestRunOverlapSmall(t *testing.T) {
	rep := RunOverlap(smallOptions())
	if len(rep.Rows) != len(Fig12Prompts) {
		t.Fatalf("%d rows", len(rep.Rows))
	}
}

// TestRunXferOverlapSmall locks the async-runtime experiment's shape and its
// two headline claims at the quick-option scale: every request is served
// even though the device budget is below one request's prefill (two-tier
// spilling), and the async mode hides a material fraction of transfer time
// that the sync mode exposes in full. The hidden-fraction floor is set well
// under the default-scale result (≈50%) because wall-clock windows shrink
// on loaded CI machines.
func TestRunXferOverlapSmall(t *testing.T) {
	rep := RunXferOverlap(smallOptions())
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] != "8/8" {
			t.Fatalf("mode %q served %s, want 8/8 (beyond-device load must be served)", row[0], row[1])
		}
	}
	if got := rep.Rows[0][6]; got != "0%" {
		t.Fatalf("sync mode hid %s of transfer time, want 0%%", got)
	}
	var hidden float64
	if _, err := fmt.Sscanf(rep.Rows[1][6], "%f%%", &hidden); err != nil {
		t.Fatalf("parse hidden%% %q: %v", rep.Rows[1][6], err)
	}
	if hidden < 15 {
		t.Fatalf("async mode hid only %.0f%% of transfer time", hidden)
	}
}

func TestRunFig12Small(t *testing.T) {
	reps := RunFig12(smallOptions())
	if len(reps) != 2 {
		t.Fatalf("%d reports", len(reps))
	}
	if len(reps[0].Rows) != len(Fig12Prompts)*len(Fig12Decodes) {
		t.Fatalf("%d latency rows", len(reps[0].Rows))
	}
}

func TestRunFig13Small(t *testing.T) {
	a := RunFig13a(smallOptions())
	if len(a.Rows) != 2 {
		t.Fatalf("fig13a rows %d", len(a.Rows))
	}
	b := RunFig13b(smallOptions())
	if len(b.Rows) != 6 {
		t.Fatalf("fig13b rows %d", len(b.Rows))
	}
}

func TestRunFig10Small(t *testing.T) {
	rep := RunFig10(smallOptions())
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
}

func TestRunFig3Small(t *testing.T) {
	a := RunFig3a(smallOptions())
	if len(a.Rows) == 0 {
		t.Fatal("fig3a empty")
	}
	b := RunFig3b(smallOptions())
	if len(b.Rows) == 0 {
		t.Fatal("fig3b empty")
	}
}

func TestTaskScoreFullEqualsBase(t *testing.T) {
	task := smallTask()
	run := RunTrace(task.Trace, baselines.NewFullKV(), 128)
	if got := taskScore(task.Spec, run); got != task.Spec.BaseScore {
		t.Fatalf("FullKV score %v, want base %v", got, task.Spec.BaseScore)
	}
}

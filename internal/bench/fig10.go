package bench

import (
	"fmt"

	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/core"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/metrics"
	"clusterkv/internal/model"
	"clusterkv/internal/workload"
)

// fig10Budget is the paper's Fig. 10 budget.
const fig10Budget = 1024

// fig10Warmup is the full-attention warmup before streaming evaluation
// (selection is inactive below the budget anyway).
const fig10Warmup = 512

// fig10Lambda is the retrieval-LM logit gain.
const fig10Lambda = 10

// modelMethods returns the §V method set configured for the transformer
// engine (first-2-layers-full rule active, matching §V-A).
func modelMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "Quest", New: func() attention.Selector { return baselines.NewQuest(baselines.NewQuestConfig()) }},
		{Name: "InfiniGen", New: func() attention.Selector { return baselines.NewInfiniGen(baselines.NewInfiniGenConfig()) }},
		{Name: "ClusterKV", New: func() attention.Selector { return core.New(core.NewConfig()) }},
		{Name: "FullKV", New: func() attention.Selector { return baselines.NewFullKV() }},
	}
}

// traceMethodsPlain returns the method set for single-layer streaming runs
// (bypass disabled).
func traceMethodsPlain() []MethodSpec {
	return []MethodSpec{
		{Name: "Quest", New: func() attention.Selector {
			cfg := baselines.NewQuestConfig()
			cfg.BypassLayers = 0
			return baselines.NewQuest(cfg)
		}},
		{Name: "InfiniGen", New: func() attention.Selector {
			cfg := baselines.NewInfiniGenConfig()
			cfg.BypassLayers = 0
			return baselines.NewInfiniGen(cfg)
		}},
		{Name: "ClusterKV", New: func() attention.Selector {
			cfg := core.NewConfig()
			cfg.BypassLayers = 0
			return core.New(cfg)
		}},
		{Name: "FullKV", New: func() attention.Selector { return baselines.NewFullKV() }},
	}
}

// RunFig10 reproduces Fig. 10: language-modeling perplexity versus input
// length with a 1024-token KV budget on a PG19-like stream, evaluated
// through the attention-retrieval LM (workload.RetrievalLM — see its doc
// comment for why the untrained transformer engine is unsuitable here).
// The paper's shape: ClusterKV tracks full KV within a small deviation;
// InfiniGen and Quest deviate visibly more.
func RunFig10(opt Options) *Report {
	opt = opt.withDefaults()
	l := opt.MaxCtx

	var checkpoints []int
	for c := 1024; c < l; c *= 2 {
		checkpoints = append(checkpoints, c)
	}
	checkpoints = append(checkpoints, l)

	rep := &Report{
		ID:      "fig10",
		Title:   fmt.Sprintf("Perplexity vs input length, budget %d (paper Fig. 10)", fig10Budget),
		Headers: []string{"Method"},
	}
	for _, c := range checkpoints {
		rep.Headers = append(rep.Headers, fmt.Sprint(c))
	}

	doc := workload.DefaultDocConfig()
	tc := workload.DefaultTraceConfig()
	tc.Heads = 2
	tc.Seed = opt.Seed ^ 0x10

	type row struct {
		name string
		ppl  []float64
	}
	var rows []row
	var fullPPL []float64
	lm := workload.NewRetrievalLM(doc, tc, l, fig10Warmup, fig10Lambda)
	for _, ms := range traceMethodsPlain() {
		ppl := RetrievalPerplexity(lm, ms.New(), fig10Budget, checkpoints)
		rows = append(rows, row{ms.Name, ppl})
		if ms.Name == "FullKV" {
			fullPPL = ppl
		}
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, p := range r.ppl {
			cells = append(cells, f2(p))
		}
		rep.Rows = append(rep.Rows, cells)
	}
	for _, r := range rows {
		if r.name == "FullKV" || fullPPL == nil {
			continue
		}
		var devs []float64
		for i := range r.ppl {
			devs = append(devs, r.ppl[i]-fullPPL[i])
		}
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("%s mean ppl deviation from Full KV: %+.2f", r.name, metrics.Mean(devs)))
	}
	rep.Notes = append(rep.Notes,
		"paper: ClusterKV deviates up to 0.5 ppl, InfiniGen ~2, Quest ~4; absolute",
		"perplexities are not comparable (synthetic stream + retrieval LM), deviations are.",
	)
	return rep
}

// RetrievalPerplexity streams the LM's tokens with the given selector,
// returning perplexity at each checkpoint length. Evaluation starts after
// the warmup prefix; the selector sees the warmup as prefill and the text is
// re-clustered at chunk boundaries as the prompt grows.
func RetrievalPerplexity(lm *workload.RetrievalLM, sel attention.Selector, budget int, checkpoints []int) []float64 {
	tc := lm.TC
	stores := make([]*kvcache.Store, tc.Heads)
	for h := range stores {
		stores[h] = kvcache.NewStore(tc.D)
	}
	sel.Reset(1, tc.Heads, tc.D)

	n := len(lm.Tokens) - 1
	var nll float64
	evaluated := 0
	out := make([]float64, 0, len(checkpoints))
	ci := 0

	outs := make([][]float32, tc.Heads)
	for h := range outs {
		outs[h] = make([]float32, tc.D)
	}
	// Language-modeling evaluation feeds the text as a prompt (paper SV-B:
	// "the prompts are from the PG19 test set"), so metadata is rebuilt on
	// the whole prefix at chunk boundaries — C0 tracks L/80 as the input
	// grows — rather than accumulating decode-time micro-batches only.
	const reprefillEvery = 512
	var scratch []float32
	for t := 0; t < n; t++ {
		for h, s := range stores {
			k, v := lm.KV(h, t)
			s.Append(k, v)
			if t > fig10Warmup {
				sel.OnAppend(0, h, s)
			}
		}
		if t == fig10Warmup || (t > fig10Warmup && t%reprefillEvery == 0) {
			for h, s := range stores {
				sel.OnPrefill(0, h, s)
			}
		}
		if t >= fig10Warmup {
			for h, s := range stores {
				q := lm.Query(h, t)
				idx := sel.Select(0, h, q, s, budget)
				if idx == nil {
					scratch = attention.Full(outs[h], q, s, scratch)
				} else {
					scratch = attention.Sparse(outs[h], q, s, idx, scratch)
				}
			}
			sel.EndStep()
			logits := lm.Logits(outs)
			nll += metrics.NLLFromLogits(logits, lm.Tokens[t+1])
			evaluated++
		}
		for ci < len(checkpoints) && t+1 >= checkpoints[ci] {
			if evaluated > 0 {
				out = append(out, metrics.Perplexity(nll, evaluated))
			} else {
				out = append(out, 0)
			}
			ci++
		}
	}
	for ci < len(checkpoints) {
		out = append(out, metrics.Perplexity(nll, max(1, evaluated)))
		ci++
	}
	return out
}

// PerplexityCurveModel evaluates teacher-forced perplexity through the full
// transformer engine (library utility; the Fig. 10 experiment uses the
// retrieval LM instead — see workload.RetrievalLM).
func PerplexityCurveModel(m *model.Model, stream []int, sel attention.Selector, budget int, checkpoints []int) []float64 {
	seq := m.NewSequence(sel, budget)
	vocab := m.Config().VocabSize

	window := fig10Warmup
	if window >= len(stream) {
		window = len(stream) / 2
	}
	logits := make([]float32, window*vocab)
	seq.Prefill(stream[:window], logits)
	var nll float64
	n := 0
	for i := 0; i < window && i+1 < len(stream); i++ {
		nll += metrics.NLLFromLogits(logits[i*vocab:(i+1)*vocab], stream[i+1])
		n++
	}

	out := make([]float64, 0, len(checkpoints))
	ci := 0
	lg := make([]float32, vocab)
	for t := window; t < len(stream)-1; t++ {
		seq.DecodeInto(stream[t], lg)
		nll += metrics.NLLFromLogits(lg, stream[t+1])
		n++
		for ci < len(checkpoints) && n >= checkpoints[ci]-1 {
			out = append(out, metrics.Perplexity(nll, n))
			ci++
		}
	}
	for ci < len(checkpoints) {
		out = append(out, metrics.Perplexity(nll, n))
		ci++
	}
	return out
}

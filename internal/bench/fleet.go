package bench

import (
	"fmt"

	"clusterkv/internal/fleet"
	"clusterkv/internal/model"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

// RunFleet compares fleet routing policies on the shared-document QA load:
// prefix-affinity placement against round-robin and least-loaded baselines,
// all over identical 4-replica fleets of the serving engine. Affinity routes
// every question about a document to the replica whose prefix cache already
// holds its prefill, so each document is prefilled once fleet-wide; the
// cache-oblivious baselines scatter the same questions and re-prefill the
// document on (almost) every replica they touch. The report quantifies the
// difference as prefill pages saved and modeled TTFT (round timing costed on
// the paper's GPU serving Llama-3.1-8B — DESIGN.md §4/§9).
//
// A second section scales replica count under a modeled TTFT SLO with
// shedding enabled, showing SLO attainment become a capacity planning
// signal: the same load sheds less as the fleet grows.
func RunFleet(o Options) *Report {
	o = o.withDefaults()
	m := model.New(model.DefaultConfig())

	docLen := 256
	if o.ModelCtx < 1024 {
		docLen = 128
	}
	const (
		nDocs    = 4
		nReqs    = 16
		qLen     = 16
		maxNew   = 8
		replicas = 4
	)
	lc := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        nDocs,
		DocLen:       docLen,
		NRequests:    nReqs,
		QuestionLen:  qLen,
		MaxNewTokens: maxNew,
	}
	lc.Doc.Seed = o.Seed
	load := workload.NewLoad(lc)
	reqs := make([]serve.Request, len(load))
	for i, q := range load {
		reqs[i] = serve.Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
		}
	}

	rep := &Report{
		ID:    "fleet",
		Title: "prefix-affinity fleet routing vs cache-oblivious baselines, shared-doc QA load",
		Headers: []string{"policy", "replicas", "pfx hit%", "prefill toks",
			"pages saved", "ttft p50", "ttft p95", "tbt p50", "balance", "shed"},
	}

	run := func(policy fleet.Policy, replicas int, sloTTFT float64, shed bool) fleet.Summary {
		r := fleet.NewRouter(m, fleet.Config{
			Replicas:    replicas,
			Policy:      policy,
			Engine:      serve.Config{Workers: 2, MaxBatch: 4, Seed: o.Seed},
			SLOTTFT:     sloTTFT,
			Shed:        shed,
			Seed:        o.Seed,
			Attribution: true,
		})
		r.Run(reqs)
		sum := r.Summary()
		r.Close()
		return sum
	}

	row := func(sum fleet.Summary) []string {
		return []string{
			sum.Policy.String(),
			fmt.Sprintf("%d", sum.Replicas),
			fmt.Sprintf("%.0f%%", sum.PrefixHitRate()*100),
			fmt.Sprintf("%d", sum.PrefillTokens),
			fmt.Sprintf("%d", sum.SavedPrefillPages),
			fmt.Sprintf("%.1fms", sum.ModelTTFT.P50*1e3),
			fmt.Sprintf("%.1fms", sum.ModelTTFT.P95*1e3),
			fmt.Sprintf("%.1fms", sum.ModelTBT.P50*1e3),
			f2(sum.Balance),
			fmt.Sprintf("%d", sum.Shed),
		}
	}

	var affinity fleet.Summary
	for _, policy := range []fleet.Policy{fleet.PolicyAffinity, fleet.PolicyRoundRobin, fleet.PolicyLeastLoaded} {
		sum := run(policy, replicas, 0, false)
		if policy == fleet.PolicyAffinity {
			affinity = sum
		}
		rep.Rows = append(rep.Rows, row(sum))
		p := policy.String()
		rep.AddMetric(p+".prefix_hit_rate", sum.PrefixHitRate(), "frac")
		rep.AddMetric(p+".prefill_tokens", float64(sum.PrefillTokens), "tokens")
		rep.AddMetric(p+".saved_prefill_pages", float64(sum.SavedPrefillPages), "pages")
		rep.AddMetric(p+".model_ttft_p50", sum.ModelTTFT.P50*1e3, "ms")
		rep.AddMetric(p+".model_ttft_p95", sum.ModelTTFT.P95*1e3, "ms")
		rep.AddMetric(p+".balance", sum.Balance, "")
	}

	// Per-phase latency attribution for the affinity fleet (DESIGN.md §14):
	// where the modeled wall time actually went, request-weighted. The phase
	// totals are deterministic per seed, so they gate the trajectory.
	if s := affinity.Attribution; s != nil {
		rep.AddMetric("attr.model_wall_ms", s.WallSec*1e3, "ms")
		for _, ps := range s.Phases {
			rep.AddMetric("attr.model_"+ps.Phase+"_ms", ps.TotalSec*1e3, "ms")
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"attribution (affinity): %-12s %8.2fms  %5.1f%% of wall  (p95 %.2fms)",
				ps.Phase, ps.TotalSec*1e3, ps.FracWall*100, ps.P95*1e3))
		}
		rep.AddMetric("attr.prefix_credit_saved_ms", s.PrefixCreditSec*1e3, "ms")
	}

	// SLO section: scale the fleet under a TTFT SLO with shedding.
	const sloTTFT = 0.15
	type sloRow struct {
		replicas int
		sum      fleet.Summary
	}
	var sloRows []sloRow
	for _, n := range []int{1, 2, 4} {
		sloRows = append(sloRows, sloRow{n, run(fleet.PolicyAffinity, n, sloTTFT, true)})
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("load: %d requests over %d shared %d-token docs, %d-token questions, %d new tokens; %d replicas, MaxBatch 4",
			nReqs, nDocs, docLen, qLen, maxNew, replicas),
		"modeled latencies cost the real token/page/round counts as Llama-3.1-8B on the paper GPU (memsim); deterministic per seed",
		fmt.Sprintf("affinity prefilled %d tokens (each doc once fleet-wide); pages saved = prefill pages avoided vs full per-request prefill",
			affinity.PrefillTokens),
	)
	for _, sr := range sloRows {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"slo %dms, affinity, %d replica(s): %.0f%% attainment, %d shed, %d rerouted",
			int(sloTTFT*1e3), sr.replicas, sr.sum.SLOAttainment*100, sr.sum.Shed, sr.sum.Rerouted))
		pre := fmt.Sprintf("slo.replicas_%d.", sr.replicas)
		rep.AddMetric(pre+"attainment", sr.sum.SLOAttainment, "frac")
		rep.AddMetric(pre+"shed", float64(sr.sum.Shed), "count")
		rep.AddMetric(pre+"rerouted", float64(sr.sum.Rerouted), "count")
	}
	return rep
}

package bench

import (
	"fmt"
	"strings"
)

// Metric is one typed headline value of an experiment — the machine-readable
// counterpart to a formatted table cell, emitted into the BENCH_<exp>.json
// trajectory snapshots that re-anchors diff against.
type Metric struct {
	// Name identifies the metric within the report, dotted lowercase
	// ("affinity.prefix_hit_rate").
	Name string `json:"name"`
	// Value is the measurement.
	Value float64 `json:"value"`
	// Unit is the value's unit ("tokens", "pages", "ms", "frac", "count");
	// empty for dimensionless ratios.
	Unit string `json:"unit,omitempty"`
}

// Report is a uniformly formatted experiment result: a titled table plus
// free-form notes (paper-vs-measured commentary) and typed headline metrics
// for the JSON trajectory.
type Report struct {
	// ID is the experiment identifier ("fig9", "tab1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the table body.
	Rows [][]string
	// Notes carry commentary lines (calibration, paper comparison).
	Notes []string
	// Metrics are the report's typed headline values (may be empty for
	// table-only experiments).
	Metrics []Metric
}

// AddMetric appends one typed metric.
func (r *Report) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// String renders the report as an ASCII table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavored markdown table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Headers)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

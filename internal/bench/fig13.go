package bench

import (
	"fmt"

	"clusterkv/internal/memsim"
	"clusterkv/internal/metrics"
)

// RunFig13a reproduces Fig. 13a: ClusterKV vs InfiniGen on an OPT-6.7B-shaped
// serve (InfiniGen's FlexGen base supports OPT with a 2k window), budget 256,
// P = 2k, D ∈ {128, 256}. "InfiniGen (Full)" is the FlexGen full-offload
// baseline.
func RunFig13a(opt Options) *Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.OPT67B()
	p := 2048
	budget := 256

	cts := MeasureClusterKV(p, 128, budget, traceCoreConfig(), opt.Seed^0x13a)

	rep := &Report{
		ID:      "fig13a",
		Title:   "Latency vs InfiniGen, OPT-6.7B shape, budget 256 (paper Fig. 13a)",
		Headers: []string{"D", "InfiniGen(Full)(s)", "InfiniGen(s)", "ClusterKV(s)", "Speedup vs InfiniGen"},
	}
	var speedups []float64
	for _, d := range []int{128, 256} {
		lAvg := p + d/2
		pre := hw.Prefill(shape, p).Total
		full := pre + float64(d)*hw.DecodeStepOffloadFull(shape, lAvg).Total
		infini := pre + float64(d)*hw.DecodeStepInfiniGen(shape, lAvg, memsim.InfiniGenCounts{
			Budget:     budget,
			PartialDim: shape.HeadDim / 4,
		}).Total
		exposed, _, _ := clusterPrefillExposure(hw, shape, p, cts.KMeansIters, 2)
		ckv := pre + exposed + float64(d)*hw.DecodeStepClusterKV(shape, memsim.ClusterKVCounts{
			Budget:   budget,
			Clusters: cts.AvgClusters,
			MissRate: cts.MissRate,
		}).Total
		speedups = append(speedups, infini/ckv)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(d), f2(full), f2(infini), f2(ckv), f2(infini / ckv),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("average speedup %.2fx (paper: 2.3x average; InfiniGen latency is", metrics.Mean(speedups)),
		"comparable to full KV due to its per-token O(L*r) selection, paper SV-C).",
	)
	return rep
}

// RunFig13b reproduces Fig. 13b: ClusterKV vs Quest on a Llama-3.1-8B-shaped
// serve with a 1k budget, P ∈ {8k, 16k, 32k}, D ∈ {256, 512}. The paper
// reports latency deviations up to 5% while ClusterKV delivers much higher
// accuracy.
func RunFig13b(opt Options) *Report {
	opt = opt.withDefaults()
	hw := memsim.AdaRTX6000()
	shape := memsim.Llama31_8B()
	budget := 1024

	rep := &Report{
		ID:      "fig13b",
		Title:   "Latency vs Quest, Llama-3.1-8B shape, budget 1k (paper Fig. 13b)",
		Headers: []string{"P", "D", "Quest(s)", "ClusterKV(s)", "Deviation"},
	}
	var devs []float64
	for _, p := range Fig12Prompts {
		cts := MeasureClusterKV(min(p, opt.MaxCtx), 128, budget, traceCoreConfig(), opt.Seed^uint64(p))
		for _, d := range []int{256, 512} {
			lAvg := p + d/2
			pre := hw.Prefill(shape, p).Total
			quest := pre + float64(d)*hw.DecodeStepQuest(shape, lAvg, memsim.QuestCounts{
				Budget: budget, PageSize: 16,
			}).Total
			exposed, _, _ := clusterPrefillExposure(hw, shape, p, cts.KMeansIters, 2)
			ckv := pre + exposed + float64(d)*hw.DecodeStepClusterKV(shape, memsim.ClusterKVCounts{
				Budget:   budget,
				Clusters: cts.AvgClusters,
				MissRate: cts.MissRate,
			}).Total
			dev := (ckv - quest) / quest
			devs = append(devs, dev)
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%dk", p/1024), fmt.Sprint(d),
				f2(quest), f2(ckv), fmt.Sprintf("%+.1f%%", dev*100),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("max |deviation| %.1f%% (paper: up to 5%%).", maxAbsPct(devs)),
	)
	return rep
}

func maxAbsPct(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m * 100
}

package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rep := &Report{
		ID:      "fleet",
		Title:   "test report",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	rep.AddMetric("affinity.prefix_hit_rate", 0.75, "frac")
	rep.AddMetric("affinity.balance", 1.0, "")

	o := Options{MaxCtx: 8192, ModelCtx: 4096, Seed: 17}
	dir := t.TempDir()
	path, err := WriteSnapshot(dir, NewSnapshot("fleet", "abc1234", o, []*Report{rep}))
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_fleet.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Schema != SnapshotSchema {
		t.Fatalf("schema = %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.Experiment != "fleet" || s.Commit != "abc1234" {
		t.Fatalf("experiment/commit = %q/%q", s.Experiment, s.Commit)
	}
	if s.Options != o {
		t.Fatalf("options = %+v, want %+v", s.Options, o)
	}
	if len(s.Reports) != 1 {
		t.Fatalf("%d reports, want 1", len(s.Reports))
	}
	r := s.Reports[0]
	if r.ID != "fleet" || len(r.Rows) != 1 || len(r.Headers) != 2 || len(r.Notes) != 1 {
		t.Fatalf("report fields lost in round trip: %+v", r)
	}
	if len(r.Metrics) != 2 {
		t.Fatalf("%d metrics, want 2", len(r.Metrics))
	}
	if m := r.Metrics[0]; m.Name != "affinity.prefix_hit_rate" || m.Value != 0.75 || m.Unit != "frac" {
		t.Fatalf("metric round trip: %+v", m)
	}
	if m := r.Metrics[1]; m.Unit != "" {
		t.Fatalf("dimensionless unit must stay empty, got %q", m.Unit)
	}
}

// TestSnapshotSchemaStable pins the serialized field names: renaming any of
// these is a schema break and must come with a SnapshotSchema bump.
func TestSnapshotSchemaStable(t *testing.T) {
	s := NewSnapshot("overlap", "deadbee", Options{Seed: 1}, []*Report{{ID: "overlap"}})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "experiment", "commit", "options", "reports"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot JSON missing top-level key %q: %s", key, data)
		}
	}
	reports := m["reports"].([]any)
	rep := reports[0].(map[string]any)
	for _, key := range []string{"id", "title", "headers", "rows"} {
		if _, ok := rep[key]; !ok {
			t.Fatalf("report JSON missing key %q: %s", key, data)
		}
	}
}

// TestFleetSnapshotSchemaValid runs the real fleet experiment at quick scale
// and checks the emitted BENCH_fleet.json parses and carries typed metrics —
// the acceptance path `clusterkv-bench -exp fleet -json` exercises.
func TestFleetSnapshotSchemaValid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fleet experiment")
	}
	o := Options{MaxCtx: 1024, ModelCtx: 512, Seed: 1}
	rep := RunFleet(o)
	dir := t.TempDir()
	path, err := WriteSnapshot(dir, NewSnapshot("fleet", "unknown", o, []*Report{rep}))
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("BENCH_fleet.json is not valid JSON: %v", err)
	}
	if s.Schema != SnapshotSchema || len(s.Reports) != 1 {
		t.Fatalf("schema %q, %d reports", s.Schema, len(s.Reports))
	}
	metrics := s.Reports[0].Metrics
	if len(metrics) == 0 {
		t.Fatal("fleet snapshot carries no typed metrics")
	}
	names := map[string]bool{}
	for _, m := range metrics {
		if m.Name == "" {
			t.Fatalf("unnamed metric: %+v", m)
		}
		if names[m.Name] {
			t.Fatalf("duplicate metric name %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, want := range []string{
		"affinity.prefix_hit_rate", "rr.prefix_hit_rate",
		"affinity.saved_prefill_pages", "slo.replicas_4.attainment",
	} {
		if !names[want] {
			t.Fatalf("fleet snapshot missing headline metric %q (has %v)", want, names)
		}
	}
}

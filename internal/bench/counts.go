package bench

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/core"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/workload"
)

// Counts are the measured per-run operation statistics the latency model
// consumes (DESIGN.md §4: latency = f(real counts, calibrated constants)).
type Counts struct {
	// PrefillMetaOps are metadata-building ops during prefill (K-means
	// assignment ops for ClusterKV).
	PrefillMetaOps int64
	// KMeansIters is the average number of K-means iterations per head
	// observed during prefill.
	KMeansIters float64
	// Stats are the decode-phase selector counters.
	Stats attention.SelStats
	// MissRate is 1 − cache hit rate over the decode phase.
	MissRate float64
	// AvgClusters is the average number of clusters scored per Select.
	AvgClusters float64
	// AvgSelected is the average number of tokens selected per Select.
	AvgSelected float64
}

// MeasureClusterKV runs ClusterKV over a context of ctxLen tokens and steps
// decode steps (a NarrativeQA-like revisit workload) and returns the
// operation counts that parameterise the Fig. 12/13 cost model. The run is
// independent of model shape: hit rates and cluster counts are properties of
// the algorithm and the workload.
func MeasureClusterKV(ctxLen, steps, budget int, cfg core.Config, seed uint64) Counts {
	spec := workload.TaskSpec{
		Name: "measure", BaseScore: 1,
		CtxLen: ctxLen, NumNeedles: 3, NeedleTokens: 20,
		SpreadRegion: min(768, ctxLen/4), AnswerSteps: steps,
		HopPattern: "revisit", DiffuseNoise: 0.55, QueryGain: 0.85,
	}
	task := workload.BuildTask(spec, seed)
	tr := task.Trace

	sel := core.New(cfg)
	stores := make([]*kvcache.Store, tr.Cfg.Heads)
	sel.Reset(1, tr.Cfg.Heads, tr.Cfg.D)
	for h := range stores {
		stores[h] = kvcache.NewStore(tr.Cfg.D)
		stores[h].AppendBatch(tr.Keys[h].Data, tr.Vals[h].Data)
		sel.OnPrefill(0, h, stores[h])
	}
	var c Counts
	c.PrefillMetaOps = sel.Stats().MetaOps
	// iters ≈ ops / (heads × clusteredLen × C0 × d)
	clusteredLen := ctxLen - cfg.SinkTokens
	c0 := clusteredLen / cfg.ClusterRatio
	if cfg.C0Override > 0 {
		c0 = cfg.C0Override
	}
	if c0 < cfg.MinClusters {
		c0 = cfg.MinClusters
	}
	den := float64(tr.Cfg.Heads) * float64(clusteredLen) * float64(c0) * float64(tr.Cfg.D)
	if den > 0 {
		c.KMeansIters = float64(c.PrefillMetaOps) / den
	}

	for _, step := range tr.Steps {
		for h, s := range stores {
			s.Append(step.AppendK[h], step.AppendV[h])
			sel.OnAppend(0, h, s)
		}
		for h, s := range stores {
			sel.Select(0, h, step.Queries[h], s, budget)
		}
		sel.EndStep()
	}
	st := sel.Stats()
	st.MetaOps -= c.PrefillMetaOps
	c.Stats = st
	if tot := st.TokensHit + st.TokensLoaded; tot > 0 {
		c.MissRate = float64(st.TokensLoaded) / float64(tot)
	}
	if st.SelectCalls > 0 {
		c.AvgClusters = float64(st.ClustersSelected) / float64(st.SelectCalls)
		c.AvgSelected = float64(st.TokensSelected) / float64(st.SelectCalls)
	}
	return c
}

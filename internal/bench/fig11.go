package bench

import (
	"fmt"

	"clusterkv/internal/cluster"
	"clusterkv/internal/core"
	"clusterkv/internal/metrics"
	"clusterkv/internal/workload"
)

// RecallBudgets are the Fig. 11 budgets: 256..2048 in increments of 256.
var RecallBudgets = []int{256, 512, 768, 1024, 1280, 1536, 1792, 2048}

// narrativeTrace builds the Fig. 11 sample: a NarrativeQA-like context at the
// experiment's context cap with 64 decode steps (the paper uses a 32k sample
// and averages recall across layers, heads and decoding steps).
func narrativeTrace(opt Options) *workload.Task {
	spec := workload.TaskSpec{
		Name: "NarrativeQA-32k", BaseScore: 25.5,
		CtxLen: opt.MaxCtx, NumNeedles: 3, NeedleTokens: 20, SpreadRegion: 768,
		AnswerSteps: 64, HopPattern: "revisit", DiffuseNoise: 0.55, QueryGain: 0.85,
	}
	return workload.BuildTask(spec, opt.Seed^0x11a)
}

// RunFig11a reproduces Fig. 11a: recall rate of important tokens vs budget
// for Quest, InfiniGen and ClusterKV.
func RunFig11a(opt Options) *Report {
	opt = opt.withDefaults()
	task := narrativeTrace(opt)
	memo := NewMemo()

	rep := &Report{
		ID:      "fig11a",
		Title:   "Recall rate of important tokens vs budget (paper Fig. 11a)",
		Headers: []string{"Method"},
	}
	for _, b := range RecallBudgets {
		rep.Headers = append(rep.Headers, fmt.Sprintf("B=%d", b))
	}
	for _, ms := range memo.TraceMethods(task.Trace) {
		if ms.Name == "FullKV" {
			continue
		}
		row := []string{ms.Name}
		for _, b := range RecallBudgets {
			run := RunTrace(task.Trace, ms.New(), b)
			row = append(row, f3(run.MeanRecall()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"recall = |I_T intersect I_T_true| / B averaged over heads and decoding steps;",
		"paper shape: ClusterKV > InfiniGen > Quest across all budgets (~0.2-0.5 range).",
	)
	return rep
}

// RunFig11b reproduces Fig. 11b: ClusterKV recall under different clustering
// distance metrics (cosine vs L2 vs inner product) and different prefill
// cluster counts C0 in {200, 400, 600, 800}.
func RunFig11b(opt Options) *Report {
	opt = opt.withDefaults()
	task := narrativeTrace(opt)
	memo := NewMemo()

	rep := &Report{
		ID:      "fig11b",
		Title:   "ClusterKV recall ablations: distance metric and C0 (paper Fig. 11b)",
		Headers: []string{"Config"},
	}
	for _, b := range RecallBudgets {
		rep.Headers = append(rep.Headers, fmt.Sprintf("B=%d", b))
	}

	type variant struct {
		name   string
		metric cluster.Metric
		c0     int
	}
	// C0 values scale with context (the paper's values are for a 32k
	// context, i.e. L/160..L/40); keep absolute values at 32k and scale
	// proportionally below.
	scale := float64(opt.MaxCtx) / 32768.0
	c0 := func(v int) int {
		s := int(float64(v) * scale)
		if s < 8 {
			s = 8
		}
		return s
	}
	variants := []variant{
		{fmt.Sprintf("cosine C0=%d", c0(400)), cluster.Cosine, c0(400)},
		{"l2", cluster.L2, c0(400)},
		{"inner-product", cluster.InnerProduct, c0(400)},
		{fmt.Sprintf("C0=%d", c0(200)), cluster.Cosine, c0(200)},
		{fmt.Sprintf("C0=%d", c0(600)), cluster.Cosine, c0(600)},
		{fmt.Sprintf("C0=%d", c0(800)), cluster.Cosine, c0(800)},
	}
	for _, v := range variants {
		cfg := core.NewConfig()
		cfg.BypassLayers = 0
		cfg.Metric = v.metric
		cfg.C0Override = v.c0
		row := []string{v.name}
		for _, b := range RecallBudgets {
			run := RunTrace(task.Trace, memo.ClusterKV(cfg), b)
			row = append(row, f3(run.MeanRecall()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: cosine > L2 and inner product; recall saturates beyond C0=400 (=L/80 at 32k);",
		fmt.Sprintf("C0 values scaled by ctx/32768 = %.2f for this run.", scale),
	)
	return rep
}

// Fig11Summary computes headline recall numbers used in EXPERIMENTS.md.
func Fig11Summary(opt Options) map[string]float64 {
	opt = opt.withDefaults()
	task := narrativeTrace(opt)
	memo := NewMemo()
	out := map[string]float64{}
	for _, ms := range memo.TraceMethods(task.Trace) {
		if ms.Name == "FullKV" {
			continue
		}
		var xs []float64
		for _, b := range RecallBudgets {
			xs = append(xs, RunTrace(task.Trace, ms.New(), b).MeanRecall())
		}
		out[ms.Name] = metrics.Mean(xs)
	}
	return out
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Machine-readable bench snapshots: the schema-versioned BENCH_<exp>.json
// files that form the repository's performance trajectory. Each snapshot
// captures one experiment's reports — tables, notes and typed metrics —
// together with the options, seed and commit that produced them, so a later
// re-anchor can diff the same experiment across commits without parsing
// ASCII tables.

// SnapshotSchema is the snapshot format version. Bump on any
// backwards-incompatible change to Snapshot's JSON shape.
const SnapshotSchema = "clusterkv-bench/v1"

// Snapshot is the serialized form of one experiment run.
type Snapshot struct {
	// Schema is SnapshotSchema.
	Schema string `json:"schema"`
	// Experiment is the registry id ("fleet", "overlap", ...).
	Experiment string `json:"experiment"`
	// Commit is the git commit the run was built from ("unknown" when the
	// driver could not determine it).
	Commit string `json:"commit"`
	// Options echoes the experiment scaling knobs.
	Options Options `json:"options"`
	// Reports are the experiment's reports in emission order.
	Reports []ReportSnapshot `json:"reports"`
}

// ReportSnapshot is the serialized form of one Report.
type ReportSnapshot struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Metrics []Metric   `json:"metrics,omitempty"`
}

// NewSnapshot assembles a Snapshot from an experiment's reports.
func NewSnapshot(experiment, commit string, o Options, reports []*Report) Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Experiment: experiment,
		Commit:     commit,
		Options:    o,
	}
	for _, r := range reports {
		s.Reports = append(s.Reports, ReportSnapshot{
			ID:      r.ID,
			Title:   r.Title,
			Headers: r.Headers,
			Rows:    r.Rows,
			Notes:   r.Notes,
			Metrics: r.Metrics,
		})
	}
	return s
}

// WriteSnapshot writes the snapshot to dir/BENCH_<experiment>.json (indented,
// trailing newline) and returns the written path.
func WriteSnapshot(dir string, s Snapshot) (string, error) {
	if s.Schema == "" {
		s.Schema = SnapshotSchema
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", s.Experiment))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

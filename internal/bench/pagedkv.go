package bench

import (
	"errors"
	"fmt"

	"clusterkv/internal/kvcache"
	"clusterkv/internal/model"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

// RunPagedKV compares the two admission economies on a shared-document QA
// load at identical KV budgets: the contiguous-era worst-case reservation
// (each request pre-reserves prompt tail + MaxNewTokens) against the paged
// arena's exact accounting (actual copy-on-write pages plus one page of
// decode headroom, shared prefix pages charged once by refcount).
//
// Two regimes are reported:
//   - tight budget with long generations: worst-case must refuse requests
//     whose up-front reservation can never fit, while exact admission serves
//     the same load because live pages never approach the reservation bound;
//   - generous budget: both serve everything, isolating the high-water
//     difference to page-rounding slack versus reservation padding.
//
// A second section measures fork-divergence dedup directly: one document
// snapshot forked into many sequences that each append a divergent answer,
// with the arena's live-page gauge against what per-fork copies would cost.
func RunPagedKV(o Options) *Report {
	o = o.withDefaults()
	m := model.New(model.DefaultConfig())

	docLen := 128
	if o.ModelCtx < 512 {
		docLen = 64
	}
	const (
		qLen   = 16
		maxNew = 400
		nReqs  = 8
	)
	lc := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        2,
		DocLen:       docLen,
		NRequests:    nReqs,
		QuestionLen:  qLen,
		MaxNewTokens: maxNew,
	}
	lc.Doc.Seed = o.Seed
	load := workload.NewLoad(lc)
	reqs := make([]serve.Request, len(load))
	for i, q := range load {
		reqs[i] = serve.Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
		}
	}

	// Tight: below the worst-case per-request reservation (qLen+maxNew+1)
	// but above exact admission's prefill pages + headroom. Generous: fits
	// every worst-case reservation simultaneously.
	tight := int64(qLen + maxNew) // 416 < 417 worst-case slots
	generous := int64(docLen*lc.NDocs + nReqs*(qLen+maxNew+1))

	rep := &Report{
		ID:    "pagedkv",
		Title: "exact paged-COW admission vs contiguous-era worst-case reservation, shared-doc QA load",
		Headers: []string{"KVBudget", "policy", "admitted", "refused",
			"KV high-water", "mean batch", "rounds", "tok/s"},
	}

	type outcome struct {
		admitted, refused int
		mx                serve.Metrics
	}
	run := func(budget int64, worstCase bool) outcome {
		eng := serve.NewEngine(m, serve.Config{
			Workers: 2, MaxBatch: 4, KVBudget: budget, Seed: o.Seed,
			WorstCaseAdmission: worstCase,
		})
		var out outcome
		for _, r := range eng.Run(reqs) {
			switch {
			case r.Err == nil:
				out.admitted++
			case errors.Is(r.Err, serve.ErrTooLarge):
				out.refused++
			}
		}
		out.mx = eng.Metrics()
		eng.Close()
		return out
	}

	for _, budget := range []int64{tight, generous} {
		for _, worstCase := range []bool{true, false} {
			policy := "exact paged-COW"
			if worstCase {
				policy = "worst-case reserve"
			}
			oc := run(budget, worstCase)
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", budget), policy,
				fmt.Sprintf("%d/%d", oc.admitted, len(reqs)),
				fmt.Sprintf("%d", oc.refused),
				fmt.Sprintf("%d", oc.mx.KVPeak),
				f2(oc.mx.MeanBatchOccupancy),
				fmt.Sprintf("%d", oc.mx.Rounds),
				f1(oc.mx.Throughput()),
			})
			key := "generous."
			if budget == tight {
				key = "tight."
			}
			if worstCase {
				key += "worstcase."
			} else {
				key += "exact."
			}
			rep.AddMetric(key+"admitted", float64(oc.admitted), "count")
			rep.AddMetric(key+"refused", float64(oc.refused), "count")
			rep.AddMetric(key+"kv_peak", float64(oc.mx.KVPeak), "slots")
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("load: %d requests, %d docs × %d tokens, %d-token questions, %d new tokens each",
			nReqs, lc.NDocs, docLen, qLen, maxNew),
		"KV high-water in per-head token slots: reservation peak under worst-case, live-page peak (round-sampled) under exact",
		"worst-case refuses any request whose up-front reservation exceeds the whole budget; exact needs only prefill pages + 1 page decode headroom",
		"exact mode lets admitted sequences grow page-by-page past a tight budget (admission throttles instead of failing mid-decode), so its tight-budget high-water reflects real decode length, not the budget")

	// Fork-divergence dedup: the block-granular sharing the COW arena buys.
	arena := kvcache.NewArena(kvcache.DefaultPageTokens, nil)
	divDoc := workload.Doc(lc.Doc, 8*kvcache.DefaultPageTokens)
	base := m.NewSequenceIn(arena, nil, 0)
	base.Prefill(divDoc, nil)
	snap := base.Snapshot()
	base.Release()
	const forks = 8
	seqs := make([]*model.Sequence, forks)
	answer := workload.Doc(lc.Doc, qLen)
	for i := range seqs {
		seqs[i] = m.NewSequenceFrom(snap, nil, 0)
		seqs[i].Prefill(answer, nil)
	}
	cfg := m.Config()
	planes := int64(cfg.NLayers * cfg.NKVHeads)
	perCopyPages := int64((len(divDoc)+len(answer)+kvcache.DefaultPageTokens-1)/kvcache.DefaultPageTokens) * planes
	live := arena.LivePages()
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fork divergence: %d forks of a %d-token doc, %d-token divergent tails -> %d live pages vs %d for per-fork copies (%.1fx dedup)",
		forks, len(divDoc), len(answer), live, forks*perCopyPages,
		float64(forks*perCopyPages)/float64(live)))
	rep.AddMetric("fork_dedup_ratio", float64(forks*perCopyPages)/float64(live), "")
	for i := range seqs {
		seqs[i].Release()
	}
	snap.Release()
	return rep
}

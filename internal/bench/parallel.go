package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"clusterkv/internal/model"
	"clusterkv/internal/parallel"
	"clusterkv/internal/workload"
)

// RunParPrefill measures intra-op parallel prefill throughput: the same
// ModelCtx-token prompt is prefilled at worker-pool widths {1, 2, 4, 8}
// (capped at 2×NumCPU so the table reflects real hardware), reporting
// tokens/sec and speedup over the single-worker run, and verifying the
// determinism contract on the fly — the per-position logits of every width
// must be bit-identical to the serial ones.
func RunParPrefill(o Options) *Report {
	o = o.withDefaults()
	n := o.ModelCtx
	m := model.New(model.DefaultConfig())
	cfg := m.Config()
	dc := workload.DefaultDocConfig()
	dc.Seed = o.Seed
	prompt := workload.Doc(dc, n)

	widths := []int{1, 2, 4, 8}
	maxW := 2 * runtime.NumCPU()
	logitsAt := func(width int) ([]float32, float64) {
		pool := parallel.NewPool(width)
		old := parallel.SetDefault(pool)
		defer func() {
			parallel.SetDefault(old)
			pool.Close()
		}()
		logits := make([]float32, n*cfg.VocabSize)
		start := time.Now()
		seq := m.NewSequence(nil, 0)
		seq.Prefill(prompt, logits)
		elapsed := time.Since(start).Seconds()
		return logits, float64(n) / elapsed
	}

	rep := &Report{
		ID:      "parprefill",
		Title:   fmt.Sprintf("intra-op parallel prefill, %d-token prompt", n),
		Headers: []string{"workers", "tok/s", "speedup", "bit-identical"},
	}
	var serial []float32
	var serialRate float64
	for _, w := range widths {
		if w > maxW && w != 1 {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("width %d skipped: only %d CPUs visible", w, runtime.NumCPU()))
			continue
		}
		logits, rate := logitsAt(w)
		if w == 1 {
			serial, serialRate = logits, rate
			rep.Rows = append(rep.Rows, []string{"1", f1(rate), "1.00", "ref"})
			continue
		}
		identical := "yes"
		for i := range logits {
			if math.Float32bits(logits[i]) != math.Float32bits(serial[i]) {
				identical = fmt.Sprintf("NO (elem %d)", i)
				break
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", w), f1(rate), f2(rate / serialRate), identical,
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; speedups need free cores — determinism holds regardless",
			runtime.GOMAXPROCS(0), runtime.NumCPU()))
	return rep
}

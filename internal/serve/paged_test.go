package serve

import (
	"errors"
	"testing"
)

// exactVsWorstLoad is a shared-document QA load with long generations:
// worst-case admission must reserve prompt+MaxNewTokens up front, while
// exact page accounting needs only the prefill pages plus one page of decode
// headroom.
func exactVsWorstLoad(n, docLen, qLen, maxNew int) []Request {
	reqs := qaRequests(n, docLen, qLen, maxNew, nil)
	for i := range reqs {
		reqs[i].Budget = 0
	}
	return reqs
}

// TestExactAdmissionAdmitsLoadWorstCaseRefuses is the admission-policy
// acceptance lock: at the same KVBudget, the exact page accountant admits at
// least as many requests as worst-case reservation — and on a long-generation
// shared-doc load it serves requests the worst-case policy refuses outright
// (their up-front cost exceeds the whole budget, ErrTooLarge).
func TestExactAdmissionAdmitsLoadWorstCaseRefuses(t *testing.T) {
	m := testModel()
	const (
		nReqs  = 4
		docLen = 128
		qLen   = 8
		maxNew = 400
		budget = 350 // per-head slots: < qLen+maxNew+1, but > prefill pages + headroom
	)
	reqs := exactVsWorstLoad(nReqs, docLen, qLen, maxNew)

	run := func(worstCase bool) (completed, refused int) {
		e := NewEngine(m, Config{Workers: 1, MaxBatch: 4, KVBudget: budget, Seed: 1,
			WorstCaseAdmission: worstCase})
		defer e.Close()
		for _, r := range e.Run(reqs) {
			switch {
			case r.Err == nil:
				completed++
			case errors.Is(r.Err, ErrTooLarge):
				refused++
			default:
				t.Fatalf("unexpected error: %v", r.Err)
			}
		}
		return
	}

	worstCompleted, worstRefused := run(true)
	exactCompleted, exactRefused := run(false)

	if worstRefused == 0 {
		t.Fatalf("worst-case policy refused nothing (completed %d) — load does not discriminate", worstCompleted)
	}
	if exactRefused != 0 {
		t.Fatalf("exact accountant refused %d requests", exactRefused)
	}
	if exactCompleted < worstCompleted {
		t.Fatalf("exact admitted %d < worst-case %d", exactCompleted, worstCompleted)
	}
	if exactCompleted != nReqs {
		t.Fatalf("exact completed %d/%d", exactCompleted, nReqs)
	}
}

// TestExactAdmissionSharedPagesChargedOnce is the shared-prefix accounting
// regression (the TryReserve double-count fix): with every request forking
// one cached document, the accountant charges the prefix pages once — after
// the load drains, exactly the snapshot's pages stay charged, regardless of
// how many forks read them.
func TestExactAdmissionSharedPagesChargedOnce(t *testing.T) {
	m := testModel()
	planes := int64(m.Config().NLayers * m.Config().NKVHeads)
	const docLen = 128 // exactly 2 default pages
	doc := testDoc(21, docLen)
	var reqs []Request
	for i := 0; i < 6; i++ {
		prompt := append(append([]int{}, doc...), testDoc(uint64(300+i), 8)...)
		reqs = append(reqs, Request{Prompt: prompt, SharedPrefixLen: docLen, MaxNewTokens: 4})
	}

	e := NewEngine(m, Config{Workers: 2, MaxBatch: 4, KVBudget: 4096, Seed: 1})
	for i, r := range e.Run(reqs) {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	pageTokens := int64(e.Arena().PageTokens())
	prefixPages := int64((docLen + int(pageTokens) - 1) / int(pageTokens))
	wantRaw := prefixPages * pageTokens * planes
	if used := e.Accountant().Used(); used != wantRaw {
		t.Fatalf("post-drain charge = %d raw slots, want the cached prefix alone = %d", used, wantRaw)
	}
	if live := e.Arena().LivePages(); live != prefixPages*planes {
		t.Fatalf("live pages = %d, want %d (snapshot only)", live, prefixPages*planes)
	}
	e.Close()
	if used := e.Accountant().Used(); used != 0 {
		t.Fatalf("leaked %d raw slots after Close", used)
	}
	if live := e.Arena().LivePages(); live != 0 {
		t.Fatalf("leaked %d live pages after Close", live)
	}
}

// TestExactAdmissionOversized: a prompt whose prefill pages alone exceed the
// budget still fails fast under exact accounting.
func TestExactAdmissionOversized(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, KVBudget: 32, Seed: 1})
	defer e.Close()
	resp := e.Submit(Request{Prompt: testDoc(1, 512), MaxNewTokens: 4}).Wait()
	if !errors.Is(resp.Err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", resp.Err)
	}
}

// TestExactAdmissionHonorsSelectorBudget: a budgeted compressed tenant
// whose prompt pages exceed the KV budget must still admit (its *device*
// residency is bounded by Budget; the extra pages are simulated host
// memory) — exact admission accepts a superset of the worst-case policy at
// every configuration.
func TestExactAdmissionHonorsSelectorBudget(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, KVBudget: 300, Seed: 1})
	defer e.Close()
	// 512-token prompt -> ~9 pages = 576 per-head slots of arena memory,
	// far over the 300-slot budget; the selector keeps only 64 device-side.
	resp := e.Submit(Request{Prompt: testDoc(2, 512), MaxNewTokens: 4, Budget: 64,
		NewSelector: clusterSel}).Wait()
	if resp.Err != nil {
		t.Fatalf("budgeted long-prompt request refused under exact admission: %v", resp.Err)
	}
	if resp.KVReserved != 64 {
		t.Fatalf("admission hold = %d, want the selector budget 64", resp.KVReserved)
	}
	// A sub-page budget keeps admitting small unbudgeted requests too.
	e2 := NewEngine(m, Config{Workers: 1, KVBudget: 32, Seed: 1})
	defer e2.Close()
	if resp := e2.Submit(Request{Prompt: testDoc(3, 10), MaxNewTokens: 4}).Wait(); resp.Err != nil {
		t.Fatalf("sub-page budget refused a tiny request: %v", resp.Err)
	}
}

// TestExactAdmissionSerialisesUnderTightBudget mirrors the worst-case
// admission-control test under exact accounting: a budget that fits one
// stream's pages serialises the streams without failing any, and the sampled
// high-water mark respects the (page-rounded) budget.
func TestExactAdmissionSerialisesUnderTightBudget(t *testing.T) {
	m := testModel()
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{
			Prompt:       testDoc(uint64(i), 48),
			MaxNewTokens: 4,
			// Unbudgeted: 48+1+4 = 53 tokens -> one 64-token page per plane.
		})
	}
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 8, KVBudget: 100, Seed: 1})
	resps := e.Run(reqs)
	mx := e.Metrics()
	e.Close()

	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if mx.KVPeak > 100 {
		t.Fatalf("KV peak %d exceeded budget", mx.KVPeak)
	}
	// One page per plane per stream; two streams never fit 100 slots, so
	// admissions are strictly ordered.
	for i := 1; i < len(resps); i++ {
		if resps[i].AdmitRound <= resps[i-1].AdmitRound {
			t.Fatalf("requests %d and %d overlapped under exclusive budget", i-1, i)
		}
	}
	if mx.KVUsed != 0 {
		t.Fatalf("KV still charged after drain: %d", mx.KVUsed)
	}
}

// TestExactAdmissionMetrics checks the per-head unit reporting of the exact
// accountant: capacity round-trips the config, the peak is positive and
// bounded, and a completed load leaves only the cached prefix charged.
func TestExactAdmissionMetrics(t *testing.T) {
	m := testModel()
	reqs := qaRequests(4, 96, 8, 5, clusterSel)
	e := NewEngine(m, Config{Workers: 2, MaxBatch: 2, KVBudget: 4096, Seed: 1})
	e.Run(reqs)
	mx := e.Metrics()
	if mx.KVCapacity != 4096 {
		t.Fatalf("capacity = %d, want 4096 per-head slots", mx.KVCapacity)
	}
	// The cached 96-token document spans two pages -> 128 per-head slots.
	if mx.KVUsed != 128 {
		t.Fatalf("cached prefix charge = %d per-head slots, want 128", mx.KVUsed)
	}
	if mx.KVPeak < mx.KVUsed || mx.KVPeak > 4096 {
		t.Fatalf("KV peak = %d", mx.KVPeak)
	}
	e.Close()
	if used := e.Metrics().KVUsed; used != 0 {
		t.Fatalf("KV charged after close: %d", used)
	}
}

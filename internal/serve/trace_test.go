package serve

import (
	"runtime"
	"strings"
	"testing"

	"clusterkv/internal/obs"
)

// TestEngineDeterminismWithTraceEnabled is the observability contract's
// headline lock: attaching the event tracer must not perturb the engine's
// deterministic schedule. A traced run is compared against the untraced
// fingerprint at the serial schedule, at full parallelism, and in the
// two-tier spill configuration — identical tokens, rounds and counters.
func TestEngineDeterminismWithTraceEnabled(t *testing.T) {
	reqs := loadRequests(t)
	twoTier := func(c *Config) { c.KVBudget = 512; c.HostBudget = 4096 }

	cases := []struct {
		name           string
		procs, workers int
		mutate         []func(*Config)
	}{
		{"serial", 1, 1, nil},
		{"parallel", runtime.NumCPU(), runtime.NumCPU(), nil},
		{"two-tier/serial", 1, 1, []func(*Config){twoTier}},
		{"two-tier/parallel", runtime.NumCPU(), runtime.NumCPU(), []func(*Config){twoTier}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runEngineAt(t, tc.procs, tc.workers, reqs, tc.mutate...)

			tracer := obs.NewTracer(0)
			withTrace := append(append([]func(*Config){}, tc.mutate...),
				func(c *Config) { c.Trace = tracer.Recorder(0) })
			traced := runEngineAt(t, tc.procs, tc.workers, reqs, withTrace...)

			if d := base.diff(traced); d != "" {
				t.Fatalf("traced run differs from untraced: %s", d)
			}

			// The trace must actually have observed the run, with the event
			// stream structurally consistent with the fingerprint.
			counts := map[obs.EventType]int64{}
			for _, ev := range tracer.Events() {
				counts[ev.Type]++
				if ev.Replica != 0 {
					t.Fatalf("event %s stamped replica %d, want 0", ev.Type, ev.Replica)
				}
			}
			if counts[obs.EvRoundBegin] != traced.rounds {
				t.Fatalf("%d round-begin events, metrics report %d rounds",
					counts[obs.EvRoundBegin], traced.rounds)
			}
			if counts[obs.EvRoundEnd] != traced.rounds {
				t.Fatalf("%d round-end events, want %d", counts[obs.EvRoundEnd], traced.rounds)
			}
			if got := counts[obs.EvAdmit]; got != int64(len(reqs)) {
				t.Fatalf("%d admit events, want %d", got, len(reqs))
			}
			if got := counts[obs.EvRetire]; got != int64(len(reqs)) {
				t.Fatalf("%d retire events, want %d", got, len(reqs))
			}
			if tracer.Dropped() != 0 {
				t.Fatalf("default ring dropped %d events on a small run", tracer.Dropped())
			}
		})
	}
}

// TestEngineTraceRepeatsExactly locks trace-stream reproducibility for the
// round-scoped scheduler events: two traced runs of the same load produce the
// same round-clock event sequence. (Transfer and prefetch events ride the
// async runtime, whose batching and land/drop split vary with background-
// worker interleaving, so they are excluded; the schedule itself is already
// locked above.)
func TestEngineTraceRepeatsExactly(t *testing.T) {
	reqs := loadRequests(t)
	run := func() []obs.Event {
		tracer := obs.NewTracer(0)
		runEngineAt(t, 1, 1, reqs, func(c *Config) { c.Trace = tracer.Recorder(0) })
		var sched []obs.Event
		for _, ev := range tracer.Events() {
			switch ev.Type {
			case obs.EvTransferStart, obs.EvTransferComplete,
				obs.EvPrefetchIssue, obs.EvPrefetchLand, obs.EvPrefetchDrop:
			default:
				sched = append(sched, ev)
			}
		}
		return sched
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLatencyStatsEmptyDistribution guards the n=0 formatting path: an empty
// distribution must print as "no samples", not as zero-valued percentiles,
// and a zero-valued Metrics snapshot must render NaN-free.
func TestLatencyStatsEmptyDistribution(t *testing.T) {
	var l LatencyStats
	if got := l.String(); got != "n=0" {
		t.Fatalf("empty LatencyStats prints %q, want \"n=0\"", got)
	}
	s := Metrics{}.String()
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("empty Metrics snapshot renders NaN/Inf:\n%s", s)
	}
	if !strings.Contains(s, "ttft:      n=0") {
		t.Fatalf("empty snapshot must show n=0 latencies:\n%s", s)
	}
}

// TestTransferOverlapCountersConcurrentRounds runs the two-tier async engine
// at full parallelism and checks the Overlap telemetry invariants that must
// hold under any interleaving of the background transfer worker with
// concurrent engine workers (run under -race in the transfer lane).
func TestTransferOverlapCountersConcurrentRounds(t *testing.T) {
	reqs := loadRequests(t)
	fp := runEngineAt(t, runtime.NumCPU(), runtime.NumCPU(), reqs, func(c *Config) {
		c.KVBudget = 512
		c.HostBudget = 4096
		c.XferSecPerPage = 1e-6
	})
	if fp.completed != uint64(len(reqs)) {
		t.Fatalf("%d completed, want %d", fp.completed, len(reqs))
	}
	eng := NewEngine(testModel(), Config{
		Workers: runtime.NumCPU(), MaxBatch: 4, Seed: 7,
		KVBudget: 512, HostBudget: 4096, XferSecPerPage: 1e-6,
	})
	eng.Run(reqs)
	eng.Close()
	tr := eng.Metrics().Transfer
	if tr.Transfers <= 0 || tr.Pages <= 0 {
		t.Fatalf("two-tier run moved nothing: %+v", tr)
	}
	if tr.ExposedSec < 0 || tr.BusySec < 0 || tr.ExposedSec > tr.BusySec+1e-12 {
		t.Fatalf("exposed %.9f exceeds busy %.9f", tr.ExposedSec, tr.BusySec)
	}
	if tr.HiddenSec() < 0 || tr.HiddenFrac() < 0 || tr.HiddenFrac() > 1 {
		t.Fatalf("hidden out of range: sec=%v frac=%v", tr.HiddenSec(), tr.HiddenFrac())
	}
	if tr.PrefetchHits > tr.PrefetchedPages {
		t.Fatalf("prefetch hits %d exceed prefetched pages %d", tr.PrefetchHits, tr.PrefetchedPages)
	}
	if r := tr.PrefetchHitRate(); r < 0 || r > 1 {
		t.Fatalf("prefetch hit rate %v out of [0,1]", r)
	}
}

// TestTracePrefixEvictStampsRound locks the eviction event's round stamp: an
// engine under enough budget pressure to evict cached prefixes must emit one
// EvPrefixEvict per metrics-counted eviction, every one carrying the scheduler
// round it happened in (the event used to be emitted round-less, which made
// eviction timing unreconstructable from a trace).
func TestTracePrefixEvictStampsRound(t *testing.T) {
	reqs := conversationRequests()
	tracer := obs.NewTracer(0)
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 2, Seed: 7,
		PageTokens: 16,
		KVBudget:   500, // tight enough that admitting later turns evicts earlier entries
		Trace:      tracer.Recorder(0),
	})
	for _, r := range eng.Run(reqs) {
		if r.Err != nil {
			t.Fatalf("request failed under eviction pressure: %v", r.Err)
		}
	}
	m := eng.Metrics()
	eng.Close()
	if m.PrefixEvicted == 0 {
		t.Fatalf("load did not trigger any prefix eviction; tighten the budget:\n%s", m)
	}
	var evicts uint64
	for _, ev := range tracer.Events() {
		if ev.Type != obs.EvPrefixEvict {
			continue
		}
		evicts++
		if ev.Round < 1 {
			t.Fatalf("EvPrefixEvict without a round stamp: %+v", ev)
		}
	}
	if evicts != m.PrefixEvicted {
		t.Fatalf("%d evict events, metrics counted %d", evicts, m.PrefixEvicted)
	}
}

package serve

import (
	"testing"

	"clusterkv/internal/obs"
	"clusterkv/internal/rng"
	"clusterkv/internal/workload"
)

// nestedRequests converts a nested-prefix session load (multi-turn chat,
// agentic re-entry, templated RAG) into engine requests matched to testModel's
// vocabulary.
func nestedRequests(load []workload.QARequest) []Request {
	reqs := make([]Request, len(load))
	for i, q := range load {
		reqs[i] = Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          64,
			NewSelector:     clusterSel,
		}
	}
	return reqs
}

func conversationRequests() []Request {
	cc := workload.DefaultConversationConfig()
	cc.Doc.VocabSize = 128
	cc.Doc.NTopics = 8
	cc.Doc.Seed = 41
	return nestedRequests(workload.ConversationLoad(cc))
}

// TestRadixNestedPrefixReuse is the tentpole's headline behaviour lock: on a
// multi-turn conversation load — whose declared prefixes grow turn over turn,
// so a flat exact-match cache never hits — the radix cache must (a) produce
// token streams identical to the flat cache (reuse never changes tokens) and
// (b) prefill strictly fewer tokens by forking the longest page-aligned cached
// ancestor instead of recomputing it.
func TestRadixNestedPrefixReuse(t *testing.T) {
	reqs := conversationRequests()

	run := func(flat bool) ([]Response, Metrics, *Engine) {
		eng := NewEngine(testModel(), Config{
			Workers: 2, MaxBatch: 4, Seed: 7,
			PageTokens:      16,
			FlatPrefixCache: flat,
		})
		resps := eng.Run(reqs)
		m := eng.Metrics()
		eng.Close()
		return resps, m, eng
	}
	radixResps, radixM, radixEng := run(false)
	flatResps, flatM, _ := run(true)

	for i := range reqs {
		if radixResps[i].Err != nil || flatResps[i].Err != nil {
			t.Fatalf("request %d failed: radix=%v flat=%v", i, radixResps[i].Err, flatResps[i].Err)
		}
		if !sameTokens(radixResps[i].Tokens, flatResps[i].Tokens) {
			t.Fatalf("request %d: radix tokens %v differ from flat %v",
				i, radixResps[i].Tokens, flatResps[i].Tokens)
		}
		if radixResps[i].PrefixReusedTokens < flatResps[i].PrefixReusedTokens {
			t.Fatalf("request %d: radix reused %d tokens, flat reused %d",
				i, radixResps[i].PrefixReusedTokens, flatResps[i].PrefixReusedTokens)
		}
	}
	if radixM.PrefillTokens >= flatM.PrefillTokens {
		t.Fatalf("radix prefilled %d tokens, flat %d: nested load saved nothing",
			radixM.PrefillTokens, flatM.PrefillTokens)
	}
	if radixM.PrefixPartialHits == 0 {
		t.Fatalf("radix run recorded no partial hits on a nested load:\n%s", radixM)
	}
	if radixM.PrefixReusedTokens <= flatM.PrefixReusedTokens {
		t.Fatalf("radix reused %d tokens total, flat %d",
			radixM.PrefixReusedTokens, flatM.PrefixReusedTokens)
	}
	// Everything must drain: no page leaks through snapshot forks.
	if live := radixEng.Arena().LivePages(); live != 0 {
		t.Fatalf("radix engine leaked %d arena pages after Close", live)
	}
	if used := radixEng.Accountant().Used(); used != 0 {
		t.Fatalf("radix engine leaked %d accounted slots after Close", used)
	}
}

// TestRadixAgenticAndRAGLoads runs the remaining two nested-load generators
// through the radix engine and checks the reuse the workload shapes promise:
// agentic re-entry reuses (nearly) the whole previous prompt; templated RAG
// reuses at least the shared template across requests. Tokens must match the
// flat cache on both.
func TestRadixAgenticAndRAGLoads(t *testing.T) {
	ac := workload.DefaultAgenticConfig()
	ac.Doc.VocabSize = 128
	ac.Doc.NTopics = 8
	ac.Doc.Seed = 42
	rc := workload.DefaultRAGConfig()
	rc.Doc.VocabSize = 128
	rc.Doc.NTopics = 8
	rc.Doc.Seed = 43
	rc.ChunkLen = 48
	rc.NRequests = 8
	for name, load := range map[string][]workload.QARequest{
		"agentic": workload.AgenticLoad(ac),
		"rag":     workload.RAGLoad(rc),
	} {
		reqs := nestedRequests(load)
		run := func(flat bool) ([]Response, Metrics) {
			eng := NewEngine(testModel(), Config{
				Workers: 2, MaxBatch: 4, Seed: 7,
				PageTokens:      16,
				FlatPrefixCache: flat,
			})
			defer eng.Close()
			return eng.Run(reqs), eng.Metrics()
		}
		radixResps, radixM := run(false)
		flatResps, flatM := run(true)
		for i := range reqs {
			if !sameTokens(radixResps[i].Tokens, flatResps[i].Tokens) {
				t.Fatalf("%s request %d: radix tokens differ from flat", name, i)
			}
		}
		if radixM.PrefillTokens >= flatM.PrefillTokens {
			t.Fatalf("%s: radix prefilled %d tokens, flat %d",
				name, radixM.PrefillTokens, flatM.PrefillTokens)
		}
	}
}

// TestRadixLookupReusesLongestPrefixProperty is the satellite property test:
// over random families of nested prompts served one at a time, the engine's
// reported reuse for every request must equal the oracle — the deepest
// page-aligned common prefix with any earlier distinct prefix, or that whole
// earlier prefix when it is a strict token-prefix of the probe — and the run
// must not leak a single arena page.
func TestRadixLookupReusesLongestPrefixProperty(t *testing.T) {
	const (
		pageTokens = 16
		vocab      = 128
	)
	alignedFloor := func(n int) int { return n / pageTokens * pageTokens }
	lcp := func(a, b []int) int {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		return n
	}

	for _, seed := range []uint64{11, 29, 61} {
		r := rng.New(seed)
		// Random prompt family: a few root prefixes, each request either
		// extends a previous request's prefix (nesting), repeats one exactly,
		// or starts fresh.
		var prefixes [][]int
		randRun := func(n int) []int {
			run := make([]int, n)
			for i := range run {
				run[i] = r.Intn(vocab)
			}
			return run
		}
		for len(prefixes) < 18 {
			var p []int
			switch {
			case len(prefixes) == 0 || r.Float64() < 0.25:
				p = randRun(pageTokens + r.Intn(4*pageTokens))
			case r.Float64() < 0.2:
				p = append([]int(nil), prefixes[r.Intn(len(prefixes))]...)
			default:
				base := prefixes[r.Intn(len(prefixes))]
				// Extend from a random (not necessarily aligned) cut of an
				// earlier prefix so partial page overlap happens too.
				cut := 1 + r.Intn(len(base))
				p = append(append([]int(nil), base[:cut]...), randRun(1+r.Intn(2*pageTokens))...)
			}
			prefixes = append(prefixes, p)
		}
		reqs := make([]Request, len(prefixes))
		for i, p := range prefixes {
			reqs[i] = Request{
				Prompt:          append(append([]int(nil), p...), randRun(1+r.Intn(8))...),
				SharedPrefixLen: len(p),
				MaxNewTokens:    2,
			}
		}

		// MaxBatch 1 serialises admission, so request i sees exactly the
		// entries requests 0..i-1 published (unlimited budget: no eviction).
		eng := NewEngine(testModel(), Config{Workers: 1, MaxBatch: 1, Seed: 3, PageTokens: pageTokens})
		resps := eng.Run(reqs)

		seen := [][]int{}
		for i, p := range prefixes {
			if resps[i].Err != nil {
				t.Fatalf("seed %d request %d: %v", seed, i, resps[i].Err)
			}
			oracle := 0
			for _, q := range seen {
				var reuse int
				switch {
				case len(q) <= len(p) && sameTokens(q, p[:len(q)]):
					reuse = len(q) // whole cached prefix is an ancestor
				default:
					reuse = alignedFloor(lcp(q, p))
				}
				if reuse > oracle {
					oracle = reuse
				}
			}
			if got := resps[i].PrefixReusedTokens; got != oracle {
				t.Fatalf("seed %d request %d: reused %d tokens, oracle %d (prefix len %d)",
					seed, i, got, oracle, len(p))
			}
			wantHit := oracle == len(p) && func() bool {
				for _, q := range seen {
					if sameTokens(q, p) {
						return true
					}
				}
				return false
			}()
			if resps[i].PrefixHit != wantHit {
				t.Fatalf("seed %d request %d: PrefixHit=%v, want %v", seed, i, resps[i].PrefixHit, wantHit)
			}
			seen = append(seen, p)
		}
		eng.Close()
		if live := eng.Arena().LivePages(); live != 0 {
			t.Fatalf("seed %d: %d arena pages leaked after Close", seed, live)
		}
		if used := eng.Accountant().Used(); used != 0 {
			t.Fatalf("seed %d: %d accounted slots leaked after Close", seed, used)
		}
	}
}

// TestPrefixEvictTieBreakSameRound is the eviction-determinism regression: two
// cache entries that went idle in the same round must evict in admission
// order (the map-iteration victim scan this replaces picked arbitrarily).
// Prefixes A and B are built in one round; pressure from C must evict A (the
// earlier admission), so a follow-up request on B still hits while a follow-up
// on A rebuilds.
func TestPrefixEvictTieBreakSameRound(t *testing.T) {
	mk := func(seed uint64) []int { return testDoc(seed, 32) }
	a, b, c := mk(21), mk(22), mk(23)
	req := func(prefix []int) Request {
		prompt := append(append([]int(nil), prefix...), testDoc(99, 8)...)
		return Request{Prompt: prompt, SharedPrefixLen: len(prefix), MaxNewTokens: 1}
	}
	tracer := obs.NewTracer(0)
	// Worst-case admission: entry cost = prefix len (32 each), request cost =
	// 8+1+1 = 10. Budget 100 fits building A and B together (2×42) and forces
	// exactly one eviction when C arrives (32+32+42 > 100).
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 2, Seed: 5,
		KVBudget:           100,
		WorstCaseAdmission: true,
		Trace:              tracer.Recorder(0),
	})
	defer eng.Close()
	resps := eng.Run([]Request{req(a), req(b), req(c), req(b), req(a)})
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if !resps[3].PrefixHit {
		t.Fatalf("B was evicted before A: same-round tie-break must evict the earlier admission")
	}
	if resps[4].PrefixHit {
		t.Fatalf("A survived C's pressure: expected A (earliest same-round idle entry) evicted")
	}
	evicts := 0
	for _, ev := range tracer.Events() {
		if ev.Type == obs.EvPrefixEvict {
			evicts++
			if ev.Round < 1 {
				t.Fatalf("EvPrefixEvict missing its round: %+v", ev)
			}
		}
	}
	if evicts == 0 {
		t.Fatalf("no EvPrefixEvict events recorded under pressure")
	}
}

// TestFlatCacheCollisionRemove is the probing-regression unit test: colliding
// entries coexist in one bucket, and removing one never orphans or duplicates
// the others (the linear-probing scheme this replaces broke its probe chain on
// delete, stranding collided entries unreachable).
func TestFlatCacheCollisionRemove(t *testing.T) {
	collide := func([]int) uint64 { return 42 }
	c := newFlatCache(collide)
	e1 := &prefixEntry{tokens: []int{1, 2}, ready: true, seq: 0}
	e2 := &prefixEntry{tokens: []int{3, 4}, ready: true, seq: 1}
	e3 := &prefixEntry{tokens: []int{5, 6}, ready: true, seq: 2}
	for _, e := range []*prefixEntry{e1, e2, e3} {
		c.insert(e)
	}
	c.remove(e2)
	if lk := c.lookup(e1.tokens); lk.exact != e1 {
		t.Fatalf("removing a collided sibling lost e1: %+v", lk)
	}
	if lk := c.lookup(e3.tokens); lk.exact != e3 {
		t.Fatalf("removing a collided sibling lost e3: %+v", lk)
	}
	if lk := c.lookup(e2.tokens); lk.exact != nil || lk.wait {
		t.Fatalf("removed entry still found: %+v", lk)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	c.remove(e1)
	c.remove(e3)
	if c.len() != 0 || len(c.buckets) != 0 {
		t.Fatalf("cache not empty after removing everything: len=%d buckets=%d", c.len(), len(c.buckets))
	}
}

// TestEngineFlatCacheForcedCollisions drives a live engine whose flat cache
// hashes every prefix to one bucket: distinct prefixes must still build, hit
// and evict independently.
func TestEngineFlatCacheForcedCollisions(t *testing.T) {
	mk := func(seed uint64) []int { return testDoc(seed, 24) }
	req := func(prefix []int) Request {
		prompt := append(append([]int(nil), prefix...), testDoc(77, 6)...)
		return Request{Prompt: prompt, SharedPrefixLen: len(prefix), MaxNewTokens: 2}
	}
	a, b := mk(31), mk(32)
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 1, Seed: 9,
		FlatPrefixCache: true,
		testPrefixHash:  func([]int) uint64 { return 7 },
	})
	defer eng.Close()
	resps := eng.Run([]Request{req(a), req(b), req(a), req(b)})
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if resps[0].PrefixHit || resps[1].PrefixHit {
		t.Fatalf("cold builds reported hits: %v %v", resps[0].PrefixHit, resps[1].PrefixHit)
	}
	if !resps[2].PrefixHit || !resps[3].PrefixHit {
		t.Fatalf("colliding prefixes must both stay hittable: a=%v b=%v",
			resps[2].PrefixHit, resps[3].PrefixHit)
	}
}

// TestPageEstimateAlignedPrefix locks the admission-estimate bugfix: a
// page-aligned shared prefix forks without copying any tail page, so the
// estimate must not charge one; an unaligned fork still must.
func TestPageEstimateAlignedPrefix(t *testing.T) {
	eng := NewEngine(testModel(), Config{Workers: 1, PageTokens: 16})
	defer eng.Close()
	planes := int64(4) // testModel: 2 layers × 2 KV heads
	page := int64(16)

	// Hit path (share, not builds): prompt 37+1 tokens, 32 reused, headroom
	// capped at one page → 6+16 = 22 marginal tokens.
	r := &Request{Prompt: make([]int, 37), SharedPrefixLen: 32, MaxNewTokens: 40}
	if got, want := eng.pageEstimate(r, true, false, 32), 2*page*planes; got != want {
		t.Fatalf("aligned hit estimate %d, want %d (no COW tail page)", got, want)
	}
	r.SharedPrefixLen = 30
	if got, want := eng.pageEstimate(r, true, false, 30), 3*page*planes; got != want {
		t.Fatalf("unaligned hit estimate %d, want %d (one COW tail page)", got, want)
	}

	// Builder path: reuse is the forked ancestor's depth; only an unaligned
	// ancestor fork pays a tail page (on top of the task's own fork charge).
	r.SharedPrefixLen = 32
	if got, want := eng.pageEstimate(r, true, true, 16), 3*page*planes; got != want {
		t.Fatalf("aligned builder estimate %d, want %d", got, want)
	}
	if got, want := eng.pageEstimate(r, true, true, 0), 4*page*planes; got != want {
		// Cold build: 38+16 tokens → 4 pages, aligned fork, no tails.
		t.Fatalf("cold builder estimate %d, want %d", got, want)
	}
}

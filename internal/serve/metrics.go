package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clusterkv/internal/metrics"
	"clusterkv/internal/obs"
)

// LatencyStats condenses a latency distribution for reporting. All values
// are seconds.
type LatencyStats struct {
	N                   int
	Mean, P50, P95, Max float64
}

func summarize(s *metrics.Summary) LatencyStats {
	return LatencyStats{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Quantile(0.5),
		P95:  s.Quantile(0.95),
		Max:  s.Max(),
	}
}

func (l LatencyStats) String() string {
	if l.N == 0 {
		// An empty distribution has no quantiles; printing the zero-valued
		// percentiles would read as "0ms latency" rather than "no samples".
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms max=%.2fms",
		l.N, l.Mean*1e3, l.P50*1e3, l.P95*1e3, l.Max*1e3)
}

// fill publishes the distribution into reg as one gauge per statistic,
// discriminated by a stat label.
func (l LatencyStats) fill(reg *obs.Registry, name string, labels []obs.Label) {
	with := func(stat string) []obs.Label {
		return append(append([]obs.Label(nil), labels...), obs.L("stat", stat))
	}
	reg.Gauge(name, with("count")...).Set(float64(l.N))
	reg.Gauge(name, with("mean")...).Set(l.Mean)
	reg.Gauge(name, with("p50")...).Set(l.P50)
	reg.Gauge(name, with("p95")...).Set(l.P95)
	reg.Gauge(name, with("max")...).Set(l.Max)
}

// Metrics is a point-in-time snapshot of the engine's aggregate counters.
type Metrics struct {
	// Request counters.
	Submitted, Completed, Failed uint64
	// Prefix-cache counters. Hits and misses count shared-prefix requests
	// only; requests without a shared prefix count in neither.
	// PrefixPartialHits is the subset of misses whose builder reused a cached
	// ancestor's pages (radix cache), and PrefixReusedTokens the total prompt
	// tokens served from cached pages across full hits and partial reuse.
	PrefixHits, PrefixMisses, PrefixEvicted uint64
	PrefixPartialHits                       uint64
	PrefixReusedTokens                      int64
	// TokensGenerated counts sampled tokens across completed and in-flight
	// retired work; PrefillTokens counts tokens actually prefilled (prefix
	// hits skip their shared part).
	TokensGenerated, PrefillTokens int64
	// Rounds is the number of scheduler rounds executed.
	Rounds int64
	// Elapsed spans first admission to last retirement.
	Elapsed time.Duration
	// KV accounting, in per-head token slots (see kvcache.Accountant) in
	// both admission modes. Under exact page accounting KVUsed is the live
	// deduplicated page footprint and KVPeak its high-water mark sampled at
	// round barriers; under WorstCaseAdmission they are the reservation
	// gauge and its instantaneous peak, as in the pre-paged engine.
	KVUsed, KVPeak, KVCapacity int64
	// Two-tier gauges. Device used/peak are sampled at round barriers after
	// the spill pass, so KVDevicePeak is what the device tier actually had
	// to hold; without Config.HostBudget nothing ever spills, so they
	// mirror KVUsed/KVPeak and the host/spill gauges stay zero. KVSpilled
	// is the cumulative slots moved device→host by cold spills.
	KVDeviceUsed, KVDevicePeak             int64
	KVHostUsed, KVHostPeak, KVHostCapacity int64
	KVSpilled                              int64
	// Batched-decode telemetry (Config.BatchDecode). BatchRounds counts
	// rounds that ran a ≥2-stream decode cohort through the batched decoder;
	// DecodeStreamsBatched sums cohort sizes over those rounds, while
	// DecodeStreamsSolo counts decode steps that ran per-stream (cohort of
	// one, or the knob off — prefill steps count in neither). CohortSize is
	// the cohort-size distribution over batched rounds, in streams.
	BatchRounds                             int64
	DecodeStreamsBatched, DecodeStreamsSolo int64
	CohortSize                              LatencyStats
	// Quantized-decode telemetry (Config.DecodeKVBits): page runs the
	// attention kernels of retired sequences dispatched to the int8 path vs
	// the float32 fallback (pages shared at conversion time, decode tails).
	// Both stay zero on the exact path.
	KVQuantRuns, KVFloatRuns int64
	// Transfer is the async transfer runtime's overlap telemetry: modeled
	// channel-busy time vs the portion compute actually waited out, plus
	// layer-ahead prefetch page counters.
	Transfer metrics.Overlap
	// Latency distributions.
	TTFT, TokenLatency, QueueWait LatencyStats
	// Scheduler gauges, averaged per round.
	MeanQueueDepth, MeanBatchOccupancy float64
}

// Throughput returns aggregate generated tokens per second over Elapsed.
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.TokensGenerated) / m.Elapsed.Seconds()
}

// String formats the snapshot as a small report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d submitted, %d completed, %d failed\n",
		m.Submitted, m.Completed, m.Failed)
	fmt.Fprintf(&b, "tokens:   %d generated, %d prefilled, %.1f tok/s aggregate\n",
		m.TokensGenerated, m.PrefillTokens, m.Throughput())
	fmt.Fprintf(&b, "prefix cache: %d hits, %d misses (%d partial), %d evicted, %d tokens reused\n",
		m.PrefixHits, m.PrefixMisses, m.PrefixPartialHits, m.PrefixEvicted, m.PrefixReusedTokens)
	fmt.Fprintf(&b, "kv slots: %d used, %d peak, %d capacity\n",
		m.KVUsed, m.KVPeak, m.KVCapacity)
	if m.KVHostCapacity > 0 {
		fmt.Fprintf(&b, "kv tiers: device peak %d/%d, host peak %d/%d, %d slots spilled\n",
			m.KVDevicePeak, m.KVCapacity, m.KVHostPeak, m.KVHostCapacity, m.KVSpilled)
	}
	if m.BatchRounds > 0 || m.DecodeStreamsSolo > 0 {
		fmt.Fprintf(&b, "decode batch: %d batched rounds, %d batched streams, %d solo, cohort mean %.1f p50 %.0f max %.0f\n",
			m.BatchRounds, m.DecodeStreamsBatched, m.DecodeStreamsSolo,
			m.CohortSize.Mean, m.CohortSize.P50, m.CohortSize.Max)
	}
	if total := m.KVQuantRuns + m.KVFloatRuns; total > 0 {
		fmt.Fprintf(&b, "kv quant: %d int8 page runs, %d f32 page runs (%.0f%% quantized)\n",
			m.KVQuantRuns, m.KVFloatRuns, float64(m.KVQuantRuns)/float64(total)*100)
	}
	if m.Transfer.Transfers > 0 {
		fmt.Fprintf(&b, "transfers: %d moves, %d pages, busy %.1fms, exposed %.1fms, hidden %.1fms (%.0f%%)\n",
			m.Transfer.Transfers, m.Transfer.Pages,
			m.Transfer.BusySec*1e3, m.Transfer.ExposedSec*1e3,
			m.Transfer.HiddenSec()*1e3, m.Transfer.HiddenFrac()*100)
		if m.Transfer.PrefetchedPages > 0 {
			fmt.Fprintf(&b, "prefetch:  %d pages issued, %d hit (%.0f%% hit rate), %d dropped\n",
				m.Transfer.PrefetchedPages, m.Transfer.PrefetchHits,
				m.Transfer.PrefetchHitRate()*100, m.Transfer.PrefetchDropped)
		}
	}
	fmt.Fprintf(&b, "scheduler: %d rounds, mean queue depth %.2f, mean batch %.2f\n",
		m.Rounds, m.MeanQueueDepth, m.MeanBatchOccupancy)
	fmt.Fprintf(&b, "ttft:      %s\n", m.TTFT)
	fmt.Fprintf(&b, "token lat: %s\n", m.TokenLatency)
	fmt.Fprintf(&b, "queue wait: %s\n", m.QueueWait)
	return b.String()
}

// FillRegistry publishes the snapshot into reg under the clusterkv_serve_*
// namespace: monotone counters re-state cumulative totals (obs.Counter.Set is
// max-keeping, so repeated fills are safe), point-in-time values become
// gauges, and latency distributions become stat-labeled gauge families. The
// snapshot is a *view* over Metrics — filling reads nothing back and can run
// on any goroutine at any cadence.
func (m Metrics) FillRegistry(reg *obs.Registry, labels ...obs.Label) {
	cnt := func(name string, v int64) { reg.Counter(name, labels...).Set(v) }
	gauge := func(name string, v float64) { reg.Gauge(name, labels...).Set(v) }
	cnt("clusterkv_serve_requests_submitted_total", int64(m.Submitted))
	cnt("clusterkv_serve_requests_completed_total", int64(m.Completed))
	cnt("clusterkv_serve_requests_failed_total", int64(m.Failed))
	cnt("clusterkv_serve_prefix_hits_total", int64(m.PrefixHits))
	cnt("clusterkv_serve_prefix_misses_total", int64(m.PrefixMisses))
	cnt("clusterkv_serve_prefix_evicted_total", int64(m.PrefixEvicted))
	cnt("clusterkv_serve_prefix_partial_hits_total", int64(m.PrefixPartialHits))
	cnt("clusterkv_serve_prefix_reused_tokens_total", m.PrefixReusedTokens)
	cnt("clusterkv_serve_tokens_generated_total", m.TokensGenerated)
	cnt("clusterkv_serve_prefill_tokens_total", m.PrefillTokens)
	cnt("clusterkv_serve_rounds_total", m.Rounds)
	cnt("clusterkv_serve_kv_spilled_slots_total", m.KVSpilled)
	cnt("clusterkv_serve_decode_batch_rounds_total", m.BatchRounds)
	cnt("clusterkv_serve_decode_batched_streams_total", m.DecodeStreamsBatched)
	cnt("clusterkv_serve_decode_solo_streams_total", m.DecodeStreamsSolo)
	cnt("clusterkv_serve_kv_quant_runs_total", m.KVQuantRuns)
	cnt("clusterkv_serve_kv_f32_runs_total", m.KVFloatRuns)
	gauge("clusterkv_serve_kv_used_slots", float64(m.KVUsed))
	gauge("clusterkv_serve_kv_peak_slots", float64(m.KVPeak))
	gauge("clusterkv_serve_kv_capacity_slots", float64(m.KVCapacity))
	gauge("clusterkv_serve_kv_device_used_slots", float64(m.KVDeviceUsed))
	gauge("clusterkv_serve_kv_device_peak_slots", float64(m.KVDevicePeak))
	gauge("clusterkv_serve_kv_host_used_slots", float64(m.KVHostUsed))
	gauge("clusterkv_serve_kv_host_peak_slots", float64(m.KVHostPeak))
	gauge("clusterkv_serve_kv_host_capacity_slots", float64(m.KVHostCapacity))
	gauge("clusterkv_serve_mean_queue_depth", m.MeanQueueDepth)
	gauge("clusterkv_serve_mean_batch_occupancy", m.MeanBatchOccupancy)
	gauge("clusterkv_serve_throughput_tok_per_sec", m.Throughput())
	cnt("clusterkv_xfer_transfers_total", m.Transfer.Transfers)
	cnt("clusterkv_xfer_pages_total", m.Transfer.Pages)
	gauge("clusterkv_xfer_busy_seconds", m.Transfer.BusySec)
	gauge("clusterkv_xfer_exposed_seconds", m.Transfer.ExposedSec)
	gauge("clusterkv_xfer_hidden_frac", m.Transfer.HiddenFrac())
	cnt("clusterkv_xfer_prefetched_pages_total", m.Transfer.PrefetchedPages)
	cnt("clusterkv_xfer_prefetch_hits_total", m.Transfer.PrefetchHits)
	cnt("clusterkv_xfer_prefetch_dropped_total", m.Transfer.PrefetchDropped)
	m.CohortSize.fill(reg, "clusterkv_serve_decode_cohort_streams", labels)
	m.TTFT.fill(reg, "clusterkv_serve_ttft_seconds", labels)
	m.TokenLatency.fill(reg, "clusterkv_serve_token_latency_seconds", labels)
	m.QueueWait.fill(reg, "clusterkv_serve_queue_wait_seconds", labels)
}

// FillRegistry publishes the engine's current Metrics snapshot plus the live
// arena gauges into reg.
func (e *Engine) FillRegistry(reg *obs.Registry, labels ...obs.Label) {
	e.Metrics().FillRegistry(reg, labels...)
	reg.Gauge("clusterkv_arena_live_pages", labels...).Set(float64(e.arena.LivePages()))
	reg.Gauge("clusterkv_arena_peak_pages", labels...).Set(float64(e.arena.PeakPages()))
}

// engineMetrics is the engine-internal accumulator.
type engineMetrics struct {
	submitted     atomic.Uint64
	prefixEvicted atomic.Uint64
	spilled       atomic.Int64
	// quantized-decode run counters, harvested from each sequence's
	// attention scratch at retirement (step workers run concurrently).
	quantRuns, floatRuns atomic.Int64
	// curQueued/curActive are the last round barrier's scheduler gauges,
	// exposed to routers through Engine.Occupancy (zeroed while idle).
	curQueued, curActive atomic.Int64

	mu                       sync.Mutex
	completed, failed        uint64
	prefixHits, prefixMisses uint64
	prefixPartial            uint64
	prefixReused             int64
	tokensOut, prefillTokens int64
	rounds                   int64
	// batched-decode counters (Config.BatchDecode), scheduler-only writes.
	batchRounds                 int64
	batchedStreams, soloStreams int64
	cohortSizes                 metrics.Summary
	kvPeak                      int64
	devPeak, hostPeak           int64
	queueDepth, batchOcc        metrics.Summary
	ttft, tokenLat, qwait       metrics.Summary
	firstAdmit, lastDone        time.Time
}

// observeKV records the accountant gauges sampled at a round barrier (after
// the spill pass), tracking deterministic round-granular high-water marks
// for the total footprint and both tiers.
func (x *engineMetrics) observeKV(used, devUsed, hostUsed int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if used > x.kvPeak {
		x.kvPeak = used
	}
	if devUsed > x.devPeak {
		x.devPeak = devUsed
	}
	if hostUsed > x.hostPeak {
		x.hostPeak = hostUsed
	}
}

func (x *engineMetrics) observeRound(queued, active int) {
	x.curQueued.Store(int64(queued))
	x.curActive.Store(int64(active))
	x.mu.Lock()
	defer x.mu.Unlock()
	x.rounds++
	x.queueDepth.Add(float64(queued))
	x.batchOcc.Add(float64(active))
}

// observeBatch records one round's decode-batching outcome: cohort is the
// batched cohort size (0 or 1 when the round fell back to per-stream, in
// which case that lone decode counts as solo).
func (x *engineMetrics) observeBatch(cohort, solo int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if cohort > 1 {
		x.batchRounds++
		x.batchedStreams += int64(cohort)
		x.cohortSizes.Add(float64(cohort))
	}
	x.soloStreams += int64(solo)
}

// observeRejected counts a request failed at validation, before it ever
// reached the scheduler, so Submitted == Completed + Failed holds.
func (x *engineMetrics) observeRejected() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.failed++
}

func (x *engineMetrics) observeAdmit(t *task) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.firstAdmit.IsZero() {
		x.firstAdmit = time.Now()
	}
	x.qwait.Add(t.resp.QueueWait.Seconds())
	if t.entry != nil {
		if t.builder {
			x.prefixMisses++
			if t.reuse > 0 {
				x.prefixPartial++
			}
		} else {
			x.prefixHits++
		}
		x.prefixReused += int64(t.resp.PrefixReusedTokens)
	}
}

func (x *engineMetrics) observeRetire(t *task, err error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if err != nil {
		x.failed++
	} else {
		x.completed++
	}
	x.tokensOut += int64(len(t.resp.Tokens))
	x.prefillTokens += int64(t.prefillN)
	if t.prefilled {
		x.ttft.Add(t.resp.TTFT.Seconds())
	}
	for _, l := range t.tokenLat {
		x.tokenLat.Add(l)
	}
	x.lastDone = time.Now()
}

// kvPeak picks the peak gauge for the active admission mode: the sampled
// round-barrier high-water under exact accounting (deterministic across
// worker interleavings), the accountant's instantaneous peak under
// worst-case reservations. The caller holds x.mu.
func (e *Engine) kvPeak(x *engineMetrics) int64 {
	if e.exact {
		return e.kvUnits(x.kvPeak)
	}
	return e.acct.Peak()
}

// Metrics returns a snapshot of the engine's aggregate metrics.
func (e *Engine) Metrics() Metrics {
	x := &e.mx
	x.mu.Lock()
	defer x.mu.Unlock()
	var elapsed time.Duration
	if !x.firstAdmit.IsZero() && x.lastDone.After(x.firstAdmit) {
		elapsed = x.lastDone.Sub(x.firstAdmit)
	}
	return Metrics{
		Submitted:            x.submitted.Load(),
		Completed:            x.completed,
		Failed:               x.failed,
		PrefixHits:           x.prefixHits,
		PrefixMisses:         x.prefixMisses,
		PrefixEvicted:        x.prefixEvicted.Load(),
		PrefixPartialHits:    x.prefixPartial,
		PrefixReusedTokens:   x.prefixReused,
		TokensGenerated:      x.tokensOut,
		PrefillTokens:        x.prefillTokens,
		Rounds:               x.rounds,
		Elapsed:              elapsed,
		BatchRounds:          x.batchRounds,
		DecodeStreamsBatched: x.batchedStreams,
		DecodeStreamsSolo:    x.soloStreams,
		CohortSize:           summarize(&x.cohortSizes),
		KVUsed:               e.kvUnits(e.acct.Used()),
		KVPeak:               e.kvPeak(x),
		KVCapacity:           e.kvUnits(e.acct.Capacity()),
		KVDeviceUsed:         e.kvUnits(e.acct.DeviceUsed()),
		KVDevicePeak:         e.kvUnits(x.devPeak),
		KVHostUsed:           e.kvUnits(e.acct.HostUsed()),
		KVHostPeak:           e.kvUnits(x.hostPeak),
		KVHostCapacity:       e.kvUnits(e.acct.HostCapacity()),
		KVSpilled:            e.kvUnits(x.spilled.Load()),
		KVQuantRuns:          x.quantRuns.Load(),
		KVFloatRuns:          x.floatRuns.Load(),
		Transfer:             e.rt.Stats(),
		TTFT:                 summarize(&x.ttft),
		TokenLatency:         summarize(&x.tokenLat),
		QueueWait:            summarize(&x.qwait),
		MeanQueueDepth:       x.queueDepth.Mean(),
		MeanBatchOccupancy:   x.batchOcc.Mean(),
	}
}

package serve

import (
	"fmt"
	"runtime"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/workload"
)

// engineRunFingerprint is everything about a full engine run that must be
// reproducible: per-request token streams, scheduling rounds, and the
// wall-clock-independent counters of the metrics snapshot.
type engineRunFingerprint struct {
	tokens     [][]int
	admitRound []int64
	doneRound  []int64
	prefixHit  []bool
	errs       []string

	submitted, completed, failed            uint64
	prefixHits, prefixMisses, prefixEvicted uint64
	prefixPartial                           uint64
	prefixReused                            int64
	tokensGenerated, prefillTokens          int64
	rounds                                  int64
	kvPeak                                  int64
}

// loadRequests turns a seeded workload.NewLoad into engine requests.
func loadRequests(t *testing.T) []Request {
	t.Helper()
	lc := workload.LoadConfig{
		Doc:          workload.DefaultDocConfig(),
		NDocs:        2,
		DocLen:       192,
		NRequests:    10,
		QuestionLen:  16,
		MaxNewTokens: 6,
	}
	lc.Doc.VocabSize = 128
	lc.Doc.NTopics = 8
	lc.Doc.Seed = 99
	load := workload.NewLoad(lc)
	reqs := make([]Request, len(load))
	for i, q := range load {
		reqs[i] = Request{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
			Budget:          64,
			NewSelector:     clusterSel,
			Temperature:     0.8, // exercise seeded sampling too
		}
	}
	return reqs
}

// runEngineAt runs the full load on a fresh engine with GOMAXPROCS and the
// shared intra-op pool both set to procs, restoring global state afterwards.
// Optional mutators adjust the engine config before it starts.
func runEngineAt(t *testing.T, procs, engineWorkers int, reqs []Request, mutate ...func(*Config)) engineRunFingerprint {
	t.Helper()
	oldProcs := runtime.GOMAXPROCS(procs)
	pool := parallel.NewPool(procs)
	oldPool := parallel.SetDefault(pool)
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		parallel.SetDefault(oldPool)
		pool.Close()
	}()

	cfg := Config{Workers: engineWorkers, MaxBatch: 4, KVBudget: 2048, Seed: 7}
	for _, m := range mutate {
		m(&cfg)
	}
	eng := NewEngine(testModel(), cfg)
	resps := eng.Run(reqs)
	eng.Close()

	fp := engineRunFingerprint{}
	for _, r := range resps {
		fp.tokens = append(fp.tokens, r.Tokens)
		fp.admitRound = append(fp.admitRound, r.AdmitRound)
		fp.doneRound = append(fp.doneRound, r.DoneRound)
		fp.prefixHit = append(fp.prefixHit, r.PrefixHit)
		if r.Err != nil {
			fp.errs = append(fp.errs, r.Err.Error())
		} else {
			fp.errs = append(fp.errs, "")
		}
	}
	m := eng.Metrics()
	fp.submitted, fp.completed, fp.failed = m.Submitted, m.Completed, m.Failed
	fp.prefixHits, fp.prefixMisses, fp.prefixEvicted = m.PrefixHits, m.PrefixMisses, m.PrefixEvicted
	fp.prefixPartial, fp.prefixReused = m.PrefixPartialHits, m.PrefixReusedTokens
	fp.tokensGenerated, fp.prefillTokens = m.TokensGenerated, m.PrefillTokens
	fp.rounds = m.Rounds
	fp.kvPeak = m.KVPeak
	return fp
}

func (a engineRunFingerprint) diff(b engineRunFingerprint) string {
	if len(a.tokens) != len(b.tokens) {
		return fmt.Sprintf("response count %d vs %d", len(a.tokens), len(b.tokens))
	}
	for i := range a.tokens {
		if len(a.tokens[i]) != len(b.tokens[i]) {
			return fmt.Sprintf("request %d: token count %d vs %d", i, len(a.tokens[i]), len(b.tokens[i]))
		}
		for j := range a.tokens[i] {
			if a.tokens[i][j] != b.tokens[i][j] {
				return fmt.Sprintf("request %d: token %d is %d vs %d", i, j, a.tokens[i][j], b.tokens[i][j])
			}
		}
		if a.admitRound[i] != b.admitRound[i] || a.doneRound[i] != b.doneRound[i] {
			return fmt.Sprintf("request %d: rounds (%d,%d) vs (%d,%d)",
				i, a.admitRound[i], a.doneRound[i], b.admitRound[i], b.doneRound[i])
		}
		if a.prefixHit[i] != b.prefixHit[i] {
			return fmt.Sprintf("request %d: prefix hit %v vs %v", i, a.prefixHit[i], b.prefixHit[i])
		}
		if a.errs[i] != b.errs[i] {
			return fmt.Sprintf("request %d: err %q vs %q", i, a.errs[i], b.errs[i])
		}
	}
	type counters struct {
		a, b uint64
		name string
	}
	for _, c := range []counters{
		{a.submitted, b.submitted, "submitted"},
		{a.completed, b.completed, "completed"},
		{a.failed, b.failed, "failed"},
		{a.prefixHits, b.prefixHits, "prefixHits"},
		{a.prefixMisses, b.prefixMisses, "prefixMisses"},
		{a.prefixEvicted, b.prefixEvicted, "prefixEvicted"},
		{a.prefixPartial, b.prefixPartial, "prefixPartialHits"},
		{uint64(a.prefixReused), uint64(b.prefixReused), "prefixReusedTokens"},
		{uint64(a.tokensGenerated), uint64(b.tokensGenerated), "tokensGenerated"},
		{uint64(a.prefillTokens), uint64(b.prefillTokens), "prefillTokens"},
		{uint64(a.rounds), uint64(b.rounds), "rounds"},
		{uint64(a.kvPeak), uint64(b.kvPeak), "kvPeak"},
	} {
		if c.a != c.b {
			return fmt.Sprintf("metric %s: %d vs %d", c.name, c.a, c.b)
		}
	}
	return ""
}

// TestEngineDeterminismAcrossGOMAXPROCS is the determinism regression lock:
// the full serve engine, run twice at GOMAXPROCS=1 and twice at
// GOMAXPROCS=NumCPU (with matching intra-op pool widths, plus an
// oversubscribed width to exercise parallel schedules even on 1-CPU CI),
// must produce identical token streams, identical round schedules and
// identical metrics counters in all runs.
func TestEngineDeterminismAcrossGOMAXPROCS(t *testing.T) {
	reqs := loadRequests(t)
	base := runEngineAt(t, 1, 1, reqs)
	if base.completed != uint64(len(reqs)) || base.failed != 0 {
		t.Fatalf("baseline run: %d completed, %d failed, want %d/0", base.completed, base.failed, len(reqs))
	}
	cases := []struct {
		name           string
		procs, workers int
	}{
		{"gomaxprocs=1/repeat", 1, 1},
		{"gomaxprocs=numcpu", runtime.NumCPU(), runtime.NumCPU()},
		{"gomaxprocs=numcpu/repeat", runtime.NumCPU(), runtime.NumCPU()},
		{"oversubscribed-pool", runtime.NumCPU() * 4, 4},
	}
	for _, tc := range cases {
		got := runEngineAt(t, tc.procs, tc.workers, reqs)
		if d := base.diff(got); d != "" {
			t.Fatalf("%s: run differs from GOMAXPROCS=1 baseline: %s", tc.name, d)
		}
	}
}

// TestEngineDeterminismAsyncVsSyncTransfers locks the async transfer
// runtime's core guarantee: the engine produces identical token streams,
// identical scheduling rounds and identical wall-clock-independent metrics
// whether transfers are asynchronous (default, layer-ahead prefetch
// overlapped with compute) or forced fully synchronous — transfers change
// when simulated KV moves, never what attention reads. Also exercised at
// full parallelism so the background transfer worker runs against concurrent
// engine workers.
func TestEngineDeterminismAsyncVsSyncTransfers(t *testing.T) {
	reqs := loadRequests(t)
	syncMode := func(c *Config) { c.SyncTransfers = true }
	base := runEngineAt(t, 1, 1, reqs, syncMode)
	if base.completed != uint64(len(reqs)) || base.failed != 0 {
		t.Fatalf("sync baseline: %d completed, %d failed", base.completed, base.failed)
	}
	cases := []struct {
		name           string
		procs, workers int
		mutate         []func(*Config)
	}{
		{"async/serial", 1, 1, nil},
		{"async/parallel", runtime.NumCPU(), runtime.NumCPU(), nil},
		{"sync/parallel", runtime.NumCPU(), runtime.NumCPU(), []func(*Config){syncMode}},
		{"async/two-tier", runtime.NumCPU(), runtime.NumCPU(),
			[]func(*Config){func(c *Config) { c.KVBudget = 512; c.HostBudget = 4096 }}},
		{"sync/two-tier", 1, 1,
			[]func(*Config){func(c *Config) { c.KVBudget = 512; c.HostBudget = 4096; c.SyncTransfers = true }}},
	}
	var tiered *engineRunFingerprint
	for _, tc := range cases {
		got := runEngineAt(t, tc.procs, tc.workers, reqs, tc.mutate...)
		if len(tc.mutate) > 0 && tc.name != "sync/parallel" {
			// The two-tier budget legitimately changes scheduling vs the
			// unbudgeted baseline; those two runs must instead match each
			// other exactly.
			if tiered == nil {
				g := got
				tiered = &g
				continue
			}
			if d := tiered.diff(got); d != "" {
				t.Fatalf("%s: two-tier async vs sync differ: %s", tc.name, d)
			}
			continue
		}
		if d := base.diff(got); d != "" {
			t.Fatalf("%s: differs from synchronous baseline: %s", tc.name, d)
		}
	}
}

// TestEngineDeterminismGreedy repeats the lock for greedy decoding with a
// full-attention tenant mixed in, covering the selector-free path.
func TestEngineDeterminismGreedy(t *testing.T) {
	reqs := loadRequests(t)
	for i := range reqs {
		reqs[i].Temperature = 0
		if i%3 == 0 {
			reqs[i].NewSelector = nil
			reqs[i].Budget = 0
		}
	}
	base := runEngineAt(t, 1, 1, reqs)
	got := runEngineAt(t, runtime.NumCPU()*2, 4, reqs)
	if d := base.diff(got); d != "" {
		t.Fatalf("parallel greedy run differs from serial: %s", d)
	}
}

// TestRadixMatchesFlatOnSinglePrefixLoad locks the radix cache's
// compatibility contract: on a load whose declared prefixes either match a
// cached entry exactly or share nothing (the classic one-document
// multi-question QA load), the radix tree must behave token- and
// schedule-identically to the flat exact-match cache — same tokens, same
// rounds, same counters, same KV peak.
func TestRadixMatchesFlatOnSinglePrefixLoad(t *testing.T) {
	reqs := loadRequests(t)
	radix := runEngineAt(t, 1, 1, reqs)
	flat := runEngineAt(t, 1, 1, reqs, func(c *Config) { c.FlatPrefixCache = true })
	if d := radix.diff(flat); d != "" {
		t.Fatalf("radix differs from flat cache on a single-shared-prefix load: %s", d)
	}
	if radix.prefixPartial != 0 {
		t.Fatalf("radix reported %d partial hits on an exact-match-only load", radix.prefixPartial)
	}
}

// TestEngineDeterminismNestedSessions extends the GOMAXPROCS lock to the
// nested-prefix loads the radix cache exists for: multi-turn conversation
// traffic with partial radix reuse must fingerprint identically across
// serial, repeated, and parallel schedules.
func TestEngineDeterminismNestedSessions(t *testing.T) {
	cc := workload.DefaultConversationConfig()
	cc.Doc.VocabSize = 128
	cc.Doc.NTopics = 8
	cc.Doc.Seed = 53
	reqs := nestedRequests(workload.ConversationLoad(cc))
	for i := range reqs {
		reqs[i].Temperature = 0.8
	}
	base := runEngineAt(t, 1, 1, reqs)
	if base.completed != uint64(len(reqs)) || base.failed != 0 {
		t.Fatalf("baseline run: %d completed, %d failed, want %d/0", base.completed, base.failed, len(reqs))
	}
	if base.prefixPartial == 0 {
		t.Fatalf("nested conversation load produced no partial radix hits")
	}
	cases := []struct {
		name           string
		procs, workers int
	}{
		{"gomaxprocs=1/repeat", 1, 1},
		{"gomaxprocs=2", 2, 2},
		{"gomaxprocs=numcpu", runtime.NumCPU(), runtime.NumCPU()},
	}
	for _, tc := range cases {
		got := runEngineAt(t, tc.procs, tc.workers, reqs)
		if d := base.diff(got); d != "" {
			t.Fatalf("%s: nested-load run differs from serial baseline: %s", tc.name, d)
		}
	}
}

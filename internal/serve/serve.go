// Package serve implements a concurrent inference-serving engine on top of
// the transformer model and the pluggable KV-compression selectors: the
// subsystem that turns the single-stream reproduction into a multi-tenant
// server and lets ClusterKV be measured under load.
//
// The engine implements the serving-side techniques the paper's systems
// context assumes:
//
//   - continuous batching: admission happens at every decode-round boundary,
//     so a finished request's slot is refilled immediately instead of
//     waiting for a whole batch to drain;
//   - admission control: a bounded intake queue provides backpressure, and a
//     shared kvcache.Accountant tracks aggregate KV residency against a
//     global budget. By default the engine's paged arena meters *exact* page
//     residency (shared copy-on-write pages charged once, admission on
//     prefill pages plus a small decode headroom); Config.WorstCaseAdmission
//     restores up-front worst-case reservations;
//   - prefix caching: requests that declare a shared prompt prefix (the
//     long-document multi-question scenario ClusterKV targets) reuse one
//     prefill via copy-on-write kvcache.Store forks instead of recomputing
//     it, sharing every fully common KV page block-granularly. The cache is
//     a radix tree over page-aligned token runs, so nested prefixes
//     (multi-turn chat, agentic re-entry, templated RAG) reuse the longest
//     page-aligned common prefix of any cached entry even without an exact
//     match (Config.FlatPrefixCache restores exact-match-only reuse);
//   - per-request selectors: every request brings its own Selector factory,
//     so ClusterKV, Quest and FullKV tenants can share one server;
//   - deterministic execution: given a seed and a fixed submission order,
//     token streams and scheduling rounds are reproducible run-to-run.
//
// Lifecycle: NewEngine starts the scheduler and worker pool; Submit enqueues
// a request and returns a Ticket; Run is the deterministic batch
// convenience; Close drains gracefully; Shutdown aborts on context expiry.
package serve

import (
	"errors"
	"time"

	"clusterkv/internal/attention"
	"clusterkv/internal/obs"
)

// Errors returned in Response.Err.
var (
	// ErrClosed reports a Submit after Close/Shutdown began.
	ErrClosed = errors.New("serve: engine closed")
	// ErrAborted reports a request cancelled by Shutdown before completion.
	ErrAborted = errors.New("serve: request aborted by shutdown")
	// ErrBadRequest reports an invalid request (empty prompt, non-positive
	// MaxNewTokens, out-of-range SharedPrefixLen).
	ErrBadRequest = errors.New("serve: invalid request")
	// ErrTooLarge reports a request whose worst-case KV residency can never
	// fit the engine's global budget.
	ErrTooLarge = errors.New("serve: request exceeds global KV budget")
)

// Request describes one generation job.
type Request struct {
	// Prompt is the full token prompt.
	Prompt []int
	// SharedPrefixLen marks Prompt[:SharedPrefixLen] as shareable: requests
	// carrying an identical prefix reuse a single prefill snapshot
	// (content-addressed, verified token-by-token). 0 disables sharing.
	// Must be < len(Prompt): the engine needs at least one suffix token to
	// replay selector prefill over the forked stores.
	SharedPrefixLen int
	// MaxNewTokens is the number of tokens to generate. Must be positive.
	MaxNewTokens int
	// Budget is the per-head KV token budget handed to the selector;
	// <= 0 means unbudgeted.
	Budget int
	// NewSelector builds this request's KV-selection policy (ClusterKV,
	// Quest, ...). nil requests full attention.
	NewSelector func() attention.Selector
	// Temperature > 0 enables seeded softmax sampling; 0 decodes greedily.
	Temperature float64
}

// Response is the outcome of one request.
type Response struct {
	// ID is the engine-assigned request id, increasing in submission order.
	ID uint64
	// Tokens are the generated tokens (len == MaxNewTokens on success).
	Tokens []int
	// Err is nil on success.
	Err error
	// PrefixHit reports whether the whole shared prefix was served from the
	// prefix cache instead of being prefilled.
	PrefixHit bool
	// PrefixReusedTokens is the number of prompt tokens whose prefill was
	// skipped via the prefix cache: SharedPrefixLen on a full hit, the
	// longest page-aligned (or whole-entry) cached ancestor's depth when the
	// radix cache partially covered a new prefix, 0 on a cold build.
	PrefixReusedTokens int
	// KVReserved is the admission charge in per-head token slots: under
	// exact page accounting, the page-rounded prefill estimate (plus decode
	// headroom) the request was gated on; under worst-case admission, the
	// reservation held for the request's lifetime.
	KVReserved int64
	// QueueWait is the time from Submit to admission.
	QueueWait time.Duration
	// TTFT is the time from Submit to the first generated token.
	TTFT time.Duration
	// Total is the time from Submit to completion.
	Total time.Duration
	// AdmitRound and DoneRound are the scheduler rounds of admission and
	// retirement. They are wall-clock independent, so deterministic runs can
	// assert identical scheduling across repeats.
	AdmitRound, DoneRound int64
	// Breakdown is the request's latency attribution span tree on the
	// modeled attribution clock (DESIGN.md §14) — nil unless
	// Config.Attribution is set. Its phase tiling is deterministic; the
	// XferExposedSec/XferHiddenSec pair is wall-clock-dependent telemetry.
	Breakdown *obs.Breakdown
}

// Ticket is the handle returned by Submit.
type Ticket struct {
	// ID is the engine-assigned request id.
	ID uint64
	ch chan Response
}

// Done returns the channel the Response is delivered on (buffered; the
// engine never blocks on it).
func (t *Ticket) Done() <-chan Response { return t.ch }

// Wait blocks until the request completes and returns its Response.
func (t *Ticket) Wait() Response { return <-t.ch }

func failedTicket(id uint64, err error) *Ticket {
	t := &Ticket{ID: id, ch: make(chan Response, 1)}
	t.ch <- Response{ID: id, Err: err}
	return t
}

// validate reports nil for a well-formed request.
func (r *Request) validate() error {
	switch {
	case len(r.Prompt) == 0:
		return ErrBadRequest
	case r.MaxNewTokens <= 0:
		return ErrBadRequest
	case r.SharedPrefixLen < 0 || r.SharedPrefixLen >= len(r.Prompt):
		return ErrBadRequest
	}
	return nil
}

// kvCost is the worst-case admission policy's estimate of a request's
// device residency in per-head token slots (Config.WorstCaseAdmission; the
// default exact policy uses Engine.pageEstimate instead). A budgeted
// selector keeps at most Budget tokens per head resident; an unbudgeted
// request keeps its whole sequence. When the shared prefix is served from
// the cache its residency is accounted once, on the cache entry, so only
// the marginal tail is charged.
func kvCost(r *Request, prefixShared bool) int64 {
	l := len(r.Prompt) + r.MaxNewTokens + 1 // +1: re-fed last prompt token
	if r.Budget > 0 && r.Budget < l {
		return int64(r.Budget)
	}
	if prefixShared {
		l -= r.SharedPrefixLen
	}
	return int64(l)
}

// PrefixKey content-addresses a shared prefix: the same hash the engine's
// prefix-residency index is keyed by. Routers compute it over
// Prompt[:SharedPrefixLen] and probe Engine.PrefixResident to find the
// replica that already holds the prefill.
func PrefixKey(tokens []int) uint64 { return prefixKey(tokens) }

// AlignedPrefixKeys returns the content hash of every page-aligned prefix of
// tokens (pageTokens, 2·pageTokens, ...) plus the whole slice, in one rolling
// FNV-1a pass; the last element always equals PrefixKey(tokens). These are
// the depths the radix-cached engine registers in its residency index, so a
// router can probe a nested prefix from deepest to shallowest and place the
// request on the replica holding the longest match.
func AlignedPrefixKeys(tokens []int, pageTokens int) []uint64 {
	return alignedPrefixKeys(tokens, pageTokens)
}

func alignedPrefixKeys(tokens []int, pageTokens int) []uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	out := make([]uint64, 0, len(tokens)/pageTokens+1)
	h := uint64(offset64)
	for i, t := range tokens {
		h ^= uint64(t)
		h *= prime64
		if (i+1)%pageTokens == 0 || i == len(tokens)-1 {
			out = append(out, h)
		}
	}
	return out
}

// prefixKey content-addresses a shared prefix with FNV-1a over its tokens.
// Hits verify the actual tokens, so a collision can never alias prefills.
func prefixKey(tokens []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range tokens {
		h ^= uint64(t)
		h *= prime64
	}
	return h
}

// tokensInRange reports whether every prompt token is a valid vocabulary
// index, so malformed prompts are rejected at intake instead of panicking a
// decode worker mid-round.
func tokensInRange(tokens []int, vocab int) bool {
	for _, t := range tokens {
		if t < 0 || t >= vocab {
			return false
		}
	}
	return true
}

func sameTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

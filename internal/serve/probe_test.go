package serve

import (
	"errors"
	"testing"
	"time"
)

// TestTrySubmitBackpressure: with a single-slot intake queue and the lone
// scheduler worker pinned inside long prefill rounds, TrySubmit must
// eventually report ok=false instead of blocking — and every accepted
// submission must still complete on drain.
func TestTrySubmitBackpressure(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 1, QueueCap: 1, Seed: 1})

	// Long prefills keep the scheduler mid-round (intake drains only at round
	// barriers), so a filled intake slot stays filled long enough to observe.
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tickets = append(tickets, e.Submit(Request{
			Prompt: testDoc(uint64(i), 1024), MaxNewTokens: 2,
		}))
	}

	small := Request{Prompt: testDoc(9, 16), MaxNewTokens: 1}
	sawBackpressure := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawBackpressure && time.Now().Before(deadline) {
		tk, ok := e.TrySubmit(small)
		if !ok {
			if tk != nil {
				t.Fatal("backpressured TrySubmit returned a ticket")
			}
			sawBackpressure = true
			break
		}
		tickets = append(tickets, tk)
	}
	if !sawBackpressure {
		t.Fatal("TrySubmit never reported backpressure on a full single-slot intake")
	}

	e.Close()
	for i, tk := range tickets {
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatalf("accepted submission %d failed across drain: %v", i, resp.Err)
		}
	}
}

// TestTrySubmitClosedAndInvalid: closed engines and invalid requests behave
// exactly like Submit — ok is true and the ticket already carries the error.
func TestTrySubmitClosedAndInvalid(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, Seed: 1})
	tk, ok := e.TrySubmit(Request{Prompt: []int{1, 2}, MaxNewTokens: 0})
	if !ok || tk == nil {
		t.Fatal("invalid request was reported as backpressure")
	}
	if resp := tk.Wait(); !errors.Is(resp.Err, ErrBadRequest) {
		t.Fatalf("invalid TrySubmit err = %v, want ErrBadRequest", resp.Err)
	}
	// Valid request round-trips.
	tk, ok = e.TrySubmit(Request{Prompt: testDoc(1, 24), MaxNewTokens: 2})
	if !ok {
		t.Fatal("empty engine backpressured a TrySubmit")
	}
	if resp := tk.Wait(); resp.Err != nil || len(resp.Tokens) != 2 {
		t.Fatalf("TrySubmit response: err=%v tokens=%d", resp.Err, len(resp.Tokens))
	}
	mx := e.Metrics()
	if mx.Submitted != 2 || mx.Failed != 1 || mx.Completed != 1 {
		t.Fatalf("submitted=%d completed=%d failed=%d", mx.Submitted, mx.Completed, mx.Failed)
	}
	e.Close()
	tk, ok = e.TrySubmit(Request{Prompt: testDoc(1, 24), MaxNewTokens: 2})
	if !ok || tk == nil {
		t.Fatal("closed engine was reported as backpressure")
	}
	if resp := tk.Wait(); !errors.Is(resp.Err, ErrClosed) {
		t.Fatalf("post-close TrySubmit err = %v, want ErrClosed", resp.Err)
	}
}

// TestPrefixResidentProbe: after serving a shared-prefix load, the content
// hash of the shared document answers true (the entry stays cached while the
// engine lives), a foreign hash answers false, and Close empties the index.
func TestPrefixResidentProbe(t *testing.T) {
	m := testModel()
	const docLen = 128
	reqs := qaRequests(3, docLen, 8, 3, clusterSel)
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 4, Seed: 1})
	for i, r := range e.Run(reqs) {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	doc := reqs[0].Prompt[:docLen]
	if !e.PrefixResident(PrefixKey(doc)) {
		t.Fatal("served shared prefix not reported resident")
	}
	if e.PrefixResident(PrefixKey(testDoc(77, docLen))) {
		t.Fatal("never-served prefix reported resident")
	}
	e.Close()
	if e.PrefixResident(PrefixKey(doc)) {
		t.Fatal("prefix still reported resident after Close released the cache")
	}
}

// TestPrefixResidentTracksEviction: evicting an idle prefix under budget
// pressure must also drop it from the residency index.
func TestPrefixResidentTracksEviction(t *testing.T) {
	m := testModel()
	const docLen = 96
	// Two disjoint shared documents served back-to-back under a budget that
	// cannot cache both: admitting the second evicts the idle first.
	docA := testDoc(21, docLen)
	docB := testDoc(22, docLen)
	mk := func(doc []int, qseed uint64) Request {
		prompt := append(append([]int{}, doc...), testDoc(qseed, 8)...)
		return Request{Prompt: prompt, SharedPrefixLen: docLen, MaxNewTokens: 2}
	}
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 1, KVBudget: 160, Seed: 1})
	defer e.Close()
	if resp := e.Submit(mk(docA, 31)).Wait(); resp.Err != nil {
		t.Fatalf("docA request: %v", resp.Err)
	}
	if !e.PrefixResident(PrefixKey(docA)) {
		t.Fatal("docA not resident after serving")
	}
	if resp := e.Submit(mk(docB, 32)).Wait(); resp.Err != nil {
		t.Fatalf("docB request: %v", resp.Err)
	}
	if !e.PrefixResident(PrefixKey(docB)) {
		t.Fatal("docB not resident after serving")
	}
	if e.PrefixResident(PrefixKey(docA)) {
		t.Fatal("evicted docA still reported resident")
	}
	if e.Metrics().PrefixEvicted == 0 {
		t.Fatal("no eviction happened; budget not tight enough to exercise the index")
	}
}

// TestOccupancyProbe: gauges reflect a running engine and return to idle
// zeros (with zero live pages) once everything drains.
func TestOccupancyProbe(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 2, QueueCap: 8, Seed: 1})
	if occ := e.Occupancy(); occ.IntakeCap != 8 {
		t.Fatalf("IntakeCap = %d, want 8", occ.IntakeCap)
	}
	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		tickets = append(tickets, e.Submit(Request{
			Prompt: testDoc(uint64(i), 256), MaxNewTokens: 8,
		}))
	}
	sawLoad := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawLoad && time.Now().Before(deadline) {
		occ := e.Occupancy()
		if occ.Active > 0 {
			if occ.Active > 2 {
				t.Fatalf("Active = %d exceeds MaxBatch 2", occ.Active)
			}
			sawLoad = true
		}
	}
	if !sawLoad {
		t.Fatal("never observed a busy occupancy snapshot")
	}
	for _, tk := range tickets {
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatalf("request failed: %v", resp.Err)
		}
	}
	e.Close()
	occ := e.Occupancy()
	if occ.Queued != 0 || occ.Active != 0 || occ.IntakeBacklog != 0 {
		t.Fatalf("drained engine occupancy not idle: %+v", occ)
	}
	if occ.LivePages != 0 {
		t.Fatalf("drained engine still holds %d live pages", occ.LivePages)
	}
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/core"
	"clusterkv/internal/model"
	"clusterkv/internal/workload"
)

func testModel() *model.Model {
	cfg := model.DefaultConfig()
	cfg.VocabSize = 128
	cfg.DModel = 32
	cfg.NLayers = 2
	cfg.NHeads = 2
	cfg.NKVHeads = 2
	cfg.HeadDim = 8
	cfg.FFNDim = 64
	cfg.NTopics = 8
	return model.New(cfg)
}

func testDoc(seed uint64, n int) []int {
	dc := workload.DefaultDocConfig()
	dc.VocabSize = 128
	dc.NTopics = 8
	dc.Seed = seed
	return workload.Doc(dc, n)
}

func clusterSel() attention.Selector {
	cfg := core.NewConfig()
	cfg.BypassLayers = 0
	return core.New(cfg)
}

// qaRequests builds n requests sharing one document prefix with distinct
// question suffixes.
func qaRequests(n, docLen, qLen, maxNew int, sel func() attention.Selector) []Request {
	doc := testDoc(3, docLen)
	reqs := make([]Request, n)
	for i := range reqs {
		q := testDoc(uint64(100+i), qLen)
		prompt := append(append([]int{}, doc...), q...)
		reqs[i] = Request{
			Prompt:          prompt,
			SharedPrefixLen: docLen,
			MaxNewTokens:    maxNew,
			Budget:          64,
			NewSelector:     sel,
		}
	}
	return reqs
}

func serialDecode(t *testing.T, m *model.Model, req Request) []int {
	t.Helper()
	var sel attention.Selector
	if req.NewSelector != nil {
		sel = req.NewSelector()
	}
	seq := m.NewSequence(sel, req.Budget)
	seq.Prefill(req.Prompt, nil)
	tok := req.Prompt[len(req.Prompt)-1]
	out := make([]int, 0, req.MaxNewTokens)
	for i := 0; i < req.MaxNewTokens; i++ {
		logits := seq.Decode(tok)
		best := 0
		for j, v := range logits {
			if v > logits[best] {
				best = j
			}
		}
		tok = best
		out = append(out, tok)
	}
	return out
}

// TestEngineMatchesSerialDecode: the engine's concurrent, prefix-cached
// output must be token-identical to one-at-a-time greedy decode.
func TestEngineMatchesSerialDecode(t *testing.T) {
	m := testModel()
	reqs := qaRequests(6, 192, 16, 12, clusterSel)

	e := NewEngine(m, Config{Workers: 4, MaxBatch: 4, Seed: 9})
	resps := e.Run(reqs)
	e.Close()

	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		want := serialDecode(t, m, reqs[i])
		if len(r.Tokens) != len(want) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(r.Tokens), len(want))
		}
		for j := range want {
			if r.Tokens[j] != want[j] {
				t.Fatalf("request %d diverges from serial decode at %d: %v vs %v",
					i, j, r.Tokens, want)
			}
		}
	}
}

// TestEngineDeterministicScheduling: identical request sets on fresh engines
// with the same seed must reproduce token streams AND scheduling rounds.
func TestEngineDeterministicScheduling(t *testing.T) {
	m := testModel()
	reqs := qaRequests(8, 128, 12, 10, clusterSel)
	reqs[3].Temperature = 0.8 // exercise the seeded sampler too
	reqs[5].NewSelector = nil // one full-attention tenant

	run := func() []Response {
		e := NewEngine(m, Config{Workers: 2, MaxBatch: 3, KVBudget: 2048, Seed: 42})
		defer e.Close()
		return e.Run(reqs)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("request %d errs: %v / %v", i, a[i].Err, b[i].Err)
		}
		if len(a[i].Tokens) != len(b[i].Tokens) {
			t.Fatalf("request %d token count differs", i)
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatalf("request %d tokens differ at %d", i, j)
			}
		}
		if a[i].AdmitRound != b[i].AdmitRound || a[i].DoneRound != b[i].DoneRound {
			t.Fatalf("request %d scheduling differs: admit %d/%d done %d/%d",
				i, a[i].AdmitRound, b[i].AdmitRound, a[i].DoneRound, b[i].DoneRound)
		}
		if a[i].PrefixHit != b[i].PrefixHit {
			t.Fatalf("request %d prefix-cache behaviour differs", i)
		}
	}
}

// TestPrefixCacheSharesPrefill: with a shared document, exactly one request
// pays the document prefill; the rest hit the cache and prefill only their
// suffix.
func TestPrefixCacheSharesPrefill(t *testing.T) {
	m := testModel()
	const docLen, qLen = 160, 12
	reqs := qaRequests(5, docLen, qLen, 6, clusterSel)

	e := NewEngine(m, Config{Workers: 1, MaxBatch: 8, Seed: 1})
	resps := e.Run(reqs)
	mx := e.Metrics()
	e.Close()

	hits := 0
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.PrefixHit {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("prefix hits = %d, want 4", hits)
	}
	if mx.PrefixHits != 4 || mx.PrefixMisses != 1 {
		t.Fatalf("metrics hits/misses = %d/%d", mx.PrefixHits, mx.PrefixMisses)
	}
	wantPrefill := int64(docLen + 5*qLen)
	if mx.PrefillTokens != wantPrefill {
		t.Fatalf("prefilled %d tokens, want %d", mx.PrefillTokens, wantPrefill)
	}
	if mx.TokensGenerated != 5*6 {
		t.Fatalf("generated %d tokens", mx.TokensGenerated)
	}
}

// TestAdmissionControlRespectsKVBudget: with a budget that fits only one
// stream at a time, requests are serialised, never failed, and the peak
// reservation stays within capacity.
func TestAdmissionControlRespectsKVBudget(t *testing.T) {
	m := testModel()
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{
			Prompt:       testDoc(uint64(i), 48),
			MaxNewTokens: 4,
			// Unbudgeted: cost = 48 + 4 + 1 = 53 slots each.
		})
	}
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 8, KVBudget: 100, Seed: 1})
	resps := e.Run(reqs)
	mx := e.Metrics()
	e.Close()

	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if mx.KVPeak > 100 {
		t.Fatalf("KV peak %d exceeded budget", mx.KVPeak)
	}
	// 53+53 > 100: streams can never overlap, so later requests must be
	// admitted in strictly later rounds.
	for i := 1; i < len(resps); i++ {
		if resps[i].AdmitRound <= resps[i-1].AdmitRound {
			t.Fatalf("requests %d and %d overlapped under exclusive budget", i-1, i)
		}
	}
}

// TestOversizedRequestFailsFast locks the worst-case reservation policy: a
// request whose up-front cost can never fit fails immediately, and a
// budgeted selector's cost is its budget. (Exact-mode sizing is covered by
// TestExactAdmissionOversized.)
func TestOversizedRequestFailsFast(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, KVBudget: 32, Seed: 1, WorstCaseAdmission: true})
	defer e.Close()
	resp := e.Submit(Request{Prompt: testDoc(1, 64), MaxNewTokens: 4}).Wait()
	if !errors.Is(resp.Err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", resp.Err)
	}
	// A budgeted request of the same length fits (cost = Budget).
	resp = e.Submit(Request{Prompt: testDoc(1, 64), MaxNewTokens: 4, Budget: 16,
		NewSelector: func() attention.Selector { return baselines.NewFullKV() }}).Wait()
	if resp.Err != nil {
		t.Fatalf("budgeted request failed: %v", resp.Err)
	}
}

func TestBadRequests(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, Seed: 1})
	defer e.Close()
	cases := []Request{
		{Prompt: nil, MaxNewTokens: 4},
		{Prompt: []int{1, 2}, MaxNewTokens: 0},
		{Prompt: []int{1, 2}, MaxNewTokens: 4, SharedPrefixLen: 2},
		{Prompt: []int{1, 2}, MaxNewTokens: 4, SharedPrefixLen: -1},
	}
	for i, req := range cases {
		if resp := e.Submit(req).Wait(); !errors.Is(resp.Err, ErrBadRequest) {
			t.Fatalf("case %d: err = %v, want ErrBadRequest", i, resp.Err)
		}
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, Seed: 1})
	e.Close()
	if resp := e.Submit(Request{Prompt: []int{1}, MaxNewTokens: 1}).Wait(); !errors.Is(resp.Err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", resp.Err)
	}
	// Run after close fails the whole set without hanging.
	for _, r := range e.Run(qaRequests(2, 32, 4, 2, nil)) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("Run after close: %v", r.Err)
		}
	}
}

// TestGracefulDrain: Close waits for in-flight work submitted via Submit.
func TestGracefulDrain(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 2, MaxBatch: 4, Seed: 1})
	var tickets []*Ticket
	for _, req := range qaRequests(5, 96, 8, 6, clusterSel) {
		tickets = append(tickets, e.Submit(req))
	}
	e.Close() // drain
	for i, tk := range tickets {
		select {
		case resp := <-tk.Done():
			if resp.Err != nil {
				t.Fatalf("request %d failed across drain: %v", i, resp.Err)
			}
			if len(resp.Tokens) != 6 {
				t.Fatalf("request %d incomplete after drain", i)
			}
		default:
			t.Fatalf("request %d not completed by Close", i)
		}
	}
}

// TestShutdownAbortsOnExpiredContext: an already-cancelled context aborts
// outstanding requests with ErrAborted instead of waiting for them.
func TestShutdownAbortsOnExpiredContext(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 1, Seed: 1})
	// Enough work that some of it is still queued when shutdown hits.
	var tickets []*Ticket
	for _, req := range qaRequests(6, 256, 8, 400, clusterSel) {
		tickets = append(tickets, e.Submit(req))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v", err)
	}
	aborted := 0
	for _, tk := range tickets {
		if resp := tk.Wait(); errors.Is(resp.Err, ErrAborted) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no request was aborted by an expired shutdown")
	}
	if e.Accountant().Used() != 0 {
		t.Fatalf("leaked reservations after shutdown: %d", e.Accountant().Used())
	}
}

// TestFailedPrefixBuilderDoesNotWedgeEngine: a builder whose selector
// factory panics before the snapshot exists must unpublish the prefix entry
// so later same-prefix requests rebuild it instead of waiting forever.
func TestFailedPrefixBuilderDoesNotWedgeEngine(t *testing.T) {
	m := testModel()
	doc := testDoc(11, 96)
	prompt := append(append([]int{}, doc...), testDoc(12, 8)...)

	bad := Request{
		Prompt:          prompt,
		SharedPrefixLen: len(doc),
		MaxNewTokens:    4,
		Budget:          32,
		NewSelector:     func() attention.Selector { panic("factory exploded") },
	}
	good := Request{
		Prompt:          prompt,
		SharedPrefixLen: len(doc),
		MaxNewTokens:    4,
	}

	e := NewEngine(m, Config{Workers: 1, MaxBatch: 2, Seed: 1, WorstCaseAdmission: true})
	resps := e.Run([]Request{bad, good})
	used := e.Accountant().Used()
	e.Close() // must not hang

	if resps[0].Err == nil {
		t.Fatal("panicking builder did not fail")
	}
	if resps[1].Err != nil {
		t.Fatalf("same-prefix request after failed builder: %v", resps[1].Err)
	}
	if len(resps[1].Tokens) != 4 {
		t.Fatalf("rebuild produced %d tokens", len(resps[1].Tokens))
	}
	// Only the rebuilt (published) prefix may stay reserved.
	if used != int64(len(doc)) {
		t.Fatalf("reserved %d slots after failed build, want %d", used, len(doc))
	}
}

// TestBuilderNotDoubleChargedForPrefix: a shared-prefix request's own
// reservation is its marginal tail; the prefix is charged once on the cache
// entry. A budget that fits entry+tail (but not prompt+entry) must admit.
func TestBuilderNotDoubleChargedForPrefix(t *testing.T) {
	m := testModel()
	doc := testDoc(13, 80)
	prompt := append(append([]int{}, doc...), testDoc(14, 10)...)
	req := Request{
		Prompt:          prompt,
		SharedPrefixLen: len(doc),
		MaxNewTokens:    5,
		// Unbudgeted: marginal tail = 10 + 5 + 1 = 16; entry = 80.
	}
	// 96 needed, 170 would not fit.
	e := NewEngine(m, Config{Workers: 1, KVBudget: 100, Seed: 1, WorstCaseAdmission: true})
	resp := e.Submit(req).Wait()
	e.Close()
	if resp.Err != nil {
		t.Fatalf("builder double-charged: %v", resp.Err)
	}
	if resp.KVReserved != 16 {
		t.Fatalf("request reservation = %d, want marginal 16", resp.KVReserved)
	}
}

func TestRejectedRequestsCountAsFailed(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, Seed: 1})
	e.Submit(Request{Prompt: []int{1}, MaxNewTokens: 0}).Wait()     // invalid shape
	e.Submit(Request{Prompt: []int{99999}, MaxNewTokens: 2}).Wait() // out-of-vocab token
	if resp := e.Submit(Request{Prompt: []int{-1}, MaxNewTokens: 2}).Wait(); !errors.Is(resp.Err, ErrBadRequest) {
		t.Fatalf("negative token accepted: %v", resp.Err)
	}
	mx := e.Metrics()
	e.Close()
	if mx.Submitted != 3 || mx.Failed != 3 || mx.Completed != 0 {
		t.Fatalf("submitted=%d completed=%d failed=%d", mx.Submitted, mx.Completed, mx.Failed)
	}
}

// TestContinuousBatchingBackfills: with MaxBatch 2 and requests of very
// different lengths, a finished short request's slot must be refilled while
// the long one is still running (admission of request 3 happens before the
// long request retires).
func TestContinuousBatchingBackfills(t *testing.T) {
	m := testModel()
	long := Request{Prompt: testDoc(1, 48), MaxNewTokens: 40}
	short1 := Request{Prompt: testDoc(2, 48), MaxNewTokens: 4}
	short2 := Request{Prompt: testDoc(3, 48), MaxNewTokens: 4}

	e := NewEngine(m, Config{Workers: 1, MaxBatch: 2, Seed: 1})
	resps := e.Run([]Request{long, short1, short2})
	e.Close()
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if resps[2].AdmitRound >= resps[0].DoneRound {
		t.Fatalf("no backfill: request 3 admitted round %d, long request done round %d",
			resps[2].AdmitRound, resps[0].DoneRound)
	}
}

// TestMixedTenantsShareEngine: ClusterKV, Quest and FullKV requests coexist.
func TestMixedTenantsShareEngine(t *testing.T) {
	m := testModel()
	doc := testDoc(7, 128)
	mk := func(sel func() attention.Selector, budget int) Request {
		return Request{Prompt: doc, MaxNewTokens: 6, Budget: budget, NewSelector: sel}
	}
	reqs := []Request{
		mk(clusterSel, 48),
		mk(func() attention.Selector { return baselines.NewQuest(baselines.NewQuestConfig()) }, 48),
		mk(nil, 0),
	}
	e := NewEngine(m, Config{Workers: 3, MaxBatch: 3, Seed: 1})
	resps := e.Run(reqs)
	e.Close()
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("tenant %d failed: %v", i, r.Err)
		}
		want := serialDecode(t, m, reqs[i])
		for j := range want {
			if r.Tokens[j] != want[j] {
				t.Fatalf("tenant %d diverges from serial decode", i)
			}
		}
	}
}

// TestEngineMetricsSnapshot sanity-checks the aggregate counters.
func TestEngineMetricsSnapshot(t *testing.T) {
	m := testModel()
	reqs := qaRequests(4, 96, 8, 5, clusterSel)
	e := NewEngine(m, Config{Workers: 2, MaxBatch: 2, KVBudget: 4096, Seed: 1, WorstCaseAdmission: true})
	e.Run(reqs)
	if used := e.Accountant().Used(); used != 96 {
		// The shared 96-token document stays cached (and reserved) while
		// the engine is alive.
		t.Fatalf("cached prefix reservation = %d, want 96", used)
	}
	e.Close()
	mx := e.Metrics()

	if mx.Submitted != 4 || mx.Completed != 4 || mx.Failed != 0 {
		t.Fatalf("counts: %+v", mx)
	}
	if mx.TokensGenerated != 20 {
		t.Fatalf("tokens generated = %d", mx.TokensGenerated)
	}
	if mx.Rounds <= 0 || mx.Elapsed <= 0 || mx.Throughput() <= 0 {
		t.Fatalf("rounds=%d elapsed=%v tput=%v", mx.Rounds, mx.Elapsed, mx.Throughput())
	}
	if mx.TTFT.N != 4 || mx.QueueWait.N != 4 {
		t.Fatalf("latency sample counts: ttft=%d qwait=%d", mx.TTFT.N, mx.QueueWait.N)
	}
	// 4 requests × 5 tokens, first token of each rides its prefill step.
	if mx.TokenLatency.N != 16 {
		t.Fatalf("token latency samples = %d", mx.TokenLatency.N)
	}
	if mx.KVUsed != 0 {
		t.Fatalf("KV still reserved after drain: %d", mx.KVUsed)
	}
	if mx.KVPeak <= 0 || mx.KVPeak > 4096 {
		t.Fatalf("KV peak = %d", mx.KVPeak)
	}
	if s := mx.String(); len(s) == 0 {
		t.Fatal("empty metrics report")
	}
}

// TestTemperatureSamplingSeeded: sampling is reproducible for a fixed seed
// and varies across seeds.
func TestTemperatureSamplingSeeded(t *testing.T) {
	m := testModel()
	req := Request{Prompt: testDoc(5, 64), MaxNewTokens: 12, Temperature: 1.2}
	run := func(seed uint64) []int {
		e := NewEngine(m, Config{Workers: 1, Seed: seed})
		defer e.Close()
		return e.Run([]Request{req})[0].Tokens
	}
	a, b, c := run(7), run(7), run(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
}

// TestBackpressureSubmitBlocks: a full intake queue blocks Submit instead of
// dropping, and the engine drains it.
func TestBackpressureSubmitBlocks(t *testing.T) {
	m := testModel()
	e := NewEngine(m, Config{Workers: 1, MaxBatch: 2, QueueCap: 2, Seed: 1})
	done := make(chan struct{})
	var tickets []*Ticket
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			tickets = append(tickets, e.Submit(Request{
				Prompt: testDoc(uint64(i), 32), MaxNewTokens: 2,
			}))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("submissions did not drain")
	}
	e.Close()
	for i, tk := range tickets {
		if resp := tk.Wait(); resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}
}

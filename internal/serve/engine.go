package serve

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/memsim"
	"clusterkv/internal/model"
	"clusterkv/internal/obs"
	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Config holds the engine tunables.
type Config struct {
	// Workers caps the per-round step fan-out. Values <= 1 run every step
	// inline on the scheduler goroutine (fully sequential rounds); larger
	// values fan the round's steps out onto the process-wide parallel pool
	// (parallel.Default), which the intra-op kernels of every prefill and
	// decode also draw from. One GOMAXPROCS-sized pool therefore bounds
	// total CPU concurrency — concurrent prefills share workers instead of
	// oversubscribing the machine with per-engine goroutines.
	// DefaultConfig uses GOMAXPROCS.
	Workers int
	// MaxBatch caps the number of concurrently decoding sequences (the
	// continuous-batching batch size). Default 8.
	MaxBatch int
	// QueueCap bounds the intake queue; Submit blocks when it is full
	// (backpressure). Default 256.
	QueueCap int
	// KVBudget is the global KV-residency budget across all sequences and
	// cached prefixes, in per-head token slots (see kvcache.Accountant).
	// 0 means unlimited.
	//
	// Under the default exact page accounting the budget meters *actual
	// arena pages* (deduplicated across forks: a page shared by ten
	// sequences is charged once) and admission needs only the request's
	// marginal prefill pages plus a small decode headroom. Under
	// WorstCaseAdmission it meters up-front worst-case reservations as the
	// pre-paged engine did.
	KVBudget int64
	// HostBudget, when > 0 (exact accounting only), enables two-tier
	// admission: KVBudget is the *device* capacity, HostBudget the host-tier
	// capacity (same per-head token-slot units), and requests are admitted
	// when device + host together can hold them. Between rounds the engine
	// spills cold pages — slots beyond budgeted sequences' device working
	// sets, LRU by the round they last spilled — to the host tier, keeping
	// round-barrier device residency at or under KVBudget. This is what lets
	// the engine serve loads whose total KV footprint exceeds the device
	// budget. 0 keeps single-tier admission.
	HostBudget int64
	// SyncTransfers forces the synchronous transfer path: every simulated KV
	// fetch blocks for its full modeled channel time instead of overlapping
	// with compute. Kept for comparison (the overlap experiment) — token
	// streams and scheduling are identical either way.
	SyncTransfers bool
	// ThrottleTransfers makes transfer waits actually sleep out their
	// exposed modeled time, so wall-clock throughput reflects the modeled
	// PCIe channel. Off by default: servers usually want the overlap
	// telemetry (Metrics.Transfer) without the artificial slowdown.
	ThrottleTransfers bool
	// XferSecPerPage overrides the modeled seconds to move one (layer, head)
	// KV page on the transfer channel. 0 derives it from the paper GPU's
	// PCIe bandwidth (memsim.AdaRTX6000) and the model's page byte size.
	XferSecPerPage float64
	// PageTokens sets the engine arena's page size in tokens
	// (default kvcache.DefaultPageTokens).
	PageTokens int
	// WorstCaseAdmission reverts admission control to the legacy policy:
	// reserve each request's worst-case residency (kvCost) at admission and
	// hold it until retirement, with shared prefixes charged on the cache
	// entry. Kept for comparison (the pagedkv experiment) and for callers
	// that want hard reservation semantics instead of exact metering.
	WorstCaseAdmission bool
	// NoPrefixCache disables shared-prefix prefill reuse (on by default).
	NoPrefixCache bool
	// FlatPrefixCache forces the exact-match flat prefix cache instead of the
	// default radix tree, so nested prefixes only reuse prefill when a
	// declared prefix matches a cached one token for token. Kept for
	// comparison (the radix experiment). WorstCaseAdmission implies it: the
	// legacy reservation policy predates page-granular sharing and has no
	// notion of partial reuse.
	FlatPrefixCache bool
	// BatchDecode batches decode compute across a round's streams
	// (DESIGN.md §13): a round whose active set contains two or more
	// decoding sequences runs them as one lock-step cohort through
	// model.BatchDecoder — one GEMM per weight matrix per layer across the
	// cohort instead of per-stream GEMVs — while prefill steps and
	// single-decoder rounds keep the per-stream path. Tokens are
	// bit-identical to per-stream execution at any cohort size and pool
	// width (conformance- and determinism-locked), so this is purely a
	// throughput knob. DefaultConfig enables it; the zero Config keeps the
	// task-parallel per-stream rounds.
	BatchDecode bool
	// DecodeKVBits, when 2..8, turns on the quantized KV decode path
	// (DESIGN.md §12): published prefix-cache snapshots are converted once to
	// the KIVI compute format (keys per-channel, values per-token) while
	// exclusively held, and every sequence compute-quantizes its own full
	// pages as it prefills/decodes, with attention running dequantize-free
	// int8 kernels over quantized pages. Pages shared at conversion time
	// (radix ancestors) stay float32; kernels dispatch per page. Token
	// streams stay deterministic per seed but are NOT bit-identical to the
	// exact path — the bounded-ULP contract. 0 (default) keeps exact decode.
	DecodeKVBits int
	// Seed drives sampling and any tie-breaking, making runs reproducible.
	Seed uint64
	// testPrefixHash, when set (tests only), replaces the flat cache's bucket
	// hash so hash collisions can be forced deterministically.
	testPrefixHash func([]int) uint64
	// Trace, when enabled (obs.Tracer.Recorder), receives the engine's
	// structured trace events: round begin/end, admit/refuse/retire,
	// prefix-cache traffic, tier spill/promote, and — through the transfer
	// runtime — modeled PCIe transfers and layer-ahead prefetch. The zero
	// value is disabled and costs a nil check per emission site. Tracing
	// never changes scheduling: traced and untraced runs produce identical
	// tokens, rounds and metrics (locked by the determinism suites).
	Trace obs.Recorder
	// Attribution enables per-request latency attribution (DESIGN.md §14):
	// every retired request carries a Response.Breakdown tiling its modeled
	// wall time into queue / admit / prefill / decode / interference /
	// tiering phases on the attribution clock, the engine aggregates them
	// into Engine.Attribution(), and — with Trace enabled — emits the
	// deterministic EvSpan stream. Attribution never feeds back into
	// scheduling: on/off runs are token-, round- and fingerprint-identical
	// (locked by the determinism suites).
	Attribution bool
	// ModelHardware and ModelShape parameterise the attribution clock's
	// latency model; zero values mean the paper GPU (memsim.AdaRTX6000)
	// serving memsim.Llama31_8B, matching the fleet router's defaults.
	ModelHardware memsim.Hardware
	ModelShape    memsim.ModelShape
}

// DefaultConfig returns the default engine configuration.
func DefaultConfig() Config {
	return Config{
		Workers:     runtime.GOMAXPROCS(0),
		MaxBatch:    8,
		QueueCap:    256,
		KVBudget:    0,
		BatchDecode: true,
		Seed:        1,
	}
}

// Engine is a continuous-batching serving engine over one Model. All methods
// are safe for concurrent use.
type Engine struct {
	m    *model.Model
	cfg  Config
	acct *kvcache.Accountant
	// arena backs every sequence and cached prefix the engine creates. Under
	// exact admission it charges acct per live page, so Used() is the exact
	// deduplicated KV footprint.
	arena *kvcache.Arena
	// planes is the number of (layer, kvHead) stores per sequence; exact
	// accounting runs in raw slots (tokens × planes) and reports per-head
	// units by dividing back out.
	planes int64
	exact  bool
	// radix reports the active prefix-cache shape (radix tree vs flat
	// exact-match); see Config.FlatPrefixCache.
	radix bool
	// rt is the engine-wide async transfer runtime: every RuntimeAware
	// selector's simulated KV movement shares this one modeled PCIe channel.
	rt *kvcache.TransferRuntime

	// cache is the scheduler-owned prefix cache (radix tree or flat map);
	// cacheSeq numbers entries in admission order for deterministic LRU
	// tie-breaks. Touched only on the loop goroutine.
	cache    prefixCache
	cacheSeq uint64

	intake chan []*task

	// resident is the router-facing prefix-residency index, refcounted
	// content hashes of what the scheduler currently holds (building or
	// published). Under the radix cache every entry registers its whole
	// page-aligned prefix chain, so routers can probe nested depths; the flat
	// cache registers exact hashes only, matching what it can actually reuse.
	// Refcounts keep a hash resident while any registrant lives (two entries
	// legitimately share their common chain prefix). Maintained by the
	// scheduler at entry creation/release; PrefixResident and
	// ResidentPrefixLen read it lock-cheaply from any goroutine.
	resMu    sync.RWMutex
	resident map[uint64]int

	submitMu sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	nextID   uint64

	abort atomic.Bool
	done  chan struct{}

	// rec is the trace hook (Config.Trace). Scheduler-side events fire only
	// on the loop goroutine; the transfer runtime carries its own copy.
	rec obs.Recorder

	// attr is the attribution clock (Config.Attribution, DESIGN.md §14);
	// nil when attribution is off. Touched only on the loop goroutine.
	attr *attrTracker

	// bd is the cross-stream batched decoder (Config.BatchDecode), created
	// lazily on the loop goroutine; the cohort slices are scheduler-owned
	// scratch reused across rounds so steady-state rounds allocate nothing.
	bd        *model.BatchDecoder
	cohort    []*task
	prefills  []*task
	cohortSeq []*model.Sequence
	cohortTok []int
	cohortLg  [][]float32

	mx engineMetrics
}

// task is one request in flight.
type task struct {
	id  uint64
	req Request

	ch        chan Response
	resp      Response
	submitted time.Time

	// scheduler state
	entry   *prefixEntry // non-nil when sharing a prefix
	builder bool         // this task builds entry's snapshot
	// baseSnap and reuse carry a builder's partial prefix reuse: the
	// longest page-aligned (or whole-entry) common prefix found in the radix
	// cache, forked zero-copy at admission so the reused pages survive any
	// later eviction of their source entry. The builder prefills only
	// entry.tokens[reuse:] on top of it.
	baseSnap *model.Snapshot
	reuse    int
	reserved int64
	// spilled is the raw slot count currently accounted host-resident for
	// this task; coldRound is the round it last spilled (LRU order for the
	// next spill pass). Touched only by the scheduler between rounds.
	spilled   int64
	coldRound int64

	// attribution state (Config.Attribution; scheduler-owned): the round the
	// request was first seen, the round it first blocked at the head of the
	// admission queue, how many of its resident rounds decoded as a batched
	// cohort, and its own prefill cost priced at the admit-round barrier.
	seenRound      int64
	holRound       int64
	batchedRounds  int64
	attrOwnPrefill float64

	// decode state (touched only by the worker running this task's step)
	seq       *model.Sequence
	prefilled bool
	lastTok   int
	logits    []float32
	probs     []float64 // sampling scratch, reused across tokens
	sampler   *rng.RNG
	tokenLat  []float64 // seconds per generated token
	prefillN  int       // tokens actually prefilled by this task
	failed    error     // set by a step that cannot proceed
}

// prefixEntry is one cached shared-prefix prefill.
type prefixEntry struct {
	chash    uint64 // content hash, the PrefixResident index key
	tokens   []int
	snap     *model.Snapshot // set by the builder's first step
	ready    bool
	cost     int64
	refs     int    // active tasks forked from (or building) this entry
	seq      uint64 // admission order; deterministic LRU/spill tie-break
	lastUsed int64  // round of last use, for LRU eviction under pressure
	// node anchors the entry in the radix cache (nil under the flat cache).
	node *radixNode
	// spilled is the raw slot count of this entry's pages accounted
	// host-resident (two-tier mode): a cached prefix nobody is decoding from
	// is the coldest state the engine holds.
	spilled int64
}

// NewEngine starts an engine. Callers must Close (or Shutdown) it.
func NewEngine(m *model.Model, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.PageTokens <= 0 {
		cfg.PageTokens = kvcache.DefaultPageTokens
	}
	if cfg.DecodeKVBits != 0 && (cfg.DecodeKVBits < 2 || cfg.DecodeKVBits > 8) {
		panic("serve: DecodeKVBits must be 0 or 2..8")
	}
	mc := m.Config()
	planes := int64(mc.NLayers * mc.NKVHeads)
	e := &Engine{
		m:        m,
		cfg:      cfg,
		planes:   planes,
		exact:    !cfg.WorstCaseAdmission,
		intake:   make(chan []*task, cfg.QueueCap),
		resident: make(map[uint64]int),
		done:     make(chan struct{}),
	}
	e.radix = e.exact && !cfg.FlatPrefixCache
	if e.radix {
		e.cache = newRadixCache(cfg.PageTokens)
	} else {
		e.cache = newFlatCache(cfg.testPrefixHash)
	}
	if e.exact {
		capacity := cfg.KVBudget
		if capacity > 0 {
			capacity *= planes
		}
		hostCap := cfg.HostBudget
		if hostCap > 0 && capacity > 0 {
			hostCap *= planes
		} else {
			hostCap = 0 // host tier needs a finite device budget to tier against
		}
		e.acct = kvcache.NewTieredAccountant(capacity, hostCap)
		e.arena = kvcache.NewArena(cfg.PageTokens, e.acct)
	} else {
		// Worst-case reservations predate the paged arena; they stay
		// single-tier (HostBudget is ignored).
		e.acct = kvcache.NewAccountant(cfg.KVBudget)
		e.arena = kvcache.NewArena(cfg.PageTokens, nil)
	}
	secPerPage := cfg.XferSecPerPage
	if secPerPage <= 0 {
		secPerPage = memsim.AdaRTX6000().SecPerKVPage(mc.HeadDim, cfg.PageTokens)
	}
	e.rt = kvcache.NewTransferRuntime(kvcache.Channel{SecPerPage: secPerPage},
		cfg.SyncTransfers, cfg.ThrottleTransfers)
	e.rec = cfg.Trace
	e.rt.SetTrace(cfg.Trace) // before loop starts: the runtime reads it unlocked
	if cfg.Attribution {
		hw, shape := cfg.ModelHardware, cfg.ModelShape
		if hw.Name == "" {
			hw = memsim.AdaRTX6000()
		}
		if shape.Name == "" {
			shape = memsim.Llama31_8B()
		}
		e.attr = newAttrTracker(memsim.NewLatencyModel(hw, shape, cfg.PageTokens))
	}
	go e.loop()
	return e
}

// Attribution returns the engine's per-request latency attribution
// aggregator (nil unless Config.Attribution is set). Safe to snapshot
// concurrently; fully settled once the engine is closed.
func (e *Engine) Attribution() *obs.Attribution {
	if e.attr == nil {
		return nil
	}
	return e.attr.sink
}

// TransferRuntime exposes the engine's async transfer runtime (read-only use
// intended: overlap gauges for tests and experiments).
func (e *Engine) TransferRuntime() *kvcache.TransferRuntime { return e.rt }

// Arena exposes the engine's page arena (read-only use intended: gauges for
// tests and the pagedkv experiment).
func (e *Engine) Arena() *kvcache.Arena { return e.arena }

// kvUnits converts raw accountant slots to the per-head token units the
// config and metrics speak (a no-op under worst-case admission, whose
// accountant already runs in per-head units).
func (e *Engine) kvUnits(v int64) int64 {
	if e.exact {
		return v / e.planes
	}
	return v
}

// Accountant exposes the shared residency ledger (read-only use intended).
func (e *Engine) Accountant() *kvcache.Accountant { return e.acct }

// Submit enqueues one request. It blocks while the intake queue is full and
// returns immediately with a failed Ticket once the engine is closed.
func (e *Engine) Submit(req Request) *Ticket {
	ts, tickets, ok := e.prepare([]Request{req})
	if !ok {
		return failedTicket(0, ErrClosed)
	}
	if len(ts) > 0 {
		e.intake <- ts
	}
	e.inflight.Done()
	return tickets[0]
}

// TrySubmit is the non-blocking admission probe behind fleet routing: it
// enqueues like Submit when the intake queue has room and reports ok=false —
// without enqueuing, consuming a request id, or touching any counter — when
// the engine is backpressured, so a router can immediately try another
// replica instead of blocking on a saturated one. A closed engine and an
// invalid request behave exactly like Submit: ok is true and the returned
// ticket already carries the failure.
func (e *Engine) TrySubmit(req Request) (*Ticket, bool) {
	e.submitMu.Lock()
	defer e.submitMu.Unlock()
	if e.closed {
		return failedTicket(0, ErrClosed), true
	}
	id := e.nextID + 1
	ch := make(chan Response, 1)
	tk := &Ticket{ID: id, ch: ch}
	err := req.validate()
	if err == nil && !tokensInRange(req.Prompt, e.m.Config().VocabSize) {
		err = ErrBadRequest
	}
	if err != nil {
		e.nextID = id
		e.mx.submitted.Add(1)
		e.mx.observeRejected()
		ch <- Response{ID: id, Err: err}
		return tk, true
	}
	// The send happens under submitMu, so closeIntake (which takes the mutex
	// before closing) cannot race it; select-default keeps it non-blocking
	// against concurrent blocking Submits that send outside the mutex.
	select {
	case e.intake <- []*task{{id: id, req: req, ch: ch, submitted: time.Now()}}:
	default:
		return nil, false // intake full: nothing consumed, nothing enqueued
	}
	e.nextID = id
	e.mx.submitted.Add(1)
	return tk, true
}

// PrefixResident reports whether the engine's prefix cache currently holds
// KV state for the given content hash (see PrefixKey) — building or
// published. Under the radix cache the hash of any page-aligned prefix of a
// cached entry answers true, not just whole-entry hashes. Routers use it to
// place shared-prefix requests on the replica that already paid the prefill.
// The answer is advisory: the scheduler may evict the entry between the
// probe and admission, in which case the request simply rebuilds it.
func (e *Engine) PrefixResident(hash uint64) bool {
	e.resMu.RLock()
	defer e.resMu.RUnlock()
	return e.resident[hash] > 0
}

// ResidentPrefixLen reports the deepest prefix of tokens — probed at every
// page boundary plus the whole slice — whose content hash is resident in the
// engine's prefix cache, 0 when nothing matches. It is the router-side probe
// behind longest-prefix affinity: nested-prefix requests go to the replica
// holding the deepest match. Advisory, like PrefixResident.
func (e *Engine) ResidentPrefixLen(tokens []int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	P := e.cfg.PageTokens
	best := 0
	h := uint64(offset64)
	e.resMu.RLock()
	defer e.resMu.RUnlock()
	for i, t := range tokens {
		h ^= uint64(t)
		h *= prime64
		if (i+1)%P == 0 || i == len(tokens)-1 {
			if e.resident[h] > 0 {
				best = i + 1
			}
		}
	}
	return best
}

// residentHashes lists the hashes entry p registers in the residency index:
// its whole page-aligned prefix chain under the radix cache (each one a depth
// a router probe can reuse), the exact content hash alone under the flat
// cache (all it can reuse).
func (e *Engine) residentHashes(p *prefixEntry) []uint64 {
	if e.radix {
		return alignedPrefixKeys(p.tokens, e.cfg.PageTokens)
	}
	return []uint64{p.chash}
}

func (e *Engine) markResident(p *prefixEntry) {
	e.resMu.Lock()
	for _, h := range e.residentHashes(p) {
		e.resident[h]++
	}
	e.resMu.Unlock()
}

func (e *Engine) unmarkResident(p *prefixEntry) {
	e.resMu.Lock()
	for _, h := range e.residentHashes(p) {
		if e.resident[h]--; e.resident[h] <= 0 {
			delete(e.resident, h)
		}
	}
	e.resMu.Unlock()
}

// Occupancy is a point-in-time load probe for routers: scheduler gauges as of
// the last round barrier plus the live arena footprint.
type Occupancy struct {
	// Queued and Active are the pending-queue depth and decoding-stream count
	// observed at the most recent scheduler round (both 0 while the engine is
	// fully idle).
	Queued, Active int
	// IntakeBacklog is the number of submission batches sitting in the intake
	// queue right now, and IntakeCap its capacity: equal means TrySubmit would
	// report backpressure.
	IntakeBacklog, IntakeCap int
	// LivePages is the arena's current deduplicated page footprint.
	LivePages int64
}

// Occupancy returns the engine's current load gauges. Values are a consistent
// enough snapshot for routing heuristics, not a synchronized one.
func (e *Engine) Occupancy() Occupancy {
	return Occupancy{
		Queued:        int(e.mx.curQueued.Load()),
		Active:        int(e.mx.curActive.Load()),
		IntakeBacklog: len(e.intake),
		IntakeCap:     cap(e.intake),
		LivePages:     e.arena.LivePages(),
	}
}

// Run submits the whole request set as one deterministic batch, waits for
// every response, and returns them in submission order. Given identical
// requests, config and seed, Run produces identical token streams and
// identical scheduling rounds on every call (run it on a fresh engine for
// identical request ids and rounds).
func (e *Engine) Run(reqs []Request) []Response {
	ts, tickets, ok := e.prepare(reqs)
	if !ok {
		out := make([]Response, len(reqs))
		for i := range out {
			out[i] = Response{Err: ErrClosed}
		}
		return out
	}
	if len(ts) > 0 {
		e.intake <- ts
	}
	e.inflight.Done()
	out := make([]Response, len(tickets))
	for i, tk := range tickets {
		out[i] = tk.Wait()
	}
	return out
}

// prepare validates requests and registers the submission. It returns the
// valid tasks to enqueue plus one ticket per request (invalid requests get
// an already-failed ticket). ok is false when the engine is closed. On
// ok, the caller holds one inflight reference and must Done it after
// sending the tasks.
func (e *Engine) prepare(reqs []Request) ([]*task, []*Ticket, bool) {
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return nil, nil, false
	}
	now := time.Now()
	vocab := e.m.Config().VocabSize
	ts := make([]*task, 0, len(reqs))
	tickets := make([]*Ticket, len(reqs))
	for i := range reqs {
		e.nextID++
		id := e.nextID
		ch := make(chan Response, 1)
		tickets[i] = &Ticket{ID: id, ch: ch}
		e.mx.submitted.Add(1)
		err := reqs[i].validate()
		if err == nil && !tokensInRange(reqs[i].Prompt, vocab) {
			err = ErrBadRequest
		}
		if err != nil {
			e.mx.observeRejected()
			ch <- Response{ID: id, Err: err}
			continue
		}
		ts = append(ts, &task{id: id, req: reqs[i], ch: ch, submitted: now})
	}
	e.inflight.Add(1)
	e.submitMu.Unlock()
	return ts, tickets, true
}

// Close stops intake and blocks until every accepted request has completed
// (graceful drain).
func (e *Engine) Close() {
	e.closeIntake()
	<-e.done
}

// Shutdown drains like Close but aborts outstanding requests with
// ErrAborted when the context expires first, returning the context error.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.closeIntake()
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		e.abort.Store(true)
		<-e.done
		return ctx.Err()
	}
}

func (e *Engine) closeIntake() {
	e.submitMu.Lock()
	already := e.closed
	e.closed = true
	e.submitMu.Unlock()
	if already {
		return
	}
	e.inflight.Wait() // every in-flight Submit/Run send has landed
	close(e.intake)
}

// ---- Scheduler --------------------------------------------------------------

// loop is the scheduler: a round-based continuous-batching loop. Each round
// admits from the pending queue under the KV budget, runs one step (prefill
// or one decode token) for every active stream on the worker pool, and
// retires finished streams so the next round can admit replacements.
func (e *Engine) loop() {
	defer close(e.done)
	defer e.rt.Close()
	var (
		pending []*task
		active  []*task
		round   int64
		open    = true
	)
	for {
		// Intake: block only when fully idle; otherwise drain what's there.
		if open && len(pending) == 0 && len(active) == 0 {
			e.mx.curQueued.Store(0)
			e.mx.curActive.Store(0)
			batch, ok := <-e.intake
			if !ok {
				open = false
			} else {
				pending = append(pending, batch...)
			}
		}
		for open {
			select {
			case batch, ok := <-e.intake:
				if !ok {
					open = false
				} else {
					pending = append(pending, batch...)
				}
				continue
			default:
			}
			break
		}
		if e.abort.Load() {
			pending = e.failAll(pending, active)
			active = nil
		}
		if len(pending) == 0 && len(active) == 0 {
			e.mx.curQueued.Store(0)
			e.mx.curActive.Store(0)
			if !open {
				e.releasePrefixes()
				return
			}
			continue
		}

		round++
		if e.attr != nil {
			e.attr.markSeen(pending, round)
		}
		// Admission: FIFO with head-of-line blocking, so a burst of small
		// requests cannot starve a large one forever.
		for len(pending) > 0 && len(active) < e.cfg.MaxBatch {
			t := pending[0]
			st := e.admit(t, round)
			if st == admitWait {
				if e.attr != nil && t.holRound == 0 {
					t.holRound = round
				}
				break
			}
			pending = pending[1:]
			if st == admitFailed {
				continue
			}
			active = append(active, t)
		}
		e.mx.observeRound(len(pending), len(active))
		e.rec.Emit(obs.Event{Type: obs.EvRoundBegin, Round: round,
			N: int64(len(active)), Aux: int64(len(pending))})
		if len(active) == 0 {
			// Nothing runnable this round. With correct accounting this is
			// unreachable while requests are pending (retirement or prefix
			// eviction always frees room eventually); yield briefly rather
			// than spin in case a queued head is waiting on intake churn.
			if len(pending) > 0 {
				time.Sleep(time.Millisecond)
			}
			continue
		}

		e.runRound(active, round)
		// Two-tier residency: spill cold pages host-ward before sampling, so
		// the device gauge reflects the post-round steady state the budget
		// promises. Spill decisions depend only on round-deterministic state
		// (page counts, budgets, rounds), never on wall clock.
		e.spillCold(active, round)
		// High-water sampling at the round barrier: within a round only
		// workers allocate (frees happen on this goroutine between rounds),
		// so the end-of-round gauge is the round's deterministic maximum —
		// unlike the accountant's internal peak, which can catch transient
		// COW release/alloc interleavings in either order.
		e.mx.observeKV(e.acct.Used(), e.acct.DeviceUsed(), e.acct.HostUsed())
		e.rec.Emit(obs.Event{Type: obs.EvRoundEnd, Round: round,
			N: e.kvUnits(e.acct.DeviceUsed()), Aux: e.kvUnits(e.acct.HostUsed())})
		if e.attr != nil {
			// Price the finished round on the attribution clock before any
			// retirement below reads it.
			e.attr.endRound(active, round)
		}

		// Post-round: publish built prefixes, retire finished tasks. A
		// builder that failed before its snapshot existed unpublishes the
		// entry, so later same-prefix requests rebuild instead of waiting
		// forever on a never-ready entry.
		for _, t := range active {
			if !t.builder || t.entry.ready {
				continue
			}
			if t.entry.snap != nil {
				t.entry.ready = true
			} else if t.failed != nil {
				e.cache.remove(t.entry)
				e.releaseEntry(t.entry)
			}
		}
		n := 0
		for _, t := range active {
			if t.failed != nil {
				e.retire(t, round, t.failed)
				continue
			}
			if len(t.resp.Tokens) >= t.req.MaxNewTokens {
				e.retire(t, round, nil)
				continue
			}
			active[n] = t
			n++
		}
		active = active[:n]
	}
}

type admitStatus int

const (
	admitOK admitStatus = iota
	admitWait
	admitFailed
)

// admit tries to activate the pending head. It resolves the request against
// the prefix cache (exact hit, partial radix reuse, or a new builder entry),
// reserves the request's KV cost (plus the cache entry's when it creates
// one), and wires the task to its prefix entry.
func (e *Engine) admit(t *task, round int64) admitStatus {
	r := &t.req
	share := !e.cfg.NoPrefixCache && r.SharedPrefixLen > 0
	var (
		entry *prefixEntry
		reuse int
	)
	if share {
		lk := e.cache.lookup(r.Prompt[:r.SharedPrefixLen])
		if lk.wait {
			// Someone is building this prefix (or a deeper reusable ancestor)
			// right now; wait a round rather than duplicating the prefill.
			return admitWait
		}
		if lk.exact != nil {
			entry = lk.exact
			reuse = r.SharedPrefixLen
			entry.refs++ // pin across the eviction loop below
		} else if lk.best != nil {
			// Partial ancestor reuse: fork the reusable prefix now, on the
			// scheduler goroutine — the fork pins the shared pages even if
			// the source entry is evicted before the build step runs.
			reuse = lk.reuse
			t.baseSnap = lk.best.snap.Prefix(reuse)
			lk.best.lastUsed = round
		}
	}
	builds := share && entry == nil
	unpin := func() {
		if entry != nil {
			entry.refs--
		}
		if t.baseSnap != nil {
			t.baseSnap.Release()
			t.baseSnap = nil
		}
	}

	// Worst-case mode: the prefix's residency is accounted on the cache
	// entry (created below if absent), so the request itself is always
	// charged only its marginal tail, held until retirement.
	//
	// Exact mode: the arena charges actual pages as prefill/decode allocate
	// them, deduplicated by refcount, so shared prefix pages are charged
	// once no matter how many forks hold them. Admission reserves only a
	// provisional hold — the request's expected prefill pages plus a small
	// decode headroom — which the prefill step swaps for the real page
	// charges.
	cost := kvCost(r, share)
	if e.exact {
		// Gate on the smaller of the page estimate and the legacy device
		// worst-case: a budgeted selector keeps at most Budget tokens per
		// head device-resident, so its arena pages beyond that are simulated
		// host memory and must not make the request unadmittable — exact
		// admission accepts a superset of what worst-case reservation
		// accepts at the same KVBudget. The hold is provisional either way;
		// real page charges replace it at prefill.
		legacy := cost * e.planes
		if builds {
			legacy += int64(r.SharedPrefixLen) * e.planes
		}
		cost = e.pageEstimate(r, share, builds, reuse)
		if legacy < cost {
			cost = legacy
		}
	}
	need := cost
	var newEntry *prefixEntry
	if builds {
		newEntry = &prefixEntry{tokens: r.Prompt[:r.SharedPrefixLen]}
		newEntry.chash = prefixKey(newEntry.tokens)
		if !e.exact {
			newEntry.cost = int64(r.SharedPrefixLen)
			need += newEntry.cost
		}
	}
	granted := e.acct.TryReserve(need)
	for !granted && e.evictIdlePrefix(round) {
		// Free idle cached prefixes (oldest first) and retry. The entry and
		// pages this admission relies on are safe: the hit entry is pinned by
		// refs above, and partial reuse holds its own page references through
		// t.baseSnap.
		granted = e.acct.TryReserve(need)
	}
	if !granted {
		unpin()
		// A request too large for the *combined* device + host capacity can
		// never be admitted; anything smaller waits for retirements (and,
		// with a host tier, for spills) to free room.
		if cap := e.acct.TotalCapacity(); cap > 0 && need > cap {
			e.rec.Emit(obs.Event{Type: obs.EvRefuse, Round: round,
				Req: t.id, N: e.kvUnits(need)})
			e.retire(t, round, ErrTooLarge)
			return admitFailed
		}
		return admitWait // budget busy; retirement will free room
	}
	t.reserved = cost
	if newEntry != nil {
		newEntry.seq = e.cacheSeq
		e.cacheSeq++
		e.cache.insert(newEntry)
		e.markResident(newEntry)
		entry = newEntry
		entry.refs++
		t.builder = true
		t.reuse = reuse
	}
	if entry != nil {
		entry.lastUsed = round
		t.entry = entry
		t.resp.PrefixHit = !t.builder
		t.resp.PrefixReusedTokens = reuse
	}
	t.resp.ID = t.id
	t.resp.KVReserved = e.kvUnits(t.reserved)
	t.resp.AdmitRound = round
	t.resp.QueueWait = time.Since(t.submitted)
	if t.req.Temperature > 0 {
		t.sampler = rng.New(e.cfg.Seed ^ (t.id * 0x9e3779b97f4a7c15))
	}
	e.mx.observeAdmit(t)
	if e.rec.Enabled() {
		var disp int64 // prefix disposition: 0 none, 1 hit, 2 builds
		switch {
		case t.builder:
			disp = 2
			e.rec.Emit(obs.Event{Type: obs.EvPrefixMiss, Round: round,
				Req: t.id, N: int64(r.SharedPrefixLen), Aux: int64(reuse)})
		case t.entry != nil:
			disp = 1
			e.rec.Emit(obs.Event{Type: obs.EvPrefixHit, Round: round,
				Req: t.id, N: int64(r.SharedPrefixLen)})
		}
		e.rec.Emit(obs.Event{Type: obs.EvAdmit, Round: round,
			Req: t.id, N: e.kvUnits(cost), Aux: disp})
	}
	return admitOK
}

// pageEstimate is the exact-admission gate: the raw slots (tokens × planes,
// page-rounded) the request's prefill will allocate, plus a small decode
// headroom of at most one page per plane. Unlike kvCost it deliberately does
// NOT reserve the full MaxNewTokens worst case — decode growth is charged
// page by page as it happens and throttles later admissions instead, which
// is what lets the exact accountant admit long-generation loads the
// worst-case policy refuses outright.
//
// reuse is the token depth served from cached pages (the whole prefix on a
// hit, the forked ancestor depth for a partial-reuse builder, 0 cold):
// those pages are already charged and shared by refcount, so only tokens
// past it allocate. A copy-on-write tail page is charged only when the fork
// point actually splits a page — a page-aligned fork shares every page
// purely and copies nothing.
func (e *Engine) pageEstimate(r *Request, share, builds bool, reuse int) int64 {
	p := int64(e.arena.PageTokens())
	toks := int64(len(r.Prompt)) + 1 // +1: re-fed last prompt token
	if share {
		toks -= int64(reuse)
	}
	headroom := int64(r.MaxNewTokens)
	if headroom > p {
		headroom = p
	}
	toks += headroom
	pages := (toks + p - 1) / p
	if share && int64(r.SharedPrefixLen)%p != 0 {
		pages++ // COW of the snapshot's partially filled tail page at the task's fork
	}
	if builds && int64(reuse)%p != 0 {
		pages++ // COW of the ancestor's tail page at the builder's fork
	}
	return pages * p * e.planes
}

// evictIdlePrefix drops the least-recently-used unreferenced prefix entry,
// releasing its reservation, with admission order (entry seq) as the
// deterministic tie-break when several entries went idle in the same round.
// It reports whether anything was evicted.
func (e *Engine) evictIdlePrefix(round int64) bool {
	victim := e.cache.evictVictim()
	if victim == nil {
		return false
	}
	e.cache.remove(victim)
	released := victim.cost // 0 under exact accounting: pages free on release
	e.releaseEntry(victim)
	e.mx.prefixEvicted.Add(1)
	e.rec.Emit(obs.Event{Type: obs.EvPrefixEvict, Round: round, N: e.kvUnits(released)})
	return true
}

// releaseEntry returns a prefix entry's resources: the worst-case
// reservation (legacy mode) and the snapshot's page references — pages still
// shared with live forks survive until those sequences retire, so evicting a
// busy prefix never invalidates its descendants.
func (e *Engine) releaseEntry(p *prefixEntry) {
	e.unmarkResident(p)
	if p.cost > 0 {
		e.acct.Release(p.cost)
		p.cost = 0
	}
	// Host-accounted slots stay host-side (Release clamps them to the live
	// total); the rebalance pass promotes survivors back as headroom allows.
	p.spilled = 0
	if p.snap != nil {
		p.snap.Release()
		p.snap = nil
	}
}

// runRound executes one step for every active task. Under Config.BatchDecode
// a round with a cohort of ≥2 decoding streams splits into lock-step phases:
// prefill steps run with the usual task-parallel fan-out, then the decode
// cohort advances one token through the batched decoder (one GEMM per weight
// matrix across the cohort, DESIGN.md §13). Otherwise — knob off, or fewer
// than two decoders this round — every task steps independently via stepAll.
// Both shapes produce bit-identical tokens: steps are independent (each task
// owns its sequence) and the batched kernels preserve per-stream reduction
// order, so execution order within a round never affects outputs.
func (e *Engine) runRound(active []*task, round int64) {
	if e.cfg.BatchDecode && e.batchRound(active, round) {
		return
	}
	e.stepAll(active)
}

// stepAll is the task-parallel round executor: inline when Workers <= 1,
// otherwise fanned out onto the shared parallel pool and barriered.
func (e *Engine) stepAll(tasks []*task) {
	if e.cfg.Workers <= 1 {
		for _, t := range tasks {
			e.step(t)
		}
		return
	}
	// Floor-grain yields between Workers and 2×Workers-1 blocks, so the
	// pool's dynamic block counter can rebalance a heavy prefill step away
	// from the decodes sharing its block; actual concurrency is further
	// bounded by the shared pool width. e.step recovers panics itself, so
	// fn never panics into the pool.
	grain := len(tasks) / e.cfg.Workers
	if grain < 1 {
		grain = 1
	}
	parallel.Default().For(len(tasks), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.step(tasks[i])
		}
	})
}

// batchRound partitions the round into prefill steps and a decode cohort and
// runs them as phases. It reports false — caller falls back to stepAll —
// when fewer than two streams are decoding, so single-stream rounds keep the
// per-stream path with zero overhead. Solo/batched stream counts feed the
// decode-batch metrics; prefill steps (whose first token rides the prefill
// round per-stream) are counted in neither.
func (e *Engine) batchRound(active []*task, round int64) bool {
	cohort, prefills := e.cohort[:0], e.prefills[:0]
	for _, t := range active {
		if t.prefilled {
			cohort = append(cohort, t)
		} else {
			prefills = append(prefills, t)
		}
	}
	e.cohort, e.prefills = cohort, prefills
	defer func() {
		for i := range cohort {
			cohort[i] = nil
		}
		for i := range prefills {
			prefills[i] = nil
		}
	}()
	if len(cohort) < 2 {
		e.mx.observeBatch(0, len(cohort))
		return false
	}
	if len(prefills) > 0 {
		e.stepAll(prefills)
	}
	if e.bd == nil {
		e.bd = e.m.NewBatchDecoder()
	}
	seqs, toks, lgs := e.cohortSeq[:0], e.cohortTok[:0], e.cohortLg[:0]
	for _, t := range cohort {
		seqs = append(seqs, t.seq)
		toks = append(toks, t.lastTok)
		lgs = append(lgs, t.logits)
	}
	e.cohortSeq, e.cohortTok, e.cohortLg = seqs, toks, lgs
	if e.attr != nil {
		for _, t := range cohort {
			t.batchedRounds++
		}
	}
	e.rec.Emit(obs.Event{Type: obs.EvBatchRound, Round: round,
		N: int64(len(cohort)), Aux: int64(len(prefills))})
	e.batchDecodeCohort(cohort, seqs, toks, lgs)
	e.mx.observeBatch(len(cohort), 0)
	// Drop the sequence/logits references so retired tasks aren't pinned by
	// engine scratch until the next batched round.
	for i := range seqs {
		seqs[i] = nil
		lgs[i] = nil
	}
	return true
}

// batchDecodeCohort advances every cohort member one token through the
// batched decoder, then samples per task on the scheduler goroutine. The
// cohort shares one wall-clock measurement: members ran concurrently, so
// each token's latency is the cohort round time. A panic (arena exhaustion
// mid-phase can leave members at different positions) fails the whole
// cohort — the members retire at the round barrier like any failed step.
func (e *Engine) batchDecodeCohort(cohort []*task, seqs []*model.Sequence, toks []int, lgs [][]float32) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok {
				err = ErrBadRequest
			}
			for _, t := range cohort {
				if t.failed == nil {
					t.failed = err
				}
			}
		}
	}()
	start := time.Now()
	e.bd.DecodeInto(seqs, toks, lgs)
	el := time.Since(start).Seconds()
	for _, t := range cohort {
		t.lastTok = t.sample()
		t.resp.Tokens = append(t.resp.Tokens, t.lastTok)
		t.tokenLat = append(t.tokenLat, el)
	}
}

// spillCold is the between-rounds tiering pass of two-tier admission,
// rebalancing the accountant toward the device budget in both directions.
// While device residency exceeds the budget, cold slots of active budgeted
// sequences are re-accounted host-resident, oldest spill first (LRU by
// coldRound, task id as the deterministic tiebreak). "Cold" means pages
// beyond the sequence's device working set — a budgeted selector keeps at
// most Budget tokens (plus the decode tail's page) hot per head; everything
// else already lives host-side in its own residency ledger, so the spill is
// pure accounting plus modeled device→host channel time. When retirements
// open device headroom instead, previously spilled slots are promoted back
// (most recent spill first, so long-cold pages stay host). Runs only on the
// scheduler goroutine at the round barrier (workers are quiescent), on
// round-deterministic state.
func (e *Engine) spillCold(active []*task, round int64) {
	if !e.exact || e.acct.HostCapacity() <= 0 {
		return
	}
	devCap := e.acct.Capacity()
	if devCap <= 0 {
		return
	}
	P := int64(e.arena.PageTokens())
	excess := e.acct.DeviceUsed() - devCap
	if excess <= 0 {
		if headroom := -excess; headroom > 0 {
			e.promoteSpilled(active, headroom, P, round)
		}
		return
	}
	spillStart := excess
	// Idle cached prefixes spill first: a snapshot nobody decodes from has
	// no hot working set at all (its pages are read again only on the next
	// prefix hit, which pays a fetch either way). Entries with live forks
	// are skipped — their pages are claimed, hot floor included, through the
	// forks' own cold accounting below. Oldest use first, deterministic.
	var entries []*prefixEntry
	for _, p := range e.cache.entries(nil) {
		if p.ready && p.snap != nil && p.refs == 0 {
			entries = append(entries, p)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].lastUsed != entries[j].lastUsed {
			return entries[i].lastUsed < entries[j].lastUsed
		}
		return entries[i].seq < entries[j].seq
	})
	for _, p := range entries {
		if excess <= 0 {
			break
		}
		cold := p.snap.NumPages()*P - p.spilled
		if cold <= 0 {
			continue
		}
		d := cold
		if d > excess {
			d = excess
		}
		e.acct.MoveToHost(d)
		p.spilled += d
		excess -= d
		e.mx.spilled.Add(d)
		e.rt.AccountPages(int((d + P - 1) / P))
	}
	cands := make([]*task, 0, len(active))
	for _, t := range active {
		if t.seq != nil && t.req.Budget > 0 && t.req.NewSelector != nil {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].coldRound != cands[j].coldRound {
			return cands[i].coldRound < cands[j].coldRound
		}
		return cands[i].id < cands[j].id
	})
	for _, t := range cands {
		if excess <= 0 {
			break
		}
		cold := e.coldSlots(t) - t.spilled
		if cold <= 0 {
			continue
		}
		d := cold
		if d > excess {
			d = excess
		}
		e.acct.MoveToHost(d)
		t.spilled += d
		t.coldRound = round
		excess -= d
		e.mx.spilled.Add(d)
		// Device→host copies consume modeled channel time too; nobody waits
		// on them (the fetch path pays to bring pages back).
		e.rt.AccountPages(int((d + P - 1) / P))
	}
	if moved := spillStart - excess; moved > 0 {
		if e.attr != nil {
			e.attr.addTierSlots(moved)
		}
		e.rec.Emit(obs.Event{Type: obs.EvPageSpill, Round: round, N: e.kvUnits(moved)})
	}
}

// promoteSpilled moves host-accounted slots back device-side while headroom
// allows, unwinding the most recent spills first. Residual host accounting
// left by retired tasks (their shared pages outliving them) is promoted once
// the active claims are exhausted.
func (e *Engine) promoteSpilled(active []*task, headroom, pageTokens, round int64) {
	avail := e.acct.HostUsed()
	if avail == 0 {
		return
	}
	promote := headroom
	if promote > avail {
		promote = avail
	}
	e.acct.MoveToDevice(promote)
	e.rt.AccountPages(int((promote + pageTokens - 1) / pageTokens))
	if e.attr != nil {
		e.attr.addTierSlots(promote)
	}
	e.rec.Emit(obs.Event{Type: obs.EvPagePromote, Round: round, N: e.kvUnits(promote)})
	// Shrink per-task claims newest-spill-first so future pressure can spill
	// them again; cached-prefix claims (the coldest) unwind last, and any
	// residue beyond both belonged to retired tasks and needs no bookkeeping.
	cands := make([]*task, 0, len(active))
	for _, t := range active {
		if t.spilled > 0 {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].coldRound != cands[j].coldRound {
			return cands[i].coldRound > cands[j].coldRound
		}
		return cands[i].id > cands[j].id
	})
	left := promote
	for _, t := range cands {
		if left <= 0 {
			break
		}
		d := t.spilled
		if d > left {
			d = left
		}
		t.spilled -= d
		left -= d
	}
	if left <= 0 {
		return
	}
	var entries []*prefixEntry
	for _, p := range e.cache.entries(nil) {
		if p.spilled > 0 {
			entries = append(entries, p)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].lastUsed != entries[j].lastUsed {
			return entries[i].lastUsed > entries[j].lastUsed
		}
		return entries[i].seq > entries[j].seq
	})
	for _, p := range entries {
		if left <= 0 {
			break
		}
		d := p.spilled
		if d > left {
			d = left
		}
		p.spilled -= d
		left -= d
	}
}

// coldSlots returns the raw slots of t's sequence that sit beyond its
// selector's device working set: per (layer, head) plane, pages past the
// Budget hot tokens plus one tail page. Shared prefix pages may be claimed
// cold by several forks; spillCold bounds total movement by the actual
// device excess, so over-attribution cannot underflow the accountant.
func (e *Engine) coldSlots(t *task) int64 {
	P := e.arena.PageTokens()
	mc := e.m.Config()
	var cold int64
	for l := 0; l < mc.NLayers; l++ {
		for kv := 0; kv < mc.NKVHeads; kv++ {
			st := t.seq.Store(l, kv)
			n := st.Len()
			hot := t.req.Budget
			if hot > n {
				hot = n
			}
			hotPages := (hot+P-1)/P + 1 // + the decode tail's page
			if total := st.NumPages(); total > hotPages {
				cold += int64(total-hotPages) * int64(P)
			}
		}
	}
	return cold
}

// step advances one task by one unit of work: its prefill plus first token
// on the first round after admission, one decoded token afterwards.
func (e *Engine) step(t *task) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				t.failed = err
			} else {
				t.failed = ErrBadRequest
			}
		}
	}()
	if !t.prefilled {
		e.prefillStep(t)
		return
	}
	start := time.Now()
	t.decodeOne()
	t.tokenLat = append(t.tokenLat, time.Since(start).Seconds())
}

func (e *Engine) prefillStep(t *task) {
	if e.exact && t.reserved > 0 {
		// Swap the admission hold for the real page charges the allocations
		// below make. Admission only runs between rounds, so nothing races
		// the window between release and allocation.
		e.acct.Release(t.reserved)
		t.reserved = 0
	}
	r := &t.req
	var sel attention.Selector
	if r.NewSelector != nil {
		sel = r.NewSelector()
		if ra, ok := sel.(attention.RuntimeAware); ok {
			// Route the selector's simulated KV movement through the
			// engine-wide async channel (layer-ahead prefetch and overlap
			// accounting come with it).
			ra.SetTransferRuntime(e.rt)
		}
	}
	if t.entry != nil {
		if t.builder {
			switch {
			case t.baseSnap != nil && t.reuse == len(t.entry.tokens):
				// The forked ancestor already covers the whole prefix (its
				// page-aligned length coincides with a deeper cached entry's
				// coverage): the fork *is* the snapshot, nothing to prefill.
				t.entry.snap = t.baseSnap
				t.baseSnap = nil
			case t.baseSnap != nil:
				// Continue from the forked ancestor pages and prefill only
				// the uncovered suffix of the prefix.
				base := e.m.NewSequenceFrom(t.baseSnap, nil, 0)
				func() {
					defer base.Release()
					base.Prefill(t.entry.tokens[t.reuse:], nil)
					t.entry.snap = base.Snapshot()
				}()
				t.baseSnap.Release()
				t.baseSnap = nil
				t.prefillN += len(t.entry.tokens) - t.reuse
			default:
				base := e.m.NewSequenceIn(e.arena, nil, 0)
				func() {
					// The snapshot retains the prefix pages; drop the builder
					// sequence's own references even if Prefill panics, so a
					// failed build never strands pages on the accountant.
					defer base.Release()
					base.Prefill(t.entry.tokens, nil)
					t.entry.snap = base.Snapshot() // published by the scheduler post-round
				}()
				t.prefillN += len(t.entry.tokens)
			}
		}
		if e.cfg.DecodeKVBits > 0 && t.builder && t.entry.snap != nil {
			// Publish-time conversion: the builder released its references
			// above, so the entry's fresh pages are exclusively held here and
			// convert; pages still shared with a radix ancestor stay float32.
			t.entry.snap.QuantizeCompute(e.cfg.DecodeKVBits)
		}
		t.seq = e.m.NewSequenceFrom(t.entry.snap, sel, r.Budget)
		t.seq.SetKVQuantDecode(e.cfg.DecodeKVBits)
		suffix := r.Prompt[r.SharedPrefixLen:]
		t.seq.Prefill(suffix, nil)
		t.prefillN += len(suffix)
	} else {
		t.seq = e.m.NewSequenceIn(e.arena, sel, r.Budget)
		t.seq.SetKVQuantDecode(e.cfg.DecodeKVBits)
		t.seq.Prefill(r.Prompt, nil)
		t.prefillN += len(r.Prompt)
	}
	t.logits = make([]float32, e.m.Config().VocabSize)
	t.lastTok = r.Prompt[len(r.Prompt)-1]
	t.prefilled = true
	// First generated token rides the prefill round (its logits come from
	// re-feeding the last prompt token, the repository's decode idiom).
	t.decodeOne()
	t.resp.TTFT = time.Since(t.submitted)
}

func (t *task) decodeOne() {
	t.seq.DecodeInto(t.lastTok, t.logits)
	t.lastTok = t.sample()
	t.resp.Tokens = append(t.resp.Tokens, t.lastTok)
}

// sample picks the next token: greedy argmax (lowest index wins ties) or
// seeded softmax sampling at Temperature.
func (t *task) sample() int {
	logits := t.logits
	if t.sampler == nil {
		best := 0
		for i, v := range logits {
			if v > logits[best] {
				best = i
			}
		}
		return best
	}
	invT := 1 / t.req.Temperature
	maxv := float64(logits[0])
	for _, v := range logits[1:] {
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	if t.probs == nil {
		t.probs = make([]float64, len(logits))
	}
	var sum float64
	probs := t.probs
	for i, v := range logits {
		p := math.Exp((float64(v) - maxv) * invT)
		probs[i] = p
		sum += p
	}
	u := t.sampler.Float64() * sum
	var acc float64
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(logits) - 1
}

// retire releases a task's resources and delivers its response: any
// still-held reservation (the worst-case hold, or an exact-mode admission
// hold the prefill never swapped out), the sequence's pages, and the prefix
// entry reference.
func (e *Engine) retire(t *task, round int64, err error) {
	// Attribution breakdown first: the stall harvest reads the sequence's
	// selector ledgers, which Release below tears down. Aborted tasks
	// (round < 0) carry no modeled span.
	var bd *obs.Breakdown
	if e.attr != nil && round > 0 {
		bd = e.attr.finish(t, round, -1)
	}
	if t.reserved > 0 {
		e.acct.Release(t.reserved)
		t.reserved = 0
	}
	// Host-accounted (spilled) slots are NOT moved back on retirement: shared
	// prefix pages this fork claimed cold typically stay live through the
	// snapshot and sibling forks, and yanking them device-side would force a
	// pointless re-spill. Release clamps host accounting to the live total,
	// and the next round's tier rebalance promotes slots back as device
	// headroom appears.
	t.spilled = 0
	if t.seq != nil {
		if e.cfg.DecodeKVBits > 0 {
			qr, fr := t.seq.KVQuantRuns()
			e.mx.quantRuns.Add(qr)
			e.mx.floatRuns.Add(fr)
		}
		t.seq.Release()
		t.seq = nil
	}
	if t.baseSnap != nil {
		// A builder that failed before consuming its partial-reuse fork (or
		// whose prefill panicked mid-build) still holds the forked pages.
		t.baseSnap.Release()
		t.baseSnap = nil
	}
	if t.entry != nil {
		t.entry.refs--
		t.entry = nil
	}
	t.resp.Err = err
	t.resp.DoneRound = round
	t.resp.Total = time.Since(t.submitted)
	if bd != nil {
		t.resp.Breakdown = bd
		e.attr.sink.Observe(*bd)
		obs.EmitSpans(e.rec, bd, e.attr.clockAt(bd.SeenRound-1))
	}
	e.mx.observeRetire(t, err)
	if e.rec.Enabled() {
		var failed int64
		if err != nil {
			failed = 1
		}
		e.rec.Emit(obs.Event{Type: obs.EvRetire, Round: round,
			Req: t.id, N: int64(len(t.resp.Tokens)), Aux: failed})
	}
	t.ch <- t.resp
}

// failAll aborts every pending and active task (Shutdown past deadline).
func (e *Engine) failAll(pending, active []*task) []*task {
	for _, t := range active {
		e.retire(t, -1, ErrAborted)
	}
	for _, t := range pending {
		e.retire(t, -1, ErrAborted)
	}
	e.releasePrefixes()
	return nil
}

// releasePrefixes returns all cached prefix reservations and pages.
func (e *Engine) releasePrefixes() {
	for _, p := range e.cache.entries(nil) {
		e.cache.remove(p)
		e.releaseEntry(p)
	}
}

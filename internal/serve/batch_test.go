package serve

import (
	"runtime"
	"testing"

	"clusterkv/internal/obs"
	"clusterkv/internal/workload"
)

// Serve-level lock for Config.BatchDecode: flipping cross-stream batched
// decode on must not change a single token, round number, or counter of a
// full engine run — the batched GEMM path is bit-identical to per-stream
// GEMVs (internal/model conformance suite), so the only thing batching may
// change is wall-clock speed. These tests compare full run fingerprints with
// the flag off (the zero Config default) and on (the DefaultConfig default)
// across schedules, loads, and KV quantization.

func batchOn(c *Config) { c.BatchDecode = true }

// TestBatchDecodeMatchesPerStream is the headline on/off equality: the qa
// load, serial and parallel, batched vs per-stream, full-fingerprint equal.
func TestBatchDecodeMatchesPerStream(t *testing.T) {
	reqs := loadRequests(t)
	cases := []struct {
		name           string
		procs, workers int
	}{
		{"serial", 1, 1},
		{"gomaxprocs=2", 2, 2},
		{"parallel", runtime.NumCPU(), runtime.NumCPU()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off := runEngineAt(t, tc.procs, tc.workers, reqs)
			on := runEngineAt(t, tc.procs, tc.workers, reqs, batchOn)
			if d := off.diff(on); d != "" {
				t.Fatalf("batched run differs from per-stream: %s", d)
			}
		})
	}
}

// TestBatchDecodeMatchesPerStreamQuantized repeats the on/off equality with
// int8 KV decode, so the batched path's per-stream quantized append and
// dequantizing attention are covered end to end.
func TestBatchDecodeMatchesPerStreamQuantized(t *testing.T) {
	reqs := loadRequests(t)
	int8KV := func(c *Config) { c.DecodeKVBits = 8 }
	for _, procs := range []int{1, 2} {
		off := runEngineAt(t, procs, procs, reqs, int8KV)
		on := runEngineAt(t, procs, procs, reqs, int8KV, batchOn)
		if d := off.diff(on); d != "" {
			t.Fatalf("gomaxprocs=%d: batched int8-KV run differs from per-stream: %s", procs, d)
		}
	}
}

// TestBatchDecodeMatchesPerStreamNested runs the on/off equality over the
// nested multi-turn conversation load, where cohort members carry radix
// partially-reused CoW pages and admissions/retirements reshape the cohort
// every few rounds.
func TestBatchDecodeMatchesPerStreamNested(t *testing.T) {
	cc := workload.DefaultConversationConfig()
	cc.Doc.VocabSize = 128
	cc.Doc.NTopics = 8
	cc.Doc.Seed = 53
	reqs := nestedRequests(workload.ConversationLoad(cc))
	for i := range reqs {
		reqs[i].Temperature = 0.8
	}
	off := runEngineAt(t, 1, 1, reqs)
	if off.prefixPartial == 0 {
		t.Fatalf("nested conversation load produced no partial radix hits")
	}
	for _, procs := range []int{1, 2} {
		on := runEngineAt(t, procs, procs, reqs, batchOn)
		if d := off.diff(on); d != "" {
			t.Fatalf("gomaxprocs=%d: batched nested-load run differs from per-stream: %s", procs, d)
		}
	}
}

// TestBatchDecodeTracedAndCounted locks the observability contract for the
// batched path: a traced batched run fingerprints identically to an untraced
// one, the trace carries EvBatchRound events whose cohort sizes sum to the
// batched-streams counter, and the engine metrics report the batched/solo
// split.
func TestBatchDecodeTracedAndCounted(t *testing.T) {
	reqs := loadRequests(t)
	base := runEngineAt(t, 2, 2, reqs, batchOn)

	tracer := obs.NewTracer(0)
	traced := runEngineAt(t, 2, 2, reqs, batchOn,
		func(c *Config) { c.Trace = tracer.Recorder(0) })
	if d := base.diff(traced); d != "" {
		t.Fatalf("traced batched run differs from untraced: %s", d)
	}

	var batchRounds, batchedStreams int64
	for _, ev := range tracer.Events() {
		if ev.Type == obs.EvBatchRound {
			batchRounds++
			batchedStreams += ev.N
			if ev.N < 2 {
				t.Fatalf("EvBatchRound with cohort %d; batching requires >= 2", ev.N)
			}
		}
	}
	if batchRounds == 0 {
		t.Fatalf("MaxBatch=4 load with %d requests produced no batched rounds", len(reqs))
	}

	// Re-run once more with direct engine access to cross-check the metrics
	// against an equally configured traced run.
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 4, KVBudget: 2048, Seed: 7, BatchDecode: true,
	})
	eng.Run(reqs)
	m := eng.Metrics()
	eng.Close()
	if m.BatchRounds != batchRounds {
		t.Fatalf("metrics report %d batch rounds, trace saw %d", m.BatchRounds, batchRounds)
	}
	if m.DecodeStreamsBatched != batchedStreams {
		t.Fatalf("metrics report %d batched streams, trace saw %d", m.DecodeStreamsBatched, batchedStreams)
	}
	if int64(m.CohortSize.N) != batchRounds {
		t.Fatalf("cohort histogram count %d, want %d", m.CohortSize.N, batchRounds)
	}
	if m.CohortSize.Max > 4 {
		t.Fatalf("cohort max %v exceeds MaxBatch=4", m.CohortSize.Max)
	}
}

package serve

// The engine's prefix cache behind one scheduler-owned interface, with two
// implementations:
//
//   - flatCache: the original exact-match design — one entry per distinct
//     shared prefix, content-hashed into buckets, reuse only when a request's
//     declared prefix matches a cached entry token for token. Retained for
//     comparison (bench -exp radix) and as the worst-case-admission cache.
//   - radixCache: a radix tree over page-aligned token runs. Entries anchor at
//     the node covering their page-aligned prefix and keep their sub-page tail
//     inline, so nested prefixes (multi-turn chat, agentic re-entry, templated
//     RAG) share structure: a lookup that misses exactly still finds the
//     deepest cached ancestor and reuses its pages up to the longest
//     page-aligned common prefix via a zero-copy truncated fork
//     (model.Snapshot.Prefix).
//
// Tree nodes themselves own no pages — entries do, through their snapshots;
// interior nodes are pure structure and are pruned when the last entry below
// them leaves. Eviction is entry-granular LRU with a deterministic
// (lastUsed, seq) order, where seq is the admission sequence number, so two
// entries idle since the same round always evict oldest-admitted first.
//
// Exactly one goroutine (the scheduler loop) touches a prefixCache; no
// locking anywhere here.

// cacheLookup is the cache's answer for one declared prefix.
type cacheLookup struct {
	// exact is the ready entry whose tokens equal the probed prefix, nil
	// otherwise. When set, reuse == len(prefix).
	exact *prefixEntry
	// best is the ready entry offering the deepest reuse when there is no
	// exact match: a cached ancestor whose first `reuse` tokens match the
	// probed prefix (reuse is page-aligned unless the whole entry is a prefix
	// of the probe). nil when nothing overlaps.
	best  *prefixEntry
	reuse int
	// wait reports that a still-building entry would serve this prefix
	// strictly better than any ready one; the scheduler holds the request a
	// round rather than duplicating prefill work already in flight.
	wait bool
}

// prefixCache is the scheduler-owned shared-prefix cache.
type prefixCache interface {
	lookup(prefix []int) cacheLookup
	insert(e *prefixEntry)
	remove(e *prefixEntry)
	// evictVictim returns the LRU idle published entry — minimal
	// (lastUsed, seq), refs == 0, ready — or nil when none is evictable.
	evictVictim() *prefixEntry
	// entries appends every live entry to dst in admission (seq) order.
	entries(dst []*prefixEntry) []*prefixEntry
	len() int
}

// entryList is the deterministic entry ledger both implementations embed:
// a slice in admission order, giving seq-ordered iteration and the
// (lastUsed, seq) eviction scan.
type entryList struct {
	byAdmit []*prefixEntry
}

func (l *entryList) add(e *prefixEntry) { l.byAdmit = append(l.byAdmit, e) }

func (l *entryList) del(e *prefixEntry) {
	for i, x := range l.byAdmit {
		if x == e {
			l.byAdmit = append(l.byAdmit[:i], l.byAdmit[i+1:]...)
			return
		}
	}
}

func (l *entryList) entries(dst []*prefixEntry) []*prefixEntry {
	return append(dst, l.byAdmit...)
}

func (l *entryList) len() int { return len(l.byAdmit) }

func (l *entryList) evictVictim() *prefixEntry {
	var v *prefixEntry
	for _, p := range l.byAdmit {
		if p.refs > 0 || !p.ready {
			continue
		}
		if v == nil || p.lastUsed < v.lastUsed ||
			(p.lastUsed == v.lastUsed && p.seq < v.seq) {
			v = p
		}
	}
	return v
}

// ---- Flat cache -------------------------------------------------------------

// flatCache is the exact-match cache: buckets of entries keyed by content
// hash, token-verified on lookup. Collisions coexist in one bucket and are
// removed individually, so deleting an entry can never orphan or duplicate a
// collided sibling (the linear-probing scheme this replaces broke its probe
// chain on delete).
type flatCache struct {
	entryList
	hash    func([]int) uint64
	buckets map[uint64][]*prefixEntry
}

func newFlatCache(hash func([]int) uint64) *flatCache {
	if hash == nil {
		hash = prefixKey
	}
	return &flatCache{hash: hash, buckets: map[uint64][]*prefixEntry{}}
}

func (c *flatCache) lookup(prefix []int) cacheLookup {
	for _, e := range c.buckets[c.hash(prefix)] {
		if sameTokens(e.tokens, prefix) {
			if !e.ready {
				return cacheLookup{wait: true}
			}
			return cacheLookup{exact: e, reuse: len(prefix)}
		}
	}
	return cacheLookup{}
}

func (c *flatCache) insert(e *prefixEntry) {
	c.entryList.add(e)
	h := c.hash(e.tokens)
	c.buckets[h] = append(c.buckets[h], e)
}

func (c *flatCache) remove(e *prefixEntry) {
	c.entryList.del(e)
	h := c.hash(e.tokens)
	b := c.buckets[h]
	for i, x := range b {
		if x == e {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(c.buckets, h)
	} else {
		c.buckets[h] = b
	}
}

// ---- Radix cache ------------------------------------------------------------

// radixNode is one tree node. Its edge is the token run from its parent's
// depth to its own; every edge is a whole number of pages (the root has none),
// and sibling edges always differ somewhere inside their first page, so at
// most one child can match any probe.
type radixNode struct {
	parent *radixNode
	edge   []int
	depth  int // tokens from the root; always a multiple of pageTokens
	// children indexes child runs by the content hash of their edge's first
	// page; hash collisions share a slot and are token-verified.
	children map[uint64][]*radixNode
	// entries anchored here: cached prefixes whose page-aligned length equals
	// depth. Their sub-page tails (len < pageTokens, possibly empty) are what
	// distinguish them.
	entries []*prefixEntry
}

type radixCache struct {
	entryList
	pageTokens int
	root       *radixNode
}

func newRadixCache(pageTokens int) *radixCache {
	return &radixCache{
		pageTokens: pageTokens,
		root:       &radixNode{children: map[uint64][]*radixNode{}},
	}
}

// match finds node's unique child whose edge begins with the probe's next
// page and reports how many whole pages of that edge match. The caller
// guarantees len(probe) - node.depth >= pageTokens.
func (c *radixCache) match(node *radixNode, probe []int) (*radixNode, int) {
	P := c.pageTokens
	run := probe[node.depth:]
	for _, child := range node.children[prefixKey(run[:P])] {
		if !sameTokens(child.edge[:P], run[:P]) {
			continue
		}
		limit := len(run) / P * P
		if len(child.edge) < limit {
			limit = len(child.edge)
		}
		k := 1
		for ; k*P < limit; k++ {
			if !sameTokens(child.edge[k*P:(k+1)*P], run[k*P:(k+1)*P]) {
				break
			}
		}
		return child, k
	}
	return nil, 0
}

func (c *radixCache) link(parent, child *radixNode) {
	child.parent = parent
	h := prefixKey(child.edge[:c.pageTokens])
	parent.children[h] = append(parent.children[h], child)
}

func (c *radixCache) unlink(parent, child *radixNode) {
	h := prefixKey(child.edge[:c.pageTokens])
	b := parent.children[h]
	for i, x := range b {
		if x == child {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(parent.children, h)
	} else {
		parent.children[h] = b
	}
}

// split breaks child's edge at `at` tokens (a page multiple strictly inside
// the edge), interposing a new structural node, and returns it.
func (c *radixCache) split(child *radixNode, at int) *radixNode {
	parent := child.parent
	mid := &radixNode{
		edge:     child.edge[:at],
		depth:    parent.depth + at,
		children: map[uint64][]*radixNode{},
	}
	c.unlink(parent, child)
	c.link(parent, mid)
	child.edge = child.edge[at:]
	c.link(mid, child)
	return mid
}

func (c *radixCache) insert(e *prefixEntry) {
	c.entryList.add(e)
	P := c.pageTokens
	aligned := len(e.tokens) / P * P
	node := c.root
	for node.depth < aligned {
		child, k := c.match(node, e.tokens[:aligned])
		if child == nil {
			leaf := &radixNode{
				edge:     e.tokens[node.depth:aligned],
				depth:    aligned,
				children: map[uint64][]*radixNode{},
			}
			c.link(node, leaf)
			node = leaf
			break
		}
		if k*P < len(child.edge) {
			// Divergence (or exhaustion of e's aligned span) inside the edge.
			child = c.split(child, k*P)
		}
		node = child
	}
	e.node = node
	node.entries = append(node.entries, e)
}

func (c *radixCache) remove(e *prefixEntry) {
	c.entryList.del(e)
	n := e.node
	e.node = nil
	for i, x := range n.entries {
		if x == e {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	// Prune empty leaves upward, and merge a now-entryless pass-through node
	// with its only child so edges stay maximal (the invariant match relies
	// on: siblings diverge within their first page).
	for n != nil && n != c.root && len(n.entries) == 0 {
		parent := n.parent
		switch c.childCount(n) {
		case 0:
			c.unlink(parent, n)
			n = parent
			if len(n.entries) > 0 {
				return
			}
		case 1:
			only := c.onlyChild(n)
			c.unlink(n, only)
			c.unlink(parent, n)
			merged := make([]int, 0, len(n.edge)+len(only.edge))
			merged = append(append(merged, n.edge...), only.edge...)
			only.edge = merged
			c.link(parent, only)
			return
		default:
			return
		}
	}
}

func (c *radixCache) childCount(n *radixNode) int {
	total := 0
	for _, b := range n.children {
		total += len(b)
	}
	return total
}

func (c *radixCache) onlyChild(n *radixNode) *radixNode {
	for _, b := range n.children {
		if len(b) > 0 {
			return b[0]
		}
	}
	return nil
}

// walkEntries visits every entry in n's subtree. Visit order depends on map
// iteration and must only feed order-independent reductions (min/any).
func (c *radixCache) walkEntries(n *radixNode, fn func(*prefixEntry)) {
	for _, e := range n.entries {
		fn(e)
	}
	for _, b := range n.children {
		for _, child := range b {
			c.walkEntries(child, fn)
		}
	}
}

// lookup walks the probe's full pages down the tree, then ranks every form of
// reuse the structure proves:
//
//   - an entry token-equal to the probe (exact hit, reuse = len(prefix));
//   - an entry at the deepest matched node whose whole token run — unaligned
//     tail included — is a prefix of the probe (reuse = the entry's length);
//   - any entry in the subtree guaranteeing the deepest page-aligned match
//     (reuse = that aligned depth: every entry below it shares exactly those
//     pages with the probe).
//
// Ready entries compete on (reuse desc, seq asc), deterministically. If a
// still-building entry would beat every ready candidate, lookup reports wait
// instead, mirroring the flat cache's hold-one-round behaviour on its exact
// key.
func (c *radixCache) lookup(prefix []int) cacheLookup {
	P := c.pageTokens
	node := c.root
	var partial *radixNode
	dmax := 0
	for {
		if len(prefix)-node.depth < P {
			break
		}
		child, k := c.match(node, prefix)
		if child == nil {
			break
		}
		if k*P == len(child.edge) {
			node = child
			continue
		}
		if k > 0 {
			partial = child
			dmax = node.depth + k*P
		}
		break
	}
	if partial == nil {
		dmax = node.depth
	}

	var lk cacheLookup
	buildReuse := 0 // deepest reuse a still-building entry would offer
	consider := func(e *prefixEntry, reuse int) {
		if reuse <= 0 {
			return
		}
		if !e.ready {
			if reuse > buildReuse {
				buildReuse = reuse
			}
			return
		}
		if reuse > lk.reuse || (reuse == lk.reuse && (lk.best == nil || e.seq < lk.best.seq)) {
			lk.best, lk.reuse = e, reuse
		}
	}
	// Entries anchored at the deepest fully matched node: exact and
	// whole-entry (tail-inclusive, unaligned) reuse. A token-equal entry wins
	// outright — ready means hit, building means wait — exactly like the flat
	// cache, and admit guarantees at most one such entry exists.
	for _, e := range node.entries {
		if len(e.tokens) > len(prefix) || !sameTokens(e.tokens, prefix[:len(e.tokens)]) {
			continue
		}
		if len(e.tokens) == len(prefix) {
			if !e.ready {
				return cacheLookup{wait: true}
			}
			return cacheLookup{exact: e, reuse: len(prefix)}
		}
		consider(e, len(e.tokens))
	}
	// Everything below the deepest page-aligned match point shares exactly
	// dmax aligned tokens with the probe.
	if dmax > 0 {
		sub := node
		if partial != nil {
			sub = partial
		}
		c.walkEntries(sub, func(e *prefixEntry) { consider(e, dmax) })
	}
	if buildReuse > lk.reuse {
		return cacheLookup{wait: true}
	}
	return lk
}

package serve

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/memsim"
	"clusterkv/internal/obs"
)

// attrTracker is the engine's attribution clock (DESIGN.md §14): at every
// round barrier it prices the finished round with the shared
// memsim.LatencyModel — one batched decode step, the round's admitted
// prefills, and the tiering pass's spill/promote channel time — and keeps
// prefix sums so a retiring request's modeled wall time tiles exactly into
// phases. Everything here is a pure function of round-deterministic counts,
// touched only on the scheduler goroutine, and never read back by a
// scheduling decision — attribution on/off runs are fingerprint-identical.
type attrTracker struct {
	lm   memsim.LatencyModel
	sink *obs.Attribution

	// clock[r] is cumulative modeled seconds through round r (clock[0] = 0);
	// prefillCum and tierCum are the matching per-phase prefix sums. Rounds
	// the scheduler skipped (nothing runnable) cost zero.
	clock      []float64
	prefillCum []float64
	tierCum    []float64

	// curTierSlots accumulates the in-progress round's spill/promote raw
	// slots, priced at the round barrier.
	curTierSlots int64
}

func newAttrTracker(lm memsim.LatencyModel) *attrTracker {
	return &attrTracker{
		lm:         lm,
		sink:       obs.NewAttribution(),
		clock:      []float64{0},
		prefillCum: []float64{0},
		tierCum:    []float64{0},
	}
}

// markSeen stamps the round each pending request first reached the
// scheduler; its queue phase starts on that round's clock.
func (a *attrTracker) markSeen(pending []*task, round int64) {
	for _, t := range pending {
		if t.seenRound == 0 {
			t.seenRound = round
		}
	}
}

// addTierSlots charges the in-progress round's tiering pass with n raw
// slots moved between tiers (spill or promote).
func (a *attrTracker) addTierSlots(n int64) {
	if n > 0 {
		a.curTierSlots += n
	}
}

// extendTo appends zero-cost entries for rounds the scheduler skipped, so
// every round index up to `round` has a clock value.
func (a *attrTracker) extendTo(round int64) {
	for int64(len(a.clock)) <= round {
		a.clock = append(a.clock, a.clock[len(a.clock)-1])
		a.prefillCum = append(a.prefillCum, a.prefillCum[len(a.prefillCum)-1])
		a.tierCum = append(a.tierCum, a.tierCum[len(a.tierCum)-1])
	}
}

// endRound prices the finished round at the barrier: the round's shared
// batched decode step, the own-prefill of every task admitted this round
// (stamped onto the task for its later breakdown), and the tiering pass.
func (a *attrTracker) endRound(active []*task, round int64) {
	a.extendTo(round - 1)
	var prefill float64
	for _, t := range active {
		if t.resp.AdmitRound == round {
			t.attrOwnPrefill = a.lm.PrefillSec(t.prefillN)
			prefill += t.attrOwnPrefill
		}
	}
	tier := a.lm.TierSec(a.curTierSlots)
	a.curTierSlots = 0
	cost := a.lm.DecodeSecPerTok + prefill + tier
	a.clock = append(a.clock, a.clock[round-1]+cost)
	a.prefillCum = append(a.prefillCum, a.prefillCum[round-1]+prefill)
	a.tierCum = append(a.tierCum, a.tierCum[round-1]+tier)
}

func at(xs []float64, r int64) float64 {
	if r < 0 {
		r = 0
	}
	if r >= int64(len(xs)) {
		r = int64(len(xs)) - 1
	}
	return xs[r]
}

// clockAt returns the attribution clock after round r (clamped to the last
// priced round — a refusal retires mid-round, before its round is priced).
func (a *attrTracker) clockAt(r int64) float64 { return at(a.clock, r) }

// finish tiles the retiring task's modeled wall time — clock(DoneRound) −
// clock(SeenRound−1) — into phases. For an admitted task the tiling is
// exact by construction: queue and admit cover the rounds before admission,
// and every resident round's cost splits into its shared decode step, the
// task's own prefill, co-scheduled prefill (interference) and tiering.
func (a *attrTracker) finish(t *task, round int64, replica int) *obs.Breakdown {
	seen := t.seenRound
	if seen <= 0 {
		seen = round
	}
	b := &obs.Breakdown{
		Req: t.id, Replica: replica,
		SeenRound: seen, AdmitRound: t.resp.AdmitRound, DoneRound: round,
	}
	begin := a.clockAt(seen - 1)
	admit := t.resp.AdmitRound
	hol := t.holRound
	if admit > 0 {
		if hol <= 0 || hol > admit {
			hol = admit
		}
		b.Phases[obs.PhaseQueue] = a.clockAt(hol-1) - begin
		b.Phases[obs.PhaseAdmit] = a.clockAt(admit-1) - a.clockAt(hol-1)
		b.Phases[obs.PhasePrefill] = t.attrOwnPrefill
		b.Phases[obs.PhaseDecode] = float64(round-admit+1) * a.lm.DecodeSecPerTok
		interf := (at(a.prefillCum, round) - at(a.prefillCum, admit-1)) - t.attrOwnPrefill
		if interf < 0 {
			interf = 0
		}
		b.Phases[obs.PhaseInterference] = interf
		b.Phases[obs.PhaseTiering] = at(a.tierCum, round) - at(a.tierCum, admit-1)
		b.DecodeRounds = round - admit + 1
		b.BatchedRounds = t.batchedRounds
		if reused := t.resp.PrefixReusedTokens; reused > 0 {
			b.PrefixCreditSec = a.lm.PrefillSec(t.prefillN+reused) - a.lm.PrefillSec(t.prefillN)
		}
	} else {
		// Never admitted (refused as too large): the whole span is queueing
		// plus head-of-line admission retries, measured through the last
		// fully priced round.
		h := hol
		if h <= 0 {
			h = round
		}
		end := a.clockAt(round - 1)
		hv := a.clockAt(h - 1)
		if hv > end {
			hv = end
		}
		b.Phases[obs.PhaseQueue] = hv - begin
		b.Phases[obs.PhaseAdmit] = end - hv
	}
	if t.seq != nil {
		if sr, ok := t.seq.Selector().(attention.StallReporter); ok {
			b.XferExposedSec, b.XferHiddenSec = sr.TransferStalls()
		}
	}
	return b
}

package serve

import (
	"errors"
	"testing"
)

// tierLoad builds a shared-document QA load whose prefill alone dwarfs the
// tight device budget used by the tests below.
func tierLoad() []Request {
	return qaRequests(6, 256, 16, 8, clusterSel)
}

// TestEngineServesBeyondDeviceBudget is the acceptance lock for two-tier
// admission: a load whose KV footprint exceeds the device budget (the
// builder's prefill alone cannot fit) was refused outright before the host
// tier existed, and is served completely with one — with identical tokens to
// an unconstrained engine, and with round-barrier device residency held at
// or under the device budget by cold spills.
func TestEngineServesBeyondDeviceBudget(t *testing.T) {
	const devBudget = 128 // per-head slots; the 256-token shared doc can never fit
	reqs := tierLoad()
	m := testModel()

	// Reference: unconstrained engine (tokens to match).
	ref := NewEngine(m, Config{Workers: 2, MaxBatch: 3, Seed: 9})
	want := ref.Run(reqs)
	ref.Close()
	for i, r := range want {
		if r.Err != nil {
			t.Fatalf("reference request %d failed: %v", i, r.Err)
		}
	}

	// Single-tier at the tight budget: the prefix builder's admission need
	// exceeds the whole device budget — impossible to serve.
	single := NewEngine(m, Config{Workers: 2, MaxBatch: 3, KVBudget: devBudget, Seed: 9})
	refused := 0
	for _, r := range single.Run(reqs) {
		if errors.Is(r.Err, ErrTooLarge) {
			refused++
		}
	}
	single.Close()
	if refused == 0 {
		t.Fatal("single-tier engine at the tight device budget refused nothing; the two-tier scenario is not actually beyond-device")
	}

	// Two-tier: same device budget plus a host tier serves everything.
	eng := NewEngine(m, Config{Workers: 2, MaxBatch: 3, KVBudget: devBudget, HostBudget: 8192, Seed: 9})
	got := eng.Run(reqs)
	eng.Close()
	mx := eng.Metrics()
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("two-tier request %d failed: %v", i, r.Err)
		}
		if len(r.Tokens) != len(want[i].Tokens) {
			t.Fatalf("request %d: %d tokens vs %d unconstrained", i, len(r.Tokens), len(want[i].Tokens))
		}
		for j := range r.Tokens {
			if r.Tokens[j] != want[i].Tokens[j] {
				t.Fatalf("request %d token %d: %d vs unconstrained %d", i, j, r.Tokens[j], want[i].Tokens[j])
			}
		}
	}
	if mx.Completed != uint64(len(reqs)) || mx.Failed != 0 {
		t.Fatalf("two-tier run: %d completed, %d failed", mx.Completed, mx.Failed)
	}
	if mx.KVPeak <= devBudget {
		t.Fatalf("total KV peak %d does not exceed the device budget %d; load too small to prove spilling", mx.KVPeak, devBudget)
	}
	if mx.KVDevicePeak > devBudget {
		t.Fatalf("device peak %d exceeds the device budget %d despite spilling", mx.KVDevicePeak, devBudget)
	}
	if mx.KVSpilled == 0 || mx.KVHostPeak == 0 {
		t.Fatalf("no spilling recorded (spilled=%d, host peak=%d) while footprint exceeded device", mx.KVSpilled, mx.KVHostPeak)
	}
	if mx.KVHostPeak > mx.KVHostCapacity {
		t.Fatalf("host peak %d exceeds host capacity %d", mx.KVHostPeak, mx.KVHostCapacity)
	}
}

// TestEngineTwoTierStillRefusesBeyondTotal: a request larger than device +
// host combined is still refused — the host tier extends capacity, it does
// not remove admission control.
func TestEngineTwoTierStillRefusesBeyondTotal(t *testing.T) {
	m := testModel()
	eng := NewEngine(m, Config{Workers: 1, MaxBatch: 2, KVBudget: 16, HostBudget: 16, Seed: 1})
	defer eng.Close()
	resp := eng.Submit(Request{
		Prompt:       testDoc(11, 512),
		MaxNewTokens: 4,
	}).Wait()
	if !errors.Is(resp.Err, ErrTooLarge) {
		t.Fatalf("512-token full-attention prompt on a 32-slot total budget: err=%v, want ErrTooLarge", resp.Err)
	}
}

// TestEngineTransferTelemetry: a ClusterKV load on the default async runtime
// records channel activity and layer-ahead prefetch traffic in Metrics.
func TestEngineTransferTelemetry(t *testing.T) {
	m := testModel()
	eng := NewEngine(m, Config{Workers: 2, MaxBatch: 3, Seed: 5, XferSecPerPage: 2e-6})
	resps := eng.Run(qaRequests(4, 192, 16, 8, clusterSel))
	eng.Close() // drain the transfer worker before reading telemetry
	mx := eng.Metrics()
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	tr := mx.Transfer
	if tr.Transfers == 0 || tr.Pages == 0 || tr.BusySec <= 0 {
		t.Fatalf("no transfer activity recorded: %+v", tr)
	}
	if tr.PrefetchedPages == 0 {
		t.Fatalf("no layer-ahead prefetch recorded: %+v", tr)
	}
	if tr.ExposedSec > tr.BusySec+1e-9 {
		t.Fatalf("exposed %.6fs exceeds busy %.6fs", tr.ExposedSec, tr.BusySec)
	}
}

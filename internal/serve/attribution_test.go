package serve

import (
	"math"
	"runtime"
	"testing"

	"clusterkv/internal/obs"
)

// TestTraceAttributionFingerprintNeutral is the tentpole's headline lock:
// enabling per-request latency attribution must not perturb the engine's
// deterministic schedule — token streams, rounds and counters are identical
// with attribution on and off, serially, in parallel, and under two-tier
// spill pressure.
func TestTraceAttributionFingerprintNeutral(t *testing.T) {
	reqs := loadRequests(t)
	twoTier := func(c *Config) { c.KVBudget = 512; c.HostBudget = 4096 }
	attrOn := func(c *Config) { c.Attribution = true }

	cases := []struct {
		name           string
		procs, workers int
		mutate         []func(*Config)
	}{
		{"serial", 1, 1, nil},
		{"gomaxprocs=2", 2, 2, nil},
		{"parallel", runtime.NumCPU(), runtime.NumCPU(), nil},
		{"two-tier/serial", 1, 1, []func(*Config){twoTier}},
		{"two-tier/parallel", runtime.NumCPU(), runtime.NumCPU(), []func(*Config){twoTier}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runEngineAt(t, tc.procs, tc.workers, reqs, tc.mutate...)
			withAttr := append(append([]func(*Config){}, tc.mutate...), attrOn)
			got := runEngineAt(t, tc.procs, tc.workers, reqs, withAttr...)
			if d := base.diff(got); d != "" {
				t.Fatalf("attribution-on run differs from attribution-off: %s", d)
			}
		})
	}
}

// TestTraceAttributionTilingExact locks the span model's accounting
// invariant: every retired request carries a Breakdown whose phases tile its
// modeled wall time exactly, the exported span tree reproduces that tiling
// (parent duration == sum of children), and the engine aggregator's totals
// match the per-request breakdowns.
func TestTraceAttributionTilingExact(t *testing.T) {
	reqs := loadRequests(t)
	tracer := obs.NewTracer(0)
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 4, KVBudget: 2048, Seed: 7,
		Attribution: true, Trace: tracer.Recorder(0),
	})
	resps := eng.Run(reqs)
	attr := eng.Attribution()
	eng.Close()
	if attr == nil {
		t.Fatal("Attribution() is nil with Config.Attribution set")
	}

	var wallSum float64
	byReq := map[uint64]*Response{}
	for i := range resps {
		r := &resps[i]
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		b := r.Breakdown
		if b == nil {
			t.Fatalf("request %d retired without a breakdown", i)
		}
		for p, s := range b.Phases {
			if s < 0 {
				t.Fatalf("request %d: negative %s phase %v", i, obs.Phase(p), s)
			}
		}
		if b.Wall() <= 0 {
			t.Fatalf("request %d: non-positive modeled wall %v", i, b.Wall())
		}
		if b.AdmitRound != r.AdmitRound || b.DoneRound != r.DoneRound {
			t.Fatalf("request %d: breakdown rounds (%d,%d) disagree with response (%d,%d)",
				i, b.AdmitRound, b.DoneRound, r.AdmitRound, r.DoneRound)
		}
		if want := r.DoneRound - r.AdmitRound + 1; b.DecodeRounds != want {
			t.Fatalf("request %d: DecodeRounds %d, want %d", i, b.DecodeRounds, want)
		}
		if b.SeenRound <= 0 || b.SeenRound > b.AdmitRound {
			t.Fatalf("request %d: SeenRound %d outside (0, AdmitRound=%d]", i, b.SeenRound, b.AdmitRound)
		}
		wallSum += b.Wall()
		byReq[b.Req] = r
	}

	// The span stream must reproduce each breakdown: one parent per request
	// whose duration equals both the breakdown wall and the sum of its
	// children.
	parents := 0
	childSum := map[uint64]float64{}
	parentDur := map[uint64]float64{}
	for _, ev := range tracer.Events() {
		if ev.Type != obs.EvSpan {
			continue
		}
		if ev.N < 0 {
			parents++
			parentDur[ev.Req] = ev.Dur
		} else {
			childSum[ev.Req] += ev.Dur
		}
	}
	if parents != len(reqs) {
		t.Fatalf("%d parent spans, want %d", parents, len(reqs))
	}
	for req, dur := range parentDur {
		r := byReq[req]
		if r == nil {
			t.Fatalf("span for unknown request %d", req)
		}
		if math.Abs(dur-r.Breakdown.Wall()) > 1e-9 {
			t.Fatalf("req %d: parent span %v != breakdown wall %v", req, dur, r.Breakdown.Wall())
		}
		if math.Abs(dur-childSum[req]) > 1e-9 {
			t.Fatalf("req %d: children sum to %v, parent spans %v", req, childSum[req], dur)
		}
	}

	s := attr.Snapshot()
	if s.Requests != len(reqs) {
		t.Fatalf("aggregator saw %d requests, want %d", s.Requests, len(reqs))
	}
	if math.Abs(s.WallSec-wallSum) > 1e-9 {
		t.Fatalf("aggregated wall %v != sum of breakdown walls %v", s.WallSec, wallSum)
	}
}

// TestTraceAttributionSpanStreamRepeats locks span-stream reproducibility:
// two attributed runs of the same seeded load emit byte-identical EvSpan
// sub-streams (content and order), serially and at GOMAXPROCS=2.
func TestTraceAttributionSpanStreamRepeats(t *testing.T) {
	reqs := loadRequests(t)
	for _, procs := range []int{1, 2} {
		run := func() []obs.Event {
			tracer := obs.NewTracer(0)
			runEngineAt(t, procs, procs, reqs, func(c *Config) {
				c.Attribution = true
				c.Trace = tracer.Recorder(0)
			})
			var spans []obs.Event
			for _, ev := range tracer.Events() {
				if ev.Type == obs.EvSpan {
					spans = append(spans, ev)
				}
			}
			return spans
		}
		a, b := run(), run()
		if len(a) == 0 {
			t.Fatalf("procs=%d: attributed run emitted no spans", procs)
		}
		if len(a) != len(b) {
			t.Fatalf("procs=%d: span stream lengths differ: %d vs %d", procs, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("procs=%d: span event %d differs: %+v vs %+v", procs, i, a[i], b[i])
			}
		}
	}
}

// TestTraceAttributionTieringCharged drives the two-tier spill path with
// attribution on and checks the tiering phase actually gets charged, and
// that the prefix cache's reuse shows up as prefill credit.
func TestTraceAttributionTieringCharged(t *testing.T) {
	reqs := loadRequests(t)
	eng := NewEngine(testModel(), Config{
		Workers: 1, MaxBatch: 4, Seed: 7,
		KVBudget: 512, HostBudget: 4096,
		Attribution: true,
	})
	resps := eng.Run(reqs)
	attr := eng.Attribution()
	eng.Close()
	for i := range resps {
		if resps[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, resps[i].Err)
		}
	}
	s := attr.Snapshot()
	var tiering, prefill float64
	for _, ps := range s.Phases {
		switch ps.Phase {
		case "tiering":
			tiering = ps.TotalSec
		case "prefill":
			prefill = ps.TotalSec
		}
	}
	if tiering <= 0 {
		t.Fatalf("two-tier spill run charged no tiering time:\n%s", s)
	}
	if prefill <= 0 {
		t.Fatalf("run charged no prefill time:\n%s", s)
	}
	if s.PrefixCreditSec <= 0 {
		t.Fatalf("shared-prefix load earned no prefix credit:\n%s", s)
	}
}

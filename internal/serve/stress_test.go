package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Stress test for the engine over the shared intra-op worker pool:
// randomized concurrent admissions (valid, invalid and oversized requests,
// mixed tenants, shared and unshared prefixes) racing graceful Close and
// deadline Shutdown. Its job is to catch the class of concurrency bug fixed
// ad hoc in PR 1 (the rope-table growth race) structurally: run it under
// `go test -race`, where any unsynchronized access in the engine ↔ pool ↔
// model sandwich trips the detector. Short mode caps the iteration count.
func TestEngineStressRandomizedLifecycles(t *testing.T) {
	lifecycles := 12
	submittersPer := 4
	reqsPerSubmitter := 6
	if testing.Short() {
		lifecycles = 4
	}

	// Oversubscribed pool: more helpers than cores forces real interleaving
	// of intra-op blocks even on single-core CI machines.
	pool := parallel.NewPool(runtime.NumCPU() * 4)
	oldPool := parallel.SetDefault(pool)
	defer func() {
		parallel.SetDefault(oldPool)
		pool.Close()
	}()

	m := testModel()
	vocab := m.Config().VocabSize

	for lc := 0; lc < lifecycles; lc++ {
		r := rng.New(uint64(1000 + lc))
		eng := NewEngine(m, Config{
			Workers:  2 + int(r.Intn(4)),
			MaxBatch: 1 + int(r.Intn(4)),
			KVBudget: int64(256 + r.Intn(2048)),
			QueueCap: 4,
			Seed:     uint64(lc),
		})

		var wg sync.WaitGroup
		for s := 0; s < submittersPer; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sr := rng.New(uint64(lc*100 + s))
				for i := 0; i < reqsPerSubmitter; i++ {
					req := randomRequest(sr, vocab)
					tk := eng.Submit(req)
					if sr.Intn(2) == 0 {
						tk.Wait() // closed-loop half: waits interleave with intake
					}
				}
			}(s)
		}

		// Randomize the teardown path: graceful drain, generous deadline, or
		// an aggressive deadline that aborts mid-flight.
		switch r.Intn(3) {
		case 0:
			wg.Wait()
			eng.Close()
		case 1:
			wg.Wait()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = eng.Shutdown(ctx)
			cancel()
		default:
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(r.Intn(5_000_000)))
			_ = eng.Shutdown(ctx) // may abort mid-flight
			cancel()
			wg.Wait() // submitters observe aborted/closed tickets; must not hang
		}

		mx := eng.Metrics()
		if mx.Completed+mx.Failed > mx.Submitted {
			t.Fatalf("lifecycle %d: %d completed + %d failed > %d submitted",
				lc, mx.Completed, mx.Failed, mx.Submitted)
		}
		if used := eng.Accountant().Used(); used != 0 {
			t.Fatalf("lifecycle %d: %d KV slots leaked after shutdown", lc, used)
		}
	}
}

// randomRequest draws a request mixing valid prompts, shared prefixes,
// full-attention and ClusterKV tenants, and occasional invalid or oversized
// shapes (which must fail cleanly without wedging the scheduler).
func randomRequest(r *rng.RNG, vocab int) Request {
	n := 4 + int(r.Intn(96))
	prompt := make([]int, n)
	for i := range prompt {
		prompt[i] = int(r.Intn(vocab))
	}
	req := Request{
		Prompt:       prompt,
		MaxNewTokens: 1 + int(r.Intn(4)),
	}
	if pl := 16; n > pl && r.Intn(3) == 0 {
		// Content-identical shared prefix across submitters exercises the
		// builder/waiter handoff in the prefix cache.
		fixed := rng.New(4242)
		for i := 0; i < pl; i++ {
			prompt[i] = int(fixed.Intn(vocab))
		}
		req.SharedPrefixLen = pl
	}
	switch r.Intn(4) {
	case 0:
		req.NewSelector = clusterSel
		req.Budget = 32
	case 1:
		req.Temperature = 0.7
	case 2:
		// Invalid on purpose: empty generation budget.
		req.MaxNewTokens = 0
	}
	if r.Intn(8) == 0 {
		// Oversized relative to the smallest KVBudget the loop picks.
		req.Prompt = append(req.Prompt, make([]int, 4096)...)
	}
	return req
}

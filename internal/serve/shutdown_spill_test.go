package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShutdownMidSpillDrainsCleanly is the regression lock for Shutdown
// racing the two-tier spill/promote pass: aborting an engine whose scheduler
// is actively re-accounting pages host-ward must still release every arena
// page and every accountant slot — a leak here would pin simulated KV for the
// life of the process. The load is sized so spilling is provably in progress
// (KVSpilled > 0) before the abort lands mid-round.
func TestShutdownMidSpillDrainsCleanly(t *testing.T) {
	m := testModel()
	// Long generations over a shared document whose prefill alone exceeds the
	// device budget: every round of this load runs under spill pressure.
	reqs := qaRequests(6, 256, 16, 400, clusterSel)
	e := NewEngine(m, Config{Workers: 2, MaxBatch: 3, KVBudget: 128, HostBudget: 8192, Seed: 3})
	var tickets []*Ticket
	for _, r := range reqs {
		tickets = append(tickets, e.Submit(r))
	}

	// Wait until the spill pass has demonstrably run, so the abort interrupts
	// a tiering engine, not an idle one.
	deadline := time.Now().Add(30 * time.Second)
	for e.Metrics().KVSpilled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no spill observed; load does not exercise the two-tier pass")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}

	aborted := 0
	for _, tk := range tickets {
		if resp := tk.Wait(); errors.Is(resp.Err, ErrAborted) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("shutdown aborted nothing; the run completed before the abort and proves nothing")
	}

	// The heart of the regression: every page and every slot must be back.
	if lp := e.Arena().LivePages(); lp != 0 {
		t.Fatalf("leaked %d arena pages after mid-spill shutdown", lp)
	}
	acct := e.Accountant()
	if used := acct.Used(); used != 0 {
		t.Fatalf("leaked %d accountant slots after mid-spill shutdown", used)
	}
	if h := acct.HostUsed(); h != 0 {
		t.Fatalf("host tier still accounts %d slots after shutdown", h)
	}
	if d := acct.DeviceUsed(); d != 0 {
		t.Fatalf("device tier still accounts %d slots after shutdown", d)
	}
}

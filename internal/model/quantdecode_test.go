package model

import "testing"

func argmax32(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TestQuantDecodeDeterministicPerSeed locks the int8 decode contract: the
// quantized path is NOT bit-identical to float32, but two sequences with the
// same weights, prompt and bit width must emit identical token streams — the
// quantization grid is a pure function of page contents.
func TestQuantDecodeDeterministicPerSeed(t *testing.T) {
	m := New(tinyConfig())
	doc := tinyDoc(100)

	run := func(bits int) ([]int, int64) {
		seq := m.NewSequence(nil, 0)
		defer seq.Release()
		seq.SetKVQuantDecode(bits)
		logits := seq.Prefill(doc, nil)
		toks := make([]int, 0, 32)
		tok := argmax32(logits)
		for i := 0; i < 32; i++ {
			toks = append(toks, tok)
			tok = argmax32(seq.Decode(tok))
		}
		qr, _ := seq.KVQuantRuns()
		return toks, qr
	}

	a, qa := run(8)
	b, qb := run(8)
	if qa == 0 || qb == 0 {
		t.Fatalf("int8 kernels never ran (runs %d, %d)", qa, qb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("quantized decode diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}

	// The exact path must be untouched by the machinery existing: bits=0
	// sequences report zero quant runs.
	exact, q0 := run(0)
	if q0 != 0 {
		t.Fatalf("exact path hit int8 kernels %d times", q0)
	}
	if len(exact) != len(a) {
		t.Fatal("length mismatch")
	}
}

// TestQuantDecodeRunsSplit locks the per-page dispatch accounting: with a
// prompt longer than one page, a quantized sequence reports both int8 page
// runs (full pages) and f32 runs (the growing tail).
func TestQuantDecodeRunsSplit(t *testing.T) {
	m := New(tinyConfig())
	seq := m.NewSequence(nil, 0)
	defer seq.Release()
	seq.SetKVQuantDecode(8)
	seq.Prefill(tinyDoc(130), nil) // 2 full 64-token pages + tail
	seq.Decode(1)
	qr, fr := seq.KVQuantRuns()
	if qr == 0 || fr == 0 {
		t.Fatalf("expected mixed dispatch, got quant=%d float=%d", qr, fr)
	}
}

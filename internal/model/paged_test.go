package model

import (
	"testing"

	"clusterkv/internal/kvcache"
)

// TestForkedSequencesShareCommonPages is the block-granular sharing
// acceptance lock at the model layer: sequences forked from one snapshot and
// then diverged share every fully common KV page (verified by arena refcount
// inspection), while each divergent tail is exclusively owned.
func TestForkedSequencesShareCommonPages(t *testing.T) {
	m := New(tinyConfig())
	arena := kvcache.NewArena(kvcache.DefaultPageTokens, nil)
	pageTokens := arena.PageTokens()

	// Prefix of 2.5 pages: two full shared pages plus a partial boundary.
	prefixLen := 2*pageTokens + pageTokens/2
	doc := tinyDoc(prefixLen + 32)

	base := m.NewSequenceIn(arena, nil, 0)
	base.Prefill(doc[:prefixLen], nil)
	snap := base.Snapshot()
	base.Release()

	a := m.NewSequenceFrom(snap, nil, 0)
	b := m.NewSequenceFrom(snap, nil, 0)
	a.Prefill(doc[prefixLen:prefixLen+16], nil)
	b.Prefill(doc[prefixLen+16:prefixLen+32], nil)

	cfg := m.Config()
	for l := 0; l < cfg.NLayers; l++ {
		for h := 0; h < cfg.NKVHeads; h++ {
			sa, sb := a.Store(l, h), b.Store(l, h)
			// Fully common pages: snapshot + both forks = 3 references.
			for p := 0; p < 2; p++ {
				if sa.PageRef(p) != 3 || sb.PageRef(p) != 3 {
					t.Fatalf("(%d,%d) page %d refs %d/%d, want 3 (shared)",
						l, h, p, sa.PageRef(p), sb.PageRef(p))
				}
			}
			// The partially filled boundary page was copy-on-written by each
			// fork; the divergent tails are private.
			for _, st := range []*kvcache.Store{sa, sb} {
				for p := 2; p < st.NumPages(); p++ {
					if st.PageRef(p) != 1 {
						t.Fatalf("(%d,%d) divergent page %d refs %d, want 1",
							l, h, p, st.PageRef(p))
					}
				}
			}
		}
	}

	// Releasing the forks and snapshot returns every page.
	a.Release()
	b.Release()
	snap.Release()
	if live := arena.LivePages(); live != 0 {
		t.Fatalf("%d pages leaked after release", live)
	}
}

// TestSequenceReleaseIdempotent: Release twice is safe and the sequence's
// stores read as empty afterwards.
func TestSequenceReleaseIdempotent(t *testing.T) {
	m := New(tinyConfig())
	arena := kvcache.NewArena(16, nil)
	seq := m.NewSequenceIn(arena, nil, 0)
	seq.Prefill(tinyDoc(40), nil)
	if arena.LivePages() == 0 {
		t.Fatal("prefill allocated nothing")
	}
	seq.Release()
	seq.Release()
	if arena.LivePages() != 0 {
		t.Fatalf("%d pages live after double release", arena.LivePages())
	}
	if seq.Store(0, 0).Len() != 0 {
		t.Fatal("store not empty after release")
	}
}

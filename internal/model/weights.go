package model

import (
	"math"

	"clusterkv/internal/rng"
	"clusterkv/internal/tensor"
)

// layerWeights holds the parameters of one Transformer layer.
type layerWeights struct {
	attnNorm []float32   // DModel RMSNorm gain
	wq       *tensor.Mat // DModel × NHeads*HeadDim
	wk       *tensor.Mat // DModel × NKVHeads*HeadDim
	wv       *tensor.Mat // DModel × NKVHeads*HeadDim
	wo       *tensor.Mat // NHeads*HeadDim × DModel
	ffnNorm  []float32
	w1       *tensor.Mat // DModel × FFNDim (SwiGLU gate)
	w3       *tensor.Mat // DModel × FFNDim (SwiGLU up)
	w2       *tensor.Mat // FFNDim × DModel (down)
}

// weights holds all model parameters.
type weights struct {
	embed *tensor.Mat // VocabSize × DModel, tied with the LM head
	// embedP is embed pre-packed into 4-row panels for the decode LM-head
	// GEMV (tensor.PackedMat) — the largest single GEMV of a decode step.
	embedP    *tensor.PackedMat
	layers    []layerWeights
	finalNorm []float32
	// sinkDir is the attention-sink shaping direction in key space
	// (HeadDim); keys of positions < SinkTokens receive +SinkStrength·sinkDir
	// and every query receives +sinkQueryGain·sinkDir.
	sinkDir []float32
}

const (
	embedNoise    = 0.5
	sinkQueryGain = 0.8
)

// buildWeights deterministically generates the structured synthetic weights
// described in the package comment.
func buildWeights(cfg Config) *weights {
	root := rng.New(cfg.Seed)
	w := &weights{}

	// --- Embeddings with topic structure ---------------------------------
	topicRNG := root.Split(1)
	topicDirs := tensor.NewMat(cfg.NTopics, cfg.DModel)
	for t := 0; t < cfg.NTopics; t++ {
		row := topicDirs.Row(t)
		for j := range row {
			row[j] = topicRNG.NormFloat32()
		}
		tensor.Normalize(row)
	}
	embRNG := root.Split(2)
	w.embed = tensor.NewMat(cfg.VocabSize, cfg.DModel)
	for v := 0; v < cfg.VocabSize; v++ {
		topic := v % cfg.NTopics
		row := w.embed.Row(v)
		base := topicDirs.Row(topic)
		for j := range row {
			row[j] = cfg.TopicStrength*base[j] + embedNoise*embRNG.NormFloat32()
		}
		tensor.Normalize(row)
	}
	w.embedP = tensor.Pack(w.embed)

	// --- Layers ------------------------------------------------------------
	qkDim := cfg.NHeads * cfg.HeadDim
	kvDim := cfg.NKVHeads * cfg.HeadDim
	w.layers = make([]layerWeights, cfg.NLayers)
	for l := range w.layers {
		lr := root.Split(uint64(100 + l))
		lw := &w.layers[l]
		lw.attnNorm = ones(cfg.DModel)
		lw.ffnNorm = ones(cfg.DModel)

		// Shared subspace blended into Wq and Wk so that attention scores
		// correlate with hidden-state similarity (content matching).
		shared := randMat(lr, cfg.DModel, qkDim, 1/math.Sqrt(float64(cfg.DModel)))
		lw.wq = blendMat(lr, shared, cfg.QKAlign, cfg.DModel, qkDim)
		sharedKV := cropCols(shared, kvDim)
		lw.wk = blendMat(lr, sharedKV, cfg.QKAlign, cfg.DModel, kvDim)
		lw.wv = randMat(lr, cfg.DModel, kvDim, 1/math.Sqrt(float64(cfg.DModel)))
		lw.wo = randMat(lr, qkDim, cfg.DModel, 1/math.Sqrt(float64(qkDim)))
		lw.w1 = randMat(lr, cfg.DModel, cfg.FFNDim, 1/math.Sqrt(float64(cfg.DModel)))
		lw.w3 = randMat(lr, cfg.DModel, cfg.FFNDim, 1/math.Sqrt(float64(cfg.DModel)))
		lw.w2 = randMat(lr, cfg.FFNDim, cfg.DModel, 1/math.Sqrt(float64(cfg.FFNDim)))

		// Outlier key channels: scale a few output columns of Wk per KV head.
		for h := 0; h < cfg.NKVHeads; h++ {
			for oc := 0; oc < cfg.OutlierChannels && oc < cfg.HeadDim; oc++ {
				col := h*cfg.HeadDim + (oc*7)%cfg.HeadDim
				for r := 0; r < cfg.DModel; r++ {
					lw.wk.Set(r, col, lw.wk.At(r, col)*cfg.OutlierScale)
				}
			}
		}
	}

	w.finalNorm = ones(cfg.DModel)

	// --- Attention-sink direction -----------------------------------------
	sr := root.Split(7)
	w.sinkDir = make([]float32, cfg.HeadDim)
	for j := range w.sinkDir {
		w.sinkDir[j] = sr.NormFloat32()
	}
	tensor.Normalize(w.sinkDir)
	return w
}

func ones(n int) []float32 {
	v := make([]float32, n)
	tensor.Fill(v, 1)
	return v
}

func randMat(r *rng.RNG, rows, cols int, scale float64) *tensor.Mat {
	m := tensor.NewMat(rows, cols)
	s := float32(scale)
	for i := range m.Data {
		m.Data[i] = s * r.NormFloat32()
	}
	return m
}

// blendMat returns align·shared + (1−align)·fresh-noise, shape rows×cols.
func blendMat(r *rng.RNG, shared *tensor.Mat, align float32, rows, cols int) *tensor.Mat {
	m := randMat(r, rows, cols, 1/math.Sqrt(float64(rows)))
	for i := 0; i < rows; i++ {
		srow := shared.Row(i)
		drow := m.Row(i)
		for j := 0; j < cols && j < len(srow); j++ {
			drow[j] = align*srow[j] + (1-align)*drow[j]
		}
	}
	return m
}

// cropCols returns a view-copy of the first cols columns of m.
func cropCols(m *tensor.Mat, cols int) *tensor.Mat {
	out := tensor.NewMat(m.Rows, cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[:cols])
	}
	return out
}

package model

import (
	"math"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/core"
	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Batched-decode conformance: a cohort stepped through BatchDecoder.DecodeInto
// must produce logits bit-identical to stepping every member alone through
// Sequence.DecodeInto — at every cohort size, every pool width, with
// selectors attached, over CoW-forked shared prefixes and under int8 KV
// decode. This is the contract that lets the serving engine flip
// Config.BatchDecode without changing a single token.

const batchBudget = 64

// batchCohort builds S sequences with distinct prompts (and, for variety, a
// mix of ClusterKV selectors and full attention), returning the sequences and
// each member's last prompt token. Deterministic: two calls build cohorts in
// identical states.
func batchCohort(m *Model, S int, bits int) ([]*Sequence, []int) {
	vocab := m.Config().VocabSize
	seqs := make([]*Sequence, S)
	toks := make([]int, S)
	for i := 0; i < S; i++ {
		var sel attention.Selector
		if i%2 == 0 {
			sel = core.New(core.NewConfig())
		}
		s := m.NewSequence(sel, batchBudget)
		s.SetKVQuantDecode(bits)
		r := rng.New(uint64(1000 + i))
		prompt := make([]int, 80+16*i)
		for j := range prompt {
			prompt[j] = r.Intn(vocab)
		}
		s.Prefill(prompt, nil)
		seqs[i] = s
		toks[i] = prompt[len(prompt)-1]
	}
	return seqs, toks
}

// forkedCohort builds S sequences CoW-forked from one shared prefix snapshot,
// each prefilling a distinct suffix. Both the solo and batched cohorts fork
// the same snapshot, so shared pages are exercised across the comparison.
func forkedCohort(m *Model, snap *Snapshot, S int) ([]*Sequence, []int) {
	vocab := m.Config().VocabSize
	seqs := make([]*Sequence, S)
	toks := make([]int, S)
	for i := 0; i < S; i++ {
		s := m.NewSequenceFrom(snap, core.New(core.NewConfig()), batchBudget)
		r := rng.New(uint64(2000 + i))
		suffix := make([]int, 5+3*i)
		for j := range suffix {
			suffix[j] = r.Intn(vocab)
		}
		s.Prefill(suffix, nil)
		seqs[i] = s
		toks[i] = suffix[len(suffix)-1]
	}
	return seqs, toks
}

func releaseAll(seqs []*Sequence) {
	for _, s := range seqs {
		s.Release()
	}
}

// runBatchComparison greedily decodes both cohorts for steps rounds — solo
// per-stream, batched through bd — failing on the first logits bit that
// differs.
func runBatchComparison(t *testing.T, m *Model, solo, batched []*Sequence, soloTok, batchTok []int, steps int) {
	t.Helper()
	S := len(solo)
	cfg := m.Config()
	bd := m.NewBatchDecoder()
	soloLg := make([][]float32, S)
	batchLg := make([][]float32, S)
	for i := 0; i < S; i++ {
		soloLg[i] = make([]float32, cfg.VocabSize)
		batchLg[i] = make([]float32, cfg.VocabSize)
	}
	argmax := func(v []float32) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}
	for step := 0; step < steps; step++ {
		for i, s := range solo {
			s.DecodeInto(soloTok[i], soloLg[i])
		}
		bd.DecodeInto(batched, batchTok, batchLg)
		for i := 0; i < S; i++ {
			for j := range soloLg[i] {
				if math.Float32bits(soloLg[i][j]) != math.Float32bits(batchLg[i][j]) {
					t.Fatalf("step %d stream %d logit %d: batched %g (bits %08x) != solo %g (bits %08x)",
						step, i, j, batchLg[i][j], math.Float32bits(batchLg[i][j]),
						soloLg[i][j], math.Float32bits(soloLg[i][j]))
				}
			}
			soloTok[i] = argmax(soloLg[i])
			batchTok[i] = argmax(batchLg[i])
		}
	}
}

func withPoolWidth(t *testing.T, width int, f func()) {
	t.Helper()
	pool := parallel.NewPool(width)
	old := parallel.SetDefault(pool)
	defer func() {
		parallel.SetDefault(old)
		pool.Close()
	}()
	f()
}

func TestBatchDecodeConformance(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8} {
		for _, S := range []int{1, 2, 3, 8} {
			withPoolWidth(t, width, func() {
				m := New(DefaultConfig())
				solo, soloTok := batchCohort(m, S, 0)
				batched, batchTok := batchCohort(m, S, 0)
				defer releaseAll(solo)
				defer releaseAll(batched)
				runBatchComparison(t, m, solo, batched, soloTok, batchTok, 6)
			})
		}
	}
}

func TestBatchDecodeConformanceQuantized(t *testing.T) {
	for _, width := range []int{1, 2} {
		withPoolWidth(t, width, func() {
			m := New(DefaultConfig())
			solo, soloTok := batchCohort(m, 3, 8)
			batched, batchTok := batchCohort(m, 3, 8)
			defer releaseAll(solo)
			defer releaseAll(batched)
			runBatchComparison(t, m, solo, batched, soloTok, batchTok, 6)
		})
	}
}

func TestBatchDecodeConformanceForkedPrefix(t *testing.T) {
	for _, width := range []int{1, 2} {
		withPoolWidth(t, width, func() {
			m := New(DefaultConfig())
			base := m.NewSequence(nil, 0)
			r := rng.New(99)
			prefix := make([]int, 96)
			for j := range prefix {
				prefix[j] = r.Intn(m.Config().VocabSize)
			}
			base.Prefill(prefix, nil)
			snap := base.Snapshot()
			base.Release()
			defer snap.Release()
			solo, soloTok := forkedCohort(m, snap, 4)
			batched, batchTok := forkedCohort(m, snap, 4)
			defer releaseAll(solo)
			defer releaseAll(batched)
			runBatchComparison(t, m, solo, batched, soloTok, batchTok, 6)
		})
	}
}

// TestBatchDecodeFluidCohort locks the continuous-batching usage: members
// join and leave the cohort between rounds (the engine admits and retires
// mid-stream), and the decoder's scratch shrinks and regrows without
// perturbing survivors.
func TestBatchDecodeFluidCohort(t *testing.T) {
	withPoolWidth(t, 2, func() {
		m := New(DefaultConfig())
		solo, soloTok := batchCohort(m, 5, 0)
		batched, batchTok := batchCohort(m, 5, 0)
		defer releaseAll(solo)
		defer releaseAll(batched)
		// Rounds over shifting sub-cohorts: indices into the full set.
		rounds := [][]int{{0, 1, 2, 3, 4}, {0, 2, 4}, {0, 1, 2, 3}, {3}, {1, 3, 4}}
		cfg := m.Config()
		bd := m.NewBatchDecoder()
		lgA := make([]float32, cfg.VocabSize)
		for _, members := range rounds {
			seqs := make([]*Sequence, 0, len(members))
			toks := make([]int, 0, len(members))
			lgs := make([][]float32, 0, len(members))
			for _, i := range members {
				seqs = append(seqs, batched[i])
				toks = append(toks, batchTok[i])
				lgs = append(lgs, make([]float32, cfg.VocabSize))
			}
			bd.DecodeInto(seqs, toks, lgs)
			for k, i := range members {
				solo[i].DecodeInto(soloTok[i], lgA)
				for j := range lgA {
					if math.Float32bits(lgA[j]) != math.Float32bits(lgs[k][j]) {
						t.Fatalf("stream %d logit %d: batched %g != solo %g", i, j, lgs[k][j], lgA[j])
					}
				}
				best := 0
				for j, v := range lgA {
					if v > lgA[best] {
						best = j
					}
				}
				soloTok[i], batchTok[i] = best, best
			}
		}
	})
}

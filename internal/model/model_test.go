package model

import (
	"math"
	"testing"

	"clusterkv/internal/baselines"
	"clusterkv/internal/workload"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.VocabSize = 64
	cfg.DModel = 32
	cfg.NLayers = 3
	cfg.NHeads = 2
	cfg.NKVHeads = 2
	cfg.HeadDim = 8
	cfg.FFNDim = 48
	cfg.NTopics = 8
	return cfg
}

func tinyDoc(n int) []int {
	dc := workload.DefaultDocConfig()
	dc.VocabSize = 64
	dc.NTopics = 8
	return workload.Doc(dc, n)
}

func TestValidatePanics(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.VocabSize = 1 },
		func(c *Config) { c.DModel = 0 },
		func(c *Config) { c.NKVHeads = 3 }, // doesn't divide NHeads=4
		func(c *Config) { c.NTopics = 0 },
		func(c *Config) { c.RopeTheta = 1 },
		func(c *Config) { c.HeadDim = 7 }, // odd
	}
	for i, mut := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			cfg := DefaultConfig()
			mut(&cfg)
			cfg.Validate()
		}()
	}
}

func TestGroupSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NHeads = 8
	cfg.NKVHeads = 2
	if cfg.GroupSize() != 4 {
		t.Fatalf("GroupSize = %d", cfg.GroupSize())
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := New(tinyConfig())
	b := New(tinyConfig())
	doc := tinyDoc(64)
	la := a.NewSequence(nil, 0).Prefill(doc, nil)
	lb := b.NewSequence(nil, 0).Prefill(doc, nil)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed produced different activations")
		}
	}
}

func TestSeedChangesWeights(t *testing.T) {
	cfg := tinyConfig()
	cfg.Seed = 999
	a := New(tinyConfig())
	b := New(cfg)
	doc := tinyDoc(32)
	la := a.NewSequence(nil, 0).Prefill(doc, nil)
	lb := b.NewSequence(nil, 0).Prefill(doc, nil)
	same := true
	for i := range la {
		if la[i] != lb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical activations")
	}
}

func TestPrefillDecodeConsistency(t *testing.T) {
	// Prefilling n+k tokens must leave the same KV cache as prefilling n and
	// decoding k (full attention either way).
	m := New(tinyConfig())
	doc := tinyDoc(48)

	a := m.NewSequence(nil, 0)
	a.Prefill(doc, nil)

	b := m.NewSequence(nil, 0)
	b.Prefill(doc[:40], nil)
	for _, tok := range doc[40:] {
		b.Decode(tok)
	}

	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	cfg := m.Config()
	for l := 0; l < cfg.NLayers; l++ {
		for h := 0; h < cfg.NKVHeads; h++ {
			ka, kb := a.Store(l, h).Keys(), b.Store(l, h).Keys()
			for i := range ka {
				if diff := math.Abs(float64(ka[i] - kb[i])); diff > 2e-3 {
					t.Fatalf("layer %d head %d key[%d] differs by %v", l, h, i, diff)
				}
			}
		}
	}
}

func TestLogitsFinite(t *testing.T) {
	m := New(tinyConfig())
	seq := m.NewSequence(nil, 0)
	doc := tinyDoc(32)
	logits := make([]float32, len(doc)*m.Config().VocabSize)
	seq.Prefill(doc, logits)
	for i, v := range logits {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite logit at %d", i)
		}
	}
	lg := seq.Decode(doc[0])
	if len(lg) != m.Config().VocabSize {
		t.Fatalf("decode logits length %d", len(lg))
	}
}

func TestFullSelectorMatchesNilSelector(t *testing.T) {
	// FullKV selector (nil Select) must produce identical outputs to no
	// selector at all.
	m := New(tinyConfig())
	doc := tinyDoc(40)
	a := m.NewSequence(nil, 0)
	a.Prefill(doc[:32], nil)
	b := m.NewSequence(baselines.NewFullKV(), 99999)
	b.Prefill(doc[:32], nil)
	for i := 32; i < 40; i++ {
		la := a.Decode(doc[i])
		lb := b.Decode(doc[i])
		for j := range la {
			if la[j] != lb[j] {
				t.Fatal("FullKV selector changed outputs")
			}
		}
	}
}

func TestGQAConfiguration(t *testing.T) {
	cfg := tinyConfig()
	cfg.NHeads = 4
	cfg.NKVHeads = 2
	m := New(cfg)
	seq := m.NewSequence(nil, 0)
	doc := tinyDoc(24)
	seq.Prefill(doc, nil)
	if seq.Store(0, 0).Len() != 24 || seq.Store(0, 1).Len() != 24 {
		t.Fatal("GQA stores not filled")
	}
	lg := seq.Decode(doc[0])
	for _, v := range lg {
		if math.IsNaN(float64(v)) {
			t.Fatal("GQA decode produced NaN")
		}
	}
}

func TestRopePreservesNorm(t *testing.T) {
	m := New(tinyConfig())
	v := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	var before float64
	for _, x := range v {
		before += float64(x) * float64(x)
	}
	m.applyRope(v, 1234)
	var after float64
	for _, x := range v {
		after += float64(x) * float64(x)
	}
	if math.Abs(before-after) > 1e-3 {
		t.Fatalf("RoPE changed norm: %v -> %v", before, after)
	}
}

func TestRopePositionZeroIdentity(t *testing.T) {
	m := New(tinyConfig())
	v := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	w := append([]float32(nil), v...)
	m.applyRope(w, 0)
	for i := range v {
		if v[i] != w[i] {
			t.Fatal("RoPE at position 0 must be identity")
		}
	}
}

func TestSinkShapingRaisesSinkAttention(t *testing.T) {
	// With sink shaping on, early positions should receive a visibly larger
	// share of attention than without it.
	withSinks := tinyConfig()
	noSinks := tinyConfig()
	noSinks.SinkStrength = 0

	mass := func(cfg Config) float64 {
		m := New(cfg)
		doc := tinyDoc(256)
		seq := m.NewSequence(nil, 0)
		seq.Prefill(doc, nil)
		var sinkMass float64
		var samples int
		seq.Probe = func(l, h int, w []float32) {
			// softmax weights over raw logits
			maxv := w[0]
			for _, x := range w {
				if x > maxv {
					maxv = x
				}
			}
			var z, sink float64
			for i, x := range w {
				e := math.Exp(float64(x - maxv))
				z += e
				if i < 16 {
					sink += e
				}
			}
			sinkMass += sink / z
			samples++
		}
		seq.Decode(doc[0])
		return sinkMass / float64(samples)
	}
	if ms, mn := mass(withSinks), mass(noSinks); ms <= mn {
		t.Fatalf("sink shaping did not raise sink mass: with=%v without=%v", ms, mn)
	}
}

func TestProbeSeesAllHeads(t *testing.T) {
	m := New(tinyConfig())
	seq := m.NewSequence(nil, 0)
	seq.Prefill(tinyDoc(16), nil)
	calls := map[[2]int]int{}
	seq.Probe = func(l, h int, w []float32) {
		calls[[2]int{l, h}]++
		if len(w) != seq.Len()+1 { // current token appended before probe
			t.Fatalf("probe weights length %d at len %d", len(w), seq.Len())
		}
	}
	seq.Decode(0)
	cfg := m.Config()
	if len(calls) != cfg.NLayers*cfg.NHeads {
		t.Fatalf("probe called for %d (layer,head) pairs, want %d", len(calls), cfg.NLayers*cfg.NHeads)
	}
}

func TestPrefillPanics(t *testing.T) {
	m := New(tinyConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty prefill did not panic")
			}
		}()
		m.NewSequence(nil, 0).Prefill(nil, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong logits buffer did not panic")
			}
		}()
		m.NewSequence(nil, 0).Prefill([]int{1, 2}, make([]float32, 3))
	}()
}

package model

import (
	"math"
	"sync"
	"sync/atomic"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/parallel"
	"clusterkv/internal/tensor"
)

// Model is an immutable set of weights plus configuration. A Model is safe
// for concurrent use — many Sequences may Prefill/Decode in parallel from
// different goroutines; per-sequence state lives in Sequence.
type Model struct {
	cfg Config
	w   *weights
	// rope is the lazily grown cos/sin table, published atomically so
	// concurrent decoders read it lock-free; growth happens under ropeMu and
	// republishes a longer table (rows are immutable once created).
	rope   atomic.Pointer[ropeTable]
	ropeMu sync.Mutex
}

// ropeTable holds per-position rotary tables: [pos][HeadDim/2].
type ropeTable struct {
	cos [][]float32
	sin [][]float32
}

// New builds a model with deterministic structured weights.
func New(cfg Config) *Model {
	cfg.Validate()
	return &Model{cfg: cfg, w: buildWeights(cfg)}
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// ropeAt returns the cos/sin tables for a position, growing the cache.
// The fast path is a lock-free atomic load; growth is serialised.
func (m *Model) ropeAt(pos int) (cosv, sinv []float32) {
	t := m.rope.Load()
	if t == nil || pos >= len(t.cos) {
		t = m.growRope(pos)
	}
	return t.cos[pos], t.sin[pos]
}

// growRope extends the rope table to cover pos (with headroom) and publishes
// the new table. Existing rows are shared; they are never mutated.
func (m *Model) growRope(pos int) *ropeTable {
	m.ropeMu.Lock()
	defer m.ropeMu.Unlock()
	t := m.rope.Load()
	if t != nil && pos < len(t.cos) {
		return t // another goroutine grew it first
	}
	var old ropeTable
	if t != nil {
		old = *t
	}
	want := pos + 1
	if doubled := 2 * len(old.cos); doubled > want {
		want = doubled
	}
	nt := &ropeTable{
		cos: make([][]float32, want),
		sin: make([][]float32, want),
	}
	copy(nt.cos, old.cos)
	copy(nt.sin, old.sin)
	half := m.cfg.HeadDim / 2
	for p := len(old.cos); p < want; p++ {
		c := make([]float32, half)
		s := make([]float32, half)
		for i := 0; i < half; i++ {
			freq := math.Pow(m.cfg.RopeTheta, -2*float64(i)/float64(m.cfg.HeadDim))
			ang := float64(p) * freq
			c[i] = float32(math.Cos(ang))
			s[i] = float32(math.Sin(ang))
		}
		nt.cos[p] = c
		nt.sin[p] = s
	}
	m.rope.Store(nt)
	return nt
}

// applyRope rotates v (HeadDim) in place for the given position.
func (m *Model) applyRope(v []float32, pos int) {
	cosv, sinv := m.ropeAt(pos)
	half := len(v) / 2
	for i := 0; i < half; i++ {
		a, b := v[2*i], v[2*i+1]
		v[2*i] = a*cosv[i] - b*sinv[i]
		v[2*i+1] = a*sinv[i] + b*cosv[i]
	}
}

// rmsNorm writes gain⊙x/rms(x) into dst (dst may alias x).
func rmsNorm(dst, x, gain []float32) {
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(ss/float64(len(x))+1e-6))
	for i := range x {
		dst[i] = x[i] * inv * gain[i]
	}
}

func silu(x float32) float32 {
	return x / (1 + float32(math.Exp(float64(-x))))
}

// Sequence is one generation stream: its KV caches, its selection policy and
// its position counter. Create with Model.NewSequence.
type Sequence struct {
	m      *Model
	sel    attention.Selector   // nil = always full attention
	la     attention.LayerAware // sel's layer hooks, nil when not implemented
	budget int
	stores []*kvcache.Store // layer*NKVHeads + kvHead
	pos    int

	// Probe, when non-nil, receives the full attention logits (pre-softmax,
	// over all cached tokens) of every (layer, head) during Decode. Used by
	// the Fig. 3a importance-drift study. Enabling it forces an extra full
	// weight computation per head.
	Probe func(layer, head int, weights []float32)

	// scratch buffers
	hidden  []float32
	normed  []float32
	qbuf    []float32
	kbuf    []float32
	vbuf    []float32
	headOut []float32
	attnOut []float32
	ffnGate []float32
	ffnUp   []float32
	// attn is the reusable attention scratch (scores + quant fold buffers);
	// its geometric growth keeps steady-state decode rounds allocation-free.
	attn attention.Scratch
	// kvBits, when non-zero, enables the int8 KV decode path: full pages are
	// compute-quantized after each append and the attention kernels read the
	// codes directly (bounded-ULP contract, DESIGN.md §12).
	kvBits int
}

// NewSequence creates an empty sequence bound to a selection policy.
// sel may be nil for full attention; budget is the per-head token budget
// passed to the selector. KV pages come from the process-wide default arena;
// serving engines use NewSequenceIn to allocate from a budget-metered arena.
func (m *Model) NewSequence(sel attention.Selector, budget int) *Sequence {
	return m.NewSequenceIn(kvcache.DefaultArena(), sel, budget)
}

// NewSequenceIn creates an empty sequence whose KV stores allocate pages from
// the given arena, so an engine-owned accountant meters every page the
// sequence touches. Callers that care about the arena's gauges (or its
// accountant) should Release the sequence when done with it.
func (m *Model) NewSequenceIn(a *kvcache.Arena, sel attention.Selector, budget int) *Sequence {
	s := &Sequence{m: m, sel: sel, budget: budget}
	cfg := m.cfg
	s.stores = make([]*kvcache.Store, cfg.NLayers*cfg.NKVHeads)
	for i := range s.stores {
		s.stores[i] = kvcache.NewStoreIn(a, cfg.HeadDim)
	}
	if sel != nil {
		sel.Reset(cfg.NLayers, cfg.NKVHeads, cfg.HeadDim)
		s.la, _ = sel.(attention.LayerAware)
	}
	s.hidden = make([]float32, cfg.DModel)
	s.normed = make([]float32, cfg.DModel)
	s.qbuf = make([]float32, cfg.NHeads*cfg.HeadDim)
	s.kbuf = make([]float32, cfg.NKVHeads*cfg.HeadDim)
	s.vbuf = make([]float32, cfg.NKVHeads*cfg.HeadDim)
	s.headOut = make([]float32, cfg.HeadDim)
	s.attnOut = make([]float32, cfg.NHeads*cfg.HeadDim)
	s.ffnGate = make([]float32, cfg.FFNDim)
	s.ffnUp = make([]float32, cfg.FFNDim)
	return s
}

// Store returns the KV store of (layer, kvHead).
func (s *Sequence) Store(layer, kvHead int) *kvcache.Store {
	return s.stores[layer*s.m.cfg.NKVHeads+kvHead]
}

// Release returns every KV page the sequence holds to its arena (shared
// prefix pages survive until their last holder releases). The sequence must
// not be used afterwards. Release is idempotent; sequences on the default
// arena may skip it and let the garbage collector reclaim pages.
func (s *Sequence) Release() {
	for _, st := range s.stores {
		st.Free()
	}
}

// Len returns the number of processed tokens.
func (s *Sequence) Len() int { return s.pos }

// SetKVQuantDecode opts the sequence into the int8 KV decode path: every
// store compute-quantizes its full pages (KIVI layout, see internal/quant)
// and attention reads the codes directly via dequantize-free kernels. bits 0
// restores the exact path for future pages (already-quantized pages keep
// their form). Pages shared with a snapshot or fork at quantization time stay
// float32 — the kernels dispatch per page. Outputs under the quantized path
// are deterministic per seed but carry a bounded-ULP (not bit-identity)
// contract.
func (s *Sequence) SetKVQuantDecode(bits int) {
	s.kvBits = bits
	for _, st := range s.stores {
		st.SetComputeQuant(bits)
	}
	if bits > 0 {
		for _, st := range s.stores {
			st.QuantizeFullPages()
		}
	}
}

// KVQuantRuns returns the page-run counts the attention kernels dispatched
// to the int8 and float32 paths while compute quantization was enabled —
// the coverage signal behind the serve engine's quantized-decode metrics.
func (s *Sequence) KVQuantRuns() (quantRuns, floatRuns int64) {
	return s.attn.QuantRuns, s.attn.FloatRuns
}

// Selector returns the attached selection policy (may be nil).
func (s *Sequence) Selector() attention.Selector { return s.sel }

// prefillScratch is the per-executor scratch of the position-parallel
// attention + FFN phase. Each parallel block allocates its own, so no float
// buffer is ever shared between concurrent positions.
type prefillScratch struct {
	headOut []float32
	attnOut []float32
	normed  []float32
	ffnGate []float32
	ffnUp   []float32
	attn    attention.Scratch
}

func newPrefillScratch(cfg Config) *prefillScratch {
	return &prefillScratch{
		headOut: make([]float32, cfg.HeadDim),
		attnOut: make([]float32, cfg.NHeads*cfg.HeadDim),
		normed:  make([]float32, cfg.DModel),
		ffnGate: make([]float32, cfg.FFNDim),
		ffnUp:   make([]float32, cfg.FFNDim),
	}
}

// Prefill processes the whole prompt with full attention, layer by layer
// (the standard parallel prefill), fills the KV caches, notifies the
// selector, and returns the final hidden state of the last token.
// If wantLogits is non-nil it must have length len(tokens)×VocabSize and
// receives per-position next-token logits (teacher-forced evaluation).
//
// The O(L²) hot path is intra-op parallel on the shared parallel.Default
// pool: per-position work (norms, rope, attention, FFN) fans out over
// positions, and the QKV projections run as blocked GEMMs. Every parallel
// split writes disjoint outputs with the serial per-element reduction order,
// so outputs are bit-identical to a single-worker run at any pool width;
// only the serial KV append preserves store order by construction.
func (s *Sequence) Prefill(tokens []int, wantLogits []float32) []float32 {
	cfg := s.m.cfg
	w := s.m.w
	n := len(tokens)
	if n == 0 {
		panic("model: Prefill with empty prompt")
	}
	if wantLogits != nil && len(wantLogits) != n*cfg.VocabSize {
		panic("model: Prefill logits buffer has wrong size")
	}
	pool := parallel.Default()
	qdim := cfg.NHeads * cfg.HeadDim
	kvdim := cfg.NKVHeads * cfg.HeadDim

	// Grow the rope table up front so parallel workers only read it.
	s.m.ropeAt(s.pos + n - 1)

	// hidden[i] for all positions (row-major n×DModel).
	hs := make([]float32, n*cfg.DModel)
	pool.For(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(hs[i*cfg.DModel:(i+1)*cfg.DModel], w.embed.Row(tokens[i]))
		}
	})

	normAll := tensor.NewMat(n, cfg.DModel)
	qall := tensor.NewMat(n, qdim)
	kall := tensor.NewMat(n, kvdim)
	vall := tensor.NewMat(n, kvdim)

	for l := 0; l < cfg.NLayers; l++ {
		if s.la != nil {
			s.la.BeforeLayer(l)
		}
		lw := &w.layers[l]
		// Pre-attention norms, row-parallel.
		pool.For(n, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rmsNorm(normAll.Row(i), hs[i*cfg.DModel:(i+1)*cfg.DModel], lw.attnNorm)
			}
		})
		// QKV for all positions as blocked GEMMs (row i of the product is
		// exactly the per-position MatTVec of the serial path).
		tensor.MatMulOn(pool, qall, normAll, lw.wq)
		tensor.MatMulOn(pool, kall, normAll, lw.wk)
		tensor.MatMulOn(pool, vall, normAll, lw.wv)
		// Rotary embedding + sink shaping, row-parallel.
		pool.For(n, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pos := s.pos + i
				q := qall.Row(i)
				for hh := 0; hh < cfg.NHeads; hh++ {
					qh := q[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
					s.m.applyRope(qh, pos)
					s.m.shapeQuery(qh)
				}
				k := kall.Row(i)
				for kv := 0; kv < cfg.NKVHeads; kv++ {
					kh := k[kv*cfg.HeadDim : (kv+1)*cfg.HeadDim]
					s.m.applyRope(kh, pos)
					s.m.shapeKey(kh, pos)
				}
			}
		})
		// KV append stays serial: store order is position order.
		for i := 0; i < n; i++ {
			k, v := kall.Row(i), vall.Row(i)
			for kv := 0; kv < cfg.NKVHeads; kv++ {
				s.Store(l, kv).Append(
					k[kv*cfg.HeadDim:(kv+1)*cfg.HeadDim],
					v[kv*cfg.HeadDim:(kv+1)*cfg.HeadDim])
			}
		}
		// Causal attention + FFN, position-parallel. Blocks are fine-grained
		// (grain 4) so the dynamic scheduler balances the causal skew — late
		// positions attend over longer prefixes than early ones.
		group := cfg.GroupSize()
		pool.For(n, 4, func(lo, hi int) {
			sc := newPrefillScratch(cfg)
			for i := lo; i < hi; i++ {
				h := hs[i*cfg.DModel : (i+1)*cfg.DModel]
				q := qall.Row(i)
				for hh := 0; hh < cfg.NHeads; hh++ {
					kv := hh / group
					st := s.Store(l, kv)
					sc.attn.FullN(sc.headOut, q[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], st, s.pos+i+1)
					copy(sc.attnOut[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], sc.headOut)
				}
				addProjected(h, lw.wo, sc.attnOut, sc.normed)
				ffnBlock(h, lw, sc.normed, sc.ffnGate, sc.ffnUp)
			}
		})
		if s.la != nil {
			s.la.AfterLayer(l)
		}
	}
	s.pos += n

	// Notify the selector that prefill KV is complete (metadata is built over
	// exact float rows; compute quantization, if enabled, happens after).
	if s.sel != nil {
		for l := 0; l < cfg.NLayers; l++ {
			for kv := 0; kv < cfg.NKVHeads; kv++ {
				s.sel.OnPrefill(l, kv, s.Store(l, kv))
			}
		}
	}
	if s.kvBits > 0 {
		for _, st := range s.stores {
			st.QuantizeFullPages()
		}
	}

	if wantLogits != nil {
		pool.For(n, 1, func(lo, hi int) {
			normed := make([]float32, cfg.DModel)
			for i := lo; i < hi; i++ {
				h := hs[i*cfg.DModel : (i+1)*cfg.DModel]
				rmsNorm(normed, h, w.finalNorm)
				w.embedP.MatVecOn(nil, wantLogits[i*cfg.VocabSize:(i+1)*cfg.VocabSize], normed)
			}
		})
	}
	last := make([]float32, cfg.DModel)
	copy(last, hs[(n-1)*cfg.DModel:])
	return last
}

// shapeKey applies the attention-sink offset to keys of sink positions.
func (m *Model) shapeKey(k []float32, pos int) {
	if pos < m.cfg.SinkTokens && m.cfg.SinkStrength != 0 {
		tensor.Axpy(m.cfg.SinkStrength, m.w.sinkDir, k)
	}
}

// shapeQuery biases every query toward the sink direction.
func (m *Model) shapeQuery(q []float32) {
	if m.cfg.SinkStrength != 0 {
		tensor.Axpy(sinkQueryGain, m.w.sinkDir, q)
	}
}

// addProjected computes h += woᵀ·attnOut using scratch (DModel).
func addProjected(h []float32, wo *tensor.Mat, attnOut, scratch []float32) {
	tensor.MatTVec(scratch, wo, attnOut)
	tensor.Add(h, h, scratch)
}

// ffn applies the SwiGLU block with residual connection to h in place,
// using the sequence's decode scratch.
func (s *Sequence) ffn(h []float32, lw *layerWeights) {
	ffnBlock(h, lw, s.normed, s.ffnGate, s.ffnUp)
}

// ffnBlock is the SwiGLU block over caller-provided scratch (normed: DModel,
// gate/up: FFNDim), so parallel prefill positions can run it concurrently.
func ffnBlock(h []float32, lw *layerWeights, normed, gate, up []float32) {
	rmsNorm(normed, h, lw.ffnNorm)
	tensor.MatTVec(gate, lw.w1, normed)
	tensor.MatTVec(up, lw.w3, normed)
	for i := range gate {
		gate[i] = silu(gate[i]) * up[i]
	}
	tensor.MatTVec(normed, lw.w2, gate)
	tensor.Add(h, h, normed)
}

// Decode processes one token through the model using the sequence's
// selection policy and returns the next-token logits. The new token's KV is
// appended to the caches before selection, so the current token is always a
// selection candidate (it sits in the unclustered decode tail).
func (s *Sequence) Decode(token int) []float32 {
	logits := make([]float32, s.m.cfg.VocabSize)
	s.DecodeInto(token, logits)
	return logits
}

// DecodeInto is Decode writing the next-token logits into a caller-provided
// buffer of length VocabSize, avoiding the per-token allocation on hot
// serving paths.
func (s *Sequence) DecodeInto(token int, logits []float32) {
	cfg := s.m.cfg
	w := s.m.w
	if len(logits) != cfg.VocabSize {
		panic("model: DecodeInto logits buffer has wrong size")
	}
	copy(s.hidden, w.embed.Row(token))
	pos := s.pos
	group := cfg.GroupSize()

	for l := 0; l < cfg.NLayers; l++ {
		if s.la != nil {
			s.la.BeforeLayer(l)
		}
		lw := &w.layers[l]
		rmsNorm(s.normed, s.hidden, lw.attnNorm)
		tensor.MatTVec(s.qbuf, lw.wq, s.normed)
		tensor.MatTVec(s.kbuf, lw.wk, s.normed)
		tensor.MatTVec(s.vbuf, lw.wv, s.normed)
		for hh := 0; hh < cfg.NHeads; hh++ {
			qh := s.qbuf[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
			s.m.applyRope(qh, pos)
			s.m.shapeQuery(qh)
		}
		for kv := 0; kv < cfg.NKVHeads; kv++ {
			kh := s.kbuf[kv*cfg.HeadDim : (kv+1)*cfg.HeadDim]
			s.m.applyRope(kh, pos)
			s.m.shapeKey(kh, pos)
			vh := s.vbuf[kv*cfg.HeadDim : (kv+1)*cfg.HeadDim]
			st := s.Store(l, kv)
			st.Append(kh, vh)
			if s.sel != nil {
				s.sel.OnAppend(l, kv, st)
			}
			if s.kvBits > 0 {
				// After the selector saw the exact rows: convert any page the
				// append just completed to the compute-quantized form.
				st.QuantizeFullPages()
			}
		}
		for hh := 0; hh < cfg.NHeads; hh++ {
			kv := hh / group
			st := s.Store(l, kv)
			qh := s.qbuf[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
			if s.Probe != nil {
				ws := s.attn.Scores(st.Len())
				s.attn.Weights(ws, qh, st)
				s.Probe(l, hh, ws)
			}
			var idx []int
			if s.sel != nil {
				idx = s.sel.Select(l, kv, qh, st, s.budget)
			}
			if idx == nil {
				s.attn.Full(s.headOut, qh, st)
			} else {
				s.attn.Sparse(s.headOut, qh, st, idx)
			}
			copy(s.attnOut[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], s.headOut)
		}
		addProjected(s.hidden, lw.wo, s.attnOut, s.normed)
		s.ffn(s.hidden, lw)
		if s.la != nil {
			s.la.AfterLayer(l)
		}
	}
	if s.sel != nil {
		s.sel.EndStep()
	}
	s.pos++

	rmsNorm(s.normed, s.hidden, w.finalNorm)
	w.embedP.MatVec(logits, s.normed)
}

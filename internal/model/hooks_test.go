package model

import (
	"fmt"
	"testing"

	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
)

// hookRecorder is a full-attention selector that records the layer-hook call
// order interleaved with selector callbacks.
type hookRecorder struct {
	log    []string
	layers int
}

func (r *hookRecorder) Name() string                         { return "hookRecorder" }
func (r *hookRecorder) Reset(layers, heads, d int)           { r.layers = layers }
func (r *hookRecorder) OnPrefill(l, h int, s *kvcache.Store) {}
func (r *hookRecorder) OnAppend(l, h int, s *kvcache.Store)  {}
func (r *hookRecorder) Select(l, h int, q []float32, s *kvcache.Store, budget int) []int {
	return nil
}
func (r *hookRecorder) EndStep()                  { r.log = append(r.log, "end") }
func (r *hookRecorder) Stats() attention.SelStats { return attention.SelStats{} }
func (r *hookRecorder) BeforeLayer(l int)         { r.log = append(r.log, fmt.Sprintf("B%d", l)) }
func (r *hookRecorder) AfterLayer(l int)          { r.log = append(r.log, fmt.Sprintf("A%d", l)) }

// TestLayerHooksBracketEveryLayer locks the forward-loop hook contract: both
// Prefill and Decode bracket each layer's computation with BeforeLayer and
// AfterLayer, in layer order, and EndStep follows the last layer of a decode
// step.
func TestLayerHooksBracketEveryLayer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NLayers = 3
	cfg.VocabSize = 64
	cfg.NTopics = 8
	m := New(cfg)
	rec := &hookRecorder{}
	seq := m.NewSequence(rec, 0)
	seq.Prefill([]int{1, 2, 3, 4}, nil)

	want := []string{"B0", "A0", "B1", "A1", "B2", "A2"}
	if len(rec.log) != len(want) {
		t.Fatalf("prefill hook log %v, want %v", rec.log, want)
	}
	for i := range want {
		if rec.log[i] != want[i] {
			t.Fatalf("prefill hook log %v, want %v", rec.log, want)
		}
	}

	rec.log = nil
	seq.Decode(5)
	want = []string{"B0", "A0", "B1", "A1", "B2", "A2", "end"}
	if len(rec.log) != len(want) {
		t.Fatalf("decode hook log %v, want %v", rec.log, want)
	}
	for i := range want {
		if rec.log[i] != want[i] {
			t.Fatalf("decode hook log %v, want %v", rec.log, want)
		}
	}
}

// TestLayerHooksOptional: a selector without the LayerAware extension runs
// exactly as before (no hook dispatch), locking backward compatibility.
func TestLayerHooksOptional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NLayers = 2
	cfg.VocabSize = 64
	cfg.NTopics = 8
	m := New(cfg)
	seq := m.NewSequence(nil, 0)
	seq.Prefill([]int{1, 2, 3}, nil)
	logits := seq.Decode(4)
	if len(logits) != cfg.VocabSize {
		t.Fatalf("logits len %d", len(logits))
	}
}

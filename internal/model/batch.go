package model

import (
	"clusterkv/internal/parallel"
	"clusterkv/internal/tensor"
)

// BatchDecoder runs one decode step for a cohort of sequences in lock-step
// layer phases (DESIGN.md §13): the cohort's hidden states form an [S×DModel]
// activation matrix and every weight-matrix product of the layer — QKV, the
// output projection, the SwiGLU block and the LM head — is issued as ONE
// batched GEMM across the cohort instead of S per-stream GEMVs, so each
// weight matrix streams from memory once per round. Attention, rope, KV
// append, selection and quantization stay per-stream in between the GEMM
// phases, because KV state is per-sequence; that phase fans the cohort out
// over the shared pool, each stream on its own attention scratch.
//
// Determinism contract: every batched kernel keeps the per-row reduction
// order of the GEMV it replaces, and the per-stream phase runs identical
// code to Sequence.DecodeInto, so the tokens a cohort produces are
// bit-identical to stepping each sequence alone — at any cohort size and
// any pool width (locked by the conformance suites).
//
// A BatchDecoder holds reusable scratch sized to the largest cohort seen; it
// is not safe for concurrent use. Sequences may enter and leave the cohort
// freely between calls (the serving engine's continuous batching does).
type BatchDecoder struct {
	m    *Model
	maxS int
	// Cohort-wide scratch matrices; Rows is set to the live cohort size each
	// call, Data stays at maxS capacity so steady-state calls allocate nothing.
	x, normed tensor.Mat // S×DModel
	q         tensor.Mat // S×(NHeads·HeadDim)
	k, v      tensor.Mat // S×(NKVHeads·HeadDim)
	attnOut   tensor.Mat // S×(NHeads·HeadDim)
	gate, up  tensor.Mat // S×FFNDim
}

// NewBatchDecoder returns an empty batch decoder for the model; scratch grows
// on first use to the cohort size.
func (m *Model) NewBatchDecoder() *BatchDecoder {
	return &BatchDecoder{m: m}
}

// grow sizes every scratch matrix to an S-row cohort, reusing backing
// storage when capacity allows.
func (bd *BatchDecoder) grow(S int) {
	cfg := bd.m.cfg
	size := func(mt *tensor.Mat, cols int) {
		mt.Rows, mt.Cols = S, cols
		if need := S * cols; cap(mt.Data) < need {
			mt.Data = make([]float32, need)
		} else {
			mt.Data = mt.Data[:need]
		}
	}
	size(&bd.x, cfg.DModel)
	size(&bd.normed, cfg.DModel)
	size(&bd.q, cfg.NHeads*cfg.HeadDim)
	size(&bd.k, cfg.NKVHeads*cfg.HeadDim)
	size(&bd.v, cfg.NKVHeads*cfg.HeadDim)
	size(&bd.attnOut, cfg.NHeads*cfg.HeadDim)
	size(&bd.gate, cfg.FFNDim)
	size(&bd.up, cfg.FFNDim)
	if S > bd.maxS {
		bd.maxS = S
	}
}

// DecodeInto advances every sequence in the cohort by one token: seqs[i]
// processes tokens[i] and its next-token logits land in logits[i] (each of
// length VocabSize). All sequences must belong to this decoder's model; each
// logits[i] is bit-identical to what seqs[i].DecodeInto(tokens[i], ...)
// alone would produce. A panic (e.g. arena exhaustion mid-append) may leave
// cohort members at different positions; callers treat the whole cohort as
// failed, as the serving engine does.
func (bd *BatchDecoder) DecodeInto(seqs []*Sequence, tokens []int, logits [][]float32) {
	S := len(seqs)
	if S == 0 {
		return
	}
	if len(tokens) != S || len(logits) != S {
		panic("model: BatchDecoder.DecodeInto cohort slice lengths differ")
	}
	cfg := bd.m.cfg
	w := bd.m.w
	maxPos := 0
	for i, s := range seqs {
		if s.m != bd.m {
			panic("model: BatchDecoder.DecodeInto sequence from another model")
		}
		if len(logits[i]) != cfg.VocabSize {
			panic("model: BatchDecoder.DecodeInto logits buffer has wrong size")
		}
		if s.pos > maxPos {
			maxPos = s.pos
		}
	}
	bd.grow(S)
	pool := parallel.Default()
	// Grow the rope table up front so the fanned-out attention phase only
	// reads it (same discipline as Prefill).
	bd.m.ropeAt(maxPos)

	for i := range seqs {
		copy(bd.x.Row(i), w.embed.Row(tokens[i]))
	}
	for l := 0; l < cfg.NLayers; l++ {
		lw := &w.layers[l]
		for _, s := range seqs {
			if s.la != nil {
				s.la.BeforeLayer(l)
			}
		}
		for i := range seqs {
			rmsNorm(bd.normed.Row(i), bd.x.Row(i), lw.attnNorm)
		}
		tensor.MatTMatOn(pool, &bd.q, lw.wq, &bd.normed)
		tensor.MatTMatOn(pool, &bd.k, lw.wk, &bd.normed)
		tensor.MatTMatOn(pool, &bd.v, lw.wv, &bd.normed)
		// Per-stream rope, sink shaping, KV append, selector notification and
		// page quantization, serial in cohort order: appends mutate the
		// per-sequence stores and must keep store order = position order.
		for i, s := range seqs {
			pos := s.pos
			q := bd.q.Row(i)
			for hh := 0; hh < cfg.NHeads; hh++ {
				qh := q[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
				s.m.applyRope(qh, pos)
				s.m.shapeQuery(qh)
			}
			k, v := bd.k.Row(i), bd.v.Row(i)
			for kv := 0; kv < cfg.NKVHeads; kv++ {
				kh := k[kv*cfg.HeadDim : (kv+1)*cfg.HeadDim]
				s.m.applyRope(kh, pos)
				s.m.shapeKey(kh, pos)
				st := s.Store(l, kv)
				st.Append(kh, v[kv*cfg.HeadDim:(kv+1)*cfg.HeadDim])
				if s.sel != nil {
					s.sel.OnAppend(l, kv, st)
				}
				if s.kvBits > 0 {
					st.QuantizeFullPages()
				}
			}
		}
		// Attention phase, one stream per parallel index: each stream selects
		// and attends over its own KV on its own scratch (QuantRuns/FloatRuns
		// telemetry stays per-sequence), writing a disjoint attnOut row.
		if pool.RunsInline(S, 1) {
			bd.attnBand(seqs, l, 0, S)
		} else {
			pool.For(S, 1, func(lo, hi int) { bd.attnBand(seqs, l, lo, hi) })
		}
		tensor.MatTMatOn(pool, &bd.normed, lw.wo, &bd.attnOut)
		for i := range seqs {
			tensor.Add(bd.x.Row(i), bd.x.Row(i), bd.normed.Row(i))
		}
		// SwiGLU block, batched: same phase order as ffnBlock per stream.
		for i := range seqs {
			rmsNorm(bd.normed.Row(i), bd.x.Row(i), lw.ffnNorm)
		}
		tensor.MatTMatOn(pool, &bd.gate, lw.w1, &bd.normed)
		tensor.MatTMatOn(pool, &bd.up, lw.w3, &bd.normed)
		for i := range seqs {
			g, u := bd.gate.Row(i), bd.up.Row(i)
			for j := range g {
				g[j] = silu(g[j]) * u[j]
			}
		}
		tensor.MatTMatOn(pool, &bd.normed, lw.w2, &bd.gate)
		for i := range seqs {
			tensor.Add(bd.x.Row(i), bd.x.Row(i), bd.normed.Row(i))
		}
		for _, s := range seqs {
			if s.la != nil {
				s.la.AfterLayer(l)
			}
		}
	}
	for _, s := range seqs {
		if s.sel != nil {
			s.sel.EndStep()
		}
		s.pos++
	}
	for i := range seqs {
		rmsNorm(bd.normed.Row(i), bd.x.Row(i), w.finalNorm)
	}
	w.embedP.MatMulRowsOn(pool, logits, &bd.normed)
}

// attnBand runs the per-stream attention phase of layer l for cohort members
// [lo, hi): probe, selection, full/sparse attention — identical code to the
// per-stream decode path, on each sequence's own scratch.
func (bd *BatchDecoder) attnBand(seqs []*Sequence, l, lo, hi int) {
	cfg := bd.m.cfg
	group := cfg.GroupSize()
	for i := lo; i < hi; i++ {
		s := seqs[i]
		q := bd.q.Row(i)
		out := bd.attnOut.Row(i)
		for hh := 0; hh < cfg.NHeads; hh++ {
			kv := hh / group
			st := s.Store(l, kv)
			qh := q[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
			if s.Probe != nil {
				ws := s.attn.Scores(st.Len())
				s.attn.Weights(ws, qh, st)
				s.Probe(l, hh, ws)
			}
			var idx []int
			if s.sel != nil {
				idx = s.sel.Select(l, kv, qh, st, s.budget)
			}
			if idx == nil {
				s.attn.Full(s.headOut, qh, st)
			} else {
				s.attn.Sparse(s.headOut, qh, st, idx)
			}
			copy(out[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], s.headOut)
		}
	}
}

package model

import (
	"clusterkv/internal/attention"
	"clusterkv/internal/kvcache"
)

// Snapshot captures a sequence's KV state at a point in time so that many
// sequences can continue from it without re-running prefill. The snapshot's
// stores are zero-copy forks (kvcache.Store.Fork): they retain references on
// the sequence's pages, the shared prefix is read by every descendant, and
// each descendant's appends copy-on-write only its divergent tail page.
//
// This is the serving engine's prefix cache: one prefill of a shared
// document, forked into every request that asks a question about it.
type Snapshot struct {
	cfg    Config
	stores []*kvcache.Store
	pos    int
}

// Release drops the snapshot's page references. Pages still shared with live
// descendants survive until those sequences release them; fully idle pages
// return to the arena (and their slots to its accountant). The snapshot must
// not be forked from afterwards. Release is idempotent.
func (snap *Snapshot) Release() {
	for _, st := range snap.stores {
		st.Free()
	}
	snap.pos = 0
}

// Snapshot freezes the sequence's current KV state. The sequence remains
// usable; later tokens appended to it do not appear in the snapshot.
func (s *Sequence) Snapshot() *Snapshot {
	snap := &Snapshot{cfg: s.m.cfg, pos: s.pos}
	snap.stores = make([]*kvcache.Store, len(s.stores))
	for i, st := range s.stores {
		snap.stores[i] = st.Fork()
	}
	return snap
}

// Len returns the number of tokens captured in the snapshot.
func (snap *Snapshot) Len() int { return snap.pos }

// NumPages returns the total page count across the snapshot's stores (the
// slots an engine charges a cached prefix for, before fork deduplication).
// Serving engines use it to treat idle cached prefixes as spillable cold
// state under two-tier accounting.
func (snap *Snapshot) NumPages() int64 {
	var n int64
	for _, st := range snap.stores {
		n += int64(st.NumPages())
	}
	return n
}

// Prefix returns a new snapshot covering only the first n tokens of snap.
// Like Snapshot it is zero-copy: each store is forked and truncated, so a
// page-aligned n shares pages purely by refcount, and an unaligned n keeps a
// shared tail page that descendants copy-on-write at their first append. The
// radix prefix cache uses it to fork the longest page-aligned common prefix
// out of a deeper cached entry. snap itself is unaffected.
func (snap *Snapshot) Prefix(n int) *Snapshot {
	if n < 0 || n > snap.pos {
		panic("model: Snapshot.Prefix out of range")
	}
	out := &Snapshot{cfg: snap.cfg, pos: n}
	out.stores = make([]*kvcache.Store, len(snap.stores))
	for i, st := range snap.stores {
		f := st.Fork()
		f.Truncate(n)
		out.stores[i] = f
	}
	return out
}

// QuantizeCompute converts the snapshot's full, exclusively held pages to the
// KIVI compute-quantized form (keys per-channel, values per-token) at the
// given bit width. Serving engines call it once when publishing a prefix
// cache entry under quantized decode: at publish time the builder has
// released its references, so the pages are exclusively held and convert;
// every later fork then shares the already-quantized pages. Pages still
// shared at call time (e.g. a radix ancestor's) stay float32 — descendant
// kernels dispatch per page. Idempotent.
func (snap *Snapshot) QuantizeCompute(bits int) {
	if bits == 0 {
		return
	}
	for _, st := range snap.stores {
		st.SetComputeQuant(bits)
		st.QuantizeFullPages()
	}
}

// NewSequenceFrom creates a sequence that continues from a snapshot taken on
// a sequence of this model. The new sequence shares the snapshot's KV prefix
// zero-copy and appends independently. The selector is Reset but has seen
// none of the prefix yet: callers must Prefill at least one continuation
// token afterwards, which replays OnPrefill over the complete stores so the
// selector builds its metadata (clusters, pages, ...) over prefix+suffix.
func (m *Model) NewSequenceFrom(snap *Snapshot, sel attention.Selector, budget int) *Sequence {
	if snap == nil {
		panic("model: NewSequenceFrom with nil snapshot")
	}
	if snap.cfg.NLayers != m.cfg.NLayers || snap.cfg.NKVHeads != m.cfg.NKVHeads || snap.cfg.HeadDim != m.cfg.HeadDim {
		panic("model: snapshot shape does not match model")
	}
	s := m.NewSequence(sel, budget)
	for i, st := range snap.stores {
		s.stores[i] = st.Fork()
	}
	s.pos = snap.pos
	return s
}

package model

import (
	"math"
	"testing"

	"clusterkv/internal/parallel"
	"clusterkv/internal/rng"
)

// Prefill/decode conformance: the intra-op parallel forward pass must be
// bit-identical to the single-worker run at every pool width, for prompt
// lengths smaller than, equal to and much larger than the worker count.
// This is the lock on the determinism contract ClusterKV's selectors depend
// on — score ordering, and therefore cluster selection, is bit-sensitive.

var prefillWidths = []int{1, 2, 3, 8}

// forwardFingerprint runs one prefill + a few greedy decode steps at the
// given pool width and returns every float the outside world can observe:
// per-position logits, the final hidden state, the KV store contents and the
// decode logits.
func forwardFingerprint(t *testing.T, width int, tokens []int, decodeSteps int) []float32 {
	t.Helper()
	pool := parallel.NewPool(width)
	old := parallel.SetDefault(pool)
	defer func() {
		parallel.SetDefault(old)
		pool.Close()
	}()

	m := New(DefaultConfig())
	cfg := m.Config()
	seq := m.NewSequence(nil, 0)
	logits := make([]float32, len(tokens)*cfg.VocabSize)
	last := seq.Prefill(tokens, logits)

	var out []float32
	out = append(out, logits...)
	out = append(out, last...)
	for l := 0; l < cfg.NLayers; l++ {
		for kv := 0; kv < cfg.NKVHeads; kv++ {
			st := seq.Store(l, kv)
			out = append(out, st.Keys()...)
			out = append(out, st.Values()...)
		}
	}
	tok := tokens[len(tokens)-1]
	for step := 0; step < decodeSteps; step++ {
		dl := seq.Decode(tok)
		out = append(out, dl...)
		best := 0
		for i, v := range dl {
			if v > dl[best] {
				best = i
			}
		}
		tok = best
	}
	return out
}

func TestPrefillConformanceAcrossWidths(t *testing.T) {
	r := rng.New(7)
	vocab := DefaultConfig().VocabSize
	for _, n := range []int{1, 3, 37, 200} {
		tokens := make([]int, n)
		for i := range tokens {
			tokens[i] = r.Intn(vocab)
		}
		want := forwardFingerprint(t, 1, tokens, 4)
		for _, width := range prefillWidths[1:] {
			got := forwardFingerprint(t, width, tokens, 4)
			if len(got) != len(want) {
				t.Fatalf("n=%d width=%d: fingerprint length %d != %d", n, width, len(got), len(want))
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("n=%d width=%d: float %d = %g (bits %08x), want %g (bits %08x)",
						n, width, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestPrefillConformanceTable is the fine-grained table: per-(width, length)
// subtests over the kernel-level observable (per-position logits only), so a
// failure names the exact shape that diverged.
func TestPrefillConformanceTable(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"single-token", 1},
		{"fewer-rows-than-workers", 3},
		{"odd-length", 37},
		{"grain-boundary", 129},
	}
	r := rng.New(11)
	vocab := DefaultConfig().VocabSize
	for _, tc := range cases {
		tokens := make([]int, tc.n)
		for i := range tokens {
			tokens[i] = r.Intn(vocab)
		}
		want := forwardFingerprint(t, 1, tokens, 0)
		for _, width := range prefillWidths {
			t.Run(tc.name+"/width="+string(rune('0'+width)), func(t *testing.T) {
				got := forwardFingerprint(t, width, tokens, 0)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("float %d differs: %g vs %g", i, got[i], want[i])
					}
				}
			})
		}
	}
}

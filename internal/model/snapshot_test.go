package model

import (
	"sync"
	"testing"
)

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// forkEquivalence checks that prefilling a shared prefix once, snapshotting,
// and continuing with a per-request suffix produces exactly the logits of
// prefilling prefix+suffix from scratch.
func TestSnapshotForkMatchesFullPrefill(t *testing.T) {
	m := New(tinyConfig())
	doc := tinyDoc(96)
	prefix, suffixA, suffixB := doc[:64], doc[64:80], doc[80:96]

	base := m.NewSequence(nil, 0)
	base.Prefill(prefix, nil)
	snap := base.Snapshot()

	decode := func(seq *Sequence, n int) []int {
		tok := suffixA[len(suffixA)-1]
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			logits := seq.Decode(tok)
			tok = argmax(logits)
			out = append(out, tok)
		}
		return out
	}

	// Reference: full prefill of prefix+suffixA.
	ref := m.NewSequence(nil, 0)
	ref.Prefill(append(append([]int{}, prefix...), suffixA...), nil)
	want := decode(ref, 8)

	// Forked: continue from the snapshot.
	forked := m.NewSequenceFrom(snap, nil, 0)
	forked.Prefill(suffixA, nil)
	if forked.Len() != len(prefix)+len(suffixA) {
		t.Fatalf("forked length %d", forked.Len())
	}
	got := decode(forked, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fork diverges at token %d: %v vs %v", i, got, want)
		}
	}

	// A second fork with a different suffix must not disturb the first; and
	// the snapshot itself must be unchanged by descendants' decoding.
	forked2 := m.NewSequenceFrom(snap, nil, 0)
	forked2.Prefill(suffixB, nil)
	decode(forked2, 8)
	if snap.Len() != len(prefix) {
		t.Fatalf("snapshot length mutated: %d", snap.Len())
	}
	again := m.NewSequenceFrom(snap, nil, 0)
	again.Prefill(suffixA, nil)
	got2 := decode(again, 8)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("snapshot reuse diverges at token %d", i)
		}
	}
}

func TestSnapshotShapeMismatchPanics(t *testing.T) {
	m := New(tinyConfig())
	seq := m.NewSequence(nil, 0)
	seq.Prefill(tinyDoc(8), nil)
	snap := seq.Snapshot()

	other := DefaultConfig() // different shape than tinyConfig
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	New(other).NewSequenceFrom(snap, nil, 0)
}

// TestConcurrentDecodeIsRaceFreeAndDeterministic drives several sequences of
// one shared Model from parallel goroutines (exercising the lazily grown
// rope tables under -race) and checks each stream matches its serial run.
func TestConcurrentDecodeIsRaceFreeAndDeterministic(t *testing.T) {
	m := New(tinyConfig())
	doc := tinyDoc(48)

	run := func(m *Model, seed int) []int {
		seq := m.NewSequence(nil, 0)
		seq.Prefill(doc[:32+seed], nil)
		tok := doc[0]
		out := make([]int, 0, 12)
		for i := 0; i < 12; i++ {
			tok = argmax(seq.Decode(tok))
			out = append(out, tok)
		}
		return out
	}

	want := make([][]int, 8)
	for i := range want {
		want[i] = run(New(tinyConfig()), i%4)
	}

	var wg sync.WaitGroup
	got := make([][]int, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run(m, i%4)
		}(i)
	}
	wg.Wait()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream %d diverges under concurrency", i)
			}
		}
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	m := New(tinyConfig())
	a := m.NewSequence(nil, 0)
	b := m.NewSequence(nil, 0)
	doc := tinyDoc(16)
	a.Prefill(doc, nil)
	b.Prefill(doc, nil)
	buf := make([]float32, m.Config().VocabSize)
	for i := 0; i < 4; i++ {
		want := a.Decode(doc[i])
		b.DecodeInto(doc[i], buf)
		for j := range want {
			if want[j] != buf[j] {
				t.Fatalf("DecodeInto diverges at step %d, logit %d", i, j)
			}
		}
	}
}

// Package model implements a complete, deterministic Transformer inference
// engine in pure Go: token embedding, RMSNorm, rotary position embedding,
// grouped-query multi-head attention with a pluggable KV-selection policy,
// SwiGLU feed-forward blocks, and a tied LM head. It supports the two-stage
// prefill/decode flow of LLM serving (paper §II-A) and exposes per-position
// logits for perplexity evaluation.
//
// The engine substitutes for GLM4-9B/Llama-3.1-8B (see DESIGN.md §1): the
// weights are synthetic but *structured* so that the attention phenomena
// ClusterKV exploits are present — semantic clustering of keys (topic
// structured embeddings propagated through shared query/key subspaces),
// attention sinks on initial tokens, and high-magnitude outlier key channels
// (the KIVI observation motivating cosine clustering distance, §III-B).
package model

// Config describes a model shape plus the synthetic-structure knobs.
type Config struct {
	// VocabSize is the token vocabulary size.
	VocabSize int
	// DModel is the residual width.
	DModel int
	// NLayers is the number of Transformer layers.
	NLayers int
	// NHeads is the number of query heads.
	NHeads int
	// NKVHeads is the number of key/value heads (GQA when < NHeads; must
	// divide NHeads).
	NKVHeads int
	// HeadDim is the per-head channel count.
	HeadDim int
	// FFNDim is the SwiGLU hidden width.
	FFNDim int
	// RopeTheta is the rotary base (10000 in Llama-family models).
	RopeTheta float64

	// NTopics partitions the vocabulary into semantic topics; embeddings of
	// a topic share a base direction, which is what gives keys their cluster
	// structure.
	NTopics int
	// TopicStrength scales the shared topic direction relative to per-token
	// noise (≈2 gives clearly clustered but non-degenerate keys).
	TopicStrength float32
	// QKAlign in [0,1] blends a shared subspace into the query and key
	// projections so attention is content-matching (similar hidden states
	// attend to each other), as in trained models.
	QKAlign float32
	// OutlierChannels is the number of key channels per head whose
	// projection rows are scaled by OutlierScale — reproducing the
	// large-magnitude outlier channels of real LLM keys.
	OutlierChannels int
	// OutlierScale is the magnitude multiplier of outlier channels.
	OutlierScale float32
	// SinkTokens is the number of initial positions that receive the
	// attention-sink key offset.
	SinkTokens int
	// SinkStrength controls how strongly every query attends to the sink
	// positions.
	SinkStrength float32

	// Seed drives all weight generation.
	Seed uint64
}

// DefaultConfig returns the small evaluation model used across experiments:
// 4 layers × 4 heads × 16 channels (d_model 64). Small enough to run 8k-token
// contexts on one CPU core, large enough for the attention phenomena to show.
func DefaultConfig() Config {
	return Config{
		VocabSize: 512,
		DModel:    64,
		NLayers:   4,
		NHeads:    4,
		NKVHeads:  4,
		HeadDim:   16,
		FFNDim:    128,
		RopeTheta: 10000,

		NTopics:         16,
		TopicStrength:   2.0,
		QKAlign:         0.7,
		OutlierChannels: 2,
		OutlierScale:    6.0,
		SinkTokens:      16,
		SinkStrength:    1.5,
		Seed:            0x5eed,
	}
}

// Validate panics with a descriptive message on an inconsistent config.
func (c Config) Validate() {
	switch {
	case c.VocabSize < 2:
		panic("model: VocabSize must be >= 2")
	case c.DModel <= 0 || c.NLayers <= 0 || c.NHeads <= 0 || c.HeadDim <= 0 || c.FFNDim <= 0:
		panic("model: non-positive dimension")
	case c.NKVHeads <= 0 || c.NHeads%c.NKVHeads != 0:
		panic("model: NKVHeads must divide NHeads")
	case c.NTopics <= 0 || c.NTopics > c.VocabSize:
		panic("model: NTopics must be in [1, VocabSize]")
	case c.RopeTheta <= 1:
		panic("model: RopeTheta must exceed 1")
	case c.HeadDim%2 != 0:
		panic("model: HeadDim must be even (RoPE pairs)")
	}
}

// GroupSize returns the number of query heads sharing one KV head.
func (c Config) GroupSize() int { return c.NHeads / c.NKVHeads }

// Package clusterkv is a pure-Go implementation of ClusterKV (Liu et al.,
// DAC 2025): recallable LLM KV-cache compression that selects tokens at the
// granularity of semantic clusters. It bundles:
//
//   - the ClusterKV method itself — cosine K-means over key vectors,
//     inner-product cluster selection with budget trimming, incremental
//     decode-time clustering, and a cluster-granularity recall cache;
//   - the baselines the paper compares against (Quest, InfiniGen, H2O,
//     StreamingLLM, full KV);
//   - a deterministic Transformer inference engine and synthetic semantic
//     workloads standing in for the paper's models and datasets;
//   - an analytic GPU/PCIe cost model and a benchmark harness that
//     regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
//	sel := clusterkv.New(clusterkv.DefaultConfig())
//	seq := m.NewSequence(sel, 1024) // 1024-token KV budget
//	seq.Prefill(prompt, nil)
//	logits := make([]float32, m.Config().VocabSize)
//	seq.DecodeInto(nextToken, logits)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
// results. The examples/ directory contains runnable walkthroughs.
package clusterkv

import (
	"io"

	"clusterkv/internal/attention"
	"clusterkv/internal/baselines"
	"clusterkv/internal/bench"
	"clusterkv/internal/cluster"
	"clusterkv/internal/core"
	"clusterkv/internal/fleet"
	"clusterkv/internal/kvcache"
	"clusterkv/internal/memsim"
	"clusterkv/internal/metrics"
	"clusterkv/internal/model"
	"clusterkv/internal/obs"
	"clusterkv/internal/parallel"
	"clusterkv/internal/serve"
	"clusterkv/internal/workload"
)

// ---- The ClusterKV method -------------------------------------------------

// Config holds every ClusterKV tunable (sink tokens, C0 = L/ClusterRatio,
// decode-window m and C+, cache horizon R, clustering metric, ...).
type Config = core.Config

// ClusterKV is the compression method: an attention Selector that clusters
// keys in semantic space and recalls whole clusters per decode step.
type ClusterKV = core.ClusterKV

// DefaultConfig returns the paper's default configuration (§III/§IV).
func DefaultConfig() Config { return core.NewConfig() }

// New builds a ClusterKV selector.
func New(cfg Config) *ClusterKV { return core.New(cfg) }

// Metric is the clustering distance: Cosine (default), L2 or InnerProduct.
type Metric = cluster.Metric

// Clustering distance metrics (paper §III-B and the Fig. 11b ablation).
const (
	Cosine       = cluster.Cosine
	L2           = cluster.L2
	InnerProduct = cluster.InnerProduct
)

// ---- Selector contract and baselines ---------------------------------------

// Selector is the contract between inference engines and compression
// methods; all methods in this module implement it.
type Selector = attention.Selector

// SelStats are the operation counters every Selector accumulates.
type SelStats = attention.SelStats

// Baseline configurations.
type (
	// QuestConfig configures the Quest (ICML'24) reimplementation.
	QuestConfig = baselines.QuestConfig
	// InfiniGenConfig configures the InfiniGen (OSDI'24) reimplementation.
	InfiniGenConfig = baselines.InfiniGenConfig
	// H2OConfig configures the H2O (NeurIPS'23) reimplementation.
	H2OConfig = baselines.H2OConfig
	// StreamingConfig configures the StreamingLLM (ICLR'24) reimplementation.
	StreamingConfig = baselines.StreamingConfig
)

// NewQuest builds the page-granularity recall baseline.
func NewQuest(cfg QuestConfig) Selector { return baselines.NewQuest(cfg) }

// DefaultQuestConfig returns the original Quest settings (page size 16).
func DefaultQuestConfig() QuestConfig { return baselines.NewQuestConfig() }

// NewInfiniGen builds the SVD partial-key recall baseline.
func NewInfiniGen(cfg InfiniGenConfig) Selector { return baselines.NewInfiniGen(cfg) }

// DefaultInfiniGenConfig returns the original InfiniGen settings.
func DefaultInfiniGenConfig() InfiniGenConfig { return baselines.NewInfiniGenConfig() }

// NewH2O builds the non-recallable heavy-hitter eviction baseline.
func NewH2O(cfg H2OConfig) Selector { return baselines.NewH2O(cfg) }

// DefaultH2OConfig returns the original H2O settings.
func DefaultH2OConfig() H2OConfig { return baselines.NewH2OConfig() }

// NewStreamingLLM builds the sinks+recency baseline.
func NewStreamingLLM(cfg StreamingConfig) Selector { return baselines.NewStreamingLLM(cfg) }

// DefaultStreamingConfig returns sink/recency defaults.
func DefaultStreamingConfig() StreamingConfig { return baselines.NewStreamingConfig() }

// NewFullKV builds the uncompressed full-attention reference.
func NewFullKV() Selector { return baselines.NewFullKV() }

// ---- Transformer engine -----------------------------------------------------

// Model is the deterministic Transformer inference engine (MHA/GQA + RoPE +
// SwiGLU + RMSNorm) with pluggable KV selection.
type Model = model.Model

// ModelConfig describes a model shape plus synthetic-structure knobs.
type ModelConfig = model.Config

// Sequence is one generation stream bound to a Selector and budget.
type Sequence = model.Sequence

// Snapshot is a frozen KV prefix that many sequences can fork from without
// re-running prefill (Sequence.Snapshot / Model.NewSequenceFrom) — the
// substrate of the serving engine's prefix cache.
type Snapshot = model.Snapshot

// BatchDecoder steps many decoding sequences in lock-step, amortizing every
// weight matrix over the cohort with one blocked GEMM per matrix per layer
// instead of one GEMV per stream. Logits are bit-identical to stepping each
// sequence alone through Sequence.DecodeInto at any cohort size and pool
// width (DESIGN.md §13); build one per serving loop with
// Model.NewBatchDecoder.
type BatchDecoder = model.BatchDecoder

// DefaultModelConfig returns the small evaluation model (4×4×16, d_model 64).
func DefaultModelConfig() ModelConfig { return model.DefaultConfig() }

// NewModel builds a model with deterministic structured weights.
func NewModel(cfg ModelConfig) *Model { return model.New(cfg) }

// ---- Paged KV arena ---------------------------------------------------------

// KVArena is the reference-counted page allocator behind every KV store:
// forks share fully common pages copy-on-write, and an engine-owned arena
// meters exact page residency for admission control (DESIGN.md §7).
type KVArena = kvcache.Arena

// DefaultKVPageTokens is the default arena page size in tokens.
const DefaultKVPageTokens = kvcache.DefaultPageTokens

// NewKVArena builds an arena with the given page size; acct (may be nil) is
// charged pageTokens slots per live page.
func NewKVArena(pageTokens int, acct *KVAccountant) *KVArena {
	return kvcache.NewArena(pageTokens, acct)
}

// KVAccountant tracks aggregate KV slots against a budget (see
// kvcache.Accountant).
type KVAccountant = kvcache.Accountant

// NewKVAccountant returns an accountant with the given capacity in token
// slots (<= 0 for unlimited).
func NewKVAccountant(capacity int64) *KVAccountant { return kvcache.NewAccountant(capacity) }

// NewTieredKVAccountant returns an accountant with separate device and host
// capacities: admission gates on their sum, and the serving engine keeps the
// device side under its capacity by spilling cold slots host-ward.
func NewTieredKVAccountant(deviceCap, hostCap int64) *KVAccountant {
	return kvcache.NewTieredAccountant(deviceCap, hostCap)
}

// TransferRuntime is the asynchronous tiered-KV transfer runtime: a
// background executor servicing page-granular fetch/offload requests against
// a modeled PCIe channel, returning futures attention waits on only if the
// transfer hasn't landed. Engines create one per instance; selectors that
// implement the RuntimeAware extension route their simulated KV movement
// through it and gain layer-ahead prefetch.
type TransferRuntime = kvcache.TransferRuntime

// TransferChannel models the simulated host↔device link (seconds per page).
type TransferChannel = kvcache.Channel

// TransferOverlap is the runtime's copy/compute overlap telemetry: modeled
// channel-busy seconds versus the portion compute actually waited out, plus
// layer-ahead prefetch counters.
type TransferOverlap = metrics.Overlap

// NewTransferRuntime builds a transfer runtime on the given channel. sync
// forces inline servicing (the fully exposed baseline); throttle makes waits
// sleep out their exposed modeled time.
func NewTransferRuntime(ch TransferChannel, sync, throttle bool) *TransferRuntime {
	return kvcache.NewTransferRuntime(ch, sync, throttle)
}

// ---- Serving ----------------------------------------------------------------

// Engine is the concurrent inference server: continuous batching across many
// sequences, admission control against a global KV budget, shared-prefix
// prefill caching, per-request selectors, graceful drain.
type Engine = serve.Engine

// EngineConfig holds the engine tunables (workers, batch size, queue
// capacity, global KV budget, seed).
type EngineConfig = serve.Config

// ServeRequest describes one generation job for the Engine.
type ServeRequest = serve.Request

// ServeResponse is the outcome of one served request.
type ServeResponse = serve.Response

// ServeTicket is the handle returned by Engine.Submit.
type ServeTicket = serve.Ticket

// ServeMetrics is a snapshot of the engine's aggregate serving metrics.
type ServeMetrics = serve.Metrics

// Serving errors surfaced in ServeResponse.Err.
var (
	ErrEngineClosed    = serve.ErrClosed
	ErrRequestAborted  = serve.ErrAborted
	ErrBadServeRequest = serve.ErrBadRequest
	ErrRequestTooLarge = serve.ErrTooLarge
)

// NewEngine starts a serving engine over the model. Callers must Close it.
func NewEngine(m *Model, cfg EngineConfig) *Engine { return serve.NewEngine(m, cfg) }

// DefaultEngineConfig returns the default serving configuration.
func DefaultEngineConfig() EngineConfig { return serve.DefaultConfig() }

// ---- Fleet serving ----------------------------------------------------------

// FleetRouter places a request stream across N engine replicas: prefix-
// affinity routing (requests land where their shared prefix is already
// cached), per-replica admission backpressure, and SLO-aware scheduling over
// modeled TTFT/TBT. Router.Run is deterministic per seed; with one replica
// it reproduces Engine.Run token-for-token (DESIGN.md §9).
type FleetRouter = fleet.Router

// FleetConfig holds the fleet tunables (replica count, policy, per-replica
// engine config, modeled SLOs).
type FleetConfig = fleet.Config

// FleetPolicy selects the routing policy.
type FleetPolicy = fleet.Policy

// Fleet routing policies.
const (
	// FleetAffinity routes by shared-prefix residency with a least-loaded,
	// consistent-hash-tiebroken fallback (the default).
	FleetAffinity = fleet.PolicyAffinity
	// FleetRoundRobin is the cache-oblivious round-robin baseline.
	FleetRoundRobin = fleet.PolicyRoundRobin
	// FleetLeastLoaded balances KV pages and queue depth, ignoring caches.
	FleetLeastLoaded = fleet.PolicyLeastLoaded
)

// ParseFleetPolicy parses a policy flag value ("affinity", "rr",
// "leastloaded").
func ParseFleetPolicy(s string) (FleetPolicy, error) { return fleet.ParsePolicy(s) }

// FleetResponse is the outcome of one routed request: the engine response
// plus the serving replica and modeled TTFT/TBT.
type FleetResponse = fleet.Response

// FleetTicket is the handle returned by FleetRouter.Submit.
type FleetTicket = fleet.Ticket

// FleetSummary is a snapshot of fleet-wide routing and serving state.
type FleetSummary = fleet.Summary

// ErrFleetSLOShed reports a request shed because every replica's modeled
// TTFT missed the configured SLO.
var ErrFleetSLOShed = fleet.ErrSLOShed

// NewFleetRouter builds a fleet of cfg.Replicas engines over one model.
// Callers must Close (or Shutdown) it.
func NewFleetRouter(m *Model, cfg FleetConfig) *FleetRouter { return fleet.NewRouter(m, cfg) }

// DefaultFleetConfig returns a 2-replica affinity-routing fleet config.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// Arrival is one event of an open-loop arrival process.
type Arrival = workload.Arrival

// PoissonArrivals draws n seeded open-loop arrivals at mean rate req/s.
func PoissonArrivals(seed uint64, n int, rate float64) []Arrival {
	return workload.PoissonArrivals(seed, n, rate)
}

// Arrivals materialises a load's embedded interarrival gaps as absolute
// submission times.
func Arrivals(load []QARequest) []Arrival { return workload.Arrivals(load) }

// ---- Observability ----------------------------------------------------------

// Tracer is the deterministic structured event recorder: a bounded ring of
// typed events on the modeled clock (rounds, admissions, tiering, transfers,
// fleet placement), shared by every replica of a run. Attach one via
// EngineConfig.Trace (per-engine) or FleetConfig.Trace (fleet-wide).
// Tracing never perturbs schedules: traced and untraced runs produce
// identical token streams (locked by the determinism suites).
type Tracer = obs.Tracer

// TraceEvent is one recorded event.
type TraceEvent = obs.Event

// TraceEventType discriminates TraceEvent kinds.
type TraceEventType = obs.EventType

// TraceRecorder is the per-replica emission handle (zero allocation and a
// single branch when disabled). The zero value is a disabled recorder.
type TraceRecorder = obs.Recorder

// TraceSink receives events synchronously as they are recorded.
type TraceSink = obs.Sink

// NewTracer builds a tracer with a ring of the given capacity (<= 0 picks
// the default, obs.DefaultRingCapacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// WriteChromeTrace renders recorded events as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto (DESIGN.md §10).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteChromeTraceFrom renders a tracer's retained events as Chrome
// trace_event JSON like WriteChromeTrace, and additionally emits a warning
// instant at the start of the timeline when the tracer's bounded ring dropped
// events, so truncated timelines are never mistaken for complete ones.
func WriteChromeTraceFrom(w io.Writer, t *Tracer) error {
	return obs.WriteChromeTraceFrom(w, t)
}

// Attribution aggregates per-request latency breakdowns into per-phase
// totals, quantiles and a top-K slowest list (DESIGN.md §14). Engines expose
// theirs via Engine.Attribution when EngineConfig.Attribution is set; fleets
// merge replica breakdowns into FleetSummary.Attribution.
type Attribution = obs.Attribution

// AttributionSnapshot is a point-in-time copy of an Attribution aggregate,
// renderable as a table (WriteTable/String) and exportable into a
// MetricsRegistry (FillRegistry).
type AttributionSnapshot = obs.AttributionSnapshot

// LatencyBreakdown is one request's span tree on the modeled clock: its
// queue/admission/prefill/decode/interference/tiering phases tile the
// request's modeled wall time exactly, with transfer-overlap and SLO-margin
// telemetry alongside. Served responses carry one when attribution is on.
type LatencyBreakdown = obs.Breakdown

// LatencyPhase discriminates attribution phases (queue, admit, prefill,
// decode, interference, tiering).
type LatencyPhase = obs.Phase

// MetricsRegistry is the unified labeled-metrics registry. Engine, fleet and
// arena telemetry publish into one via their FillRegistry methods; WriteText
// renders Prometheus-style text exposition.
type MetricsRegistry = obs.Registry

// MetricLabel is one name="value" metric label.
type MetricLabel = obs.Label

// NewMetricsRegistry builds an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ML builds a MetricLabel.
func ML(name, value string) MetricLabel { return obs.L(name, value) }

// ---- Intra-op parallelism ---------------------------------------------------

// WorkerPool is the shared intra-op worker pool behind the blocked matrix
// kernels, the parallel prefill, K-means and cluster scoring. Results are
// bit-identical to serial at any pool width (see internal/parallel).
type WorkerPool = parallel.Pool

// NewWorkerPool builds a pool with up to width concurrent executors.
func NewWorkerPool(width int) *WorkerPool { return parallel.NewPool(width) }

// IntraOpPool returns the process-wide pool all kernels draw from
// (GOMAXPROCS-sized at startup).
func IntraOpPool() *WorkerPool { return parallel.Default() }

// SetIntraOpWorkers resizes the process-wide intra-op pool. Outputs are
// unaffected — only throughput changes. Safe at any time: kernels already
// in flight on the old pool finish correctly and new ones use the new
// width.
func SetIntraOpWorkers(width int) { parallel.SetDefaultWidth(width) }

// QARequest is one request of a synthetic serving load (shared-document QA).
type QARequest = workload.QARequest

// LoadConfig shapes a synthetic serving load.
type LoadConfig = workload.LoadConfig

// DefaultLoadConfig returns a small 8-tenant QA load over two shared docs.
func DefaultLoadConfig() LoadConfig { return workload.DefaultLoadConfig() }

// NewLoad materialises a deterministic serving load.
func NewLoad(cfg LoadConfig) []QARequest { return workload.NewLoad(cfg) }

// Nested-prefix session loads (multi-turn chat, agentic re-entry, templated
// RAG) exercising the radix prefix cache's partial reuse.
type (
	// ConversationConfig shapes a multi-turn chat load.
	ConversationConfig = workload.ConversationConfig
	// AgenticConfig shapes an agentic re-entry load.
	AgenticConfig = workload.AgenticConfig
	// RAGConfig shapes a templated retrieval-augmented load.
	RAGConfig = workload.RAGConfig
)

// DefaultConversationConfig returns a small 4-session, 4-turn chat load.
func DefaultConversationConfig() ConversationConfig { return workload.DefaultConversationConfig() }

// ConversationLoad materialises a deterministic multi-turn chat load.
func ConversationLoad(cfg ConversationConfig) []QARequest { return workload.ConversationLoad(cfg) }

// DefaultAgenticConfig returns a small 3-agent, 5-step re-entry load.
func DefaultAgenticConfig() AgenticConfig { return workload.DefaultAgenticConfig() }

// AgenticLoad materialises a deterministic agentic re-entry load.
func AgenticLoad(cfg AgenticConfig) []QARequest { return workload.AgenticLoad(cfg) }

// DefaultRAGConfig returns a small templated-RAG load over a shared chunk pool.
func DefaultRAGConfig() RAGConfig { return workload.DefaultRAGConfig() }

// RAGLoad materialises a deterministic templated-RAG load.
func RAGLoad(cfg RAGConfig) []QARequest { return workload.RAGLoad(cfg) }

// ---- Workloads ----------------------------------------------------------------

// Workload generators standing in for the paper's datasets (DESIGN.md §1).
type (
	// Trace is a synthetic semantic attention trace (keys/values/queries).
	Trace = workload.Trace
	// TraceConfig controls trace generation.
	TraceConfig = workload.TraceConfig
	// TaskSpec defines one LongBench-like task.
	TaskSpec = workload.TaskSpec
	// Task is a materialised task instance.
	Task = workload.Task
	// DocConfig controls token-document generation.
	DocConfig = workload.DocConfig
	// RetrievalLM is the language-modeling substrate of the Fig. 10 study.
	RetrievalLM = workload.RetrievalLM
)

// DefaultTraceConfig returns the evaluation trace shape.
func DefaultTraceConfig() TraceConfig { return workload.DefaultTraceConfig() }

// NewTrace generates a semantic trace context.
func NewTrace(cfg TraceConfig) *Trace { return workload.NewTrace(cfg) }

// LongBenchTasks returns the eight LongBench-like task specs (§V-A).
func LongBenchTasks(maxCtx int) []TaskSpec { return workload.LongBenchTasks(maxCtx) }

// BuildTask materialises a task instance.
func BuildTask(spec TaskSpec, seed uint64) *Task { return workload.BuildTask(spec, seed) }

// DefaultDocConfig matches DefaultModelConfig's vocabulary.
func DefaultDocConfig() DocConfig { return workload.DefaultDocConfig() }

// Doc generates a topic-segmented token document.
func Doc(cfg DocConfig, n int) []int { return workload.Doc(cfg, n) }

// PG19Stream generates a PG19-like language-modeling stream.
func PG19Stream(cfg DocConfig, n int) []int { return workload.PG19Stream(cfg, n) }

// ---- Evaluation ---------------------------------------------------------------

// RunResult aggregates recall and attention-fidelity measurements of one
// (trace, method, budget) run.
type RunResult = bench.RunResult

// RunTrace replays a trace against a selector at the given budget.
func RunTrace(tr *Trace, sel Selector, budget int) *RunResult {
	return bench.RunTrace(tr, sel, budget)
}

// NewRetrievalLM builds the Fig. 10 language-modeling substrate: a stream
// self-generated under full attention, so full KV is optimal by construction
// and perplexity deviations measure attention-approximation error.
func NewRetrievalLM(doc DocConfig, tc TraceConfig, n, warmup int, lambda float32) *RetrievalLM {
	return workload.NewRetrievalLM(doc, tc, n, warmup, lambda)
}

// RetrievalPerplexity streams the LM's tokens teacher-forced through a
// selector and returns perplexity at each checkpoint length.
func RetrievalPerplexity(lm *RetrievalLM, sel Selector, budget int, checkpoints []int) []float64 {
	return bench.RetrievalPerplexity(lm, sel, budget, checkpoints)
}

// Recall returns |selected ∩ truth|/|truth| (paper §V-B).
func Recall(selected, truth []int) float64 { return metrics.Recall(selected, truth) }

// ---- Cost model ------------------------------------------------------------------

// Hardware models a GPU + host link for the latency experiments.
type Hardware = memsim.Hardware

// ModelShape captures a served model's dimensions for the cost model.
type ModelShape = memsim.ModelShape

// Cost-model parameter bundles measured from algorithm runs.
type (
	// ClusterKVCounts parameterise a modeled ClusterKV decode step.
	ClusterKVCounts = memsim.ClusterKVCounts
	// QuestCounts parameterise a modeled Quest decode step.
	QuestCounts = memsim.QuestCounts
	// InfiniGenCounts parameterise a modeled InfiniGen decode step.
	InfiniGenCounts = memsim.InfiniGenCounts
	// DecodeBreakdown itemises a modeled decode step's latency.
	DecodeBreakdown = memsim.DecodeBreakdown
)

// AdaRTX6000 returns the paper's GPU model.
func AdaRTX6000() Hardware { return memsim.AdaRTX6000() }

// Llama31_8B returns the Llama-3.1-8B shape (Fig. 12/13b).
func Llama31_8B() ModelShape { return memsim.Llama31_8B() }

// OPT67B returns the OPT-6.7B shape (Fig. 13a).
func OPT67B() ModelShape { return memsim.OPT67B() }

module clusterkv

go 1.24

// Command clusterkv-demo walks through one ClusterKV decode step on a
// synthetic context, printing the clustering metadata, the selected
// clusters, the assembled index set and the cache behaviour — the paper's
// Fig. 8 pipeline, narrated.
//
//	clusterkv-demo -ctx 4096 -budget 256
package main

import (
	"flag"
	"fmt"
	"sort"

	"clusterkv"
)

func main() {
	var (
		ctx    = flag.Int("ctx", 4096, "context length (tokens)")
		budget = flag.Int("budget", 256, "KV cache budget (tokens)")
		steps  = flag.Int("steps", 4, "decode steps to narrate")
		seed   = flag.Uint64("seed", 7, "workload seed")
	)
	flag.Parse()

	spec := clusterkv.TaskSpec{
		Name: "demo", BaseScore: 100,
		CtxLen: *ctx, NumNeedles: 2, NeedleTokens: 20, SpreadRegion: 512,
		AnswerSteps: *steps, HopPattern: "revisit", DiffuseNoise: 0.4, QueryGain: 1.0,
	}
	task := clusterkv.BuildTask(spec, *seed)

	cfg := clusterkv.DefaultConfig()
	cfg.BypassLayers = 0
	sel := clusterkv.New(cfg)

	fmt.Printf("ClusterKV demo: %d-token context, budget %d\n", *ctx, *budget)
	fmt.Printf("config: sinks=%d  C0=L/%d  m=%d  C+=%d  R=%d  metric=%v\n\n",
		cfg.SinkTokens, cfg.ClusterRatio, cfg.DecodeWindow, cfg.DecodeClusters,
		cfg.CacheR, cfg.Metric)

	run := clusterkv.RunTrace(task.Trace, sel, *budget)

	book := sel.Book(0, 0)
	fmt.Printf("prefill clustering (head 0): %d clusters over %d tokens (sinks %d excluded)\n",
		book.NumClusters(), book.TotalTokens(), book.Start())
	sizes := make([]int, book.NumClusters())
	for j := range sizes {
		sizes[j] = book.Size(j)
	}
	sort.Ints(sizes)
	fmt.Printf("cluster sizes: min %d / median %d / max %d\n\n",
		sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1])

	st := sel.Stats()
	fmt.Printf("over %d decode steps x %d heads:\n", st.Steps, task.Trace.Cfg.Heads)
	fmt.Printf("  avg tokens selected / head-step: %.0f (budget %d)\n",
		float64(st.TokensSelected)/float64(st.SelectCalls), *budget)
	fmt.Printf("  avg clusters selected:           %.1f\n",
		float64(st.ClustersSelected)/float64(st.SelectCalls))
	fmt.Printf("  cache hit rate (R=%d):            %.0f%%\n", cfg.CacheR, st.HitRate()*100)
	fmt.Printf("  selection score ops:             %d (vs %d for per-token scoring)\n",
		st.ScoreOps, int64(*ctx)*int64(task.Trace.Cfg.D)*st.SelectCalls)
	fmt.Printf("  recall of true top-%d tokens:    %.3f\n", *budget, run.MeanRecall())
	fmt.Printf("  attention fidelity:              %.3f\n", run.MeanFidelity())
}
